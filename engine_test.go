package permcell_test

import (
	"context"
	"testing"

	"permcell"
	"permcell/internal/experiments"
)

// TestSimShimTraceParity pins the deprecated Sim facade to the path it
// shims: the equivalent experiments.RunSpec run must produce bit-identical
// per-step statistics and final state.
func TestSimShimTraceParity(t *testing.T) {
	sim := permcell.Sim{
		M: 2, P: 4, Rho: 0.256, Steps: 20, DLB: true,
		Seed: 7, Wells: 3, Hysteresis: 0.1,
	}
	got, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := experiments.RunSpec{
		M: 2, P: 4, Rho: 0.256, Steps: 20, DLB: true,
		Seed: 7, Wells: 3, WellK: 1.5, Hysteresis: 0.1, StatsEvery: 1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stats) != len(ref.Stats) {
		t.Fatalf("stats length %d vs %d", len(got.Stats), len(ref.Stats))
	}
	for i := range ref.Stats {
		a, b := got.Stats[i], ref.Stats[i]
		if a.Step != b.Step || a.WorkMax != b.WorkMax || a.WorkAve != b.WorkAve ||
			a.WorkMin != b.WorkMin || a.Moved != b.Moved ||
			a.TotalEnergy != b.TotalEnergy || a.Temperature != b.Temperature ||
			a.Conc != b.Conc {
			t.Fatalf("step %d stats diverged between shim and spec", b.Step)
		}
	}
	for i := range ref.Final.Pos {
		if got.Final.Pos[i] != ref.Final.Pos[i] || got.Final.Vel[i] != ref.Final.Vel[i] {
			t.Fatalf("particle %d state differs between shim and spec", ref.Final.ID[i])
		}
	}
}

// TestEngineStepwise exercises the parallel Engine through the facade:
// batch stepping, incremental stats, and a final Result identical to the
// one-shot Run of the same parameters.
func TestEngineStepwise(t *testing.T) {
	opts := []permcell.Option{permcell.WithDLB(), permcell.WithSeed(3), permcell.WithWells(2, 1.5)}
	ref, err := permcell.Run(context.Background(), 2, 4, 0.256, 10, opts...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := permcell.New(2, 4, 0.256, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(4); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Stats()); n != 4 {
		t.Fatalf("after 4 steps: %d stats", n)
	}
	if err := eng.Step(6); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != len(ref.Stats) {
		t.Fatalf("stats length %d vs %d", len(res.Stats), len(ref.Stats))
	}
	for i := range ref.Final.Pos {
		if res.Final.Pos[i] != ref.Final.Pos[i] {
			t.Fatalf("particle %d differs between stepwise and Run", ref.Final.ID[i])
		}
	}
}

// TestOnStepStreaming runs with the streaming hook plus DiscardStats: every
// step must reach the callback while the result carries no records.
func TestOnStepStreaming(t *testing.T) {
	var seen []int
	res, err := permcell.Run(context.Background(), 2, 4, 0.256, 5,
		permcell.WithOnStep(func(st permcell.StepStats) { seen = append(seen, st.Step) }),
		permcell.WithDiscardStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 || seen[0] != 1 || seen[4] != 5 {
		t.Fatalf("streamed steps = %v", seen)
	}
	if len(res.Stats) != 0 {
		t.Fatalf("DiscardStats kept %d records", len(res.Stats))
	}
	if res.Final == nil || res.Final.Len() == 0 {
		t.Fatal("no final state")
	}
}

// TestRunCancellation cancels mid-run and expects a partial result paired
// with ctx.Err().
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	res, err := permcell.Run(ctx, 2, 4, 0.256, 1000,
		permcell.WithOnStep(func(permcell.StepStats) {
			if steps++; steps == 3 {
				cancel()
			}
		}))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Final == nil {
		t.Fatal("no partial result on cancellation")
	}
	if n := len(res.Stats); n >= 1000 || n < 3 {
		t.Fatalf("partial run recorded %d steps", n)
	}
}

// TestShardedRunDeterminism runs the facade twice at shards=2 and demands
// bit-identical trajectories.
func TestShardedRunDeterminism(t *testing.T) {
	run := func() *permcell.Result {
		res, err := permcell.Run(context.Background(), 2, 4, 0.256, 10,
			permcell.WithDLB(), permcell.WithShards(2), permcell.WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Final.Pos {
		if a.Final.Pos[i] != b.Final.Pos[i] {
			t.Fatalf("particle %d differs between identical sharded runs", a.Final.ID[i])
		}
	}
	for i := range a.Stats {
		if a.Stats[i].WorkMax != b.Stats[i].WorkMax || a.Stats[i].TotalEnergy != b.Stats[i].TotalEnergy {
			t.Fatalf("step %d stats differ between identical sharded runs", a.Stats[i].Step)
		}
	}
}

// TestSerialEngineFacade drives the serial engine through the shared
// interface and sanity-checks its synthesized census.
func TestSerialEngineFacade(t *testing.T) {
	eng, err := permcell.NewSerial(4, 0.3, permcell.WithSeed(5), permcell.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(5); err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()
	if len(stats) != 5 {
		t.Fatalf("%d stats", len(stats))
	}
	last := stats[len(stats)-1]
	if last.WorkMax != last.WorkMin || last.WorkMax <= 0 {
		t.Fatalf("serial work census %v/%v", last.WorkMax, last.WorkMin)
	}
	if last.Conc.C != 64 {
		t.Fatalf("census C = %d, want 64", last.Conc.C)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() == 0 {
		t.Fatal("no final state")
	}
	if err := eng.Step(1); err == nil {
		t.Error("Step after Result accepted")
	}
	// Result is idempotent.
	if _, err := eng.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestStaticEngineFacade drives each static shape through the shared
// interface.
func TestStaticEngineFacade(t *testing.T) {
	cases := []struct {
		shape permcell.Shape
		p     int
	}{
		{permcell.ShapePlane, 4},
		{permcell.ShapeSquarePillar, 4},
		{permcell.ShapeCube, 8},
	}
	for _, c := range cases {
		shape := c.shape
		eng, err := permcell.NewStatic(shape, 4, c.p, 0.256, permcell.WithSeed(5))
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		res, err := permcell.RunEngine(context.Background(), eng, 5)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if len(res.Stats) != 5 {
			t.Fatalf("%v: %d stats", shape, len(res.Stats))
		}
		if res.Stats[4].WorkMax < res.Stats[4].WorkMin || res.Stats[4].WorkMax <= 0 {
			t.Fatalf("%v: work census %v/%v", shape, res.Stats[4].WorkMax, res.Stats[4].WorkMin)
		}
		if res.Final == nil || res.Final.Len() == 0 {
			t.Fatalf("%v: no final state", shape)
		}
	}
}

// TestStatsReturnsCopy pins the Stats contract on every facade engine:
// the returned slice is the caller's to keep, so corrupting it must not
// leak into later Stats calls or into the final Result — including the
// supervised wrapper, whose internal slice is concurrently appended to by
// its admit hook.
func TestStatsReturnsCopy(t *testing.T) {
	dir := t.TempDir()
	engines := map[string]func() (permcell.Engine, error){
		"parallel": func() (permcell.Engine, error) {
			return permcell.New(2, 4, 0.256)
		},
		"static": func() (permcell.Engine, error) {
			return permcell.NewStatic(permcell.ShapePlane, 4, 2, 0.256)
		},
		"serial": func() (permcell.Engine, error) {
			return permcell.NewSerial(4, 0.256)
		},
		"supervised": func() (permcell.Engine, error) {
			return permcell.New(2, 4, 0.256,
				permcell.WithCheckpoint(0, dir),
				permcell.WithSupervisor(permcell.SupervisorPolicy{MaxRetries: 1}))
		},
		"tcp": func() (permcell.Engine, error) {
			return permcell.New(2, 4, 0.256,
				permcell.WithTransport(permcell.Transport{Kind: permcell.TransportTCP, Procs: 2}))
		},
	}
	for name, build := range engines {
		t.Run(name, func(t *testing.T) {
			eng, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Step(3); err != nil {
				t.Fatal(err)
			}
			got := eng.Stats()
			if len(got) != 3 {
				t.Fatalf("Stats has %d records, want 3", len(got))
			}
			got[0].Step = -999 // caller scribbles on its copy
			if again := eng.Stats(); again[0].Step != 1 {
				t.Fatalf("second Stats sees the caller's mutation: step %d", again[0].Step)
			}
			if err := eng.Step(2); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats[0].Step != 1 || len(res.Stats) != 5 {
				t.Fatalf("Result stats corrupted: first step %d, len %d", res.Stats[0].Step, len(res.Stats))
			}
		})
	}
}
