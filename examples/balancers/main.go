// Balancers: feeds the per-cell load stream of a real condensing MD run to
// four load-balancing schemes — static plane slabs, Kohring's 1-D discrete
// boundary shifting (the related work the paper contrasts), static
// square-pillar DDM, and the paper's permanent-cell DLB — and compares the
// per-PE imbalance each achieves on identical input.
//
//	go run ./examples/balancers
package main

import (
	"fmt"
	"log"
	"os"

	"permcell/internal/balance"
	"permcell/internal/dlb"
	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/trace"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

func main() {
	const nc, p = 16, 16 // C=4096 cells, 16 PEs, m=4
	l := float64(nc) * units.PaperCutoff
	n := int(0.256 * l * l * l)
	sys, err := workload.LatticeGas(n, float64(n)/(l*l*l), units.PaperTref, 11)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		log.Fatal(err)
	}
	wells := potential.MultiWell{
		Centers: []vec.V{
			{X: l * 0.2, Y: l * 0.3, Z: l * 0.5},
			{X: l * 0.7, Y: l * 0.6, Z: l * 0.2},
			{X: l * 0.5, Y: l * 0.8, Z: l * 0.8},
			{X: l * 0.9, Y: l * 0.1, Z: l * 0.6},
		},
		K: 1.5, L: sys.Box.L,
	}
	eng, err := mdserial.New(mdserial.Config{
		Box: sys.Box, Pair: potential.NewPaperLJ(), Ext: wells,
		Dt: 0.005, Tref: units.PaperTref, RescaleEvery: units.PaperRescaleInterval,
		Grid: grid,
	}, sys.Set)
	if err != nil {
		log.Fatal(err)
	}

	plane, err := balance.NewPlaneStatic(grid, p)
	if err != nil {
		log.Fatal(err)
	}
	kohring, err := balance.NewKohring(grid, p)
	if err != nil {
		log.Fatal(err)
	}
	pillar, err := balance.NewPillarStatic(grid, p)
	if err != nil {
		log.Fatal(err)
	}
	dlbBal, err := balance.NewPermanentCellDLB(grid, p, dlb.Config{
		Hysteresis: 0.05, Pick: dlb.PickMostLoaded,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=%d particles condensing into 4 droplets; C=%d cells on %d PEs\n\n", n, grid.NumCells(), p)
	fmt.Printf("imbalance (max-min)/ave per scheme:\n")
	fmt.Printf("%6s %12s %12s %12s %16s\n", "step", "plane", "kohring-1D", "pillar-DDM", "permanent-DLB")

	var sPlane, sKoh, sPil, sDLB []float64
	const steps = 400
	for step := 1; step <= steps; step++ {
		eng.Step()
		load := balance.PairLoad(grid, eng.CellOccupancy())
		a := plane.Step(load)
		b := kohring.Step(load)
		c := pillar.Step(load)
		d, err := dlbBal.Step(load)
		if err != nil {
			log.Fatal(err)
		}
		sPlane = append(sPlane, a.Spread())
		sKoh = append(sKoh, b.Spread())
		sPil = append(sPil, c.Spread())
		sDLB = append(sDLB, d.Spread())
		if step%50 == 0 {
			fmt.Printf("%6d %12.2f %12.2f %12.2f %16.2f\n",
				step, a.Spread(), b.Spread(), c.Spread(), d.Spread())
		}
	}
	fmt.Println()
	if err := trace.Plot(os.Stdout,
		[]string{"plane", "kohring", "pillar-DDM", "permanent-DLB"},
		[][]float64{sPlane, sKoh, sPil, sDLB}, 72, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe permanent-cell DLB tracks the lowest imbalance; Kohring's 1-D")
	fmt.Println("scheme can only shift slab boundaries along one axis and misses")
	fmt.Println("cross-section concentration (the paper's Section 1 argument).")
}
