// Droplet: drives a gas into deep condensation under DLB-DDM and watches
// the simulation cross the DLB effective-range boundary of Section 4 —
// the (n, C0/C) trajectory of Fig. 9, the detected boundary point, and the
// comparison against the theoretical upper bound f(m, n).
//
//	go run ./examples/droplet
package main

import (
	"fmt"
	"log"

	"permcell/internal/experiments"
	"permcell/internal/theory"
)

func main() {
	const m, p = 2, 16
	spec := experiments.RunSpec{
		M: m, P: p, Rho: 0.128, Steps: 600, DLB: true,
		Seed: 3, WellK: 2.0, Wells: 4, Hysteresis: 0.1, StatsEvery: 1,
	}
	fmt.Println("droplet: condensing run under DLB-DDM; watching the DLB limit...")
	res, info, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N=%d, C=%d, P=%d, m=%d; C' = %d columns (%.2fx a PE's own %d)\n\n",
		info.N, info.C, p, m,
		theory.CPrimeColumns(m), float64(theory.CPrimeColumns(m))/float64(m*m), m*m)

	fmt.Printf("%8s %8s %8s %10s %10s %12s %8s\n",
		"step", "n", "C0/C", "f(m,n)", "margin", "imbalance", "moved")
	for _, st := range res.Stats {
		if st.Step%50 != 0 {
			continue
		}
		n := st.Conc.NFactor
		bound := 1.0
		if n > 1 {
			bound = theory.MustF(m, n)
		}
		fmt.Printf("%8d %8.3f %8.3f %10.3f %+10.3f %12.2f %8d\n",
			st.Step, n, st.Conc.C0OverC, bound, bound-st.Conc.C0OverC,
			st.Imbalance(), st.Moved)
	}
	fmt.Println("\nwhile C0/C stays below f(m,n), DLB keeps the imbalance small;")
	fmt.Println("once the margin goes negative the permanent-cell limit is exceeded")
	fmt.Println("and the imbalance grows — exactly the paper's Fig. 6(b) behaviour.")
}
