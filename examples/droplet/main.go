// Droplet: drives a gas into deep condensation under DLB-DDM and watches
// the simulation cross the DLB effective-range boundary of Section 4 —
// the (n, C0/C) trajectory of Fig. 9, the detected boundary point, and the
// comparison against the theoretical upper bound f(m, n).
//
//	go run ./examples/droplet
package main

import (
	"context"
	"fmt"
	"log"

	"permcell"
)

func main() {
	const m, p = 2, 16
	fmt.Println("droplet: condensing run under DLB-DDM; watching the DLB limit...")
	res, err := permcell.Run(context.Background(), m, p, 0.128, 600,
		permcell.WithDLB(), permcell.WithSeed(3),
		permcell.WithWells(4, 2.0), permcell.WithHysteresis(0.1))
	if err != nil {
		log.Fatal(err)
	}
	cPrime := permcell.MaxDomainColumns(m)
	fmt.Printf("N=%d, C=%d, P=%d, m=%d; C' = %d columns (%.2fx a PE's own %d)\n\n",
		res.Final.Len(), res.Stats[0].Conc.C, p, m,
		cPrime, float64(cPrime)/float64(m*m), m*m)

	fmt.Printf("%8s %8s %8s %10s %10s %12s %8s\n",
		"step", "n", "C0/C", "f(m,n)", "margin", "imbalance", "moved")
	for _, st := range res.Stats {
		if st.Step%50 != 0 {
			continue
		}
		n := st.Conc.NFactor
		bound := 1.0
		if n > 1 {
			b, err := permcell.Bound(m, n)
			if err != nil {
				log.Fatal(err)
			}
			bound = b
		}
		fmt.Printf("%8d %8.3f %8.3f %10.3f %+10.3f %12.2f %8d\n",
			st.Step, n, st.Conc.C0OverC, bound, bound-st.Conc.C0OverC,
			st.Imbalance(), st.Moved)
	}
	fmt.Println("\nwhile C0/C stays below f(m,n), DLB keeps the imbalance small;")
	fmt.Println("once the margin goes negative the permanent-cell limit is exceeded")
	fmt.Println("and the imbalance grows — exactly the paper's Fig. 6(b) behaviour.")
}
