// Shapes: the Section 2.2 analysis behind choosing square-pillar domains —
// the communication surface (ghost cells imported per step) and the number
// of neighbor PEs for the three domain shapes of Fig. 2, measured on real
// decompositions and compared with the closed forms.
//
//	go run ./examples/shapes
package main

import (
	"fmt"
	"log"

	"permcell/internal/decomp"
	"permcell/internal/space"
)

func main() {
	// A grid that conforms to all three shapes: nc=64 per side, P=64.
	const nc, p = 64, 64
	box, err := space.NewCubicBox(nc * 2.5)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := space.NewGridWithDims(box, nc, nc, nc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("domain-shape communication analysis: C = %d cells, P = %d PEs\n\n", grid.NumCells(), p)
	fmt.Printf("%16s %14s %14s %14s %12s\n",
		"shape", "ghost cells", "closed form", "ghost/owned", "neighbor PEs")

	build := []struct {
		name string
		mk   func() (*decomp.Decomposition, error)
		sh   decomp.Shape
	}{
		{"plane", func() (*decomp.Decomposition, error) { return decomp.NewPlane(grid, p) }, decomp.Plane},
		{"square pillar", func() (*decomp.Decomposition, error) { return decomp.NewSquarePillar(grid, p) }, decomp.SquarePillar},
		{"cube", func() (*decomp.Decomposition, error) { return decomp.NewCube(grid, p) }, decomp.Cube},
	}
	owned := grid.NumCells() / p
	for _, b := range build {
		d, err := b.mk()
		if err != nil {
			log.Fatal(err)
		}
		a, err := decomp.AnalyzeSurface(b.sh, nc, p)
		if err != nil {
			log.Fatal(err)
		}
		ghosts := d.GhostCells(0)
		fmt.Printf("%16s %14d %14d %14.2f %12d\n",
			b.name, ghosts, a.GhostCells, float64(ghosts)/float64(owned), len(d.NeighborRanks(0)))
	}

	fmt.Println("\nthe paper picks the square pillar for mid-size machines: far less")
	fmt.Println("ghost volume than plane slabs, while keeping only 8 neighbor PEs")
	fmt.Println("(the cube needs 26) — and its simple 8-neighbor structure is what")
	fmt.Println("makes the permanent-cell DLB protocol possible.")
}
