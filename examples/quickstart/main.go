// Quickstart: a minimal serial Lennard-Jones simulation with the paper's
// numerical setup (cell lists, velocity Verlet, reduced Argon units) and an
// energy-conservation check.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/units"
	"permcell/internal/workload"
)

func main() {
	// 512 Argon atoms at the paper's supercooled conditions.
	sys, err := workload.LatticeGas(512, units.PaperDensity, units.PaperTref, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: N=%d, box %.2f sigma (%.1f nm), T*=%.3f (%.0f K)\n",
		sys.Set.Len(), sys.Box.L.X,
		units.LengthToMeters(sys.Box.L.X)*1e9,
		sys.Set.Temperature(), units.TemperatureToKelvin(sys.Set.Temperature()))

	// Pure NVE: no thermostat, so total energy must be conserved. The
	// energy-shifted LJ keeps the potential continuous at the cut-off;
	// with the plain truncated form every cut-off crossing would jump the
	// energy by V(r_c) and the "conservation" check would only measure
	// that artifact.
	lj, err := potential.NewLJ(1, 1, 2.5, true)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := mdserial.New(mdserial.Config{
		Box:  sys.Box,
		Pair: lj,
		Dt:   0.002,
	}, sys.Set)
	if err != nil {
		log.Fatal(err)
	}

	e0 := eng.TotalEnergy()
	fmt.Printf("initial: E=%.4f (K=%.4f, U=%.4f), %d cells, %d pair evals/step\n",
		e0, sys.Set.KineticEnergy(), eng.PotentialEnergy(),
		eng.Grid().NumCells(), eng.PairCount())

	for block := 0; block < 5; block++ {
		eng.Run(200)
		e := eng.TotalEnergy()
		fmt.Printf("step %4d: E=%.4f  T*=%.3f  drift=%+.2e\n",
			eng.StepCount(), e, eng.Set().Temperature(), (e-e0)/e0)
	}
	fmt.Println("the drift stays bounded (~1e-4 here, from the residual force")
	fmt.Println("discontinuity at the cut-off) instead of growing: velocity Verlet")
	fmt.Println("is symplectic.")
}
