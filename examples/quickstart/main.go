// Quickstart: a minimal serial Lennard-Jones simulation through the
// public options API — the paper's numerical setup (cell lists, velocity
// Verlet, reduced Argon units) with an energy-conservation check.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"permcell"
)

func main() {
	// The serial reference engine: a box of 4^3 cells of side r_c = 2.5
	// sigma at the paper's supercooled density (N = 256 Argon atoms). It
	// runs pure NVE with the energy-shifted LJ, so total energy must be
	// conserved — the engine's role as a numerical oracle.
	eng, err := permcell.NewSerial(4, permcell.PaperDensity,
		permcell.WithSeed(42), permcell.WithDt(0.002))
	if err != nil {
		log.Fatal(err)
	}

	var e0 float64
	for block := 0; block < 5; block++ {
		if err := eng.Step(200); err != nil {
			log.Fatal(err)
		}
		stats := eng.Stats()
		if block == 0 {
			e0 = stats[0].TotalEnergy
			fmt.Printf("initial: E=%.4f, %.0f pair evals/step\n", e0, stats[0].WorkAve)
		}
		last := stats[len(stats)-1]
		fmt.Printf("step %4d: E=%.4f  T*=%.3f  drift=%+.2e\n",
			last.Step, last.TotalEnergy, last.Temperature, (last.TotalEnergy-e0)/e0)
	}

	res, err := eng.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: N=%d particles intact\n", res.Final.Len())
	fmt.Println("the drift stays bounded instead of growing: velocity Verlet")
	fmt.Println("is symplectic.")
}
