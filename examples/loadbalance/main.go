// Loadbalance: the paper's headline experiment in miniature. A condensing
// gas is run twice on a 4x4 PE torus — once with plain domain decomposition
// (DDM) and once with permanent-cell dynamic load balancing (DLB-DDM) — and
// the per-step load imbalance of both runs is compared.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"os"

	"permcell/internal/experiments"
	"permcell/internal/trace"
)

func main() {
	spec := experiments.RunSpec{
		M: 3, P: 16, Rho: 0.256, Steps: 400,
		Seed: 7, WellK: 1.5, Wells: 12, Hysteresis: 0.1, StatsEvery: 1,
	}

	fmt.Println("running DDM (no load balancing)...")
	ddm, info, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	spec.DLB = true
	fmt.Println("running DLB-DDM (permanent-cell dynamic load balancing)...")
	dlb, _, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nN=%d particles, C=%d cells, P=%d PEs, m=%d\n\n", info.N, info.C, spec.P, spec.M)
	fmt.Printf("%8s  %22s  %22s\n", "", "DDM", "DLB-DDM")
	fmt.Printf("%8s  %10s %11s  %10s %11s\n", "step", "Tt[pairs]", "(max-min)/avg", "Tt[pairs]", "(max-min)/avg")
	var sd, sl []float64
	moved := 0
	for i, st := range ddm.Stats {
		dl := dlb.Stats[i]
		sd = append(sd, st.Imbalance())
		sl = append(sl, dl.Imbalance())
		moved += dl.Moved
		if st.Step%40 == 0 {
			fmt.Printf("%8d  %10.0f %11.2f  %10.0f %11.2f\n",
				st.Step, st.WorkMax, st.Imbalance(), dl.WorkMax, dl.Imbalance())
		}
	}
	fmt.Printf("\nDLB moved %d cell columns in total.\n", moved)
	fmt.Println("\nimbalance (Fmax-Fmin)/Fave over time:")
	if err := trace.Plot(os.Stdout, []string{"DDM", "DLB-DDM"}, [][]float64{sd, sl}, 72, 14); err != nil {
		log.Fatal(err)
	}
}
