// Loadbalance: the paper's headline experiment in miniature. A condensing
// gas is run twice on a 4x4 PE torus — once with plain domain decomposition
// (DDM) and once with permanent-cell dynamic load balancing (DLB-DDM) — and
// the per-step load imbalance of both runs is compared.
//
//	go run ./examples/loadbalance
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"permcell"
	"permcell/internal/trace"
)

func main() {
	const m, p = 3, 16
	opts := []permcell.Option{
		permcell.WithSeed(7), permcell.WithWells(12, 1.5), permcell.WithHysteresis(0.1),
	}

	fmt.Println("running DDM (no load balancing)...")
	ddm, err := permcell.Run(context.Background(), m, p, 0.256, 400, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running DLB-DDM (permanent-cell dynamic load balancing)...")
	dlb, err := permcell.Run(context.Background(), m, p, 0.256, 400,
		append(opts, permcell.WithDLB())...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nN=%d particles, C=%d cells, P=%d PEs, m=%d\n\n",
		ddm.Final.Len(), ddm.Stats[0].Conc.C, p, m)
	fmt.Printf("%8s  %22s  %22s\n", "", "DDM", "DLB-DDM")
	fmt.Printf("%8s  %10s %11s  %10s %11s\n", "step", "Tt[pairs]", "(max-min)/avg", "Tt[pairs]", "(max-min)/avg")
	var sd, sl []float64
	moved := 0
	for i, st := range ddm.Stats {
		dl := dlb.Stats[i]
		sd = append(sd, st.Imbalance())
		sl = append(sl, dl.Imbalance())
		moved += dl.Moved
		if st.Step%40 == 0 {
			fmt.Printf("%8d  %10.0f %11.2f  %10.0f %11.2f\n",
				st.Step, st.WorkMax, st.Imbalance(), dl.WorkMax, dl.Imbalance())
		}
	}
	fmt.Printf("\nDLB moved %d cell columns in total.\n", moved)
	fmt.Println("\nimbalance (Fmax-Fmin)/Fave over time:")
	if err := trace.Plot(os.Stdout, []string{"DDM", "DLB-DDM"}, [][]float64{sd, sl}, 72, 14); err != nil {
		log.Fatal(err)
	}
}
