package permcell

import (
	"context"
	"fmt"
	"math"

	"permcell/internal/balance"
	"permcell/internal/checkpoint"
	"permcell/internal/conc"
	"permcell/internal/core"
	"permcell/internal/corestatic"
	"permcell/internal/decomp"
	"permcell/internal/distrib"
	"permcell/internal/experiments"
	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// Engine is a stepwise MD simulation: the DLB/DDM parallel engine (New),
// the static-decomposition engine (NewStatic) and the serial reference
// engine (NewSerial) all present this shape, so drivers can stream,
// checkpoint or stop any of them the same way.
//
// Step advances by n time steps and blocks until they complete. Stats
// returns a copy of the per-step records collected so far (empty under
// WithDiscardStats); the copy is the caller's to keep or mutate — it never
// aliases engine state, so a driver (or a server streaming a multiplexed
// run) cannot corrupt the accumulating trace. Result ends the run, releases
// any worker goroutines and returns the completed outcome; it must be
// called exactly once even when abandoning a run early, and is the only
// teardown an Engine needs. The Result's Stats slice is handed over to the
// caller: the engine appends nothing after Result. Engines are not safe
// for concurrent use.
type Engine interface {
	Step(n int) error
	Stats() []StepStats
	Result() (*Result, error)
}

// Shape selects a static domain decomposition for NewStatic.
type Shape = decomp.Shape

// Static decomposition shapes (Fig. 2 of the paper).
const (
	ShapePlane        = decomp.Plane
	ShapeSquarePillar = decomp.SquarePillar
	ShapeCube         = decomp.Cube
)

// New starts the parallel engine in paper coordinates: P PEs (perfect
// square) over a grid of (m*sqrt(P))^3 cells of side r_c = 2.5 sigma, at
// reduced density rho (N = round(rho * volume)), with the paper's LJ fluid
// and thermostat. WithDLB selects permanent-cell load balancing. The PE
// goroutines idle awaiting the first Step.
func New(m, p int, rho float64, opts ...Option) (Engine, error) {
	o := buildOptions(opts)
	if err := checkTransport(o, true); err != nil {
		return nil, err
	}
	if o.supervisor != nil {
		return supervised(o, 0, func(oin Options) (Engine, error) {
			return newParallel(m, p, rho, oin)
		})
	}
	return newParallel(m, p, rho, o)
}

// checkTransport validates the WithTransport selection against the engine
// kind and option set at construction time, so an unsupported combination
// fails loudly instead of silently running in-process.
func checkTransport(o Options, parallel bool) error {
	switch o.transport.Kind {
	case "", TransportChan:
		return nil
	case TransportTCP:
		if !parallel {
			return fmt.Errorf("permcell: the tcp transport supports only the parallel engine (New)")
		}
		if o.sabotage != nil {
			return fmt.Errorf("permcell: WithSabotage is not supported on the tcp transport")
		}
		if c := o.transport.Chaos; c != nil {
			switch c.Kind {
			case ChaosWorkerExit, ChaosWorkerStall, ChaosWorkerGarbage:
			default:
				return fmt.Errorf("permcell: unknown worker chaos kind %q", c.Kind)
			}
		}
		return nil
	default:
		return fmt.Errorf("permcell: unknown transport kind %q (want %q or %q)",
			o.transport.Kind, TransportChan, TransportTCP)
	}
}

// newDistributed builds the multi-process engine: an in-process
// coordinator dealing rank blocks to TCP-connected worker processes (or
// goroutine-hosted workers), each running a core.Partial. st, when
// non-nil, resumes from a checkpoint — possibly at a different worker
// count than the one that wrote it (elastic rescaling: the logical rank
// count P is fixed by the run identity; only the hosting changes).
func newDistributed(spec experiments.RunSpec, st *checkpoint.EngineState, o Options) (coreEngine, error) {
	ws := distrib.WireSpec{
		M: spec.M, P: spec.P, Rho: spec.Rho,
		Balancer: balance.Encode(spec.Balancer),
		Seed:     spec.Seed, Dt: spec.Dt,
		Wells: spec.Wells, WellK: spec.WellK, Hysteresis: spec.Hysteresis,
		StatsEvery: spec.StatsEvery, Shards: spec.Shards, Metrics: spec.Metrics,
		Watchdog: o.watchdog, Faults: o.faults, Guard: o.guard,
		Restore: st,
	}
	eng, err := distrib.Start(ws, distrib.Config{
		Procs: o.transport.Procs, Worker: o.transport.Worker, Addr: o.transport.Addr,
		OnStep: o.onStep, DiscardStats: o.discard,
		HandshakeTimeout: o.transport.HandshakeTimeout,
		HeartbeatEvery:   o.transport.HeartbeatEvery,
		HeartbeatMisses:  o.transport.HeartbeatMisses,
		Chaos:            o.transport.Chaos,
	})
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	return eng, nil
}

// newParallel builds the parallel engine from a resolved Options value (the
// supervisor rebuilds engines through it across rollbacks).
func newParallel(m, p int, rho float64, o Options) (Engine, error) {
	spec := experiments.RunSpec{
		M: m, P: p, Rho: rho, DLB: o.dlb, Balancer: o.balancer, Seed: o.seed, Dt: o.dt,
		Wells: o.wells, WellK: o.wellK, Hysteresis: o.hysteresis,
		StatsEvery: o.statsEvery, Shards: o.shards, Metrics: o.metrics,
	}
	meta := checkpoint.Meta{
		Kind: checkpoint.KindDLB, M: m, P: p, Rho: rho,
		DLB: o.dlb, Balancer: balance.Encode(o.balancer),
		Wells: o.wells, WellK: o.wellK, Hysteresis: o.hysteresis,
		Seed: o.seed, Dt: o.dtOrDefault(), Shards: o.shards, StatsEvery: o.statsEvery,
	}
	if o.transport.Kind == TransportTCP {
		eng, err := newDistributed(spec, nil, o)
		if err != nil {
			return nil, err
		}
		return &parallelEngine{eng: eng, ckpt: newCkptWriter(o, meta)}, nil
	}
	cfg, sys, _, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	cfg.OnStep = o.onStep
	cfg.DiscardStats = o.discard
	cfg.Faults = o.faults
	cfg.Watchdog = o.watchdog
	cfg.Guard = o.guard
	cfg.Sabotage = o.sabotage
	eng, err := core.NewEngine(cfg, sys)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	return &parallelEngine{eng: eng, ckpt: newCkptWriter(o, meta)}, nil
}

// Run executes steps time steps of the parallel engine and returns the
// outcome. Cancelling ctx stops the run at the next step boundary and
// returns the partial result together with ctx.Err().
func Run(ctx context.Context, m, p int, rho float64, steps int, opts ...Option) (*Result, error) {
	eng, err := New(m, p, rho, opts...)
	if err != nil {
		return nil, err
	}
	return RunEngine(ctx, eng, steps)
}

// RunEngine drives any Engine for steps time steps, checking ctx between
// steps. On cancellation it finalizes the engine and returns the partial
// result together with ctx.Err(); otherwise the completed result. On a Step
// error it also finalizes the engine — so the worker goroutines are
// released (or at least given their best-effort teardown) rather than
// leaked — and returns whatever partial result the teardown salvaged
// together with the Step error.
func RunEngine(ctx context.Context, eng Engine, steps int) (*Result, error) {
	for i := 0; i < steps; i++ {
		if ctx.Err() != nil {
			res, rerr := eng.Result()
			if rerr != nil {
				return res, rerr
			}
			return res, ctx.Err()
		}
		if err := eng.Step(1); err != nil {
			res, _ := eng.Result()
			return res, err
		}
	}
	return eng.Result()
}

// guardStep is the facade-wide Step argument contract shared by all three
// engines, so misuse reports identically regardless of backend.
func guardStep(finished bool, n int) error {
	if finished {
		return fmt.Errorf("permcell: Step after Result")
	}
	if n < 0 {
		return fmt.Errorf("permcell: negative step count %d", n)
	}
	return nil
}

// coreEngine is the stepwise backend surface shared by the in-process
// core.Engine and the multi-process distrib.Engine; parallelEngine adapts
// either to the facade interface without knowing which transport hosts
// the ranks.
type coreEngine interface {
	Step(n int) error
	AbsStep() int
	Snapshot() (*checkpoint.EngineState, error)
	Stats() []StepStats
	Finish() (*Result, error)
}

// parallelEngine adapts a parallel backend to the facade interface.
type parallelEngine struct {
	eng      coreEngine
	ckpt     ckptWriter
	finished bool
}

// copyStats detaches a stats slice from the engine's internal accumulation
// (see the Engine interface contract: Stats must not alias live state).
func copyStats(s []StepStats) []StepStats {
	if len(s) == 0 {
		return nil
	}
	return append([]StepStats(nil), s...)
}

func (e *parallelEngine) Step(n int) error {
	if err := guardStep(e.finished, n); err != nil {
		return err
	}
	return e.ckpt.stepWithCheckpoints(e.eng, n)
}

// Stats returns a copy: core.Engine.Stats exposes the live slice the rank-0
// goroutine appends to, so handing it out uncopied would let a caller alias
// (and mutate) engine state mid-run.
func (e *parallelEngine) Stats() []StepStats { return copyStats(e.eng.Stats()) }

// TransportProcs reports the worker-process count of a tcp-backed engine
// (0 in-process). The supervisor's rescale policy reads it to pick the
// survivor count after a worker failure.
func (e *parallelEngine) TransportProcs() int {
	if p, ok := e.eng.(interface{ Procs() int }); ok {
		return p.Procs()
	}
	return 0
}
func (e *parallelEngine) Result() (*Result, error) {
	e.finished = true
	return e.eng.Finish() // idempotent: memoizes its own outcome
}

// Checkpoint writes an immediate checkpoint at the current step boundary.
func (e *parallelEngine) Checkpoint() error {
	if e.finished {
		return fmt.Errorf("permcell: Checkpoint after Result")
	}
	return e.ckpt.write(e.eng)
}

// buildSystem constructs the shared serial/static setup: a box of nc cells
// of side r_c per dimension at reduced density rho, the paper's LJ fluid
// at the paper's temperature, plus the optional condensation wells.
func buildSystem(nc int, rho float64, o Options) (workload.System, space.Grid, potential.External, error) {
	if nc < 1 {
		return workload.System{}, space.Grid{}, nil, fmt.Errorf("permcell: grid side %d", nc)
	}
	l := float64(nc) * units.PaperCutoff
	n := int(math.Round(rho * l * l * l))
	sys, err := workload.LatticeGas(n, float64(n)/(l*l*l), units.PaperTref, o.seed)
	if err != nil {
		return workload.System{}, space.Grid{}, nil, err
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		return workload.System{}, space.Grid{}, nil, err
	}
	var ext potential.External
	if o.wellK > 0 {
		if o.wells <= 1 {
			ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: o.wellK, L: sys.Box.L}
		} else {
			// Same seed derivation as the experiments package, so facade
			// runs and experiment runs place identical wells.
			r := rng.New(o.seed ^ 0xA5A5A5A5)
			centers := make([]vec.V, o.wells)
			for i := range centers {
				centers[i] = r.InBox(sys.Box.L)
			}
			ext = potential.MultiWell{Centers: centers, K: o.wellK, L: sys.Box.L}
		}
	}
	return sys, g, ext, nil
}

func (o Options) dtOrDefault() float64 {
	if o.dt == 0 {
		return 0.005
	}
	return o.dt
}

// NewStatic starts the static-decomposition engine: the box is nc cells of
// side r_c per dimension, partitioned over p PEs in the given shape with
// no load balancing. Work and ghost-surface statistics land in the shared
// StepStats fields; DLB-only fields stay zero.
func NewStatic(shape Shape, nc, p int, rho float64, opts ...Option) (Engine, error) {
	o := buildOptions(opts)
	if err := checkTransport(o, false); err != nil {
		return nil, err
	}
	if o.supervisor != nil {
		return supervised(o, 0, func(oin Options) (Engine, error) {
			return newStatic(shape, nc, p, rho, oin)
		})
	}
	return newStatic(shape, nc, p, rho, o)
}

func newStatic(shape Shape, nc, p int, rho float64, o Options) (Engine, error) {
	sys, g, ext, err := buildSystem(nc, rho, o)
	if err != nil {
		return nil, err
	}
	cfg := corestatic.Config{
		Shape: shape, P: p, Grid: g,
		Pair: potential.NewPaperLJ(), Ext: ext,
		Dt: o.dtOrDefault(), Tref: units.PaperTref, RescaleEvery: units.PaperRescaleInterval,
		Shards: o.shards, Metrics: o.metrics, Faults: o.faults, Watchdog: o.watchdog,
		Guard: o.guard, Sabotage: o.sabotage,
	}
	eng, err := corestatic.NewEngine(cfg, sys)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	meta := checkpoint.Meta{
		Kind: checkpoint.KindStatic, Shape: int(shape), NC: nc, P: p, Rho: rho,
		Wells: o.wells, WellK: o.wellK,
		Seed: o.seed, Dt: o.dtOrDefault(), Shards: o.shards, StatsEvery: o.statsEvery,
	}
	return &staticEngine{eng: eng, o: o, ckpt: newCkptWriter(o, meta)}, nil
}

// staticEngine adapts corestatic.Engine, folding its narrower per-step
// records into the shared StepStats shape as they appear. The static
// backend computes no temperature or concentration census, so those shared
// fields stay zero (see DESIGN.md "Observability").
type staticEngine struct {
	eng      *corestatic.Engine
	o        Options
	ckpt     ckptWriter
	stats    []StepStats
	seen     int
	finished bool
	res      *Result
	err      error
}

func (e *staticEngine) Step(n int) error {
	if err := guardStep(e.finished, n); err != nil {
		return err
	}
	if err := e.ckpt.stepWithCheckpoints(e.eng, n); err != nil {
		return err
	}
	e.drain()
	return nil
}

// Checkpoint writes an immediate checkpoint at the current step boundary.
func (e *staticEngine) Checkpoint() error {
	if e.finished {
		return fmt.Errorf("permcell: Checkpoint after Result")
	}
	return e.ckpt.write(e.eng)
}

func (e *staticEngine) drain() {
	raw := e.eng.Stats()
	for _, r := range raw[e.seen:] {
		if r.Step%e.o.statsEvery != 0 {
			continue
		}
		st := StepStats{
			Step:    r.Step,
			WorkMax: r.WorkMax, WorkAve: r.WorkAve, WorkMin: r.WorkMin,
			StepWallMax: r.StepWallMax, StepWallAve: r.StepWallAve,
			Phases:      r.Phases,
			TotalEnergy: r.TotalEnergy,
		}
		if !e.o.discard {
			e.stats = append(e.stats, st)
		}
		if e.o.onStep != nil {
			e.o.onStep(st)
		}
	}
	e.seen = len(raw)
}

// Stats returns a copy (see the Engine interface contract): e.stats keeps
// growing with each drain, so the internal slice must not escape.
func (e *staticEngine) Stats() []StepStats { return copyStats(e.stats) }

func (e *staticEngine) Result() (*Result, error) {
	if e.finished {
		return e.res, e.err
	}
	e.finished = true
	raw, err := e.eng.Finish()
	e.err = err
	if raw == nil {
		return nil, err
	}
	e.drain()
	e.res = &Result{
		Stats: e.stats, Final: raw.Final,
		CommMsgs: raw.CommMsgs, CommBytes: raw.CommBytes,
		Faults: raw.Faults,
	}
	return e.res, e.err
}

// NewSerial starts the serial reference engine on a box of nc cells of
// side r_c per dimension. It runs the identical numerical method (and the
// same flat force kernel) with no communication, but as a pure NVE system
// with the energy-shifted LJ: total energy is conserved, which is the
// serial engine's role as a numerical oracle. (The parallel engines use
// the paper's thermostatted truncated LJ.) Fault-plan and watchdog options
// are ignored.
func NewSerial(nc int, rho float64, opts ...Option) (Engine, error) {
	o := buildOptions(opts)
	if err := checkTransport(o, false); err != nil {
		return nil, err
	}
	if o.supervisor != nil {
		return supervised(o, 0, func(oin Options) (Engine, error) {
			return newSerial(nc, rho, oin)
		})
	}
	return newSerial(nc, rho, o)
}

func newSerial(nc int, rho float64, o Options) (Engine, error) {
	sys, g, ext, err := buildSystem(nc, rho, o)
	if err != nil {
		return nil, err
	}
	lj, err := potential.NewLJ(1, 1, units.PaperCutoff, true)
	if err != nil {
		return nil, err
	}
	eng, err := mdserial.New(mdserial.Config{
		Box: sys.Box, Pair: lj, Ext: ext,
		Dt: o.dtOrDefault(), Grid: g, Shards: o.shards, Metrics: o.metrics,
	}, sys.Set)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	meta := checkpoint.Meta{
		Kind: checkpoint.KindSerial, NC: nc, Rho: rho,
		Wells: o.wells, WellK: o.wellK,
		Seed: o.seed, Dt: o.dtOrDefault(), Shards: o.shards, StatsEvery: o.statsEvery,
	}
	return &serialEngine{eng: eng, o: o, ckpt: newCkptWriter(o, meta)}, nil
}

// serialEngine adapts mdserial.Engine, synthesizing the one-PE census.
type serialEngine struct {
	eng   *mdserial.Engine
	o     Options
	ckpt  ckptWriter
	stats []StepStats
	res   *Result
	err   error
}

func (e *serialEngine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if err := guardStep(e.res != nil, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		e.eng.Step()
		step := e.eng.StepCount()
		if e.ckpt.every > 0 && e.ckpt.active() && step%e.ckpt.every == 0 {
			if err := e.Checkpoint(); err != nil {
				return err
			}
		}
		// Drain the phase accumulator every step so each emitted record
		// describes only its own step, matching the parallel engines.
		sample := e.eng.TakePhaseSample()
		if step%e.o.statsEvery != 0 {
			continue
		}
		occ := e.eng.CellOccupancy()
		empty := 0
		for _, c := range occ {
			if c == 0 {
				empty++
			}
		}
		w := float64(e.eng.PairCount())
		st := StepStats{
			Step:    step,
			WorkMax: w, WorkAve: w, WorkMin: w,
			StepWallMax: e.eng.StepWall(), StepWallAve: e.eng.StepWall(),
			TotalEnergy: e.eng.TotalEnergy(),
			Temperature: e.eng.Set().Temperature(),
			Conc:        conc.Compute([]conc.PE{{Cells: len(occ), Empty: empty}}),
		}
		st.Phases.Fold(sample)
		st.Phases.Finalize(1)
		if !e.o.discard {
			e.stats = append(e.stats, st)
		}
		if e.o.onStep != nil {
			e.o.onStep(st)
		}
	}
	return nil
}

// Checkpoint writes an immediate checkpoint at the current step.
func (e *serialEngine) Checkpoint() error {
	if e.res != nil {
		return fmt.Errorf("permcell: Checkpoint after Result")
	}
	var fr checkpoint.Frame
	checkpoint.CaptureFrame(&fr, 0, e.eng.Set(), nil)
	return e.ckpt.save(e.eng.StepCount(), 0, 0, []checkpoint.Frame{fr})
}

// Stats returns a copy (see the Engine interface contract): e.stats keeps
// growing with each Step, so the internal slice must not escape.
func (e *serialEngine) Stats() []StepStats { return copyStats(e.stats) }

func (e *serialEngine) Result() (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.res == nil {
		e.eng.Close()
		final := e.eng.Set().Clone()
		final.SortByID()
		e.res = &Result{Stats: e.stats, Final: final}
	}
	return e.res, nil
}
