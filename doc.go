// Package permcell reproduces "Efficiency of Dynamic Load Balancing Based
// on Permanent Cells for Parallel Molecular Dynamics Simulation"
// (R. Hayashi, S. Horiguchi, IPPS 2000) as a Go library.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable entry points are cmd/figures, cmd/mdrun,
// cmd/theory, and the programs under examples/. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation section.
package permcell
