package permcell

import (
	"fmt"
	"os"

	"permcell/internal/balance"
	"permcell/internal/checkpoint"
	"permcell/internal/core"
	"permcell/internal/corestatic"
	"permcell/internal/decomp"
	"permcell/internal/experiments"
	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/units"
)

// Checkpointer is implemented by every facade Engine. Checkpoint writes a
// coordinated snapshot immediately, at the current step boundary, into the
// directory configured with WithCheckpoint; it fails when no directory was
// configured. The engine remains usable afterwards.
type Checkpointer interface {
	Checkpoint() error
}

// CheckpointNow writes an immediate checkpoint for any Engine that supports
// it (all engines constructed by this package do).
func CheckpointNow(eng Engine) error {
	c, ok := eng.(Checkpointer)
	if !ok {
		return fmt.Errorf("permcell: engine does not support checkpointing")
	}
	return c.Checkpoint()
}

// snapEngine is the backend surface the checkpoint writer drives: both
// parallel cores expose it.
type snapEngine interface {
	Step(n int) error
	AbsStep() int
	Snapshot() (*checkpoint.EngineState, error)
}

// ckptWriter holds a facade engine's checkpoint policy: the cadence, the
// target directory, and the Meta template carrying the run identity. The
// zero value is inert (no checkpointing).
type ckptWriter struct {
	every int
	dir   string
	meta  checkpoint.Meta
}

func newCkptWriter(o Options, meta checkpoint.Meta) ckptWriter {
	return ckptWriter{every: o.ckptEvery, dir: o.ckptDir, meta: meta}
}

func (w *ckptWriter) active() bool { return w.dir != "" }

// stepWithCheckpoints advances eng by n steps, pausing at every absolute
// multiple of w.every to snapshot and write a checkpoint. With no cadence
// configured it degrades to a plain Step.
func (w *ckptWriter) stepWithCheckpoints(eng snapEngine, n int) error {
	if w.every <= 0 || !w.active() {
		return eng.Step(n)
	}
	for n > 0 {
		chunk := w.every - eng.AbsStep()%w.every
		if chunk > n {
			chunk = n
		}
		if err := eng.Step(chunk); err != nil {
			return err
		}
		n -= chunk
		if eng.AbsStep()%w.every == 0 {
			if err := w.write(eng); err != nil {
				return err
			}
		}
	}
	return nil
}

// write snapshots eng and saves the checkpoint.
func (w *ckptWriter) write(eng snapEngine) error {
	if !w.active() {
		return fmt.Errorf("permcell: no checkpoint directory configured (use WithCheckpoint)")
	}
	st, err := eng.Snapshot()
	if err != nil {
		return err
	}
	return w.save(st.Step, st.CommMsgs, st.CommBytes, st.Frames)
}

// save fills the Meta template's per-snapshot fields and writes the file
// (atomically, rotating latest -> previous).
func (w *ckptWriter) save(step int, msgs, bytes int64, frames []checkpoint.Frame) error {
	if !w.active() {
		return fmt.Errorf("permcell: no checkpoint directory configured (use WithCheckpoint)")
	}
	m := w.meta
	m.Version = checkpoint.FormatVersion
	m.Step = step
	m.CommMsgs, m.CommBytes = msgs, bytes
	if _, err := checkpoint.Save(w.dir, &m, frames); err != nil {
		return fmt.Errorf("permcell: writing checkpoint: %w", err)
	}
	return nil
}

// Restore reconstructs an Engine from a checkpoint written under
// WithCheckpoint (or CheckpointNow). path may be the checkpoint file itself
// or the checkpoint directory, in which case the latest checkpoint is used
// and, should it fail its integrity checks, the retained previous one.
//
// The run identity — engine kind, paper coordinates, physics options, seed,
// time step, shard count, balancer — travels inside the checkpoint and is
// restored from it; options that would change the physics (WithSeed,
// WithDt, WithShards, WithWells, WithHysteresis, WithStatsEvery) are
// ignored. The balancer is checked rather than ignored: a caller that
// explicitly requests one (WithBalancer, or the WithDLB sugar) must name
// the same strategy the checkpoint was written under, otherwise Restore
// refuses — resuming a trajectory under a different balancer would
// silently change the continuation's physics. Runtime options (WithOnStep,
// WithDiscardStats, WithMetrics,
// WithFaultPlan, WithWatchdog, WithCheckpoint) apply normally, so a
// restored run can keep checkpointing into the same directory. The restored
// engine's subsequent trace is bit-identical to the uninterrupted run's:
// step counters continue from the snapshot point, per-PE particle order and
// DLB cell ownership are reinstated exactly, and cumulative communication
// counters carry over.
func Restore(path string, opts ...Option) (Engine, error) {
	o := buildOptions(opts)
	if err := checkTransport(o, true); err != nil {
		return nil, err
	}
	if o.supervisor != nil {
		// Peek at the meta for the absolute start step, then hand the
		// supervisor a rebuilder so rollbacks can reconstruct the engine.
		meta, _, err := loadCheckpoint(path)
		if err != nil {
			return nil, err
		}
		return supervised(o, meta.Step, func(oin Options) (Engine, error) {
			return restoreOpts(path, oin)
		})
	}
	return restoreOpts(path, o)
}

// restoreOpts is Restore with an already-resolved Options value.
func restoreOpts(path string, o Options) (Engine, error) {
	meta, frames, err := loadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	return restoreState(meta, frames, o)
}

// metaBalancer decodes the balancer identity a checkpoint was written
// under. Checkpoints predating the Balancer field carry only the DLB flag,
// which identifies the permanent-cell scheme with the stored hysteresis.
func metaBalancer(meta *checkpoint.Meta) (Balancer, error) {
	if meta.Balancer != "" {
		b, err := balance.Decode(meta.Balancer)
		if err != nil {
			return nil, fmt.Errorf("permcell: checkpoint balancer: %w", err)
		}
		return b, nil
	}
	if meta.DLB {
		return PermanentCell(PermanentCellConfig{Hysteresis: meta.Hysteresis}), nil
	}
	return nil, nil
}

// restoreState rebuilds an engine from loaded checkpoint contents. The
// supervisor calls it directly after vetting a specific file (so its
// latest-vs-previous preference is not overridden by LoadDir's own
// fallback).
func restoreState(meta *checkpoint.Meta, frames []checkpoint.Frame, o Options) (Engine, error) {
	// Physics options come from the file, not the caller (see doc comment)
	// — with one hard check: the balancer is part of the run identity, and
	// resuming a trajectory under a different strategy would silently
	// change the physics of the continuation. A caller that explicitly
	// requested a balancer (WithBalancer or the WithDLB sugar) must match
	// the file.
	fileB, err := metaBalancer(meta)
	if err != nil {
		return nil, err
	}
	if o.balancer != nil && BalancerName(o.balancer) != BalancerName(fileB) {
		return nil, fmt.Errorf("permcell: checkpoint was written under balancer %q; refusing to resume under %q (drop WithBalancer/WithDLB to resume, or restore a matching checkpoint)",
			BalancerName(fileB), BalancerName(o.balancer))
	}
	o.balancer = fileB
	o.dlb = fileB != nil
	o.wells = meta.Wells
	o.wellK = meta.WellK
	o.hysteresis = meta.Hysteresis
	o.seed = meta.Seed
	o.dt = meta.Dt
	o.shards = meta.Shards
	o.statsEvery = meta.StatsEvery
	if o.statsEvery < 1 {
		o.statsEvery = 1
	}
	st := &checkpoint.EngineState{
		Step:      meta.Step,
		Frames:    frames,
		CommMsgs:  meta.CommMsgs,
		CommBytes: meta.CommBytes,
	}
	switch meta.Kind {
	case checkpoint.KindDLB:
		return restoreParallel(meta, st, o)
	case checkpoint.KindStatic:
		return restoreStatic(meta, st, o)
	case checkpoint.KindSerial:
		return restoreSerial(meta, st, o)
	default:
		return nil, fmt.Errorf("permcell: checkpoint has unknown engine kind %q", meta.Kind)
	}
}

func loadCheckpoint(path string) (*checkpoint.Meta, []checkpoint.Frame, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, fmt.Errorf("permcell: %w", err)
	}
	if fi.IsDir() {
		meta, frames, _, err := checkpoint.LoadDir(path)
		return meta, frames, err
	}
	meta, frames, err := checkpoint.Load(path)
	return meta, frames, err
}

func restoreParallel(meta *checkpoint.Meta, st *checkpoint.EngineState, o Options) (Engine, error) {
	spec := experiments.RunSpec{
		M: meta.M, P: meta.P, Rho: meta.Rho, DLB: o.dlb, Balancer: o.balancer,
		Seed: meta.Seed, Dt: meta.Dt,
		Wells: meta.Wells, WellK: meta.WellK, Hysteresis: meta.Hysteresis,
		StatsEvery: o.statsEvery, Shards: meta.Shards, Metrics: o.metrics,
	}
	// Restoring on the tcp transport is the elastic-rescale path: the
	// checkpoint fixes the logical rank count P, while the worker-process
	// count comes from the Transport — so a run checkpointed at one
	// process count resumes at another (or moves between transports)
	// with a bit-identical continuation.
	if o.transport.Kind == TransportTCP {
		eng, err := newDistributed(spec, st, o)
		if err != nil {
			return nil, err
		}
		return &parallelEngine{eng: eng, ckpt: newCkptWriter(o, metaTemplate(meta))}, nil
	}
	// The regenerated system supplies the box, grid and potentials only:
	// the restore path repopulates every PE from its frame instead of
	// redistributing the initial condition.
	cfg, sys, _, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	cfg.OnStep = o.onStep
	cfg.DiscardStats = o.discard
	cfg.Faults = o.faults
	cfg.Watchdog = o.watchdog
	cfg.Guard = o.guard
	cfg.Sabotage = o.sabotage
	cfg.Restore = st
	eng, err := core.NewEngine(cfg, sys)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	return &parallelEngine{eng: eng, ckpt: newCkptWriter(o, metaTemplate(meta))}, nil
}

func restoreStatic(meta *checkpoint.Meta, st *checkpoint.EngineState, o Options) (Engine, error) {
	sys, g, ext, err := buildSystem(meta.NC, meta.Rho, o)
	if err != nil {
		return nil, err
	}
	cfg := corestatic.Config{
		Shape: decomp.Shape(meta.Shape), P: meta.P, Grid: g,
		Pair: potential.NewPaperLJ(), Ext: ext,
		Dt: o.dtOrDefault(), Tref: units.PaperTref, RescaleEvery: units.PaperRescaleInterval,
		Shards: meta.Shards, Metrics: o.metrics, Faults: o.faults, Watchdog: o.watchdog,
		Guard: o.guard, Sabotage: o.sabotage,
		Restore: st,
	}
	eng, err := corestatic.NewEngine(cfg, sys)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	return &staticEngine{eng: eng, o: o, ckpt: newCkptWriter(o, metaTemplate(meta))}, nil
}

func restoreSerial(meta *checkpoint.Meta, st *checkpoint.EngineState, o Options) (Engine, error) {
	if len(st.Frames) != 1 {
		return nil, fmt.Errorf("permcell: serial checkpoint has %d frames, want 1", len(st.Frames))
	}
	set, err := st.Frames[0].SetOf()
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	// buildSystem regenerates the box, grid and well placement from the
	// stored seed; its particle set is discarded in favor of the frame's.
	sys, g, ext, err := buildSystem(meta.NC, meta.Rho, o)
	if err != nil {
		return nil, err
	}
	lj, err := potential.NewLJ(1, 1, units.PaperCutoff, true)
	if err != nil {
		return nil, err
	}
	eng, err := mdserial.New(mdserial.Config{
		Box: sys.Box, Pair: lj, Ext: ext,
		Dt: o.dtOrDefault(), Grid: g, Shards: meta.Shards, Metrics: o.metrics,
		StartStep: meta.Step,
	}, set)
	if err != nil {
		return nil, fmt.Errorf("permcell: %w", err)
	}
	return &serialEngine{eng: eng, o: o, ckpt: newCkptWriter(o, metaTemplate(meta))}, nil
}

// metaTemplate strips the per-snapshot fields from a loaded Meta so the
// restored engine's own writer refills them at each save.
func metaTemplate(meta *checkpoint.Meta) checkpoint.Meta {
	m := *meta
	m.Step = 0
	m.CommMsgs, m.CommBytes = 0, 0
	m.RNG = nil
	return m
}
