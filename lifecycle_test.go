package permcell_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"permcell"
)

// settledGoroutines polls until the live goroutine count drops to at most
// base (worker teardown is asynchronous), returning the last count seen.
func settledGoroutines(base int) int {
	var n int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestStepGuardsUniform pins the facade-wide Step/Result contract to
// identical behavior across all three engines: negative counts and Step
// after Result are rejected with the same messages, Step(0) is a no-op,
// and Result is idempotent.
func TestStepGuardsUniform(t *testing.T) {
	engines := []struct {
		name string
		mk   func() (permcell.Engine, error)
	}{
		{"parallel", func() (permcell.Engine, error) { return permcell.New(2, 4, 0.2) }},
		{"static", func() (permcell.Engine, error) { return permcell.NewStatic(permcell.ShapeCube, 4, 8, 0.2) }},
		{"serial", func() (permcell.Engine, error) { return permcell.NewSerial(4, 0.2) }},
	}
	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Step(-3); err == nil || !strings.Contains(err.Error(), "permcell: negative step count -3") {
				t.Errorf("Step(-3) err = %v", err)
			}
			if err := eng.Step(0); err != nil {
				t.Errorf("Step(0) err = %v", err)
			}
			if err := eng.Step(2); err != nil {
				t.Fatalf("Step(2) err = %v", err)
			}
			res, err := eng.Result()
			if err != nil {
				t.Fatalf("Result err = %v", err)
			}
			if res == nil || res.Final == nil {
				t.Fatal("no result")
			}
			if err := eng.Step(1); err == nil || !strings.Contains(err.Error(), "permcell: Step after Result") {
				t.Errorf("Step after Result err = %v", err)
			}
			again, err := eng.Result()
			if err != nil {
				t.Fatalf("second Result err = %v", err)
			}
			if again != res {
				t.Error("Result not idempotent")
			}
		})
	}
}

// TestStatsEveryZeroSafe pins the WithStatsEvery(0) fix: it used to reach a
// modulo-by-zero in the serial and static facade engines.
func TestStatsEveryZeroSafe(t *testing.T) {
	for _, mk := range []func() (permcell.Engine, error){
		func() (permcell.Engine, error) { return permcell.NewSerial(4, 0.2, permcell.WithStatsEvery(0)) },
		func() (permcell.Engine, error) {
			return permcell.NewStatic(permcell.ShapeCube, 4, 8, 0.2, permcell.WithStatsEvery(0))
		},
	} {
		eng, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := permcell.RunEngine(context.Background(), eng, 2); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunEngineCancelReleasesGoroutines cancels a run mid-flight and
// demands both a usable partial result and full teardown of the PE
// goroutines — the regression test for RunEngine returning without
// finalizing the engine.
func TestRunEngineCancelReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	steps := 0
	eng, err := permcell.New(2, 4, 0.2, permcell.WithOnStep(func(permcell.StepStats) {
		if steps++; steps == 3 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := permcell.RunEngine(ctx, eng, 1000)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Final == nil || len(res.Stats) < 3 {
		t.Fatalf("unusable partial result: %+v", res)
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("goroutines leaked: %d live, %d before the run", n, base)
	}
}

// TestRunEngineStepErrorSalvage injects a stall long enough to trip the
// batch watchdog, so Step returns a *DeadlockError mid-run. RunEngine must
// finalize the engine anyway: the stall eventually clears, the best-effort
// teardown drains the batch under its extended grace, and the caller gets
// the statistics collected before the failure plus the original error —
// with no goroutines left behind.
func TestRunEngineStepErrorSalvage(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, err := permcell.New(2, 4, 0.2,
		permcell.WithFaultPlan(permcell.FaultPlan{
			Seed:   1,
			Stalls: []permcell.Stall{{Rank: 1, AfterOps: 400, Duration: 300 * time.Millisecond}},
		}),
		permcell.WithWatchdog(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := permcell.RunEngine(context.Background(), eng, 500)
	var dl *permcell.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if res == nil || res.Final == nil || len(res.Stats) == 0 {
		t.Fatalf("salvage produced no usable partial result: %+v", res)
	}
	if n := settledGoroutines(base); n > base {
		t.Errorf("goroutines leaked: %d live, %d before the run", n, base)
	}
}
