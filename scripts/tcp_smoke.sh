#!/usr/bin/env bash
# End-to-end smoke for the TCP transport with real worker processes: builds
# mdrun + mdrank, runs the same tiny simulation once in-process and once
# spread over mdrank workers, and asserts the deterministic CSV columns
# (everything but wall times) are bit-identical, while the tcp run
# actually crossed the wire (sent_frames > 0 in the JSONL
# metrics, mdrank visible as child processes). Exists to catch what only
# real exec + real sockets can: worker spawning, -connect plumbing,
# stdio/teardown behavior.
set -euo pipefail

DATA="$(mktemp -d)"
trap 'rm -rf "$DATA"' EXIT

die() {
    echo "tcp_smoke: FAIL: $*" >&2
    exit 1
}

# det strips the run-header comment and the wall-time columns (5-8:
# wall_max, wall_ave, wall_min, step_wall_max) — the only
# non-deterministic content of the CSV.
det() {
    grep -v '^#' "$1" | cut -d, --complement -f5-8
}

go build -o "$DATA/bin/" ./cmd/mdrun ./cmd/mdrank
[[ -x "$DATA/bin/mdrank" ]] || die "mdrank did not build"

ARGS=(-m 2 -p 4 -rho 0.3 -steps 24 -dlb -wells 2 -wellk 1.5 -seed 7)

"$DATA/bin/mdrun" "${ARGS[@]}" -o "$DATA/chan.csv" \
    2>"$DATA/chan.log" || die "in-process run failed: $(cat "$DATA/chan.log")"

# -mdrank auto resolves the sibling binary; -ranks 2 puts 2 PEs per process.
"$DATA/bin/mdrun" "${ARGS[@]}" -transport tcp -ranks 2 \
    -o "$DATA/tcp.csv" -metrics "$DATA/tcp.jsonl" \
    2>"$DATA/tcp.log" || die "tcp run failed: $(cat "$DATA/tcp.log")"

diff <(det "$DATA/chan.csv") <(det "$DATA/tcp.csv") \
    || die "chan and tcp CSV traces differ"

# The JSONL stream must report wire traffic: every record carries the
# cumulative sent_frames counter, and by the last step it must be nonzero.
tail -1 "$DATA/tcp.jsonl" | grep -q '"sent_frames":[1-9]' \
    || die "tcp run reported no transport frames: $(tail -1 "$DATA/tcp.jsonl")"

# A rescale across process counts: checkpoint at 12 under 2 workers, resume
# under 4, and the spliced trace must extend the uninterrupted one exactly.
"$DATA/bin/mdrun" "${ARGS[@]}" -steps 12 -transport tcp -ranks 2 \
    -checkpoint-every 12 -checkpoint-dir "$DATA/ckpt" -o "$DATA/half.csv" \
    2>"$DATA/half.log" || die "first half failed: $(cat "$DATA/half.log")"
"$DATA/bin/mdrun" -steps 12 -transport tcp -ranks 4 \
    -resume "$DATA/ckpt" -o "$DATA/rest.csv" \
    2>"$DATA/rest.log" || die "resume failed: $(cat "$DATA/rest.log")"
# Splice the two halves (dropping the resumed run's repeated column
# header) and compare against the uninterrupted run.
det "$DATA/half.csv" > "$DATA/spliced.csv"
det "$DATA/rest.csv" | tail -n +2 >> "$DATA/spliced.csv"
det "$DATA/chan.csv" > "$DATA/golden.csv"
diff "$DATA/spliced.csv" "$DATA/golden.csv" \
    || die "rescaled trace diverges from the uninterrupted run"

# Self-healing under real process failure: the chaos harness runs the same
# system supervised over mdrank workers, kills one mid-run, and asserts the
# healed trace matches the in-process golden bit for bit. Tight heartbeat
# so detection fits in a smoke-test budget.
go build -o "$DATA/bin/" ./cmd/chaos
CHAOS=(-p 4 -m 2 -rho 0.3 -steps 40 -tcp-procs 2 -mdrank "$DATA/bin/mdrank" \
    -heartbeat-every 50ms -heartbeat-misses 5)

"$DATA/bin/chaos" "${CHAOS[@]}" -worker-kill-at 17 \
    >"$DATA/kill.log" 2>&1 || die "worker-kill recovery failed: $(cat "$DATA/kill.log")"
grep -q "recovery identical" "$DATA/kill.log" \
    || die "worker-kill run did not converge: $(cat "$DATA/kill.log")"

# A stall longer than the heartbeat window (250ms) must surface as a
# heartbeat-timeout and heal by rescaling to fewer worker processes.
"$DATA/bin/chaos" "${CHAOS[@]}" -tcp-procs 3 -worker-stall-at 20 \
    -worker-stall-dur 1s -recover rescale \
    >"$DATA/stall.log" 2>&1 || die "worker-stall recovery failed: $(cat "$DATA/stall.log")"
grep -q "heartbeat-timeout" "$DATA/stall.log" \
    || die "stall was not classified as heartbeat-timeout: $(cat "$DATA/stall.log")"

# A corrupted frame stream must surface as a typed frame-decode failure.
"$DATA/bin/chaos" "${CHAOS[@]}" -worker-garbage-at 23 \
    >"$DATA/garbage.log" 2>&1 || die "garbage-frame recovery failed: $(cat "$DATA/garbage.log")"
grep -q "frame-decode" "$DATA/garbage.log" \
    || die "garbage was not classified as frame-decode: $(cat "$DATA/garbage.log")"

# No recovery may strand worker processes: everything spawned from this
# smoke's private bindir must be gone once the runs complete.
sleep 1
! pgrep -f "$DATA/bin/mdrank" >/dev/null \
    || die "orphan mdrank processes survived recovery"

echo "tcp_smoke: OK"
