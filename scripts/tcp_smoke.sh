#!/usr/bin/env bash
# End-to-end smoke for the TCP transport with real worker processes: builds
# mdrun + mdrank, runs the same tiny simulation once in-process and once
# spread over mdrank workers, and asserts the deterministic CSV columns
# (everything but wall times) are bit-identical, while the tcp run
# actually crossed the wire (sent_frames > 0 in the JSONL
# metrics, mdrank visible as child processes). Exists to catch what only
# real exec + real sockets can: worker spawning, -connect plumbing,
# stdio/teardown behavior.
set -euo pipefail

DATA="$(mktemp -d)"
trap 'rm -rf "$DATA"' EXIT

die() {
    echo "tcp_smoke: FAIL: $*" >&2
    exit 1
}

# det strips the run-header comment and the wall-time columns (5-8:
# wall_max, wall_ave, wall_min, step_wall_max) — the only
# non-deterministic content of the CSV.
det() {
    grep -v '^#' "$1" | cut -d, --complement -f5-8
}

go build -o "$DATA/bin/" ./cmd/mdrun ./cmd/mdrank
[[ -x "$DATA/bin/mdrank" ]] || die "mdrank did not build"

ARGS=(-m 2 -p 4 -rho 0.3 -steps 24 -dlb -wells 2 -wellk 1.5 -seed 7)

"$DATA/bin/mdrun" "${ARGS[@]}" -o "$DATA/chan.csv" \
    2>"$DATA/chan.log" || die "in-process run failed: $(cat "$DATA/chan.log")"

# -mdrank auto resolves the sibling binary; -ranks 2 puts 2 PEs per process.
"$DATA/bin/mdrun" "${ARGS[@]}" -transport tcp -ranks 2 \
    -o "$DATA/tcp.csv" -metrics "$DATA/tcp.jsonl" \
    2>"$DATA/tcp.log" || die "tcp run failed: $(cat "$DATA/tcp.log")"

diff <(det "$DATA/chan.csv") <(det "$DATA/tcp.csv") \
    || die "chan and tcp CSV traces differ"

# The JSONL stream must report wire traffic: every record carries the
# cumulative sent_frames counter, and by the last step it must be nonzero.
tail -1 "$DATA/tcp.jsonl" | grep -q '"sent_frames":[1-9]' \
    || die "tcp run reported no transport frames: $(tail -1 "$DATA/tcp.jsonl")"

# A rescale across process counts: checkpoint at 12 under 2 workers, resume
# under 4, and the spliced trace must extend the uninterrupted one exactly.
"$DATA/bin/mdrun" "${ARGS[@]}" -steps 12 -transport tcp -ranks 2 \
    -checkpoint-every 12 -checkpoint-dir "$DATA/ckpt" -o "$DATA/half.csv" \
    2>"$DATA/half.log" || die "first half failed: $(cat "$DATA/half.log")"
"$DATA/bin/mdrun" -steps 12 -transport tcp -ranks 4 \
    -resume "$DATA/ckpt" -o "$DATA/rest.csv" \
    2>"$DATA/rest.log" || die "resume failed: $(cat "$DATA/rest.log")"
# Splice the two halves (dropping the resumed run's repeated column
# header) and compare against the uninterrupted run.
det "$DATA/half.csv" > "$DATA/spliced.csv"
det "$DATA/rest.csv" | tail -n +2 >> "$DATA/spliced.csv"
det "$DATA/chan.csv" > "$DATA/golden.csv"
diff "$DATA/spliced.csv" "$DATA/golden.csv" \
    || die "rescaled trace diverges from the uninterrupted run"

echo "tcp_smoke: OK"
