#!/usr/bin/env bash
# End-to-end smoke for cmd/mdserve: boots the service, drives two runs
# through submit/stream/pause/resume, and asserts the /metrics exposition
# reports them. CI runs this after the unit/soak suites; it exists to
# catch what only a real process + real HTTP round-trips can (flag
# parsing, mux wiring, graceful drain).
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/mdserve.log"

cleanup() {
    [[ -n "${SRV_PID:-}" ]] && kill "$SRV_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$DATA"
}
trap cleanup EXIT

die() {
    echo "serve_smoke: FAIL: $*" >&2
    echo "--- mdserve log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

go build -o "$DATA/mdserve" ./cmd/mdserve
"$DATA/mdserve" -addr "$ADDR" -data "$DATA/runs" -workers 2 -batch 1 >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    [[ $i == 50 ]] && die "service never became healthy"
    sleep 0.2
done

# Run 1: a supervised parallel run, long enough to pause mid-flight.
R1=$(curl -sf -X POST "$BASE/runs" -d '{
  "kind": "parallel", "m": 2, "p": 4, "rho": 0.4, "steps": 400,
  "balancer": "permcell", "checkpoint_every": 50, "max_retries": 1
}' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[[ -n "$R1" ]] || die "run 1 not created"

# Run 2: a short serial run; must complete on its own.
R2=$(curl -sf -X POST "$BASE/runs" -d '{
  "kind": "serial", "nc": 4, "rho": 0.4, "steps": 30
}' | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[[ -n "$R2" ]] || die "run 2 not created"

# Pause run 1 once it is actually running (409 while still queued).
for i in $(seq 1 100); do
    curl -sf -X POST "$BASE/runs/$R1/pause" >/dev/null 2>&1 && break
    [[ $i == 100 ]] && die "run 1 never became pausable"
    sleep 0.1
done
for i in $(seq 1 100); do
    state=$(curl -sf "$BASE/runs/$R1" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [[ "$state" == "paused" ]] && break
    [[ $i == 100 ]] && die "run 1 stuck in $state, want paused"
    sleep 0.1
done

# A paused run must hold a checkpoint in its private directory.
[[ -f "$DATA/runs/$R1/latest.ckpt" ]] || die "paused run has no checkpoint"

curl -sf -X POST "$BASE/runs/$R1/resume" >/dev/null || die "resume failed"

# Both streams must replay full, valid JSONL histories and terminate.
curl -sfN "$BASE/runs/$R1/stream" >"$DATA/r1.jsonl"
curl -sfN "$BASE/runs/$R2/stream" >"$DATA/r2.jsonl"
N1=$(wc -l <"$DATA/r1.jsonl")
N2=$(wc -l <"$DATA/r2.jsonl")
[[ "$N1" -ge 400 ]] || die "run 1 streamed $N1 records, want >= 400"
[[ "$N2" -eq 30 ]] || die "run 2 streamed $N2 records, want 30"
grep -q '"work_max"' "$DATA/r2.jsonl" || die "stream records missing work metrics"

for id in "$R1" "$R2"; do
    state=$(curl -sf "$BASE/runs/$id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [[ "$state" == "completed" ]] || die "run $id ended $state, want completed"
done

METRICS=$(curl -sf "$BASE/metrics")
for want in \
    'permcell_serve_runs{state="completed"} 2' \
    "permcell_run_steps_done{run=\"$R1\"} 400" \
    "permcell_run_steps_done{run=\"$R2\"} 30" \
    "permcell_steps_total{run=\"$R2\"} 30" \
    'permcell_serve_admitted_total 2'; do
    grep -qF "$want" <<<"$METRICS" || die "/metrics missing: $want"
done
# One header block per family, even with two runs exporting it.
[[ "$(grep -c '# HELP permcell_steps_total' <<<"$METRICS")" == 1 ]] \
    || die "/metrics repeats family headers"

# Graceful drain.
kill -TERM "$SRV_PID"
wait "$SRV_PID" || die "mdserve exited non-zero on SIGTERM"
SRV_PID=""

echo "serve_smoke: OK (runs $R1, $R2)"
