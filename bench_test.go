package permcell_test

// One benchmark per table/figure of the paper's evaluation section (at the
// Tiny preset so the whole suite runs in minutes; use cmd/figures
// -scale small|full for the larger reproductions), plus micro-benchmarks of
// the performance-critical kernels and ablation benches for the design
// choices called out in DESIGN.md section 5.

import (
	"fmt"
	"math"
	"testing"

	"permcell/internal/balance"
	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/corestatic"
	"permcell/internal/decomp"
	"permcell/internal/dlb"
	"permcell/internal/experiments"
	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/topology"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// ---- Figure / table reproductions -------------------------------------

func BenchmarkFig5a(b *testing.B) {
	pr := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(pr, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DDMGrowth(), "ddm-growth")
		b.ReportMetric(r.DLBGrowth(), "dlb-growth")
	}
}

func BenchmarkFig5b(b *testing.B) {
	pr := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(pr, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DDMGrowth(), "ddm-growth")
		b.ReportMetric(r.DLBGrowth(), "dlb-growth")
	}
}

func BenchmarkFig6(b *testing.B) {
	pr := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(pr, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.DDM.Steps) - 1
		b.ReportMetric(r.DDM.Spread(last), "ddm-final-spread")
		b.ReportMetric(r.DLB.Spread(last), "dlb-final-spread")
	}
}

func BenchmarkFig9(b *testing.B) {
	pr := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(pr, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.C0C[len(r.C0C)-1], "final-c0-over-c")
		if r.BoundaryIdx >= 0 {
			b.ReportMetric(float64(r.Steps[r.BoundaryIdx]), "boundary-step")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	pr := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(pr, 2, pr.P, 1)
		if err != nil {
			b.Fatal(err)
		}
		if r.Fitted {
			b.ReportMetric(r.EOverT, "E-over-T")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	pr := experiments.Tiny()
	pr.Densities = pr.Densities[:1]
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(pr, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range r.Ms {
			for _, p := range r.Ps {
				if v, ok := r.EOverT[m][p]; ok {
					b.ReportMetric(v, fmt.Sprintf("E-over-T-m%d-p%d", m, p))
				}
			}
		}
	}
}

// ---- Micro-benchmarks ---------------------------------------------------

func BenchmarkForceKernelSerial(b *testing.B) {
	sys, err := workload.LatticeGas(4096, units.PaperDensity, units.PaperTref, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := mdserial.New(mdserial.Config{
		Box: sys.Box, Pair: potential.NewPaperLJ(), Dt: units.PaperTimeStep,
	}, sys.Set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.ReportMetric(float64(eng.PairCount()), "pairs/step")
}

// BenchmarkKernelSharded measures the whole serial step (re-bin + flat
// force kernel) against the intra-PE shard count; the pure-kernel
// comparison against the historical map kernel lives in internal/kernel.
func BenchmarkKernelSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			sys, err := workload.LatticeGas(4096, units.PaperDensity, units.PaperTref, 1)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := mdserial.New(mdserial.Config{
				Box: sys.Box, Pair: potential.NewPaperLJ(), Dt: units.PaperTimeStep,
				Shards: shards,
			}, sys.Set)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

func BenchmarkParallelStepDDM(b *testing.B) { benchParallelStep(b, false) }
func BenchmarkParallelStepDLB(b *testing.B) { benchParallelStep(b, true) }

func benchParallelStep(b *testing.B, dlbOn bool) {
	spec := experiments.RunSpec{
		M: 3, P: 4, Rho: 0.256, Steps: b.N, DLB: dlbOn,
		Seed: 1, WellK: 1.5, Wells: 3, Hysteresis: 0.1, StatsEvery: 1 << 30,
	}
	b.ResetTimer()
	if _, _, err := spec.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParallelStepMetricsOff/On bracket the observability layer's
// whole-step overhead (the acceptance budget is <5%: a handful of
// time.Now() calls and fixed-array adds per step, no allocation).
func BenchmarkParallelStepMetricsOff(b *testing.B) { benchParallelStepMetrics(b, false) }
func BenchmarkParallelStepMetricsOn(b *testing.B)  { benchParallelStepMetrics(b, true) }

func benchParallelStepMetrics(b *testing.B, on bool) {
	spec := experiments.RunSpec{
		M: 3, P: 4, Rho: 0.256, Steps: b.N, DLB: true,
		Seed: 1, WellK: 1.5, Wells: 3, Hysteresis: 0.1, StatsEvery: 1 << 30,
		Metrics: on,
	}
	b.ResetTimer()
	if _, _, err := spec.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDLBDecide(b *testing.B) {
	layout, err := dlb.NewLayout(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	lg := dlb.NewLedger(layout, 5)
	loads := dlb.Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = float64(k) + 1
	}
	cfg := dlb.Config{Pick: dlb.PickMostLoaded}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Decide(loads, cfg)
	}
}

func BenchmarkCommAllreduce(b *testing.B) {
	w, err := comm.NewWorld(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceFloat64(float64(c.Rank()), comm.Sum)
		}
	})
}

func BenchmarkCommNeighborExchange(b *testing.B) {
	tor, err := topology.NewSquareTorus(16)
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(16)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]float64, 256)
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		nbs := tor.UniqueNeighbors(c.Rank())
		for i := 0; i < b.N; i++ {
			for _, nb := range nbs {
				c.Send(nb, 1, payload)
			}
			for _, nb := range nbs {
				c.Recv(nb, 1)
			}
		}
	})
}

func BenchmarkTheoryF(b *testing.B) {
	// Trivially fast; present for completeness of the Section 4 pipeline.
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += theoryF4(1 + math.Mod(float64(i), 2))
	}
	_ = sink
}

func theoryF4(n float64) float64 { return 27 / (43*n - 16) }

// ---- Ablation benches (DESIGN.md section 5) ------------------------------

// BenchmarkAblationLoadMetric compares the deterministic work-count load
// metric against wall-time measurement as the DLB decision input.
func BenchmarkAblationLoadMetric(b *testing.B) {
	for _, mode := range []struct {
		name   string
		metric core.LoadMetric
	}{{"work", core.WorkCount}, {"wall", core.WallTime}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := experiments.RunSpec{
					M: 2, P: 4, Rho: 0.256, Steps: 150, DLB: true,
					Seed: 1, WellK: 1.5, Wells: 3, Hysteresis: 0.1, StatsEvery: 1,
				}
				cfg, sys, _, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg.Metric = mode.metric
				res, err := core.Run(cfg, sys, spec.Steps)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats[len(res.Stats)-1].Imbalance(), "final-imbalance")
			}
		})
	}
}

// BenchmarkAblationDLBInterval varies how often the DLB exchange runs
// (the paper: every step).
func BenchmarkAblationDLBInterval(b *testing.B) {
	for _, every := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := experiments.RunSpec{
					M: 2, P: 4, Rho: 0.256, Steps: 150, DLB: true,
					Seed: 1, WellK: 1.5, Wells: 3, Hysteresis: 0.1, StatsEvery: 1,
				}
				cfg, sys, _, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg.DLBEvery = every
				res, err := core.Run(cfg, sys, spec.Steps)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats[len(res.Stats)-1].Imbalance(), "final-imbalance")
			}
		})
	}
}

// BenchmarkAblationPickStrategy varies which candidate column a PE hands
// over.
func BenchmarkAblationPickStrategy(b *testing.B) {
	for _, s := range []struct {
		name string
		pick dlb.Strategy
	}{
		{"most-loaded", dlb.PickMostLoaded},
		{"least-loaded", dlb.PickLeastLoaded},
		{"lowest-index", dlb.PickLowestIndex},
	} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := experiments.RunSpec{
					M: 3, P: 4, Rho: 0.256, Steps: 150, DLB: true,
					Seed: 1, WellK: 1.5, Wells: 3, Hysteresis: 0.1, StatsEvery: 1,
				}
				cfg, sys, _, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg.DLBPick = s.pick
				res, err := core.Run(cfg, sys, spec.Steps)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats[len(res.Stats)-1].Imbalance(), "final-imbalance")
			}
		})
	}
}

// BenchmarkShapeEngines runs the static-decomposition engine on each of the
// three domain shapes (same system, same P) and reports the halo bytes each
// moved — the Section 2.2 comparison as running code.
func BenchmarkShapeEngines(b *testing.B) {
	const nc, p = 8, 8 // plane: slabs of 1; pillar needs sqrt(8)... use per-shape P
	cases := []struct {
		name  string
		shape decomp.Shape
		p     int
	}{
		{"plane", decomp.Plane, 4},
		{"pillar", decomp.SquarePillar, 4},
		{"cube", decomp.Cube, 8},
	}
	l := float64(nc) * units.PaperCutoff
	n := int(0.256 * l * l * l)
	sys, err := workload.LatticeGas(n, float64(n)/(l*l*l), units.PaperTref, 1)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		b.Fatal(err)
	}
	_ = p
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := corestatic.Config{
				Shape: c.shape, P: c.p, Grid: grid,
				Pair: potential.NewPaperLJ(), Dt: units.PaperTimeStep,
				Tref: units.PaperTref, RescaleEvery: units.PaperRescaleInterval,
			}
			res, err := corestatic.Run(cfg, sys, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CommBytes)/float64(b.N), "halo-bytes/step")
			b.ReportMetric(float64(res.Stats[0].GhostCellsMax), "ghost-cells")
		})
	}
}

// BenchmarkAblationKohring compares the balancing capability of Kohring's
// 1-D discrete boundary shifting (related work) against the paper's
// permanent-cell DLB on the identical per-cell load stream from a real
// condensing run.
func BenchmarkAblationKohring(b *testing.B) {
	const nc, p = 8, 4
	l := float64(nc) * units.PaperCutoff
	n := int(0.256 * l * l * l)
	sys, err := workload.LatticeGas(n, float64(n)/(l*l*l), units.PaperTref, 11)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		b.Fatal(err)
	}
	// Each iteration replays a fixed 150-step condensing window so the
	// reported imbalances do not depend on b.N.
	const window = 150
	var kSpread, dSpread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		koh, err := balance.NewKohring(grid, p)
		if err != nil {
			b.Fatal(err)
		}
		pdlb, err := balance.NewPermanentCellDLB(grid, p, dlb.Config{Hysteresis: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		// Dispersed droplet nuclei, the workload shape of the paper's
		// condensing gas (a single central well is the pathological case
		// for any cell-granular balancer).
		wells := potential.MultiWell{
			Centers: []vec.V{
				sys.Box.L.Hadamard(vec.New(0.2, 0.3, 0.6)),
				sys.Box.L.Hadamard(vec.New(0.7, 0.6, 0.2)),
				sys.Box.L.Hadamard(vec.New(0.5, 0.8, 0.8)),
				sys.Box.L.Hadamard(vec.New(0.9, 0.1, 0.4)),
			},
			K: 1.5, L: sys.Box.L,
		}
		engRun, err := mdserial.New(mdserial.Config{
			Box: sys.Box, Pair: potential.NewPaperLJ(), Ext: wells,
			Dt: 0.005, Tref: units.PaperTref, RescaleEvery: units.PaperRescaleInterval,
			Grid: grid,
		}, sys.Set.Clone())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for step := 0; step < window; step++ {
			engRun.Step()
			load := balance.PairLoad(grid, engRun.CellOccupancy())
			kSpread = koh.Step(load).Spread()
			im, err := pdlb.Step(load)
			if err != nil {
				b.Fatal(err)
			}
			dSpread = im.Spread()
		}
	}
	b.ReportMetric(kSpread, "kohring-imbalance")
	b.ReportMetric(dSpread, "dlb-imbalance")
}

// BenchmarkAblationShapes reports the communication surfaces of the three
// domain shapes (Section 2.2's reason for the square pillar).
func BenchmarkAblationShapes(b *testing.B) {
	const nc, p = 64, 64
	box, err := space.NewCubicBox(nc * 2.5)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := space.NewGridWithDims(box, nc, nc, nc)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		plane, err := decomp.NewPlane(grid, p)
		if err != nil {
			b.Fatal(err)
		}
		pillar, err := decomp.NewSquarePillar(grid, p)
		if err != nil {
			b.Fatal(err)
		}
		cube, err := decomp.NewCube(grid, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(plane.GhostCells(0)), "plane-ghosts")
		b.ReportMetric(float64(pillar.GhostCells(0)), "pillar-ghosts")
		b.ReportMetric(float64(cube.GhostCells(0)), "cube-ghosts")
	}
}
