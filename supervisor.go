package permcell

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/distrib"
	"permcell/internal/supervise"
)

// supervisedEngine is the self-healing wrapper WithSupervisor installs
// around any facade engine. It owns the authoritative step counter and the
// accumulated stats; the inner engine is disposable — on a recoverable
// failure (PE panic, physics-guard violation, watchdog deadlock) the wrapper
// abandons it, restores a fresh engine from the latest valid checkpoint and
// replays up to the failure point. Replayed steps are deduplicated against a
// high-water mark so the outward trace — Stats and the OnStep stream — is
// exactly the uninterrupted run's.
//
// Concurrency: the driver (Step/Result/Checkpoint callers) runs the rollback
// loop; admit is called from the inner engine's stats path (rank 0's
// goroutine for the parallel engine, the driver itself for static/serial).
// An abandoned incarnation's rank 0 may still race one last admit against
// the driver, so admissions are generation-tagged and mu-serialized: a stale
// generation is dropped before it can touch the accumulated state.
type supervisedEngine struct {
	pol  supervise.Policy
	base Options
	dir  string

	mu    sync.Mutex
	gen   int         // current incarnation; admissions from older ones are dropped
	high  int         // highest step already admitted (replay suppression)
	stats []StepStats // accumulated, deduplicated records

	inner    Engine
	abs      int // authoritative absolute step (completed)
	innerAbs int // inner engine's absolute step

	attempts int
	report   supervise.Report
	dead     error // terminal error; set once, Step refuses afterwards

	// rescaleTo, when > 0, overrides the tcp worker-process count of the
	// next (and subsequent) incarnations: the rescale recovery policy
	// shrinks it by one on each worker failure, resuming on the survivors
	// instead of respawning the dead proc.
	rescaleTo int

	// Rollback-target escalation: when a rollback from latest.ckpt yields no
	// forward progress before the next failure, the latest checkpoint itself
	// is suspect and the next rollback prefers previous.ckpt.
	lastRollbackAbs int
	lastPath        string

	finished bool
	res      *Result
	resErr   error
}

// supervised wraps build under the supervision policy in o. startStep is the
// absolute step the run begins at (0 fresh, the checkpoint's step for
// Restore).
func supervised(o Options, startStep int, build func(Options) (Engine, error)) (Engine, error) {
	if o.ckptDir == "" {
		return nil, fmt.Errorf("permcell: WithSupervisor requires a checkpoint directory (use WithCheckpoint)")
	}
	switch o.supervisor.WorkerRecovery {
	case "", supervise.RecoverRespawn, supervise.RecoverRescale:
	default:
		return nil, fmt.Errorf("permcell: unknown worker recovery policy %q (want %q or %q)",
			o.supervisor.WorkerRecovery, supervise.RecoverRespawn, supervise.RecoverRescale)
	}
	s := &supervisedEngine{
		pol: *o.supervisor, base: o, dir: o.ckptDir,
		abs: startStep, innerAbs: startStep, high: startStep,
		lastRollbackAbs: -1,
	}
	inner, err := build(s.innerOptions(0))
	if err != nil {
		return nil, err
	}
	s.inner = inner
	// Anchor checkpoint: guarantee a rollback target exists before the first
	// cadence boundary, so a failure on step 1 is already recoverable.
	if err := CheckpointNow(inner); err != nil {
		abandon(inner)
		return nil, fmt.Errorf("permcell: writing anchor checkpoint: %w", err)
	}
	return s, nil
}

// innerOptions derives the options an inner incarnation runs with: no
// recursive supervision, stats routed through the generation-tagged admit
// hook, and the policy's physics guards armed.
func (s *supervisedEngine) innerOptions(gen int) Options {
	o := s.base
	o.supervisor = nil
	o.discard = true // the wrapper accumulates; inner engines keep nothing
	o.onStep = func(st StepStats) { s.admit(gen, st) }
	if s.rescaleTo > 0 {
		o.transport.Procs = s.rescaleTo
	}
	if s.pol.Guard.Disabled {
		o.guard = nil
	} else {
		g := s.pol.Guard
		o.guard = &g
	}
	return o
}

// admit folds one inner-engine record into the accumulated trace. Stale
// incarnations and already-admitted (replayed) steps are dropped.
func (s *supervisedEngine) admit(gen int, st StepStats) {
	s.mu.Lock()
	if gen != s.gen {
		s.mu.Unlock()
		return
	}
	if st.Step <= s.high {
		s.report.StepsReplayed++
		s.mu.Unlock()
		return
	}
	s.high = st.Step
	if !s.base.discard {
		s.stats = append(s.stats, st)
	}
	fn := s.base.onStep
	s.mu.Unlock()
	if fn != nil {
		fn(st)
	}
}

func (s *supervisedEngine) Step(n int) error {
	if s.dead != nil {
		return s.dead
	}
	if err := guardStep(s.finished, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := s.stepOne(); err != nil {
			return err
		}
	}
	return nil
}

// stepOne advances the authoritative counter by one step, healing
// recoverable failures along the way: classify, back off, roll back, replay,
// retry — until the step lands or the retry budget runs out.
func (s *supervisedEngine) stepOne() error {
	for {
		err := s.advance()
		if err == nil {
			return nil
		}
		kind := classifyFailure(err)
		if kind == "" {
			// Not a supervised failure class (e.g. a checkpoint-write error):
			// surface it unhealed.
			s.dead = err
			return err
		}
		s.recordFailure(kind, err)
		if kind == supervise.EventWorkerFailure && s.pol.WorkerRecovery == supervise.RecoverRescale {
			// Shed the dead worker's slot: restart on one fewer process
			// (never below one). TransportProcs reads the failed
			// incarnation's live count, so repeated failures keep
			// shrinking the pool instead of resetting it.
			if tp, ok := s.inner.(interface{ TransportProcs() int }); ok {
				if procs := tp.TransportProcs(); procs > 1 {
					s.rescaleTo = procs - 1
				}
			}
		}
		if s.attempts >= s.pol.MaxRetries {
			s.report.Exhausted = true
			s.dead = &supervise.RetryBudgetError{
				Attempts: s.attempts, Last: err, Report: s.reportCopy(),
			}
			s.event(supervise.EventGiveUp, err.Error(), "", 0)
			return s.dead
		}
		s.attempts++
		s.report.Retries++
		time.Sleep(s.pol.BackoffFor(s.attempts))
		if rerr := s.rollback(); rerr != nil {
			s.dead = fmt.Errorf("permcell: rollback after %v failed: %w", err, rerr)
			return s.dead
		}
	}
}

// advance drives the inner engine to the next authoritative step, replaying
// any rollback lag first. Inner progress is only trusted on success: a
// failed batch's engine is abandoned wholesale, so partial progress inside
// it never needs accounting.
func (s *supervisedEngine) advance() error {
	target := s.abs + 1
	if lag := target - s.innerAbs; lag > 0 {
		if err := s.safeStep(lag); err != nil {
			return err
		}
		s.innerAbs = target
	}
	s.abs = target
	return nil
}

// safeStep shields the driver from panics escaping the inner Step path (the
// serial engine steps on the caller's goroutine; the parallel engines trap
// rank panics themselves and return them as errors).
func (s *supervisedEngine) safeStep(n int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *supervise.GuardViolation:
				err = v
			case *supervise.RankFailure:
				err = v
			default:
				err = &supervise.RankFailure{Rank: -1, Value: fmt.Sprint(r), Stack: string(debug.Stack())}
			}
		}
	}()
	return s.inner.Step(n)
}

// classifyFailure maps an error to its supervision event kind, or "" when
// the error is not a recoverable failure class.
func classifyFailure(err error) string {
	var gv *supervise.GuardViolation
	var rf *supervise.RankFailure
	var de *comm.DeadlockError
	var wf *distrib.WorkerFailure
	switch {
	case errors.As(err, &gv):
		return supervise.EventGuardViolation
	case errors.As(err, &rf):
		return supervise.EventRankFailure
	case errors.As(err, &de):
		return supervise.EventDeadlock
	case errors.As(err, &wf):
		return supervise.EventWorkerFailure
	}
	return ""
}

func (s *supervisedEngine) recordFailure(kind string, err error) {
	switch kind {
	case supervise.EventGuardViolation:
		s.report.GuardViolations++
	case supervise.EventRankFailure:
		s.report.RankFailures++
	case supervise.EventDeadlock:
		s.report.Deadlocks++
	case supervise.EventWorkerFailure:
		s.report.WorkerFailures++
	}
	s.event(kind, err.Error(), "", 0)
}

// event appends to the report log and notifies the policy's sink. Step is
// the step being attempted when the event fired.
func (s *supervisedEngine) event(kind, errStr, ckptPath string, restored int) {
	ev := supervise.Event{
		Kind: kind, Step: s.abs + 1, Attempt: s.attempts,
		Err: errStr, Checkpoint: ckptPath, RestoredStep: restored,
	}
	s.report.Events = append(s.report.Events, ev)
	if s.pol.OnEvent != nil {
		s.pol.OnEvent(ev)
	}
}

// rollback abandons the current incarnation and restores a fresh one from
// the newest checkpoint that passes integrity and finiteness checks,
// escalating to previous.ckpt when the latest one is suspect.
func (s *supervisedEngine) rollback() error {
	s.mu.Lock()
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	abandon(s.inner)
	s.inner = nil

	// If the last rollback restored latest.ckpt and the run failed again
	// without completing a single new step, replaying latest would fail the
	// same way (a deterministic fault it captured, or state that passes the
	// cheap guards but is already poisoned): start from previous instead.
	latest := filepath.Join(s.dir, checkpoint.LatestName)
	previous := filepath.Join(s.dir, checkpoint.PreviousName)
	candidates := []string{latest, previous}
	if s.abs == s.lastRollbackAbs && filepath.Base(s.lastPath) == checkpoint.LatestName {
		candidates = []string{previous, latest}
	}

	var errs []error
	for _, path := range candidates {
		meta, frames, err := checkpoint.Load(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := checkpoint.CheckFinite(frames); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(path), err))
			continue
		}
		inner, err := restoreState(meta, frames, s.innerOptions(gen))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.inner = inner
		s.innerAbs = meta.Step
		s.lastRollbackAbs = s.abs
		s.lastPath = path
		s.report.Rollbacks++
		s.event(supervise.EventRollback, "", path, meta.Step)
		return nil
	}
	return fmt.Errorf("permcell: no usable rollback checkpoint in %s: %w", s.dir, errors.Join(errs...))
}

// abandon releases a dead incarnation without blocking the recovery path:
// Result on a failed engine runs its best-effort teardown (which can wait
// out a watchdog grace), and on a corrupt serial engine could even panic
// again, so it runs on its own goroutine behind a recover.
func abandon(eng Engine) {
	go func() {
		defer func() { _ = recover() }()
		_, _ = eng.Result()
	}()
}

// Stats returns a copy of the accumulated, replay-deduplicated records,
// taken under the admission mutex: the inner engine's rank-0 goroutine
// appends through admit while a batch is in flight, so handing out the
// internal slice (as this method once did) let a concurrent reader — e.g.
// a server's stream goroutine — alias and even corrupt supervisor state
// mid-run.
func (s *supervisedEngine) Stats() []StepStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyStats(s.stats)
}

func (s *supervisedEngine) Result() (*Result, error) {
	if s.finished {
		return s.res, s.resErr
	}
	s.finished = true
	// The accumulated slice is handed over to the Result (the Engine
	// contract: no appends happen after Result); it is read under the
	// admission mutex so a stale incarnation's last admit cannot race the
	// handover.
	s.mu.Lock()
	stats := s.stats
	s.mu.Unlock()
	if s.dead != nil {
		// Degraded completion: the accumulated prefix is the partial Result;
		// the terminal error (a *RetryBudgetError when the budget ran out)
		// carries the structured failure report.
		if s.inner != nil {
			abandon(s.inner)
		}
		s.res = &Result{Stats: stats}
		s.resErr = s.dead
		return s.res, s.resErr
	}
	res, err := s.inner.Result()
	if res != nil {
		r := *res
		r.Stats = stats // replay-deduplicated trace, not the last incarnation's
		s.res = &r
	}
	s.resErr = err
	return s.res, s.resErr
}

// Checkpoint writes an immediate checkpoint through the current incarnation.
func (s *supervisedEngine) Checkpoint() error {
	if s.finished {
		return fmt.Errorf("permcell: Checkpoint after Result")
	}
	if s.dead != nil {
		return s.dead
	}
	return CheckpointNow(s.inner)
}

func (s *supervisedEngine) reportCopy() *supervise.Report {
	rep := s.report
	rep.Events = append([]supervise.Event(nil), s.report.Events...)
	return &rep
}

// SupervisionReport returns the supervision outcome of an engine running
// under WithSupervisor — the event log plus failure and recovery counters —
// or nil for unsupervised engines. Call it between Step calls or after
// Result.
func SupervisionReport(eng Engine) *SupervisorReport {
	s, ok := eng.(*supervisedEngine)
	if !ok {
		return nil
	}
	return s.reportCopy()
}
