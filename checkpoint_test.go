package permcell

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"permcell/internal/checkpoint"
)

// sameTrace compares the deterministic fields of two step records (wall
// times and phase breakdowns differ between any two runs).
func sameTrace(a, b StepStats) bool {
	return a.Step == b.Step &&
		a.WorkMax == b.WorkMax && a.WorkAve == b.WorkAve && a.WorkMin == b.WorkMin &&
		a.Moved == b.Moved && a.MovedBytes == b.MovedBytes && a.Balancer == b.Balancer &&
		a.TotalEnergy == b.TotalEnergy && a.Temperature == b.Temperature &&
		a.Conc == b.Conc
}

// TestResumeEquivalence is the subsystem's acceptance test: for every engine
// kind and shard count, running 2b steps straight must be bit-identical to
// running b steps, checkpointing, restoring from the file, and running the
// remaining b — per-step trace and final particle state both.
func TestResumeEquivalence(t *testing.T) {
	const b = 6
	kinds := []struct {
		name string
		mk   func(opts ...Option) (Engine, error)
	}{
		{"serial", func(opts ...Option) (Engine, error) { return NewSerial(3, 0.3, opts...) }},
		{"static", func(opts ...Option) (Engine, error) {
			return NewStatic(ShapeSquarePillar, 4, 4, 0.3, opts...)
		}},
		{"dlb", func(opts ...Option) (Engine, error) {
			return New(2, 4, 0.3, append([]Option{WithDLB()}, opts...)...)
		}},
	}
	for _, k := range kinds {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", k.name, shards), func(t *testing.T) {
				base := []Option{WithSeed(5), WithShards(shards)}

				golden, err := k.mk(base...)
				if err != nil {
					t.Fatal(err)
				}
				if err := golden.Step(2 * b); err != nil {
					t.Fatal(err)
				}
				gRes, err := golden.Result()
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: checkpoint at step b, then abandon.
				dir := t.TempDir()
				first, err := k.mk(append([]Option{WithCheckpoint(b, dir)}, base...)...)
				if err != nil {
					t.Fatal(err)
				}
				if err := first.Step(b); err != nil {
					t.Fatal(err)
				}
				if _, err := first.Result(); err != nil {
					t.Fatal(err)
				}
				if _, err := os.Stat(filepath.Join(dir, checkpoint.LatestName)); err != nil {
					t.Fatalf("no checkpoint written: %v", err)
				}

				// Restore from the directory (latest + previous fallback path)
				// and finish the run.
				resumed, err := Restore(dir)
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.Step(b); err != nil {
					t.Fatal(err)
				}
				rRes, err := resumed.Result()
				if err != nil {
					t.Fatal(err)
				}

				tail := gRes.Stats[len(gRes.Stats)-len(rRes.Stats):]
				if len(tail) == 0 {
					t.Fatal("no resumed stats to compare")
				}
				for i := range tail {
					if !sameTrace(rRes.Stats[i], tail[i]) {
						t.Fatalf("resumed trace diverged at record %d (step %d):\n got %+v\nwant %+v",
							i, rRes.Stats[i].Step, rRes.Stats[i], tail[i])
					}
				}
				if rRes.Final.Len() != gRes.Final.Len() {
					t.Fatalf("final count %d vs %d", rRes.Final.Len(), gRes.Final.Len())
				}
				for i := range gRes.Final.ID {
					if rRes.Final.ID[i] != gRes.Final.ID[i] ||
						rRes.Final.Pos[i] != gRes.Final.Pos[i] ||
						rRes.Final.Vel[i] != gRes.Final.Vel[i] {
						t.Fatalf("final state not bit-identical at particle %d", i)
					}
				}
			})
		}
	}
}

// TestCheckpointCadenceAndRotation drives a run across two checkpoint
// boundaries and verifies the latest/previous rotation plus the absolute
// step recorded in each file.
func TestCheckpointCadenceAndRotation(t *testing.T) {
	dir := t.TempDir()
	eng, err := New(2, 4, 0.3, WithDLB(), WithSeed(2), WithCheckpoint(5, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(12); err != nil { // boundaries at 5 and 10
		t.Fatal(err)
	}
	if _, err := eng.Result(); err != nil {
		t.Fatal(err)
	}
	latest, _, err := checkpoint.Load(filepath.Join(dir, checkpoint.LatestName))
	if err != nil {
		t.Fatal(err)
	}
	prev, _, err := checkpoint.Load(filepath.Join(dir, checkpoint.PreviousName))
	if err != nil {
		t.Fatal(err)
	}
	if latest.Step != 10 || prev.Step != 5 {
		t.Fatalf("checkpoint steps latest=%d previous=%d, want 10 and 5", latest.Step, prev.Step)
	}
	if latest.Kind != checkpoint.KindDLB || !latest.DLB {
		t.Fatalf("meta does not record the run identity: %+v", latest)
	}
}

// TestCheckpointNow exercises the explicit-checkpoint path and its guards.
func TestCheckpointNow(t *testing.T) {
	// No directory configured: a clean error, not a crash.
	bare, err := NewSerial(3, 0.3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckpointNow(bare); err == nil {
		t.Error("CheckpointNow without WithCheckpoint succeeded")
	}
	if _, err := bare.Result(); err != nil {
		t.Fatal(err)
	}

	// every <= 0 disables the cadence but keeps CheckpointNow working.
	dir := t.TempDir()
	eng, err := NewStatic(ShapeSquarePillar, 4, 4, 0.3, WithSeed(1), WithCheckpoint(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpoint.LatestName)); err == nil {
		t.Error("automatic checkpoint written despite every=0")
	}
	if err := CheckpointNow(eng); err != nil {
		t.Fatal(err)
	}
	meta, _, err := checkpoint.Load(filepath.Join(dir, checkpoint.LatestName))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 3 || meta.Kind != checkpoint.KindStatic {
		t.Fatalf("unexpected meta step=%d kind=%q", meta.Step, meta.Kind)
	}
	if _, err := eng.Result(); err != nil {
		t.Fatal(err)
	}
	if err := CheckpointNow(eng); err == nil {
		t.Error("Checkpoint after Result succeeded")
	}
}

// TestRestoreRejectsBadFiles covers the failure paths of Restore.
func TestRestoreRejectsBadFiles(t *testing.T) {
	if _, err := Restore(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("missing file accepted")
	}

	dir := t.TempDir()
	eng, err := NewSerial(3, 0.3, WithSeed(1), WithCheckpoint(2, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Result(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpoint.LatestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(path); err == nil {
		t.Error("bit-flipped checkpoint accepted")
	}
}
