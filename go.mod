module permcell

go 1.24
