package permcell

import (
	"time"

	"permcell/internal/comm"
	"permcell/internal/distrib"
	"permcell/internal/supervise"
)

// FaultPlan re-exports the deterministic communication fault-injection
// plan of the chaos layer (see internal/comm): latency jitter, bounded
// reordering, transient send failures and scripted PE stalls, all drawn
// from seeded RNG streams so faulty runs replay bit for bit.
type FaultPlan = comm.FaultPlan

// Stall is one scripted PE stall inside a FaultPlan.
type Stall = comm.Stall

// DeadlockError is returned when the watchdog detects a communication
// stall; it carries a per-rank state dump with goroutine stacks.
type DeadlockError = comm.DeadlockError

// Supervision types, re-exported from internal/supervise (see DESIGN.md
// section 10 "Supervision and recovery").
type (
	// SupervisorPolicy configures WithSupervisor: retry budget, backoff
	// growth, physics-guard tuning and an optional event sink.
	SupervisorPolicy = supervise.Policy
	// SupervisorReport is the structured supervision outcome: the event log
	// plus failure and recovery counters.
	SupervisorReport = supervise.Report
	// SupervisorEvent is one entry of the supervision log.
	SupervisorEvent = supervise.Event
	// GuardConfig tunes the runtime physics guards.
	GuardConfig = supervise.GuardConfig
	// RankFailure is the typed error for a crashed PE goroutine.
	RankFailure = supervise.RankFailure
	// GuardViolation is the typed error for a failed physics guard.
	GuardViolation = supervise.GuardViolation
	// RetryBudgetError is returned when the supervisor's retry budget is
	// exhausted; the run degrades to a partial Result alongside it.
	RetryBudgetError = supervise.RetryBudgetError
	// Sabotage scripts a one-shot injected fault for chaos-testing the
	// recovery path (WithSabotage).
	Sabotage = supervise.Sabotage
)

// Sabotage kinds.
const (
	SabotagePanic = supervise.SabotagePanic
	SabotageNaN   = supervise.SabotageNaN
)

// Distributed failure types, re-exported from internal/distrib (see
// DESIGN.md section 14 "Distributed failure model and recovery").
type (
	// WorkerFailure is the typed error for a failed coordinator<->worker
	// link on the tcp transport: process exit, heartbeat timeout, frame
	// corruption or protocol violation. Under WithSupervisor it heals by
	// checkpoint rollback; unsupervised it surfaces from Step.
	WorkerFailure = distrib.WorkerFailure
	// WorkerFailureKind classifies a WorkerFailure.
	WorkerFailureKind = distrib.FailureKind
	// WorkerChaos injects one deterministic worker failure on the tcp
	// transport (Transport.Chaos), for chaos-testing distributed recovery.
	WorkerChaos = distrib.WorkerChaos
)

// WorkerFailure kinds.
const (
	WorkerExited           = distrib.FailExited
	WorkerHeartbeatTimeout = distrib.FailHeartbeat
	WorkerFrameDecode      = distrib.FailFrameDecode
	WorkerProtocolError    = distrib.FailProtocol
)

// WorkerChaos kinds.
const (
	ChaosWorkerExit    = distrib.ChaosExit
	ChaosWorkerStall   = distrib.ChaosStall
	ChaosWorkerGarbage = distrib.ChaosGarbage
)

// Worker-recovery policies for SupervisorPolicy.WorkerRecovery: respawn
// the failed worker at the same process count, or rescale onto the
// survivors.
const (
	RecoverRespawn = supervise.RecoverRespawn
	RecoverRescale = supervise.RecoverRescale
)

// Options collects the run parameters beyond the paper coordinates
// (m, P, rho). Construct it only through Option values passed to New,
// NewSerial, NewStatic or Run; the zero value of every field selects the
// documented default.
type Options struct {
	dlb        bool
	balancer   Balancer
	wells      int
	wellK      float64
	hysteresis float64
	shards     int
	seed       uint64
	dt         float64
	statsEvery int
	metrics    bool
	onStep     func(StepStats)
	discard    bool
	faults     *FaultPlan
	watchdog   time.Duration
	ckptEvery  int
	ckptDir    string
	supervisor *supervise.Policy
	sabotage   *supervise.Sabotage
	// guard is set internally by the supervisor when building inner
	// engines (normalized from the policy's GuardConfig); there is no
	// standalone option for it.
	guard     *supervise.GuardConfig
	transport Transport
}

// Transport selects where the parallel engine's PE ranks live. The zero
// value (or Kind "chan") is the in-process reference transport: all ranks
// are goroutines of this process exchanging messages over channels. Kind
// "tcp" hosts the ranks in worker processes connected to an in-process
// coordinator over loopback TCP (length-prefixed gob frames through a
// star topology; see internal/distrib). Both transports honor the same
// delivery contract, so a given seed produces bit-identical step traces
// on either — the transport changes where ranks run, never what they
// compute.
type Transport struct {
	// Kind is "" or "chan" for in-process, "tcp" for multi-process.
	Kind string
	// Procs is the tcp worker-process count, 1..P; ranks are dealt in
	// contiguous blocks. 0 defaults to one process per rank.
	Procs int
	// Worker is the mdrank binary to exec per tcp worker. Empty hosts
	// the workers as goroutines of this process, still speaking real
	// TCP over loopback.
	Worker string
	// Addr is the tcp coordinator listen address (default "127.0.0.1:0").
	Addr string
	// HandshakeTimeout bounds each worker's accept+hello+spec exchange
	// (default 60s); it is passed to exec'd mdrank workers so both sides
	// give up together.
	HandshakeTimeout time.Duration
	// HeartbeatEvery and HeartbeatMisses set the liveness window on every
	// coordinator<->worker link: a link with no frame for
	// HeartbeatEvery x HeartbeatMisses is declared dead and surfaces as a
	// *WorkerFailure instead of hanging the run. Zero selects the
	// defaults (1s x 5); HeartbeatEvery < 0 disables liveness.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// Chaos injects one deterministic worker failure (exit, stall or
	// garbage frame) at a configured step, for chaos-testing distributed
	// recovery. One-shot: a supervised run that heals past the step does
	// not re-fire it.
	Chaos *WorkerChaos
}

// Transport kinds.
const (
	TransportChan = "chan"
	TransportTCP  = "tcp"
)

// Option mutates an Options.
type Option func(*Options)

func buildOptions(opts []Option) Options {
	o := Options{seed: 1, statsEvery: 1}
	for _, fn := range opts {
		fn(&o)
	}
	// The facade engines reduce step numbers modulo statsEvery; clamp
	// WithStatsEvery(0) and negative values to "every step" instead of
	// letting them reach a modulo-by-zero.
	if o.statsEvery < 1 {
		o.statsEvery = 1
	}
	// Resolve the WithDLB sugar into the reference balancer. Order-free:
	// an explicit WithBalancer always wins over the flag, and the
	// WithHysteresis value is folded in only for the sugar form (an
	// explicit PermanentCell carries its own hysteresis).
	if o.balancer == nil && o.dlb {
		o.balancer = PermanentCell(PermanentCellConfig{Hysteresis: o.hysteresis})
	}
	o.dlb = o.balancer != nil
	return o
}

// WithBalancer selects the load-balancing strategy the parallel engine
// drives at the DLB cadence: PermanentCell (the paper's method), SFC or
// Diffusive. nil (the default) runs static DDM. The balancer's parameters
// are part of the run identity and are validated at engine construction;
// WithHysteresis does not apply to an explicitly constructed balancer
// (pass the hysteresis inside its config instead). Ignored by the serial
// and static engines.
func WithBalancer(b Balancer) Option { return func(o *Options) { o.balancer = b } }

// WithDLB enables permanent-cell dynamic load balancing (plain static DDM
// otherwise): sugar for WithBalancer(PermanentCell(PermanentCellConfig{
// Hysteresis: h})) with h from WithHysteresis. Ignored by the serial and
// static engines, and superseded by an explicit WithBalancer.
func WithDLB() Option { return func(o *Options) { o.dlb = true } }

// WithWells adds n harmonic attractor sites of strength k to drive
// condensation (the experiments' accelerated-physics substitution; see
// DESIGN.md). n <= 1 with k > 0 places a single central well.
func WithWells(n int, k float64) Option {
	return func(o *Options) { o.wells, o.wellK = n, k }
}

// WithHysteresis sets the DLB trigger threshold: the relative load gap a
// neighbor must exceed before a column moves (0 = paper-literal). It
// parameterizes the WithDLB sugar; an explicit WithBalancer carries its
// hysteresis in the balancer's own config. Negative values are rejected at
// engine construction.
func WithHysteresis(h float64) Option { return func(o *Options) { o.hysteresis = h } }

// WithShards sets the per-PE force-kernel worker count (<= 1 = serial
// kernel). Results are bit-deterministic for a given shard count but
// differ between shard counts, so the value is part of the run identity.
func WithShards(n int) Option { return func(o *Options) { o.shards = n } }

// WithSeed seeds the initial condition (and the fault plan derivations).
// The default is 1.
func WithSeed(seed uint64) Option { return func(o *Options) { o.seed = seed } }

// WithDt overrides the integration time step. Zero keeps the default of
// 0.005 reduced time units; PaperTimeStep selects the paper's literal 1e-4.
func WithDt(dt float64) Option { return func(o *Options) { o.dt = dt } }

// WithStatsEvery thins the per-step statistics to every k-th step
// (default 1; the global concentration census costs one small allgather).
// Values below 1 select the default.
func WithStatsEvery(k int) Option { return func(o *Options) { o.statsEvery = k } }

// WithMetrics enables the per-phase observability layer: every step's wall
// time is attributed to the phase taxonomy (force, halo, migrate, DLB
// decide/transfer, integrate, collectives) and reduced across PEs into
// StepStats.Phases, together with per-phase message and byte counts. Off
// (the default), the engines carry a nil timer and the hot path pays one
// pointer test per phase boundary; see DESIGN.md "Observability".
func WithMetrics() Option { return func(o *Options) { o.metrics = true } }

// WithOnStep streams each step's statistics to fn as the run progresses.
// For the parallel engines fn runs on rank 0's goroutine and must not call
// back into the engine.
func WithOnStep(fn func(StepStats)) Option { return func(o *Options) { o.onStep = fn } }

// WithDiscardStats drops per-step records after the OnStep hook has seen
// them, keeping long streaming runs O(1) in memory.
func WithDiscardStats() Option { return func(o *Options) { o.discard = true } }

// WithFaultPlan runs all communication under the given deterministic
// fault-injection plan. Serial engines ignore it.
func WithFaultPlan(plan FaultPlan) Option {
	return func(o *Options) { o.faults = &plan }
}

// WithWatchdog arms the deadlock watchdog: a communication stall longer
// than d returns a *DeadlockError instead of hanging. Serial engines
// ignore it.
func WithWatchdog(d time.Duration) Option { return func(o *Options) { o.watchdog = d } }

// WithSupervisor runs the engine under the self-healing supervisor: PE
// panics, physics-guard violations and watchdog deadlocks roll the run back
// to the latest valid checkpoint (falling back to the retained previous one
// when the latest is suspect) and resume with exponential backoff, up to
// p.MaxRetries attempts. When the budget is exhausted the run degrades to a
// partial Result plus a *RetryBudgetError carrying the structured failure
// report. Requires WithCheckpoint (the rollback targets); the supervisor
// writes an anchor checkpoint at construction so a rollback target exists
// before the first cadence boundary. Replayed steps are suppressed from
// Stats and the OnStep stream, so a recovered run's trace is bit-identical
// to the uninterrupted one's.
func WithSupervisor(p SupervisorPolicy) Option {
	return func(o *Options) { pp := p; o.supervisor = &pp }
}

// WithSabotage injects one scripted fault (a PE panic or a NaN velocity) at
// an absolute (step, rank), for chaos-testing the supervisor's recovery
// path. The Sabotage fires exactly once per process: replays after a
// rollback see it spent, so a recovered run converges to the golden trace.
// Serial engines ignore it.
func WithSabotage(s *Sabotage) Option { return func(o *Options) { o.sabotage = s } }

// WithTransport selects the parallel engine's transport (see Transport).
// The serial and static engines support only the in-process transport.
// On the tcp transport WithSabotage is rejected at construction (its
// injection point is in-process PE state), and WithOnStep runs on the
// coordinator's Step path instead of rank 0's goroutine. WithSupervisor
// composes with the tcp transport: worker failures (see WorkerFailure)
// join panics, guard violations and deadlocks as recoverable classes,
// healed by rollback plus respawn or rescale
// (SupervisorPolicy.WorkerRecovery).
func WithTransport(t Transport) Option { return func(o *Options) { o.transport = t } }

// WithCheckpoint writes a coordinated checkpoint into dir every `every`
// time steps (counted in absolute simulation steps, so a restored run keeps
// the original cadence). Step calls spanning a multiple of every pause at
// the boundary, snapshot, write, and continue — the trace is unaffected.
// dir keeps a latest/previous pair, written atomically, so a crash mid-write
// never loses the run. every <= 0 disables the automatic cadence but still
// configures dir for explicit CheckpointNow calls. A failed write surfaces
// as the Step error.
func WithCheckpoint(every int, dir string) Option {
	return func(o *Options) { o.ckptEvery, o.ckptDir = every, dir }
}
