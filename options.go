package permcell

import (
	"time"

	"permcell/internal/comm"
)

// FaultPlan re-exports the deterministic communication fault-injection
// plan of the chaos layer (see internal/comm): latency jitter, bounded
// reordering, transient send failures and scripted PE stalls, all drawn
// from seeded RNG streams so faulty runs replay bit for bit.
type FaultPlan = comm.FaultPlan

// Stall is one scripted PE stall inside a FaultPlan.
type Stall = comm.Stall

// DeadlockError is returned when the watchdog detects a communication
// stall; it carries a per-rank state dump.
type DeadlockError = comm.DeadlockError

// Options collects the run parameters beyond the paper coordinates
// (m, P, rho). Construct it only through Option values passed to New,
// NewSerial, NewStatic or Run; the zero value of every field selects the
// documented default.
type Options struct {
	dlb        bool
	wells      int
	wellK      float64
	hysteresis float64
	shards     int
	seed       uint64
	dt         float64
	statsEvery int
	metrics    bool
	onStep     func(StepStats)
	discard    bool
	faults     *FaultPlan
	watchdog   time.Duration
	ckptEvery  int
	ckptDir    string
}

// Option mutates an Options.
type Option func(*Options)

func buildOptions(opts []Option) Options {
	o := Options{seed: 1, statsEvery: 1}
	for _, fn := range opts {
		fn(&o)
	}
	// The facade engines reduce step numbers modulo statsEvery; clamp
	// WithStatsEvery(0) and negative values to "every step" instead of
	// letting them reach a modulo-by-zero.
	if o.statsEvery < 1 {
		o.statsEvery = 1
	}
	return o
}

// WithDLB enables permanent-cell dynamic load balancing (plain static DDM
// otherwise). Ignored by the serial and static engines.
func WithDLB() Option { return func(o *Options) { o.dlb = true } }

// WithWells adds n harmonic attractor sites of strength k to drive
// condensation (the experiments' accelerated-physics substitution; see
// DESIGN.md). n <= 1 with k > 0 places a single central well.
func WithWells(n int, k float64) Option {
	return func(o *Options) { o.wells, o.wellK = n, k }
}

// WithHysteresis sets the DLB trigger threshold: the relative load gap a
// neighbor must exceed before a column moves (0 = paper-literal).
func WithHysteresis(h float64) Option { return func(o *Options) { o.hysteresis = h } }

// WithShards sets the per-PE force-kernel worker count (<= 1 = serial
// kernel). Results are bit-deterministic for a given shard count but
// differ between shard counts, so the value is part of the run identity.
func WithShards(n int) Option { return func(o *Options) { o.shards = n } }

// WithSeed seeds the initial condition (and the fault plan derivations).
// The default is 1.
func WithSeed(seed uint64) Option { return func(o *Options) { o.seed = seed } }

// WithDt overrides the integration time step. Zero keeps the default of
// 0.005 reduced time units; PaperTimeStep selects the paper's literal 1e-4.
func WithDt(dt float64) Option { return func(o *Options) { o.dt = dt } }

// WithStatsEvery thins the per-step statistics to every k-th step
// (default 1; the global concentration census costs one small allgather).
// Values below 1 select the default.
func WithStatsEvery(k int) Option { return func(o *Options) { o.statsEvery = k } }

// WithMetrics enables the per-phase observability layer: every step's wall
// time is attributed to the phase taxonomy (force, halo, migrate, DLB
// decide/transfer, integrate, collectives) and reduced across PEs into
// StepStats.Phases, together with per-phase message and byte counts. Off
// (the default), the engines carry a nil timer and the hot path pays one
// pointer test per phase boundary; see DESIGN.md "Observability".
func WithMetrics() Option { return func(o *Options) { o.metrics = true } }

// WithOnStep streams each step's statistics to fn as the run progresses.
// For the parallel engines fn runs on rank 0's goroutine and must not call
// back into the engine.
func WithOnStep(fn func(StepStats)) Option { return func(o *Options) { o.onStep = fn } }

// WithDiscardStats drops per-step records after the OnStep hook has seen
// them, keeping long streaming runs O(1) in memory.
func WithDiscardStats() Option { return func(o *Options) { o.discard = true } }

// WithFaultPlan runs all communication under the given deterministic
// fault-injection plan. Serial engines ignore it.
func WithFaultPlan(plan FaultPlan) Option {
	return func(o *Options) { o.faults = &plan }
}

// WithWatchdog arms the deadlock watchdog: a communication stall longer
// than d returns a *DeadlockError instead of hanging. Serial engines
// ignore it.
func WithWatchdog(d time.Duration) Option { return func(o *Options) { o.watchdog = d } }

// WithCheckpoint writes a coordinated checkpoint into dir every `every`
// time steps (counted in absolute simulation steps, so a restored run keeps
// the original cadence). Step calls spanning a multiple of every pause at
// the boundary, snapshot, write, and continue — the trace is unaffected.
// dir keeps a latest/previous pair, written atomically, so a crash mid-write
// never loses the run. every <= 0 disables the automatic cadence but still
// configures dir for explicit CheckpointNow calls. A failed write surfaces
// as the Step error.
func WithCheckpoint(every int, dir string) Option {
	return func(o *Options) { o.ckptEvery, o.ckptDir = every, dir }
}
