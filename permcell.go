package permcell

// This file is the public facade over the internal packages: the types and
// entry points a downstream user needs to run serial or parallel
// permanent-cell MD simulations and evaluate the paper's bound, without
// reaching into internal/.

import (
	"context"
	"fmt"

	"permcell/internal/core"
	"permcell/internal/dlb"
	"permcell/internal/experiments"
	"permcell/internal/theory"
	"permcell/internal/units"
)

// Sim describes one parallel MD simulation in the paper's coordinates.
//
// Deprecated: Sim is the original config-struct facade, kept as a thin
// shim over the Options API. New code should call New or Run with Option
// values; Sim.Run produces bit-identical results to the equivalent
// Run(ctx, m, p, rho, steps, opts...) call.
type Sim struct {
	// M is the square-pillar cross-section size (columns per PE side),
	// m >= 2.
	M int
	// P is the PE count; must be a perfect square >= 4. The cell grid has
	// (M*sqrt(P))^3 cells of side r_c = 2.5 sigma.
	P int
	// Rho is the reduced density; N = Rho * volume.
	Rho float64
	// Steps is the number of velocity-Verlet time steps.
	Steps int
	// DLB enables permanent-cell dynamic load balancing (plain DDM
	// otherwise).
	DLB bool
	// Seed makes the run reproducible.
	Seed uint64
	// Dt overrides the time step (0 = 0.005 reduced units; the paper's
	// literal value is units.PaperTimeStep = 1e-4).
	Dt float64
	// Wells > 0 adds that many harmonic attractor sites to drive
	// condensation quickly (0 = pure supercooled-gas physics).
	Wells int
	// WellK is the attractor strength (used when Wells > 0).
	WellK float64
	// Hysteresis is the DLB trigger threshold (relative load gap).
	Hysteresis float64
}

// StepStats re-exports the per-step record (Tt, Fmax/Fave/Fmin, moves,
// concentration state).
type StepStats = core.StepStats

// Result re-exports the run outcome (per-step stats, final particle state,
// message counts).
type Result = core.Result

// Run executes the simulation and returns its statistics and final state.
func (s Sim) Run() (*Result, error) {
	return Run(context.Background(), s.M, s.P, s.Rho, s.Steps, s.options()...)
}

// options translates the legacy struct fields to the Options API,
// preserving the historical defaults (WellK 1.5 when wells are requested
// without a strength).
func (s Sim) options() []Option {
	wellK := s.WellK
	if s.Wells > 0 && wellK == 0 {
		wellK = 1.5
	}
	opts := []Option{WithSeed(s.Seed), WithDt(s.Dt), WithHysteresis(s.Hysteresis), WithWells(s.Wells, wellK)}
	if s.DLB {
		opts = append(opts, WithDLB())
	}
	return opts
}

// Bound returns the paper's theoretical upper bound f(m, n) on the particle
// concentration ratio C_0/C up to which permanent-cell DLB balances
// uniformly (eq. 8; m >= 2, n >= 1).
func Bound(m int, n float64) (float64, error) { return theory.F(m, n) }

// MaxDomainColumns returns C' in columns, m^2 + 3(m-1)^2: the most columns
// one PE can ever host.
func MaxDomainColumns(m int) int { return theory.CPrimeColumns(m) }

// PickStrategy selects which candidate column a PE hands over.
//
// Deprecated: the column-pick strategy is a parameter of the permanent-cell
// balancer, not a global knob. Use the Pick alias and set it through
// PermanentCellConfig.Pick on WithBalancer(PermanentCell(...)).
type PickStrategy = dlb.Strategy

// Column-pick strategies.
//
// Deprecated: set PermanentCellConfig.Pick instead; these constants remain
// valid values for it.
const (
	PickMostLoaded  = dlb.PickMostLoaded
	PickLeastLoaded = dlb.PickLeastLoaded
	PickLowestIndex = dlb.PickLowestIndex
)

// Paper constants (Section 3.2) in reduced LJ units.
const (
	PaperTref            = units.PaperTref
	PaperDensity         = units.PaperDensity
	PaperCutoff          = units.PaperCutoff
	PaperTimeStep        = units.PaperTimeStep
	PaperRescaleInterval = units.PaperRescaleInterval
)

// Validate reports configuration problems without running.
func (s Sim) Validate() error {
	spec := experiments.RunSpec{
		M: s.M, P: s.P, Rho: s.Rho, Steps: s.Steps, Seed: s.Seed,
	}
	if _, _, _, err := spec.Build(); err != nil {
		return fmt.Errorf("permcell: %w", err)
	}
	return nil
}
