package permcell

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/experiments"
)

// fastPolicy is the test supervision policy: a real retry budget with a
// negligible backoff so recovery tests stay fast.
func fastPolicy(retries int) SupervisorPolicy {
	return SupervisorPolicy{MaxRetries: retries, Backoff: time.Millisecond}
}

// goldenTrace runs the given engine constructor uninterrupted and returns
// its trace hash (the deterministic per-step fingerprint).
func goldenTrace(t *testing.T, mk func(opts ...Option) (Engine, error), steps int) uint64 {
	t.Helper()
	eng, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	return experiments.TraceHash(res.Stats)
}

// TestSupervisorRecoversFromPanic is the tentpole acceptance test: an
// injected PE panic mid-run must roll back to the latest checkpoint, resume,
// and produce a final trace bit-identical to the uninterrupted golden run.
func TestSupervisorRecoversFromPanic(t *testing.T) {
	const steps = 24
	mk := func(opts ...Option) (Engine, error) {
		return New(2, 4, 0.3, append([]Option{WithDLB(), WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, steps)

	eng, err := mk(
		WithCheckpoint(8, t.TempDir()),
		WithSupervisor(fastPolicy(3)),
		WithSabotage(&Sabotage{Kind: SabotagePanic, Step: 13, Rank: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatalf("supervised Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.TraceHash(res.Stats); got != golden {
		t.Fatalf("recovered trace hash %#x != golden %#x", got, golden)
	}
	rep := SupervisionReport(eng)
	if rep == nil {
		t.Fatal("SupervisionReport returned nil for a supervised engine")
	}
	if rep.RankFailures < 1 || rep.Rollbacks < 1 || rep.Retries < 1 {
		t.Fatalf("report did not record the recovery: %+v", rep)
	}
	if rep.StepsReplayed == 0 {
		t.Error("no replayed steps recorded (rollback should re-execute steps)")
	}
	if rep.Exhausted {
		t.Error("budget marked exhausted on a recovered run")
	}
}

// TestSupervisorRecoversFromNaN: an injected NaN velocity must trip the
// finite guard before the poisoned step is emitted, then recover to the
// golden trace exactly like the panic case.
func TestSupervisorRecoversFromNaN(t *testing.T) {
	const steps = 24
	mk := func(opts ...Option) (Engine, error) {
		return New(2, 4, 0.3, append([]Option{WithDLB(), WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, steps)

	eng, err := mk(
		WithCheckpoint(8, t.TempDir()),
		WithSupervisor(fastPolicy(3)),
		WithSabotage(&Sabotage{Kind: SabotageNaN, Step: 13, Rank: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatalf("supervised Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.TraceHash(res.Stats); got != golden {
		t.Fatalf("recovered trace hash %#x != golden %#x", got, golden)
	}
	rep := SupervisionReport(eng)
	if rep.GuardViolations < 1 || rep.Rollbacks < 1 {
		t.Fatalf("report did not record the guard recovery: %+v", rep)
	}
}

// TestSupervisorStaticEngine exercises the same recovery path through the
// static-decomposition backend.
func TestSupervisorStaticEngine(t *testing.T) {
	const steps = 18
	mk := func(opts ...Option) (Engine, error) {
		return NewStatic(ShapeSquarePillar, 4, 4, 0.3, append([]Option{WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, steps)

	eng, err := mk(
		WithCheckpoint(6, t.TempDir()),
		WithSupervisor(fastPolicy(3)),
		WithSabotage(&Sabotage{Kind: SabotagePanic, Step: 10, Rank: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatalf("supervised Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.TraceHash(res.Stats); got != golden {
		t.Fatalf("recovered trace hash %#x != golden %#x", got, golden)
	}
	if rep := SupervisionReport(eng); rep.Rollbacks < 1 {
		t.Fatalf("no rollback recorded: %+v", rep)
	}
}

// TestSupervisorBudgetExhausted: with a zero retry budget the first failure
// must degrade the run to a partial Result plus a *RetryBudgetError carrying
// the structured report — never a process crash.
func TestSupervisorBudgetExhausted(t *testing.T) {
	eng, err := New(2, 4, 0.3, WithDLB(), WithSeed(5),
		WithCheckpoint(8, t.TempDir()),
		WithSupervisor(fastPolicy(0)),
		WithSabotage(&Sabotage{Kind: SabotagePanic, Step: 13, Rank: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	serr := eng.Step(24)
	var rbe *RetryBudgetError
	if !errors.As(serr, &rbe) {
		t.Fatalf("Step error = %v, want *RetryBudgetError", serr)
	}
	if !rbe.Report.Exhausted || rbe.Report.RankFailures < 1 {
		t.Fatalf("report incomplete: %+v", rbe.Report)
	}
	var rf *RankFailure
	if !errors.As(serr, &rf) {
		t.Fatalf("budget error does not unwrap to the rank failure: %v", serr)
	}

	res, rerr := eng.Result()
	if !errors.As(rerr, &rbe) {
		t.Fatalf("Result error = %v, want the budget error", rerr)
	}
	if res == nil {
		t.Fatal("no partial Result on budget exhaustion")
	}
	if len(res.Stats) != 12 {
		t.Fatalf("partial trace has %d steps, want the 12 completed before the step-13 failure", len(res.Stats))
	}
}

// TestSupervisorFallsBackToPrevious: when the latest checkpoint is corrupt
// at rollback time, the supervisor must restore the retained previous one
// and still converge to the golden trace.
func TestSupervisorFallsBackToPrevious(t *testing.T) {
	const steps = 24
	mk := func(opts ...Option) (Engine, error) {
		return New(2, 4, 0.3, append([]Option{WithDLB(), WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, steps)

	dir := t.TempDir()
	var restoredFrom []string
	pol := fastPolicy(3)
	pol.OnEvent = func(ev SupervisorEvent) {
		if ev.Kind == "rollback" {
			restoredFrom = append(restoredFrom, filepath.Base(ev.Checkpoint))
		}
	}
	eng, err := mk(
		WithCheckpoint(6, dir),
		WithSupervisor(pol),
		WithSabotage(&Sabotage{Kind: SabotagePanic, Step: 15, Rank: 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Advance past two cadence boundaries (checkpoints at 6 and 12), then
	// corrupt latest.ckpt on disk before the step-15 sabotage fires.
	if err := eng.Step(14); err != nil {
		t.Fatal(err)
	}
	latest := filepath.Join(dir, checkpoint.LatestName)
	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(latest, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps - 14); err != nil {
		t.Fatalf("supervised Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.TraceHash(res.Stats); got != golden {
		t.Fatalf("recovered trace hash %#x != golden %#x", got, golden)
	}
	if len(restoredFrom) == 0 || restoredFrom[0] != checkpoint.PreviousName {
		t.Fatalf("rollback used %v, want %s first", restoredFrom, checkpoint.PreviousName)
	}
}

// TestSupervisorRequiresCheckpointDir: supervision without a rollback target
// is a configuration error, reported at construction.
func TestSupervisorRequiresCheckpointDir(t *testing.T) {
	if _, err := New(2, 4, 0.3, WithSupervisor(fastPolicy(1))); err == nil {
		t.Fatal("WithSupervisor without WithCheckpoint accepted")
	}
	if SupervisionReport(nil) != nil {
		t.Fatal("SupervisionReport(nil) != nil")
	}
}

// TestRestoreUnderSupervisor: Restore composes with WithSupervisor — the
// resumed run is supervised, recovers from failures, and its combined trace
// matches the golden run.
func TestRestoreUnderSupervisor(t *testing.T) {
	const b = 8
	mk := func(opts ...Option) (Engine, error) {
		return New(2, 4, 0.3, append([]Option{WithDLB(), WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, 2*b)

	dir := t.TempDir()
	first, err := mk(WithCheckpoint(b, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Step(b); err != nil {
		t.Fatal(err)
	}
	fRes, err := first.Result()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Restore(dir,
		WithCheckpoint(b, dir),
		WithSupervisor(fastPolicy(3)),
		WithSabotage(&Sabotage{Kind: SabotagePanic, Step: b + 3, Rank: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Step(b); err != nil {
		t.Fatalf("supervised resumed Step: %v", err)
	}
	rRes, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	combined := append(append([]StepStats(nil), fRes.Stats...), rRes.Stats...)
	if got := experiments.TraceHash(combined); got != golden {
		t.Fatalf("combined trace hash %#x != golden %#x", got, golden)
	}
	if rep := SupervisionReport(resumed); rep.Rollbacks < 1 {
		t.Fatalf("no rollback recorded on resumed run: %+v", rep)
	}
}

// TestSupervisorHealthyRunIsTransparent: with no failures the supervised
// trace, final state and report must be indistinguishable from an
// unsupervised run (plus an all-zero report).
func TestSupervisorHealthyRunIsTransparent(t *testing.T) {
	const steps = 12
	mk := func(opts ...Option) (Engine, error) {
		return New(2, 4, 0.3, append([]Option{WithDLB(), WithSeed(5)}, opts...)...)
	}
	golden := goldenTrace(t, mk, steps)

	eng, err := mk(WithCheckpoint(6, t.TempDir()), WithSupervisor(fastPolicy(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.TraceHash(res.Stats); got != golden {
		t.Fatalf("supervised healthy trace hash %#x != golden %#x", got, golden)
	}
	if res.Final == nil {
		t.Fatal("healthy supervised run lost the final state")
	}
	rep := SupervisionReport(eng)
	if rep.Rollbacks != 0 || rep.RankFailures != 0 || rep.GuardViolations != 0 ||
		rep.Deadlocks != 0 || rep.Retries != 0 || len(rep.Events) != 0 {
		t.Fatalf("healthy run has non-zero report: %+v", rep)
	}
}
