package permcell_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"permcell"
)

// Distributed self-healing acceptance tests: a supervised TCP run that
// loses a worker mid-run must detect the loss as a typed WorkerFailure
// within the heartbeat window, roll back to the newest checkpoint, heal
// under the configured policy (respawn at the same process count, or
// rescale to fewer), and converge to a trace bit-identical to the
// uninterrupted in-process golden. Workers are goroutine-hosted (real
// loopback TCP, one test process) so the race detector covers the whole
// detection and recovery path.

// hbTCP is the tcp option with a tight liveness window (50ms x 5 =
// 250ms) so detection fits in a test budget, plus one injected failure.
func hbTCP(procs int, chaos *permcell.WorkerChaos) permcell.Option {
	return permcell.WithTransport(permcell.Transport{
		Kind:            permcell.TransportTCP,
		Procs:           procs,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 5,
		Chaos:           chaos,
	})
}

// runSupervised drives a supervised engine to completion and returns the
// result plus the supervision report.
func runSupervised(t *testing.T, steps int, opts ...permcell.Option) (*permcell.Result, *permcell.SupervisorReport) {
	t.Helper()
	base := []permcell.Option{
		permcell.WithSeed(7),
		permcell.WithDLB(),
		permcell.WithWells(2, 1.5),
		permcell.WithWatchdog(time.Minute),
	}
	eng, err := permcell.New(2, 4, 0.3, append(base, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Step(steps); err != nil {
		eng.Result()
		t.Fatalf("Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res, permcell.SupervisionReport(eng)
}

func healPolicy(policy string) permcell.Option {
	return permcell.WithSupervisor(permcell.SupervisorPolicy{
		MaxRetries:     3,
		Backoff:        time.Millisecond,
		WorkerRecovery: policy,
	})
}

// TestSupervisedTCPWorkerKill kills one of two workers mid-run under the
// respawn policy: the healed trace and final state must match the
// uninterrupted golden bit for bit, with the failure counted in the
// supervision report.
func TestSupervisedTCPWorkerKill(t *testing.T) {
	const steps = 24
	golden := runTransport(t, steps)

	chaos := &permcell.WorkerChaos{Proc: 1, Step: 11, Kind: permcell.ChaosWorkerExit}
	res, rep := runSupervised(t, steps,
		hbTCP(2, chaos),
		permcell.WithCheckpoint(6, t.TempDir()),
		healPolicy(permcell.RecoverRespawn),
	)
	sameTrace(t, "kill+respawn", golden.Stats, res.Stats)
	if !reflect.DeepEqual(golden.Final.Pos, res.Final.Pos) {
		t.Error("healed final positions diverge from golden")
	}
	if rep == nil || rep.WorkerFailures != 1 {
		t.Fatalf("report = %+v, want exactly 1 worker failure", rep)
	}
	if rep.Rollbacks == 0 {
		t.Error("worker kill healed without a rollback")
	}
}

// TestSupervisedTCPWorkerRescale kills one of three workers under the
// rescale policy: the run must finish on fewer processes with an
// identical trace.
func TestSupervisedTCPWorkerRescale(t *testing.T) {
	const steps = 24
	golden := runTransport(t, steps)

	chaos := &permcell.WorkerChaos{Proc: 1, Step: 11, Kind: permcell.ChaosWorkerExit}
	res, rep := runSupervised(t, steps,
		hbTCP(3, chaos),
		permcell.WithCheckpoint(6, t.TempDir()),
		healPolicy(permcell.RecoverRescale),
	)
	sameTrace(t, "kill+rescale", golden.Stats, res.Stats)
	if !reflect.DeepEqual(golden.Final.Pos, res.Final.Pos) {
		t.Error("rescaled final positions diverge from golden")
	}
	if rep == nil || rep.WorkerFailures != 1 || rep.Rollbacks == 0 {
		t.Fatalf("report = %+v, want 1 worker failure and >=1 rollback", rep)
	}
}

// TestSupervisedTCPStallHeals runs a stall longer than the heartbeat
// window under the supervisor: it must classify as heartbeat loss, heal,
// and converge. A stall is the one failure where the worker process is
// still alive — recovery must not be confused by its late revival.
func TestSupervisedTCPStallHeals(t *testing.T) {
	const steps = 24
	golden := runTransport(t, steps)

	chaos := &permcell.WorkerChaos{
		Proc: 1, Step: 11, Kind: permcell.ChaosWorkerStall, Stall: time.Second,
	}
	res, rep := runSupervised(t, steps,
		hbTCP(2, chaos),
		permcell.WithCheckpoint(6, t.TempDir()),
		healPolicy(permcell.RecoverRespawn),
	)
	sameTrace(t, "stall+respawn", golden.Stats, res.Stats)
	if rep == nil || rep.WorkerFailures != 1 || rep.Rollbacks == 0 {
		t.Fatalf("report = %+v, want 1 worker failure and >=1 rollback", rep)
	}
}

// TestWorkerFailureTyped pins the unsupervised surface: each chaos kind
// must fail Step with an errors.As-matchable *WorkerFailure carrying the
// right taxonomy kind, and detection must be bounded — well inside a few
// heartbeat windows, not hanging until a watchdog or forever.
func TestWorkerFailureTyped(t *testing.T) {
	cases := []struct {
		name  string
		chaos *permcell.WorkerChaos
		want  permcell.WorkerFailureKind
	}{
		{"kill", &permcell.WorkerChaos{Proc: 1, Step: 9, Kind: permcell.ChaosWorkerExit}, permcell.WorkerExited},
		{"stall", &permcell.WorkerChaos{Proc: 1, Step: 9, Kind: permcell.ChaosWorkerStall, Stall: 2 * time.Second}, permcell.WorkerHeartbeatTimeout},
		{"garbage", &permcell.WorkerChaos{Proc: 1, Step: 9, Kind: permcell.ChaosWorkerGarbage}, permcell.WorkerFrameDecode},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng, err := permcell.New(2, 4, 0.3,
				permcell.WithSeed(7), permcell.WithDLB(), permcell.WithWells(2, 1.5),
				permcell.WithWatchdog(time.Minute), hbTCP(2, c.chaos))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			start := time.Now()
			err = eng.Step(24)
			elapsed := time.Since(start)
			eng.Result()
			if err == nil {
				t.Fatal("Step survived the injected worker failure")
			}
			var wf *permcell.WorkerFailure
			if !errors.As(err, &wf) {
				t.Fatalf("Step error %v is not a WorkerFailure", err)
			}
			if wf.Kind != c.want {
				t.Errorf("failure kind = %s, want %s (err: %v)", wf.Kind, c.want, err)
			}
			if wf.Proc != 1 {
				t.Errorf("failure proc = %d, want 1", wf.Proc)
			}
			if len(wf.Ranks) == 0 {
				t.Error("failure carries no rank block")
			}
			// Bounded detection: the stall case needs its 2s injected sleep
			// plus the 250ms window; everything else is detected nearly
			// instantly. 10s of headroom keeps slow CI machines green while
			// still catching an unbounded (watchdog- or forever-) hang.
			if elapsed > 10*time.Second {
				t.Errorf("detection took %v, want bounded by heartbeat window", elapsed)
			}
		})
	}
}

// TestWorkerStallUnderWindowHeals proves liveness is tuned, not
// hair-trigger: a stall shorter than the heartbeat window must ride
// through without tripping failure detection, and the run must still
// match the golden trace.
func TestWorkerStallUnderWindowHeals(t *testing.T) {
	const steps = 24
	golden := runTransport(t, steps)

	chaos := &permcell.WorkerChaos{
		Proc: 1, Step: 11, Kind: permcell.ChaosWorkerStall, Stall: 100 * time.Millisecond,
	}
	got := runTransport(t, steps, hbTCP(2, chaos))
	sameTrace(t, "sub-window stall", golden.Stats, got.Stats)
	sameFinal(t, "sub-window stall", golden, got)
}
