package permcell

import "permcell/internal/metrics"

// Phase identifies one slot of the per-step phase taxonomy the
// observability layer (WithMetrics) attributes wall time and message
// traffic to. The collectives that implement the statistics gathering
// itself (the per-step census allgather and the Verify checks) run outside
// the measured step and are deliberately not part of the taxonomy; see
// DESIGN.md "Observability".
type Phase = metrics.Phase

// The phase taxonomy.
const (
	PhaseDLBDecide   = metrics.PhaseDLBDecide
	PhaseDLBTransfer = metrics.PhaseDLBTransfer
	PhaseIntegrate   = metrics.PhaseIntegrate
	PhaseMigrate     = metrics.PhaseMigrate
	PhaseHalo        = metrics.PhaseHalo
	PhaseForce       = metrics.PhaseForce
	PhaseCollective  = metrics.PhaseCollective
	// NumPhases sizes per-phase arrays.
	NumPhases = metrics.NumPhases
)

// PhaseBreakdown is the cross-PE reduction of one step's phase samples:
// per-phase max and average seconds plus total message and byte counts.
// It appears as StepStats.Phases, populated only under WithMetrics.
type PhaseBreakdown = metrics.Breakdown

// PhaseSample is one PE's raw per-step phase accumulation.
type PhaseSample = metrics.Sample
