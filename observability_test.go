package permcell_test

import (
	"context"
	"testing"

	"permcell"
)

// TestMetricsPhaseBreakdown runs each engine under WithMetrics and checks
// the observability contract: phases accumulate time, comm phases carry
// message counts on the parallel engines, and the per-step phase sum
// accounts for the bulk of the measured whole-step wall time (the taxonomy
// excludes only the stats census and tiny glue, so the run-aggregate sum
// must land close below the wall-clock reference).
func TestMetricsPhaseBreakdown(t *testing.T) {
	engines := []struct {
		name     string
		parallel bool
		mk       func() (permcell.Engine, error)
	}{
		{"parallel", true, func() (permcell.Engine, error) {
			return permcell.New(2, 4, 0.3, permcell.WithMetrics(), permcell.WithDLB())
		}},
		{"static", true, func() (permcell.Engine, error) {
			return permcell.NewStatic(permcell.ShapeCube, 4, 8, 0.3, permcell.WithMetrics())
		}},
		{"serial", false, func() (permcell.Engine, error) {
			return permcell.NewSerial(4, 0.3, permcell.WithMetrics())
		}},
	}
	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := permcell.RunEngine(context.Background(), eng, 20)
			if err != nil {
				t.Fatal(err)
			}
			var phaseSum, wallSum float64
			var msgs int64
			for _, st := range res.Stats {
				if st.StepWallAve <= 0 || st.StepWallMax < st.StepWallAve {
					t.Fatalf("step %d wall times %v/%v", st.Step, st.StepWallMax, st.StepWallAve)
				}
				if st.Phases.AveSecs[permcell.PhaseForce] <= 0 {
					t.Fatalf("step %d has no force-phase time", st.Step)
				}
				phaseSum += st.Phases.SumAveSecs()
				wallSum += st.StepWallAve
				msgs += st.Phases.SumMsgs()
			}
			ratio := phaseSum / wallSum
			if ratio > 1.001 {
				t.Errorf("phase sum exceeds step wall: ratio %v", ratio)
			}
			if ratio < 0.6 {
				t.Errorf("phase sum covers only %.0f%% of step wall", 100*ratio)
			}
			if tc.parallel {
				if msgs == 0 {
					t.Error("parallel engine recorded no per-phase messages")
				}
				if res.Stats[0].Phases.Msgs[permcell.PhaseHalo] == 0 {
					t.Error("no halo messages attributed")
				}
			}
		})
	}
}

// TestMetricsOffLeavesStatsZero pins the default: without WithMetrics the
// breakdown stays all-zero, so the hot path demonstrably skipped the timer.
func TestMetricsOffLeavesStatsZero(t *testing.T) {
	res, err := permcell.Run(context.Background(), 2, 4, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stats {
		if st.Phases != (permcell.PhaseBreakdown{}) {
			t.Fatalf("step %d has a phase breakdown without WithMetrics: %+v", st.Step, st.Phases)
		}
	}
}
