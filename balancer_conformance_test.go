package permcell

// Balancer-conformance suite: every strategy of the zoo must satisfy the
// contracts the engine's correctness rests on, regardless of how it picks
// its moves — bit-reproducibility (for each shard count, identical runs
// produce identical traces and final states), particle conservation, zero
// net momentum after the transfer step (forces travel with migrated
// columns, see DESIGN.md section 11), and checkpoint/kill-resume
// equivalence. WithDLB() must remain exact sugar for
// WithBalancer(PermanentCell(...)).

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"permcell/internal/checkpoint"
)

// conformanceZoo returns every real balancer at a zero-ish hysteresis so
// the condensing workload actually triggers moves.
func conformanceZoo() map[string]Balancer {
	return map[string]Balancer{
		"permcell":  PermanentCell(PermanentCellConfig{Hysteresis: 0}),
		"sfc":       SFC(SFCConfig{Hysteresis: 0}),
		"diffusive": Diffusive(DiffusiveConfig{Hysteresis: 0}),
	}
}

// conformanceRun executes one condensing m=2, P=4 run under b.
func conformanceRun(t *testing.T, b Balancer, shards, steps int) *Result {
	t.Helper()
	eng, err := New(2, 4, 0.3,
		WithBalancer(b), WithSeed(7), WithShards(shards), WithWells(1, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(steps); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBalancerConformance(t *testing.T) {
	const steps = 30
	// Reference particle count from a static run of the same system.
	ref := conformanceRun(t, nil, 1, 1)
	wantN := ref.Final.Len()

	for name, b := range conformanceZoo() {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				r1 := conformanceRun(t, b, shards, steps)
				r2 := conformanceRun(t, b, shards, steps)

				// Bit-reproducibility: trace and final state.
				if len(r1.Stats) != len(r2.Stats) {
					t.Fatalf("stats length %d vs %d", len(r1.Stats), len(r2.Stats))
				}
				for i := range r1.Stats {
					if !sameTrace(r1.Stats[i], r2.Stats[i]) {
						t.Fatalf("trace diverged between identical runs at step %d", r1.Stats[i].Step)
					}
				}
				for i := range r1.Final.ID {
					if r1.Final.ID[i] != r2.Final.ID[i] ||
						r1.Final.Pos[i] != r2.Final.Pos[i] ||
						r1.Final.Vel[i] != r2.Final.Vel[i] {
						t.Fatalf("final state not bit-identical at particle %d", i)
					}
				}

				// Identity recorded in every step record.
				if got := r1.Stats[0].Balancer; got != name {
					t.Fatalf("StepStats.Balancer = %q, want %q", got, name)
				}

				// Particle conservation across all migrations.
				if r1.Final.Len() != wantN {
					t.Fatalf("particle count %d, want %d", r1.Final.Len(), wantN)
				}
				if err := r1.Final.Validate(); err != nil {
					t.Fatal(err)
				}

				// The zero-net-momentum contract is asserted in
				// internal/core's TestBalancerZeroNetMomentum, on a
				// blob-driven run with no external forces — the wells here
				// legitimately inject momentum.
			})
		}
	}
}

// TestWithDLBSugarEquivalence pins the API contract of the redesign:
// WithDLB()+WithHysteresis(h) and the explicit
// WithBalancer(PermanentCell(...)) form are the same run, bit for bit.
func TestWithDLBSugarEquivalence(t *testing.T) {
	const steps = 25
	run := func(opts ...Option) *Result {
		t.Helper()
		eng, err := New(2, 4, 0.3,
			append([]Option{WithSeed(3), WithWells(1, 1.5)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Step(steps); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sugar := run(WithDLB(), WithHysteresis(0.1))
	explicit := run(WithBalancer(PermanentCell(PermanentCellConfig{Hysteresis: 0.1})))

	for i := range sugar.Stats {
		if !sameTrace(sugar.Stats[i], explicit.Stats[i]) {
			t.Fatalf("WithDLB and WithBalancer(PermanentCell) traces diverged at step %d:\n got %+v\nwant %+v",
				sugar.Stats[i].Step, explicit.Stats[i], sugar.Stats[i])
		}
	}
	for i := range sugar.Final.ID {
		if sugar.Final.Pos[i] != explicit.Final.Pos[i] || sugar.Final.Vel[i] != explicit.Final.Vel[i] {
			t.Fatalf("final state differs at particle %d", i)
		}
	}
}

// TestResumeEquivalenceAcrossBalancers extends the checkpoint acceptance
// test over the balancer axis: for each strategy, a straight 2b-step run
// must be bit-identical to b steps, a kill, a restore, and b more.
func TestResumeEquivalenceAcrossBalancers(t *testing.T) {
	const b = 6
	for name, bal := range conformanceZoo() {
		t.Run(name, func(t *testing.T) {
			mk := func(opts ...Option) (Engine, error) {
				return New(2, 4, 0.3,
					append([]Option{WithBalancer(bal), WithSeed(5), WithWells(1, 1.5)}, opts...)...)
			}
			golden, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := golden.Step(2 * b); err != nil {
				t.Fatal(err)
			}
			gRes, err := golden.Result()
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			first, err := mk(WithCheckpoint(b, dir))
			if err != nil {
				t.Fatal(err)
			}
			if err := first.Step(b); err != nil {
				t.Fatal(err)
			}
			if _, err := first.Result(); err != nil {
				t.Fatal(err)
			}

			resumed, err := Restore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Step(b); err != nil {
				t.Fatal(err)
			}
			rRes, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}

			if got := rRes.Stats[0].Balancer; got != name {
				t.Fatalf("resumed run reports balancer %q, want %q", got, name)
			}
			tail := gRes.Stats[len(gRes.Stats)-len(rRes.Stats):]
			for i := range tail {
				if !sameTrace(rRes.Stats[i], tail[i]) {
					t.Fatalf("resumed trace diverged at step %d:\n got %+v\nwant %+v",
						rRes.Stats[i].Step, rRes.Stats[i], tail[i])
				}
			}
			for i := range gRes.Final.ID {
				if rRes.Final.Pos[i] != gRes.Final.Pos[i] || rRes.Final.Vel[i] != gRes.Final.Vel[i] {
					t.Fatalf("final state not bit-identical at particle %d", i)
				}
			}
		})
	}
}

// TestRestoreRefusesBalancerMismatch: a checkpoint written under one
// balancer must not silently resume under another — the continuation's
// trajectory would no longer be the checkpointed run's.
func TestRestoreRefusesBalancerMismatch(t *testing.T) {
	dir := t.TempDir()
	eng, err := New(2, 4, 0.3,
		WithBalancer(SFC(SFCConfig{})), WithSeed(2), WithCheckpoint(4, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Result(); err != nil {
		t.Fatal(err)
	}
	meta, _, err := checkpoint.Load(filepath.Join(dir, checkpoint.LatestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(meta.Balancer, "sfc") {
		t.Fatalf("checkpoint meta records balancer %q, want sfc", meta.Balancer)
	}

	if _, err := Restore(dir, WithBalancer(Diffusive(DiffusiveConfig{}))); err == nil {
		t.Fatal("restore under a different balancer succeeded")
	} else if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
	// WithDLB names permcell — also a mismatch against sfc.
	if _, err := Restore(dir, WithDLB()); err == nil {
		t.Fatal("restore with WithDLB over an sfc checkpoint succeeded")
	}

	// No balancer option: the identity travels in the file.
	resumed, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Step(2); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats[0].Balancer; got != "sfc" {
		t.Fatalf("resumed balancer %q, want sfc", got)
	}
}
