// Command chaos runs the full DLB-DDM engine under seeded communication
// fault injection and proves the replay property: it executes the run
// twice from the same seeds and demands the identical deterministic
// per-step trace, with the DESIGN.md Section 6 protocol invariants checked
// after every step of both runs.
//
// Usage:
//
//	chaos -seed 1 -p 36 -steps 200
//	chaos -seed 1 -p 36 -steps 200 -kill-at 80
//
// The default plan injects latency jitter, bounded message reordering,
// transient send failures (absorbed by retry/backoff) and one mid-run PE
// stall. Every fault is drawn from RNG streams derived from -seed, so any
// failure reported here is replayable bit for bit by re-running the same
// command line. A deadlock does not hang: the watchdog aborts with a
// per-rank state dump. Exit status is non-zero if the replay diverges.
//
// -kill-at selects the kill-and-recover scenario instead: the faulty run is
// hard-stopped after that many steps, keeping nothing but the checkpoint
// file, then recovered strictly from the file and finished; the combined
// trace must be identical to the uninterrupted run's. Exit status is
// non-zero if recovery diverges.
//
// -panic-at / -corrupt-at select the self-healing scenario: one run is
// sabotaged at the given step (a PE panic, or a NaN velocity that the
// physics guards must catch) while running under the supervisor
// (-max-retries, -retry-backoff); the supervisor must roll back to the
// latest checkpoint, resume, and finish with a trace identical to an
// unsabotaged golden run. Exit status is non-zero if recovery diverges or
// the supervisor gives up.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"permcell"
	"permcell/internal/comm"
	"permcell/internal/experiments"
	"permcell/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for both the physics and the fault plan")
	p := flag.Int("p", 36, "PE count (perfect square)")
	m := flag.Int("m", 2, "square-pillar cross-section size")
	steps := flag.Int("steps", 200, "time steps per run")
	rho := flag.Float64("rho", 0.256, "reduced density")
	shards := flag.Int("shards", 1, "per-PE force-kernel worker count")
	delayProb := flag.Float64("delay-prob", 0.1, "per-send latency jitter probability")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "jitter upper bound")
	reorderProb := flag.Float64("reorder-prob", 0.2, "per-send reorder (hold-back) probability")
	reorderDepth := flag.Int("reorder-depth", 2, "max messages a held message may be overtaken by")
	failProb := flag.Float64("fail-prob", 0.01, "transient send-failure probability")
	stalls := flag.Int("stalls", 1, "number of injected PE stalls")
	stallDur := flag.Duration("stall-dur", 5*time.Millisecond, "duration of each stall")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "deadlock watchdog timeout (0 disables)")
	eventsOut := flag.String("events", "", "write the replay run's fault-event CSV to this file")
	killAt := flag.Int("kill-at", 0, "kill-and-recover scenario: hard-stop after this many steps, recover from the checkpoint, diff against the uninterrupted trace (0 = replay scenario)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory for -kill-at and the self-heal scenarios (default: a temporary directory)")
	panicAt := flag.Int("panic-at", 0, "self-heal scenario: inject a PE panic at this step and demand supervised recovery to the golden trace (0 = off)")
	corruptAt := flag.Int("corrupt-at", 0, "self-heal scenario: inject a NaN velocity at this step; the physics guard must catch it and recovery must reach the golden trace (0 = off)")
	sabotageRank := flag.Int("sabotage-rank", 1, "rank the -panic-at/-corrupt-at sabotage fires on")
	maxRetries := flag.Int("max-retries", 3, "supervisor retry budget for the self-heal scenarios")
	retryBackoff := flag.Duration("retry-backoff", time.Millisecond, "initial supervisor retry backoff for the self-heal scenarios")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence for the self-heal scenarios (0 = steps/4)")

	flag.Parse()

	plan := comm.FaultPlan{
		Seed:         *seed,
		DelayProb:    *delayProb,
		MaxDelay:     *maxDelay,
		ReorderProb:  *reorderProb,
		ReorderDepth: *reorderDepth,
		FailProb:     *failProb,
		Record:       *eventsOut != "",
	}
	for i := 0; i < *stalls; i++ {
		// Spread the stalls over ranks and over the run.
		plan.Stalls = append(plan.Stalls, comm.Stall{
			Rank:     (i*7 + *p/2) % *p,
			AfterOps: int64(200 + 400*i),
			Duration: *stallDur,
		})
	}
	spec := experiments.ChaosSpec{
		RunSpec: experiments.RunSpec{
			M: *m, P: *p, Rho: *rho, Steps: *steps, DLB: true, Seed: *seed,
			WellK: 1.5, BlobFrac: 0.5, Shards: *shards,
		},
		Plan:     plan,
		Watchdog: *watchdog,
	}

	fmt.Printf("chaos: P=%d m=%d rho=%g steps=%d seed=%d shards=%d\n", *p, *m, *rho, *steps, *seed, *shards)
	fmt.Printf("plan: delay %.2g<=%v reorder %.2g(depth %d) fail %.2g stalls %d x %v watchdog %v\n",
		*delayProb, *maxDelay, *reorderProb, *reorderDepth, *failProb, *stalls, *stallDur, *watchdog)

	if *panicAt > 0 || *corruptAt > 0 {
		kind, at := permcell.SabotagePanic, *panicAt
		if *corruptAt > 0 {
			kind, at = permcell.SabotageNaN, *corruptAt
		}
		selfHeal(selfHealSpec{
			m: *m, p: *p, rho: *rho, steps: *steps, seed: *seed, shards: *shards,
			kind: kind, at: at, rank: *sabotageRank,
			retries: *maxRetries, backoff: *retryBackoff,
			every: *ckptEvery, dir: *ckptDir,
		})
		return
	}

	if *killAt > 0 {
		killResume(spec, *killAt, *ckptDir)
		return
	}

	var hashes [2]uint64
	for run := 0; run < 2; run++ {
		t0 := time.Now()
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: run %d: %v\n", run, err)
			os.Exit(1)
		}
		hashes[run] = r.TraceHash
		label := "run"
		if run == 1 {
			label = "replay"
		}
		fmt.Printf("%s: N=%d C=%d trace %016x in %v; invariants ok every step\n",
			label, r.Info.N, r.Info.C, r.TraceHash, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
			r.Faults.Delays, r.Faults.Reorders, r.Faults.Failures, r.Faults.Retries, r.Faults.Stalls)
		if run == 1 && *eventsOut != "" {
			f, err := os.Create(*eventsOut)
			if err == nil {
				err = trace.WriteFaultCSV(f, r.Res.FaultEvents)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *eventsOut, err)
				os.Exit(1)
			}
			fmt.Printf("  fault events written to %s\n", *eventsOut)
		}
	}

	if hashes[0] != hashes[1] {
		fmt.Fprintf(os.Stderr, "chaos: REPLAY DIVERGED: %016x vs %016x\n", hashes[0], hashes[1])
		os.Exit(1)
	}
	fmt.Println("replay identical: same seed, same trace")
}

// killResume runs the kill-and-recover scenario and exits non-zero when the
// recovered trace diverges from the uninterrupted one.
func killResume(spec experiments.ChaosSpec, killAt int, dir string) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-ckpt-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	t0 := time.Now()
	r, err := spec.KillResume(killAt, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	fmt.Printf("kill-resume: N=%d C=%d killed at step %d, recovered from %s in %v\n",
		r.Info.N, r.Info.C, r.KillAt, r.CkptPath, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  golden faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
		r.GoldenFaults.Delays, r.GoldenFaults.Reorders, r.GoldenFaults.Failures,
		r.GoldenFaults.Retries, r.GoldenFaults.Stalls)
	fmt.Printf("  resumed faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
		r.ResumedFaults.Delays, r.ResumedFaults.Reorders, r.ResumedFaults.Failures,
		r.ResumedFaults.Retries, r.ResumedFaults.Stalls)
	if !r.Match() {
		fmt.Fprintf(os.Stderr, "chaos: RECOVERY DIVERGED: golden %016x vs resumed %016x\n",
			r.GoldenHash, r.ResumedHash)
		os.Exit(1)
	}
	fmt.Printf("recovery identical: golden trace %016x reproduced across kill and restore\n", r.GoldenHash)
}

type selfHealSpec struct {
	m, p    int
	rho     float64
	steps   int
	seed    uint64
	shards  int
	kind    string // permcell.SabotagePanic or permcell.SabotageNaN
	at      int    // sabotage step
	rank    int    // sabotage rank
	retries int
	backoff time.Duration
	every   int    // checkpoint cadence (0 = steps/4)
	dir     string // checkpoint directory ("" = temporary)
}

// selfHeal runs the self-healing scenario: a golden uninterrupted run, then
// the same run sabotaged mid-flight under the supervisor, which must roll
// back to a checkpoint, resume, and converge to the identical trace. Exits
// non-zero on divergence or when the supervisor gives up.
func selfHeal(s selfHealSpec) {
	if s.dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-heal-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		s.dir = tmp
	}
	if s.every <= 0 {
		s.every = max(1, s.steps/4)
	}
	base := []permcell.Option{
		permcell.WithDLB(), permcell.WithSeed(s.seed),
		permcell.WithWells(1, 1.5), permcell.WithShards(s.shards),
	}
	fmt.Printf("self-heal: sabotage %s at step %d rank %d, checkpoints every %d, budget %d\n",
		s.kind, s.at, s.rank, s.every, s.retries)

	t0 := time.Now()
	golden, err := permcell.Run(context.Background(), s.m, s.p, s.rho, s.steps, base...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: golden run:", err)
		os.Exit(1)
	}
	goldenHash := experiments.TraceHash(golden.Stats)
	fmt.Printf("golden: N=%d trace %016x in %v\n",
		golden.Final.Len(), goldenHash, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	eng, err := permcell.New(s.m, s.p, s.rho, append(base,
		permcell.WithCheckpoint(s.every, s.dir),
		permcell.WithSupervisor(permcell.SupervisorPolicy{
			MaxRetries: s.retries,
			Backoff:    s.backoff,
			OnEvent: func(ev permcell.SupervisorEvent) {
				if ev.Kind == "rollback" {
					fmt.Printf("  supervisor: rollback to step %d from %s\n", ev.RestoredStep, ev.Checkpoint)
				} else {
					fmt.Printf("  supervisor: %s at step %d: %s\n", ev.Kind, ev.Step, ev.Err)
				}
			},
		}),
		permcell.WithSabotage(&permcell.Sabotage{Kind: s.kind, Step: s.at, Rank: s.rank}),
	)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: supervised run:", err)
		os.Exit(1)
	}
	res, err := permcell.RunEngine(context.Background(), eng, s.steps)
	rep := permcell.SupervisionReport(eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: SUPERVISED RUN FAILED: %v\n", err)
		os.Exit(1)
	}
	healedHash := experiments.TraceHash(res.Stats)
	fmt.Printf("healed: trace %016x in %v; %d rollbacks, %d retries, %d steps replayed\n",
		healedHash, time.Since(t0).Round(time.Millisecond),
		rep.Rollbacks, rep.Retries, rep.StepsReplayed)
	if rep.Rollbacks == 0 {
		fmt.Fprintln(os.Stderr, "chaos: SABOTAGE DID NOT FIRE: no rollback recorded")
		os.Exit(1)
	}
	if healedHash != goldenHash {
		fmt.Fprintf(os.Stderr, "chaos: RECOVERY DIVERGED: golden %016x vs healed %016x\n",
			goldenHash, healedHash)
		os.Exit(1)
	}
	fmt.Printf("recovery identical: golden trace %016x reproduced across sabotage and rollback\n", goldenHash)
}
