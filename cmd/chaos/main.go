// Command chaos runs the full DLB-DDM engine under seeded communication
// fault injection and proves the replay property: it executes the run
// twice from the same seeds and demands the identical deterministic
// per-step trace, with the DESIGN.md Section 6 protocol invariants checked
// after every step of both runs.
//
// Usage:
//
//	chaos -seed 1 -p 36 -steps 200
//	chaos -seed 1 -p 36 -steps 200 -kill-at 80
//
// The default plan injects latency jitter, bounded message reordering,
// transient send failures (absorbed by retry/backoff) and one mid-run PE
// stall. Every fault is drawn from RNG streams derived from -seed, so any
// failure reported here is replayable bit for bit by re-running the same
// command line. A deadlock does not hang: the watchdog aborts with a
// per-rank state dump. Exit status is non-zero if the replay diverges.
//
// -kill-at selects the kill-and-recover scenario instead: the faulty run is
// hard-stopped after that many steps, keeping nothing but the checkpoint
// file, then recovered strictly from the file and finished; the combined
// trace must be identical to the uninterrupted run's. Exit status is
// non-zero if recovery diverges.
//
// -panic-at / -corrupt-at select the self-healing scenario: one run is
// sabotaged at the given step (a PE panic, or a NaN velocity that the
// physics guards must catch) while running under the supervisor
// (-max-retries, -retry-backoff); the supervisor must roll back to the
// latest checkpoint, resume, and finish with a trace identical to an
// unsabotaged golden run. Exit status is non-zero if recovery diverges or
// the supervisor gives up.
//
// -tcp-procs with one of -worker-kill-at / -worker-stall-at /
// -worker-garbage-at selects the distributed self-healing scenario: the
// golden run executes on the in-process transport, then the same run
// executes on the tcp transport under the supervisor while one worker
// process is killed, stalled past the heartbeat window, or made to write a
// garbage frame at the given step. The supervisor must classify the typed
// WorkerFailure, roll back, heal by respawning the worker (or rescaling
// onto the survivors with -recover rescale), and converge to the golden
// trace. -mdrank points at a real worker binary; empty hosts the workers
// as goroutines. Exit status is non-zero if no worker failure was
// detected, recovery diverges, or the supervisor gives up.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"permcell"
	"permcell/internal/comm"
	"permcell/internal/experiments"
	"permcell/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for both the physics and the fault plan")
	p := flag.Int("p", 36, "PE count (perfect square)")
	m := flag.Int("m", 2, "square-pillar cross-section size")
	steps := flag.Int("steps", 200, "time steps per run")
	rho := flag.Float64("rho", 0.256, "reduced density")
	shards := flag.Int("shards", 1, "per-PE force-kernel worker count")
	delayProb := flag.Float64("delay-prob", 0.1, "per-send latency jitter probability")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "jitter upper bound")
	reorderProb := flag.Float64("reorder-prob", 0.2, "per-send reorder (hold-back) probability")
	reorderDepth := flag.Int("reorder-depth", 2, "max messages a held message may be overtaken by")
	failProb := flag.Float64("fail-prob", 0.01, "transient send-failure probability")
	stalls := flag.Int("stalls", 1, "number of injected PE stalls")
	stallDur := flag.Duration("stall-dur", 5*time.Millisecond, "duration of each stall")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "deadlock watchdog timeout (0 disables)")
	eventsOut := flag.String("events", "", "write the replay run's fault-event CSV to this file")
	killAt := flag.Int("kill-at", 0, "kill-and-recover scenario: hard-stop after this many steps, recover from the checkpoint, diff against the uninterrupted trace (0 = replay scenario)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory for -kill-at and the self-heal scenarios (default: a temporary directory)")
	panicAt := flag.Int("panic-at", 0, "self-heal scenario: inject a PE panic at this step and demand supervised recovery to the golden trace (0 = off)")
	corruptAt := flag.Int("corrupt-at", 0, "self-heal scenario: inject a NaN velocity at this step; the physics guard must catch it and recovery must reach the golden trace (0 = off)")
	sabotageRank := flag.Int("sabotage-rank", 1, "rank the -panic-at/-corrupt-at sabotage fires on")
	maxRetries := flag.Int("max-retries", 3, "supervisor retry budget for the self-heal scenarios")
	retryBackoff := flag.Duration("retry-backoff", time.Millisecond, "initial supervisor retry backoff for the self-heal scenarios")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence for the self-heal scenarios (0 = steps/4)")
	tcpProcs := flag.Int("tcp-procs", 0, "distributed self-heal: worker-process count for the supervised tcp run (0 = in-process scenarios)")
	mdrank := flag.String("mdrank", "", "mdrank binary for the tcp scenarios (empty = goroutine-hosted workers)")
	workerKillAt := flag.Int("worker-kill-at", 0, "distributed self-heal: kill one worker before this step (0 = off)")
	workerStallAt := flag.Int("worker-stall-at", 0, "distributed self-heal: stall one worker past the heartbeat window before this step (0 = off)")
	workerGarbageAt := flag.Int("worker-garbage-at", 0, "distributed self-heal: make one worker write a garbage frame before this step (0 = off)")
	workerProc := flag.Int("worker-proc", 1, "worker process the -worker-*-at chaos fires on")
	workerStallDur := flag.Duration("worker-stall-dur", 2*time.Second, "stall length for -worker-stall-at (pick it past heartbeat-every x heartbeat-misses)")
	recoverPolicy := flag.String("recover", "respawn", "worker recovery policy for the tcp scenarios: respawn or rescale")
	hbEvery := flag.Duration("heartbeat-every", 50*time.Millisecond, "heartbeat interval for the tcp scenarios")
	hbMisses := flag.Int("heartbeat-misses", 5, "heartbeat miss budget for the tcp scenarios")

	flag.Parse()

	plan := comm.FaultPlan{
		Seed:         *seed,
		DelayProb:    *delayProb,
		MaxDelay:     *maxDelay,
		ReorderProb:  *reorderProb,
		ReorderDepth: *reorderDepth,
		FailProb:     *failProb,
		Record:       *eventsOut != "",
	}
	for i := 0; i < *stalls; i++ {
		// Spread the stalls over ranks and over the run.
		plan.Stalls = append(plan.Stalls, comm.Stall{
			Rank:     (i*7 + *p/2) % *p,
			AfterOps: int64(200 + 400*i),
			Duration: *stallDur,
		})
	}
	spec := experiments.ChaosSpec{
		RunSpec: experiments.RunSpec{
			M: *m, P: *p, Rho: *rho, Steps: *steps, DLB: true, Seed: *seed,
			WellK: 1.5, BlobFrac: 0.5, Shards: *shards,
		},
		Plan:     plan,
		Watchdog: *watchdog,
	}

	fmt.Printf("chaos: P=%d m=%d rho=%g steps=%d seed=%d shards=%d\n", *p, *m, *rho, *steps, *seed, *shards)
	fmt.Printf("plan: delay %.2g<=%v reorder %.2g(depth %d) fail %.2g stalls %d x %v watchdog %v\n",
		*delayProb, *maxDelay, *reorderProb, *reorderDepth, *failProb, *stalls, *stallDur, *watchdog)

	if *tcpProcs > 0 {
		kind, at := "", 0
		switch {
		case *workerKillAt > 0:
			kind, at = permcell.ChaosWorkerExit, *workerKillAt
		case *workerStallAt > 0:
			kind, at = permcell.ChaosWorkerStall, *workerStallAt
		case *workerGarbageAt > 0:
			kind, at = permcell.ChaosWorkerGarbage, *workerGarbageAt
		default:
			fmt.Fprintln(os.Stderr, "chaos: -tcp-procs needs one of -worker-kill-at, -worker-stall-at, -worker-garbage-at")
			os.Exit(2)
		}
		distributedHeal(distributedHealSpec{
			m: *m, p: *p, rho: *rho, steps: *steps, seed: *seed, shards: *shards,
			procs: *tcpProcs, mdrank: *mdrank,
			kind: kind, at: at, proc: *workerProc, stall: *workerStallDur,
			policy:  *recoverPolicy,
			hbEvery: *hbEvery, hbMisses: *hbMisses,
			retries: *maxRetries, backoff: *retryBackoff,
			every: *ckptEvery, dir: *ckptDir,
		})
		return
	}

	if *panicAt > 0 || *corruptAt > 0 {
		kind, at := permcell.SabotagePanic, *panicAt
		if *corruptAt > 0 {
			kind, at = permcell.SabotageNaN, *corruptAt
		}
		selfHeal(selfHealSpec{
			m: *m, p: *p, rho: *rho, steps: *steps, seed: *seed, shards: *shards,
			kind: kind, at: at, rank: *sabotageRank,
			retries: *maxRetries, backoff: *retryBackoff,
			every: *ckptEvery, dir: *ckptDir,
		})
		return
	}

	if *killAt > 0 {
		killResume(spec, *killAt, *ckptDir)
		return
	}

	var hashes [2]uint64
	for run := 0; run < 2; run++ {
		t0 := time.Now()
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: run %d: %v\n", run, err)
			os.Exit(1)
		}
		hashes[run] = r.TraceHash
		label := "run"
		if run == 1 {
			label = "replay"
		}
		fmt.Printf("%s: N=%d C=%d trace %016x in %v; invariants ok every step\n",
			label, r.Info.N, r.Info.C, r.TraceHash, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
			r.Faults.Delays, r.Faults.Reorders, r.Faults.Failures, r.Faults.Retries, r.Faults.Stalls)
		if run == 1 && *eventsOut != "" {
			f, err := os.Create(*eventsOut)
			if err == nil {
				err = trace.WriteFaultCSV(f, r.Res.FaultEvents)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *eventsOut, err)
				os.Exit(1)
			}
			fmt.Printf("  fault events written to %s\n", *eventsOut)
		}
	}

	if hashes[0] != hashes[1] {
		fmt.Fprintf(os.Stderr, "chaos: REPLAY DIVERGED: %016x vs %016x\n", hashes[0], hashes[1])
		os.Exit(1)
	}
	fmt.Println("replay identical: same seed, same trace")
}

// killResume runs the kill-and-recover scenario and exits non-zero when the
// recovered trace diverges from the uninterrupted one.
func killResume(spec experiments.ChaosSpec, killAt int, dir string) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-ckpt-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	t0 := time.Now()
	r, err := spec.KillResume(killAt, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	fmt.Printf("kill-resume: N=%d C=%d killed at step %d, recovered from %s in %v\n",
		r.Info.N, r.Info.C, r.KillAt, r.CkptPath, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  golden faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
		r.GoldenFaults.Delays, r.GoldenFaults.Reorders, r.GoldenFaults.Failures,
		r.GoldenFaults.Retries, r.GoldenFaults.Stalls)
	fmt.Printf("  resumed faults: %d delays, %d reorders, %d failures (%d retries), %d stalls\n",
		r.ResumedFaults.Delays, r.ResumedFaults.Reorders, r.ResumedFaults.Failures,
		r.ResumedFaults.Retries, r.ResumedFaults.Stalls)
	if !r.Match() {
		fmt.Fprintf(os.Stderr, "chaos: RECOVERY DIVERGED: golden %016x vs resumed %016x\n",
			r.GoldenHash, r.ResumedHash)
		os.Exit(1)
	}
	fmt.Printf("recovery identical: golden trace %016x reproduced across kill and restore\n", r.GoldenHash)
}

type distributedHealSpec struct {
	m, p     int
	rho      float64
	steps    int
	seed     uint64
	shards   int
	procs    int    // tcp worker-process count
	mdrank   string // worker binary ("" = goroutine-hosted)
	kind     string // permcell.ChaosWorker* kind
	at       int    // chaos step
	proc     int    // chaos target proc
	stall    time.Duration
	policy   string // respawn or rescale
	hbEvery  time.Duration
	hbMisses int
	retries  int
	backoff  time.Duration
	every    int    // checkpoint cadence (0 = steps/4)
	dir      string // checkpoint directory ("" = temporary)
}

// distributedHeal runs the distributed self-healing scenario: a golden run
// on the in-process transport, then the identical run on the tcp transport
// under the supervisor while one worker is killed, stalled or corrupted.
// The supervisor must detect a typed WorkerFailure within the heartbeat
// window, roll back, heal under the selected policy, and converge to the
// golden trace — proving the cross-transport determinism contract holds
// straight through a worker death. Exits non-zero on any miss.
func distributedHeal(s distributedHealSpec) {
	if s.dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-distrib-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		s.dir = tmp
	}
	if s.every <= 0 {
		s.every = max(1, s.steps/4)
	}
	if s.proc >= s.procs {
		s.proc = s.procs - 1
	}
	base := []permcell.Option{
		permcell.WithDLB(), permcell.WithSeed(s.seed),
		permcell.WithWells(1, 1.5), permcell.WithShards(s.shards),
	}
	workers := "goroutine-hosted workers"
	if s.mdrank != "" {
		workers = "mdrank processes (" + s.mdrank + ")"
	}
	fmt.Printf("distributed self-heal: %s on proc %d before step %d, %d %s, recover=%s\n",
		s.kind, s.proc, s.at, s.procs, workers, s.policy)
	fmt.Printf("  heartbeat %v x %d (window %v), checkpoints every %d, budget %d\n",
		s.hbEvery, s.hbMisses, s.hbEvery*time.Duration(s.hbMisses), s.every, s.retries)

	t0 := time.Now()
	golden, err := permcell.Run(context.Background(), s.m, s.p, s.rho, s.steps, base...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: golden run:", err)
		os.Exit(1)
	}
	goldenHash := experiments.TraceHash(golden.Stats)
	fmt.Printf("golden (chan): N=%d trace %016x in %v\n",
		golden.Final.Len(), goldenHash, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	eng, err := permcell.New(s.m, s.p, s.rho, append(base,
		permcell.WithTransport(permcell.Transport{
			Kind:            permcell.TransportTCP,
			Procs:           s.procs,
			Worker:          s.mdrank,
			HeartbeatEvery:  s.hbEvery,
			HeartbeatMisses: s.hbMisses,
			Chaos:           &permcell.WorkerChaos{Proc: s.proc, Step: s.at, Kind: s.kind, Stall: s.stall},
		}),
		permcell.WithCheckpoint(s.every, s.dir),
		permcell.WithSupervisor(permcell.SupervisorPolicy{
			MaxRetries:     s.retries,
			Backoff:        s.backoff,
			WorkerRecovery: s.policy,
			OnEvent: func(ev permcell.SupervisorEvent) {
				if ev.Kind == "rollback" {
					fmt.Printf("  supervisor: rollback to step %d from %s\n", ev.RestoredStep, ev.Checkpoint)
				} else {
					fmt.Printf("  supervisor: %s at step %d: %s\n", ev.Kind, ev.Step, ev.Err)
				}
			},
		}),
	)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: supervised tcp run:", err)
		os.Exit(1)
	}
	res, err := permcell.RunEngine(context.Background(), eng, s.steps)
	rep := permcell.SupervisionReport(eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: SUPERVISED TCP RUN FAILED: %v\n", err)
		os.Exit(1)
	}
	healedHash := experiments.TraceHash(res.Stats)
	fmt.Printf("healed (tcp): trace %016x in %v; %d worker failures, %d rollbacks, %d retries, %d steps replayed\n",
		healedHash, time.Since(t0).Round(time.Millisecond),
		rep.WorkerFailures, rep.Rollbacks, rep.Retries, rep.StepsReplayed)
	if rep.WorkerFailures == 0 {
		fmt.Fprintln(os.Stderr, "chaos: WORKER CHAOS DID NOT FIRE: no worker failure recorded")
		os.Exit(1)
	}
	if rep.Rollbacks == 0 {
		fmt.Fprintln(os.Stderr, "chaos: NO ROLLBACK: the worker failure did not trigger recovery")
		os.Exit(1)
	}
	if healedHash != goldenHash {
		fmt.Fprintf(os.Stderr, "chaos: RECOVERY DIVERGED: golden %016x vs healed %016x\n",
			goldenHash, healedHash)
		os.Exit(1)
	}
	fmt.Printf("recovery identical: golden trace %016x reproduced across worker %s and %s\n",
		goldenHash, s.kind, s.policy)
}

type selfHealSpec struct {
	m, p    int
	rho     float64
	steps   int
	seed    uint64
	shards  int
	kind    string // permcell.SabotagePanic or permcell.SabotageNaN
	at      int    // sabotage step
	rank    int    // sabotage rank
	retries int
	backoff time.Duration
	every   int    // checkpoint cadence (0 = steps/4)
	dir     string // checkpoint directory ("" = temporary)
}

// selfHeal runs the self-healing scenario: a golden uninterrupted run, then
// the same run sabotaged mid-flight under the supervisor, which must roll
// back to a checkpoint, resume, and converge to the identical trace. Exits
// non-zero on divergence or when the supervisor gives up.
func selfHeal(s selfHealSpec) {
	if s.dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-heal-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		s.dir = tmp
	}
	if s.every <= 0 {
		s.every = max(1, s.steps/4)
	}
	base := []permcell.Option{
		permcell.WithDLB(), permcell.WithSeed(s.seed),
		permcell.WithWells(1, 1.5), permcell.WithShards(s.shards),
	}
	fmt.Printf("self-heal: sabotage %s at step %d rank %d, checkpoints every %d, budget %d\n",
		s.kind, s.at, s.rank, s.every, s.retries)

	t0 := time.Now()
	golden, err := permcell.Run(context.Background(), s.m, s.p, s.rho, s.steps, base...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: golden run:", err)
		os.Exit(1)
	}
	goldenHash := experiments.TraceHash(golden.Stats)
	fmt.Printf("golden: N=%d trace %016x in %v\n",
		golden.Final.Len(), goldenHash, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	eng, err := permcell.New(s.m, s.p, s.rho, append(base,
		permcell.WithCheckpoint(s.every, s.dir),
		permcell.WithSupervisor(permcell.SupervisorPolicy{
			MaxRetries: s.retries,
			Backoff:    s.backoff,
			OnEvent: func(ev permcell.SupervisorEvent) {
				if ev.Kind == "rollback" {
					fmt.Printf("  supervisor: rollback to step %d from %s\n", ev.RestoredStep, ev.Checkpoint)
				} else {
					fmt.Printf("  supervisor: %s at step %d: %s\n", ev.Kind, ev.Step, ev.Err)
				}
			},
		}),
		permcell.WithSabotage(&permcell.Sabotage{Kind: s.kind, Step: s.at, Rank: s.rank}),
	)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: supervised run:", err)
		os.Exit(1)
	}
	res, err := permcell.RunEngine(context.Background(), eng, s.steps)
	rep := permcell.SupervisionReport(eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: SUPERVISED RUN FAILED: %v\n", err)
		os.Exit(1)
	}
	healedHash := experiments.TraceHash(res.Stats)
	fmt.Printf("healed: trace %016x in %v; %d rollbacks, %d retries, %d steps replayed\n",
		healedHash, time.Since(t0).Round(time.Millisecond),
		rep.Rollbacks, rep.Retries, rep.StepsReplayed)
	if rep.Rollbacks == 0 {
		fmt.Fprintln(os.Stderr, "chaos: SABOTAGE DID NOT FIRE: no rollback recorded")
		os.Exit(1)
	}
	if healedHash != goldenHash {
		fmt.Fprintf(os.Stderr, "chaos: RECOVERY DIVERGED: golden %016x vs healed %016x\n",
			goldenHash, healedHash)
		os.Exit(1)
	}
	fmt.Printf("recovery identical: golden trace %016x reproduced across sabotage and rollback\n", goldenHash)
}
