package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"permcell/internal/experiments"
	"permcell/internal/kernel"
	"permcell/internal/potential"
	"permcell/internal/workload"
)

// benchSchemaNote is embedded in every report so a committed
// BENCH_kernel.json explains itself.
const benchSchemaNote = "schema 2: one op = re-bin every particle + the complete force pass. " +
	"Each preset (internal/workload.KernelPresets) times the historical map kernel " +
	"('map') and the flat half-stencil kernel ('flat') at shard counts 1, 2 and 8, " +
	"so old-vs-new and shard scaling are compared on identical systems. " +
	"Shard counts above GOMAXPROCS cannot win wall-clock; judge shard scaling only " +
	"where gomaxprocs allows it (the CI gate skips the scaling assertion otherwise). " +
	"The balancers section records each load balancer's migration traffic (columns " +
	"and bytes moved) on the tiny condensation workload; the counters derive from " +
	"the deterministic work metric, so the baseline gate matches them exactly."

// kernelBenchResult is one timed kernel configuration.
type kernelBenchResult struct {
	Name        string  `json:"name"`
	Kernel      string  `json:"kernel,omitempty"` // "map" or "flat"
	Shards      int     `json:"shards"`           // 0 for the (unsharded) map kernel
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// kernelBenchPreset is one benchmark geometry with all its results.
type kernelBenchPreset struct {
	Name    string              `json:"name"`
	N       int                 `json:"n_particles"`
	Grid    string              `json:"grid"`
	Rho     float64             `json:"rho"`
	Results []kernelBenchResult `json:"results"`
}

// balancerBenchResult is one balancer's migration traffic over the tiny
// condensation workload. The counters derive from the deterministic work
// metric, so repeated runs reproduce them bit for bit — the regression gate
// compares them exactly, catching any silent change in balancing behavior.
type balancerBenchResult struct {
	Name       string `json:"name"`
	Steps      int    `json:"steps"`
	Moved      int    `json:"moved"`
	MovedBytes int64  `json:"moved_bytes"`
	// MeanLoadRatio is informational (logged, not gated).
	MeanLoadRatio float64 `json:"mean_load_ratio"`
}

// kernelBenchReport is the BENCH_kernel.json schema, version 2. The
// legacy v1 fields stay as read-only compatibility: a v1 file is a
// single tiny-preset report with Results at the top level, which
// benchKeys maps into the v2 key space so old baselines keep gating.
type kernelBenchReport struct {
	Schema     int                 `json:"schema,omitempty"`
	Benchmark  string              `json:"benchmark"`
	Note       string              `json:"note,omitempty"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu,omitempty"`
	Presets    []kernelBenchPreset `json:"presets,omitempty"`
	// Balancers is the per-balancer migration-traffic section (absent in
	// pre-balancer baselines; the gate then skips it with a note).
	Balancers []balancerBenchResult `json:"balancers,omitempty"`

	// v1 compatibility (decode only).
	N       int                 `json:"n_particles,omitempty"`
	Grid    string              `json:"grid,omitempty"`
	Rho     float64             `json:"rho,omitempty"`
	Results []kernelBenchResult `json:"results,omitempty"`
}

// benchOne times step as a benchmark after warming it up, so one-time
// costs (buffer growth, worker-pool start) land outside the measured
// window and the steady state reports its true zero allocations.
func benchOne(step func()) testing.BenchmarkResult {
	for i := 0; i < 3; i++ {
		step()
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}

// runBenchJSON times the requested presets (comma-separated names, or
// "all"/"" for the full matrix) and writes the v2 report as JSON.
func runBenchJSON(path, presets string) (*kernelBenchReport, error) {
	var selected []workload.KernelPreset
	if presets == "" || presets == "all" {
		selected = workload.KernelPresets()
	} else {
		for _, name := range strings.Split(presets, ",") {
			pr, err := workload.KernelPresetByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			selected = append(selected, pr)
		}
	}

	rep := kernelBenchReport{
		Schema:     2,
		Benchmark:  "kernel-step",
		Note:       benchSchemaNote,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	lj := potential.NewPaperLJ()
	for _, pr := range selected {
		sys, g, err := pr.Build()
		if err != nil {
			return nil, err
		}
		rp := kernelBenchPreset{
			Name: pr.Name,
			N:    sys.Set.Len(),
			Grid: fmt.Sprintf("%dx%dx%d", g.Nx, g.Ny, g.Nz),
			Rho:  pr.Rho,
		}
		cells := make([]int, g.NumCells())
		for c := range cells {
			cells[c] = c
		}

		// Old kernel: map cell lists rebuilt from scratch every step, the
		// way the engines' rebuild path worked before CellLists existed.
		cellMap := make(map[int][]int, len(cells))
		hosted := make(map[int]bool, len(cells))
		for _, c := range cells {
			hosted[c] = true
		}
		r := benchOne(func() {
			clear(cellMap)
			for _, c := range cells {
				cellMap[c] = nil
			}
			for i := range sys.Set.Pos {
				c := g.CellOf(sys.Set.Pos[i])
				cellMap[c] = append(cellMap[c], i)
			}
			sys.Set.ZeroForces()
			kernel.MapPairForces(g, lj, sys.Set, cellMap, hosted, nil)
		})
		rp.Results = append(rp.Results, kernelBenchResult{
			Name:   "map",
			Kernel: "map", Shards: 0,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})

		for _, shards := range []int{1, 2, 8} {
			cl := kernel.NewCellLists(g, shards)
			cl.SetHosted(cells)
			cl.SealGhosts()
			r := benchOne(func() {
				if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
					panic("bench: bin failed")
				}
				sys.Set.ZeroForces()
				cl.Compute(lj, sys.Set)
			})
			cl.Close()
			rp.Results = append(rp.Results, kernelBenchResult{
				Name:   fmt.Sprintf("flat/shards=%d", shards),
				Kernel: "flat", Shards: shards,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			})
		}
		rep.Presets = append(rep.Presets, rp)
	}

	// Migration-traffic section: one tiny condensation run per balancer,
	// deterministic counters (seconds of wall time total).
	cmp, err := experiments.Balancers(experiments.Tiny(), 0, 1)
	if err != nil {
		return nil, err
	}
	for _, tr := range cmp.Traces {
		rep.Balancers = append(rep.Balancers, balancerBenchResult{
			Name:          tr.Name,
			Steps:         cmp.Epochs,
			Moved:         tr.TotalMoved,
			MovedBytes:    tr.TotalMovedBytes,
			MeanLoadRatio: tr.MeanLoadRatio,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return &rep, err
	}
	return &rep, os.WriteFile(path, data, 0o644)
}

// benchKeys flattens a report (v1 or v2) into preset/kernel keys so the
// regression gate compares like with like across the schema change. A v1
// report is a tiny-preset measurement of the flat kernel whose results
// are named "KernelFlat/shards=N".
func benchKeys(rep *kernelBenchReport) map[string]kernelBenchResult {
	out := make(map[string]kernelBenchResult)
	for _, pr := range rep.Presets {
		for _, r := range pr.Results {
			out[pr.Name+"/"+r.Name] = r
		}
	}
	if len(rep.Presets) == 0 {
		for _, r := range rep.Results {
			name := r.Name
			if strings.HasPrefix(name, "KernelFlat/") {
				name = "flat/" + strings.TrimPrefix(name, "KernelFlat/")
			}
			out["tiny/"+name] = r
		}
	}
	return out
}

// compareBench checks the fresh report against a committed baseline: any
// configuration present in both whose ns/op grew by more than tolerance
// (relative) fails. Configurations only present on one side are reported
// but not fatal, so the baseline can trail kernel or preset changes by
// one commit.
func compareBench(fresh *kernelBenchReport, baselinePath string, tolerance float64, log io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base kernelBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	old := benchKeys(&base)
	var regressions []string
	for _, pr := range fresh.Presets {
		for _, r := range pr.Results {
			key := pr.Name + "/" + r.Name
			b, ok := old[key]
			if !ok {
				fmt.Fprintf(log, "bench-baseline: %s not in baseline, skipping\n", key)
				continue
			}
			delete(old, key)
			if b.NsPerOp <= 0 {
				continue
			}
			rel := r.NsPerOp/b.NsPerOp - 1
			fmt.Fprintf(log, "bench-baseline: %-22s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				key, b.NsPerOp, r.NsPerOp, 100*rel)
			if rel > tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%)", key, 100*rel, 100*tolerance))
			}
		}
	}
	for key := range old {
		fmt.Fprintf(log, "bench-baseline: %s missing from fresh run\n", key)
	}
	regressions = append(regressions, compareBalancerTraffic(fresh, &base, log)...)
	if len(regressions) > 0 {
		return errors.New(strings.Join(regressions, "; "))
	}
	return nil
}

// compareBalancerTraffic gates the balancers section against the baseline.
// The counters are deterministic, so any drift is a behavior change, not
// noise: Moved/MovedBytes/Steps must match exactly. A baseline without the
// section (pre-balancer) skips with a note.
func compareBalancerTraffic(fresh, base *kernelBenchReport, log io.Writer) []string {
	if len(base.Balancers) == 0 {
		fmt.Fprintln(log, "bench-baseline: no balancers section in baseline, skipping traffic gate")
		return nil
	}
	old := make(map[string]balancerBenchResult, len(base.Balancers))
	for _, b := range base.Balancers {
		old[b.Name] = b
	}
	var regressions []string
	for _, r := range fresh.Balancers {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(log, "bench-baseline: balancer %s not in baseline, skipping\n", r.Name)
			continue
		}
		fmt.Fprintf(log, "bench-baseline: balancer %-10s moved %d cols / %d bytes over %d steps (baseline %d/%d), load ratio %.4f\n",
			r.Name, r.Moved, r.MovedBytes, r.Steps, b.Moved, b.MovedBytes, r.MeanLoadRatio)
		if r.Moved != b.Moved || r.MovedBytes != b.MovedBytes || r.Steps != b.Steps {
			regressions = append(regressions, fmt.Sprintf(
				"balancer %s traffic drifted: moved %d->%d, bytes %d->%d, steps %d->%d (deterministic counters must match exactly)",
				r.Name, b.Moved, r.Moved, b.MovedBytes, r.MovedBytes, b.Steps, r.Steps))
		}
	}
	return regressions
}

// assertShardScaling enforces the sharding win on machines that can show
// one: at every timed preset with at least minN particles, flat/shards=8
// must beat flat/shards=1 by at least minRatio. On hosts with
// GOMAXPROCS < 4 the assertion is skipped with a printed note — shard
// workers have no cores to scale onto there, so a failure would measure
// the host, not the kernel.
func assertShardScaling(rep *kernelBenchReport, minN int, minRatio float64, log io.Writer) error {
	if rep.GOMAXPROCS < 4 {
		fmt.Fprintf(log, "bench-scaling: skipped (gomaxprocs=%d < 4: shard workers have no cores to scale onto)\n",
			rep.GOMAXPROCS)
		return nil
	}
	var failures []string
	checked := 0
	for _, pr := range rep.Presets {
		if pr.N < minN {
			continue
		}
		var s1, s8 float64
		for _, r := range pr.Results {
			if r.Kernel != "flat" {
				continue
			}
			switch r.Shards {
			case 1:
				s1 = r.NsPerOp
			case 8:
				s8 = r.NsPerOp
			}
		}
		if s1 <= 0 || s8 <= 0 {
			continue
		}
		checked++
		ratio := s1 / s8
		fmt.Fprintf(log, "bench-scaling: %-6s shards=1 %12.0f ns/op, shards=8 %12.0f ns/op (%.2fx)\n",
			pr.Name, s1, s8, ratio)
		if ratio < minRatio {
			failures = append(failures, fmt.Sprintf(
				"%s: shards=8 only %.2fx over shards=1 (need >= %.2fx)", pr.Name, ratio, minRatio))
		}
	}
	if checked == 0 {
		return fmt.Errorf("bench-scaling: no timed preset with >= %d particles", minN)
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	return nil
}
