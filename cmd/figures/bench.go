package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"permcell/internal/kernel"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

// kernelBenchResult is one timed configuration in BENCH_kernel.json.
type kernelBenchResult struct {
	Name        string  `json:"name"`
	Shards      int     `json:"shards"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// kernelBenchReport is the BENCH_kernel.json schema. One "op" is a full
// kernel step: re-bin every particle plus the complete force pass.
type kernelBenchReport struct {
	Benchmark  string              `json:"benchmark"`
	N          int                 `json:"n_particles"`
	Grid       string              `json:"grid"`
	Rho        float64             `json:"rho"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Results    []kernelBenchResult `json:"results"`
}

// runBenchJSON times the flat cell-list kernel at the Tiny-preset m=3
// geometry (grid 6x6x6, N=1296, the configuration the acceptance gate
// tracks) for shard counts 1, 2 and 8, and writes the report as JSON. The
// historical map-based kernel lives only in the kernel package's tests;
// its comparison baseline is BenchmarkKernelMap there.
func runBenchJSON(path string) (*kernelBenchReport, error) {
	sys, err := workload.LatticeGas(1296, 0.384, 0.722, 1)
	if err != nil {
		return nil, err
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		return nil, err
	}
	lj := potential.NewPaperLJ()
	cells := make([]int, g.NumCells())
	for c := range cells {
		cells[c] = c
	}

	rep := kernelBenchReport{
		Benchmark:  "kernel-flat-step",
		N:          sys.Set.Len(),
		Grid:       fmt.Sprintf("%dx%dx%d", g.Nx, g.Ny, g.Nz),
		Rho:        0.384,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 2, 8} {
		cl := kernel.NewCellLists(g, shards)
		cl.SetHosted(cells)
		cl.SealGhosts()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
					b.Fatal("bin failed")
				}
				sys.Set.ZeroForces()
				cl.Compute(lj, sys.Set)
			}
		})
		cl.Close()
		rep.Results = append(rep.Results, kernelBenchResult{
			Name:        fmt.Sprintf("KernelFlat/shards=%d", shards),
			Shards:      shards,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return &rep, err
	}
	return &rep, os.WriteFile(path, data, 0o644)
}

// compareBench checks the fresh report against a committed baseline: any
// configuration present in both whose ns/op grew by more than tolerance
// (relative) fails. Configurations only present on one side are reported
// but not fatal, so the baseline can trail kernel changes by one commit.
func compareBench(fresh *kernelBenchReport, baselinePath string, tolerance float64, log io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base kernelBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	old := make(map[string]kernelBenchResult, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	var regressions []string
	for _, r := range fresh.Results {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(log, "bench-baseline: %s not in baseline, skipping\n", r.Name)
			continue
		}
		delete(old, r.Name)
		if b.NsPerOp <= 0 {
			continue
		}
		rel := r.NsPerOp/b.NsPerOp - 1
		fmt.Fprintf(log, "bench-baseline: %-22s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			r.Name, b.NsPerOp, r.NsPerOp, 100*rel)
		if rel > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%)", r.Name, 100*rel, 100*tolerance))
		}
	}
	for name := range old {
		fmt.Fprintf(log, "bench-baseline: %s missing from fresh run\n", name)
	}
	if len(regressions) > 0 {
		return errors.New(strings.Join(regressions, "; "))
	}
	return nil
}
