package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"permcell/internal/kernel"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

// kernelBenchResult is one timed configuration in BENCH_kernel.json.
type kernelBenchResult struct {
	Name        string  `json:"name"`
	Shards      int     `json:"shards"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// kernelBenchReport is the BENCH_kernel.json schema. One "op" is a full
// kernel step: re-bin every particle plus the complete force pass.
type kernelBenchReport struct {
	Benchmark  string              `json:"benchmark"`
	N          int                 `json:"n_particles"`
	Grid       string              `json:"grid"`
	Rho        float64             `json:"rho"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Results    []kernelBenchResult `json:"results"`
}

// runBenchJSON times the flat cell-list kernel at the Tiny-preset m=3
// geometry (grid 6x6x6, N=1296, the configuration the acceptance gate
// tracks) for shard counts 1, 2 and 8, and writes the report as JSON. The
// historical map-based kernel lives only in the kernel package's tests;
// its comparison baseline is BenchmarkKernelMap there.
func runBenchJSON(path string) error {
	sys, err := workload.LatticeGas(1296, 0.384, 0.722, 1)
	if err != nil {
		return err
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		return err
	}
	lj := potential.NewPaperLJ()
	cells := make([]int, g.NumCells())
	for c := range cells {
		cells[c] = c
	}

	rep := kernelBenchReport{
		Benchmark:  "kernel-flat-step",
		N:          sys.Set.Len(),
		Grid:       fmt.Sprintf("%dx%dx%d", g.Nx, g.Ny, g.Nz),
		Rho:        0.384,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 2, 8} {
		cl := kernel.NewCellLists(g, shards)
		cl.SetHosted(cells)
		cl.SealGhosts()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
					b.Fatal("bin failed")
				}
				sys.Set.ZeroForces()
				cl.Compute(lj, sys.Set)
			}
		})
		cl.Close()
		rep.Results = append(rep.Results, kernelBenchResult{
			Name:        fmt.Sprintf("KernelFlat/shards=%d", shards),
			Shards:      shards,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
