// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -id fig5a|fig5b|fig6|fig9|fig10|table1|phases|balancers|all
//	        [-scale tiny|small|full] [-seed N] [-csv]
//	figures -bench-json BENCH_kernel.json [-bench-presets tiny,50k]
//	        [-bench-baseline BENCH_kernel.json] [-bench-tolerance 0.15]
//	        [-bench-assert-scaling] [-bench-scaling-min 1.1]
//
// Each id prints the same rows/series the paper reports (see DESIGN.md's
// per-experiment index). Scales: tiny (seconds, CI), small (minutes,
// default), full (paper sizes, hours). With -csv, fig9, table1, phases and
// balancers emit machine-readable CSV instead of the rendered text — the
// format the golden regression tests in internal/experiments pin. The
// phases id runs the observability layer: per-phase time shares and the
// Fig. 5/7-style imbalance curves for DDM vs DLB-DDM. The balancers id is
// the cross-balancer comparison: static DDM, permanent-cell, SFC and
// diffusive over the same condensation workload, with LoadRatio/Efficiency
// traces, f(m,n) boundary positions and per-scheme migration traffic
// (columns and bytes moved per DLB epoch).
//
// -bench-json times the map and flat force kernels on the
// internal/workload.KernelPresets matrix (restricted by -bench-presets)
// and writes the schema-2 report. With -bench-baseline, the fresh results
// are compared against the committed baseline and the command exits
// non-zero if any matching configuration's ns/op regressed by more than
// -bench-tolerance (the CI bench-regression gate; v1 baselines are
// understood). With -bench-assert-scaling, the run additionally fails if
// flat/shards=8 does not beat flat/shards=1 by -bench-scaling-min at
// every timed preset of at least 50k particles — skipped with a note on
// hosts with GOMAXPROCS < 4, where workers have no cores to scale onto.
package main

import (
	"flag"
	"fmt"
	"os"

	"permcell/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment id: fig5a, fig5b, fig6, fig9, fig10, table1, phases, balancers, all")
	scale := flag.String("scale", "small", "preset scale: tiny, small, full")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	csv := flag.Bool("csv", false, "emit CSV instead of rendered text (fig9, table1, phases)")
	benchJSON := flag.String("bench-json", "", "time the force kernels and write BENCH_kernel.json to this path ('-' = stdout), then exit")
	benchPresets := flag.String("bench-presets", "all", "comma-separated kernel preset names to time (tiny,50k,100k,200k), or 'all'")
	benchBaseline := flag.String("bench-baseline", "", "compare the -bench-json results against this baseline report; exit 1 on regression")
	benchTolerance := flag.Float64("bench-tolerance", 0.15, "relative ns/op regression allowed against -bench-baseline")
	benchAssertScaling := flag.Bool("bench-assert-scaling", false, "fail unless flat/shards=8 beats flat/shards=1 at every timed preset >= 50k particles (skipped when GOMAXPROCS < 4)")
	benchScalingMin := flag.Float64("bench-scaling-min", 1.1, "minimum shards=1/shards=8 ns/op ratio -bench-assert-scaling requires")
	flag.Parse()

	if *benchJSON != "" {
		rep, err := runBenchJSON(*benchJSON, *benchPresets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		if *benchBaseline != "" {
			if err := compareBench(rep, *benchBaseline, *benchTolerance, os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "bench-baseline: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchAssertScaling {
			if err := assertShardScaling(rep, 50000, *benchScalingMin, os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "bench-scaling: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	pr, ok := experiments.PresetByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(name string) error {
		switch name {
		case "fig5a":
			m := pr.Ms[len(pr.Ms)-1]
			r, err := experiments.Fig5(pr, m, *seed)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig5b":
			r, err := experiments.Fig5(pr, 2, *seed)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig6":
			r, err := experiments.Fig6(pr, *seed)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig9":
			r, err := experiments.Fig9(pr, *seed)
			if err != nil {
				return err
			}
			if *csv {
				return r.WriteCSV(os.Stdout)
			}
			return r.Render(os.Stdout)
		case "fig10":
			for _, m := range pr.Ms {
				r, err := experiments.Fig10(pr, m, pr.P, *seed)
				if err != nil {
					return err
				}
				if err := r.Render(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		case "table1":
			r, err := experiments.Table1(pr, *seed)
			if err != nil {
				return err
			}
			if *csv {
				return r.WriteCSV(os.Stdout)
			}
			return r.Render(os.Stdout)
		case "phases":
			r, err := experiments.Phases(pr, pr.Ms[len(pr.Ms)-1], *seed)
			if err != nil {
				return err
			}
			if *csv {
				return r.WriteCSV(os.Stdout)
			}
			return r.Render(os.Stdout)
		case "balancers":
			r, err := experiments.Balancers(pr, 0, *seed)
			if err != nil {
				return err
			}
			if *csv {
				return r.WriteCSV(os.Stdout)
			}
			return r.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment id %q", name)
		}
	}

	ids := []string{*id}
	if *id == "all" {
		ids = []string{"fig5a", "fig5b", "fig6", "fig9", "fig10", "table1", "phases", "balancers"}
	}
	for _, name := range ids {
		if !*csv {
			fmt.Printf("==== %s (scale %s) ====\n", name, pr.Name)
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Println()
		}
	}
}
