// Command theory prints the theoretical DLB effective-range bounds of
// Section 4.1: f(m, n) tables and the maximum-domain sizes C'.
//
// Usage:
//
//	theory [-m 2,3,4] [-nmax 3] [-dn 0.25]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"permcell/internal/theory"
)

func main() {
	ms := flag.String("m", "2,3,4", "comma-separated m values")
	nmax := flag.Float64("nmax", 3, "largest concentration factor n")
	dn := flag.Float64("dn", 0.25, "n step")
	flag.Parse()

	var mvals []int
	for _, s := range strings.Split(*ms, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "theory: bad m value %q (need integers >= 2)\n", s)
			os.Exit(2)
		}
		mvals = append(mvals, v)
	}

	fmt.Println("Theoretical upper bounds f(m, n) of the particle concentration ratio C0/C")
	fmt.Println("(eq. 8; DLB balances uniformly while C0/C <= f(m, n))")
	fmt.Printf("\n%8s", "n")
	for _, m := range mvals {
		fmt.Printf(" %12s", fmt.Sprintf("f(%d,n)", m))
	}
	fmt.Println()
	for n := 1.0; n <= *nmax+1e-9; n += *dn {
		fmt.Printf("%8.2f", n)
		for _, m := range mvals {
			fmt.Printf(" %12.4f", theory.MustF(m, n))
		}
		fmt.Println()
	}

	fmt.Println("\nMaximum domain C' (columns) and ratio to the initial m^2:")
	fmt.Printf("%8s %12s %12s\n", "m", "C' cols", "C'/m^2")
	for _, m := range mvals {
		cp := theory.CPrimeColumns(m)
		fmt.Printf("%8d %12d %12.3f\n", m, cp, float64(cp)/float64(m*m))
	}

	fmt.Println("\nCube-domain extension (this repository's generalization, internal/dlb3):")
	fmt.Printf("%8s", "n")
	for _, m := range mvals {
		fmt.Printf(" %12s", fmt.Sprintf("fcube(%d,n)", m))
	}
	fmt.Println()
	for n := 1.0; n <= *nmax+1e-9; n += *dn {
		fmt.Printf("%8.2f", n)
		for _, m := range mvals {
			fmt.Printf(" %12.4f", theory.MustFCube(m, n))
		}
		fmt.Println()
	}
	fmt.Printf("\n%8s %12s %12s\n", "m", "Q cells", "Q/m^3")
	for _, m := range mvals {
		q := theory.QCubeCells(m)
		fmt.Printf("%8d %12d %12.3f\n", m, q, float64(q)/float64(m*m*m))
	}
}
