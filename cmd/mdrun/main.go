// Command mdrun runs one parallel molecular dynamics simulation and emits
// a per-step CSV of the paper's quantities (Tt, Fmax, Fave, Fmin in both
// the deterministic work metric and wall seconds, columns moved by DLB,
// C_0/C and n).
//
// Usage:
//
//	mdrun [-m 3] [-p 16] [-rho 0.256] [-steps 600] [-balancer permcell]
//	      [-dlb] [-wells 12]
//	      [-wellk 1.5] [-dt 0.005] [-hyst 0.1] [-seed 1] [-shards 1]
//	      [-o out.csv] [-metrics phases.jsonl] [-prom metrics.prom]
//	      [-checkpoint-every 500] [-checkpoint-dir ckpt] [-resume ckpt]
//	      [-max-retries 3] [-backoff 50ms]
//	      [-transport chan] [-ranks 2] [-mdrank auto]
//	      [-cpuprofile cpu.pprof] [-trace trace.out]
//
// -balancer selects the load-balancing strategy: "permcell" (the paper's
// permanent-cell scheme), "sfc" (Morton-curve repartitioner), "diffusive"
// (nearest-neighbor diffusion) or "none" (static DDM, the default).
// Parameterized forms like "permcell(h=0.1)" or "sfc(h=0,moves=2)" are
// accepted; a bare "permcell" folds in -hyst. -dlb remains as sugar for
// "-balancer permcell". The CSV starts with a "# ..." run header recording
// the balancer and run identity, and each row carries the columns and bytes
// the balancer migrated that step.
//
// Rows stream as the simulation advances (the run is O(1) in memory), so a
// long run can be watched with tail -f. Interrupting with Ctrl-C stops at
// the next step boundary, writes a final checkpoint when -checkpoint-dir is
// set, and still flushes a complete CSV prefix; a second Ctrl-C during that
// final flush forces an immediate non-zero exit.
//
// -max-retries enables the self-healing supervisor (requires
// -checkpoint-dir): PE panics, physics-guard violations and watchdog
// deadlocks roll the run back to the latest valid checkpoint and resume,
// with exponential backoff starting at -backoff, up to the given number of
// attempts; recovery events stream to stderr and the run totals land in the
// -prom snapshot as permcell_recovery_* counters.
//
// -checkpoint-dir enables checkpointing into the given directory (an
// atomic latest/previous pair); -checkpoint-every adds an automatic cadence
// in simulation steps. -resume restarts from a checkpoint file or directory
// and runs -steps further steps; the run identity (m, p, rho, dlb, seed,
// dt, ...) is restored from the checkpoint and the corresponding flags are
// ignored, so the resumed trajectory is bit-identical to the uninterrupted
// run.
//
// -transport selects where the PE ranks live: "chan" (goroutines in this
// process, the default) or "tcp" (rank blocks spread over worker processes
// speaking the frame protocol on loopback). With tcp, -ranks sets the
// worker-process count (default: one per PE) and -mdrank locates the worker
// binary — "auto" looks for an mdrank sibling of the mdrun executable and
// falls back to in-process goroutine workers (same protocol, real sockets)
// when none is found. Either transport produces bit-identical CSV/JSONL
// traces for the same run identity; only the transport counters differ.
//
// -metrics enables the per-phase observability layer and streams one JSON
// record per step (phase wall times, message/byte counts, imbalance gauges
// and the f(m,n) bound residual; "-" = stdout). -prom writes a cumulative
// Prometheus text snapshot at exit. -cpuprofile and -trace capture pprof
// and runtime/trace data over the whole run.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"sync"
	"syscall"

	"permcell"
	"permcell/internal/checkpoint"
	"permcell/internal/metrics"
)

// artifact is a buffered, mutex-guarded file writer for the streaming
// outputs (-o CSV, -metrics JSONL). The mutex lets the second-interrupt
// goroutine flush a consistent prefix while rank 0's OnStep callback may be
// mid-row, so even a forced exit leaves complete lines on disk rather than
// a torn buffer tail.
type artifact struct {
	mu sync.Mutex
	bw *bufio.Writer
	f  *os.File
}

func newArtifact(f *os.File) *artifact {
	return &artifact{bw: bufio.NewWriter(f), f: f}
}

func (a *artifact) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bw.Write(p)
}

// Flush drains the buffer to the OS; Sync additionally pushes it to stable
// storage (the forced-exit path wants both, cheap teardown wants Flush).
func (a *artifact) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bw.Flush()
}

func (a *artifact) Sync() error {
	if err := a.Flush(); err != nil {
		return err
	}
	return a.f.Sync()
}

func (a *artifact) Close() error {
	err := a.Flush()
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	m := flag.Int("m", 3, "square-pillar cross-section size m")
	p := flag.Int("p", 16, "PE count (perfect square)")
	rho := flag.Float64("rho", 0.256, "reduced density")
	steps := flag.Int("steps", 600, "time steps")
	dlbOn := flag.Bool("dlb", false, "enable permanent-cell dynamic load balancing (sugar for -balancer permcell)")
	balancerSpec := flag.String("balancer", "", `load balancer: permcell|sfc|diffusive|none, optionally parameterized, e.g. "sfc(h=0,moves=2)" (default none; -dlb implies permcell)`)
	wells := flag.Int("wells", 12, "condensation driver attractor count (0 = pure physics)")
	wellK := flag.Float64("wellk", 1.5, "attractor strength")
	dt := flag.Float64("dt", 0.005, "time step (reduced units; paper uses 1e-4)")
	hyst := flag.Float64("hyst", 0.1, "DLB hysteresis")
	seed := flag.Uint64("seed", 1, "RNG seed")
	shards := flag.Int("shards", 1, "per-PE force-kernel worker count")
	out := flag.String("o", "", "CSV output path (default stdout)")
	metricsOut := flag.String("metrics", "", "per-phase JSONL output path (enables the observability layer; \"-\" = stdout)")
	promOut := flag.String("prom", "", "Prometheus text snapshot path, written at exit (implies -metrics collection)")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a checkpoint every N steps (0 = only at interrupt)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (enables checkpointing)")
	resume := flag.String("resume", "", "resume from a checkpoint file or directory")
	maxRetries := flag.Int("max-retries", -1, "enable the self-healing supervisor with this retry budget (requires -checkpoint-dir; -1 = off)")
	backoff := flag.Duration("backoff", 0, "initial supervisor retry backoff, doubling per attempt (0 = default 50ms)")
	transportKind := flag.String("transport", "chan", `rank transport: "chan" (in-process goroutines) or "tcp" (multi-process workers)`)
	ranks := flag.Int("ranks", 0, "worker-process count for -transport=tcp (0 = one per PE)")
	mdrank := flag.String("mdrank", "auto", `mdrank worker binary for -transport=tcp ("auto" = sibling of mdrun, falling back to in-process workers; "" = in-process workers)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *ckptEvery > 0 && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "mdrun: -checkpoint-every requires -checkpoint-dir")
		os.Exit(1)
	}
	if *maxRetries >= 0 && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "mdrun: -max-retries requires -checkpoint-dir (the supervisor rolls back to checkpoints)")
		os.Exit(1)
	}

	var bal permcell.Balancer
	if *balancerSpec != "" {
		b, berr := permcell.BalancerByName(*balancerSpec)
		if berr != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", berr)
			os.Exit(1)
		}
		bal = b
		// The bare form folds in -hyst, matching the -dlb sugar; a
		// parameterized spec carries its own hysteresis.
		if *balancerSpec == "permcell" {
			bal = permcell.PermanentCell(permcell.PermanentCellConfig{Hysteresis: *hyst})
		}
	}
	if bal == nil && *dlbOn {
		bal = permcell.PermanentCell(permcell.PermanentCellConfig{Hysteresis: *hyst})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A second interrupt during the final flush (checkpoint write, engine
	// teardown, CSV flush) means "stop now": force a non-zero exit instead
	// of making the user wait out a stuck teardown. Even then the buffered
	// CSV/JSONL artifacts are flushed and synced first — a forced exit must
	// not truncate the metrics stream mid-record.
	var flushMu sync.Mutex
	var flushers []*artifact
	registerFlusher := func(a *artifact) {
		flushMu.Lock()
		flushers = append(flushers, a)
		flushMu.Unlock()
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		<-sigc
		fmt.Fprintln(os.Stderr, "mdrun: second interrupt; forcing exit")
		flushMu.Lock()
		for _, a := range flushers {
			if err := a.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "mdrun:", err)
			}
		}
		flushMu.Unlock()
		os.Exit(130)
	}()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		a := newArtifact(f)
		defer a.Close()
		registerFlusher(a)
		w = a
	}
	collect := *metricsOut != "" || *promOut != ""
	var jsonl *metrics.JSONLWriter
	if *metricsOut != "" {
		var mw io.Writer = os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mdrun:", err)
				os.Exit(1)
			}
			a := newArtifact(f)
			defer a.Close()
			registerFlusher(a)
			mw = a
		}
		jsonl = metrics.NewJSONLWriter(mw)
	}
	var cum metrics.Cumulative

	header := []string{"step", "work_max", "work_ave", "work_min",
		"wall_max", "wall_ave", "wall_min", "step_wall_max",
		"moved", "moved_bytes", "energy", "temperature", "c0_over_c", "n_factor"}

	// The run header is written lazily at the first row so the recorded
	// balancer is the one the engine actually runs under — on -resume the
	// identity travels in the checkpoint, not the flags.
	writeErr := error(nil)
	headerDone := false
	emitHeader := func(balancer string) {
		if headerDone {
			return
		}
		headerDone = true
		if *resume != "" {
			fmt.Fprintf(w, "# mdrun resume=%s seed=%d shards=%d balancer=%s\n",
				*resume, *seed, *shards, balancer)
		} else {
			fmt.Fprintf(w, "# mdrun m=%d p=%d rho=%g seed=%d dt=%g shards=%d balancer=%s\n",
				*m, *p, *rho, *seed, *dt, *shards, balancer)
		}
		fmt.Fprintln(w, strings.Join(header, ","))
	}
	row := func(st permcell.StepStats) {
		emitHeader(st.Balancer)
		vals := []float64{
			float64(st.Step), st.WorkMax, st.WorkAve, st.WorkMin,
			st.WallMax, st.WallAve, st.WallMin, st.StepWallMax,
			float64(st.Moved), float64(st.MovedBytes), st.TotalEnergy, st.Temperature,
			st.Conc.C0OverC, st.Conc.NFactor,
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil && writeErr == nil {
			writeErr = err
		}
		if collect {
			cum.Add(st.StepWallAve, st.Phases)
			cum.ObserveTransport(st.SentFrames, st.SentBytes, st.ResendCount)
		}
		if jsonl != nil {
			rec := metrics.NewStepRecord(st.Step, st.Phases,
				st.StepWallMax, st.StepWallAve,
				st.WorkMax, st.WorkAve, st.WorkMin,
				st.Balancer, st.Moved, st.MovedBytes,
				st.Conc.C0OverC, st.Conc.NFactor, *m)
			rec.TotalEnergy = st.TotalEnergy
			rec.Temperature = st.Temperature
			rec.SentFrames = st.SentFrames
			rec.SentBytes = st.SentBytes
			rec.ResendCount = st.ResendCount
			if err := jsonl.Write(rec); err != nil && writeErr == nil {
				writeErr = err
			}
		}
	}

	wk := *wellK
	if *wells == 0 {
		wk = 0
	}
	opts := []permcell.Option{
		permcell.WithSeed(*seed), permcell.WithDt(*dt),
		permcell.WithWells(*wells, wk), permcell.WithHysteresis(*hyst),
		permcell.WithShards(*shards),
		permcell.WithOnStep(row), permcell.WithDiscardStats(),
	}
	if bal != nil {
		opts = append(opts, permcell.WithBalancer(bal))
	}
	if collect {
		opts = append(opts, permcell.WithMetrics())
	}
	if *ckptDir != "" {
		opts = append(opts, permcell.WithCheckpoint(*ckptEvery, *ckptDir))
	}
	switch *transportKind {
	case "", permcell.TransportChan:
		// In-process goroutines: the default engine path.
	case permcell.TransportTCP:
		opts = append(opts, permcell.WithTransport(permcell.Transport{
			Kind:   permcell.TransportTCP,
			Procs:  *ranks,
			Worker: resolveWorker(*mdrank),
		}))
	default:
		fmt.Fprintf(os.Stderr, "mdrun: unknown -transport %q (want chan or tcp)\n", *transportKind)
		os.Exit(1)
	}
	if *maxRetries >= 0 {
		opts = append(opts, permcell.WithSupervisor(permcell.SupervisorPolicy{
			MaxRetries: *maxRetries,
			Backoff:    *backoff,
			OnEvent: func(ev permcell.SupervisorEvent) {
				switch ev.Kind {
				case "rollback":
					fmt.Fprintf(os.Stderr, "mdrun: supervisor: rollback to step %d from %s (attempt %d)\n",
						ev.RestoredStep, ev.Checkpoint, ev.Attempt)
				default:
					fmt.Fprintf(os.Stderr, "mdrun: supervisor: %s at step %d: %s\n", ev.Kind, ev.Step, ev.Err)
				}
			},
		}))
	}

	var eng permcell.Engine
	var err error
	if *resume != "" {
		// Physics flags are ignored: the run identity travels in the file.
		eng, err = permcell.Restore(*resume, opts...)
		if err == nil {
			fmt.Fprintf(os.Stderr, "mdrun: resumed from %s\n", *resume)
		}
	} else {
		eng, err = permcell.New(*m, *p, *rho, opts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}

	res, err := drive(ctx, eng, *steps, *ckptDir != "")
	// A zero-row run (steps=0, or stats thinned past the horizon) still gets
	// a well-formed CSV: header from the flag-derived identity.
	emitHeader(permcell.BalancerSpec(bal))
	if rep := permcell.SupervisionReport(eng); rep != nil {
		if len(rep.Events) > 0 {
			fmt.Fprintf(os.Stderr, "mdrun: supervisor: %d rollbacks, %d retries, %d steps replayed (panics=%d guards=%d deadlocks=%d exhausted=%v)\n",
				rep.Rollbacks, rep.Retries, rep.StepsReplayed,
				rep.RankFailures, rep.GuardViolations, rep.Deadlocks, rep.Exhausted)
		}
		if collect {
			cum.Recovery = &metrics.Recovery{
				Panics:          int64(rep.RankFailures),
				GuardViolations: int64(rep.GuardViolations),
				Deadlocks:       int64(rep.Deadlocks),
				WorkerFailures:  int64(rep.WorkerFailures),
				Rollbacks:       int64(rep.Rollbacks),
				Retries:         int64(rep.Retries),
				StepsReplayed:   int64(rep.StepsReplayed),
			}
		}
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mdrun: interrupted; partial run flushed")
		err = nil
	}
	if err == nil {
		err = writeErr
	}
	// The Prometheus snapshot is written even when the run failed: a
	// degraded supervised run's recovery counters are exactly what the
	// operator wants to scrape afterwards. It is written atomically
	// (tmp+rename, the checkpoint idiom): a concurrent scrape — or a crash
	// mid-write — must never see a torn exposition.
	if *promOut != "" {
		perr := checkpoint.WriteAtomic(*promOut, func(pw io.Writer) error {
			return cum.WritePrometheus(pw)
		})
		if perr != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", perr)
			if err == nil {
				err = perr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mdrun: N=%d balancer=%s shards=%d msgs=%d bytes=%d\n",
		res.Final.Len(), permcell.BalancerSpec(bal), *shards, res.CommMsgs, res.CommBytes)
}

// resolveWorker maps the -mdrank flag to a Transport.Worker path. "auto"
// prefers an mdrank binary installed next to the running mdrun executable
// (the layout `go build -o bin ./cmd/...` produces) and degrades to ""
// — in-process goroutine workers over real sockets — so `go run ./cmd/mdrun
// -transport=tcp` works without a separate build step.
func resolveWorker(spec string) string {
	if spec != "auto" {
		return spec
	}
	exe, err := os.Executable()
	if err != nil {
		return ""
	}
	cand := filepath.Join(filepath.Dir(exe), "mdrank")
	if st, err := os.Stat(cand); err == nil && !st.IsDir() {
		return cand
	}
	return ""
}

// drive mirrors permcell.RunEngine, adding one behavior: on cancellation it
// writes a final checkpoint (when checkpointing is configured) before
// finalizing the engine, so an interrupted run can resume from the exact
// step it stopped at rather than the last cadence boundary.
func drive(ctx context.Context, eng permcell.Engine, steps int, ckpt bool) (*permcell.Result, error) {
	for i := 0; i < steps; i++ {
		if ctx.Err() != nil {
			if ckpt {
				if cerr := permcell.CheckpointNow(eng); cerr != nil {
					fmt.Fprintln(os.Stderr, "mdrun: final checkpoint failed:", cerr)
				} else {
					fmt.Fprintln(os.Stderr, "mdrun: final checkpoint written")
				}
			}
			res, rerr := eng.Result()
			if rerr != nil {
				return res, rerr
			}
			return res, ctx.Err()
		}
		if err := eng.Step(1); err != nil {
			res, _ := eng.Result()
			return res, err
		}
	}
	return eng.Result()
}
