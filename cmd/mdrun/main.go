// Command mdrun runs one parallel molecular dynamics simulation and emits
// a per-step CSV of the paper's quantities (Tt, Fmax, Fave, Fmin in both
// the deterministic work metric and wall seconds, columns moved by DLB,
// C_0/C and n).
//
// Usage:
//
//	mdrun [-m 3] [-p 16] [-rho 0.256] [-steps 600] [-dlb] [-wells 12]
//	      [-wellk 1.5] [-dt 0.005] [-hyst 0.1] [-seed 1] [-shards 1]
//	      [-o out.csv]
//
// Rows stream as the simulation advances (the run is O(1) in memory), so a
// long run can be watched with tail -f. Interrupting with Ctrl-C stops at
// the next step boundary and still flushes a complete CSV prefix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"permcell"
)

func main() {
	m := flag.Int("m", 3, "square-pillar cross-section size m")
	p := flag.Int("p", 16, "PE count (perfect square)")
	rho := flag.Float64("rho", 0.256, "reduced density")
	steps := flag.Int("steps", 600, "time steps")
	dlbOn := flag.Bool("dlb", false, "enable permanent-cell dynamic load balancing")
	wells := flag.Int("wells", 12, "condensation driver attractor count (0 = pure physics)")
	wellK := flag.Float64("wellk", 1.5, "attractor strength")
	dt := flag.Float64("dt", 0.005, "time step (reduced units; paper uses 1e-4)")
	hyst := flag.Float64("hyst", 0.1, "DLB hysteresis")
	seed := flag.Uint64("seed", 1, "RNG seed")
	shards := flag.Int("shards", 1, "per-PE force-kernel worker count")
	out := flag.String("o", "", "CSV output path (default stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	header := []string{"step", "work_max", "work_ave", "work_min",
		"wall_max", "wall_ave", "wall_min", "step_wall_max",
		"moved", "energy", "temperature", "c0_over_c", "n_factor"}
	fmt.Fprintln(w, strings.Join(header, ","))

	writeErr := error(nil)
	row := func(st permcell.StepStats) {
		vals := []float64{
			float64(st.Step), st.WorkMax, st.WorkAve, st.WorkMin,
			st.WallMax, st.WallAve, st.WallMin, st.StepWallMax,
			float64(st.Moved), st.TotalEnergy, st.Temperature,
			st.Conc.C0OverC, st.Conc.NFactor,
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil && writeErr == nil {
			writeErr = err
		}
	}

	wk := *wellK
	if *wells == 0 {
		wk = 0
	}
	opts := []permcell.Option{
		permcell.WithSeed(*seed), permcell.WithDt(*dt),
		permcell.WithWells(*wells, wk), permcell.WithHysteresis(*hyst),
		permcell.WithShards(*shards),
		permcell.WithOnStep(row), permcell.WithDiscardStats(),
	}
	if *dlbOn {
		opts = append(opts, permcell.WithDLB())
	}

	res, err := permcell.Run(ctx, *m, *p, *rho, *steps, opts...)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mdrun: interrupted; partial run flushed")
		err = nil
	}
	if err == nil {
		err = writeErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mdrun: N=%d dlb=%v shards=%d msgs=%d bytes=%d\n",
		res.Final.Len(), *dlbOn, *shards, res.CommMsgs, res.CommBytes)
}
