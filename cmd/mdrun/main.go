// Command mdrun runs one parallel molecular dynamics simulation and emits
// a per-step CSV of the paper's quantities (Tt, Fmax, Fave, Fmin in both
// the deterministic work metric and wall seconds, columns moved by DLB,
// C_0/C and n).
//
// Usage:
//
//	mdrun [-m 3] [-p 16] [-rho 0.256] [-steps 600] [-dlb] [-wells 12]
//	      [-wellk 1.5] [-dt 0.005] [-hyst 0.1] [-seed 1] [-o out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"permcell/internal/experiments"
	"permcell/internal/trace"
)

func main() {
	m := flag.Int("m", 3, "square-pillar cross-section size m")
	p := flag.Int("p", 16, "PE count (perfect square)")
	rho := flag.Float64("rho", 0.256, "reduced density")
	steps := flag.Int("steps", 600, "time steps")
	dlbOn := flag.Bool("dlb", false, "enable permanent-cell dynamic load balancing")
	wells := flag.Int("wells", 12, "condensation driver attractor count (0 = pure physics)")
	wellK := flag.Float64("wellk", 1.5, "attractor strength")
	dt := flag.Float64("dt", 0.005, "time step (reduced units; paper uses 1e-4)")
	hyst := flag.Float64("hyst", 0.1, "DLB hysteresis")
	seed := flag.Uint64("seed", 1, "RNG seed")
	out := flag.String("o", "", "CSV output path (default stdout)")
	flag.Parse()

	spec := experiments.RunSpec{
		M: *m, P: *p, Rho: *rho, Steps: *steps, DLB: *dlbOn,
		Seed: *seed, WellK: *wellK, Wells: *wells,
		Hysteresis: *hyst, Dt: *dt, StatsEvery: 1,
	}
	res, info, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mdrun: N=%d C=%d (nc=%d) box=%.2f rho=%.4f dlb=%v msgs=%d\n",
		info.N, info.C, info.NC, info.Box, info.RhoUsed, *dlbOn, res.CommMsgs)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	header := []string{"step", "work_max", "work_ave", "work_min",
		"wall_max", "wall_ave", "wall_min", "step_wall_max",
		"moved", "energy", "temperature", "c0_over_c", "n_factor"}
	rows := make([][]float64, 0, len(res.Stats))
	for _, st := range res.Stats {
		rows = append(rows, []float64{
			float64(st.Step), st.WorkMax, st.WorkAve, st.WorkMin,
			st.WallMax, st.WallAve, st.WallMin, st.StepWallMax,
			float64(st.Moved), st.TotalEnergy, st.Temperature,
			st.Conc.C0OverC, st.Conc.NFactor,
		})
	}
	if err := trace.WriteCSV(w, header, rows); err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		os.Exit(1)
	}
}
