// Command mdserve exposes the permcell simulation engines as an HTTP
// service: submit runs, stream their step records live, pause/resume them
// via checkpoints, and scrape Prometheus metrics for the whole fleet.
//
//	mdserve -addr :8080 -data /var/lib/mdserve -workers 4
//
// See the README's "Serving runs" section for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"permcell/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "data directory for per-run checkpoints (default: a temp dir)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 64)")
	maxParticles := flag.Int("max-particles", 0, "per-run particle cap (0 = 200000)")
	batch := flag.Int("batch", 0, "steps per control-check batch (0 = 8)")
	retention := flag.Duration("retention", 0, "reap terminal runs (and their checkpoints) this long after they finish (0 = keep forever)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	dir := *data
	if dir == "" {
		d, err := os.MkdirTemp("", "mdserve-*")
		if err != nil {
			log.Fatalf("mdserve: %v", err)
		}
		dir = d
		log.Printf("mdserve: no -data given, using %s", dir)
	}

	srv, err := serve.New(serve.Config{
		Dir:          dir,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxParticles: *maxParticles,
		StepBatch:    *batch,
		Retention:    *retention,
	})
	if err != nil {
		log.Fatalf("mdserve: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("mdserve: %v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting HTTP first, then cancel the runs and wait for the
		// worker pool. Paused runs keep their checkpoints on disk.
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("mdserve: http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("mdserve: service shutdown: %v", err)
		}
	}()

	log.Printf("mdserve: listening on %s (data %s)", *addr, dir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mdserve: %v", err)
	}
	// ListenAndServe returned ErrServerClosed: the signal goroutine owns the
	// drain; give it a moment to finish logging before exit.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mdserve: %v\n", err)
		os.Exit(1)
	}
}
