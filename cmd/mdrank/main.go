// mdrank is the worker process of the TCP transport: it dials the
// coordinator (mdrun -transport=tcp, or any facade caller using
// WithTransport), receives its rank block and run spec over the frame
// protocol, and hosts those ranks' PE goroutines until the run finishes.
// It is not meant to be launched by hand — the coordinator spawns one
// mdrank per worker process and tears them down with the connection.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"permcell/internal/distrib"
)

func main() {
	connect := flag.String("connect", "", "coordinator address to dial (host:port)")
	handshake := flag.Duration("handshake-timeout", distrib.DefaultHandshakeTimeout,
		"bound on the hello->spec exchange (the coordinator passes its own setting)")
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "mdrank: -connect is required (mdrank is spawned by a coordinator, e.g. mdrun -transport=tcp)")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrank: dial %s: %v\n", *connect, err)
		os.Exit(1)
	}
	if err := distrib.RunWorkerWith(conn, distrib.WorkerOptions{HandshakeTimeout: *handshake}); err != nil {
		fmt.Fprintf(os.Stderr, "mdrank: %v\n", err)
		os.Exit(1)
	}
}
