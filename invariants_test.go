package permcell_test

// Physics-invariant tests for the force path, run for all three engines at
// shard counts 1, 2 and 8 (and under -race in CI): Newton's third law —
// the total force over a closed system is zero — and its integrated
// consequence, conservation of total momentum over a multi-step run. The
// lattice-gas initial condition has its drift removed, so any momentum the
// final state carries was injected by the force kernel or the integrator.

import (
	"context"
	"math"
	"testing"

	"permcell"
	"permcell/internal/kernel"
	"permcell/internal/mdserial"
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

var invariantShards = []int{1, 2, 8}

// forceSum recomputes pair forces for a final configuration with an
// all-hosted CellLists and returns their vector sum. Newton's third law
// makes the exact sum zero pair by pair; floating-point cancellation
// leaves rounding dust that must stay many orders below the typical
// single-particle force.
func forceSum(t *testing.T, shards int, pos []vec.V, box space.Box) vec.V {
	t.Helper()
	g, err := space.NewGrid(box, units.PaperCutoff)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]int, g.NumCells())
	for c := range cells {
		cells[c] = c
	}
	cl := kernel.NewCellLists(g, shards)
	t.Cleanup(cl.Close)
	cl.SetHosted(cells)
	cl.SealGhosts()
	s := &particle.Set{}
	for i, p := range pos {
		s.Add(int64(i), p, vec.Zero)
	}
	if bad := cl.Bin(s.Pos); bad >= 0 {
		t.Fatalf("particle %d outside the grid", bad)
	}
	s.ZeroForces()
	if _, _, pairs := cl.Compute(potential.NewPaperLJ(), s); pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	var sum vec.V
	for _, f := range s.Frc {
		sum = sum.Add(f)
	}
	return sum
}

// maxAbsComponent returns the largest |component| of v.
func maxAbsComponent(v vec.V) float64 {
	return math.Max(math.Abs(v.X), math.Max(math.Abs(v.Y), math.Abs(v.Z)))
}

// TestSerialZeroTotalForcePerStep checks the third law directly on the
// serial engine's live force array after every step: with no external
// field, the forces the integrator actually consumes must sum to zero.
func TestSerialZeroTotalForcePerStep(t *testing.T) {
	for _, shards := range invariantShards {
		sys, err := workload.LatticeGas(256, 0.256, units.PaperTref, 11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := space.NewGrid(sys.Box, units.PaperCutoff)
		if err != nil {
			t.Fatal(err)
		}
		lj, err := potential.NewLJ(1, 1, units.PaperCutoff, true)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := mdserial.New(mdserial.Config{
			Box: sys.Box, Pair: lj, Dt: 0.005, Grid: g, Shards: shards,
		}, sys.Set)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			eng.Step()
			var sum vec.V
			for _, f := range eng.Set().Frc {
				sum = sum.Add(f)
			}
			if maxAbsComponent(sum) > 1e-10 {
				t.Fatalf("shards=%d step %d: total force %v", shards, step, sum)
			}
		}
		eng.Close()
	}
}

// TestEnginesZeroTotalForce evolves each engine for a few steps and then
// recomputes forces from the gathered final configuration, asserting the
// third law holds on states each engine actually produces (not just on
// synthetic lattices).
func TestEnginesZeroTotalForce(t *testing.T) {
	for _, shards := range invariantShards {
		builders := map[string]func() (permcell.Engine, error){
			"serial": func() (permcell.Engine, error) {
				return permcell.NewSerial(3, 0.256, permcell.WithSeed(5), permcell.WithShards(shards))
			},
			"dlb": func() (permcell.Engine, error) {
				return permcell.New(2, 4, 0.256, permcell.WithDLB(), permcell.WithSeed(5), permcell.WithShards(shards))
			},
			"static": func() (permcell.Engine, error) {
				return permcell.NewStatic(permcell.ShapePlane, 4, 2, 0.256,
					permcell.WithSeed(5), permcell.WithShards(shards))
			},
		}
		for name, build := range builders {
			eng, err := build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := permcell.RunEngine(context.Background(), eng, 10)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if res.Final == nil || res.Final.Len() == 0 {
				t.Fatalf("%s shards=%d: empty final state", name, shards)
			}
			box, err := space.NewCubicBox(math.Cbrt(float64(res.Final.Len()) / 0.256))
			if err != nil {
				t.Fatal(err)
			}
			sum := forceSum(t, shards, res.Final.Pos, box)
			if maxAbsComponent(sum) > 1e-10 {
				t.Fatalf("%s shards=%d: total force %v on the final state", name, shards, sum)
			}
		}
	}
}

// TestEnginesMomentumConservation runs a multi-step simulation on each
// engine and asserts the total momentum stays at the zero it started from
// (LatticeGas removes the initial drift). The parallel engines' velocity
// rescaling multiplies every velocity by one common factor, which
// preserves a zero sum, so the thermostat does not excuse a drift; any
// growth is force-kernel asymmetry amplified by the integrator.
func TestEnginesMomentumConservation(t *testing.T) {
	const steps = 40
	for _, shards := range invariantShards {
		builders := map[string]func() (permcell.Engine, error){
			"serial": func() (permcell.Engine, error) {
				return permcell.NewSerial(3, 0.256, permcell.WithSeed(9), permcell.WithShards(shards))
			},
			"dlb": func() (permcell.Engine, error) {
				return permcell.New(2, 4, 0.256, permcell.WithDLB(), permcell.WithSeed(9), permcell.WithShards(shards))
			},
			"static": func() (permcell.Engine, error) {
				return permcell.NewStatic(permcell.ShapePlane, 4, 2, 0.256,
					permcell.WithSeed(9), permcell.WithShards(shards))
			},
		}
		for name, build := range builders {
			eng, err := build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := permcell.RunEngine(context.Background(), eng, steps)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			p := res.Final.Momentum()
			if maxAbsComponent(p) > 1e-9 {
				t.Fatalf("%s shards=%d: momentum %v after %d steps", name, shards, p, steps)
			}
		}
	}
}
