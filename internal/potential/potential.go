// Package potential implements the interaction models used by the
// simulators: the truncated Lennard-Jones pair potential of the paper (plain
// and energy-shifted), the WCA purely repulsive variant used in tests, and
// external one-body fields (a central harmonic well used to drive particle
// concentration quickly in the accelerated experiments).
package potential

import (
	"fmt"
	"math"

	"permcell/internal/vec"
)

// Pair is a short-range pair potential. Implementations are pure functions
// of the squared separation and safe for concurrent use.
type Pair interface {
	// Cutoff returns the interaction cut-off distance r_c.
	Cutoff() float64
	// EnergyForce returns the pair energy e and the force factor f for a
	// squared separation r2 (0 < r2 <= Cutoff^2). The force on particle i is
	// f * (r_i - r_j); the force on j is the negative.
	EnergyForce(r2 float64) (e, f float64)
}

// LJ is the (4*eps)*((sig/r)^12 - (sig/r)^6) Lennard-Jones potential
// truncated at Cut. If Shift is true the energy is shifted so that it is
// continuous (zero) at the cut-off; forces are identical either way.
type LJ struct {
	Eps, Sigma, Cut float64
	Shift           bool
	shiftE          float64
}

// NewLJ returns a truncated Lennard-Jones potential. eps, sigma and cut must
// be positive; cut is in the same units as sigma.
func NewLJ(eps, sigma, cut float64, shift bool) (*LJ, error) {
	if eps <= 0 || sigma <= 0 || cut <= 0 {
		return nil, fmt.Errorf("potential: LJ parameters must be positive (eps=%g sigma=%g cut=%g)", eps, sigma, cut)
	}
	lj := &LJ{Eps: eps, Sigma: sigma, Cut: cut, Shift: shift}
	if shift {
		e, _ := lj.raw(cut * cut)
		lj.shiftE = e
	}
	return lj, nil
}

// NewPaperLJ returns the paper's reduced-unit potential: eps = sigma = 1,
// cut-off 2.5, unshifted (the classical Verlet/Heermann setup).
func NewPaperLJ() *LJ {
	lj, err := NewLJ(1, 1, 2.5, false)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return lj
}

// Cutoff implements Pair.
func (lj *LJ) Cutoff() float64 { return lj.Cut }

func (lj *LJ) raw(r2 float64) (e, f float64) {
	sr2 := lj.Sigma * lj.Sigma / r2
	sr6 := sr2 * sr2 * sr2
	sr12 := sr6 * sr6
	e = 4 * lj.Eps * (sr12 - sr6)
	f = 24 * lj.Eps * (2*sr12 - sr6) / r2
	return e, f
}

// EnergyForce implements Pair.
func (lj *LJ) EnergyForce(r2 float64) (e, f float64) {
	e, f = lj.raw(r2)
	return e - lj.shiftE, f
}

// WCA is the Weeks-Chandler-Andersen potential: LJ truncated at its minimum
// 2^(1/6) sigma and shifted so it is purely repulsive. Handy in tests where
// clustering must not occur.
type WCA struct{ lj *LJ }

// NewWCA returns a WCA potential with the given eps and sigma.
func NewWCA(eps, sigma float64) (*WCA, error) {
	cut := sigma * math.Pow(2, 1.0/6.0)
	lj, err := NewLJ(eps, sigma, cut, true)
	if err != nil {
		return nil, err
	}
	return &WCA{lj: lj}, nil
}

// Cutoff implements Pair.
func (w *WCA) Cutoff() float64 { return w.lj.Cut }

// EnergyForce implements Pair.
func (w *WCA) EnergyForce(r2 float64) (e, f float64) { return w.lj.EnergyForce(r2) }

// External is a one-body field. Implementations must be safe for concurrent
// use.
type External interface {
	// EnergyForce returns the field energy and force for a particle at p.
	EnergyForce(p vec.V) (e float64, f vec.V)
}

// HarmonicWell attracts particles toward Center with spring constant K:
// V(p) = K/2 * |p - Center|^2. Displacement is measured with the minimum
// image convention in a periodic box with edges L, so the well is well
// defined under periodic boundary conditions.
//
// The well is the accelerated-concentration driver described in DESIGN.md:
// it produces the monotone growth of particle concentration that the
// supercooled gas develops over many more steps, exercising the identical
// DLB code path.
type HarmonicWell struct {
	Center vec.V
	K      float64
	L      vec.V
}

// EnergyForce implements External.
func (h HarmonicWell) EnergyForce(p vec.V) (float64, vec.V) {
	d := p.Sub(h.Center).MinImage(h.L)
	return 0.5 * h.K * d.Norm2(), d.Scale(-h.K)
}

// MultiWell attracts each particle toward its nearest center (minimum-image
// metric): V(p) = K/2 * d_min(p)^2. A handful of wells scattered through the
// box drives the dispersed droplet condensation a supercooled LJ gas
// develops over many thousands of steps — the workload shape the paper's
// DLB evaluation runs on — in a few hundred steps.
type MultiWell struct {
	Centers []vec.V
	K       float64
	L       vec.V
}

// EnergyForce implements External.
func (m MultiWell) EnergyForce(p vec.V) (float64, vec.V) {
	if len(m.Centers) == 0 {
		return 0, vec.Zero
	}
	best := p.Sub(m.Centers[0]).MinImage(m.L)
	bestN2 := best.Norm2()
	for _, c := range m.Centers[1:] {
		d := p.Sub(c).MinImage(m.L)
		if n2 := d.Norm2(); n2 < bestN2 {
			best, bestN2 = d, n2
		}
	}
	return 0.5 * m.K * bestN2, best.Scale(-m.K)
}

// NoField is the zero external field.
type NoField struct{}

// EnergyForce implements External.
func (NoField) EnergyForce(vec.V) (float64, vec.V) { return 0, vec.Zero }
