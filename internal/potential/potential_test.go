package potential

import (
	"math"
	"testing"
	"testing/quick"

	"permcell/internal/vec"
)

func TestLJRejectsBadParams(t *testing.T) {
	for _, c := range [][3]float64{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if _, err := NewLJ(c[0], c[1], c[2], false); err == nil {
			t.Errorf("NewLJ(%v) accepted", c)
		}
	}
}

func TestLJMinimum(t *testing.T) {
	lj := NewPaperLJ()
	// Minimum at r = 2^(1/6), V = -eps, F = 0.
	rm := math.Pow(2, 1.0/6.0)
	e, f := lj.EnergyForce(rm * rm)
	if math.Abs(e+1) > 1e-12 {
		t.Errorf("V(rmin) = %v, want -1", e)
	}
	if math.Abs(f) > 1e-12 {
		t.Errorf("force factor at rmin = %v, want 0", f)
	}
}

func TestLJZeroCrossing(t *testing.T) {
	lj := NewPaperLJ()
	e, _ := lj.EnergyForce(1) // r = sigma
	if math.Abs(e) > 1e-12 {
		t.Errorf("V(sigma) = %v, want 0", e)
	}
}

func TestLJRepulsiveCore(t *testing.T) {
	lj := NewPaperLJ()
	e, f := lj.EnergyForce(0.8 * 0.8)
	if e <= 0 {
		t.Errorf("V(0.8) = %v, want > 0", e)
	}
	if f <= 0 {
		t.Errorf("force factor at 0.8 = %v, want > 0 (repulsive)", f)
	}
}

func TestLJAttractiveTail(t *testing.T) {
	lj := NewPaperLJ()
	e, f := lj.EnergyForce(2.0 * 2.0)
	if e >= 0 {
		t.Errorf("V(2.0) = %v, want < 0", e)
	}
	if f >= 0 {
		t.Errorf("force factor at 2.0 = %v, want < 0 (attractive)", f)
	}
}

func TestLJForceIsEnergyGradient(t *testing.T) {
	// f(r2) must satisfy F(r) = -dV/dr = f * r (central difference check).
	lj := NewPaperLJ()
	f := func(raw float64) bool {
		r := 0.8 + math.Mod(math.Abs(raw), 1.6) // r in [0.8, 2.4]
		const h = 1e-6
		ep, _ := lj.EnergyForce((r + h) * (r + h))
		em, _ := lj.EnergyForce((r - h) * (r - h))
		dVdr := (ep - em) / (2 * h)
		_, fac := lj.EnergyForce(r * r)
		force := fac * r // magnitude along r
		return math.Abs(force+dVdr) < 1e-4*(1+math.Abs(dVdr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLJShifted(t *testing.T) {
	lj, err := NewLJ(1, 1, 2.5, true)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := lj.EnergyForce(2.5 * 2.5)
	if math.Abs(e) > 1e-12 {
		t.Errorf("shifted V(rc) = %v, want 0", e)
	}
	// Forces identical to unshifted.
	_, f1 := lj.EnergyForce(1.5 * 1.5)
	_, f2 := NewPaperLJ().EnergyForce(1.5 * 1.5)
	if f1 != f2 {
		t.Errorf("shifted force %v != unshifted %v", f1, f2)
	}
}

func TestWCARepulsiveOnly(t *testing.T) {
	w, err := NewWCA(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Cutoff()-math.Pow(2, 1.0/6.0)) > 1e-12 {
		t.Errorf("WCA cutoff = %v", w.Cutoff())
	}
	for r := 0.8; r < w.Cutoff(); r += 0.01 {
		e, f := w.EnergyForce(r * r)
		if e < -1e-12 {
			t.Fatalf("WCA energy %v < 0 at r=%v", e, r)
		}
		if f < -1e-12 {
			t.Fatalf("WCA force factor %v < 0 at r=%v", f, r)
		}
	}
}

func TestHarmonicWell(t *testing.T) {
	l := vec.New(10, 10, 10)
	w := HarmonicWell{Center: vec.New(5, 5, 5), K: 2, L: l}
	e, f := w.EnergyForce(vec.New(6, 5, 5))
	if math.Abs(e-1) > 1e-12 { // K/2 * 1^2
		t.Errorf("well energy = %v, want 1", e)
	}
	if f.Dist(vec.New(-2, 0, 0)) > 1e-12 {
		t.Errorf("well force = %v, want (-2,0,0)", f)
	}
}

func TestHarmonicWellPeriodic(t *testing.T) {
	l := vec.New(10, 10, 10)
	w := HarmonicWell{Center: vec.New(1, 1, 1), K: 1, L: l}
	// A particle at 9.5 is only 1.5 away from the center through the
	// boundary; the force must point toward the boundary image.
	_, f := w.EnergyForce(vec.New(9.5, 1, 1))
	if f.X <= 0 {
		t.Errorf("periodic well force X = %v, want > 0 (toward image)", f.X)
	}
}

func TestNoField(t *testing.T) {
	e, f := NoField{}.EnergyForce(vec.New(3, 4, 5))
	if e != 0 || f != vec.Zero {
		t.Errorf("NoField = (%v, %v)", e, f)
	}
}
