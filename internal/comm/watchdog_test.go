package comm

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestWatchdogConvertsDeadlockToError is the headline watchdog property: a
// protocol bug that would hang go test forever instead returns an error
// carrying a per-rank state dump.
func TestWatchdogConvertsDeadlockToError(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.RunWatched(150*time.Millisecond, func(c *Comm) {
		// Classic cross recv with no sends: both ranks wait forever.
		c.Recv(1-c.Rank(), 42)
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Ranks) != 2 {
		t.Fatalf("dump has %d ranks", len(de.Ranks))
	}
	for _, r := range de.Ranks {
		if !r.Blocked || r.LastOp != "recv" {
			t.Errorf("rank %d state = %+v, want blocked in recv", r.Rank, r)
		}
	}
	msg := err.Error()
	for _, want := range []string{"rank 0", "rank 1", "recv", "tag=42", "no progress"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
}

// TestWatchdogBackpressureDeadlock forces the deadlock with the inbox
// capacity option: at capacity 1, two ranks that each send a burst before
// receiving wedge on full inboxes; the dump must show them blocked in send.
func TestWatchdogBackpressureDeadlock(t *testing.T) {
	w, _ := NewWorld(2, WithInboxCapacity(1))
	err := w.RunWatched(150*time.Millisecond, func(c *Comm) {
		other := 1 - c.Rank()
		for i := 0; i < 10; i++ {
			c.Send(other, 1, i)
		}
		for i := 0; i < 10; i++ {
			c.Recv(other, 1)
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(err.Error(), "inbox full") {
		t.Errorf("dump does not identify backpressure:\n%s", err)
	}
}

// TestWatchdogPassesCleanRun asserts no false positives: a normal exchange
// under the watchdog completes and returns nil.
func TestWatchdogPassesCleanRun(t *testing.T) {
	w, _ := NewWorld(4)
	err := w.RunWatched(2*time.Second, func(c *Comm) {
		for round := 0; round < 20; round++ {
			c.Send((c.Rank()+1)%4, 1, round)
			if got := c.Recv((c.Rank()+3)%4, 1).(int); got != round {
				t.Errorf("round %d: got %d", round, got)
			}
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	for _, r := range w.Snapshot() {
		if r.LastOp != "done" {
			t.Errorf("rank %d final state %q, want done", r.Rank, r.LastOp)
		}
		if r.BarrierGen != 20 {
			t.Errorf("rank %d barrier gen = %d, want 20", r.Rank, r.BarrierGen)
		}
	}
}

// TestWatchdogTolleratesStalls asserts a stall shorter than the timeout
// does not trip the watchdog even though no global progress happens while
// every rank sleeps.
func TestWatchdogToleratesStalls(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(FaultPlan{
		Seed: 1,
		Stalls: []Stall{
			{Rank: 0, AfterOps: 1, Duration: 50 * time.Millisecond},
			{Rank: 1, AfterOps: 1, Duration: 50 * time.Millisecond},
		},
	}))
	err := w.RunWatched(500*time.Millisecond, func(c *Comm) {
		c.Send(1-c.Rank(), 1, "hi")
		c.Recv(1-c.Rank(), 1)
	})
	if err != nil {
		t.Fatalf("stalled-but-live run flagged: %v", err)
	}
}

// TestWatchdogDumpIncludesStacks asserts the deadlock error carries the
// all-goroutine stack dump, so a wedged protocol can be located in code and
// not just in the per-rank op log.
func TestWatchdogDumpIncludesStacks(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.RunWatched(150*time.Millisecond, func(c *Comm) {
		c.Recv(1-c.Rank(), 42)
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(de.Stacks, "goroutine") {
		t.Fatal("DeadlockError.Stacks has no goroutine dump")
	}
	msg := err.Error()
	if !strings.Contains(msg, "goroutine stacks at detection") {
		t.Errorf("rendered error omits the stack dump:\n%.400s", msg)
	}
}

// TestSnapshotShowsHeldMessages asserts the state dump surfaces fault-layer
// link state: a message held back for reordering shows up as "holding" on
// the sender's rank — the signature of an injected reorder when a peer
// appears stuck waiting for a message that was in fact sent. (A held message
// cannot persist into a real deadlock — flushHeld runs before every blocking
// op — so the test snapshots mid-flight while the holder is parked outside
// the comm layer.)
func TestSnapshotShowsHeldMessages(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(FaultPlan{
		Seed:         7,
		ReorderProb:  1,
		ReorderDepth: 4,
	}))
	holding := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 5, "held back") // reorder layer holds this with prob 1
				close(holding)
				<-release
				c.Recv(1, 6) // flushes the held message first
			} else {
				c.Recv(0, 5)
				c.Send(0, 6, "ok")
			}
		})
	}()
	<-holding
	snap := w.Snapshot()
	if got := snap[0].Held; len(got) != 1 || got[0] != "dst=1 held=1" {
		t.Errorf("rank 0 held links = %v, want [dst=1 held=1]", got)
	}
	if !strings.Contains(snap[0].String(), "holding [dst=1 held=1]") {
		t.Errorf("rendered state omits held link: %s", snap[0])
	}
	close(release)
	<-done
	if got := w.Snapshot()[0].Held; len(got) != 0 {
		t.Errorf("held links not flushed by the blocking recv: %v", got)
	}
}

// TestWatchdogDumpShowsPending asserts the dump includes buffered messages
// that arrived but never matched — the clue for tag-mismatch bugs.
func TestWatchdogDumpShowsPending(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.RunWatched(150*time.Millisecond, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, "wrong tag")
			c.Recv(1, 1)
		} else {
			c.Recv(0, 9) // waits forever; tag 7 sits in pending
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(err.Error(), "src=0 tag=7") {
		t.Errorf("dump does not show pending unmatched message:\n%s", err)
	}
}
