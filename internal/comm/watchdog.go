package comm

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// tracker holds the per-rank progress state the watchdog inspects. It is
// only allocated when a watchdog or fault plan is in use, so the default
// fast path carries no instrumentation.
type tracker struct {
	ops   atomic.Int64 // global comm-op counter (progress signal)
	ranks []rankTrack
}

func newTracker(p int) *tracker {
	return &tracker{ranks: make([]rankTrack, p)}
}

// rankTrack is one rank's last-known communication state.
type rankTrack struct {
	t *tracker

	mu         sync.Mutex
	lastOp     string // "send", "recv", "barrier", "done"
	detail     string // e.g. "src=3 tag=5"
	ops        int64
	barrierGen int
	pending    []string // buffered (src, tag) pairs awaiting a matching Recv
	blocked    bool
	since      time.Time
}

func (r *rankTrack) bumpOps() {
	r.t.ops.Add(1)
	r.mu.Lock()
	r.ops++
	r.mu.Unlock()
}

func (r *rankTrack) setOp(op, detail string) {
	r.mu.Lock()
	r.lastOp, r.detail = op, detail
	r.blocked = false
	r.mu.Unlock()
}

func (r *rankTrack) setBlocked(op, detail string) {
	r.mu.Lock()
	r.lastOp, r.detail = op, detail
	r.blocked = true
	r.since = time.Now()
	r.mu.Unlock()
}

func (r *rankTrack) clearBlocked() {
	r.mu.Lock()
	r.blocked = false
	r.mu.Unlock()
}

func (r *rankTrack) bumpBarrier() {
	r.mu.Lock()
	r.barrierGen++
	r.mu.Unlock()
}

func (r *rankTrack) setPending(pending []message) {
	tags := make([]string, len(pending))
	for i, m := range pending {
		tags[i] = fmt.Sprintf("src=%d tag=%d", m.src, m.tag)
	}
	r.mu.Lock()
	r.pending = tags
	r.mu.Unlock()
}

// RankState is a snapshot of one rank's communication state, as dumped by
// the deadlock watchdog.
type RankState struct {
	Rank       int
	LastOp     string // last comm operation entered ("done" after fn returned)
	Detail     string
	Ops        int64         // rank-local comm-op count
	BarrierGen int           // barriers entered
	Pending    []string      // buffered messages awaiting a matching Recv
	Blocked    bool          // currently inside a blocking wait
	For        time.Duration // how long the current block has lasted
	// Held lists this rank's fault-layer links with messages held back for
	// reordering ("dst=N held=K"); empty without a fault plan. A held
	// message a peer is blocked waiting for is the classic way an injected
	// reorder turns into an apparent deadlock, so the dump surfaces it.
	Held []string
}

func (s RankState) String() string {
	state := "running"
	if s.Blocked {
		state = fmt.Sprintf("BLOCKED %v in", s.For.Round(time.Millisecond))
	}
	pend := ""
	if len(s.Pending) > 0 {
		pend = fmt.Sprintf(", pending [%s]", strings.Join(s.Pending, "; "))
	}
	held := ""
	if len(s.Held) > 0 {
		held = fmt.Sprintf(", holding [%s]", strings.Join(s.Held, "; "))
	}
	return fmt.Sprintf("rank %d: %s %s %s (ops=%d, barrier gen %d%s%s)",
		s.Rank, state, s.LastOp, s.Detail, s.Ops, s.BarrierGen, pend, held)
}

// Snapshot returns the current per-rank state. It is empty unless the
// world was created with a watchdog or fault plan (or run via RunWatched),
// which is when per-op tracking is armed.
func (w *World) Snapshot() []RankState {
	if w.track == nil {
		return nil
	}
	out := make([]RankState, len(w.track.ranks))
	for i := range w.track.ranks {
		r := &w.track.ranks[i]
		r.mu.Lock()
		out[i] = RankState{
			Rank:       i,
			LastOp:     r.lastOp,
			Detail:     r.detail,
			Ops:        r.ops,
			BarrierGen: r.barrierGen,
			Pending:    append([]string(nil), r.pending...),
			Blocked:    r.blocked,
		}
		if r.blocked {
			out[i].For = time.Since(r.since)
		}
		r.mu.Unlock()
		out[i].Held = w.heldLinks(i)
	}
	return out
}

// heldLinks reports rank src's fault-layer links that are currently holding
// messages back for reordering, via the links' atomic counters (the held
// queues themselves are owned by the sender goroutine and are not read).
func (w *World) heldLinks(src int) []string {
	if w.fs == nil {
		return nil
	}
	var out []string
	for dst, lk := range w.fs.links[src] {
		if n := lk.heldN.Load(); n > 0 {
			out = append(out, fmt.Sprintf("dst=%d held=%d", dst, n))
		}
	}
	return out
}

// DeadlockError reports that no rank made progress for the watchdog
// timeout. It carries the per-rank state dump that replaces the hung run,
// plus a full goroutine stack dump taken at detection time — the per-rank
// states say *what* each rank was doing, the stacks say *where* in the
// protocol it is stuck.
type DeadlockError struct {
	Timeout time.Duration
	Ranks   []RankState
	// Stacks is the all-goroutine stack dump captured when the watchdog
	// fired (empty only if capture failed).
	Stacks string
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comm: deadlock suspected: no progress for %v; per-rank state:", e.Timeout)
	for _, r := range e.Ranks {
		b.WriteString("\n  ")
		b.WriteString(r.String())
	}
	if e.Stacks != "" {
		b.WriteString("\ngoroutine stacks at detection:\n")
		b.WriteString(e.Stacks)
	}
	return b.String()
}

// allStacks captures every goroutine's stack, bounded at 1 MiB.
func allStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}

// RunWatched is Run under a deadlock watchdog: if no rank completes a
// communication operation for timeout, it stops waiting and returns a
// *DeadlockError with a per-rank state dump (last op, pending tags,
// barrier generation) instead of hanging forever.
//
// The timeout must comfortably exceed the longest injected stall or delay
// of the world's fault plan. On a deadlock the rank goroutines are left
// blocked (there is no way to preempt them); callers are expected to fail
// the test or exit the process, exactly as MPI_Abort would.
func (w *World) RunWatched(timeout time.Duration, fn func(c *Comm)) error {
	if timeout <= 0 {
		w.Run(fn)
		return nil
	}
	if w.track == nil {
		w.track = newTracker(w.size)
		for i := range w.track.ranks {
			w.track.ranks[i].t = w.track
		}
	}
	done := make(chan struct{})
	go func() {
		w.Run(fn)
		close(done)
	}()
	return w.WatchSection(timeout, done)
}

// WatchSection watches one bounded section of communication for progress:
// it returns nil once done is closed, or a *DeadlockError if no rank
// completes a communication operation for timeout while the section is in
// flight. Unlike RunWatched, which guards a whole run, this scopes the
// watchdog to a single batch of work — a stepwise engine's ranks sit idle
// between Step calls, which must not count as a stall.
//
// Tracking must have been armed at construction (WithTracking or
// WithFaults); without it the call just waits for done. A timeout <= 0
// also just waits.
func (w *World) WatchSection(timeout time.Duration, done <-chan struct{}) error {
	if timeout <= 0 || w.track == nil {
		<-done
		return nil
	}
	poll := timeout / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	last := w.track.ops.Load()
	lastChange := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-ticker.C:
			cur := w.track.ops.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				return &DeadlockError{Timeout: timeout, Ranks: w.Snapshot(), Stacks: allStacks()}
			}
		}
	}
}
