package comm

import (
	"fmt"
	"sort"
	"time"
)

// Remote is the delivery seam for partial worlds: messages addressed to
// ranks that are not hosted in this process are handed to it instead of a
// local inbox. The TCP backend implements it by framing the message onto
// the coordinator connection; tests implement it with in-memory pairs.
//
// Deliver is called from the sending rank's goroutine after the fault
// layer has already applied its jitter/reorder/failure decisions, so a
// Remote sees exactly the post-chaos delivery stream. Implementations
// must preserve per-(src,tag) call order on delivery — the substrate's
// FIFO matching contract depends on it.
type Remote interface {
	Deliver(src, dst, tag int, data any, size int64) error
	// Stats returns cumulative frames and wire bytes sent through this
	// remote (the source for the transport counters in StepStats).
	Stats() (frames, bytes int64)
}

// TransportStats is the per-transport traffic view surfaced in step
// stats: frames and bytes that crossed the transport boundary, plus
// fault-layer resends. On an in-process world every message is a
// "frame" and bytes are the payload-size hints; on a partial world the
// numbers come from the Remote (real wire traffic of this process).
type TransportStats struct {
	Frames  int64
	Bytes   int64
	Resends int64
}

// NewPartialWorld returns a world of p logical ranks of which only the
// given subset is hosted in this process. Messages to non-local ranks
// are routed through remote; messages for local ranks arriving from
// other processes are fed in with Inject. Collectives work unchanged
// (they are built on point-to-point sends), but Barrier is unavailable:
// it would only synchronize the local subset and silently break SPMD
// semantics, so it panics on a partial world.
func NewPartialWorld(p int, local []int, remote Remote, opts ...Option) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: world size must be >= 1, got %d", p)
	}
	if remote == nil {
		return nil, fmt.Errorf("comm: partial world requires a Remote")
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("comm: partial world hosts no ranks")
	}
	w := &World{
		size:   p,
		inbox:  make([]chan message, p),
		start:  time.Now(),
		remote: remote,
		poison: make(chan struct{}),
	}
	seen := make([]bool, p)
	for _, r := range local {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("comm: local rank %d out of range [0,%d)", r, p)
		}
		if seen[r] {
			return nil, fmt.Errorf("comm: local rank %d listed twice", r)
		}
		seen[r] = true
	}
	w.local = append([]int(nil), local...)
	sort.Ints(w.local)
	for _, opt := range opts {
		opt(w)
	}
	capacity := w.inboxCap
	if capacity == 0 {
		capacity = 64 * p
		if capacity < 256 {
			capacity = 256
		}
	}
	for _, r := range w.local {
		w.inbox[r] = make(chan message, capacity)
	}
	if w.fs != nil && w.track == nil {
		w.track = newTracker(p)
		for i := range w.track.ranks {
			w.track.ranks[i].t = w.track
		}
	}
	return w, nil
}

// Local returns the ranks hosted in this process, ascending.
func (w *World) Local() []int {
	return append([]int(nil), w.local...)
}

// Inject delivers a message that arrived over the transport into a local
// rank's inbox. It does NOT bump the msgs/bytes counters: traffic is
// counted once, on the sending side, so summing per-process Stats over
// all processes matches the single-process totals bit for bit (the
// checkpoint CommMsgs/CommBytes identity depends on this). Inject blocks
// if the inbox is full, exactly like a local sender would.
func (w *World) Inject(src, dst, tag int, data any, size int64) error {
	if dst < 0 || dst >= w.size {
		return fmt.Errorf("comm: inject: rank %d out of range [0,%d)", dst, w.size)
	}
	if w.inbox[dst] == nil {
		return fmt.Errorf("comm: inject: rank %d is not hosted in this process", dst)
	}
	w.inbox[dst] <- message{src: src, tag: tag, data: data, size: size}
	return nil
}

// TransportStats returns this process's transport traffic counters.
func (w *World) TransportStats() TransportStats {
	var ts TransportStats
	if w.remote != nil {
		ts.Frames, ts.Bytes = w.remote.Stats()
	} else {
		ts.Frames = w.msgs.Load()
		ts.Bytes = w.bytes.Load()
	}
	if w.fs != nil {
		ts.Resends = w.fs.retries.Load()
	}
	return ts
}

// TransportStats returns the world's transport traffic counters (rank 0
// stamps them into StepStats at each census).
func (c *Comm) TransportStats() TransportStats { return c.w.TransportStats() }

// deliverRemote hands a message for a non-local rank to the Remote. A
// delivery failure means the transport itself is gone (peer process died,
// socket closed), which — like a full-world channel send that can never
// complete — has no local recovery: panic and let the supervisor or the
// coordinator surface it.
func (c *Comm) deliverRemote(dst int, m message) {
	if err := c.w.remote.Deliver(m.src, dst, m.tag, m.data, m.size); err != nil {
		panic(fmt.Sprintf("comm: remote delivery rank %d -> %d (tag %d) failed: %v", m.src, dst, m.tag, err))
	}
}
