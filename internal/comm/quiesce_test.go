package comm

import (
	"strings"
	"testing"
)

func TestQuiescedEmptyWorld(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Quiesced(); err != nil {
		t.Fatalf("fresh world not quiesced: %v", err)
	}
}

func TestQuiescedDetectsInFlightMessage(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 7, "hello")
	err = w.Quiesced()
	if err == nil || !strings.Contains(err.Error(), "inbox") {
		t.Fatalf("undelivered message not detected: %v", err)
	}
	c1.Recv(0, 7)
	if err := w.Quiesced(); err != nil {
		t.Fatalf("drained world not quiesced: %v", err)
	}
}

func TestCommQuiescedDetectsPendingBuffer(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := w.Comm(0), w.Comm(1)
	// Rank 1 receives tag 2 while tag 1 is also queued; the tag-1 message
	// lands in rank 1's private pending buffer.
	c0.Send(1, 1, "early")
	c0.Send(1, 2, "wanted")
	c1.Recv(0, 2)
	if err := c1.Quiesced(); err == nil || !strings.Contains(err.Error(), "unmatched") {
		t.Fatalf("pending buffer not detected: %v", err)
	}
	c1.Recv(0, 1)
	if err := c1.Quiesced(); err != nil {
		t.Fatalf("drained rank not quiesced: %v", err)
	}
	if err := w.Quiesced(); err != nil {
		t.Fatalf("drained world not quiesced: %v", err)
	}
}

func TestCommQuiescedDetectsHeldMessages(t *testing.T) {
	// ReorderProb 1 guarantees the first send on a link is held back.
	w, err := NewWorld(2, WithFaults(FaultPlan{Seed: 1, ReorderProb: 1, ReorderDepth: 4}))
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 3, "held")
	if err := c0.Quiesced(); err == nil || !strings.Contains(err.Error(), "reordered") {
		t.Fatalf("held message not detected: %v", err)
	}
	c0.flushHeld()
	if err := c0.Quiesced(); err != nil {
		t.Fatalf("flushed rank not quiesced: %v", err)
	}
	// flushHeld enqueued into rank 1's inbox; Quiesced must now flag it.
	if err := w.Quiesced(); err == nil {
		t.Fatal("flushed message in inbox not detected")
	}
	c1.Recv(0, 3)
	if err := w.Quiesced(); err != nil {
		t.Fatalf("fully drained world not quiesced: %v", err)
	}
}
