// Package comm is the message-passing substrate that stands in for MPI on
// the T3E. A World of P ranks runs as P goroutines inside one process;
// point-to-point messages travel over buffered channels with MPI-style
// (source, tag) matching, and the usual collectives (barrier, reductions,
// gathers, broadcast) are built on top. Every rank calls collectives in the
// same order, exactly like an SPMD MPI program.
//
// The substitution is documented in DESIGN.md: the DLB algorithm only needs
// P sequential processors exchanging messages on a virtual 2-D torus, which
// this package provides with identical semantics.
//
// For chaos testing, a World can be created with a deterministic
// fault-injection plan (WithFaults: latency jitter, bounded reordering,
// transient send failures, per-rank stalls — all replayable from one seed)
// and run under a deadlock watchdog (RunWatched) that converts a hang into
// an error carrying a per-rank state dump.
package comm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type message struct {
	src, tag int
	data     any
	size     int64 // payload size hint in bytes (0 when unknown)
}

// World is a group of ranks that can communicate. Create one per parallel
// run, then obtain a Comm per rank. A full world (NewWorld) hosts every
// rank in-process; a partial world (NewPartialWorld) hosts a subset and
// routes the rest through a Remote — the inbox slice keeps one slot per
// logical rank with nil marking the remote ones.
type World struct {
	size  int
	inbox []chan message
	start time.Time
	bar   *barrier // nil on partial worlds

	local  []int  // ranks hosted in this process, ascending
	remote Remote // nil on full worlds

	inboxCap int
	fs       *faultState
	track    *tracker

	poison     chan struct{} // closed by Poison; unblocks every pending Recv
	poisonOnce sync.Once
	poisonWhy  string // written before poison closes (happens-before via close)

	msgs  atomic.Int64
	bytes atomic.Int64
}

// Poison marks the world's message substrate as dead: every rank blocked
// in (or later entering) the receive wait panics with the given reason
// instead of waiting for a message that can no longer arrive. The engine's
// rank trap converts that panic into a typed *supervise.RankFailure, so a
// partial world whose coordinator link died mid-batch unwinds promptly —
// without it, the hosting worker process would hang in Step forever,
// leaking an orphan that outlives its coordinator. Idempotent.
func (w *World) Poison(reason string) {
	w.poisonOnce.Do(func() {
		w.poisonWhy = reason
		close(w.poison)
	})
}

// Option configures a World at construction time.
type Option func(*World)

// WithInboxCapacity overrides the per-rank inbox buffer. The default is
// max(64*p, 256) slots, sized so that the engines' bounded per-step
// protocols (at most a few messages per neighbor per phase) never block on
// a send. Small capacities (down to 1) force backpressure — senders block
// until the receiver drains — which chaos tests use to provoke the
// interleavings and deadlocks the watchdog must catch.
func WithInboxCapacity(n int) Option {
	return func(w *World) {
		if n >= 1 {
			w.inboxCap = n
		}
	}
}

// WithFaults runs the world under the given deterministic fault-injection
// plan (see FaultPlan). A zero-probability plan with no stalls behaves
// identically to a world without one. Per-op progress tracking is armed so
// Snapshot and the watchdog can report per-rank state.
func WithFaults(plan FaultPlan) Option {
	return func(w *World) { w.fs = newFaultState(w.size, plan) }
}

// WithTracking arms per-op progress tracking without a fault plan, so
// Snapshot and WatchSection can report per-rank state. RunWatched arms it
// implicitly; stepwise drivers that watch individual sections need it at
// construction time.
func WithTracking() Option {
	return func(w *World) {
		if w.track == nil {
			w.track = newTracker(w.size)
			for i := range w.track.ranks {
				w.track.ranks[i].t = w.track
			}
		}
	}
}

// NewWorld returns a world of p ranks.
func NewWorld(p int, opts ...Option) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: world size must be >= 1, got %d", p)
	}
	w := &World{
		size:   p,
		inbox:  make([]chan message, p),
		start:  time.Now(),
		bar:    newBarrier(p),
		local:  make([]int, p),
		poison: make(chan struct{}),
	}
	for i := range w.local {
		w.local[i] = i
	}
	for _, opt := range opts {
		opt(w)
	}
	capacity := w.inboxCap
	if capacity == 0 {
		capacity = 64 * p
		if capacity < 256 {
			capacity = 256
		}
	}
	for i := range w.inbox {
		w.inbox[i] = make(chan message, capacity)
	}
	if w.fs != nil && w.track == nil {
		w.track = newTracker(p)
		for i := range w.track.ranks {
			w.track.ranks[i].t = w.track
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the cumulative message and payload-byte counts across all
// ranks (bytes only reflect sends that passed a size hint).
func (w *World) Stats() (msgs, bytes int64) {
	return w.msgs.Load(), w.bytes.Load()
}

// Quiesced verifies that no messages are in flight: every rank's inbox is
// empty. Checkpoint drivers call it at a batch boundary — after every rank
// has acknowledged the batch, which provides the happens-before edge — to
// assert the snapshot captures a complete state with nothing still traveling.
// Each rank's private receive buffer and fault-layer holds are checked by
// that rank itself via Comm.Quiesced.
func (w *World) Quiesced() error {
	for r, in := range w.inbox {
		if in == nil {
			continue // remote rank: its hosting process checks it
		}
		if n := len(in); n > 0 {
			return fmt.Errorf("comm: not quiesced: rank %d inbox holds %d undelivered message(s)", r, n)
		}
	}
	return nil
}

// Quiesced verifies this rank has no communication state pending: its
// receive buffer holds no unmatched messages and (under a fault plan) none
// of its outgoing links is holding back a reordered message. Ranks call it
// at their snapshot point before serializing local state.
func (c *Comm) Quiesced() error {
	if n := len(c.pending); n > 0 {
		m := c.pending[0]
		return fmt.Errorf("comm: not quiesced: rank %d buffers %d unmatched message(s) (first: src=%d tag=%d)",
			c.rank, n, m.src, m.tag)
	}
	if fs := c.w.fs; fs != nil {
		for dst, lk := range fs.links[c.rank] {
			if n := len(lk.held); n > 0 {
				return fmt.Errorf("comm: not quiesced: rank %d holds %d reordered message(s) for rank %d", c.rank, n, dst)
			}
		}
	}
	return nil
}

// Run spawns fn on every locally-hosted rank as a goroutine and blocks
// until all return. It is the moral equivalent of mpirun: on a full world
// that is every rank, on a partial world just this process's share.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	wg.Add(len(w.local))
	for _, r := range w.local {
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			fn(c)
			c.flushHeld() // a finished rank may not strand held-back messages
			if c.tr != nil {
				c.tr.setOp("done", "")
			}
		}(r)
	}
	wg.Wait()
}

// Comm returns the communication handle for one rank. Each handle must be
// used by a single goroutine.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.size))
	}
	if w.inbox[rank] == nil {
		panic(fmt.Sprintf("comm: rank %d is not hosted in this process", rank))
	}
	c := &Comm{w: w, rank: rank}
	if w.track != nil {
		c.tr = &w.track.ranks[rank]
	}
	if w.fs != nil {
		for _, st := range w.fs.plan.Stalls {
			if st.Rank == rank {
				c.stalls = append(c.stalls, st)
			}
		}
		sort.Slice(c.stalls, func(a, b int) bool { return c.stalls[a].AfterOps < c.stalls[b].AfterOps })
	}
	return c
}

// Comm is one rank's endpoint. Not safe for concurrent use by multiple
// goroutines.
type Comm struct {
	w       *World
	rank    int
	pending []message
	collSeq int

	ops      int64 // comm-op counter (send/recv/barrier entries)
	stalls   []Stall
	stallIdx int
	tr       *rankTrack
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Wtime returns seconds elapsed since the world was created (the MPI_Wtime
// analogue used for the wall-clock load metric).
func (c *Comm) Wtime() float64 { return time.Since(c.w.start).Seconds() }

// Send delivers data to rank dst with the given tag. Tags must be
// non-negative; negative tags are reserved for collectives. Send blocks only
// if the destination inbox is full, which bounded per-step protocols never
// trigger at the default capacity (see WithInboxCapacity). Under a fault
// plan, injected transient failures are retried internally without bound;
// use SendReliable to surface them as errors instead.
func (c *Comm) Send(dst, tag int, data any) { c.SendSized(dst, tag, data, 0) }

// SendSized is Send with an explicit payload-size hint in bytes for the
// communication cost accounting.
func (c *Comm) SendSized(dst, tag int, data any, size int64) {
	if tag < 0 {
		panic("comm: negative tags are reserved")
	}
	c.send(dst, tag, data, size)
}

// send is the uniform internal send path (used by both user tags and the
// reserved collective tags). Under a fault plan it retries injected
// transient failures without bound, preserving Send's delivery guarantee.
func (c *Comm) send(dst, tag int, data any, size int64) {
	if err := c.sendAttempts(dst, tag, data, size, -1); err != nil {
		panic(fmt.Sprintf("comm: unbounded send failed: %v", err)) // unreachable
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from other (src, tag) pairs arriving in the
// meantime are buffered, preserving per-pair FIFO order.
func (c *Comm) Recv(src, tag int) any {
	c.opTick()
	c.flushHeld() // never block on a receive while holding back messages
	if c.tr != nil {
		c.tr.setBlocked("recv", fmt.Sprintf("src=%d tag=%d", src, tag))
		defer func() {
			c.tr.clearBlocked()
			c.tr.setPending(c.pending)
		}()
	}
	for i, m := range c.pending {
		if m.src == src && m.tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.data
		}
	}
	for {
		select {
		case m := <-c.w.inbox[c.rank]:
			if m.src == src && m.tag == tag {
				return m.data
			}
			c.pending = append(c.pending, m)
			if c.tr != nil {
				c.tr.setPending(c.pending) // keep the watchdog dump current while blocked
			}
		case <-c.w.poison:
			panic(fmt.Sprintf("comm: world poisoned while rank %d awaited src=%d tag=%d: %s",
				c.rank, src, tag, c.w.poisonWhy))
		}
	}
}

// SendRecv sends sendData to dst and receives a message from src, without
// deadlocking (sends are buffered).
func (c *Comm) SendRecv(dst, sendTag int, sendData any, src, recvTag int) any {
	c.Send(dst, sendTag, sendData)
	return c.Recv(src, recvTag)
}

// Barrier blocks until every rank has entered it. It is unavailable on
// partial worlds (it would only synchronize the local subset); the engine
// protocols are barrier-free by design.
func (c *Comm) Barrier() {
	if c.w.bar == nil {
		panic("comm: Barrier is not supported on a partial world")
	}
	c.opTick()
	c.flushHeld()
	if c.tr != nil {
		c.tr.setBlocked("barrier", "")
		defer func() {
			c.tr.clearBlocked()
			c.tr.bumpBarrier()
		}()
	}
	c.w.bar.wait()
}

// nextCollTag returns a fresh reserved tag. All ranks execute collectives in
// the same order, so sequence numbers agree across ranks.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -c.collSeq
}

// reduce gathers one value per rank at root 0 and returns the full slice on
// rank 0 (nil elsewhere).
func (c *Comm) gatherAt0(tag int, v any) []any {
	if c.rank != 0 {
		c.send(0, tag, v, 0)
		return nil
	}
	all := make([]any, c.w.size)
	all[0] = v
	for src := 1; src < c.w.size; src++ {
		all[src] = c.Recv(src, tag)
	}
	return all
}

// bcastFrom0 sends v from rank 0 to everyone and returns it.
func (c *Comm) bcastFrom0(tag int, v any) any {
	if c.rank == 0 {
		for dst := 1; dst < c.w.size; dst++ {
			c.send(dst, tag, v, 0)
		}
		return v
	}
	return c.Recv(0, tag)
}

// Recv with reserved tags needs the same matching loop; reuse Recv by
// bypassing the tag sign check (Recv does not check signs).

// AllreduceFloat64 combines one float64 per rank with op and returns the
// result on every rank.
func (c *Comm) AllreduceFloat64(v float64, op func(a, b float64) float64) float64 {
	tag := c.nextCollTag()
	all := c.gatherAt0(tag, v)
	var r float64
	if c.rank == 0 {
		r = all[0].(float64)
		for _, x := range all[1:] {
			r = op(r, x.(float64))
		}
	}
	tag2 := c.nextCollTag()
	return c.bcastFrom0(tag2, r).(float64)
}

// AllreduceInt64 combines one int64 per rank with op and returns the result
// on every rank.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	tag := c.nextCollTag()
	all := c.gatherAt0(tag, v)
	var r int64
	if c.rank == 0 {
		r = all[0].(int64)
		for _, x := range all[1:] {
			r = op(r, x.(int64))
		}
	}
	tag2 := c.nextCollTag()
	return c.bcastFrom0(tag2, r).(int64)
}

// Sum, Min and Max are the common reduction operators.
func Sum(a, b float64) float64 { return a + b }

// Min returns the smaller of a and b.
func Min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SumI, MinI and MaxI are the int64 reduction operators.
func SumI(a, b int64) int64 { return a + b }

// MinI returns the smaller of a and b.
func MinI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxI returns the larger of a and b.
func MaxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AllgatherFloat64 returns every rank's value, indexed by rank, on every
// rank.
func (c *Comm) AllgatherFloat64(v float64) []float64 {
	all := c.Allgather(v)
	out := make([]float64, len(all))
	for i, x := range all {
		out[i] = x.(float64)
	}
	return out
}

// Allgather returns every rank's value, indexed by rank, on every rank.
func (c *Comm) Allgather(v any) []any {
	tag := c.nextCollTag()
	all := c.gatherAt0(tag, v)
	tag2 := c.nextCollTag()
	res := c.bcastFrom0(tag2, all)
	return res.([]any)
}

// Broadcast sends v from root to every rank and returns it everywhere.
func (c *Comm) Broadcast(root int, v any) any {
	tag := c.nextCollTag()
	if c.rank == root {
		for dst := 0; dst < c.w.size; dst++ {
			if dst != root {
				c.send(dst, tag, v, 0)
			}
		}
		return v
	}
	return c.Recv(root, tag)
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// CostModel estimates communication time from message statistics with the
// classic alpha-beta model: time = msgs*Latency + bytes*SecPerByte. Used for
// the analysis in DESIGN.md section 5 (the T3E interconnect is simulated,
// so comparative — not absolute — costs are what matter).
type CostModel struct {
	Latency    float64 // seconds per message
	SecPerByte float64 // seconds per payload byte
}

// T3E approximates the paper's machine: ~14 us MPI latency and ~300 MB/s
// sustained MPI bandwidth (the 2.8 GB/s figure in the paper is the raw link
// rate).
var T3E = CostModel{Latency: 14e-6, SecPerByte: 1.0 / 300e6}

// Time returns the modeled total communication time.
func (m CostModel) Time(msgs, bytes int64) float64 {
	return float64(msgs)*m.Latency + float64(bytes)*m.SecPerByte
}
