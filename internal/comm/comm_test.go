package comm

import (
	"sync/atomic"
	"testing"
	"time"

	"permcell/internal/topology"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("size 0 accepted")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 {
		t.Errorf("size = %d", w.Size())
	}
}

func TestPointToPoint(t *testing.T) {
	w, _ := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, "hello")
		} else {
			got := c.Recv(0, 5)
			if got != "hello" {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w, _ := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, "first")
			c.Send(1, 2, "second")
		} else {
			// Receive in reverse tag order; matching must buffer.
			if got := c.Recv(0, 2); got != "second" {
				t.Errorf("tag 2 got %v", got)
			}
			if got := c.Recv(0, 1); got != "first" {
				t.Errorf("tag 1 got %v", got)
			}
		}
	})
}

func TestFIFOPerPair(t *testing.T) {
	w, _ := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 7, i)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := c.Recv(0, 7); got != i {
					t.Fatalf("message %d got %v", i, got)
				}
			}
		}
	})
}

func TestMultipleSourcesInterleaved(t *testing.T) {
	w, _ := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			sum := 0
			for src := 1; src < 4; src++ {
				for k := 0; k < 10; k++ {
					sum += c.Recv(src, 3).(int)
				}
			}
			if sum != 3*10*5 {
				t.Errorf("sum = %d", sum)
			}
		} else {
			for k := 0; k < 10; k++ {
				c.Send(0, 3, 5)
			}
		}
	})
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	// Pairwise simultaneous exchange, the halo pattern.
	w, _ := NewWorld(2)
	done := make(chan struct{})
	go func() {
		w.Run(func(c *Comm) {
			other := 1 - c.Rank()
			got := c.SendRecv(other, 9, c.Rank(), other, 9)
			if got != other {
				t.Errorf("rank %d got %v", c.Rank(), got)
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SendRecv deadlocked")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := NewWorld(8)
	var phase atomic.Int64
	w.Run(func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != 8 {
			t.Errorf("rank %d saw phase %d before barrier release", c.Rank(), got)
		}
		c.Barrier()
	})
}

func TestBarrierReusable(t *testing.T) {
	w, _ := NewWorld(4)
	var counter atomic.Int64
	w.Run(func(c *Comm) {
		for round := 1; round <= 10; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != int64(4*round) {
				t.Errorf("round %d: counter = %d, want %d", round, got, 4*round)
			}
			c.Barrier()
		}
	})
}

func TestAllreduce(t *testing.T) {
	w, _ := NewWorld(6)
	w.Run(func(c *Comm) {
		sum := c.AllreduceFloat64(float64(c.Rank()), Sum)
		if sum != 15 {
			t.Errorf("rank %d: sum = %v", c.Rank(), sum)
		}
		mn := c.AllreduceFloat64(float64(c.Rank()+3), Min)
		if mn != 3 {
			t.Errorf("min = %v", mn)
		}
		mx := c.AllreduceFloat64(float64(c.Rank()), Max)
		if mx != 5 {
			t.Errorf("max = %v", mx)
		}
		si := c.AllreduceInt64(int64(c.Rank()), SumI)
		if si != 15 {
			t.Errorf("int sum = %v", si)
		}
		if c.AllreduceInt64(int64(c.Rank()), MinI) != 0 {
			t.Error("int min wrong")
		}
		if c.AllreduceInt64(int64(c.Rank()), MaxI) != 5 {
			t.Error("int max wrong")
		}
	})
}

func TestAllreduceSingleRank(t *testing.T) {
	w, _ := NewWorld(1)
	w.Run(func(c *Comm) {
		if got := c.AllreduceFloat64(7, Sum); got != 7 {
			t.Errorf("got %v", got)
		}
	})
}

func TestAllgather(t *testing.T) {
	w, _ := NewWorld(5)
	w.Run(func(c *Comm) {
		all := c.AllgatherFloat64(float64(c.Rank() * c.Rank()))
		for r, v := range all {
			if v != float64(r*r) {
				t.Errorf("rank %d: all[%d] = %v", c.Rank(), r, v)
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	w, _ := NewWorld(5)
	w.Run(func(c *Comm) {
		var v any = "nothing"
		if c.Rank() == 2 {
			v = "payload"
		}
		got := c.Broadcast(2, v)
		if got != "payload" {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	// Collectives must not steal point-to-point messages.
	w, _ := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 4, "p2p")
		}
		sum := c.AllreduceFloat64(1, Sum)
		if sum != 3 {
			t.Errorf("sum = %v", sum)
		}
		if c.Rank() == 0 {
			if got := c.Recv(1, 4); got != "p2p" {
				t.Errorf("p2p got %v", got)
			}
		}
	})
}

func TestTorusNeighborExchange(t *testing.T) {
	// The paper's core pattern: every rank exchanges a value with all 8
	// torus neighbors every step, for many steps.
	tor, err := topology.NewSquareTorus(16)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(16)
	w.Run(func(c *Comm) {
		for step := 0; step < 50; step++ {
			nb := tor.Neighbors8(c.Rank())
			for k, dst := range nb {
				c.Send(dst, step*10+k, c.Rank()*1000+step)
			}
			for k, src := range nb {
				// The neighbor at offset k sees me at the opposite offset.
				opp := 7 - k
				got := c.Recv(src, step*10+opp).(int)
				if got != src*1000+step {
					t.Fatalf("step %d: from %d got %d", step, src, got)
				}
			}
			c.Barrier()
		}
	})
}

func TestStatsCount(t *testing.T) {
	w, _ := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendSized(1, 1, "x", 100)
		} else {
			c.Recv(0, 1)
		}
	})
	msgs, bytes := w.Stats()
	if msgs != 1 || bytes != 100 {
		t.Errorf("stats = (%d, %d), want (1, 100)", msgs, bytes)
	}
}

func TestNegativeTagPanics(t *testing.T) {
	w, _ := NewWorld(1)
	c := w.Comm(0)
	defer func() {
		if recover() == nil {
			t.Error("negative tag did not panic")
		}
	}()
	c.Send(0, -1, nil)
}

func TestWtimeMonotonic(t *testing.T) {
	w, _ := NewWorld(1)
	c := w.Comm(0)
	t0 := c.Wtime()
	time.Sleep(time.Millisecond)
	if c.Wtime() <= t0 {
		t.Error("Wtime not increasing")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{Latency: 1e-6, SecPerByte: 1e-9}
	if got := m.Time(1000, 1e6); got != 1000*1e-6+1e6*1e-9 {
		t.Errorf("Time = %v", got)
	}
	if T3E.Latency <= 0 || T3E.SecPerByte <= 0 {
		t.Error("T3E model not positive")
	}
}

func TestCommRankPanics(t *testing.T) {
	w, _ := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	w.Comm(2)
}
