package comm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"permcell/internal/trace"
)

// exchangeProgram is a deterministic SPMD workload: every rank sends rounds
// of tagged, numbered messages to every other rank and receives them all
// back, returning the payload log in program order.
func exchangeProgram(rounds, tags int) func(c *Comm) []string {
	return func(c *Comm) []string {
		var log []string
		p := c.Size()
		for round := 0; round < rounds; round++ {
			for dst := 0; dst < p; dst++ {
				if dst == c.Rank() {
					continue
				}
				for tag := 0; tag < tags; tag++ {
					c.Send(dst, tag, fmt.Sprintf("r%d t%d from %d", round, tag, c.Rank()))
				}
			}
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				for tag := 0; tag < tags; tag++ {
					log = append(log, c.Recv(src, tag).(string))
				}
			}
		}
		return log
	}
}

func runExchange(t *testing.T, w *World, rounds, tags int) [][]string {
	t.Helper()
	logs := make([][]string, w.Size())
	prog := exchangeProgram(rounds, tags)
	w.Run(func(c *Comm) { logs[c.Rank()] = prog(c) })
	return logs
}

// chaosPlan is the reference plan used by the determinism tests: all fault
// kinds on at once.
func chaosPlan(seed uint64) FaultPlan {
	return FaultPlan{
		Seed:         seed,
		DelayProb:    0.1,
		MaxDelay:     200 * time.Microsecond,
		ReorderProb:  0.3,
		ReorderDepth: 3,
		FailProb:     0.05,
		Stalls:       []Stall{{Rank: 1, AfterOps: 20, Duration: time.Millisecond}},
		Record:       true,
		MaxEvents:    1 << 16,
	}
}

// TestFaultFreePlanIdentical asserts the satellite property: a plan with
// zero probabilities and no stalls is byte-identical to the plain path —
// same deliveries, same message statistics.
func TestFaultFreePlanIdentical(t *testing.T) {
	plain, _ := NewWorld(4)
	faultfree, _ := NewWorld(4, WithFaults(FaultPlan{Seed: 99}))

	logsA := runExchange(t, plain, 5, 3)
	logsB := runExchange(t, faultfree, 5, 3)
	for r := range logsA {
		if strings.Join(logsA[r], "|") != strings.Join(logsB[r], "|") {
			t.Fatalf("rank %d deliveries differ between plain and fault-free plan", r)
		}
	}
	am, ab := plain.Stats()
	bm, bb := faultfree.Stats()
	if am != bm || ab != bb {
		t.Errorf("stats differ: plain (%d,%d) vs fault-free plan (%d,%d)", am, ab, bm, bb)
	}
	if fs := faultfree.FaultStats(); fs != (FaultStats{}) {
		t.Errorf("fault-free plan injected faults: %+v", fs)
	}
}

// eventKey flattens a fault event for order-insensitive comparison (the
// global event slice interleaves ranks nondeterministically; each rank's
// subsequence is the deterministic part).
func sortedEventKeys(evs []trace.FaultEvent) []string {
	keys := make([]string, len(evs))
	for i, e := range evs {
		keys[i] = fmt.Sprintf("rank=%d seq=%d kind=%s peer=%d tag=%d dur=%g", e.Rank, e.Seq, e.Kind, e.Peer, e.Tag, e.Dur)
	}
	sort.Strings(keys)
	return keys
}

// TestSameSeedSameFaults asserts the replay property: the same seed yields
// the identical injected-fault sequence (per rank, with identical drawn
// durations) and identical deliveries.
func TestSameSeedSameFaults(t *testing.T) {
	var prevLogs [][]string
	var prevEvents []string
	var prevStats FaultStats
	for run := 0; run < 2; run++ {
		w, _ := NewWorld(4, WithFaults(chaosPlan(7)))
		logs := runExchange(t, w, 10, 3)
		events := sortedEventKeys(w.FaultEvents())
		stats := w.FaultStats()
		if stats.Delays == 0 || stats.Reorders == 0 || stats.Failures == 0 || stats.Stalls == 0 {
			t.Fatalf("plan injected nothing: %+v", stats)
		}
		if run == 0 {
			prevLogs, prevEvents, prevStats = logs, events, stats
			continue
		}
		if stats != prevStats {
			t.Errorf("fault stats differ across replays: %+v vs %+v", prevStats, stats)
		}
		if len(events) != len(prevEvents) {
			t.Fatalf("event count differs: %d vs %d", len(prevEvents), len(events))
		}
		for i := range events {
			if events[i] != prevEvents[i] {
				t.Fatalf("event %d differs:\n  %s\n  %s", i, prevEvents[i], events[i])
			}
		}
		for r := range logs {
			if strings.Join(logs[r], "|") != strings.Join(prevLogs[r], "|") {
				t.Fatalf("rank %d deliveries differ across replays", r)
			}
		}
	}
}

// TestReorderPreservesPerPairFIFO floods one link with interleaved tags
// under aggressive reordering and asserts the matching contract survives:
// every (src, tag) stream arrives in send order.
func TestReorderPreservesPerPairFIFO(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(FaultPlan{Seed: 3, ReorderProb: 0.8, ReorderDepth: 4}))
	const perTag, tags = 50, 4
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Interleave tags so consecutive sends on the link carry
			// different tags — the reorderable case.
			for i := 0; i < perTag; i++ {
				for tag := 0; tag < tags; tag++ {
					c.Send(1, tag, i)
				}
			}
		} else {
			for tag := 0; tag < tags; tag++ {
				for i := 0; i < perTag; i++ {
					if got := c.Recv(0, tag).(int); got != i {
						t.Errorf("tag %d: message %d arrived as %d (per-pair FIFO broken)", tag, i, got)
						return
					}
				}
			}
		}
	})
	if w.FaultStats().Reorders == 0 {
		t.Error("no reorders injected despite ReorderProb=0.8")
	}
}

func TestSendReliableSurfacesFailure(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(FaultPlan{Seed: 1, FailProb: 1, MaxAttempts: 3, Backoff: time.Microsecond}))
	c := w.Comm(0)
	err := c.SendReliable(1, 5, "doomed")
	if !errors.Is(err, ErrSendFailed) {
		t.Fatalf("err = %v, want ErrSendFailed", err)
	}
	if got := w.FaultStats().Failures; got != 3 {
		t.Errorf("failures = %d, want 3 (one per attempt)", got)
	}
	if got := w.FaultStats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestSendReliableNoPlanNeverFails(t *testing.T) {
	w, _ := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendReliable(1, 1, "x"); err != nil {
				t.Errorf("SendReliable without plan: %v", err)
			}
		} else if got := c.Recv(0, 1); got != "x" {
			t.Errorf("got %v", got)
		}
	})
}

// TestSendRetriesUntilDelivered asserts plain Send never loses a message
// even under heavy transient failure.
func TestSendRetriesUntilDelivered(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(FaultPlan{Seed: 5, FailProb: 0.5, Backoff: time.Microsecond}))
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 200; i++ {
				c.Send(1, 1, i)
			}
		} else {
			for i := 0; i < 200; i++ {
				if got := c.Recv(0, 1).(int); got != i {
					t.Fatalf("message %d arrived as %v", i, got)
				}
			}
		}
	})
	fs := w.FaultStats()
	if fs.Failures == 0 || fs.Retries == 0 {
		t.Errorf("expected injected failures and retries, got %+v", fs)
	}
}

func TestStallFiresOnce(t *testing.T) {
	const d = 20 * time.Millisecond
	w, _ := NewWorld(2, WithFaults(FaultPlan{
		Seed:   1,
		Stalls: []Stall{{Rank: 0, AfterOps: 2, Duration: d}},
		Record: true,
	}))
	var elapsed time.Duration
	w.Run(func(c *Comm) {
		t0 := time.Now()
		for i := 0; i < 5; i++ {
			if c.Rank() == 0 {
				c.Send(1, 1, i)
			} else {
				c.Recv(0, 1)
			}
		}
		if c.Rank() == 0 {
			elapsed = time.Since(t0)
		}
	})
	if got := w.FaultStats().Stalls; got != 1 {
		t.Errorf("stalls fired = %d, want 1", got)
	}
	if elapsed < d {
		t.Errorf("rank 0 finished in %v, stall of %v did not bite", elapsed, d)
	}
	found := false
	for _, e := range w.FaultEvents() {
		if e.Kind == "stall" && e.Rank == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no stall event recorded")
	}
}

func TestWriteFaultCSV(t *testing.T) {
	w, _ := NewWorld(2, WithFaults(chaosPlan(11)))
	runExchange(t, w, 5, 3)
	events := w.FaultEvents()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var b strings.Builder
	if err := trace.WriteFaultCSV(&b, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "rank,peer,tag,kind,seq,dur\n") {
		t.Errorf("missing header: %q", out[:40])
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(events)+1 {
		t.Error("row count mismatch")
	}
}

// TestChaosCollectivesCorrect runs the full collective suite under heavy
// chaos: whatever the injected faults do to timing and interleaving, the
// results must be exact.
func TestChaosCollectivesCorrect(t *testing.T) {
	w, _ := NewWorld(9, WithFaults(chaosPlan(13)))
	w.Run(func(c *Comm) {
		for round := 0; round < 20; round++ {
			if got := c.AllreduceFloat64(float64(c.Rank()), Sum); got != 36 {
				t.Errorf("round %d: allreduce sum = %v", round, got)
				return
			}
			all := c.Allgather(c.Rank() * 10)
			for r, v := range all {
				if v.(int) != r*10 {
					t.Errorf("round %d: allgather[%d] = %v", round, r, v)
					return
				}
			}
			if got := c.Broadcast(round%9, round); got != round {
				t.Errorf("round %d: broadcast = %v", round, got)
				return
			}
			c.Barrier()
		}
	})
}
