package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"permcell/internal/rng"
	"permcell/internal/trace"
)

// FaultPlan configures deterministic fault injection for a World. Every
// random choice is drawn from a per-link xoshiro stream derived from Seed,
// so a chaos run is replayable: the same plan on the same program yields
// the identical sequence of injected faults and the identical per-link
// delivery order (provided sends never block on a full inbox, which holds
// at the default inbox capacity).
//
// The layer never violates the substrate's matching contract: messages of
// the same (source, tag) pair are always delivered in send order. Bounded
// reordering only swaps messages of different tags on the same link, which
// is exactly the freedom a tag-matching MPI implementation has.
type FaultPlan struct {
	// Seed drives every per-link random stream.
	Seed uint64

	// DelayProb is the per-message probability of latency jitter: the
	// sender sleeps a uniform duration in (0, MaxDelay] before delivery.
	DelayProb float64
	MaxDelay  time.Duration

	// ReorderProb is the per-message probability that a message is held
	// back and overtaken by 1..ReorderDepth later messages on the same
	// link (different tags only; same-tag FIFO is preserved). Held
	// messages are flushed whenever the sender would block, so holding
	// never introduces a deadlock on its own.
	ReorderProb  float64
	ReorderDepth int // default 2 when ReorderProb > 0

	// FailProb is the per-attempt probability that a delivery attempt
	// fails transiently. Send retries internally (the message is never
	// lost); SendReliable surfaces the retry loop: it backs off and
	// returns ErrSendFailed after MaxAttempts failed attempts.
	FailProb    float64
	MaxAttempts int           // default 8
	Backoff     time.Duration // base backoff, doubled per retry; default 200us

	// Stalls schedules rank-local pauses: when rank Rank's comm-op
	// counter reaches AfterOps, the rank sleeps for Duration before the
	// op proceeds. Stalls perturb wall-clock load and interleaving
	// without touching message contents.
	Stalls []Stall

	// Record keeps per-event records (capped at MaxEvents, default 4096)
	// retrievable via World.FaultEvents. Counters in FaultStats are
	// always maintained.
	Record    bool
	MaxEvents int
}

// Stall is one scheduled per-rank pause.
type Stall struct {
	Rank     int
	AfterOps int64
	Duration time.Duration
}

// ErrSendFailed is returned by SendReliable when every delivery attempt
// failed transiently.
var ErrSendFailed = errors.New("comm: send failed after retries")

// FaultStats counts injected faults over a world's lifetime.
type FaultStats struct {
	Delays   int64 // messages delayed by latency jitter
	Reorders int64 // messages held back for reordering
	Failures int64 // transient delivery failures injected
	Retries  int64 // delivery attempts repeated after a failure
	Stalls   int64 // scheduled rank stalls fired
}

// heldMsg is a message held back for reordering: it is delivered after
// overtake more messages pass it on the same link.
type heldMsg struct {
	m        message
	overtake int
}

// link is the sender-side fault state of one directed (src, dst) pair. It
// is owned by the source rank's goroutine; no locking — except heldN, an
// atomic mirror of len(held) so the watchdog can dump held-message counts
// from outside the owner goroutine without racing it.
type link struct {
	rng   *rng.Source
	held  []heldMsg
	heldN atomic.Int64
}

// setHeld replaces the held queue and refreshes the atomic mirror. Only the
// owning (source rank) goroutine calls it.
func (lk *link) setHeld(held []heldMsg) {
	lk.held = held
	lk.heldN.Store(int64(len(held)))
}

// faultState is the per-world fault-injection state.
type faultState struct {
	plan  FaultPlan
	links [][]*link // [src][dst]

	delays   atomic.Int64
	reorders atomic.Int64
	failures atomic.Int64
	retries  atomic.Int64
	stalls   atomic.Int64

	mu     sync.Mutex
	events []trace.FaultEvent
}

func newFaultState(p int, plan FaultPlan) *faultState {
	if plan.ReorderProb > 0 && plan.ReorderDepth < 1 {
		plan.ReorderDepth = 2
	}
	if plan.MaxAttempts < 1 {
		plan.MaxAttempts = 8
	}
	if plan.Backoff <= 0 {
		plan.Backoff = 200 * time.Microsecond
	}
	if plan.MaxEvents <= 0 {
		plan.MaxEvents = 4096
	}
	fs := &faultState{plan: plan, links: make([][]*link, p)}
	for src := range fs.links {
		fs.links[src] = make([]*link, p)
		for dst := range fs.links[src] {
			// Each directed link gets its own stream, derived from the
			// plan seed by splitmix-style mixing of the link index, so
			// link streams are independent and replayable in isolation.
			fs.links[src][dst] = &link{
				rng: rng.New(plan.Seed ^ (0x9e3779b97f4a7c15 * uint64(src*p+dst+1))),
			}
		}
	}
	return fs
}

func (fs *faultState) record(ev trace.FaultEvent) {
	if !fs.plan.Record {
		return
	}
	fs.mu.Lock()
	if len(fs.events) < fs.plan.MaxEvents {
		fs.events = append(fs.events, ev)
	}
	fs.mu.Unlock()
}

// Stats returns the cumulative injected-fault counters (zero-valued when
// the world has no fault plan).
func (w *World) FaultStats() FaultStats {
	if w.fs == nil {
		return FaultStats{}
	}
	return FaultStats{
		Delays:   w.fs.delays.Load(),
		Reorders: w.fs.reorders.Load(),
		Failures: w.fs.failures.Load(),
		Retries:  w.fs.retries.Load(),
		Stalls:   w.fs.stalls.Load(),
	}
}

// FaultEvents returns a copy of the recorded fault events (empty unless the
// plan set Record).
func (w *World) FaultEvents() []trace.FaultEvent {
	if w.fs == nil {
		return nil
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	return append([]trace.FaultEvent(nil), w.fs.events...)
}

// opTick advances this rank's comm-op counter and fires any scheduled
// stall that became due.
func (c *Comm) opTick() {
	c.ops++
	if c.tr != nil {
		c.tr.bumpOps()
	}
	fs := c.w.fs
	if fs == nil {
		return
	}
	for c.stallIdx < len(c.stalls) && c.ops >= c.stalls[c.stallIdx].AfterOps {
		st := c.stalls[c.stallIdx]
		c.stallIdx++
		fs.stalls.Add(1)
		fs.record(trace.FaultEvent{Rank: c.rank, Peer: -1, Kind: "stall", Seq: c.ops, Dur: st.Duration.Seconds()})
		time.Sleep(st.Duration)
	}
}

// trySend makes one delivery attempt on the faulty path: it may inject a
// transient failure (returning ErrSendFailed without delivering), sleep for
// latency jitter, hold the message back for reordering, and it flushes any
// held messages that have been overtaken enough. Counting of msgs/bytes is
// done by the caller exactly once per successful delivery.
func (c *Comm) trySend(dst, tag int, data any, size int64) error {
	fs := c.w.fs
	lk := fs.links[c.rank][dst]
	if fs.plan.FailProb > 0 && lk.rng.Float64() < fs.plan.FailProb {
		fs.failures.Add(1)
		fs.record(trace.FaultEvent{Rank: c.rank, Peer: dst, Tag: tag, Kind: "fail", Seq: c.ops})
		return ErrSendFailed
	}
	if fs.plan.DelayProb > 0 && lk.rng.Float64() < fs.plan.DelayProb {
		d := time.Duration(lk.rng.Float64() * float64(fs.plan.MaxDelay))
		fs.delays.Add(1)
		fs.record(trace.FaultEvent{Rank: c.rank, Peer: dst, Tag: tag, Kind: "delay", Seq: c.ops, Dur: d.Seconds()})
		time.Sleep(d)
	}
	m := message{src: c.rank, tag: tag, data: data, size: size}

	// Same-tag FIFO: anything held with this tag must leave first.
	if len(lk.held) > 0 {
		kept := lk.held[:0]
		for _, h := range lk.held {
			if h.m.tag == tag {
				c.enqueue(dst, h.m)
			} else {
				kept = append(kept, h)
			}
		}
		lk.setHeld(kept)
	}

	if fs.plan.ReorderProb > 0 && len(lk.held) < fs.plan.ReorderDepth &&
		lk.rng.Float64() < fs.plan.ReorderProb {
		fs.reorders.Add(1)
		fs.record(trace.FaultEvent{Rank: c.rank, Peer: dst, Tag: tag, Kind: "reorder", Seq: c.ops})
		lk.setHeld(append(lk.held, heldMsg{m: m, overtake: 1 + lk.rng.Intn(fs.plan.ReorderDepth)}))
		return nil
	}

	c.enqueue(dst, m)

	// The new message overtook everything held on this link.
	if len(lk.held) > 0 {
		kept := lk.held[:0]
		for _, h := range lk.held {
			h.overtake--
			if h.overtake <= 0 {
				c.enqueue(dst, h.m)
			} else {
				kept = append(kept, h)
			}
		}
		lk.setHeld(kept)
	}
	return nil
}

// enqueue places m into dst's inbox, or hands it to the Remote when dst
// lives in another process. If a local inbox is full it first flushes
// every held message on every link of this rank, so that a sender never
// blocks while holding back messages a peer may be waiting for.
func (c *Comm) enqueue(dst int, m message) {
	c.w.msgs.Add(1)
	c.w.bytes.Add(m.size)
	if c.w.inbox[dst] == nil {
		c.deliverRemote(dst, m)
		return
	}
	select {
	case c.w.inbox[dst] <- m:
		return
	default:
	}
	c.flushHeld()
	if c.tr != nil {
		c.tr.setBlocked("send", fmt.Sprintf("dst=%d tag=%d (inbox full)", dst, m.tag))
		defer c.tr.clearBlocked()
	}
	c.w.inbox[dst] <- m
}

// flushHeld delivers every message this rank is holding back, in link then
// hold order. Called before any operation that can block indefinitely
// (Recv, Barrier, a full-inbox send) and when the rank's function returns.
func (c *Comm) flushHeld() {
	fs := c.w.fs
	if fs == nil {
		return
	}
	for dst, lk := range fs.links[c.rank] {
		if len(lk.held) == 0 {
			continue
		}
		held := lk.held
		lk.setHeld(nil)
		for _, h := range held {
			// Bypass the full-inbox flush (we are the flush): plain send.
			c.w.msgs.Add(1)
			c.w.bytes.Add(h.m.size)
			if c.w.inbox[dst] == nil {
				c.deliverRemote(dst, h.m)
				continue
			}
			c.w.inbox[dst] <- h.m
		}
	}
}

// FlushFaults delivers every message the fault layer is holding back for
// reordering on this rank's links. A rank that goes idle — acking a
// batch boundary to a driver and waiting for the next command — must
// call it first: a held message strands a peer that is still blocked
// receiving it, and with the holder no longer sending (the flush
// triggers below only fire inside comm operations) the run deadlocks.
// No-op without a fault plan or held messages.
func (c *Comm) FlushFaults() { c.flushHeld() }

// SendReliable is Send over an unreliable link: under a fault plan each
// delivery attempt may fail transiently, in which case it backs off
// (doubling from FaultPlan.Backoff) and retries up to MaxAttempts times
// before giving up with ErrSendFailed. Without a fault plan it is exactly
// Send and always returns nil.
func (c *Comm) SendReliable(dst, tag int, data any) error {
	return c.SendReliableSized(dst, tag, data, 0)
}

// SendReliableSized is SendReliable with a payload-size hint.
func (c *Comm) SendReliableSized(dst, tag int, data any, size int64) error {
	if tag < 0 {
		panic("comm: negative tags are reserved")
	}
	return c.sendAttempts(dst, tag, data, size, c.maxAttempts())
}

func (c *Comm) maxAttempts() int {
	if c.w.fs == nil {
		return 1
	}
	return c.w.fs.plan.MaxAttempts
}

// sendAttempts drives the retry loop shared by Send (attempts < 0,
// unbounded: the blocking-send contract) and SendReliable (bounded).
func (c *Comm) sendAttempts(dst, tag int, data any, size int64, attempts int) error {
	c.opTick()
	if c.tr != nil {
		c.tr.setOp("send", fmt.Sprintf("dst=%d tag=%d", dst, tag))
	}
	if c.w.fs == nil {
		c.enqueue(dst, message{src: c.rank, tag: tag, data: data, size: size})
		return nil
	}
	backoff := c.w.fs.plan.Backoff
	for i := 0; attempts < 0 || i < attempts; i++ {
		if i > 0 {
			c.w.fs.retries.Add(1)
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		}
		if err := c.trySend(dst, tag, data, size); err == nil {
			return nil
		}
	}
	return fmt.Errorf("%w (dst=%d tag=%d attempts=%d)", ErrSendFailed, dst, tag, attempts)
}
