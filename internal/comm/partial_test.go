package comm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// memRemote bridges two partial worlds in-memory: everything delivered to
// it is injected into the peer world. It stands in for the TCP transport
// in tests.
type memRemote struct {
	mu     sync.Mutex
	peer   *World
	frames atomic.Int64
	bytes  atomic.Int64
}

func (r *memRemote) Deliver(src, dst, tag int, data any, size int64) error {
	r.frames.Add(1)
	r.bytes.Add(size)
	// The lock serializes concurrent senders like a connection write mutex
	// would; each sender's own sequence stays in order.
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peer.Inject(src, dst, tag, data, size)
}

func (r *memRemote) Stats() (frames, bytes int64) { return r.frames.Load(), r.bytes.Load() }

// splitWorlds returns two partial worlds covering ranks [0,cut) and
// [cut,p), bridged by in-memory remotes.
func splitWorlds(t *testing.T, p, cut int, opts ...Option) (*World, *World) {
	t.Helper()
	ra, rb := &memRemote{}, &memRemote{}
	var lo, hi []int
	for r := 0; r < p; r++ {
		if r < cut {
			lo = append(lo, r)
		} else {
			hi = append(hi, r)
		}
	}
	wa, err := NewPartialWorld(p, lo, ra, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewPartialWorld(p, hi, rb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ra.peer, rb.peer = wb, wa
	return wa, wb
}

// runBoth runs fn on every rank across both partial worlds and waits.
func runBoth(wa, wb *World, fn func(c *Comm)) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); wa.Run(fn) }()
	go func() { defer wg.Done(); wb.Run(fn) }()
	wg.Wait()
}

// TestPartialWorldMatchesFullWorld runs the same SPMD program — point to
// point ring exchange plus the collective census paths — on a full world
// and on a pair of bridged partial worlds, and requires identical results.
func TestPartialWorldMatchesFullWorld(t *testing.T) {
	const p = 4
	program := func(c *Comm, out []float64) {
		r := c.Rank()
		next, prev := (r+1)%p, (r+p-1)%p
		c.SendSized(next, 1, float64(r*10), 8)
		got := c.Recv(prev, 1).(float64)

		sum := c.AllreduceFloat64(float64(r)+got/100, Sum)
		all := c.AllgatherFloat64(float64(r * r))
		mx := c.AllreduceInt64(int64(r), MaxI)
		bc := c.Broadcast(2, r).(int)

		acc := got + sum + float64(mx) + float64(bc)
		for i, v := range all {
			acc += v * float64(i+1)
		}
		out[r] = acc
	}

	full, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, p)
	full.Run(func(c *Comm) { program(c, want) })

	wa, wb := splitWorlds(t, p, 2)
	got := make([]float64, p)
	runBoth(wa, wb, func(c *Comm) { program(c, got) })

	for r := 0; r < p; r++ {
		if got[r] != want[r] {
			t.Fatalf("rank %d: partial=%v full=%v", r, got[r], want[r])
		}
	}

	// Sender-side counting: summing the two partial worlds' message
	// counters must equal the full world's.
	fm, fb := full.Stats()
	am, ab := wa.Stats()
	bm, bb := wb.Stats()
	if am+bm != fm || ab+bb != fb {
		t.Fatalf("stats mismatch: partial %d msgs/%d bytes vs full %d/%d", am+bm, ab+bb, fm, fb)
	}

	if err := wa.Quiesced(); err != nil {
		t.Fatalf("partial world A not quiesced: %v", err)
	}
	if err := wb.Quiesced(); err != nil {
		t.Fatalf("partial world B not quiesced: %v", err)
	}
}

// TestPartialWorldFaultPlanMatchesFull replays a chaos plan on split
// worlds: the per-link RNG streams are placement-independent, so the
// healed delivery order — and therefore the program result — must match
// the full-world run bit for bit.
func TestPartialWorldFaultPlanMatchesFull(t *testing.T) {
	const p = 4
	plan := FaultPlan{Seed: 99, DelayProb: 0.2, MaxDelay: 100_000, ReorderProb: 0.3, FailProb: 0.2}

	program := func(c *Comm, out []int64) {
		r := c.Rank()
		var acc int64
		for round := 0; round < 20; round++ {
			for _, dst := range []int{(r + 1) % p, (r + 2) % p} {
				c.SendSized(dst, 3+round%2, int64(r*1000+round), 8)
			}
			for _, src := range []int{(r + p - 1) % p, (r + p - 2) % p} {
				acc = acc*31 + c.Recv(src, 3+round%2).(int64)
			}
		}
		out[r] = acc + c.AllreduceInt64(acc, SumI)
	}

	full, err := NewWorld(p, WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, p)
	full.Run(func(c *Comm) { program(c, want) })

	wa, wb := splitWorlds(t, p, 2, WithFaults(plan))
	got := make([]int64, p)
	runBoth(wa, wb, func(c *Comm) { program(c, got) })

	for r := 0; r < p; r++ {
		if got[r] != want[r] {
			t.Fatalf("rank %d under faults: partial=%d full=%d", r, got[r], want[r])
		}
	}

	// Placement-independent link streams: summed fault counters match.
	fs, as, bs := full.FaultStats(), wa.FaultStats(), wb.FaultStats()
	sum := FaultStats{
		Delays:   as.Delays + bs.Delays,
		Reorders: as.Reorders + bs.Reorders,
		Failures: as.Failures + bs.Failures,
		Retries:  as.Retries + bs.Retries,
		Stalls:   as.Stalls + bs.Stalls,
	}
	if sum != fs {
		t.Fatalf("fault stats mismatch: partial sum %+v vs full %+v", sum, fs)
	}
}

func TestPartialWorldGuards(t *testing.T) {
	wa, _ := splitWorlds(t, 4, 2)

	if err := wa.Inject(0, 3, 1, "x", 1); err == nil {
		t.Fatal("inject to a remote rank must error")
	}
	if err := wa.Inject(0, 7, 1, "x", 1); err == nil {
		t.Fatal("inject out of range must error")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("Comm(remote rank)", func() { wa.Comm(3) })
	mustPanic("Barrier on partial world", func() { wa.Comm(0).Barrier() })

	if _, err := NewPartialWorld(4, []int{0, 1}, nil); err == nil {
		t.Fatal("nil remote must error")
	}
	if _, err := NewPartialWorld(4, nil, &memRemote{}); err == nil {
		t.Fatal("empty local set must error")
	}
	if _, err := NewPartialWorld(4, []int{0, 0}, &memRemote{}); err == nil {
		t.Fatal("duplicate local rank must error")
	}
	if _, err := NewPartialWorld(4, []int{4}, &memRemote{}); err == nil {
		t.Fatal("out-of-range local rank must error")
	}

	got := wa.Local()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Local() = %v, want [0 1]", got)
	}
}

func TestTransportStats(t *testing.T) {
	full, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	full.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendSized(1, 1, "m", 5)
		} else {
			c.Recv(0, 1)
		}
	})
	ts := full.TransportStats()
	if ts.Frames != 1 || ts.Bytes != 5 || ts.Resends != 0 {
		t.Fatalf("full world transport stats: %+v", ts)
	}

	wa, wb := splitWorlds(t, 4, 2)
	runBoth(wa, wb, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SendSized(1, 1, "local", 3) // stays in-process
			c.SendSized(2, 1, "wire", 7)  // crosses the remote
		case 1:
			c.Recv(0, 1)
		case 2:
			c.Recv(0, 1)
		}
	})
	ta := wa.TransportStats()
	if ta.Frames != 1 || ta.Bytes != 7 {
		t.Fatalf("partial world A transport stats: %+v (want only the cross-process send)", ta)
	}
	if tb := wb.TransportStats(); tb.Frames != 0 || tb.Bytes != 0 {
		t.Fatalf("partial world B transport stats: %+v (sent nothing remote)", tb)
	}
}
