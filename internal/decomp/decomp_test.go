package decomp

import (
	"testing"

	"permcell/internal/space"
)

func cubicGrid(t *testing.T, nc int) space.Grid {
	t.Helper()
	b, err := space.NewCubicBox(float64(nc) * 2.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(b, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkPartition(t *testing.T, d *Decomposition) {
	t.Helper()
	counts := make([]int, d.P)
	for c := 0; c < d.Grid.NumCells(); c++ {
		o := d.OwnerOf(c)
		if o < 0 || o >= d.P {
			t.Fatalf("cell %d owned by out-of-range rank %d", c, o)
		}
		counts[o]++
	}
	want := d.Grid.NumCells() / d.P
	for r, n := range counts {
		if n != want {
			t.Errorf("rank %d owns %d cells, want %d", r, n, want)
		}
	}
}

func TestPlanePartition(t *testing.T) {
	g := cubicGrid(t, 12)
	d, err := NewPlane(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, d)
	// Plane domains touch exactly 2 neighbor PEs.
	for r := 0; r < 4; r++ {
		if nb := d.NeighborRanks(r); len(nb) != 2 {
			t.Errorf("rank %d has %d neighbor PEs, want 2", r, len(nb))
		}
	}
}

func TestPlaneRejectsIndivisible(t *testing.T) {
	g := cubicGrid(t, 10)
	if _, err := NewPlane(g, 3); err == nil {
		t.Error("Nx=10, P=3 accepted")
	}
}

func TestSquarePillarPartition(t *testing.T) {
	g := cubicGrid(t, 12)
	d, err := NewSquarePillar(g, 9) // m = 4
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, d)
	// Pillar domains touch exactly 8 neighbor PEs.
	for r := 0; r < 9; r++ {
		if nb := d.NeighborRanks(r); len(nb) != 8 {
			t.Errorf("rank %d has %d neighbor PEs, want 8", r, len(nb))
		}
	}
	// Each PE's cells form whole columns: all z-cells of a column share owner.
	for col := 0; col < g.NumColumns(); col++ {
		cells := g.CellsInColumn(col, nil)
		for _, c := range cells[1:] {
			if d.OwnerOf(c) != d.OwnerOf(cells[0]) {
				t.Fatalf("column %d split across PEs", col)
			}
		}
	}
}

func TestSquarePillarRejectsBadInputs(t *testing.T) {
	g := cubicGrid(t, 12)
	if _, err := NewSquarePillar(g, 5); err == nil {
		t.Error("non-square P accepted")
	}
	if _, err := NewSquarePillar(g, 25); err == nil {
		t.Error("Nx=12 not divisible by 5 accepted")
	}
}

func TestCubePartition(t *testing.T) {
	g := cubicGrid(t, 12)
	d, err := NewCube(g, 27) // blocks of 4^3
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, d)
	for r := 0; r < 27; r++ {
		if nb := d.NeighborRanks(r); len(nb) != 26 {
			t.Errorf("rank %d has %d neighbor PEs, want 26", r, len(nb))
		}
	}
}

func TestCubeRejectsBadInputs(t *testing.T) {
	g := cubicGrid(t, 12)
	if _, err := NewCube(g, 9); err == nil {
		t.Error("non-cube P accepted")
	}
}

func TestCellsOfMatchesOwner(t *testing.T) {
	g := cubicGrid(t, 6)
	d, err := NewSquarePillar(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < 4; r++ {
		for _, c := range d.CellsOf(r) {
			if d.OwnerOf(c) != r {
				t.Fatalf("CellsOf(%d) returned foreign cell %d", r, c)
			}
			total++
		}
	}
	if total != g.NumCells() {
		t.Errorf("CellsOf covers %d cells, want %d", total, g.NumCells())
	}
}

func TestGhostCellsMatchClosedForm(t *testing.T) {
	// On conforming grids the measured ghost-cell count must equal the
	// closed-form surface analysis.
	const nc = 12
	g := cubicGrid(t, nc)

	plane, _ := NewPlane(g, 4)
	a, err := AnalyzeSurface(Plane, nc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := plane.GhostCells(0); got != a.GhostCells {
		t.Errorf("plane ghosts: measured %d, closed form %d", got, a.GhostCells)
	}

	pillar, _ := NewSquarePillar(g, 9)
	a, err = AnalyzeSurface(SquarePillar, nc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := pillar.GhostCells(0); got != a.GhostCells {
		t.Errorf("pillar ghosts: measured %d, closed form %d", got, a.GhostCells)
	}

	cube, _ := NewCube(g, 27)
	a, err = AnalyzeSurface(Cube, nc, 27)
	if err != nil {
		t.Fatal(err)
	}
	if got := cube.GhostCells(0); got != a.GhostCells {
		t.Errorf("cube ghosts: measured %d, closed form %d", got, a.GhostCells)
	}
}

func TestSurfaceOrderingMidSizeMachines(t *testing.T) {
	// The paper's point (Section 2.2): for mid-size runs the square pillar
	// beats the plane on ghost volume while needing far fewer neighbor PEs
	// than the cube. nc=64 cells per side, P=64 admits all three shapes.
	plane, err := AnalyzeSurface(Plane, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	pillar, err := AnalyzeSurface(SquarePillar, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := AnalyzeSurface(Cube, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pillar.GhostCells >= plane.GhostCells {
		t.Errorf("pillar ghosts %d >= plane ghosts %d", pillar.GhostCells, plane.GhostCells)
	}
	if cube.GhostCells >= pillar.GhostCells {
		t.Errorf("cube ghosts %d >= pillar ghosts %d (cube should win on volume)", cube.GhostCells, pillar.GhostCells)
	}
	if !(plane.NeighborPEs < pillar.NeighborPEs && pillar.NeighborPEs < cube.NeighborPEs) {
		t.Error("neighbor-PE ordering plane < pillar < cube violated")
	}
}

func TestAnalyzeSurfaceErrors(t *testing.T) {
	if _, err := AnalyzeSurface(Plane, 10, 3); err == nil {
		t.Error("plane indivisible accepted")
	}
	if _, err := AnalyzeSurface(SquarePillar, 12, 5); err == nil {
		t.Error("pillar non-square accepted")
	}
	if _, err := AnalyzeSurface(Cube, 12, 5); err == nil {
		t.Error("cube non-cube accepted")
	}
	if _, err := AnalyzeSurface(Shape(42), 12, 4); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestShapeString(t *testing.T) {
	if Plane.String() != "plane" || SquarePillar.String() != "square-pillar" || Cube.String() != "cube" {
		t.Error("shape names wrong")
	}
}
