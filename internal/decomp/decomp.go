// Package decomp implements the three static domain shapes of 3-D domain
// decomposition discussed in Section 2.2 and Fig. 2 of the paper — plane,
// square pillar, and cube — together with the communication-surface
// analysis that motivates the square-pillar choice for mid-size machines.
package decomp

import (
	"fmt"
	"math"

	"permcell/internal/space"
	"permcell/internal/topology"
)

// Shape selects one of the paper's three domain shapes.
type Shape int

// The three domain shapes of Fig. 2.
const (
	Plane Shape = iota
	SquarePillar
	Cube
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Plane:
		return "plane"
	case SquarePillar:
		return "square-pillar"
	case Cube:
		return "cube"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Decomposition is a static cell-to-PE assignment for a given shape.
type Decomposition struct {
	Shape Shape
	Grid  space.Grid
	P     int
	owner []int // cell -> rank
}

// NewPlane slices the grid into P slabs along x; PEs form a virtual ring.
// Grid.Nx must be divisible by P.
func NewPlane(g space.Grid, p int) (*Decomposition, error) {
	if p < 1 || g.Nx%p != 0 {
		return nil, fmt.Errorf("decomp: plane needs Nx (%d) divisible by P (%d)", g.Nx, p)
	}
	t := g.Nx / p
	d := &Decomposition{Shape: Plane, Grid: g, P: p, owner: make([]int, g.NumCells())}
	for c := range d.owner {
		ix, _, _ := g.Coords(c)
		d.owner[c] = ix / t
	}
	return d, nil
}

// NewSquarePillar assigns each PE an m x m block of cell columns, with
// m = C^(1/3)/P^(1/2) (Fig. 7). It requires a cubic grid (Nx == Ny), a
// perfect-square P, and Nx divisible by sqrt(P).
func NewSquarePillar(g space.Grid, p int) (*Decomposition, error) {
	tor, err := topology.NewSquareTorus(p)
	if err != nil {
		return nil, fmt.Errorf("decomp: square pillar: %w", err)
	}
	s := tor.Px
	if g.Nx != g.Ny {
		return nil, fmt.Errorf("decomp: square pillar needs Nx == Ny, got %dx%d", g.Nx, g.Ny)
	}
	if g.Nx%s != 0 {
		return nil, fmt.Errorf("decomp: square pillar needs Nx (%d) divisible by sqrt(P) (%d)", g.Nx, s)
	}
	m := g.Nx / s
	d := &Decomposition{Shape: SquarePillar, Grid: g, P: p, owner: make([]int, g.NumCells())}
	for c := range d.owner {
		ix, iy, _ := g.Coords(c)
		d.owner[c] = tor.Rank(ix/m, iy/m)
	}
	return d, nil
}

// NewCube assigns each PE a cubic block of cells; P must be a perfect cube
// dividing the (cubic) grid evenly.
func NewCube(g space.Grid, p int) (*Decomposition, error) {
	tor, err := topology.NewCubicTorus(p)
	if err != nil {
		return nil, fmt.Errorf("decomp: cube: %w", err)
	}
	s := tor.Px
	if g.Nx != g.Ny || g.Ny != g.Nz {
		return nil, fmt.Errorf("decomp: cube needs a cubic grid, got %dx%dx%d", g.Nx, g.Ny, g.Nz)
	}
	if g.Nx%s != 0 {
		return nil, fmt.Errorf("decomp: cube needs Nx (%d) divisible by cbrt(P) (%d)", g.Nx, s)
	}
	m := g.Nx / s
	d := &Decomposition{Shape: Cube, Grid: g, P: p, owner: make([]int, g.NumCells())}
	for c := range d.owner {
		ix, iy, iz := g.Coords(c)
		d.owner[c] = tor.Rank(ix/m, iy/m, iz/m)
	}
	return d, nil
}

// OwnerOf returns the rank owning cell c.
func (d *Decomposition) OwnerOf(c int) int { return d.owner[c] }

// CellsOf returns all cells owned by rank.
func (d *Decomposition) CellsOf(rank int) []int {
	var out []int
	for c, o := range d.owner {
		if o == rank {
			out = append(out, c)
		}
	}
	return out
}

// GhostCells returns the number of remote cells whose particle data rank
// must import every step (its communication surface).
func (d *Decomposition) GhostCells(rank int) int {
	seen := map[int]bool{}
	for c, o := range d.owner {
		if o != rank {
			continue
		}
		for _, nb := range d.Grid.Neighbors26(c, nil) {
			if d.owner[nb] != rank && !seen[nb] {
				seen[nb] = true
			}
		}
	}
	return len(seen)
}

// NeighborRanks returns the distinct ranks whose cells border rank's
// domain — the PEs rank must exchange messages with.
func (d *Decomposition) NeighborRanks(rank int) []int {
	seen := map[int]bool{rank: true}
	var out []int
	for c, o := range d.owner {
		if o != rank {
			continue
		}
		for _, nb := range d.Grid.Neighbors26(c, nil) {
			if r := d.owner[nb]; !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// SurfaceAnalysis summarizes one shape's communication demands for a grid
// with C cells on P PEs (closed-form, matching GhostCells on conforming
// grids): the ghost-cell count and the neighbor-PE count per PE.
type SurfaceAnalysis struct {
	Shape       Shape
	GhostCells  int
	NeighborPEs int
}

// AnalyzeSurface returns the closed-form communication surface for the
// given shape with a cubic grid of side nc (C = nc^3) on p PEs. Errors
// mirror the constructors' divisibility requirements. The analysis assumes
// each domain spans at least 3 cells in decomposed directions so that
// opposite faces touch different neighbors (no double counting).
func AnalyzeSurface(shape Shape, nc, p int) (SurfaceAnalysis, error) {
	switch shape {
	case Plane:
		if nc%p != 0 {
			return SurfaceAnalysis{}, fmt.Errorf("decomp: nc %% p != 0")
		}
		// Two faces of nc x nc cells; 2 ring neighbors.
		return SurfaceAnalysis{Shape: shape, GhostCells: 2 * nc * nc, NeighborPEs: 2}, nil
	case SquarePillar:
		s := int(math.Round(math.Sqrt(float64(p))))
		if s*s != p || nc%s != 0 {
			return SurfaceAnalysis{}, fmt.Errorf("decomp: p not square or nc %% sqrt(p) != 0")
		}
		m := nc / s
		// Perimeter ring of columns: (m+2)^2 - m^2 = 4m+4 columns of nc cells.
		return SurfaceAnalysis{Shape: shape, GhostCells: (4*m + 4) * nc, NeighborPEs: 8}, nil
	case Cube:
		s := int(math.Round(math.Cbrt(float64(p))))
		if s*s*s != p || nc%s != 0 {
			return SurfaceAnalysis{}, fmt.Errorf("decomp: p not cube or nc %% cbrt(p) != 0")
		}
		m := nc / s
		return SurfaceAnalysis{Shape: shape, GhostCells: (m+2)*(m+2)*(m+2) - m*m*m, NeighborPEs: 26}, nil
	default:
		return SurfaceAnalysis{}, fmt.Errorf("decomp: unknown shape %v", shape)
	}
}
