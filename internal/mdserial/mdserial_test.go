package mdserial

import (
	"math"
	"testing"

	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

func paperConfig(box space.Box) Config {
	return Config{
		Box:          box,
		Pair:         potential.NewPaperLJ(),
		Dt:           units.PaperTimeStep,
		Tref:         units.PaperTref,
		RescaleEvery: units.PaperRescaleInterval,
	}
}

func TestNewValidation(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	sys, _ := workload.LatticeGas(27, 0.3, 0.722, 1)
	if _, err := New(Config{Box: box, Dt: 1e-4}, sys.Set); err == nil {
		t.Error("nil potential accepted")
	}
	if _, err := New(Config{Box: box, Pair: potential.NewPaperLJ(), Dt: 0}, sys.Set); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestCellForcesMatchBruteForce(t *testing.T) {
	sys, err := workload.LatticeGas(216, 0.4, 0.722, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(sys.Box)
	e, err := New(cfg, sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the lattice so forces are nonzero, then compare kernels.
	e.Run(20)
	frcBrute, potBrute := e.ForcesBruteForce()
	if math.Abs(potBrute-e.PotentialEnergy()) > 1e-9*(1+math.Abs(potBrute)) {
		t.Errorf("potential: cell %v vs brute %v", e.PotentialEnergy(), potBrute)
	}
	for i := range frcBrute {
		if frcBrute[i].Dist(e.Set().Frc[i]) > 1e-9*(1+frcBrute[i].Norm()) {
			t.Fatalf("force %d: cell %v vs brute %v", i, e.Set().Frc[i], frcBrute[i])
		}
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	sys, err := workload.LatticeGas(216, 0.256, 0.722, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(sys.Box)
	cfg.RescaleEvery = 0 // pure NVE
	e, err := New(cfg, sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e0 := e.TotalEnergy()
	e.Run(500)
	e1 := e.TotalEnergy()
	if rel := math.Abs(e1-e0) / (1 + math.Abs(e0)); rel > 1e-4 {
		t.Errorf("energy drift %v -> %v (rel %v)", e0, e1, rel)
	}
}

func TestMomentumConservation(t *testing.T) {
	sys, err := workload.LatticeGas(125, 0.256, 0.722, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(sys.Box)
	cfg.RescaleEvery = 0
	e, err := New(cfg, sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	if p := e.Set().Momentum(); p.Norm() > 1e-8 {
		t.Errorf("momentum after 300 steps = %v", p)
	}
}

func TestThermostatHoldsTemperature(t *testing.T) {
	sys, err := workload.LatticeGas(216, 0.256, 0.722, 14)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100) // two rescale intervals
	// Right after a rescale step the temperature is exactly Tref.
	if math.Abs(e.Set().Temperature()-0.722) > 1e-9 {
		t.Errorf("T after rescale = %v", e.Set().Temperature())
	}
}

func TestParticlesStayInBox(t *testing.T) {
	sys, err := workload.LatticeGas(125, 0.3, 1.0, 15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(200)
	l := sys.Box.L
	for i, p := range e.Set().Pos {
		if p.X < 0 || p.X >= l.X || p.Y < 0 || p.Y >= l.Y || p.Z < 0 || p.Z >= l.Z {
			t.Fatalf("particle %d escaped: %v", i, p)
		}
		if !p.IsFinite() || !e.Set().Vel[i].IsFinite() {
			t.Fatalf("particle %d non-finite state", i)
		}
	}
}

func TestCellOccupancySums(t *testing.T) {
	sys, err := workload.LatticeGas(216, 0.256, 0.722, 16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	total := 0
	for _, o := range e.CellOccupancy() {
		total += o
	}
	if total != 216 {
		t.Errorf("occupancy sums to %d, want 216", total)
	}
}

func TestPairCountPositive(t *testing.T) {
	sys, _ := workload.LatticeGas(216, 0.256, 0.722, 17)
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	if e.PairCount() <= 0 {
		t.Errorf("pair count = %d, want > 0", e.PairCount())
	}
}

func TestExternalWellPullsParticles(t *testing.T) {
	sys, err := workload.LatticeGas(125, 0.2, 0.5, 18)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(sys.Box)
	center := sys.Box.L.Scale(0.5)
	cfg.Ext = potential.HarmonicWell{Center: center, K: 0.5, L: sys.Box.L}
	cfg.RescaleEvery = 50
	cfg.Tref = 0.3
	e, err := New(cfg, sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	meanDist := func() float64 {
		var sum float64
		for _, p := range e.Set().Pos {
			sum += math.Sqrt(sys.Box.Dist2(p, center))
		}
		return sum / float64(e.Set().Len())
	}
	before := meanDist()
	e.Run(2000)
	after := meanDist()
	if after >= before {
		t.Errorf("well did not concentrate particles: mean dist %v -> %v", before, after)
	}
}

func TestPressureDiluteGasNearIdeal(t *testing.T) {
	// At very low density the virial correction vanishes: P -> rho*T.
	sys, err := workload.LatticeGas(125, 0.01, 1.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	ideal := float64(e.Set().Len()) / sys.Box.Volume() * e.Set().Temperature()
	if rel := math.Abs(e.Pressure()-ideal) / ideal; rel > 0.05 {
		t.Errorf("dilute pressure %v vs ideal %v (rel %v)", e.Pressure(), ideal, rel)
	}
}

func TestPressureDenseGasBelowIdeal(t *testing.T) {
	// In the attractive supercooled regime the virial is negative, so the
	// pressure sits below the ideal-gas value.
	sys, err := workload.LatticeGas(216, 0.5, 0.722, 22)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(paperConfig(sys.Box), sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	ideal := float64(e.Set().Len()) / sys.Box.Volume() * e.Set().Temperature()
	if e.Pressure() >= ideal {
		t.Errorf("dense supercooled pressure %v not below ideal %v", e.Pressure(), ideal)
	}
}

func TestDeterministicTrajectory(t *testing.T) {
	run := func() vec.V {
		sys, _ := workload.LatticeGas(64, 0.256, 0.722, 19)
		e, _ := New(paperConfig(sys.Box), sys.Set)
		e.Run(50)
		return e.Set().Pos[10]
	}
	if run() != run() {
		t.Error("identical runs diverged")
	}
}

func TestGridOverrideRespected(t *testing.T) {
	sys, _ := workload.LatticeGas(216, 0.256, 0.722, 20)
	g, err := space.NewGridWithDims(sys.Box, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(sys.Box)
	cfg.Grid = g
	e, err := New(cfg, sys.Set)
	if err != nil {
		t.Fatal(err)
	}
	if e.Grid().NumCells() != 8 {
		t.Errorf("grid cells = %d, want 8", e.Grid().NumCells())
	}
	// Forces must still match brute force with the coarser grid.
	e.Run(5)
	frc, _ := e.ForcesBruteForce()
	for i := range frc {
		if frc[i].Dist(e.Set().Frc[i]) > 1e-9*(1+frc[i].Norm()) {
			t.Fatalf("force %d mismatch with coarse grid", i)
		}
	}
}
