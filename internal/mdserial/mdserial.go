// Package mdserial is the serial reference molecular dynamics engine. It
// implements exactly the numerical method of the paper's Section 3.2 —
// cell lists rebuilt every step, each pair within a cell's 26-neighborhood
// evaluated once via the kernel's half stencil with the force applied to
// both particles (Newton's third law), the velocity form of the Verlet
// algorithm, and a velocity-rescaling thermostat applied every
// RescaleEvery steps — without cross-PE parallelism (intra-step force
// sharding is available through Config.Shards). The parallel engine in
// internal/core is validated against this one.
package mdserial

import (
	"fmt"
	"time"

	"permcell/internal/integrator"
	"permcell/internal/kernel"
	"permcell/internal/metrics"
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// Config describes one simulation.
type Config struct {
	Box  space.Box
	Pair potential.Pair
	// Ext is an optional external field; nil means none.
	Ext potential.External
	// Dt is the integration time step.
	Dt float64
	// Tref is the thermostat target reduced temperature; used only when
	// RescaleEvery > 0.
	Tref float64
	// RescaleEvery applies velocity rescaling every this many steps
	// (the paper uses 50). Zero disables the thermostat (pure NVE).
	RescaleEvery int
	// Grid optionally fixes the cell grid. When zero-valued, the finest
	// grid with cell side >= the pair cut-off is used.
	Grid space.Grid
	// Shards is the force-kernel worker count (<= 1 = serial kernel).
	// Results are bit-deterministic per shard count. Engines with
	// Shards > 1 must be Closed to stop the worker pool.
	Shards int
	// Metrics enables the per-step phase timing layer (internal/metrics).
	// Off, the engine carries a nil timer and the hot path pays one
	// pointer test per phase boundary. The serial engine has no comm
	// phases, so only integrate/migrate (re-binning)/force accumulate.
	Metrics bool
	// StartStep sets the initial step counter, used when restoring from a
	// checkpoint. The thermostat cadence is step%RescaleEvery over the
	// absolute counter, so a restore that reset it to zero would rescale at
	// different absolute steps than the uninterrupted run and diverge.
	StartStep int
}

// Engine advances a particle set through time.
type Engine struct {
	cfg  Config
	grid space.Grid
	set  *particle.Set

	cl   *kernel.CellLists // flat cell lists + force kernel scratch
	step int

	tm       *metrics.Timer // nil unless Config.Metrics
	stepWall float64        // wall seconds of the last Step

	potE      float64
	virial    float64
	pairCount int64
}

// New returns an engine owning the given particle set. The set is used in
// place (not copied).
func New(cfg Config, set *particle.Set) (*Engine, error) {
	if cfg.Pair == nil {
		return nil, fmt.Errorf("mdserial: nil pair potential")
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("mdserial: time step must be positive, got %g", cfg.Dt)
	}
	if cfg.StartStep < 0 {
		return nil, fmt.Errorf("mdserial: start step must be >= 0, got %d", cfg.StartStep)
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	g := cfg.Grid
	if g.NumCells() == 0 {
		var err error
		g, err = space.NewGrid(cfg.Box, cfg.Pair.Cutoff())
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{cfg: cfg, grid: g, set: set, step: cfg.StartStep}
	if cfg.Metrics {
		e.tm = &metrics.Timer{}
	}
	e.cl = kernel.NewCellLists(g, cfg.Shards)
	// Serial engine: every cell is hosted, no ghosts.
	all := make([]int, g.NumCells())
	for c := range all {
		all[c] = c
	}
	e.cl.SetHosted(all)
	e.cl.SealGhosts()
	e.rebuildCells()
	e.computeForces()
	return e, nil
}

// Close stops the force-kernel worker pool (a no-op for Shards <= 1). The
// engine must not be stepped after Close.
func (e *Engine) Close() { e.cl.Close() }

// Set returns the engine's particle set.
func (e *Engine) Set() *particle.Set { return e.set }

// Grid returns the engine's cell grid.
func (e *Engine) Grid() space.Grid { return e.grid }

// StepCount returns the number of completed steps.
func (e *Engine) StepCount() int { return e.step }

// PotentialEnergy returns the potential energy at the last force evaluation.
func (e *Engine) PotentialEnergy() float64 { return e.potE }

// TotalEnergy returns kinetic + potential energy.
func (e *Engine) TotalEnergy() float64 { return e.set.KineticEnergy() + e.potE }

// PairCount returns the number of pair distance evaluations performed in
// the last force computation — the deterministic work metric standing in
// for the paper's force-computation wall time.
func (e *Engine) PairCount() int64 { return e.pairCount }

// Virial returns the pair virial W = sum over pairs of r_ij . F_ij from
// the last force evaluation.
func (e *Engine) Virial() float64 { return e.virial }

// Pressure returns the instantaneous reduced pressure from the virial
// theorem, P = (N T + W/3) / V.
func (e *Engine) Pressure() float64 {
	n := e.set.Len()
	if n == 0 {
		return 0
	}
	return (float64(n)*e.set.Temperature() + e.virial/3) / e.cfg.Box.Volume()
}

// CellOccupancy returns the particle count of every cell, the input to the
// concentration analysis of Section 4.
func (e *Engine) CellOccupancy() []int {
	occ := make([]int, e.grid.NumCells())
	for c := range occ {
		occ[c] = e.cl.SlotLen(c) // all cells hosted: slot index == cell index
	}
	return occ
}

// rebuildCells recomputes the cell membership of every particle, as the
// paper does every time step.
func (e *Engine) rebuildCells() {
	e.cl.Bin(e.set.Pos) // cannot fail: every cell is hosted
}

// computeForces evaluates the truncated pair potential over every pair of
// particles in the same or neighboring cells (via the shared flat-cell-list
// kernel), plus the external field.
func (e *Engine) computeForces() {
	s := e.set
	s.ZeroForces()
	e.potE, e.virial, e.pairCount = e.cl.Compute(e.cfg.Pair, s)
	e.potE += kernel.ExternalForces(e.cfg.Ext, s)
}

// Step advances the simulation one velocity-Verlet time step.
func (e *Engine) Step() {
	t0 := time.Now()
	dt := e.cfg.Dt
	ti := e.tm.Start()
	integrator.HalfKick(e.set, dt)
	integrator.Drift(e.set, dt, e.cfg.Box)
	e.tm.Stop(metrics.PhaseIntegrate, ti)
	tr := e.tm.Start()
	e.rebuildCells()
	e.tm.Stop(metrics.PhaseMigrate, tr)
	tf := e.tm.Start()
	e.computeForces()
	e.tm.Stop(metrics.PhaseForce, tf)
	ti = e.tm.Start()
	integrator.HalfKick(e.set, dt)
	e.step++
	if e.cfg.RescaleEvery > 0 && e.step%e.cfg.RescaleEvery == 0 {
		integrator.RescaleToTemperature(e.set, e.cfg.Tref)
	}
	e.tm.Stop(metrics.PhaseIntegrate, ti)
	e.stepWall = time.Since(t0).Seconds()
}

// StepWall returns the wall-clock seconds of the most recent Step.
func (e *Engine) StepWall() float64 { return e.stepWall }

// TakePhaseSample returns the phase sample accumulated since the previous
// call and resets the accumulator. All-zero unless Config.Metrics.
func (e *Engine) TakePhaseSample() metrics.Sample { return e.tm.TakeSample() }

// Run advances the simulation n steps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// ForcesBruteForce recomputes forces and potential energy with a direct
// O(N^2) double loop over all particle pairs (still honoring the cut-off and
// minimum image). It is the oracle the cell-list force kernel is tested
// against; it does not modify engine state and returns the would-be forces
// and energy.
func (e *Engine) ForcesBruteForce() (frc []vec.V, pot float64) {
	s := e.set
	frc = make([]vec.V, s.Len())
	rc2 := e.cfg.Pair.Cutoff() * e.cfg.Pair.Cutoff()
	box := e.cfg.Box
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			d := box.Displacement(s.Pos[i], s.Pos[j])
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			en, f := e.cfg.Pair.EnergyForce(r2)
			pot += en
			fv := d.Scale(f)
			frc[i] = frc[i].Add(fv)
			frc[j] = frc[j].Sub(fv)
		}
	}
	for i, p := range s.Pos {
		en, f := e.cfg.Ext.EnergyForce(p)
		pot += en
		frc[i] = frc[i].Add(f)
	}
	return frc, pot
}
