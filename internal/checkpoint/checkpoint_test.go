package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/vec"
)

func testMeta(step int) *Meta {
	return &Meta{
		Version: FormatVersion, Kind: KindDLB, Step: step,
		M: 3, P: 4, Rho: 0.256,
		DLB: true, Wells: 12, WellK: 1.5, Hysteresis: 0.1,
		Seed: 7, Dt: 0.005, Shards: 2, StatsEvery: 1,
		CommMsgs: 123, CommBytes: 4567,
	}
}

func testFrames(p int) []Frame {
	frames := make([]Frame, p)
	for r := range frames {
		s := &particle.Set{}
		for i := 0; i < 5+r; i++ {
			id := int64(r*100 + i)
			s.Add(id, vec.New(float64(i), float64(r), 0.5), vec.New(0.1*float64(i), -0.2, 0))
		}
		CaptureFrame(&frames[r], r, s, []int{r, r + p})
	}
	return frames
}

func TestRoundTrip(t *testing.T) {
	meta := testMeta(42)
	frames := testFrames(4)
	var buf bytes.Buffer
	if err := Encode(&buf, meta, frames); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	gotMeta, gotFrames, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Errorf("meta mismatch:\n got %+v\nwant %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(gotFrames, frames) {
		t.Errorf("frames mismatch")
	}
}

func TestFrameSetOfPreservesOrder(t *testing.T) {
	s := &particle.Set{}
	// Deliberately non-sorted IDs: live order must survive the round trip.
	for _, id := range []int64{9, 3, 7, 1} {
		s.Add(id, vec.New(float64(id), 0, 0), vec.New(0, float64(id), 0))
	}
	var fr Frame
	CaptureFrame(&fr, 0, s, nil)
	got, err := fr.SetOf()
	if err != nil {
		t.Fatalf("SetOf: %v", err)
	}
	if !reflect.DeepEqual(got.ID, s.ID) {
		t.Errorf("ID order changed: got %v want %v", got.ID, s.ID)
	}
	if !reflect.DeepEqual(got.Pos, s.Pos) || !reflect.DeepEqual(got.Vel, s.Vel) {
		t.Errorf("pos/vel mismatch after SetOf")
	}
}

func TestTruncationIsCleanError(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testMeta(10), testFrames(2)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic, never succeed.
	for _, n := range []int{0, 4, 8, 15, 16, 20, len(full) / 2, len(full) - 1} {
		if n >= len(full) {
			continue
		}
		if _, _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("Decode of %d/%d byte prefix succeeded; want error", n, len(full))
		}
	}
}

func TestBitFlipFailsCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testMeta(10), testFrames(2)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()
	// Flip one bit in every byte position past the fixed header; each must
	// be detected (CRC, framing, or gob error) — never silently accepted.
	for i := 16; i < len(full); i += 7 {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x10
		if _, _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testMeta(1), nil); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()

	mut := append([]byte(nil), full...)
	mut[0] = 'X'
	if _, _, err := Decode(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v", err)
	}

	mut = append([]byte(nil), full...)
	mut[8] = 99 // version field
	if _, _, err := Decode(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: got %v", err)
	}

	// Trailing garbage after a valid stream must be rejected.
	mut = append(append([]byte(nil), full...), 0xAB)
	if _, _, err := Decode(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data: got %v", err)
	}
}

func TestSaveRotatesAndLoadDirFallsBack(t *testing.T) {
	dir := t.TempDir()
	frames := testFrames(2)

	if _, err := Save(dir, testMeta(100), frames); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, PreviousName)); !os.IsNotExist(err) {
		t.Fatalf("previous exists after first save: %v", err)
	}
	if _, err := Save(dir, testMeta(200), frames); err != nil {
		t.Fatalf("Save 2: %v", err)
	}

	meta, _, path, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if meta.Step != 200 || filepath.Base(path) != LatestName {
		t.Fatalf("LoadDir picked step %d from %s; want 200 from latest", meta.Step, path)
	}
	pm, _, err := Load(filepath.Join(dir, PreviousName))
	if err != nil {
		t.Fatalf("Load previous: %v", err)
	}
	if pm.Step != 100 {
		t.Fatalf("previous holds step %d; want 100", pm.Step)
	}

	// Corrupt latest: LoadDir must fall back to previous.
	latest := filepath.Join(dir, LatestName)
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(latest, data, 0o666); err != nil {
		t.Fatal(err)
	}
	meta, _, path, err = LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir after corruption: %v", err)
	}
	if meta.Step != 100 || filepath.Base(path) != PreviousName {
		t.Fatalf("fallback picked step %d from %s; want 100 from previous", meta.Step, path)
	}

	// Truncate previous too: now LoadDir must fail with both causes.
	if err := os.Truncate(filepath.Join(dir, PreviousName), 10); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir succeeded with both files corrupt")
	}
}

func TestEngineStateValidate(t *testing.T) {
	st := &EngineState{Step: 5, Frames: testFrames(3)}
	if err := st.Validate(3); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if err := st.Validate(4); err == nil {
		t.Error("wrong rank count accepted")
	}
	bad := &EngineState{Step: -1, Frames: testFrames(3)}
	if err := bad.Validate(3); err == nil {
		t.Error("negative step accepted")
	}
	swapped := &EngineState{Step: 5, Frames: testFrames(3)}
	swapped.Frames[0].Rank = 2
	if err := swapped.Validate(3); err == nil {
		t.Error("mis-ranked frame accepted")
	}
	ragged := &EngineState{Step: 5, Frames: testFrames(3)}
	ragged.Frames[1].Vel = ragged.Frames[1].Vel[:1]
	if err := ragged.Validate(3); err == nil {
		t.Error("ragged frame accepted")
	}
}

// TestConcurrentSavesSameDir drives many simultaneous Saves into one
// directory. Each writer lands in its own temporary file (a fixed tmp name
// would make writers truncate each other mid-stream), so whatever ends up
// as latest.ckpt must always be a complete, loadable checkpoint.
func TestConcurrentSavesSameDir(t *testing.T) {
	dir := t.TempDir()
	frames := testFrames(4)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			var err error
			for i := 0; i < 10 && err == nil; i++ {
				_, err = Save(dir, testMeta(w*100+i), frames)
			}
			done <- err
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Save: %v", err)
		}
	}
	if _, _, err := Load(filepath.Join(dir, LatestName)); err != nil {
		t.Fatalf("latest checkpoint unreadable after concurrent saves: %v", err)
	}
	// No temporary files may survive.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temporary file %s", e.Name())
		}
	}
}

// TestWriteAtomic pins the tmp+rename contract: the destination either
// keeps its old content (writer failed) or atomically becomes the new
// content, and failed writers leave no temporary files behind.
func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("content = %q", b)
	}

	sentinel := errors.New("writer failed")
	if err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("failed write clobbered the destination: %q", b)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.txt" {
		t.Fatalf("directory not clean after failed write: %v", ents)
	}

	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatalf("WriteAtomic overwrite: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content after overwrite = %q", b)
	}
}
