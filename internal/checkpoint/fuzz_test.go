package checkpoint

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"permcell/internal/vec"
)

// FuzzCheckpointDecode drives Decode with arbitrary bytes: it must never
// panic and never over-allocate, and anything it accepts must be
// re-encodable to a stream that decodes to the same shape (the parser is a
// faithful inverse of the writer on its accepted language). The corpus
// seeds are the deterministic corruption tests' cases: valid streams of
// 0/1/2 frames, truncations, bit flips, bad magic and a future version.
func FuzzCheckpointDecode(f *testing.F) {
	for _, frames := range [][]Frame{nil, testFrames(1), testFrames(2)} {
		var buf bytes.Buffer
		if err := Encode(&buf, testMeta(7), frames); err != nil {
			f.Fatalf("Encode: %v", err)
		}
		full := buf.Bytes()
		f.Add(append([]byte(nil), full...))
		for _, n := range []int{0, 4, 8, 15, 16, len(full) / 2, len(full) - 1} {
			if n < len(full) {
				f.Add(append([]byte(nil), full[:n]...))
			}
		}
		for _, i := range []int{0, 8, 12, 16, 20, len(full) - 1} {
			mut := append([]byte(nil), full...)
			mut[i] ^= 0x10
			f.Add(mut)
		}
		f.Add(append(append([]byte(nil), full...), 0xAB))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, frames, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the decoded state must round-trip.
		var buf bytes.Buffer
		if err := Encode(&buf, meta, frames); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		meta2, frames2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded input: %v", err)
		}
		if meta2.Step != meta.Step || meta2.Kind != meta.Kind || len(frames2) != len(frames) {
			t.Fatalf("round trip changed shape: step %d->%d kind %q->%q frames %d->%d",
				meta.Step, meta2.Step, meta.Kind, meta2.Kind, len(frames), len(frames2))
		}
	})
}

func TestCheckFinite(t *testing.T) {
	frames := testFrames(2)
	if err := CheckFinite(frames); err != nil {
		t.Fatalf("clean frames rejected: %v", err)
	}
	bad := testFrames(2)
	bad[1].Vel[2] = vec.New(0, math.NaN(), 0)
	err := CheckFinite(bad)
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN velocity not rejected: %v", err)
	}
	bad = testFrames(1)
	bad[0].Pos[0] = vec.New(math.Inf(1), 0, 0)
	if CheckFinite(bad) == nil {
		t.Fatal("Inf position not rejected")
	}
	ragged := testFrames(1)
	ragged[0].Vel = ragged[0].Vel[:1]
	if CheckFinite(ragged) == nil {
		t.Fatal("ragged frame not rejected")
	}
}

// TestHugeLengthFieldDoesNotOverallocate corrupts a section length into the
// multi-chunk range of readPayload on a short file: the decode must fail on
// truncation without committing the full claimed allocation.
func TestHugeLengthFieldDoesNotOverallocate(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testMeta(1), testFrames(1)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()
	// Meta section length field sits right after magic(8)+header(8).
	full[16], full[17], full[18], full[19] = 0xFF, 0xFF, 0xFF, 0x1F // ~512 MiB
	if _, _, err := Decode(bytes.NewReader(full)); err == nil {
		t.Fatal("huge-length decode succeeded")
	}
}
