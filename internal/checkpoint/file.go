package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File layout:
//
//	magic (8 bytes) | version uint32 | frameCount uint32 |
//	section(Meta) | section(Frame) * frameCount
//
// where each section is
//
//	length uint32 | crc32(payload) uint32 | payload (gob)
//
// All integers are little-endian. Truncation surfaces as an unexpected-EOF
// error; any bit flip inside a payload fails that section's CRC; a flipped
// length either fails the CRC of the misframed payload or runs off the end
// of the file. Loading never panics on hostile input.

// FormatVersion is the current frame-format version. The policy is strictly
// additive within a version: new Meta fields decode as zero from older
// files. A breaking layout change bumps the version; Load rejects versions
// it does not know rather than misreading them.
const FormatVersion = 1

var magic = [8]byte{'P', 'C', 'C', 'K', 'P', 'T', 0, '\n'}

// Default file names inside a checkpoint directory. Save rotates the pair:
// the old latest becomes previous, so one corrupted or half-written file
// never strands the run. Temporary files are uniquely named per Save call
// (os.CreateTemp), never a fixed name: two engines checkpointing into the
// same directory from one process must not tear each other's in-flight
// writes. (Sharing a directory still interleaves the latest/previous
// rotation itself — give concurrent runs separate directories, as
// internal/serve does — but a fixed tmp name corrupted the files
// themselves, not just the rotation.)
const (
	LatestName   = "latest.ckpt"
	PreviousName = "previous.ckpt"
	tmpPattern   = "checkpoint-*.tmp"
)

// maxSection bounds a single section to guard length fields corrupted into
// absurd allocations (1 GiB is far above any realistic shard).
const maxSection = 1 << 30

func writeSection(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encoding section: %w", err)
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(buf.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readSection(r io.Reader, v any) error {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("checkpoint: reading section header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxSection {
		return fmt.Errorf("checkpoint: section length %d exceeds limit (corrupt header?)", n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return fmt.Errorf("checkpoint: reading section payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("checkpoint: section CRC mismatch (got %08x, want %08x): file is corrupt", got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decoding section: %w", err)
	}
	return nil
}

// readPayload reads exactly n bytes in bounded chunks, growing as data
// actually arrives. A corrupt length field on a truncated file thus fails
// with at most one chunk allocated, instead of committing up to maxSection
// bytes up front on the attacker-controlled (or fuzzer-controlled) length.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		c := min(n-len(buf), chunk)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[len(buf)-c:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Encode writes a complete checkpoint stream.
func Encode(w io.Writer, meta *Meta, frames []Frame) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(meta.Version))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(frames)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := writeSection(bw, meta); err != nil {
		return err
	}
	for i := range frames {
		if err := writeSection(bw, &frames[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a checkpoint stream written by Encode, verifying the magic,
// version and every section CRC.
func Decode(r io.Reader) (*Meta, []Frame, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, nil, fmt.Errorf("checkpoint: bad magic %q: not a checkpoint file", m[:])
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	version := int(binary.LittleEndian.Uint32(hdr[0:4]))
	count := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if version < 1 || version > FormatVersion {
		return nil, nil, fmt.Errorf("checkpoint: unsupported format version %d (this build reads <= %d)", version, FormatVersion)
	}
	if count < 0 || count > 1<<20 {
		return nil, nil, fmt.Errorf("checkpoint: implausible frame count %d (corrupt header?)", count)
	}
	meta := &Meta{}
	if err := readSection(br, meta); err != nil {
		return nil, nil, err
	}
	if meta.Version != version {
		return nil, nil, fmt.Errorf("checkpoint: header version %d disagrees with meta version %d", version, meta.Version)
	}
	frames := make([]Frame, count)
	for i := range frames {
		if err := readSection(br, &frames[i]); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: frame %d: %w", i, err)
		}
	}
	// Trailing bytes mean the file was not produced by Encode (or was
	// spliced); reject rather than silently ignore.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("checkpoint: trailing data after %d frames", count)
	}
	return meta, frames, nil
}

// Save writes one checkpoint into dir atomically and rotates the retained
// pair: the stream lands in a temporary file first, the existing latest (if
// any) is renamed to previous, then the temporary file is renamed to
// latest. A crash at any point leaves at least one complete, loadable file.
// It returns the path of the new latest file.
func Save(dir string, meta *Meta, frames []Frame) (string, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	m := *meta
	m.Version = FormatVersion
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	err = Encode(f, &m, frames)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	latest := filepath.Join(dir, LatestName)
	if _, serr := os.Stat(latest); serr == nil {
		// A concurrent Save into the same directory may rotate latest away
		// between the Stat and the Rename; that writer's rotation preserved
		// a complete file as previous, so a vanished source is not an error.
		if err := os.Rename(latest, filepath.Join(dir, PreviousName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			os.Remove(tmp)
			return "", fmt.Errorf("checkpoint: rotating previous: %w", err)
		}
	}
	if err := os.Rename(tmp, latest); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	return latest, nil
}

// WriteAtomic writes an arbitrary artifact with the checkpoint idiom: the
// payload lands in a uniquely named temporary file beside the target and is
// renamed into place only after a successful write and close. A reader (a
// Prometheus scrape of an exit snapshot, a plot script tailing results)
// never observes a torn or partially written file, and a crash mid-write
// leaves the previous version intact. The drivers use it for every
// exit-path artifact write.
func WriteAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads and verifies one checkpoint file.
func Load(path string) (*Meta, []Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// LoadDir loads the newest loadable checkpoint in dir: latest.ckpt first,
// falling back to previous.ckpt when latest is missing or corrupt (the
// retained-pair policy's whole point). The returned path says which file
// was used; the error reports both failures when neither loads.
func LoadDir(dir string) (*Meta, []Frame, string, error) {
	latest := filepath.Join(dir, LatestName)
	meta, frames, lerr := Load(latest)
	if lerr == nil {
		return meta, frames, latest, nil
	}
	prev := filepath.Join(dir, PreviousName)
	meta, frames, perr := Load(prev)
	if perr == nil {
		return meta, frames, prev, nil
	}
	return nil, nil, "", fmt.Errorf("checkpoint: no loadable checkpoint in %s: latest: %v; previous: %v", dir, lerr, perr)
}
