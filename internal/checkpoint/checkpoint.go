// Package checkpoint is the distributed checkpoint/restart layer shared by
// all three engines (internal/core, internal/corestatic, internal/mdserial
// via the facade). A checkpoint is one file holding a Meta section — the
// run's identity: engine kind, paper coordinates, physics options, step
// counter, cumulative communication counters — followed by one Frame per
// PE: that PE's particle arrays *in their live in-memory order* plus the
// columns it currently hosts. Preserving the per-PE array order is what
// makes a restored run bit-identical to the uninterrupted one: cell-list
// binning and force accumulation follow array order, so a reordered restore
// would change floating-point summation order.
//
// The file format is versioned and CRC-checked per section (see file.go),
// written atomically (tmp + rename) with a retained latest/previous pair,
// so a crash mid-write or a corrupted latest file never loses the run: the
// previous checkpoint still loads.
package checkpoint

import (
	"fmt"

	"permcell/internal/particle"
	"permcell/internal/vec"
)

// Engine kinds recorded in Meta.Kind.
const (
	KindDLB    = "dlb"    // internal/core: DDM / DLB-DDM parallel engine
	KindStatic = "static" // internal/corestatic: static-decomposition engine
	KindSerial = "serial" // internal/mdserial: serial reference engine
)

// Meta is the checkpoint header: everything needed to rebuild the engine
// configuration exactly (the run identity) plus the counters that carry
// across a restart. New fields may be appended in later versions; gob
// decodes older frames with the new fields zero-valued.
type Meta struct {
	// Version is the frame-format version (see FormatVersion).
	Version int
	// Kind is the engine kind (KindDLB, KindStatic, KindSerial).
	Kind string
	// Step is the absolute time step the snapshot was taken at.
	Step int

	// Constructor coordinates. KindDLB uses M/P/Rho (grid side m*sqrt(P));
	// KindStatic uses Shape/NC/P/Rho; KindSerial uses NC/Rho.
	M, P  int
	NC    int
	Shape int
	Rho   float64

	// Physics options — part of the run identity: restoring with different
	// values would break bit-identical resume, so they travel in the file.
	DLB        bool
	Wells      int
	WellK      float64
	Hysteresis float64
	Seed       uint64
	Dt         float64
	Shards     int
	StatsEvery int
	// Balancer is the encoded load-balancing strategy (balance.Encode):
	// "permcell(...)", "sfc(...)", "diffusive(...)", or "" in checkpoints
	// predating the pluggable-balancer format, where the DLB flag alone
	// identifies the permanent-cell scheme. Restore refuses to resume a
	// checkpoint under a different balancer than it was written with.
	Balancer string

	// Cumulative communication counters at snapshot time, so a resumed
	// run's totals continue from the interrupted run's.
	CommMsgs, CommBytes int64

	// RNG is the state of any auxiliary generator stream that must resume
	// exactly (captured with rng.Source.State; nil when the engine carries
	// no live generator, as the current deterministic thermostats do not).
	RNG []uint64
}

// Frame is one PE's shard of the distributed state.
type Frame struct {
	// Rank is the owning PE (0 for the serial engine).
	Rank int
	// ID/Pos/Vel are the particle arrays in the PE's live order. Forces are
	// not stored: every engine recomputes them from positions at restore,
	// exactly as it does at step 0.
	ID  []int64
	Pos []vec.V
	Vel []vec.V
	// Cols lists the columns this PE currently hosts (DLB engine only; nil
	// for the static and serial engines, whose ownership is implied by the
	// decomposition).
	Cols []int
}

// SetOf rebuilds the frame's particle set, preserving array order.
func (f *Frame) SetOf() (*particle.Set, error) {
	if len(f.ID) != len(f.Pos) || len(f.Pos) != len(f.Vel) {
		return nil, fmt.Errorf("checkpoint: rank %d frame has ragged arrays id=%d pos=%d vel=%d",
			f.Rank, len(f.ID), len(f.Pos), len(f.Vel))
	}
	s := &particle.Set{}
	for i := range f.ID {
		s.Add(f.ID[i], f.Pos[i], f.Vel[i])
	}
	return s, nil
}

// CaptureFrame records a particle set into fr (fresh slices, live order).
func CaptureFrame(fr *Frame, rank int, s *particle.Set, cols []int) {
	fr.Rank = rank
	fr.ID = append([]int64(nil), s.ID...)
	fr.Pos = append([]vec.V(nil), s.Pos...)
	fr.Vel = append([]vec.V(nil), s.Vel...)
	fr.Cols = append([]int(nil), cols...)
}

// CheckFinite verifies every particle in every frame has finite position
// and velocity. The supervisor runs it on a loaded checkpoint before
// restoring: a checkpoint that captured an already-corrupt state (e.g. a
// NaN that slipped in between guard passes) must be rejected so the
// rollback falls through to the previous file instead of replaying the
// corruption.
func CheckFinite(frames []Frame) error {
	for r := range frames {
		f := &frames[r]
		if len(f.ID) != len(f.Pos) || len(f.Pos) != len(f.Vel) {
			return fmt.Errorf("checkpoint: rank %d frame has ragged arrays id=%d pos=%d vel=%d",
				f.Rank, len(f.ID), len(f.Pos), len(f.Vel))
		}
		for i := range f.Pos {
			if !f.Pos[i].IsFinite() || !f.Vel[i].IsFinite() {
				return fmt.Errorf("checkpoint: rank %d particle %d has non-finite state (pos=%v vel=%v)",
					f.Rank, f.ID[i], f.Pos[i], f.Vel[i])
			}
		}
	}
	return nil
}

// EngineState is the assembled distributed snapshot an engine produces
// (Engine.Snapshot) and consumes (Config.Restore): the step counter, one
// frame per rank, and the cumulative communication counters.
type EngineState struct {
	Step                int
	Frames              []Frame
	CommMsgs, CommBytes int64
}

// Validate checks the state's structural invariants: one frame per rank in
// rank order, rectangular particle arrays, and a non-negative step.
func (st *EngineState) Validate(p int) error {
	if st.Step < 0 {
		return fmt.Errorf("checkpoint: negative step %d", st.Step)
	}
	if len(st.Frames) != p {
		return fmt.Errorf("checkpoint: %d frames for %d ranks", len(st.Frames), p)
	}
	for r := range st.Frames {
		f := &st.Frames[r]
		if f.Rank != r {
			return fmt.Errorf("checkpoint: frame %d claims rank %d", r, f.Rank)
		}
		if len(f.ID) != len(f.Pos) || len(f.Pos) != len(f.Vel) {
			return fmt.Errorf("checkpoint: rank %d frame has ragged arrays id=%d pos=%d vel=%d",
				r, len(f.ID), len(f.Pos), len(f.Vel))
		}
	}
	return nil
}
