package units

import (
	"math"
	"testing"
)

func TestTemperatureRoundTrip(t *testing.T) {
	for _, tr := range []float64{0.1, 0.722, 1, 2.5} {
		k := TemperatureToKelvin(tr)
		back := TemperatureFromKelvin(k)
		if math.Abs(back-tr) > 1e-12 {
			t.Errorf("round trip %v -> %v -> %v", tr, k, back)
		}
	}
}

func TestPaperTemperatureIsSupercooled(t *testing.T) {
	// Tref = 0.722 must be below Argon's boiling point (~87.3 K).
	k := TemperatureToKelvin(PaperTref)
	if k >= 87.3 {
		t.Errorf("Tref in Kelvin = %v, expected below Argon boiling point", k)
	}
	if k < 80 {
		t.Errorf("Tref in Kelvin = %v, implausibly low for 0.722*119.8", k)
	}
}

func TestArgonTimeUnit(t *testing.T) {
	// The Argon reduced time unit is about 2.15 ps.
	tu := ArgonTimeUnitSeconds()
	if tu < 2.0e-12 || tu > 2.3e-12 {
		t.Errorf("Argon time unit = %v s, want ~2.15e-12", tu)
	}
}

func TestEpsilonConsistency(t *testing.T) {
	// ArgonEpsilonJoules must equal ArgonEpsilonKelvin * k_B.
	want := ArgonEpsilonKelvin * BoltzmannJPerK
	if math.Abs(ArgonEpsilonJoules-want)/want > 1e-4 {
		t.Errorf("epsilon = %v J, want %v J", ArgonEpsilonJoules, want)
	}
}

func TestDensityConversionPositive(t *testing.T) {
	d := DensityToPerM3(PaperDensity)
	// Liquid argon is ~2.1e28 atoms/m^3; rho*=0.256 is a gas-like fraction
	// of that. Sanity range check.
	if d < 1e27 || d > 1e28 {
		t.Errorf("density = %v per m^3, out of sanity range", d)
	}
}

func TestLengthAndEnergyScale(t *testing.T) {
	if LengthToMeters(2) != 2*ArgonSigmaMeters {
		t.Error("LengthToMeters wrong scale")
	}
	if EnergyToJoules(3) != 3*ArgonEpsilonJoules {
		t.Error("EnergyToJoules wrong scale")
	}
}

func TestPaperConstants(t *testing.T) {
	if PaperCutoff < 2.5 || PaperCutoff > 3.5 {
		t.Error("cutoff outside the 2.5..3.5 range the paper quotes")
	}
	if PaperRescaleInterval != 50 {
		t.Error("rescale interval must be 50 steps per the paper")
	}
}
