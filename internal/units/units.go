// Package units defines the reduced Lennard-Jones unit system used by the
// simulations and conversions to SI for the Argon parameterization quoted in
// the paper (Heermann, "Computer Simulation Methods in Theoretical Physics").
//
// In reduced units: length in sigma, energy in epsilon, mass in particle
// mass, k_B = 1. Temperature is in epsilon/k_B, time in
// sigma*sqrt(m/epsilon), density in sigma^-3.
package units

import "math"

// Argon Lennard-Jones parameters (the substance used in the paper's runs).
const (
	// ArgonSigmaMeters is the LJ length parameter sigma for Argon.
	ArgonSigmaMeters = 3.405e-10
	// ArgonEpsilonJoules is the LJ well depth epsilon for Argon.
	ArgonEpsilonJoules = 1.654017502e-21 // 119.8 K * k_B
	// ArgonEpsilonKelvin is epsilon/k_B for Argon.
	ArgonEpsilonKelvin = 119.8
	// ArgonMassKg is the mass of one Argon atom.
	ArgonMassKg = 6.633521e-26
	// BoltzmannJPerK is the Boltzmann constant.
	BoltzmannJPerK = 1.380649e-23
)

// Paper run conditions (Section 3.2).
const (
	// PaperTref is the reduced reference temperature (below Argon's boiling
	// point, i.e. a supercooled gas).
	PaperTref = 0.722
	// PaperDensity is the headline reduced density of the Fig. 5/6 runs.
	PaperDensity = 0.256
	// PaperCutoff is the reduced cut-off distance used for the LJ potential.
	PaperCutoff = 2.5
	// PaperTimeStep is the reduced integration time step (the paper states
	// dt = 10^-4 in its time-step description).
	PaperTimeStep = 1e-4
	// PaperRescaleInterval is how often (in steps) the temperature is scaled
	// back to Tref.
	PaperRescaleInterval = 50
)

// ArgonTimeUnitSeconds returns the reduced time unit sigma*sqrt(m/epsilon)
// for Argon in seconds (about 2.15 ps).
func ArgonTimeUnitSeconds() float64 {
	return ArgonSigmaMeters * math.Sqrt(ArgonMassKg/ArgonEpsilonJoules)
}

// TemperatureToKelvin converts a reduced temperature to Kelvin for Argon.
func TemperatureToKelvin(tReduced float64) float64 {
	return tReduced * ArgonEpsilonKelvin
}

// TemperatureFromKelvin converts Kelvin to reduced temperature for Argon.
func TemperatureFromKelvin(tKelvin float64) float64 {
	return tKelvin / ArgonEpsilonKelvin
}

// LengthToMeters converts a reduced length to meters for Argon.
func LengthToMeters(lReduced float64) float64 {
	return lReduced * ArgonSigmaMeters
}

// DensityToPerM3 converts a reduced density (sigma^-3) to particles per
// cubic meter for Argon.
func DensityToPerM3(rhoReduced float64) float64 {
	s := ArgonSigmaMeters
	return rhoReduced / (s * s * s)
}

// EnergyToJoules converts a reduced energy to Joules for Argon.
func EnergyToJoules(eReduced float64) float64 {
	return eReduced * ArgonEpsilonJoules
}
