package obs

import (
	"math"
	"sort"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
)

func TestNewRDFValidation(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	if _, err := NewRDF(box, 0, 10); err == nil {
		t.Error("rmax=0 accepted")
	}
	if _, err := NewRDF(box, 2, 0); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := NewRDF(box, 6, 10); err == nil {
		t.Error("rmax beyond half box accepted")
	}
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	box, _ := space.NewCubicBox(12)
	r, err := NewRDF(box, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for conf := 0; conf < 20; conf++ {
		s := &particle.Set{}
		for i := 0; i < 400; i++ {
			s.Add(int64(i), src.InBox(box.L), vec.Zero)
		}
		r.Accumulate(s)
	}
	rs, g := r.Values()
	// Skip the first bins (poor statistics in tiny shells).
	for b := 3; b < len(g); b++ {
		if math.Abs(g[b]-1) > 0.15 {
			t.Errorf("ideal gas g(%.2f) = %v, want ~1", rs[b], g[b])
		}
	}
}

func TestRDFPairPeak(t *testing.T) {
	// Two particles at fixed separation 1.5 -> a single sharp peak there.
	box, _ := space.NewCubicBox(10)
	r, err := NewRDF(box, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	s := &particle.Set{}
	s.Add(0, vec.New(1, 1, 1), vec.Zero)
	s.Add(1, vec.New(2.5, 1, 1), vec.Zero)
	r.Accumulate(s)
	rs, g := r.Values()
	peak := 0
	for b := range g {
		if g[b] > g[peak] {
			peak = b
		}
	}
	if math.Abs(rs[peak]-1.5) > 0.1 {
		t.Errorf("peak at r=%v, want 1.5", rs[peak])
	}
}

func TestRDFEmpty(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	r, _ := NewRDF(box, 4, 10)
	_, g := r.Values()
	for _, v := range g {
		if v != 0 {
			t.Error("unaccumulated RDF nonzero")
		}
	}
}

func TestClusters(t *testing.T) {
	box, _ := space.NewCubicBox(20)
	s := &particle.Set{}
	// Cluster A: 3 particles chained at distance 1.
	s.Add(0, vec.New(1, 1, 1), vec.Zero)
	s.Add(1, vec.New(2, 1, 1), vec.Zero)
	s.Add(2, vec.New(3, 1, 1), vec.Zero)
	// Cluster B: 2 particles, linked across the periodic boundary.
	s.Add(3, vec.New(19.8, 10, 10), vec.Zero)
	s.Add(4, vec.New(0.2, 10, 10), vec.Zero)
	// Singleton.
	s.Add(5, vec.New(10, 15, 5), vec.Zero)

	sizes := Clusters(s, box, 1.2)
	sort.Ints(sizes)
	want := []int{1, 2, 3}
	if len(sizes) != 3 || sizes[0] != want[0] || sizes[1] != want[1] || sizes[2] != want[2] {
		t.Errorf("cluster sizes = %v, want %v", sizes, want)
	}
}

func TestClustersAllLinked(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	s := &particle.Set{}
	for i := 0; i < 5; i++ {
		s.Add(int64(i), vec.New(float64(i)*0.5, 1, 1), vec.Zero)
	}
	sizes := Clusters(s, box, 0.7)
	if len(sizes) != 1 || sizes[0] != 5 {
		t.Errorf("sizes = %v, want [5]", sizes)
	}
}

func TestMSDStationary(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	s := &particle.Set{}
	s.Add(0, vec.New(1, 2, 3), vec.Zero)
	m := NewMSD(s, box)
	v, err := m.Update(s)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("stationary MSD = %v", v)
	}
}

func TestMSDUnwrapsPeriodicCrossing(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	s := &particle.Set{}
	s.Add(0, vec.New(9.9, 5, 5), vec.Zero)
	m := NewMSD(s, box)
	// Move +0.2 across the boundary: wrapped position 0.1.
	s.Pos[0] = vec.New(0.1, 5, 5)
	v, err := m.Update(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.04) > 1e-12 {
		t.Errorf("MSD across boundary = %v, want 0.04", v)
	}
}

func TestMSDCountChange(t *testing.T) {
	box, _ := space.NewCubicBox(10)
	s := &particle.Set{}
	s.Add(0, vec.New(1, 1, 1), vec.Zero)
	m := NewMSD(s, box)
	s.Add(1, vec.New(2, 2, 2), vec.Zero)
	if _, err := m.Update(s); err == nil {
		t.Error("count change not detected")
	}
}
