// Package obs computes standard MD observables from particle
// configurations: the radial distribution function g(r), cluster analysis
// via cut-off linkage (droplet census for condensing runs), and mean square
// displacement. These are not part of the paper's evaluation but are the
// observables any adopter of the library needs to validate physics.
package obs

import (
	"fmt"
	"math"

	"permcell/internal/particle"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// RDF is a radial distribution function accumulated over one or more
// configurations.
type RDF struct {
	RMax  float64
	Bins  []float64 // raw pair counts per bin
	width float64
	nConf int
	nPart int
	box   space.Box
}

// NewRDF returns an accumulator with the given bin count up to rmax.
func NewRDF(box space.Box, rmax float64, bins int) (*RDF, error) {
	if rmax <= 0 || bins < 1 {
		return nil, fmt.Errorf("obs: need rmax > 0 and bins >= 1")
	}
	half := math.Min(box.L.X, math.Min(box.L.Y, box.L.Z)) / 2
	if rmax > half {
		return nil, fmt.Errorf("obs: rmax %g exceeds half the box (%g)", rmax, half)
	}
	return &RDF{RMax: rmax, Bins: make([]float64, bins), width: rmax / float64(bins), box: box}, nil
}

// Accumulate adds one configuration (O(N^2); intended for analysis, not
// inner loops).
func (r *RDF) Accumulate(s *particle.Set) {
	n := s.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Sqrt(r.box.Dist2(s.Pos[i], s.Pos[j]))
			if d >= r.RMax {
				continue
			}
			r.Bins[int(d/r.width)] += 2 // each pair counts for both particles
		}
	}
	r.nConf++
	r.nPart = n
}

// Values returns bin centers and the normalized g(r).
func (r *RDF) Values() (rs, g []float64) {
	rs = make([]float64, len(r.Bins))
	g = make([]float64, len(r.Bins))
	if r.nConf == 0 || r.nPart == 0 {
		return rs, g
	}
	rho := float64(r.nPart) / r.box.Volume()
	for b := range r.Bins {
		rLo := float64(b) * r.width
		rHi := rLo + r.width
		shell := 4 * math.Pi / 3 * (rHi*rHi*rHi - rLo*rLo*rLo)
		ideal := rho * shell * float64(r.nPart) * float64(r.nConf)
		rs[b] = rLo + r.width/2
		if ideal > 0 {
			g[b] = r.Bins[b] / ideal
		}
	}
	return rs, g
}

// Clusters returns the sizes of particle clusters under cut-off linkage:
// two particles belong to the same cluster when their minimum-image
// distance is below link. Sizes are returned descending in count order is
// not guaranteed; callers sort as needed.
func Clusters(s *particle.Set, box space.Box, link float64) []int {
	n := s.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	link2 := link * link
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if box.Dist2(s.Pos[i], s.Pos[j]) < link2 {
				union(i, j)
			}
		}
	}
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[find(i)]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	return out
}

// MSD tracks mean square displacement against a reference configuration,
// unwrapping periodic jumps under the assumption that no particle moves
// more than half a box edge between updates.
type MSD struct {
	box     space.Box
	ref     []vec.V // reference positions
	unwrap  []vec.V // accumulated unwrapped displacement
	lastPos []vec.V
}

// NewMSD captures the reference configuration.
func NewMSD(s *particle.Set, box space.Box) *MSD {
	m := &MSD{
		box:     box,
		ref:     append([]vec.V(nil), s.Pos...),
		unwrap:  make([]vec.V, s.Len()),
		lastPos: append([]vec.V(nil), s.Pos...),
	}
	return m
}

// Update advances the unwrapped displacements and returns the current MSD.
func (m *MSD) Update(s *particle.Set) (float64, error) {
	if s.Len() != len(m.ref) {
		return 0, fmt.Errorf("obs: particle count changed (%d -> %d)", len(m.ref), s.Len())
	}
	var sum float64
	for i := range m.ref {
		step := m.box.Displacement(s.Pos[i], m.lastPos[i])
		m.unwrap[i] = m.unwrap[i].Add(step)
		m.lastPos[i] = s.Pos[i]
		sum += m.unwrap[i].Norm2()
	}
	return sum / float64(len(m.ref)), nil
}
