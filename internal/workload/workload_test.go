package workload

import (
	"math"
	"testing"
)

func TestLatticeGasBasics(t *testing.T) {
	sys, err := LatticeGas(216, 0.256, 0.722, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Set.Len() != 216 {
		t.Fatalf("N = %d, want 216", sys.Set.Len())
	}
	if err := sys.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	if p := sys.Set.Momentum(); p.Norm() > 1e-9 {
		t.Errorf("momentum = %v, want 0", p)
	}
	if math.Abs(sys.Set.Temperature()-0.722) > 1e-9 {
		t.Errorf("T = %v, want 0.722", sys.Set.Temperature())
	}
	rho := float64(sys.Set.Len()) / sys.Box.Volume()
	if math.Abs(rho-0.256) > 1e-9 {
		t.Errorf("rho = %v, want 0.256", rho)
	}
}

func TestLatticeGasNoOverlap(t *testing.T) {
	sys, err := LatticeGas(125, 0.5, 0.722, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Set
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			if d := sys.Box.Dist2(s.Pos[i], s.Pos[j]); d < 0.5*0.5 {
				t.Fatalf("particles %d,%d overlap: dist %v", i, j, math.Sqrt(d))
			}
		}
	}
}

func TestLatticeGasInBox(t *testing.T) {
	sys, err := LatticeGas(300, 0.3, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sys.Set.Pos {
		l := sys.Box.L
		if p.X < 0 || p.X >= l.X || p.Y < 0 || p.Y >= l.Y || p.Z < 0 || p.Z >= l.Z {
			t.Fatalf("particle %d at %v outside box %v", i, p, l)
		}
	}
}

func TestLatticeGasRejectsBadInput(t *testing.T) {
	if _, err := LatticeGas(0, 0.5, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := LatticeGas(10, 0, 1, 1); err == nil {
		t.Error("rho=0 accepted")
	}
}

func TestUniformGasCount(t *testing.T) {
	sys, err := UniformGas(100, 0.1, 0.722, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Set.Len() != 100 {
		t.Fatalf("N = %d", sys.Set.Len())
	}
	if p := sys.Set.Momentum(); p.Norm() > 1e-9 {
		t.Errorf("momentum = %v", p)
	}
}

func TestBlobGasConcentration(t *testing.T) {
	sys, err := BlobGas(512, 0.256, 0.722, 0.5, 3.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Set.Len() != 512 {
		t.Fatalf("N = %d, want 512", sys.Set.Len())
	}
	if err := sys.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count particles within 1/4 box of the center: must exceed the uniform
	// expectation (a sphere of radius L/4 holds ~ (4/3)pi/64 ~ 6.5% of the
	// volume) by a wide margin.
	center := sys.Box.L.Scale(0.5)
	rad2 := sys.Box.L.X / 4 * sys.Box.L.X / 4
	in := 0
	for _, p := range sys.Set.Pos {
		if sys.Box.Dist2(p, center) < rad2 {
			in++
		}
	}
	// A uniform gas would put ~(4/3)pi(L/4)^3 / L^3 ~ 6.5% of particles in
	// that sphere; the blob must at least double that.
	if frac := float64(in) / 512; frac < 0.13 {
		t.Errorf("central fraction = %v, want >= 0.13 (~2x uniform)", frac)
	}
}

func TestBlobGasRejectsBadFraction(t *testing.T) {
	if _, err := BlobGas(10, 0.1, 1, 1.5, 1, 1); err == nil {
		t.Error("concFrac > 1 accepted")
	}
}

func TestBlobGasMinimumSpacing(t *testing.T) {
	sys, err := BlobGas(216, 0.256, 0.722, 1.0, 2.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Set
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			if d := sys.Box.Dist2(s.Pos[i], s.Pos[j]); d < 0.9*0.9 {
				t.Fatalf("blob particles %d,%d too close: %v", i, j, math.Sqrt(d))
			}
		}
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	a, _ := LatticeGas(64, 0.3, 0.722, 42)
	b, _ := LatticeGas(64, 0.3, 0.722, 42)
	for i := range a.Set.Pos {
		if a.Set.Pos[i] != b.Set.Pos[i] || a.Set.Vel[i] != b.Set.Vel[i] {
			t.Fatal("same seed produced different systems")
		}
	}
	c, _ := LatticeGas(64, 0.3, 0.722, 43)
	same := true
	for i := range a.Set.Vel {
		if a.Set.Vel[i] != c.Set.Vel[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical velocities")
	}
}

func TestPaperSystem(t *testing.T) {
	sys, err := PaperSystem(125, 0.256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.Set.Temperature()-0.722) > 1e-9 {
		t.Errorf("T = %v", sys.Set.Temperature())
	}
}
