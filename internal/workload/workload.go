// Package workload builds initial conditions for the simulations: uniform
// lattice gases with Maxwell-Boltzmann velocities (the paper's supercooled
// Argon setup), and pre-concentrated configurations (Gaussian blobs,
// multi-cluster mixtures) used to reach the high-concentration regime of
// Section 4 quickly.
package workload

import (
	"fmt"
	"math"

	"permcell/internal/integrator"
	"permcell/internal/particle"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// System bundles a particle set with its box.
type System struct {
	Box space.Box
	Set *particle.Set
}

// LatticeGas places n particles on a simple cubic lattice inside a cubic
// box at reduced density rho, draws Maxwell-Boltzmann velocities at
// temperature tref, and removes center-of-mass drift. This is the standard
// MD cold start: the lattice guarantees no overlapping cores.
func LatticeGas(n int, rho, tref float64, seed uint64) (System, error) {
	box, err := space.CubicBoxForDensity(n, rho)
	if err != nil {
		return System{}, err
	}
	set := &particle.Set{}
	r := rng.New(seed)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := box.L.X / float64(side)
	id := int64(0)
	for iz := 0; iz < side && id < int64(n); iz++ {
		for iy := 0; iy < side && id < int64(n); iy++ {
			for ix := 0; ix < side && id < int64(n); ix++ {
				p := vec.New(
					(float64(ix)+0.5)*spacing,
					(float64(iy)+0.5)*spacing,
					(float64(iz)+0.5)*spacing,
				)
				set.Add(id, box.Wrap(p), r.MaxwellVelocity(tref, 1))
				id++
			}
		}
	}
	integrator.RemoveDrift(set)
	integrator.RescaleToTemperature(set, tref)
	return System{Box: box, Set: set}, nil
}

// UniformGas places n particles uniformly at random (no overlap guarantee;
// use with soft potentials or analysis-only workloads).
func UniformGas(n int, rho, tref float64, seed uint64) (System, error) {
	box, err := space.CubicBoxForDensity(n, rho)
	if err != nil {
		return System{}, err
	}
	set := &particle.Set{}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		set.Add(int64(i), r.InBox(box.L), r.MaxwellVelocity(tref, 1))
	}
	integrator.RemoveDrift(set)
	return System{Box: box, Set: set}, nil
}

// BlobGas places a fraction concFrac of the n particles in a Gaussian blob
// of standard deviation sigma around the box center and the rest uniformly.
// Overlapping-core positions are resolved by resampling blob positions onto
// a jittered sub-lattice, so the configuration is usable with LJ cores.
// It models a partially condensed gas: the droplet the supercooled run
// develops after thousands of steps.
func BlobGas(n int, rho, tref, concFrac, sigma float64, seed uint64) (System, error) {
	if concFrac < 0 || concFrac > 1 {
		return System{}, fmt.Errorf("workload: concFrac must be in [0,1], got %g", concFrac)
	}
	box, err := space.CubicBoxForDensity(n, rho)
	if err != nil {
		return System{}, err
	}
	set := &particle.Set{}
	r := rng.New(seed)
	center := box.L.Scale(0.5)
	nBlob := int(float64(n) * concFrac)

	// Blob particles: dense jittered lattice around the center, extent ~sigma.
	side := int(math.Ceil(math.Cbrt(float64(nBlob))))
	if side < 1 {
		side = 1
	}
	pitch := 2 * sigma / float64(side)
	if pitch < 1.05 { // keep LJ cores from overlapping
		pitch = 1.05
	}
	id := int64(0)
	blobRadius := 0.0
	for iz := 0; iz < side && id < int64(nBlob); iz++ {
		for iy := 0; iy < side && id < int64(nBlob); iy++ {
			for ix := 0; ix < side && id < int64(nBlob); ix++ {
				off := vec.New(
					(float64(ix)-float64(side-1)/2)*pitch+r.Uniform(-0.02, 0.02),
					(float64(iy)-float64(side-1)/2)*pitch+r.Uniform(-0.02, 0.02),
					(float64(iz)-float64(side-1)/2)*pitch+r.Uniform(-0.02, 0.02),
				)
				if d := off.Norm(); d > blobRadius {
					blobRadius = d
				}
				set.Add(id, box.Wrap(center.Add(off)), r.MaxwellVelocity(tref, 1))
				id++
			}
		}
	}

	// Background particles: lattice over the whole box, excluding a sphere
	// around the blob so no background point overlaps a blob core (an
	// overlap would produce unphysical forces and blow up the integrator).
	nBg := n - int(id)
	if nBg > 0 {
		rExcl := blobRadius + 0.9
		placed := false
		for sideBg := int(math.Ceil(math.Cbrt(float64(nBg)))); ; sideBg++ {
			spacing := box.L.X / float64(sideBg)
			if spacing < 1.0 {
				return System{}, fmt.Errorf("workload: cannot fit %d background particles outside the blob", nBg)
			}
			var pts []vec.V
			for iz := 0; iz < sideBg && len(pts) < nBg; iz++ {
				for iy := 0; iy < sideBg && len(pts) < nBg; iy++ {
					for ix := 0; ix < sideBg && len(pts) < nBg; ix++ {
						p := vec.New(
							(float64(ix)+0.25)*spacing,
							(float64(iy)+0.25)*spacing,
							(float64(iz)+0.25)*spacing,
						)
						if box.Displacement(p, center).Norm() <= rExcl {
							continue
						}
						pts = append(pts, p)
					}
				}
			}
			if len(pts) >= nBg {
				for _, p := range pts[:nBg] {
					set.Add(id, box.Wrap(p), r.MaxwellVelocity(tref, 1))
					id++
				}
				placed = true
				break
			}
		}
		if !placed {
			return System{}, fmt.Errorf("workload: background placement failed")
		}
	}
	integrator.RemoveDrift(set)
	return System{Box: box, Set: set}, nil
}

// PaperSystem returns the lattice gas at the paper's headline conditions
// for the given particle count and density (Tref = 0.722).
func PaperSystem(n int, rho float64, seed uint64) (System, error) {
	return LatticeGas(n, rho, 0.722, seed)
}
