package workload

import (
	"fmt"

	"permcell/internal/space"
)

// KernelPreset is one geometry of the force-kernel benchmark matrix — the
// single source of truth shared by the kernel package's benchmarks, the
// cmd/figures -bench-json report (BENCH_kernel.json) and the bench
// regression gate, so the committed baseline and the re-timed results
// always describe the same systems.
type KernelPreset struct {
	// Name keys the preset in BENCH_kernel.json and on the -bench-presets
	// flag.
	Name string
	// N is the particle count; Rho the reduced density. The cubic box edge
	// follows as (N/Rho)^(1/3) and the grid is the finest with cell side
	// >= the paper cut-off 2.5.
	N   int
	Rho float64
	// NC is the expected cells per dimension, asserted at build time so a
	// preset can never silently drift to a different grid.
	NC int
	// Tref is the Maxwell-Boltzmann velocity temperature of the lattice
	// start (geometry-irrelevant, recorded for reproducibility).
	Tref float64
	// Seed feeds the velocity RNG.
	Seed uint64
}

// KernelPresets returns the benchmark matrix, smallest first:
//
//   - tiny: the original acceptance-gate geometry (Tiny experiment preset,
//     m=3: grid 6x6x6, N=1296 at rho=0.384) — kept bit-compatible with the
//     historical BENCH_kernel.json baselines;
//   - 50k/100k/200k: cubic boxes at the paper's headline density 0.256
//     whose edge is an exact multiple of the cut-off 2.5, large enough
//     that the force pass no longer fits in cache and intra-PE shard
//     parallelism has real work to amortize against (the scaling
//     acceptance gate runs at 50k and beyond).
func KernelPresets() []KernelPreset {
	return []KernelPreset{
		{Name: "tiny", N: 1296, Rho: 0.384, NC: 6, Tref: 0.722, Seed: 1},
		{Name: "50k", N: 55296, Rho: 0.256, NC: 24, Tref: 0.722, Seed: 1},
		{Name: "100k", N: 108000, Rho: 0.256, NC: 30, Tref: 0.722, Seed: 1},
		{Name: "200k", N: 219488, Rho: 0.256, NC: 38, Tref: 0.722, Seed: 1},
	}
}

// KernelPresetByName returns the named preset or an error listing the
// valid names.
func KernelPresetByName(name string) (KernelPreset, error) {
	var names []string
	for _, pr := range KernelPresets() {
		if pr.Name == name {
			return pr, nil
		}
		names = append(names, pr.Name)
	}
	return KernelPreset{}, fmt.Errorf("workload: unknown kernel preset %q (have %v)", name, names)
}

// Build constructs the preset's lattice-gas system and its cell grid
// (cutoff 2.5), asserting the expected grid dimensions.
func (pr KernelPreset) Build() (System, space.Grid, error) {
	sys, err := LatticeGas(pr.N, pr.Rho, pr.Tref, pr.Seed)
	if err != nil {
		return System{}, space.Grid{}, err
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		return System{}, space.Grid{}, err
	}
	if g.Nx != pr.NC || g.Ny != pr.NC || g.Nz != pr.NC {
		return System{}, space.Grid{}, fmt.Errorf(
			"workload: preset %s built grid %dx%dx%d, want %d^3", pr.Name, g.Nx, g.Ny, g.Nz, pr.NC)
	}
	return sys, g, nil
}
