package lsq

import (
	"math"
	"testing"

	"permcell/internal/rng"
)

func TestFitScaleExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	a, err := FitScale(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-12 {
		t.Errorf("a = %v, want 2", a)
	}
}

func TestFitScaleNoisy(t *testing.T) {
	r := rng.New(1)
	var xs, ys []float64
	for i := 0; i < 1000; i++ {
		x := r.Uniform(0.5, 3)
		xs = append(xs, x)
		ys = append(ys, 0.7*x+r.NormScaled(0, 0.01))
	}
	a, err := FitScale(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.7) > 0.01 {
		t.Errorf("a = %v, want ~0.7", a)
	}
}

func TestFitScaleErrors(t *testing.T) {
	if _, err := FitScale(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitScale([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitScale([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x accepted")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	s, b, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit = %v x + %v, want 2x+1", s, b)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestResidual(t *testing.T) {
	xs := []float64{1, 2}
	ys := []float64{2, 4}
	if r := Residual(xs, ys, 2); r != 0 {
		t.Errorf("exact fit residual = %v", r)
	}
	if r := Residual(xs, ys, 0); math.Abs(r-math.Sqrt(10)) > 1e-12 {
		t.Errorf("residual = %v", r)
	}
	if Residual(nil, nil, 1) != 0 {
		t.Error("empty residual nonzero")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 || math.Abs(s-2) > 1e-12 {
		t.Errorf("mean/std = %v/%v, want 5/2", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd nonzero")
	}
}
