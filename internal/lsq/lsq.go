// Package lsq provides the small least-squares fits used by the Section 4.2
// analysis: the paper computes experimental boundaries by least-squares
// fitting the measured boundary points against the shape of the theoretical
// bound, and Table 1 reports the resulting experimental/theoretical ratio.
package lsq

import (
	"fmt"
	"math"
)

// FitScale fits y ~= a*x by least squares and returns a = sum(x*y)/sum(x^2).
// This is the fit behind Table 1: with x = f(m, n_i) (theory) and
// y = measured boundary C_0/C, the fitted a is the E/T ratio.
func FitScale(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, fmt.Errorf("lsq: need equal-length non-empty inputs, got %d and %d", len(xs), len(ys))
	}
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	if sxx == 0 {
		return 0, fmt.Errorf("lsq: all x values are zero")
	}
	return sxy / sxx, nil
}

// FitLine fits y ~= slope*x + intercept by ordinary least squares.
func FitLine(xs, ys []float64) (slope, intercept float64, err error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, fmt.Errorf("lsq: need at least two points, got %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("lsq: degenerate x values")
	}
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return slope, intercept, nil
}

// Residual returns the root-mean-square residual of y against a*x.
func Residual(xs, ys []float64, a float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i := range xs {
		d := ys[i] - a*xs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns the mean and (population) standard deviation of vals —
// used for the error ranges on the experimental boundary points, which the
// paper derives from ten runs per point.
func MeanStd(vals []float64) (mean, std float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std
}
