package distrib

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"syscall"
	"testing"
	"time"

	"permcell/internal/transport"
)

// TestRanksOf pins the contiguous-block rank dealing, including the
// degenerate shapes: one worker owns everything, P == W deals singletons,
// and an uneven split biases the remainder to the trailing blocks
// (i*p/w arithmetic), never skipping or duplicating a rank.
func TestRanksOf(t *testing.T) {
	cases := []struct {
		p, w, i int
		want    []int
	}{
		{4, 1, 0, []int{0, 1, 2, 3}},   // W=1: one proc hosts the world
		{4, 4, 0, []int{0}},            // P=W: singleton blocks
		{4, 4, 3, []int{3}},
		{7, 3, 0, []int{0, 1}},         // uneven: 2,2,3
		{7, 3, 1, []int{2, 3}},
		{7, 3, 2, []int{4, 5, 6}},
		{1, 1, 0, []int{0}},
	}
	for _, c := range cases {
		if got := RanksOf(c.p, c.w, c.i); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RanksOf(%d, %d, %d) = %v, want %v", c.p, c.w, c.i, got, c.want)
		}
	}
}

// TestRanksOfPartition checks the partition property over a sweep: for
// every legal (p, w) the blocks are non-empty, contiguous, ordered, and
// cover [0, p) exactly once.
func TestRanksOfPartition(t *testing.T) {
	for p := 1; p <= 12; p++ {
		for w := 1; w <= p; w++ {
			next := 0
			for i := 0; i < w; i++ {
				block := RanksOf(p, w, i)
				if len(block) == 0 {
					t.Fatalf("p=%d w=%d: block %d empty", p, w, i)
				}
				for _, r := range block {
					if r != next {
						t.Fatalf("p=%d w=%d block %d: rank %d, want %d", p, w, i, r, next)
					}
					next++
				}
			}
			if next != p {
				t.Fatalf("p=%d w=%d: blocks cover %d ranks", p, w, next)
			}
		}
	}
}

// timeoutErr mimics a net.Error deadline expiry (what a read deadline
// returns through the buffered reader).
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifyLinkError pins the error->kind taxonomy: deadline expiries
// are liveness failures, codec errors are frame corruption, and endpoint
// teardown (EOF, reset, broken pipe, anything else) is an exit.
func TestClassifyLinkError(t *testing.T) {
	cases := []struct {
		err  error
		want FailureKind
	}{
		{timeoutErr{}, FailHeartbeat},
		{fmt.Errorf("recv: %w", timeoutErr{}), FailHeartbeat},
		{transport.ErrFrameTooLarge, FailFrameDecode},
		{fmt.Errorf("%w: unknown kind 99", transport.ErrMalformedFrame), FailFrameDecode},
		{io.EOF, FailExited},
		{io.ErrUnexpectedEOF, FailExited},
		{syscall.ECONNRESET, FailExited},
		{syscall.EPIPE, FailExited},
		{errors.New("anything else"), FailExited},
	}
	for _, c := range cases {
		if got := classifyLinkError(c.err); got != c.want {
			t.Errorf("classifyLinkError(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// TestWorkerFailureError checks the typed error's message, unwrapping,
// and errors.As matching — the contract the supervisor's classifier and
// the facade's callers rely on.
func TestWorkerFailureError(t *testing.T) {
	inner := errors.New("connection reset")
	wf := &WorkerFailure{
		Proc: 2, Ranks: []int{4, 5}, Kind: FailExited,
		Err: inner, Forensics: "last frame: kind=5",
	}
	var err error = fmt.Errorf("step: %w", wf)
	var got *WorkerFailure
	if !errors.As(err, &got) || got.Proc != 2 || got.Kind != FailExited {
		t.Fatalf("errors.As failed to recover the WorkerFailure from %v", err)
	}
	if !errors.Is(err, inner) {
		t.Error("WorkerFailure does not unwrap to its cause")
	}
	for _, want := range []string{"worker 2", "[exited]", "connection reset", "last frame"} {
		if msg := wf.Error(); !containsStr(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestWorkerChaosOneShot pins the one-shot trigger semantics: only the
// first take() wins (a supervised restart must not re-fire the injected
// failure), and shipCopy produces an unspent, value-equal copy for the
// wire.
func TestWorkerChaosOneShot(t *testing.T) {
	c := &WorkerChaos{Proc: 1, Step: 17, Kind: ChaosStall, Stall: time.Second}
	if !c.take() {
		t.Fatal("first take() lost")
	}
	if c.take() {
		t.Fatal("second take() won: trigger is not one-shot")
	}
	cp := c.shipCopy()
	if cp.Proc != 1 || cp.Step != 17 || cp.Kind != ChaosStall || cp.Stall != time.Second {
		t.Fatalf("shipCopy dropped fields: %+v", cp)
	}
	if !cp.take() {
		t.Error("shipped copy inherited the spent mark")
	}
}

// TestFrameLogForensics checks the per-proc forensics line: empty before
// any frame, and carrying the last header plus a count after traffic.
func TestFrameLogForensics(t *testing.T) {
	var l frameLog
	if got := l.describe(); !containsStr(got, "no frames") {
		t.Errorf("empty log describes as %q", got)
	}
	l.note(transport.Frame{Kind: transport.KindData, Src: 1, Dst: 2, Tag: 3})
	l.note(transport.Frame{Kind: transport.KindStepAck, Src: 4, Dst: 0, Tag: 0})
	got := l.describe()
	for _, want := range []string{"kind=5", "src=4", "2 frames total"} {
		if !containsStr(got, want) {
			t.Errorf("describe() = %q, missing %q", got, want)
		}
	}
}
