package distrib

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync/atomic"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/transport"
)

// Config selects how a coordinator hosts its workers.
type Config struct {
	// Procs is the number of worker processes. Must be 1..P; ranks are
	// dealt in contiguous blocks (RanksOf).
	Procs int
	// Worker is the mdrank binary to exec per process. Empty hosts the
	// workers as goroutines in this process — still speaking real TCP
	// over loopback, which is what the cross-transport tests exercise
	// (and keeps them under the race detector).
	Worker string
	// Addr is the coordinator listen address; default "127.0.0.1:0".
	Addr string
	// OnStep streams each assembled step record; DiscardStats drops them
	// after streaming instead of accumulating the trace.
	OnStep       func(core.StepStats)
	DiscardStats bool

	// HandshakeTimeout bounds the accept+hello+spec phase per worker so a
	// worker that dies before connecting fails Start instead of hanging
	// it. 0 selects DefaultHandshakeTimeout. It is also passed to exec'd
	// workers (-handshake-timeout), bounding their hello->spec wait.
	HandshakeTimeout time.Duration

	// HeartbeatEvery is the heartbeat send interval on every
	// coordinator<->worker link; HeartbeatMisses is the miss budget. A
	// link with no frame for Every x Misses is declared dead
	// (FailHeartbeat). 0 selects the defaults; Every < 0 disables
	// liveness entirely (no heartbeats, unbounded mid-run reads — the
	// pre-liveness behavior, kept for debugging).
	HeartbeatEvery  time.Duration
	HeartbeatMisses int

	// Chaos, when non-nil, injects one deterministic worker failure; see
	// WorkerChaos. One-shot: spent when first shipped, so supervised
	// restarts do not re-fire it.
	Chaos *WorkerChaos
}

// Liveness defaults: a second between beats with a five-miss budget keeps
// idle-link overhead negligible (one 17-byte frame/s) while bounding
// detection of a wedged peer at ~5 s. Tests shrink both.
const (
	DefaultHandshakeTimeout = 60 * time.Second
	DefaultHeartbeatEvery   = 1 * time.Second
	DefaultHeartbeatMisses  = 5
)

// shutdownGrace is how long shutdown waits for an exec'd worker to exit
// after its connection closes before escalating to SIGKILL. The escalation
// matters: a SIGSTOP'd worker never notices the closed socket, and SIGKILL
// is the only signal a stopped process cannot ignore.
const shutdownGrace = 2 * time.Second

// Engine drives W worker processes in lockstep and presents the same
// stepwise surface as core.Engine: Step, AbsStep, Snapshot, Stats,
// Finish. Data frames between workers are forwarded through the
// coordinator by header only (star topology, payloads opaque). Not safe
// for concurrent use.
type Engine struct {
	spec    WireSpec
	peers   []*transport.Peer
	procOf  []int   // rank -> hosting proc
	ranks   [][]int // proc -> hosted rank block
	last    []frameLog
	ctrl    chan ctrlFrame
	fatal   chan error
	cmds    []*exec.Cmd
	reaped  []chan error // closed by the exit watcher once cmd.Wait returns
	stats   []core.StepStats
	onStep  func(core.StepStats)
	discard bool

	hbEvery time.Duration // <= 0: liveness disabled
	hbStop  chan struct{}
	closing atomic.Bool

	base      int   // absolute step at start (restore offset)
	baseMsgs  int64 // comm counters carried over from the restored run
	baseBytes int64
	stepped   int
	err       error
	done      bool
	finRes    *core.Result
	finErr    error
}

type ctrlFrame struct {
	proc  int
	frame transport.Frame
}

// Start listens, launches cfg.Procs workers, deals rank blocks, and
// waits for every worker to report a constructed engine. spec.Proc and
// spec.Ranks are assigned per worker here; spec.Restore, when set,
// seeds the absolute step and comm counter continuations.
func Start(spec WireSpec, cfg Config) (*Engine, error) {
	w := cfg.Procs
	if w <= 0 {
		w = spec.P
	}
	if w > spec.P {
		return nil, fmt.Errorf("distrib: %d worker processes for %d ranks", w, spec.P)
	}
	handshake := cfg.HandshakeTimeout
	if handshake <= 0 {
		handshake = DefaultHandshakeTimeout
	}
	hbEvery, hbMisses := cfg.HeartbeatEvery, cfg.HeartbeatMisses
	if hbEvery == 0 {
		hbEvery = DefaultHeartbeatEvery
	}
	if hbMisses <= 0 {
		hbMisses = DefaultHeartbeatMisses
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distrib: listen: %w", err)
	}
	defer ln.Close()
	dialAddr := ln.Addr().String()

	e := &Engine{
		spec:    spec,
		peers:   make([]*transport.Peer, w),
		procOf:  make([]int, spec.P),
		ranks:   make([][]int, w),
		last:    make([]frameLog, w),
		ctrl:    make(chan ctrlFrame, 4*w),
		fatal:   make(chan error, w),
		onStep:  cfg.OnStep,
		discard: cfg.DiscardStats,
		hbEvery: hbEvery,
		hbStop:  make(chan struct{}),
	}
	if spec.Restore != nil {
		e.base = spec.Restore.Step
		e.baseMsgs = spec.Restore.CommMsgs
		e.baseBytes = spec.Restore.CommBytes
	}
	spec.HeartbeatEvery = hbEvery
	spec.HeartbeatMisses = hbMisses

	// Launch the workers. Process identity is assigned in accept order,
	// which is safe because the delivery contract is placement
	// independent: any worker can host any rank block.
	if cfg.Worker != "" {
		for i := 0; i < w; i++ {
			cmd := exec.Command(cfg.Worker,
				"-connect", dialAddr,
				"-handshake-timeout", handshake.String())
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				e.shutdown()
				return nil, fmt.Errorf("distrib: start worker: %w", err)
			}
			e.cmds = append(e.cmds, cmd)
			e.reaped = append(e.reaped, make(chan error, 1))
			// Exit watcher: owns the single cmd.Wait. A worker dying
			// outside shutdown is a failure even if its socket lingers
			// (accept-order identity means the watcher cannot name the
			// proc; the router's EOF usually attributes it first).
			go func(cmd *exec.Cmd, reaped chan error) {
				werr := cmd.Wait()
				reaped <- werr
				close(reaped)
				if !e.closing.Load() {
					e.fail(&WorkerFailure{
						Proc: -1, Kind: FailExited,
						Err: fmt.Errorf("worker process exited mid-run: %v", werr),
					})
				}
			}(cmd, e.reaped[i])
		}
	} else {
		for i := 0; i < w; i++ {
			go func() {
				conn, derr := net.Dial("tcp", dialAddr)
				if derr != nil {
					return // surfaces as an accept timeout
				}
				if werr := RunWorkerWith(conn, WorkerOptions{HandshakeTimeout: handshake}); werr != nil {
					fmt.Fprintf(os.Stderr, "distrib: worker: %v\n", werr)
				}
			}()
		}
	}

	// Accept + hello, then deal each worker its spec.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(handshake))
	}
	for i := 0; i < w; i++ {
		conn, aerr := ln.Accept()
		if aerr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: accept worker %d/%d: %w", i, w, aerr)
		}
		peer := transport.NewPeer(conn)
		conn.SetReadDeadline(time.Now().Add(handshake))
		fr, herr := peer.Recv()
		if herr != nil || fr.Kind != transport.KindHello {
			e.peers[i] = peer
			e.shutdown()
			return nil, fmt.Errorf("distrib: worker %d hello: kind=%d err=%v", i, fr.Kind, herr)
		}
		conn.SetReadDeadline(time.Time{})
		e.peers[i] = peer
		if hbEvery > 0 {
			// The liveness window: a healthy peer's heartbeats arrive
			// every hbEvery, so hbMisses consecutive losses trip the
			// per-Recv deadline. The same window bounds writes, so a
			// peer that stops draining its socket cannot wedge Send.
			window := hbEvery * time.Duration(hbMisses)
			peer.SetTimeouts(window, window)
		}

		ws := spec
		ws.Proc = i
		ws.Ranks = RanksOf(spec.P, w, i)
		e.ranks[i] = ws.Ranks
		for _, r := range ws.Ranks {
			e.procOf[r] = i
		}
		if cfg.Chaos != nil && cfg.Chaos.Proc == i && cfg.Chaos.take() {
			ws.Chaos = cfg.Chaos.shipCopy()
		} else {
			ws.Chaos = nil
		}
		payload, perr := transport.EncodePayload(ws)
		if perr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: encode spec: %w", perr)
		}
		if serr := peer.Send(transport.Frame{Kind: transport.KindSpec, Payload: payload}); serr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: send spec to worker %d: %w", i, serr)
		}
	}

	// Router per connection: data frames hop to the destination rank's
	// hosting peer; control frames queue for the collector. One router
	// goroutine per source connection preserves per-source frame order,
	// which together with the workers' single reader keeps the
	// per-(src,tag) FIFO delivery contract intact across the star.
	// Heartbeat senders keep every link inside the workers' read windows
	// even when the coordinator is idle between commands.
	for i := 0; i < w; i++ {
		go e.route(i)
		if hbEvery > 0 {
			go e.heartbeat(i)
		}
	}

	// Every worker reports construction (an empty StepAck).
	if _, err := e.collect(transport.KindStepAck); err != nil {
		e.shutdown()
		return nil, fmt.Errorf("distrib: worker startup: %w", err)
	}
	return e, nil
}

// fail records a worker failure; the first one wins, later ones drop (the
// run is already dead and the collector only consumes one).
func (e *Engine) fail(f *WorkerFailure) {
	select {
	case e.fatal <- f:
	default:
	}
}

// linkFailure builds the typed failure for a broken proc link, attaching
// the rank block and last-frame forensics.
func (e *Engine) linkFailure(proc int, kind FailureKind, err error) *WorkerFailure {
	return &WorkerFailure{
		Proc:      proc,
		Ranks:     e.ranks[proc],
		Kind:      kind,
		Err:       err,
		Forensics: e.last[proc].describe(),
	}
}

// heartbeat keeps one worker link alive from the coordinator side. Runs
// until shutdown or the first send error (a dead link is the router's
// failure to report, not this goroutine's).
func (e *Engine) heartbeat(proc int) {
	t := time.NewTicker(e.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-e.hbStop:
			return
		case <-t.C:
			if e.peers[proc].Send(transport.Frame{Kind: transport.KindHeartbeat, Src: -1, Dst: -1}) != nil {
				return
			}
		}
	}
}

func (e *Engine) route(proc int) {
	for {
		fr, err := e.peers[proc].Recv()
		if err != nil {
			if e.peers[proc].Closed() || errors.Is(err, transport.ErrPeerClosed) {
				return // local teardown, not a worker failure
			}
			e.fail(e.linkFailure(proc, classifyLinkError(err), err))
			return
		}
		e.last[proc].note(fr)
		switch fr.Kind {
		case transport.KindHeartbeat:
			continue
		case transport.KindData:
			dst := int(fr.Dst)
			if dst < 0 || dst >= len(e.procOf) {
				e.fail(e.linkFailure(proc, FailProtocol,
					fmt.Errorf("data frame for rank %d out of range", dst)))
				return
			}
			to := e.procOf[dst]
			if err := e.peers[to].Send(fr); err != nil {
				if e.peers[to].Closed() || errors.Is(err, transport.ErrPeerClosed) {
					return
				}
				e.fail(e.linkFailure(to, classifyLinkError(err),
					fmt.Errorf("forward from proc %d: %w", proc, err)))
				return
			}
		default:
			e.ctrl <- ctrlFrame{proc: proc, frame: fr}
		}
	}
}

// broadcast sends one control frame to every worker.
func (e *Engine) broadcast(f transport.Frame) error {
	for i, p := range e.peers {
		if err := p.Send(f); err != nil {
			return e.linkFailure(i, classifyLinkError(err), fmt.Errorf("command: %w", err))
		}
	}
	return nil
}

// collect gathers one control ack of the given kind from every worker
// and returns the decoded payloads indexed by arrival. Any link failure,
// mismatched frame kind or undecodable payload aborts the batch with a
// typed WorkerFailure.
func (e *Engine) collect(kind byte) ([]any, error) {
	out := make([]any, 0, len(e.peers))
	for len(out) < len(e.peers) {
		select {
		case err := <-e.fatal:
			return nil, err
		case cf := <-e.ctrl:
			if cf.frame.Kind != kind {
				return nil, e.linkFailure(cf.proc, FailProtocol,
					fmt.Errorf("sent frame kind %d, want %d", cf.frame.Kind, kind))
			}
			v, err := transport.DecodePayload(cf.frame.Payload)
			if err != nil {
				return nil, e.linkFailure(cf.proc, FailFrameDecode,
					fmt.Errorf("decode ack: %w", err))
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// Step advances every worker by n steps in lockstep, stitches the new
// rank-0 records into the global trace, and overwrites their transport
// counters with the sum over all processes — making the trace identical
// to a single-process run of the same seed (transport counters excluded;
// they are transport-dependent by construction).
func (e *Engine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if e.done {
		return fmt.Errorf("distrib: Step after Finish")
	}
	if n < 0 {
		return fmt.Errorf("core: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindStep, Tag: int32(n)}); err != nil {
		e.err = err
		return err
	}
	acks, err := e.collect(transport.KindStepAck)
	if err != nil {
		e.err = err
		return err
	}
	var sum comm.TransportStats
	var records []core.StepStats
	for _, v := range acks {
		ack, ok := v.(StepAck)
		if !ok {
			e.err = fmt.Errorf("distrib: step ack payload is %T", v)
			return e.err
		}
		if ack.Failure != nil {
			e.err = ack.Failure.rebuild(ack.Proc)
			return e.err
		}
		if ack.Err != "" {
			e.err = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return e.err
		}
		sum.Frames += ack.Transport.Frames
		sum.Bytes += ack.Transport.Bytes
		sum.Resends += ack.Transport.Resends
		if len(ack.Stats) > 0 {
			records = ack.Stats
		}
	}
	for _, st := range records {
		st.SentFrames = sum.Frames
		st.SentBytes = sum.Bytes
		st.ResendCount = sum.Resends
		if e.onStep != nil {
			e.onStep(st)
		}
		if !e.discard {
			e.stats = append(e.stats, st)
		}
	}
	e.stepped += n
	return nil
}

// AbsStep returns the absolute time step, counting any restored prefix.
func (e *Engine) AbsStep() int { return e.base + e.stepped }

// Procs returns the number of worker processes the engine is running on.
// The supervisor's rescale policy reads it to pick the survivor count.
func (e *Engine) Procs() int { return len(e.peers) }

// Stats returns a copy of the accumulated step records; mutating it does
// not affect the engine's trace.
func (e *Engine) Stats() []core.StepStats {
	out := make([]core.StepStats, len(e.stats))
	copy(out, e.stats)
	return out
}

// Snapshot assembles a full checkpoint from the per-worker frame sets at
// the current batch boundary. The comm counters continue the restored
// run's totals, matching the in-process engine bit for bit.
func (e *Engine) Snapshot() (*checkpoint.EngineState, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.done {
		return nil, fmt.Errorf("distrib: Snapshot after Finish")
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindSnapshot}); err != nil {
		e.err = err
		return nil, err
	}
	acks, err := e.collect(transport.KindSnapAck)
	if err != nil {
		e.err = err
		return nil, err
	}
	st := &checkpoint.EngineState{
		Step:   e.base + e.stepped,
		Frames: make([]checkpoint.Frame, e.spec.P),
	}
	var msgs, bytes int64
	for _, v := range acks {
		ack, ok := v.(SnapAck)
		if !ok {
			e.err = fmt.Errorf("distrib: snapshot ack payload is %T", v)
			return nil, e.err
		}
		if ack.Err != "" {
			e.err = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return nil, e.err
		}
		msgs += ack.Msgs
		bytes += ack.Bytes
		for _, f := range ack.Frames {
			if f.Rank < 0 || f.Rank >= e.spec.P {
				e.err = fmt.Errorf("distrib: snapshot frame for rank %d out of range", f.Rank)
				return nil, e.err
			}
			st.Frames[f.Rank] = f
		}
	}
	st.CommMsgs = e.baseMsgs + msgs
	st.CommBytes = e.baseBytes + bytes
	if err := st.Validate(e.spec.P); err != nil {
		e.err = err
		return nil, err
	}
	return st, nil
}

// Finish drains every worker, assembles the global Result, and releases
// the worker processes. Idempotent: repeated calls return the first
// outcome.
func (e *Engine) Finish() (*core.Result, error) {
	if e.done {
		return e.finRes, e.finErr
	}
	e.done = true
	defer e.shutdown()
	if e.err != nil {
		e.finErr = e.err
		return nil, e.finErr
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindFinish}); err != nil {
		e.finErr = err
		return nil, err
	}
	acks, err := e.collect(transport.KindResultAck)
	if err != nil {
		e.finErr = err
		return nil, err
	}
	res := &core.Result{M: e.spec.M, Stats: e.stats}
	res.CommMsgs, res.CommBytes = e.baseMsgs, e.baseBytes
	for _, v := range acks {
		ack, ok := v.(ResultAck)
		if !ok {
			e.finErr = fmt.Errorf("distrib: result ack payload is %T", v)
			return nil, e.finErr
		}
		if ack.Err != "" {
			e.finErr = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return nil, e.finErr
		}
		if ack.Final != nil {
			res.Final = ack.Final
		}
		res.CommMsgs += ack.Msgs
		res.CommBytes += ack.Bytes
		res.Faults.Delays += ack.Faults.Delays
		res.Faults.Reorders += ack.Faults.Reorders
		res.Faults.Failures += ack.Faults.Failures
		res.Faults.Retries += ack.Faults.Retries
		res.Faults.Stalls += ack.Faults.Stalls
	}
	e.finRes = res
	return res, nil
}

// shutdown closes every connection and reaps worker processes. Closing a
// connection unblocks the worker's reader, which exits RunWorker; a worker
// that does not exit within the grace window (wedged, SIGSTOP'd) is
// SIGKILLed — recovery must never wait on a stuck process. Idempotent.
func (e *Engine) shutdown() {
	if !e.closing.CompareAndSwap(false, true) {
		return
	}
	close(e.hbStop)
	for _, p := range e.peers {
		if p != nil {
			p.Close()
		}
	}
	for i, cmd := range e.cmds {
		select {
		case <-e.reaped[i]:
		case <-time.After(shutdownGrace):
			cmd.Process.Kill()
			<-e.reaped[i]
		}
	}
}
