package distrib

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/transport"
)

// Config selects how a coordinator hosts its workers.
type Config struct {
	// Procs is the number of worker processes. Must be 1..P; ranks are
	// dealt in contiguous blocks (RanksOf).
	Procs int
	// Worker is the mdrank binary to exec per process. Empty hosts the
	// workers as goroutines in this process — still speaking real TCP
	// over loopback, which is what the cross-transport tests exercise
	// (and keeps them under the race detector).
	Worker string
	// Addr is the coordinator listen address; default "127.0.0.1:0".
	Addr string
	// OnStep streams each assembled step record; DiscardStats drops them
	// after streaming instead of accumulating the trace.
	OnStep       func(core.StepStats)
	DiscardStats bool
}

// handshakeTimeout bounds the accept+hello phase so a worker that dies
// before connecting fails Start instead of hanging it.
const handshakeTimeout = 60 * time.Second

// Engine drives W worker processes in lockstep and presents the same
// stepwise surface as core.Engine: Step, AbsStep, Snapshot, Stats,
// Finish. Data frames between workers are forwarded through the
// coordinator by header only (star topology, payloads opaque). Not safe
// for concurrent use.
type Engine struct {
	spec    WireSpec
	peers   []*transport.Peer
	procOf  []int // rank -> hosting proc
	ctrl    chan ctrlFrame
	fatal   chan error
	cmds    []*exec.Cmd
	stats   []core.StepStats
	onStep  func(core.StepStats)
	discard bool

	base      int   // absolute step at start (restore offset)
	baseMsgs  int64 // comm counters carried over from the restored run
	baseBytes int64
	stepped   int
	err       error
	done      bool
	finRes    *core.Result
	finErr    error
}

type ctrlFrame struct {
	proc  int
	frame transport.Frame
}

// Start listens, launches cfg.Procs workers, deals rank blocks, and
// waits for every worker to report a constructed engine. spec.Proc and
// spec.Ranks are assigned per worker here; spec.Restore, when set,
// seeds the absolute step and comm counter continuations.
func Start(spec WireSpec, cfg Config) (*Engine, error) {
	w := cfg.Procs
	if w <= 0 {
		w = spec.P
	}
	if w > spec.P {
		return nil, fmt.Errorf("distrib: %d worker processes for %d ranks", w, spec.P)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distrib: listen: %w", err)
	}
	defer ln.Close()
	dialAddr := ln.Addr().String()

	e := &Engine{
		spec:    spec,
		peers:   make([]*transport.Peer, w),
		procOf:  make([]int, spec.P),
		ctrl:    make(chan ctrlFrame, 4*w),
		fatal:   make(chan error, w),
		onStep:  cfg.OnStep,
		discard: cfg.DiscardStats,
	}
	if spec.Restore != nil {
		e.base = spec.Restore.Step
		e.baseMsgs = spec.Restore.CommMsgs
		e.baseBytes = spec.Restore.CommBytes
	}

	// Launch the workers. Process identity is assigned in accept order,
	// which is safe because the delivery contract is placement
	// independent: any worker can host any rank block.
	if cfg.Worker != "" {
		for i := 0; i < w; i++ {
			cmd := exec.Command(cfg.Worker, "-connect", dialAddr)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				e.shutdown()
				return nil, fmt.Errorf("distrib: start worker: %w", err)
			}
			e.cmds = append(e.cmds, cmd)
		}
	} else {
		for i := 0; i < w; i++ {
			go func() {
				conn, derr := net.Dial("tcp", dialAddr)
				if derr != nil {
					return // surfaces as an accept timeout
				}
				if werr := RunWorker(conn); werr != nil {
					fmt.Fprintf(os.Stderr, "distrib: worker: %v\n", werr)
				}
			}()
		}
	}

	// Accept + hello, then deal each worker its spec.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(handshakeTimeout))
	}
	for i := 0; i < w; i++ {
		conn, aerr := ln.Accept()
		if aerr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: accept worker %d/%d: %w", i, w, aerr)
		}
		peer := transport.NewPeer(conn)
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		fr, herr := peer.Recv()
		if herr != nil || fr.Kind != transport.KindHello {
			e.peers[i] = peer
			e.shutdown()
			return nil, fmt.Errorf("distrib: worker %d hello: kind=%d err=%v", i, fr.Kind, herr)
		}
		conn.SetReadDeadline(time.Time{})
		e.peers[i] = peer

		ws := spec
		ws.Proc = i
		ws.Ranks = RanksOf(spec.P, w, i)
		for _, r := range ws.Ranks {
			e.procOf[r] = i
		}
		payload, perr := transport.EncodePayload(ws)
		if perr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: encode spec: %w", perr)
		}
		if serr := peer.Send(transport.Frame{Kind: transport.KindSpec, Payload: payload}); serr != nil {
			e.shutdown()
			return nil, fmt.Errorf("distrib: send spec to worker %d: %w", i, serr)
		}
	}

	// Router per connection: data frames hop to the destination rank's
	// hosting peer; control frames queue for the collector. One router
	// goroutine per source connection preserves per-source frame order,
	// which together with the workers' single reader keeps the
	// per-(src,tag) FIFO delivery contract intact across the star.
	for i := 0; i < w; i++ {
		go e.route(i)
	}

	// Every worker reports construction (an empty StepAck).
	if _, err := e.collect(transport.KindStepAck); err != nil {
		e.shutdown()
		return nil, fmt.Errorf("distrib: worker startup: %w", err)
	}
	return e, nil
}

func (e *Engine) route(proc int) {
	for {
		fr, err := e.peers[proc].Recv()
		if err != nil {
			e.fatal <- fmt.Errorf("distrib: worker %d connection: %w", proc, err)
			return
		}
		if fr.Kind == transport.KindData {
			dst := int(fr.Dst)
			if dst < 0 || dst >= len(e.procOf) {
				e.fatal <- fmt.Errorf("distrib: data frame for rank %d out of range", dst)
				return
			}
			if err := e.peers[e.procOf[dst]].Send(fr); err != nil {
				e.fatal <- fmt.Errorf("distrib: forward to worker %d: %w", e.procOf[dst], err)
				return
			}
			continue
		}
		e.ctrl <- ctrlFrame{proc: proc, frame: fr}
	}
}

// broadcast sends one control frame to every worker.
func (e *Engine) broadcast(f transport.Frame) error {
	for i, p := range e.peers {
		if err := p.Send(f); err != nil {
			return fmt.Errorf("distrib: command to worker %d: %w", i, err)
		}
	}
	return nil
}

// collect gathers one control ack of the given kind from every worker
// and returns the decoded payloads indexed by arrival. Any connection
// fault or mismatched frame kind aborts the batch.
func (e *Engine) collect(kind byte) ([]any, error) {
	out := make([]any, 0, len(e.peers))
	for len(out) < len(e.peers) {
		select {
		case err := <-e.fatal:
			return nil, err
		case cf := <-e.ctrl:
			if cf.frame.Kind != kind {
				return nil, fmt.Errorf("distrib: worker %d sent frame kind %d, want %d", cf.proc, cf.frame.Kind, kind)
			}
			v, err := transport.DecodePayload(cf.frame.Payload)
			if err != nil {
				return nil, fmt.Errorf("distrib: decode ack from worker %d: %w", cf.proc, err)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// Step advances every worker by n steps in lockstep, stitches the new
// rank-0 records into the global trace, and overwrites their transport
// counters with the sum over all processes — making the trace identical
// to a single-process run of the same seed (transport counters excluded;
// they are transport-dependent by construction).
func (e *Engine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if e.done {
		return fmt.Errorf("distrib: Step after Finish")
	}
	if n < 0 {
		return fmt.Errorf("core: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindStep, Tag: int32(n)}); err != nil {
		e.err = err
		return err
	}
	acks, err := e.collect(transport.KindStepAck)
	if err != nil {
		e.err = err
		return err
	}
	var sum comm.TransportStats
	var records []core.StepStats
	for _, v := range acks {
		ack, ok := v.(StepAck)
		if !ok {
			e.err = fmt.Errorf("distrib: step ack payload is %T", v)
			return e.err
		}
		if ack.Err != "" {
			e.err = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return e.err
		}
		sum.Frames += ack.Transport.Frames
		sum.Bytes += ack.Transport.Bytes
		sum.Resends += ack.Transport.Resends
		if len(ack.Stats) > 0 {
			records = ack.Stats
		}
	}
	for _, st := range records {
		st.SentFrames = sum.Frames
		st.SentBytes = sum.Bytes
		st.ResendCount = sum.Resends
		if e.onStep != nil {
			e.onStep(st)
		}
		if !e.discard {
			e.stats = append(e.stats, st)
		}
	}
	e.stepped += n
	return nil
}

// AbsStep returns the absolute time step, counting any restored prefix.
func (e *Engine) AbsStep() int { return e.base + e.stepped }

// Stats returns the accumulated step records.
func (e *Engine) Stats() []core.StepStats { return e.stats }

// Snapshot assembles a full checkpoint from the per-worker frame sets at
// the current batch boundary. The comm counters continue the restored
// run's totals, matching the in-process engine bit for bit.
func (e *Engine) Snapshot() (*checkpoint.EngineState, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.done {
		return nil, fmt.Errorf("distrib: Snapshot after Finish")
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindSnapshot}); err != nil {
		e.err = err
		return nil, err
	}
	acks, err := e.collect(transport.KindSnapAck)
	if err != nil {
		e.err = err
		return nil, err
	}
	st := &checkpoint.EngineState{
		Step:   e.base + e.stepped,
		Frames: make([]checkpoint.Frame, e.spec.P),
	}
	var msgs, bytes int64
	for _, v := range acks {
		ack, ok := v.(SnapAck)
		if !ok {
			e.err = fmt.Errorf("distrib: snapshot ack payload is %T", v)
			return nil, e.err
		}
		if ack.Err != "" {
			e.err = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return nil, e.err
		}
		msgs += ack.Msgs
		bytes += ack.Bytes
		for _, f := range ack.Frames {
			if f.Rank < 0 || f.Rank >= e.spec.P {
				e.err = fmt.Errorf("distrib: snapshot frame for rank %d out of range", f.Rank)
				return nil, e.err
			}
			st.Frames[f.Rank] = f
		}
	}
	st.CommMsgs = e.baseMsgs + msgs
	st.CommBytes = e.baseBytes + bytes
	if err := st.Validate(e.spec.P); err != nil {
		e.err = err
		return nil, err
	}
	return st, nil
}

// Finish drains every worker, assembles the global Result, and releases
// the worker processes. Idempotent: repeated calls return the first
// outcome.
func (e *Engine) Finish() (*core.Result, error) {
	if e.done {
		return e.finRes, e.finErr
	}
	e.done = true
	defer e.shutdown()
	if e.err != nil {
		e.finErr = e.err
		return nil, e.finErr
	}
	if err := e.broadcast(transport.Frame{Kind: transport.KindFinish}); err != nil {
		e.finErr = err
		return nil, err
	}
	acks, err := e.collect(transport.KindResultAck)
	if err != nil {
		e.finErr = err
		return nil, err
	}
	res := &core.Result{M: e.spec.M, Stats: e.stats}
	res.CommMsgs, res.CommBytes = e.baseMsgs, e.baseBytes
	for _, v := range acks {
		ack, ok := v.(ResultAck)
		if !ok {
			e.finErr = fmt.Errorf("distrib: result ack payload is %T", v)
			return nil, e.finErr
		}
		if ack.Err != "" {
			e.finErr = fmt.Errorf("distrib: worker %d: %s", ack.Proc, ack.Err)
			return nil, e.finErr
		}
		if ack.Final != nil {
			res.Final = ack.Final
		}
		res.CommMsgs += ack.Msgs
		res.CommBytes += ack.Bytes
		res.Faults.Delays += ack.Faults.Delays
		res.Faults.Reorders += ack.Faults.Reorders
		res.Faults.Failures += ack.Faults.Failures
		res.Faults.Retries += ack.Faults.Retries
		res.Faults.Stalls += ack.Faults.Stalls
	}
	e.finRes = res
	return res, nil
}

// shutdown closes every connection and reaps worker processes. Closing a
// connection unblocks the worker's reader, which exits RunWorker; after
// a clean Finish the workers have already exited on their own.
func (e *Engine) shutdown() {
	for _, p := range e.peers {
		if p != nil {
			p.Close()
		}
	}
	for _, cmd := range e.cmds {
		cmd.Wait()
	}
}
