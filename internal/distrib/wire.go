// Package distrib runs the parallel engine across OS processes: a
// coordinator (inside mdrun, or any facade caller using the tcp
// transport) listens on loopback TCP, spawns worker processes
// (cmd/mdrank) or goroutine-hosted workers, deals each a contiguous
// block of ranks, and drives their core.Partial engines in lockstep over
// the stepwise protocol. Rank-to-rank messages travel as length-prefixed
// gob frames (internal/transport) through a star topology: every worker
// holds one connection to the coordinator, which forwards data frames by
// header only — payloads are never decoded in transit.
//
// Determinism contract: the per-(src,tag) FIFO delivery order is
// preserved end to end (sender goroutine order -> connection write mutex
// -> per-connection router -> single reader inject), and the fault
// layer's per-link RNG streams are placement-independent, so the same
// seed produces bit-identical StepRecord traces on the in-process and
// TCP transports — enforced by the cross-transport golden test.
package distrib

import (
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"permcell/internal/balance"
	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/experiments"
	"permcell/internal/particle"
	"permcell/internal/supervise"
	"permcell/internal/workload"
)

// WireSpec is the run configuration a coordinator ships to each worker.
// It carries only scalars plus the optional restore state: the worker
// reconstructs the system deterministically through experiments.RunSpec
// exactly as the facade does in-process, so both transports build
// bit-identical initial conditions from the same seed.
type WireSpec struct {
	// Paper coordinates + run identity (experiments.RunSpec scalars).
	M, P       int
	Rho        float64
	Balancer   string // balance.Encode form; "none" selects static DDM
	Seed       uint64
	WellK      float64
	Wells      int
	Hysteresis float64
	StatsEvery int
	Shards     int
	Metrics    bool
	Dt         float64

	// Engine knobs threaded through core.Config.
	Verify   bool
	InboxCap int
	Watchdog time.Duration
	Faults   *comm.FaultPlan
	Guard    *supervise.GuardConfig

	// Liveness parameters, mirrored from Config so the worker arms the
	// same heartbeat cadence and read window as the coordinator.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int

	// Chaos, when non-nil, is this worker's deterministic failure
	// injection (the coordinator ships it only to the target proc).
	Chaos *WorkerChaos

	// Restore, when non-nil, resumes from a distributed snapshot. Every
	// worker receives the full state: rebuilding the global column->host
	// map (and validating the partition) needs all frames, and the local
	// PEs take their own frames from it.
	Restore *checkpoint.EngineState

	// Proc is this worker's index; Ranks the block of ranks it hosts.
	Proc  int
	Ranks []int
}

// buildConfig reconstructs the engine configuration and system on the
// worker. OnStep and DiscardStats stay unset: step records accumulate in
// the rank-0 process's Result and are shipped to the coordinator, which
// owns the streaming hooks.
func (s *WireSpec) buildConfig() (core.Config, workload.System, error) {
	b, err := balance.Decode(s.Balancer)
	if err != nil {
		return core.Config{}, workload.System{}, fmt.Errorf("distrib: %w", err)
	}
	rs := experiments.RunSpec{
		M: s.M, P: s.P, Rho: s.Rho, Balancer: b, DLB: b != nil,
		Seed: s.Seed, Dt: s.Dt,
		Wells: s.Wells, WellK: s.WellK, Hysteresis: s.Hysteresis,
		StatsEvery: s.StatsEvery, Shards: s.Shards, Metrics: s.Metrics,
	}
	cfg, sys, _, err := rs.Build()
	if err != nil {
		return core.Config{}, workload.System{}, fmt.Errorf("distrib: %w", err)
	}
	cfg.Verify = s.Verify
	cfg.InboxCap = s.InboxCap
	cfg.Watchdog = s.Watchdog
	cfg.Faults = s.Faults
	cfg.Guard = s.Guard
	cfg.Restore = s.Restore
	return cfg, sys, nil
}

// StepAck is a worker's reply to a Step command (and, with zero stats,
// the ready signal after engine construction). Supervised failure classes
// (guard violations, rank panics, deadlocks) cross the boundary typed via
// Failure so the coordinator-side supervisor classifies worker-internal
// failures exactly like in-process ones; anything else flattens to Err.
type StepAck struct {
	Proc      int
	Stats     []core.StepStats // new records since the last ack (rank-0 proc only)
	Transport comm.TransportStats
	Msgs      int64
	Bytes     int64
	Failure   *WireFailure
	Err       string
}

// WireFailure carries a supervised failure class across the process
// boundary. Class selects which typed error the coordinator rebuilds;
// only that class's fields are meaningful.
type WireFailure struct {
	Class string // "guard" | "rank" | "deadlock"

	// guard (supervise.GuardViolation)
	Rank   int
	Step   int
	Check  string
	Detail string

	// rank (supervise.RankFailure; Rank shared with guard)
	Value string
	Stack string

	// deadlock (comm.DeadlockError; per-rank states stay worker-side,
	// the stacks and timeout carry the diagnosis)
	Timeout time.Duration
	Stacks  string
}

// wireFailure flattens a worker-side engine error into its wire form, or
// nil for error classes without one (the caller falls back to Err).
func wireFailure(err error) *WireFailure {
	var gv *supervise.GuardViolation
	var rf *supervise.RankFailure
	var de *comm.DeadlockError
	switch {
	case errors.As(err, &gv):
		return &WireFailure{Class: "guard", Rank: gv.Rank, Step: gv.Step, Check: gv.Check, Detail: gv.Detail}
	case errors.As(err, &rf):
		return &WireFailure{Class: "rank", Rank: rf.Rank, Value: rf.Value, Stack: rf.Stack}
	case errors.As(err, &de):
		return &WireFailure{Class: "deadlock", Timeout: de.Timeout, Stacks: de.Stacks}
	}
	return nil
}

// rebuild reconstructs the typed error on the coordinator side.
func (w *WireFailure) rebuild(proc int) error {
	switch w.Class {
	case "guard":
		return &supervise.GuardViolation{Rank: w.Rank, Step: w.Step, Check: w.Check, Detail: w.Detail}
	case "rank":
		return &supervise.RankFailure{Rank: w.Rank, Value: w.Value, Stack: w.Stack}
	case "deadlock":
		return &comm.DeadlockError{Timeout: w.Timeout, Stacks: w.Stacks}
	default:
		return fmt.Errorf("distrib: worker %d: unknown failure class %q", proc, w.Class)
	}
}

// SnapAck carries one worker's checkpoint frames and its share of the
// cumulative comm counters.
type SnapAck struct {
	Proc   int
	Frames []checkpoint.Frame
	Msgs   int64
	Bytes  int64
	Err    string
}

// ResultAck is the final handshake: the rank-0 process carries the
// gathered Final set, every process its comm counters and fault stats.
// FaultEvents are not gathered across processes (the per-event log is a
// single-process debugging aid; the counters are exact either way).
type ResultAck struct {
	Proc   int
	Final  *particle.Set
	Msgs   int64
	Bytes  int64
	Faults comm.FaultStats
	Err    string
}

func init() {
	gob.Register(WireSpec{})
	gob.Register(StepAck{})
	gob.Register(SnapAck{})
	gob.Register(ResultAck{})
}

// errString flattens an error for the wire.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// RanksOf deals P ranks to W processes in contiguous blocks: process i
// hosts [i*P/W, (i+1)*P/W). Blocks (not strides) keep torus-neighbor
// ranks co-resident where possible, which turns most traffic into
// in-process channel delivery.
func RanksOf(p, w, i int) []int {
	lo, hi := i*p/w, (i+1)*p/w
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}
