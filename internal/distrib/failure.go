package distrib

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"permcell/internal/transport"
)

// FailureKind classifies how a worker link failed. The taxonomy mirrors
// the in-process supervisor's failure classes: each kind is detectable
// within a bounded window and recoverable by checkpoint rollback plus
// respawn or rescale.
type FailureKind string

const (
	// FailExited: the connection ended (EOF, reset) or the worker process
	// was reaped — the peer is gone. Detected immediately by the router or
	// the process-exit watcher.
	FailExited FailureKind = "exited"
	// FailHeartbeat: no frame (not even a heartbeat) arrived within the
	// liveness window — the peer process is stalled (SIGSTOP, livelock) or
	// the network path is wedged. Detected within interval x miss budget.
	FailHeartbeat FailureKind = "heartbeat-timeout"
	// FailFrameDecode: the peer sent bytes that do not decode as a legal
	// frame (lying length prefix, unknown kind, truncated or malformed
	// payload) — the stream is unsynchronized and cannot be trusted.
	FailFrameDecode FailureKind = "frame-decode"
	// FailProtocol: frames decoded fine but violated the stepwise protocol
	// (wrong ack kind, unexpected payload type, data frame for an
	// out-of-range rank).
	FailProtocol FailureKind = "protocol-violation"
)

// WorkerFailure is the typed error for a failed coordinator<->worker link:
// the distributed analogue of supervise.RankFailure. The supervised engine
// recognizes it via errors.As and heals by rolling back to the newest
// valid checkpoint and respawning (or rescaling away) the dead proc.
type WorkerFailure struct {
	// Proc is the failed worker process index, or -1 when the failure
	// could not be attributed to a specific proc (e.g. a process-exit
	// watcher racing accept-order identity assignment).
	Proc int
	// Ranks is the block of ranks the proc hosted (nil when Proc is -1).
	Ranks []int
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the underlying transport or protocol error.
	Err error
	// Forensics describes the last frame seen from the proc before the
	// failure — the distributed mirror of the comm watchdog's per-rank
	// dumps, answering "how far did it get" without attaching a debugger.
	Forensics string
}

func (f *WorkerFailure) Error() string {
	msg := fmt.Sprintf("distrib: worker %d (ranks %v) failed [%s]: %v", f.Proc, f.Ranks, f.Kind, f.Err)
	if f.Forensics != "" {
		msg += "; " + f.Forensics
	}
	return msg
}

func (f *WorkerFailure) Unwrap() error { return f.Err }

// Worker chaos kinds, fired deterministically at a configured step.
const (
	// ChaosExit closes the worker's coordinator connection and exits the
	// worker mid-run — the deterministic twin of kill -9.
	ChaosExit = "exit"
	// ChaosStall suspends the worker's heartbeats and event loop for the
	// configured duration — the deterministic twin of SIGSTOP.
	ChaosStall = "stall"
	// ChaosGarbage writes a lying length prefix (0xFFFFFFFF) onto the
	// wire, desynchronizing the stream.
	ChaosGarbage = "garbage"
)

// WorkerChaos injects one deterministic worker failure: proc Proc fires
// Kind immediately before executing absolute step Step. Shipping the
// trigger inside the wire spec (rather than sending real signals) keeps
// the scenarios deterministic, race-clean, and equally applicable to
// goroutine-hosted and exec'd workers; cmd/chaos and tcp_smoke.sh replay
// the same kinds against real mdrank processes.
//
// The trigger is one-shot across restarts: the coordinator marks it spent
// when it first ships, so a supervised run that heals past the failure
// step does not re-fire it on the respawned worker.
type WorkerChaos struct {
	// Proc is the worker process index to sabotage.
	Proc int
	// Step is the absolute step before which the failure fires.
	Step int
	// Kind is one of ChaosExit, ChaosStall, ChaosGarbage.
	Kind string
	// Stall is the suspension length for ChaosStall; pick it longer than
	// the heartbeat window to trigger detection, shorter to prove a brief
	// stall heals without intervention.
	Stall time.Duration

	// spent flips when the coordinator ships the trigger. Unexported: gob
	// ignores it, so a decoded worker-side copy is always unspent.
	spent atomic.Bool
}

// take claims the one-shot trigger; only the first caller wins.
func (c *WorkerChaos) take() bool { return c.spent.CompareAndSwap(false, true) }

// shipCopy builds the field-by-field copy sent to the worker (copying the
// struct whole would copy the atomic).
func (c *WorkerChaos) shipCopy() *WorkerChaos {
	return &WorkerChaos{Proc: c.Proc, Step: c.Step, Kind: c.Kind, Stall: c.Stall}
}

// frameLog records the last frame seen from one proc, for failure
// forensics. One writer (the proc's router goroutine); failure paths on
// other goroutines read it, hence the mutex.
type frameLog struct {
	mu    sync.Mutex
	count int64
	kind  byte
	src   int32
	dst   int32
	tag   int32
	when  time.Time
}

func (l *frameLog) note(f transport.Frame) {
	l.mu.Lock()
	l.count++
	l.kind, l.src, l.dst, l.tag = f.Kind, f.Src, f.Dst, f.Tag
	l.when = time.Now()
	l.mu.Unlock()
}

func (l *frameLog) describe() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return "no frames received from this proc"
	}
	return fmt.Sprintf("last frame: kind=%d src=%d dst=%d tag=%d, %s ago (%d frames total)",
		l.kind, l.src, l.dst, l.tag, time.Since(l.when).Round(time.Millisecond), l.count)
}

// classifyLinkError maps a Recv/forward error to its failure kind.
func classifyLinkError(err error) FailureKind {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return FailHeartbeat
	case errors.Is(err, transport.ErrFrameTooLarge),
		errors.Is(err, transport.ErrMalformedFrame):
		return FailFrameDecode
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return FailExited
	default:
		return FailExited
	}
}
