package distrib

import (
	"fmt"
	"net"
	"sync/atomic"

	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/transport"
)

// peerRemote adapts the coordinator connection to comm.Remote: every
// cross-process send is gob-encoded and framed onto the single peer. The
// Peer's write mutex serializes concurrent senders, preserving each
// goroutine's program-order send sequence — the per-(src,tag) FIFO the
// delivery contract requires. Counters track encoded payload bytes so
// per-process transport stats sum to placement-independent totals.
type peerRemote struct {
	peer   *transport.Peer
	frames atomic.Int64
	bytes  atomic.Int64
}

func (r *peerRemote) Deliver(src, dst, tag int, data any, size int64) error {
	payload, err := transport.EncodePayload(data)
	if err != nil {
		return fmt.Errorf("distrib: encode payload (src %d dst %d tag %d): %w", src, dst, tag, err)
	}
	r.frames.Add(1)
	r.bytes.Add(int64(len(payload)))
	return r.peer.Send(transport.Frame{
		Kind: transport.KindData,
		Src:  int32(src), Dst: int32(dst), Tag: int32(tag),
		Payload: payload,
	})
}

func (r *peerRemote) Stats() (frames, bytes int64) {
	return r.frames.Load(), r.bytes.Load()
}

// RunWorker services one worker process (or goroutine-hosted worker) on
// an established coordinator connection: handshake, build the partial
// engine from the wire spec, then serve Step/Snapshot/Finish commands
// until the final ResultAck. Returns on protocol completion (nil) or the
// first connection/engine fault.
func RunWorker(conn net.Conn) error {
	peer := transport.NewPeer(conn)
	defer peer.Close()

	if err := peer.Send(transport.Frame{Kind: transport.KindHello}); err != nil {
		return fmt.Errorf("distrib: hello: %w", err)
	}
	fr, err := peer.Recv()
	if err != nil {
		return fmt.Errorf("distrib: await spec: %w", err)
	}
	if fr.Kind != transport.KindSpec {
		return fmt.Errorf("distrib: expected spec frame, got kind %d", fr.Kind)
	}
	v, err := transport.DecodePayload(fr.Payload)
	if err != nil {
		return fmt.Errorf("distrib: decode spec: %w", err)
	}
	spec, ok := v.(WireSpec)
	if !ok {
		return fmt.Errorf("distrib: spec payload is %T, want WireSpec", v)
	}

	sendAck := func(kind byte, ack any) error {
		payload, perr := transport.EncodePayload(ack)
		if perr != nil {
			return fmt.Errorf("distrib: encode ack: %w", perr)
		}
		return peer.Send(transport.Frame{Kind: kind, Payload: payload})
	}

	part, err := newPartialFromSpec(&spec, peer)
	if err != nil {
		// Report the construction failure as the ready ack; the
		// coordinator fails Start with this message.
		_ = sendAck(transport.KindStepAck, StepAck{Proc: spec.Proc, Err: errString(err)})
		return err
	}
	if err := sendAck(transport.KindStepAck, StepAck{Proc: spec.Proc}); err != nil {
		return err
	}

	// Reader goroutine: the only consumer of the connection from here on.
	// Data frames are injected into the partial world immediately (PEs
	// block on them mid-batch); control frames queue for the serve loop.
	world := part.World()
	ctrl := make(chan transport.Frame, 4)
	readErr := make(chan error, 1)
	go func() {
		for {
			f, rerr := peer.Recv()
			if rerr != nil {
				readErr <- rerr
				return
			}
			if f.Kind == transport.KindData {
				data, derr := transport.DecodePayload(f.Payload)
				if derr != nil {
					readErr <- fmt.Errorf("distrib: decode data frame: %w", derr)
					return
				}
				if ierr := world.Inject(int(f.Src), int(f.Dst), int(f.Tag), data, 0); ierr != nil {
					readErr <- ierr
					return
				}
				continue
			}
			ctrl <- f
		}
	}()

	for {
		select {
		case rerr := <-readErr:
			return rerr
		case f := <-ctrl:
			switch f.Kind {
			case transport.KindStep:
				serr := part.Step(int(f.Tag))
				ack := StepAck{
					Proc:      spec.Proc,
					Stats:     part.TakeStats(),
					Transport: part.TransportStats(),
					Err:       errString(serr),
				}
				ack.Msgs, ack.Bytes = part.Stats()
				if err := sendAck(transport.KindStepAck, ack); err != nil {
					return err
				}
			case transport.KindSnapshot:
				frames, serr := part.SnapshotLocal()
				ack := SnapAck{Proc: spec.Proc, Frames: frames, Err: errString(serr)}
				ack.Msgs, ack.Bytes = part.Stats()
				if err := sendAck(transport.KindSnapAck, ack); err != nil {
					return err
				}
			case transport.KindFinish:
				res, ferr := part.Finish()
				ack := ResultAck{Proc: spec.Proc, Err: errString(ferr)}
				if res != nil {
					ack.Final = res.Final
					ack.Msgs, ack.Bytes = res.CommMsgs, res.CommBytes
					ack.Faults = res.Faults
				}
				if err := sendAck(transport.KindResultAck, ack); err != nil {
					return err
				}
				// Hold the connection open until the coordinator closes
				// it: tearing down first would race our final ack
				// against the EOF on the coordinator's router, turning a
				// clean shutdown into a spurious connection fault.
				<-readErr
				return nil
			default:
				return fmt.Errorf("distrib: unexpected control frame kind %d", f.Kind)
			}
		}
	}
}

// newPartialFromSpec builds this process's share of the engine. The
// remote must exist before NewPartial so the spawned PEs can send during
// step-0 force construction; incoming frames buffer in the kernel until
// the caller's reader goroutine starts draining, moments later.
func newPartialFromSpec(spec *WireSpec, peer *transport.Peer) (*core.Partial, error) {
	cfg, sys, err := spec.buildConfig()
	if err != nil {
		return nil, err
	}
	var remote comm.Remote = &peerRemote{peer: peer}
	return core.NewPartial(cfg, sys, spec.Ranks, remote)
}
