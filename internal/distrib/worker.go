package distrib

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"permcell/internal/comm"
	"permcell/internal/core"
	"permcell/internal/transport"
)

// peerRemote adapts the coordinator connection to comm.Remote: every
// cross-process send is gob-encoded and framed onto the single peer. The
// Peer's write mutex serializes concurrent senders, preserving each
// goroutine's program-order send sequence — the per-(src,tag) FIFO the
// delivery contract requires. Counters track encoded payload bytes so
// per-process transport stats sum to placement-independent totals.
type peerRemote struct {
	peer   *transport.Peer
	frames atomic.Int64
	bytes  atomic.Int64
}

func (r *peerRemote) Deliver(src, dst, tag int, data any, size int64) error {
	payload, err := transport.EncodePayload(data)
	if err != nil {
		return fmt.Errorf("distrib: encode payload (src %d dst %d tag %d): %w", src, dst, tag, err)
	}
	r.frames.Add(1)
	r.bytes.Add(int64(len(payload)))
	return r.peer.Send(transport.Frame{
		Kind: transport.KindData,
		Src:  int32(src), Dst: int32(dst), Tag: int32(tag),
		Payload: payload,
	})
}

func (r *peerRemote) Stats() (frames, bytes int64) {
	return r.frames.Load(), r.bytes.Load()
}

// WorkerOptions tunes the worker side of the protocol.
type WorkerOptions struct {
	// HandshakeTimeout bounds the hello->spec exchange; 0 selects
	// DefaultHandshakeTimeout. The coordinator passes its own value to
	// exec'd workers via mdrank's -handshake-timeout flag so both sides
	// give up together.
	HandshakeTimeout time.Duration
}

// RunWorker services one worker process (or goroutine-hosted worker) on
// an established coordinator connection with default options.
func RunWorker(conn net.Conn) error {
	return RunWorkerWith(conn, WorkerOptions{})
}

// RunWorkerWith services one worker connection: handshake, build the
// partial engine from the wire spec, then serve Step/Snapshot/Finish
// commands until the final ResultAck. Returns on protocol completion
// (nil) or the first connection/engine fault.
//
// Liveness is symmetric: once the spec arrives the worker heartbeats at
// the spec's cadence and arms the same read window on its own receives,
// so a dead or wedged coordinator kills the worker within the window
// instead of leaving an orphan process holding the engine.
func RunWorkerWith(conn net.Conn, opts WorkerOptions) error {
	peer := transport.NewPeer(conn)
	defer peer.Close()

	handshake := opts.HandshakeTimeout
	if handshake <= 0 {
		handshake = DefaultHandshakeTimeout
	}

	if err := peer.Send(transport.Frame{Kind: transport.KindHello}); err != nil {
		return fmt.Errorf("distrib: hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(handshake))
	fr, err := peer.Recv()
	if err != nil {
		return fmt.Errorf("distrib: await spec: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if fr.Kind != transport.KindSpec {
		return fmt.Errorf("distrib: expected spec frame, got kind %d", fr.Kind)
	}
	v, err := transport.DecodePayload(fr.Payload)
	if err != nil {
		return fmt.Errorf("distrib: decode spec: %w", err)
	}
	spec, ok := v.(WireSpec)
	if !ok {
		return fmt.Errorf("distrib: spec payload is %T, want WireSpec", v)
	}

	// Arm liveness before engine construction: the coordinator's read
	// window is already ticking, so heartbeats must flow while NewPartial
	// builds (which can be slow for large systems). hbPause models a
	// stalled process for ChaosStall — a SIGSTOP'd worker's heartbeat
	// goroutine stops too.
	var hbPause atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	if spec.HeartbeatEvery > 0 {
		misses := spec.HeartbeatMisses
		if misses <= 0 {
			misses = DefaultHeartbeatMisses
		}
		window := spec.HeartbeatEvery * time.Duration(misses)
		peer.SetTimeouts(window, window)
		go func() {
			t := time.NewTicker(spec.HeartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if hbPause.Load() {
						continue
					}
					if peer.Send(transport.Frame{Kind: transport.KindHeartbeat, Src: int32(spec.Proc), Dst: -1}) != nil {
						return
					}
				}
			}
		}()
	}

	sendAck := func(kind byte, ack any) error {
		payload, perr := transport.EncodePayload(ack)
		if perr != nil {
			return fmt.Errorf("distrib: encode ack: %w", perr)
		}
		return peer.Send(transport.Frame{Kind: kind, Payload: payload})
	}

	part, err := newPartialFromSpec(&spec, peer)
	if err != nil {
		// Report the construction failure as the ready ack; the
		// coordinator fails Start with this message.
		_ = sendAck(transport.KindStepAck, StepAck{Proc: spec.Proc, Err: errString(err)})
		return err
	}
	if err := sendAck(transport.KindStepAck, StepAck{Proc: spec.Proc}); err != nil {
		return err
	}

	// Reader goroutine: the only consumer of the connection from here on.
	// Data frames are injected into the partial world immediately (PEs
	// block on them mid-batch); heartbeats are dropped after proving
	// liveness (arming the read deadline happens per Recv); control
	// frames queue for the serve loop.
	world := part.World()
	ctrl := make(chan transport.Frame, 4)
	readErr := make(chan error, 1)
	// When the link dies the serve loop may be blocked inside part.Step
	// waiting on halo data that will never arrive, so a read error must
	// also poison the world: blocked ranks unwind through the trap, Step
	// returns, and the process exits instead of orphaning itself.
	fail := func(rerr error) {
		world.Poison(rerr.Error())
		readErr <- rerr
	}
	go func() {
		for {
			f, rerr := peer.Recv()
			if rerr != nil {
				fail(rerr)
				return
			}
			switch f.Kind {
			case transport.KindHeartbeat:
				continue
			case transport.KindData:
				data, derr := transport.DecodePayload(f.Payload)
				if derr != nil {
					fail(fmt.Errorf("distrib: decode data frame: %w", derr))
					return
				}
				if ierr := world.Inject(int(f.Src), int(f.Dst), int(f.Tag), data, 0); ierr != nil {
					fail(ierr)
					return
				}
			default:
				ctrl <- f
			}
		}
	}()

	// Absolute-step tracking for deterministic chaos: the trigger fires
	// immediately before the batch that would execute its step.
	base := 0
	if spec.Restore != nil {
		base = spec.Restore.Step
	}
	stepped := 0
	chaos := spec.Chaos

	for {
		select {
		case rerr := <-readErr:
			return rerr
		case f := <-ctrl:
			switch f.Kind {
			case transport.KindStep:
				n := int(f.Tag)
				if chaos != nil && chaos.Step > base+stepped && chaos.Step <= base+stepped+n {
					if err := fireChaos(chaos, conn, peer, &hbPause); err != nil {
						return err
					}
					chaos = nil
				}
				serr := part.Step(n)
				if serr == nil {
					stepped += n
				}
				ack := StepAck{
					Proc:      spec.Proc,
					Stats:     part.TakeStats(),
					Transport: part.TransportStats(),
					Failure:   wireFailure(serr),
					Err:       errString(serr),
				}
				ack.Msgs, ack.Bytes = part.Stats()
				if err := sendAck(transport.KindStepAck, ack); err != nil {
					return err
				}
			case transport.KindSnapshot:
				frames, serr := part.SnapshotLocal()
				ack := SnapAck{Proc: spec.Proc, Frames: frames, Err: errString(serr)}
				ack.Msgs, ack.Bytes = part.Stats()
				if err := sendAck(transport.KindSnapAck, ack); err != nil {
					return err
				}
			case transport.KindFinish:
				res, ferr := part.Finish()
				ack := ResultAck{Proc: spec.Proc, Err: errString(ferr)}
				if res != nil {
					ack.Final = res.Final
					ack.Msgs, ack.Bytes = res.CommMsgs, res.CommBytes
					ack.Faults = res.Faults
				}
				if err := sendAck(transport.KindResultAck, ack); err != nil {
					return err
				}
				// Hold the connection open until the coordinator closes
				// it: tearing down first would race our final ack
				// against the EOF on the coordinator's router, turning a
				// clean shutdown into a spurious connection fault.
				<-readErr
				return nil
			default:
				return fmt.Errorf("distrib: unexpected control frame kind %d", f.Kind)
			}
		}
	}
}

// fireChaos executes one injected failure. Exit and garbage return an
// error (the worker dies, as the real fault would); a stall returns nil
// and the worker resumes — whether the run survives depends on whether
// the stall outlasted the coordinator's heartbeat window, exactly like a
// real SIGSTOP/SIGCONT pair.
func fireChaos(c *WorkerChaos, conn net.Conn, peer *transport.Peer, hbPause *atomic.Bool) error {
	switch c.Kind {
	case ChaosExit:
		peer.Close()
		return fmt.Errorf("distrib: chaos: worker %d exiting before step %d", c.Proc, c.Step)
	case ChaosStall:
		hbPause.Store(true)
		time.Sleep(c.Stall)
		hbPause.Store(false)
		return nil
	case ChaosGarbage:
		// A lying length prefix: 0xFFFFFFFF decodes as a frame far over
		// MaxPayload, desynchronizing the stream. Raw conn writes are
		// stream-atomic per call, so this lands between frames, not
		// inside a concurrent heartbeat. Linger with the socket open so
		// the coordinator's reader hits the bad length (frame-decode)
		// rather than racing it with a broken pipe from our own exit.
		hbPause.Store(true)
		conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
		time.Sleep(time.Second)
		return fmt.Errorf("distrib: chaos: worker %d wrote garbage before step %d", c.Proc, c.Step)
	default:
		return fmt.Errorf("distrib: chaos: unknown kind %q", c.Kind)
	}
}

// newPartialFromSpec builds this process's share of the engine. The
// remote must exist before NewPartial so the spawned PEs can send during
// step-0 force construction; incoming frames buffer in the kernel until
// the caller's reader goroutine starts draining, moments later.
func newPartialFromSpec(spec *WireSpec, peer *transport.Peer) (*core.Partial, error) {
	cfg, sys, err := spec.buildConfig()
	if err != nil {
		return nil, err
	}
	var remote comm.Remote = &peerRemote{peer: peer}
	return core.NewPartial(cfg, sys, spec.Ranks, remote)
}
