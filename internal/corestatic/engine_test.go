package corestatic

import (
	"testing"

	"permcell/internal/decomp"
)

// TestEngineMatchesRun drives the stepwise engine over uneven batches and
// demands the exact Result the one-shot Run produces for the same total
// step count.
func TestEngineMatchesRun(t *testing.T) {
	cases := []struct {
		name  string
		shape decomp.Shape
		p     int
	}{
		{"plane", decomp.Plane, 8},
		{"pillar", decomp.SquarePillar, 4},
		{"cube", decomp.Cube, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, g := testSystem(t, 8, 0.3, 51)
			cfg := cfgFor(c.shape, c.p, g)
			const steps = 8

			ref, err := Run(cfg, sys, steps)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(cfg, sys)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{2, 5, 1} {
				if err := eng.Step(batch); err != nil {
					t.Fatal(err)
				}
			}
			res, err := eng.Finish()
			if err != nil {
				t.Fatal(err)
			}

			if len(res.Stats) != len(ref.Stats) {
				t.Fatalf("stats length %d vs %d", len(res.Stats), len(ref.Stats))
			}
			for i := range ref.Stats {
				// Wall-clock fields are non-deterministic across runs;
				// everything else must be bit-identical.
				a, b := res.Stats[i], ref.Stats[i]
				a.StepWallMax, a.StepWallAve = 0, 0
				b.StepWallMax, b.StepWallAve = 0, 0
				if a != b {
					t.Fatalf("step %d stats diverged: %+v vs %+v", ref.Stats[i].Step, res.Stats[i], ref.Stats[i])
				}
			}
			for i := range ref.Final.Pos {
				if res.Final.Pos[i] != ref.Final.Pos[i] || res.Final.Vel[i] != ref.Final.Vel[i] {
					t.Fatalf("particle %d state differs between stepwise and Run", ref.Final.ID[i])
				}
			}
		})
	}
}
