// Package corestatic is a parallel MD engine over an arbitrary *static*
// domain decomposition — plane, square pillar, or cube (Fig. 2). It shares
// the force kernel and message-passing substrate with internal/core but
// carries no load balancing: it exists to compare the three domain shapes'
// runtime communication behaviour (ghost volume, neighbor counts) as
// running code, complementing the closed-form analysis in internal/decomp.
package corestatic

import (
	"fmt"
	"math"
	"sort"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/decomp"
	"permcell/internal/integrator"
	"permcell/internal/kernel"
	"permcell/internal/metrics"
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/supervise"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// Config describes one static-decomposition run.
type Config struct {
	Shape decomp.Shape
	P     int
	Grid  space.Grid
	Pair  potential.Pair
	Ext   potential.External
	Dt    float64
	// Tref and RescaleEvery configure the thermostat (0 disables).
	Tref         float64
	RescaleEvery int
	// Shards is the per-PE force-kernel worker count (<= 1 = serial), as
	// in core.Config. Negative values are rejected.
	Shards int
	// Metrics enables the per-PE phase timing layer, as in core.Config.
	Metrics bool

	// Faults, Watchdog and InboxCap configure the comm chaos layer,
	// exactly as in internal/core.Config.
	Faults   *comm.FaultPlan
	Watchdog time.Duration
	InboxCap int

	// Guard and Sabotage mirror core.Config: runtime physics guards
	// (finiteness, conservation, energy drift) evaluated at the per-step
	// census, and a scripted one-shot fault for chaos-testing recovery.
	Guard    *supervise.GuardConfig
	Sabotage *supervise.Sabotage

	// Restore, when non-nil, starts the run from a distributed snapshot
	// instead of distributing sys, exactly as in core.Config: each SPE
	// takes its frame's particles in their recorded order and step
	// numbering continues from Restore.Step. Ownership is implied by the
	// static decomposition, so frames carry no column sets here.
	Restore *checkpoint.EngineState
}

// StepStats is the per-step record. The static engine reports only the
// work census, ghost surface, energy and (under Metrics) the phase
// breakdown; it computes no temperature or concentration census, so the
// shared facade record leaves those fields zero.
type StepStats struct {
	Step                      int
	WorkMax, WorkAve, WorkMin float64
	// GhostCellsMax is the largest per-PE count of imported cells this
	// step (the communication surface the shape analysis predicts).
	GhostCellsMax int
	TotalEnergy   float64
	// StepWallMax/StepWallAve are the slowest-PE and PE-average whole-step
	// wall times.
	StepWallMax, StepWallAve float64
	// Phases is the cross-PE phase breakdown (zero unless Config.Metrics).
	Phases metrics.Breakdown
}

// Result is the outcome of a run.
type Result struct {
	Stats               []StepStats
	Final               *particle.Set
	CommMsgs, CommBytes int64
	// Faults counts injected communication faults (zero without a plan).
	Faults comm.FaultStats
}

// message tags (fixed; per-pair FIFO keeps steps aligned, as in core).
const (
	tagMigrate = iota + 1
	tagNeed
	tagHalo
)

// Stepwise command sentinels (positive values are batch sizes), as in core.
const (
	cmdFinish   = -1
	cmdSnapshot = -2
)

type cellBlock struct {
	Cell int
	Pos  []vec.V
}

// setup validates cfg, applies defaults, and builds the decomposition and
// comm world shared by Run and NewEngine.
func setup(cfg *Config) (*decomp.Decomposition, *comm.World, error) {
	if cfg.Pair == nil || cfg.Dt <= 0 || cfg.Grid.NumCells() == 0 {
		return nil, nil, fmt.Errorf("corestatic: incomplete config")
	}
	if cfg.Shards < 0 {
		return nil, nil, fmt.Errorf("corestatic: Shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.Restore != nil {
		if err := cfg.Restore.Validate(cfg.P); err != nil {
			return nil, nil, err
		}
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	var d *decomp.Decomposition
	var err error
	switch cfg.Shape {
	case decomp.Plane:
		d, err = decomp.NewPlane(cfg.Grid, cfg.P)
	case decomp.SquarePillar:
		d, err = decomp.NewSquarePillar(cfg.Grid, cfg.P)
	case decomp.Cube:
		d, err = decomp.NewCube(cfg.Grid, cfg.P)
	default:
		err = fmt.Errorf("corestatic: unknown shape %v", cfg.Shape)
	}
	if err != nil {
		return nil, nil, err
	}
	var opts []comm.Option
	if cfg.InboxCap > 0 {
		opts = append(opts, comm.WithInboxCapacity(cfg.InboxCap))
	}
	if cfg.Faults != nil {
		opts = append(opts, comm.WithFaults(*cfg.Faults))
	}
	// Batch-scoped progress tracking: both Run and the stepwise engine
	// watch sections (Run's whole lifetime is one section), so a watchdog
	// arms tracking on either path.
	if cfg.Watchdog > 0 {
		opts = append(opts, comm.WithTracking())
	}
	world, err := comm.NewWorld(cfg.P, opts...)
	if err != nil {
		return nil, nil, err
	}
	return d, world, nil
}

// awaitBatch waits for one batch of SPE work under both failure detectors
// (comm watchdog, panic trap), exactly as internal/core's helper: a
// recorded failure wins over the deadlock it causes.
func awaitBatch(w *comm.World, timeout time.Duration, done <-chan struct{}, trap *supervise.Trap) error {
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		select {
		case <-done:
		case <-trap.Failed():
		}
	}()
	err := w.WatchSection(timeout, merged)
	if terr := trap.Err(); terr != nil {
		return terr
	}
	return err
}

// Run executes steps time steps on the given system.
func Run(cfg Config, sys workload.System, steps int) (*Result, error) {
	d, world, err := setup(&cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	trap := supervise.NewTrap()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		world.Run(func(c *comm.Comm) {
			defer trap.Catch(c.Rank())
			newSPE(c, &cfg, d, sys).run(steps, res)
		})
	}()
	if err := awaitBatch(world, cfg.Watchdog, runDone, trap); err != nil {
		return nil, err
	}
	res.CommMsgs, res.CommBytes = world.Stats()
	res.Faults = world.FaultStats()
	if cfg.Restore != nil {
		res.CommMsgs += cfg.Restore.CommMsgs
		res.CommBytes += cfg.Restore.CommBytes
	}
	return res, nil
}

// spe is one static-decomposition processing element.
type spe struct {
	c   *comm.Comm
	cfg *Config
	d   *decomp.Decomposition
	nbs []int // neighbor ranks, ascending

	set particle.Set
	cl  *kernel.CellLists

	lastWork  float64
	lastWall  float64
	potE      float64
	ghostSeen int
	initN     int64 // global particle count at step 0 (Guard only)
	step0     int   // absolute step the run starts at (checkpoint restore)

	// Energy-drift guard reference (first census of this incarnation), as
	// in core.pe.
	guardE0    float64
	guardE0Set bool

	tm *metrics.Timer // per-phase timing; nil unless cfg.Metrics
}

// send delivers a protocol message via SendReliable, attributing it to
// phase ph; exhausted retries are a fatal transport failure, as in
// internal/core.
func (p *spe) send(ph metrics.Phase, dst, tag int, data any, size int64) {
	if err := p.c.SendReliableSized(dst, tag, data, size); err != nil {
		panic(fmt.Sprintf("corestatic: rank %d: %v", p.c.Rank(), err))
	}
	p.tm.Count(ph, 1, size)
}

func newSPE(c *comm.Comm, cfg *Config, d *decomp.Decomposition, sys workload.System) *spe {
	p := &spe{
		c: c, cfg: cfg, d: d,
		cl: kernel.NewCellLists(cfg.Grid, cfg.Shards),
	}
	if cfg.Metrics {
		p.tm = &metrics.Timer{}
	}
	p.nbs = append(p.nbs, d.NeighborRanks(c.Rank())...)
	sort.Ints(p.nbs)
	// The decomposition is static: the cell-list topology is built once.
	p.cl.SetHosted(d.CellsOf(c.Rank()))
	if cfg.Restore != nil {
		// Checkpoint restore: this rank's frame, in its recorded live order
		// (array order drives force summation order; see core.newPE).
		p.step0 = cfg.Restore.Step
		fr := &cfg.Restore.Frames[c.Rank()]
		for i := range fr.ID {
			p.set.Add(fr.ID[i], fr.Pos[i], fr.Vel[i])
		}
		return p
	}
	g := cfg.Grid
	for i := range sys.Set.Pos {
		if d.OwnerOf(g.CellOf(sys.Set.Pos[i])) == c.Rank() {
			p.set.Add(sys.Set.ID[i], sys.Set.Pos[i], sys.Set.Vel[i])
		}
	}
	return p
}

func (p *spe) init() {
	p.rebuild()
	p.haloExchange()
	p.computeForces()
	if p.cfg.guardOn() {
		p.initN = p.c.AllreduceInt64(int64(p.set.Len()), comm.SumI)
	}
	// Drain the step-0 accumulation so the first step's phase sample covers
	// only work inside its own wall-clock window.
	p.tm.TakeSample()
}

func (p *spe) oneStep(step int, res *Result) {
	if s := p.cfg.Sabotage; s != nil && s.Kind == supervise.SabotagePanic && s.TryFire(step, p.c.Rank()) {
		panic(fmt.Sprintf("corestatic: rank %d: injected sabotage panic at step %d", p.c.Rank(), step))
	}
	t0 := time.Now()
	ti := p.tm.Start()
	integrator.HalfKick(&p.set, p.cfg.Dt)
	integrator.Drift(&p.set, p.cfg.Dt, p.cfg.Grid.Box)
	p.tm.Stop(metrics.PhaseIntegrate, ti)
	tmg := p.tm.Start()
	p.migrate()
	p.rebuild()
	p.tm.Stop(metrics.PhaseMigrate, tmg)
	th := p.tm.Start()
	p.haloExchange()
	p.tm.Stop(metrics.PhaseHalo, th)
	p.computeForces()
	ti = p.tm.Start()
	integrator.HalfKick(&p.set, p.cfg.Dt)
	p.tm.Stop(metrics.PhaseIntegrate, ti)
	if p.cfg.RescaleEvery > 0 && step%p.cfg.RescaleEvery == 0 {
		tc := p.tm.Start()
		ke := p.c.AllreduceFloat64(p.set.KineticEnergy(), comm.Sum)
		n := p.c.AllreduceInt64(int64(p.set.Len()), comm.SumI)
		integrator.Rescale(&p.set, integrator.RescaleFactor(ke, int(n), p.cfg.Tref))
		p.tm.Stop(metrics.PhaseCollective, tc)
	}
	// NaN sabotage corrupts a velocity right before the census so the
	// finite guard is what catches it, as in core.
	if s := p.cfg.Sabotage; s != nil && s.Kind == supervise.SabotageNaN &&
		s.TryFire(step, p.c.Rank()) && p.set.Len() > 0 {
		p.set.Vel[0].X = math.NaN()
	}
	p.collectStats(step, time.Since(t0).Seconds(), res)
}

func (p *spe) run(steps int, res *Result) {
	defer p.cl.Close()
	p.init()
	for i := 1; i <= steps; i++ {
		p.oneStep(p.step0+i, res)
	}
	p.gatherFinal(res)
}

// runStepwise is run under driver command, exactly as core's pe.runStepwise:
// each value on cmd is a batch size (cmdFinish ends the run, cmdSnapshot
// serializes this SPE's shard into snap), acked per command.
func (p *spe) runStepwise(cmd <-chan int, ack chan<- struct{}, res *Result, snap []checkpoint.Frame) {
	defer p.cl.Close()
	p.init()
	step := p.step0
	for n := range cmd {
		if n == cmdSnapshot {
			p.snapshot(snap)
			ack <- struct{}{}
			continue
		}
		if n < 0 {
			break
		}
		for i := 0; i < n; i++ {
			step++
			p.oneStep(step, res)
		}
		ack <- struct{}{}
	}
	p.gatherFinal(res)
}

// snapshot serializes this SPE's shard into its slot of the shared frame
// slice (no column set: ownership is the static decomposition). The ack
// that follows is the happens-before edge to the driver's read.
func (p *spe) snapshot(snap []checkpoint.Frame) {
	if err := p.c.Quiesced(); err != nil {
		panic(fmt.Sprintf("corestatic: rank %d snapshot: %v", p.c.Rank(), err))
	}
	checkpoint.CaptureFrame(&snap[p.c.Rank()], p.c.Rank(), &p.set, nil)
}

func (p *spe) rebuild() {
	if bad := p.cl.Bin(p.set.Pos); bad >= 0 {
		panic(fmt.Sprintf("corestatic: rank %d holds particle %d in foreign cell %d",
			p.c.Rank(), p.set.ID[bad], p.cfg.Grid.CellOf(p.set.Pos[bad])))
	}
}

func (p *spe) migrate() {
	g := p.cfg.Grid
	out := make(map[int][]particle.One)
	for i := 0; i < p.set.Len(); {
		owner := p.d.OwnerOf(g.CellOf(p.set.Pos[i]))
		if owner != p.c.Rank() {
			if !containsInt(p.nbs, owner) {
				panic(fmt.Sprintf("corestatic: rank %d: particle migrating to non-neighbor %d (time step too large?)",
					p.c.Rank(), owner))
			}
			out[owner] = append(out[owner], p.set.Extract(i))
			p.set.RemoveSwap(i)
			continue
		}
		i++
	}
	for _, nb := range p.nbs {
		msg := out[nb]
		sort.Slice(msg, func(a, b int) bool { return msg[a].ID < msg[b].ID })
		p.send(metrics.PhaseMigrate, nb, tagMigrate, msg, int64(len(msg))*48)
	}
	for _, nb := range p.nbs {
		for _, one := range p.c.Recv(nb, tagMigrate).([]particle.One) {
			p.set.AddOne(one)
		}
	}
}

func (p *spe) haloExchange() {
	need := make(map[int][]int)
	for _, nc := range p.cl.GhostCells() {
		need[p.d.OwnerOf(nc)] = append(need[p.d.OwnerOf(nc)], nc)
	}
	p.ghostSeen = len(p.cl.GhostCells())
	for _, nb := range p.nbs {
		p.send(metrics.PhaseHalo, nb, tagNeed, need[nb], 0)
	}
	for _, nb := range p.nbs {
		req := p.c.Recv(nb, tagNeed).([]int)
		resp := make([]cellBlock, 0, len(req))
		var bytes int64
		for _, cell := range req {
			idx, ok := p.cl.CellParticles(cell)
			if !ok {
				panic(fmt.Sprintf("corestatic: rank %d asked for foreign cell %d", p.c.Rank(), cell))
			}
			blk := cellBlock{Cell: cell, Pos: make([]vec.V, len(idx))}
			for k, i := range idx {
				blk.Pos[k] = p.set.Pos[i]
			}
			bytes += int64(len(idx)) * 24
			resp = append(resp, blk)
		}
		p.send(metrics.PhaseHalo, nb, tagHalo, resp, bytes)
	}
	p.cl.ClearGhosts()
	for _, nb := range p.nbs {
		for _, blk := range p.c.Recv(nb, tagHalo).([]cellBlock) {
			p.cl.StageGhost(blk.Cell, blk.Pos)
		}
	}
	p.cl.SealGhosts()
}

func (p *spe) computeForces() {
	p.set.ZeroForces()
	t0 := time.Now()
	potE, _, pairs := p.cl.Compute(p.cfg.Pair, &p.set)
	potE += kernel.ExternalForces(p.cfg.Ext, &p.set)
	p.potE = potE
	p.lastWall = time.Since(t0).Seconds()
	p.lastWork = float64(pairs)
	p.tm.Add(metrics.PhaseForce, p.lastWall)
}

type record struct {
	Work   float64
	Step   float64 // whole-step wall seconds
	Ghosts int
	PotE   float64
	KinE   float64
	N      int
	Phases metrics.Sample // zero unless cfg.Metrics
}

func (p *spe) collectStats(step int, stepWall float64, res *Result) {
	if p.cfg.guardOn() {
		p.guardFinite(step)
	}
	rec := record{
		Work: p.lastWork, Step: stepWall, Ghosts: p.ghostSeen,
		PotE: p.potE, KinE: p.set.KineticEnergy(), N: p.set.Len(),
		Phases: p.tm.TakeSample(),
	}
	all := p.c.Allgather(rec)
	if p.c.Rank() != 0 {
		return
	}
	st := StepStats{Step: step, WorkMin: -1}
	var totalN int
	for _, a := range all {
		r := a.(record)
		st.WorkMax = max(st.WorkMax, r.Work)
		if st.WorkMin < 0 || r.Work < st.WorkMin {
			st.WorkMin = r.Work
		}
		st.WorkAve += r.Work
		st.GhostCellsMax = max(st.GhostCellsMax, r.Ghosts)
		st.TotalEnergy += r.PotE + r.KinE
		st.StepWallMax = max(st.StepWallMax, r.Step)
		st.StepWallAve += r.Step
		totalN += r.N
		st.Phases.Fold(r.Phases)
	}
	st.WorkAve /= float64(len(all))
	st.StepWallAve /= float64(len(all))
	st.Phases.Finalize(len(all))
	if p.cfg.guardOn() {
		p.guardGlobal(step, st.TotalEnergy, totalN)
	}
	res.Stats = append(res.Stats, st)
}

// guardFinite is the per-rank physics guard (finite positions and
// velocities), run before the census so a corrupt step never reaches the
// trace or a checkpoint; see core.pe.guardFinite.
func (p *spe) guardFinite(step int) {
	for i := range p.set.Pos {
		if !p.set.Pos[i].IsFinite() || !p.set.Vel[i].IsFinite() {
			panic(&supervise.GuardViolation{
				Rank: p.c.Rank(), Step: step, Check: "finite",
				Detail: fmt.Sprintf("particle %d pos=%v vel=%v", p.set.ID[i], p.set.Pos[i], p.set.Vel[i]),
			})
		}
	}
}

// guardGlobal runs the rank-0 guards over the folded census; see
// core.pe.guardGlobal.
func (p *spe) guardGlobal(step int, energy float64, totalN int) {
	if math.IsNaN(energy) || math.IsInf(energy, 0) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "finite",
			Detail: fmt.Sprintf("total energy %g", energy),
		})
	}
	if totalN != int(p.initN) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "conservation",
			Detail: fmt.Sprintf("global particle count %d, want %d", totalN, p.initN),
		})
	}
	drift := p.cfg.Guard.Drift()
	if drift <= 0 {
		return
	}
	if !p.guardE0Set {
		p.guardE0, p.guardE0Set = energy, true
		return
	}
	if math.Abs(energy-p.guardE0) > drift*math.Max(1, math.Abs(p.guardE0)) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "energy-drift",
			Detail: fmt.Sprintf("total energy %g drifted from %g (ceiling %g relative)", energy, p.guardE0, drift),
		})
	}
}

// guardOn reports whether the runtime physics guards are armed.
func (cfg *Config) guardOn() bool { return cfg.Guard != nil && !cfg.Guard.Disabled }

func (p *spe) gatherFinal(res *Result) {
	mine := make([]particle.One, p.set.Len())
	for i := range mine {
		mine[i] = particle.One{ID: p.set.ID[i], Pos: p.set.Pos[i], Vel: p.set.Vel[i]}
	}
	sort.Slice(mine, func(a, b int) bool { return mine[a].ID < mine[b].ID })
	all := p.c.Allgather(mine)
	if p.c.Rank() != 0 {
		return
	}
	final := &particle.Set{}
	for _, a := range all {
		for _, one := range a.([]particle.One) {
			final.AddOne(one)
		}
	}
	final.SortByID()
	res.Final = final
}

func containsInt(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
