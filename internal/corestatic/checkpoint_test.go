package corestatic

import (
	"testing"

	"permcell/internal/decomp"
)

// stepsEqualDeterministic compares the deterministic fields of two step
// records (wall-clock fields differ between any two runs).
func stepsEqualDeterministic(a, b StepStats) bool {
	return a.Step == b.Step &&
		a.WorkMax == b.WorkMax && a.WorkAve == b.WorkAve && a.WorkMin == b.WorkMin &&
		a.GhostCellsMax == b.GhostCellsMax && a.TotalEnergy == b.TotalEnergy
}

func TestSnapshotResumeBitIdentical(t *testing.T) {
	sys, g := testSystem(t, 4, 0.3, 7)
	const b = 10

	for _, shape := range []decomp.Shape{decomp.SquarePillar, decomp.Cube} {
		t.Run(shape.String(), func(t *testing.T) {
			p := 4
			if shape == decomp.Cube {
				p = 8
			}
			cfg := cfgFor(shape, p, g)

			gRes, err := Run(cfg, sys, 2*b)
			if err != nil {
				t.Fatal(err)
			}

			eng, err := NewEngine(cfg, sys)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Step(b); err != nil {
				t.Fatal(err)
			}
			st, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if st.Step != b {
				t.Fatalf("snapshot at step %d, want %d", st.Step, b)
			}

			// The engine keeps running unperturbed after the snapshot.
			if err := eng.Step(b); err != nil {
				t.Fatal(err)
			}
			cRes, err := eng.Finish()
			if err != nil {
				t.Fatal(err)
			}
			for i := range gRes.Stats {
				if !stepsEqualDeterministic(cRes.Stats[i], gRes.Stats[i]) {
					t.Fatalf("snapshot perturbed the run at record %d", i)
				}
			}

			rcfg := cfg
			rcfg.Restore = st
			resumed, err := NewEngine(rcfg, sys)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.AbsStep() != b {
				t.Fatalf("restored AbsStep %d, want %d", resumed.AbsStep(), b)
			}
			if err := resumed.Step(b); err != nil {
				t.Fatal(err)
			}
			rRes, err := resumed.Finish()
			if err != nil {
				t.Fatal(err)
			}
			for i := range rRes.Stats {
				want := gRes.Stats[b+i]
				if !stepsEqualDeterministic(rRes.Stats[i], want) {
					t.Fatalf("resumed trace diverged at step %d:\n got %+v\nwant %+v",
						rRes.Stats[i].Step, rRes.Stats[i], want)
				}
			}
			if rRes.Final.Len() != gRes.Final.Len() {
				t.Fatalf("final count %d vs %d", rRes.Final.Len(), gRes.Final.Len())
			}
			for i := range gRes.Final.ID {
				if rRes.Final.ID[i] != gRes.Final.ID[i] ||
					rRes.Final.Pos[i] != gRes.Final.Pos[i] ||
					rRes.Final.Vel[i] != gRes.Final.Vel[i] {
					t.Fatalf("final state not bit-identical at particle %d", i)
				}
			}
			if rRes.CommMsgs <= st.CommMsgs {
				t.Fatalf("comm counters did not continue: %d from base %d", rRes.CommMsgs, st.CommMsgs)
			}
		})
	}
}
