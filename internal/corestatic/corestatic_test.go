package corestatic

import (
	"math"
	"testing"

	"permcell/internal/decomp"
	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

func testSystem(t *testing.T, nc int, rho float64, seed uint64) (workload.System, space.Grid) {
	t.Helper()
	l := float64(nc) * 2.5
	n := int(math.Round(rho * l * l * l))
	sys, err := workload.LatticeGas(n, float64(n)/(l*l*l), 0.722, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func cfgFor(shape decomp.Shape, p int, g space.Grid) Config {
	return Config{
		Shape: shape, P: p, Grid: g,
		Pair: potential.NewPaperLJ(),
		Dt:   1e-4, Tref: 0.722, RescaleEvery: 50,
	}
}

func TestRunValidation(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 1)
	cfg := cfgFor(decomp.SquarePillar, 4, g)
	cfg.Pair = nil
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("nil potential accepted")
	}
	cfg = cfgFor(decomp.Shape(9), 4, g)
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("unknown shape accepted")
	}
	cfg = cfgFor(decomp.Cube, 9, g)
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("non-cube P accepted")
	}
}

// TestAllShapesMatchSerial verifies each shape's engine reproduces the
// serial trajectory on the same system.
func TestAllShapesMatchSerial(t *testing.T) {
	sys, g := testSystem(t, 4, 0.3, 2)
	const steps = 8

	ser, err := mdserial.New(mdserial.Config{
		Box: sys.Box, Pair: potential.NewPaperLJ(),
		Dt: 1e-4, Tref: 0.722, RescaleEvery: 50, Grid: g,
	}, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ser.Run(steps)
	serSet := ser.Set()
	serSet.SortByID()

	cases := []struct {
		shape decomp.Shape
		p     int
	}{
		{decomp.Plane, 4},
		{decomp.SquarePillar, 4},
		{decomp.Cube, 8},
	}
	for _, c := range cases {
		res, err := Run(cfgFor(c.shape, c.p, g), sys, steps)
		if err != nil {
			t.Fatalf("%v: %v", c.shape, err)
		}
		if res.Final.Len() != serSet.Len() {
			t.Fatalf("%v: N = %d, want %d", c.shape, res.Final.Len(), serSet.Len())
		}
		for i := range res.Final.ID {
			if d := res.Final.Pos[i].Dist(serSet.Pos[i]); d > 1e-7 {
				t.Fatalf("%v: particle %d diverged by %v", c.shape, res.Final.ID[i], d)
			}
		}
		last := res.Stats[len(res.Stats)-1]
		if rel := math.Abs(last.TotalEnergy-ser.TotalEnergy()) / (1 + math.Abs(ser.TotalEnergy())); rel > 1e-8 {
			t.Errorf("%v: energy %v vs serial %v", c.shape, last.TotalEnergy, ser.TotalEnergy())
		}
	}
}

// TestGhostCountsMatchAnalysis verifies the runtime ghost-cell counts equal
// the closed-form communication surfaces of Section 2.2.
func TestGhostCountsMatchAnalysis(t *testing.T) {
	sys, g := testSystem(t, 8, 0.2, 3)
	cases := []struct {
		shape decomp.Shape
		p     int
	}{
		{decomp.Plane, 4},
		{decomp.SquarePillar, 16},
		{decomp.Cube, 8},
	}
	for _, c := range cases {
		res, err := Run(cfgFor(c.shape, c.p, g), sys, 2)
		if err != nil {
			t.Fatalf("%v: %v", c.shape, err)
		}
		a, err := decomp.AnalyzeSurface(c.shape, 8, c.p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Stats[0].GhostCellsMax
		if got != a.GhostCells {
			t.Errorf("%v: runtime ghosts %d, closed form %d", c.shape, got, a.GhostCells)
		}
	}
}

// TestShapeCommVolumeOrdering verifies the paper's Section 2.2 point as
// observed message bytes: plane imports more halo data than the pillar.
func TestShapeCommVolumeOrdering(t *testing.T) {
	// Same P for both shapes (nc=16 conforms to plane and pillar at P=16):
	// the pillar must move fewer halo bytes, Section 2.2's argument.
	sys, g := testSystem(t, 16, 0.2, 4)
	plane, err := Run(cfgFor(decomp.Plane, 16, g), sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	pillar, err := Run(cfgFor(decomp.SquarePillar, 16, g), sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pillar.CommBytes >= plane.CommBytes {
		t.Errorf("pillar halo bytes %d >= plane %d at equal P", pillar.CommBytes, plane.CommBytes)
	}
}

func TestParticleConservation(t *testing.T) {
	sys, g := testSystem(t, 6, 0.3, 5)
	cfg := cfgFor(decomp.SquarePillar, 9, g)
	cfg.Ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: 0.5, L: sys.Box.L}
	cfg.Dt = 0.005
	res, err := Run(cfg, sys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Fatalf("N %d -> %d", sys.Set.Len(), res.Final.Len())
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
}
