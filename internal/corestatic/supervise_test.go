package corestatic

import (
	"errors"
	"testing"

	"permcell/internal/decomp"
	"permcell/internal/supervise"
)

// TestSabotagePanicBecomesRankFailure mirrors the core engine's test: an
// injected SPE panic surfaces from Step as a typed *supervise.RankFailure,
// and Finish returns the same error without hanging.
func TestSabotagePanicBecomesRankFailure(t *testing.T) {
	sys, g := testSystem(t, 4, 0.3, 11)
	cfg := cfgFor(decomp.SquarePillar, 4, g)
	cfg.Sabotage = &supervise.Sabotage{Kind: supervise.SabotagePanic, Step: 3, Rank: 1}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Step(5)
	var rf *supervise.RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("Step error = %v, want *supervise.RankFailure", err)
	}
	if rf.Rank != 1 {
		t.Errorf("failed rank = %d, want 1", rf.Rank)
	}
	if _, ferr := eng.Finish(); !errors.As(ferr, &rf) {
		t.Fatalf("Finish error = %v, want the rank failure", ferr)
	}
}

// TestSabotageNaNTripsFiniteGuard: the static engine's guard pass must
// catch an injected NaN at the same step's stats collection, before the
// poisoned record lands.
func TestSabotageNaNTripsFiniteGuard(t *testing.T) {
	sys, g := testSystem(t, 4, 0.3, 11)
	cfg := cfgFor(decomp.SquarePillar, 4, g)
	cfg.Guard = &supervise.GuardConfig{}
	cfg.Sabotage = &supervise.Sabotage{Kind: supervise.SabotageNaN, Step: 3, Rank: 2}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Step(5)
	var gv *supervise.GuardViolation
	if !errors.As(err, &gv) {
		t.Fatalf("Step error = %v, want *supervise.GuardViolation", err)
	}
	if gv.Check != "finite" || gv.Step != 3 {
		t.Errorf("violation = %+v, want finite check at step 3", gv)
	}
	for _, st := range eng.Stats() {
		if st.Step >= 3 {
			t.Fatalf("poisoned step %d leaked into stats", st.Step)
		}
	}
}

// TestGuardsAreTraceNeutral: guards observe without changing the physics.
func TestGuardsAreTraceNeutral(t *testing.T) {
	sys, g := testSystem(t, 4, 0.3, 11)
	cfg := cfgFor(decomp.SquarePillar, 4, g)
	plain, err := Run(cfg, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Guard = &supervise.GuardConfig{}
	guarded, err := Run(cfg, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stats) != len(guarded.Stats) {
		t.Fatalf("stats length %d vs %d", len(plain.Stats), len(guarded.Stats))
	}
	for i := range plain.Stats {
		a, b := plain.Stats[i], guarded.Stats[i]
		if a.Step != b.Step || a.TotalEnergy != b.TotalEnergy ||
			a.WorkMax != b.WorkMax || a.WorkAve != b.WorkAve {
			t.Fatalf("step %d diverged under guards: %+v vs %+v", a.Step, a, b)
		}
	}
}
