package corestatic

import (
	"fmt"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/supervise"
	"permcell/internal/workload"
)

// Engine is the stepwise form of Run, mirroring core.Engine: the SPE
// goroutines are spawned once and advanced in caller-controlled batches.
// The per-step loop body is the same as Run's, so equal total step counts
// produce bit-identical results. Not safe for concurrent use; Finish must
// be called exactly once to release the goroutines.
type Engine struct {
	cfg     Config
	world   *comm.World
	res     *Result
	cmd     []chan int
	ack     chan struct{}
	runDone chan struct{}
	batch   chan struct{} // in-flight batch completion (kept for salvage)
	stepped int
	err     error
	done    bool
	finRes  *Result
	finErr  error

	// trap converts SPE-goroutine panics into typed failures, as in
	// core.Engine.
	trap *supervise.Trap

	snap []checkpoint.Frame // per-rank snapshot slots (written on cmdSnapshot)
	// base carries the restore point, as in core.Engine.
	base                int
	baseMsgs, baseBytes int64
}

// NewEngine validates cfg, distributes sys and starts the SPE goroutines,
// which compute the step-0 forces and then idle awaiting the first Step.
// The input system is not modified.
func NewEngine(cfg Config, sys workload.System) (*Engine, error) {
	d, world, err := setup(&cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		world:   world,
		res:     &Result{},
		cmd:     make([]chan int, cfg.P),
		ack:     make(chan struct{}, cfg.P),
		runDone: make(chan struct{}),
		trap:    supervise.NewTrap(),
		snap:    make([]checkpoint.Frame, cfg.P),
	}
	if cfg.Restore != nil {
		e.base = cfg.Restore.Step
		e.baseMsgs = cfg.Restore.CommMsgs
		e.baseBytes = cfg.Restore.CommBytes
	}
	for i := range e.cmd {
		e.cmd[i] = make(chan int, 1)
	}
	go func() {
		defer close(e.runDone)
		world.Run(func(c *comm.Comm) {
			defer e.trap.Catch(c.Rank())
			newSPE(c, &e.cfg, d, sys).runStepwise(e.cmd[c.Rank()], e.ack, e.res, e.snap)
		})
	}()
	return e, nil
}

// Step advances the simulation by n time steps and blocks until every SPE
// has completed the batch. Under a positive cfg.Watchdog a communication
// stall inside the batch returns a *comm.DeadlockError; the engine is then
// unusable.
func (e *Engine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if terr := e.trap.Err(); terr != nil {
		e.err = terr
		return terr
	}
	if e.done {
		return fmt.Errorf("corestatic: Step after Finish")
	}
	if n < 0 {
		return fmt.Errorf("corestatic: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	for _, ch := range e.cmd {
		ch <- n
	}
	done := make(chan struct{})
	go func() {
		for range e.cmd {
			<-e.ack
		}
		close(done)
	}()
	e.batch = done
	if err := awaitBatch(e.world, e.cfg.Watchdog, done, e.trap); err != nil {
		e.err = err
		return err
	}
	e.stepped += n
	return nil
}

// Stepped returns the number of time steps advanced so far (this session
// only; a restored engine's absolute step is AbsStep).
func (e *Engine) Stepped() int { return e.stepped }

// AbsStep returns the absolute simulation step: the restore point plus the
// steps advanced this session.
func (e *Engine) AbsStep() int { return e.base + e.stepped }

// Snapshot takes a coordinated distributed snapshot at the current batch
// boundary, exactly as core.Engine.Snapshot: every SPE asserts quiescence,
// serializes its shard, and the driver assembles the frames after the
// world-level in-flight check. The engine remains usable afterwards.
func (e *Engine) Snapshot() (*checkpoint.EngineState, error) {
	if e.err != nil {
		return nil, e.err
	}
	if terr := e.trap.Err(); terr != nil {
		e.err = terr
		return nil, terr
	}
	if e.done {
		return nil, fmt.Errorf("corestatic: Snapshot after Finish")
	}
	for _, ch := range e.cmd {
		ch <- cmdSnapshot
	}
	done := make(chan struct{})
	go func() {
		for range e.cmd {
			<-e.ack
		}
		close(done)
	}()
	if err := awaitBatch(e.world, e.cfg.Watchdog, done, e.trap); err != nil {
		e.err = err
		return nil, err
	}
	if err := e.world.Quiesced(); err != nil {
		return nil, err
	}
	msgs, bytes := e.world.Stats()
	st := &checkpoint.EngineState{
		Step:      e.base + e.stepped,
		Frames:    make([]checkpoint.Frame, len(e.snap)),
		CommMsgs:  e.baseMsgs + msgs,
		CommBytes: e.baseBytes + bytes,
	}
	copy(st.Frames, e.snap)
	if err := st.Validate(e.cfg.P); err != nil {
		return nil, err
	}
	return st, nil
}

// Stats returns the per-step records collected so far. The slice is live:
// read it only between Step calls, while the SPEs are idle.
func (e *Engine) Stats() []StepStats { return e.res.Stats }

// Finish releases the SPE goroutines, gathers the final global state and
// returns the completed Result. Finish is idempotent, and after a Step
// error it attempts the same best-effort teardown as core.Engine.Finish:
// wait out the stalled batch under an extended grace and, on recovery,
// return the partial Result together with the original Step error.
func (e *Engine) Finish() (*Result, error) {
	if e.done {
		return e.finRes, e.finErr
	}
	e.done = true
	e.finRes, e.finErr = e.finish()
	return e.finRes, e.finErr
}

func (e *Engine) finish() (*Result, error) {
	if terr := e.trap.Err(); terr != nil {
		// A rank died: abandon the world outright (see core.Engine.finish).
		if e.err == nil {
			e.err = terr
		}
		return nil, e.err
	}
	watch := e.cfg.Watchdog
	if e.err != nil {
		watch = 10 * e.cfg.Watchdog
		if e.batch != nil {
			if werr := e.world.WatchSection(watch, e.batch); werr != nil {
				return nil, e.err
			}
		}
	}
	for _, ch := range e.cmd {
		ch <- cmdFinish
	}
	if werr := e.world.WatchSection(watch, e.runDone); werr != nil {
		if e.err != nil {
			return nil, e.err
		}
		e.err = werr
		return nil, werr
	}
	e.res.CommMsgs, e.res.CommBytes = e.world.Stats()
	e.res.CommMsgs += e.baseMsgs
	e.res.CommBytes += e.baseBytes
	e.res.Faults = e.world.FaultStats()
	return e.res, e.err
}
