// Package dlb3 generalizes the paper's permanent-cell dynamic load
// balancing from square-pillar domains to cube domains — the extension the
// paper's Section 2.2 flags as "more difficult" future work ("the number of
// neighboring PEs with cube domain is large and DLB becomes more
// difficult").
//
// The construction mirrors internal/dlb one dimension up. Each PE of an
// s x s x s torus owns an m x m x m block of cells. The three high faces of
// the block (local coordinate == m-1 in any axis) are permanent; the
// (m-1)^3 low-corner cells are movable. Movable cells may be lent to the 7
// "up-left" neighbors (offsets in {-1,0}^3 minus the origin) and returned
// from them; the permanent shell guarantees any cell adjacent to a hosted
// cell is hosted within the host's 26-neighborhood, so the communication
// pattern stays the regular 26-neighbor exchange.
//
// The resulting capacity is Q = m^3 + 7(m-1)^3 cells per PE and the
// effective-range bound is f_cube(m, n) = 7(m-1)^3 / (m^3(n-1) + 7n(m-1)^3)
// (theory.FCube), derived exactly as the paper's eq. 3-8.
package dlb3

import (
	"fmt"
	"sort"

	"permcell/internal/topology"
)

// Layout is the static geometry: an S^3 torus of PEs, each owning an M^3
// block of cells. Cell indices flatten as cx + n*(cy + n*cz), n = S*M.
type Layout struct {
	S, M int
	T    topology.Torus3D
}

// NewLayout validates and returns a layout.
func NewLayout(s, m int) (Layout, error) {
	if s < 2 {
		return Layout{}, fmt.Errorf("dlb3: torus side must be >= 2, got %d", s)
	}
	if m < 1 {
		return Layout{}, fmt.Errorf("dlb3: m must be >= 1, got %d", m)
	}
	t, err := topology.NewTorus3D(s, s, s)
	if err != nil {
		return Layout{}, err
	}
	return Layout{S: s, M: m, T: t}, nil
}

// P returns the PE count S^3.
func (l Layout) P() int { return l.S * l.S * l.S }

// N returns the cells per axis, S*M.
func (l Layout) N() int { return l.S * l.M }

// NumCells returns (S*M)^3.
func (l Layout) NumCells() int { n := l.N(); return n * n * n }

// CellAt flattens cell coordinates.
func (l Layout) CellAt(cx, cy, cz int) int {
	n := l.N()
	return cx + n*(cy+n*cz)
}

// CellCoords inverts CellAt.
func (l Layout) CellCoords(cell int) (cx, cy, cz int) {
	n := l.N()
	cx = cell % n
	cell /= n
	cy = cell % n
	cz = cell / n
	return
}

// OwnerOf returns the rank statically owning cell.
func (l Layout) OwnerOf(cell int) int {
	cx, cy, cz := l.CellCoords(cell)
	return l.T.Rank(cx/l.M, cy/l.M, cz/l.M)
}

// LocalCoords returns cell's coordinates within its owner's block.
func (l Layout) LocalCoords(cell int) (a, b, c int) {
	cx, cy, cz := l.CellCoords(cell)
	return cx % l.M, cy % l.M, cz % l.M
}

// IsPermanent reports whether cell is on its owner's permanent shell (any
// local coordinate == M-1).
func (l Layout) IsPermanent(cell int) bool {
	a, b, c := l.LocalCoords(cell)
	return a == l.M-1 || b == l.M-1 || c == l.M-1
}

// CellsOf returns all cells owned by rank, ascending.
func (l Layout) CellsOf(rank int) []int {
	pi, pj, pk := l.T.Coords(rank)
	out := make([]int, 0, l.M*l.M*l.M)
	for c := 0; c < l.M; c++ {
		for b := 0; b < l.M; b++ {
			for a := 0; a < l.M; a++ {
				out = append(out, l.CellAt(pi*l.M+a, pj*l.M+b, pk*l.M+c))
			}
		}
	}
	sort.Ints(out)
	return out
}

// MovableCellsOf returns rank's movable cells, ascending.
func (l Layout) MovableCellsOf(rank int) []int {
	var out []int
	for _, c := range l.CellsOf(rank) {
		if !l.IsPermanent(c) {
			out = append(out, c)
		}
	}
	return out
}

// UpLeftRanks returns the 7 Case-1 neighbor ranks in topology.UpLeft3
// order.
func (l Layout) UpLeftRanks(rank int) []int {
	pi, pj, pk := l.T.Coords(rank)
	out := make([]int, len(topology.UpLeft3))
	for i, o := range topology.UpLeft3 {
		out[i] = l.T.Rank(pi+o.DI, pj+o.DJ, pk+o.DK)
	}
	return out
}

// DownRightRanks returns the 7 Case-3 neighbor ranks in topology.DownRight3
// order.
func (l Layout) DownRightRanks(rank int) []int {
	pi, pj, pk := l.T.Coords(rank)
	out := make([]int, len(topology.DownRight3))
	for i, o := range topology.DownRight3 {
		out[i] = l.T.Rank(pi+o.DI, pj+o.DJ, pk+o.DK)
	}
	return out
}

// MaxHostedCells returns Q = M^3 + 7(M-1)^3.
func (l Layout) MaxHostedCells() int {
	return l.M*l.M*l.M + 7*(l.M-1)*(l.M-1)*(l.M-1)
}

// Loads carries a PE's own load and its 26 neighbors' loads in
// topology.Offsets26 order.
type Loads struct {
	Self     float64
	Neighbor [26]float64
}

// Decision moves cell Cell to rank Dest (Cell < 0 = nothing).
type Decision struct {
	Cell int
	Dest int
}

// None is the empty decision.
var None = Decision{Cell: -1}

// Config tunes the decision; see dlb.Config.
type Config struct {
	Hysteresis float64
	CellLoad   func(cell int) float64
}

// Ledger is one PE's placement view, tracking the cells owned by itself and
// its 7 down-right neighbors — the owners for which this PE hears every
// host-changing decision (all deciders for such cells lie within the
// 26-neighborhood, by the same argument as the 2-D case).
type Ledger struct {
	L    Layout
	Rank int

	host          map[int]int
	trackedOwners map[int]bool
}

// NewLedger returns rank's ledger in the initial state.
func NewLedger(l Layout, rank int) *Ledger {
	lg := &Ledger{
		L:             l,
		Rank:          rank,
		host:          make(map[int]int),
		trackedOwners: map[int]bool{rank: true},
	}
	for _, r := range l.DownRightRanks(rank) {
		lg.trackedOwners[r] = true
	}
	for o := range lg.trackedOwners {
		for _, cell := range l.CellsOf(o) {
			lg.host[cell] = o
		}
	}
	return lg
}

// HostOf resolves a cell's host (tracked dynamically, or statically for
// permanent cells).
func (lg *Ledger) HostOf(cell int) (int, error) {
	if h, ok := lg.host[cell]; ok {
		return h, nil
	}
	if lg.L.IsPermanent(cell) {
		return lg.L.OwnerOf(cell), nil
	}
	return 0, fmt.Errorf("dlb3: rank %d cannot resolve host of untracked movable cell %d", lg.Rank, cell)
}

// HostedCells returns the cells currently hosted by this PE, ascending.
func (lg *Ledger) HostedCells() []int {
	var out []int
	for cell, h := range lg.host {
		if h == lg.Rank {
			out = append(out, cell)
		}
	}
	sort.Ints(out)
	return out
}

// BorrowedFrom returns the cells owned by owner hosted here.
func (lg *Ledger) BorrowedFrom(owner int) []int {
	var out []int
	for _, cell := range lg.L.CellsOf(owner) {
		if lg.host[cell] == lg.Rank && owner != lg.Rank {
			out = append(out, cell)
		}
	}
	return out
}

// OwnMovableAtHome returns this PE's own movable cells still at home.
func (lg *Ledger) OwnMovableAtHome() []int {
	var out []int
	for _, cell := range lg.L.MovableCellsOf(lg.Rank) {
		if lg.host[cell] == lg.Rank {
			out = append(out, cell)
		}
	}
	return out
}

// Decide runs the cube-domain protocol step: find the fastest slot among
// self and the 26 neighbors, classify its offset, and pick the heaviest
// eligible cell.
func (lg *Ledger) Decide(loads Loads, cfg Config) Decision {
	fastestK, fastest := -1, loads.Self
	for k, v := range loads.Neighbor {
		if v < fastest {
			fastest, fastestK = v, k
		}
	}
	if fastestK < 0 || loads.Self <= fastest*(1+cfg.Hysteresis) {
		return None
	}
	off := topology.Offsets26[fastestK]
	pi, pj, pk := lg.L.T.Coords(lg.Rank)
	dest := lg.L.T.Rank(pi+off.DI, pj+off.DJ, pk+off.DK)

	var cands []int
	switch {
	case contains3(topology.UpLeft3, off): // Case 1
		cands = lg.OwnMovableAtHome()
	case contains3(topology.DownRight3, off): // Case 3
		cands = lg.BorrowedFrom(dest)
	default: // Case 2
		return None
	}
	if len(cands) == 0 {
		return None
	}
	best, bestLoad := cands[0], cellLoad(cands[0], cfg)
	for _, c := range cands[1:] {
		if l := cellLoad(c, cfg); l > bestLoad {
			best, bestLoad = c, l
		}
	}
	return Decision{Cell: best, Dest: dest}
}

func cellLoad(cell int, cfg Config) float64 {
	if cfg.CellLoad == nil {
		return 1
	}
	return cfg.CellLoad(cell)
}

func contains3(set []topology.Offset3, o topology.Offset3) bool {
	for _, s := range set {
		if s == o {
			return true
		}
	}
	return false
}

// Apply incorporates a decision by rank decider, with the same legality
// validation as the 2-D ledger.
func (lg *Ledger) Apply(decider int, d Decision) error {
	if d.Cell < 0 {
		return nil
	}
	owner := lg.L.OwnerOf(d.Cell)
	if !lg.trackedOwners[owner] {
		return nil
	}
	cur, ok := lg.host[d.Cell]
	if !ok {
		return fmt.Errorf("dlb3: rank %d: tracked cell %d missing from host map", lg.Rank, d.Cell)
	}
	if cur != decider {
		return fmt.Errorf("dlb3: rank %d: decider %d is not the host (%d) of cell %d", lg.Rank, decider, cur, d.Cell)
	}
	if lg.L.IsPermanent(d.Cell) {
		return fmt.Errorf("dlb3: rank %d: permanent cell %d may not move", lg.Rank, d.Cell)
	}
	if decider == owner {
		if !containsInt(lg.L.UpLeftRanks(owner), d.Dest) {
			return fmt.Errorf("dlb3: rank %d: cell %d sent to %d, not an up-left neighbor of owner %d",
				lg.Rank, d.Cell, d.Dest, owner)
		}
	} else {
		if d.Dest != owner {
			return fmt.Errorf("dlb3: rank %d: borrower %d must return cell %d to owner %d, not %d",
				lg.Rank, decider, d.Cell, owner, d.Dest)
		}
		if !containsInt(lg.L.UpLeftRanks(owner), decider) {
			return fmt.Errorf("dlb3: rank %d: returner %d is not an up-left neighbor of owner %d",
				lg.Rank, decider, owner)
		}
	}
	lg.host[d.Cell] = d.Dest
	return nil
}

// CheckInvariants verifies the permanent-shell invariants and the Q bound.
func (lg *Ledger) CheckInvariants() error {
	for cell, h := range lg.host {
		owner := lg.L.OwnerOf(cell)
		if lg.L.IsPermanent(cell) {
			if h != owner {
				return fmt.Errorf("dlb3: permanent cell %d hosted by %d, not owner %d", cell, h, owner)
			}
			continue
		}
		if h != owner && !containsInt(lg.L.UpLeftRanks(owner), h) {
			return fmt.Errorf("dlb3: cell %d hosted by %d, outside owner %d's up-left set", cell, h, owner)
		}
	}
	if n := len(lg.HostedCells()); n > lg.L.MaxHostedCells() {
		return fmt.Errorf("dlb3: rank %d hosts %d cells, exceeding Q = %d", lg.Rank, n, lg.L.MaxHostedCells())
	}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
