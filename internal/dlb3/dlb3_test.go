package dlb3

import (
	"testing"

	"permcell/internal/rng"
	"permcell/internal/theory"
	"permcell/internal/topology"
)

func newLedgers(t *testing.T, s, m int) (Layout, []*Ledger) {
	t.Helper()
	l, err := NewLayout(s, m)
	if err != nil {
		t.Fatal(err)
	}
	lgs := make([]*Ledger, l.P())
	for r := range lgs {
		lgs[r] = NewLedger(l, r)
	}
	return l, lgs
}

func applyEverywhere(t *testing.T, l Layout, lgs []*Ledger, decider int, d Decision) {
	t.Helper()
	if err := lgs[decider].Apply(decider, d); err != nil {
		t.Fatalf("decider %d self-apply: %v", decider, err)
	}
	for _, nb := range l.T.Neighbors26(decider) {
		if err := lgs[nb].Apply(decider, d); err != nil {
			t.Fatalf("neighbor %d applying decision of %d: %v", nb, decider, err)
		}
	}
}

func checkGlobalPartition(t *testing.T, l Layout, lgs []*Ledger) {
	t.Helper()
	count := make(map[int]int)
	for _, lg := range lgs {
		for _, cell := range lg.HostedCells() {
			count[cell]++
		}
	}
	if len(count) != l.NumCells() {
		t.Fatalf("only %d of %d cells hosted", len(count), l.NumCells())
	}
	for cell, c := range count {
		if c != 1 {
			t.Fatalf("cell %d hosted by %d PEs", cell, c)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(1, 2); err == nil {
		t.Error("s=1 accepted")
	}
	if _, err := NewLayout(3, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestOffsets3Partition(t *testing.T) {
	if len(topology.Offsets26) != 26 {
		t.Fatalf("Offsets26 has %d entries", len(topology.Offsets26))
	}
	if len(topology.UpLeft3) != 7 || len(topology.DownRight3) != 7 {
		t.Fatalf("case sets: %d up-left, %d down-right, want 7/7",
			len(topology.UpLeft3), len(topology.DownRight3))
	}
}

func TestCellsPartitionAndPermanentShell(t *testing.T) {
	l, _ := NewLayout(2, 3)
	seen := map[int]bool{}
	for r := 0; r < l.P(); r++ {
		cells := l.CellsOf(r)
		if len(cells) != 27 {
			t.Fatalf("rank %d owns %d cells", r, len(cells))
		}
		movable := l.MovableCellsOf(r)
		if len(movable) != 8 { // (m-1)^3 = 8
			t.Errorf("rank %d: %d movable cells, want 8", r, len(movable))
		}
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("cell %d owned twice", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != l.NumCells() {
		t.Errorf("covered %d cells, want %d", len(seen), l.NumCells())
	}
}

func TestMaxHostedCells(t *testing.T) {
	l, _ := NewLayout(2, 3)
	if got, want := l.MaxHostedCells(), theory.QCubeCells(3); got != want || got != 27+7*8 {
		t.Errorf("Q = %d, want %d (= 83)", got, want)
	}
}

func TestFCubeProperties(t *testing.T) {
	// f_cube(m,1) = 1; decreasing in n; increasing in m; below 1 for n > 1.
	for _, m := range []int{2, 3, 4} {
		if v := theory.MustFCube(m, 1); v < 0.999999 || v > 1.000001 {
			t.Errorf("f_cube(%d,1) = %v, want 1", m, v)
		}
		prev := 2.0
		for n := 1.0; n <= 4; n += 0.5 {
			v := theory.MustFCube(m, n)
			if v > prev+1e-15 {
				t.Fatalf("f_cube(%d,n) not decreasing at n=%v", m, n)
			}
			prev = v
		}
	}
	for n := 1.0; n <= 4; n += 0.5 {
		if theory.MustFCube(2, n) > theory.MustFCube(3, n)+1e-15 {
			t.Fatalf("f_cube not increasing in m at n=%v", n)
		}
	}
	if _, err := theory.FCube(1, 2); err == nil {
		t.Error("m=1 accepted")
	}
}

// TestAdjacencyClosure26 verifies the cube-domain analogue of the paper's
// structural claim: any cell adjacent to a hostable cell is hosted within
// the host's 26-neighborhood for every reachable placement.
func TestAdjacencyClosure26(t *testing.T) {
	l, _ := NewLayout(3, 2)
	n := l.N()
	inNbhd := func(a, b int) bool {
		if a == b {
			return true
		}
		for _, x := range l.T.Neighbors26(a) {
			if x == b {
				return true
			}
		}
		return false
	}
	possibleHosts := func(cell int) []int {
		o := l.OwnerOf(cell)
		if l.IsPermanent(cell) {
			return []int{o}
		}
		return append([]int{o}, l.UpLeftRanks(o)...)
	}
	w := func(x int) int { return ((x % n) + n) % n }
	for cell := 0; cell < l.NumCells(); cell++ {
		cx, cy, cz := l.CellCoords(cell)
		for _, h := range possibleHosts(cell) {
			for _, o := range topology.Offsets26 {
				adj := l.CellAt(w(cx+o.DI), w(cy+o.DJ), w(cz+o.DK))
				for _, ah := range possibleHosts(adj) {
					if !inNbhd(h, ah) {
						t.Fatalf("cell %d (host %d) adjacent to %d (host %d): outside 26-neighborhood",
							cell, h, adj, ah)
					}
				}
			}
		}
	}
}

// TestProtocolSimulation3D mirrors the 2-D protocol property test.
func TestProtocolSimulation3D(t *testing.T) {
	for _, cse := range []struct{ s, m int }{{2, 2}, {2, 3}, {3, 2}} {
		l, lgs := newLedgers(t, cse.s, cse.m)
		r := rng.New(uint64(100*cse.s + cse.m))
		loadOf := make([]float64, l.P())

		for step := 0; step < 150; step++ {
			for i := range loadOf {
				loadOf[i] = r.Uniform(1, 2)
			}
			if step%3 == 0 {
				loadOf[r.Intn(l.P())] = r.Uniform(10, 20)
			}
			decisions := make([]Decision, l.P())
			for rank, lg := range lgs {
				var loads Loads
				loads.Self = loadOf[rank]
				pi, pj, pk := l.T.Coords(rank)
				for k, off := range topology.Offsets26 {
					loads.Neighbor[k] = loadOf[l.T.Rank(pi+off.DI, pj+off.DJ, pk+off.DK)]
				}
				decisions[rank] = lg.Decide(loads, Config{})
			}
			for rank, d := range decisions {
				applyEverywhere(t, l, lgs, rank, d)
			}
			checkGlobalPartition(t, l, lgs)
			for _, lg := range lgs {
				if err := lg.CheckInvariants(); err != nil {
					t.Fatalf("s=%d m=%d step %d: %v", cse.s, cse.m, step, err)
				}
			}
		}
	}
}

// TestMaxDomainReachable3D drives one PE to the Q bound.
func TestMaxDomainReachable3D(t *testing.T) {
	l, lgs := newLedgers(t, 2, 2)
	me := 0
	for step := 0; step < 20; step++ {
		for _, donor := range l.DownRightRanks(me) {
			if donor == me {
				continue
			}
			var dl Loads
			dl.Self = 10
			pi, pj, pk := l.T.Coords(donor)
			for k, off := range topology.Offsets26 {
				nb := l.T.Rank(pi+off.DI, pj+off.DJ, pk+off.DK)
				if nb == me {
					dl.Neighbor[k] = 1
				} else {
					dl.Neighbor[k] = 10
				}
			}
			d := lgs[donor].Decide(dl, Config{})
			applyEverywhere(t, l, lgs, donor, d)
		}
	}
	got := len(lgs[me].HostedCells())
	want := l.MaxHostedCells() // 8 + 7*1 = 15 for m=2
	if got != want {
		t.Errorf("max domain = %d cells, want %d", got, want)
	}
	checkGlobalPartition(t, l, lgs)
}

func TestDecideCase2Mixed3D(t *testing.T) {
	l, lgs := newLedgers(t, 3, 2)
	me := l.T.Rank(1, 1, 1)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	// Find a mixed-sign offset (Case 2) and make it the fastest.
	for k, off := range topology.Offsets26 {
		mixed := !(off.DI <= 0 && off.DJ <= 0 && off.DK <= 0) &&
			!(off.DI >= 0 && off.DJ >= 0 && off.DK >= 0)
		if mixed {
			loads.Neighbor[k] = 1
			if d := lgs[me].Decide(loads, Config{}); d.Cell >= 0 {
				t.Errorf("mixed offset %v produced decision %+v", off, d)
			}
			loads.Neighbor[k] = 10
		}
	}
}
