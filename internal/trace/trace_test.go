package trace

import (
	"math"
	"strings"
	"testing"

	"permcell/internal/rng"
)

func TestSmoothConstant(t *testing.T) {
	vals := []float64{5, 5, 5, 5, 5}
	for _, w := range []int{1, 3, 5, 7} {
		for _, v := range Smooth(vals, w) {
			if v != 5 {
				t.Fatalf("window %d: smoothed constant != 5", w)
			}
		}
	}
}

func TestSmoothReducesNoise(t *testing.T) {
	r := rng.New(3)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 10 + r.NormScaled(0, 1)
	}
	s := Smooth(vals, 21)
	var rawVar, smVar float64
	for i := range vals {
		rawVar += (vals[i] - 10) * (vals[i] - 10)
		smVar += (s[i] - 10) * (s[i] - 10)
	}
	if smVar >= rawVar/4 {
		t.Errorf("smoothing reduced variance only %v -> %v", rawVar, smVar)
	}
}

func TestSmoothEvenWindowRoundsUp(t *testing.T) {
	vals := []float64{1, 2, 3}
	a := Smooth(vals, 2)
	b := Smooth(vals, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("even window not rounded up")
		}
	}
}

func TestDetectRiseCleanStep(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		if i >= 60 {
			vals[i] = float64(i-60) * 0.5
		}
	}
	got := DetectRise(vals, 5, 20, 1.0, 0.1)
	if got < 55 || got > 70 {
		t.Errorf("rise detected at %d, want ~60", got)
	}
}

func TestDetectRiseNoisy(t *testing.T) {
	r := rng.New(7)
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 1 + r.NormScaled(0, 0.1)
		if i >= 200 {
			vals[i] += float64(i-200) * 0.05
		}
	}
	got := DetectRise(vals, 11, 50, 1.0, 0.1)
	if got < 190 || got > 230 {
		t.Errorf("rise detected at %d, want ~200-220", got)
	}
}

func TestDetectRiseNone(t *testing.T) {
	r := rng.New(9)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 3 + r.NormScaled(0, 0.05)
	}
	if got := DetectRise(vals, 11, 50, 1.0, 0.1); got != -1 {
		t.Errorf("flat series detected rise at %d", got)
	}
}

func TestDetectRiseTransientIgnored(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 1
	}
	// A spike that returns to baseline must not count as the boundary.
	vals[80], vals[81] = 10, 10
	for i := 150; i < 200; i++ {
		vals[i] = 1 + float64(i-150)*0.2
	}
	got := DetectRise(vals, 1, 20, 1.0, 0.1)
	if got < 145 || got > 160 {
		t.Errorf("rise detected at %d, want ~150 (spike at 80 ignored)", got)
	}
}

func TestDetectRiseEmpty(t *testing.T) {
	if DetectRise(nil, 5, 10, 1, 0.1) != -1 {
		t.Error("empty series did not return -1")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3.5,-4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestPlotContainsMarks(t *testing.T) {
	var sb strings.Builder
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 5)
	}
	if err := Plot(&sb, []string{"sin"}, [][]float64{vals}, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "sin") {
		t.Errorf("plot missing marks or legend:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, nil, nil, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Error("empty plot not flagged")
	}
}
