// Package trace processes per-step time series: smoothing, the
// boundary-point detector of Section 4.2 ("the time step at which the
// difference between the maximum and the minimum of force computing time
// begins to increase"), CSV emission, and quick ASCII plots for the CLI
// tools.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Smooth returns the centered moving average of vals with the given odd
// window (even windows are rounded up). Endpoints use the available
// neighborhood.
func Smooth(vals []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(vals))
	for i := range vals {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(vals) {
			hi = len(vals) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += vals[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// DetectRise finds the index at which vals begins a sustained rise above
// its initial baseline: the first index i where the smoothed series exceeds
// baseline + factor*max(baseline, floor) and never falls back below that
// threshold. It returns -1 if no sustained rise exists.
//
// baseline is the mean of the first baseLen smoothed values (clamped to the
// series length); floor guards against near-zero baselines where any noise
// would trigger. This implements the paper's experimental boundary-point
// criterion on the (Fmax - Fmin) series.
func DetectRise(vals []float64, window, baseLen int, factor, floor float64) int {
	if len(vals) == 0 {
		return -1
	}
	s := Smooth(vals, window)
	if baseLen < 1 {
		baseLen = 1
	}
	if baseLen > len(s) {
		baseLen = len(s)
	}
	var base float64
	for _, v := range s[:baseLen] {
		base += v
	}
	base /= float64(baseLen)
	scale := base
	if scale < floor {
		scale = floor
	}
	thresh := base + factor*scale

	// Last index that is at or below the threshold; the rise starts after.
	last := -1
	for i, v := range s {
		if v <= thresh {
			last = i
		}
	}
	rise := last + 1
	if rise >= len(s) {
		return -1 // never rises (or never stays risen)
	}
	return rise
}

// FaultEvent is one injected communication fault, as recorded by the
// internal/comm fault-injection layer. Seq is the faulting rank's comm-op
// sequence number when the fault fired, which — together with the plan seed
// — locates the event exactly on a replay.
type FaultEvent struct {
	Rank int     // rank the fault was injected on
	Peer int     // destination rank of the affected message (-1 when N/A)
	Tag  int     // tag of the affected message (0 when N/A)
	Kind string  // "delay", "reorder", "fail", "stall"
	Seq  int64   // rank-local comm-op sequence number
	Dur  float64 // injected wait in seconds (delay/stall; 0 otherwise)
}

// WriteFaultCSV writes fault events as CSV (rank, peer, tag, kind, seq, dur).
func WriteFaultCSV(w io.Writer, events []FaultEvent) error {
	if _, err := fmt.Fprintln(w, "rank,peer,tag,kind,seq,dur"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s,%d,%g\n", e.Rank, e.Peer, e.Tag, e.Kind, e.Seq, e.Dur); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes a header and rows of float columns.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Plot renders series as a crude ASCII chart: one rune per series, points
// scaled into a width x height grid. Series may have different lengths;
// x is the sample index scaled to the longest series.
func Plot(w io.Writer, names []string, series [][]float64, width, height int) error {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	marks := []rune{'*', '+', 'o', 'x', '#', '@'}
	maxLen, lo, hi := 0, math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if maxLen == 0 {
		_, err := fmt.Fprintln(w, "(empty plot)")
		return err
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int((v - lo) / (hi - lo) * float64(height-1))
			row := height - 1 - y
			grid[row][x] = mark
		}
	}
	if _, err := fmt.Fprintf(w, "%12.4g ┐\n", hi); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "             │%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%12.4g ┘%s\n", lo, strings.Repeat("─", width)); err != nil {
		return err
	}
	for si, name := range names {
		if _, err := fmt.Fprintf(w, "  %c %s\n", marks[si%len(marks)], name); err != nil {
			return err
		}
	}
	return nil
}
