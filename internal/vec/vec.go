// Package vec provides minimal 3-D vector arithmetic used throughout the
// molecular dynamics engines. Vectors are small value types; all operations
// return new values and never allocate.
package vec

import (
	"fmt"
	"math"
)

// V is a 3-D vector in Cartesian coordinates.
type V struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V { return V{x, y, z} }

// Zero is the zero vector.
var Zero = V{}

// Add returns v + w.
func (v V) Add(w V) V { return V{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V) Sub(w V) V { return V{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v V) Scale(s float64) V { return V{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v V) Neg() V { return V{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v . w.
func (v V) Dot(w V) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v V) Cross(w V) V {
	return V{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns |v|^2.
func (v V) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v V) Norm() float64 { return math.Sqrt(v.Norm2()) }

// MulAdd returns v + s*w, the fused update used by integrators.
func (v V) MulAdd(s float64, w V) V {
	return V{v.X + s*w.X, v.Y + s*w.Y, v.Z + s*w.Z}
}

// Hadamard returns the component-wise product of v and w.
func (v V) Hadamard(w V) V { return V{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dist returns the Euclidean distance |v - w|.
func (v V) Dist(w V) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance |v - w|^2.
func (v V) Dist2(w V) float64 { return v.Sub(w).Norm2() }

// IsFinite reports whether all three components are finite numbers.
func (v V) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Wrap maps v into the half-open box [0, l) per component, assuming the box
// edge lengths l are positive. It handles coordinates an arbitrary number of
// periods outside the box.
func (v V) Wrap(l V) V {
	return V{wrap1(v.X, l.X), wrap1(v.Y, l.Y), wrap1(v.Z, l.Z)}
}

func wrap1(x, l float64) float64 {
	x -= math.Floor(x/l) * l
	// Guard against x == l after rounding when x was a tiny negative value.
	if x >= l {
		x -= l
	}
	return x
}

// MinImage returns the minimum-image displacement of v in a periodic box
// with edge lengths l: each component is shifted by a multiple of the box
// length into (-l/2, l/2].
func (v V) MinImage(l V) V {
	return V{minImage1(v.X, l.X), minImage1(v.Y, l.Y), minImage1(v.Z, l.Z)}
}

func minImage1(d, l float64) float64 {
	d -= math.Round(d/l) * l
	return d
}
