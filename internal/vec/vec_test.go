package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicOps(t *testing.T) {
	a := New(1, 2, 3)
	b := New(-4, 5, 0.5)

	if got := a.Add(b); got != New(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := a.Norm(); !almostEq(got, math.Sqrt(14), 1e-15) {
		t.Errorf("Norm = %v", got)
	}
	if got := a.MulAdd(3, b); got != New(-11, 17, 4.5) {
		t.Errorf("MulAdd = %v", got)
	}
	if got := a.Hadamard(b); got != New(-4, 10, 1.5) {
		t.Errorf("Hadamard = %v", got)
	}
}

func TestCross(t *testing.T) {
	x, y, z := New(1, 0, 0), New(0, 1, 0), New(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z cross x = %v, want y", got)
	}
}

// clampComp maps arbitrary float64 inputs into a numerically safe range so
// intermediate products cannot overflow.
func clampComp(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestCrossAnticommutative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clampComp(ax), clampComp(ay), clampComp(az))
		b := New(clampComp(bx), clampComp(by), clampComp(bz))
		c1, c2 := a.Cross(b), b.Cross(a).Neg()
		return almostEq(c1.X, c2.X, 1e-9*(1+math.Abs(c1.X))) &&
			almostEq(c1.Y, c2.Y, 1e-9*(1+math.Abs(c1.Y))) &&
			almostEq(c1.Z, c2.Z, 1e-9*(1+math.Abs(c1.Z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clampComp(ax), clampComp(ay), clampComp(az))
		b := New(clampComp(bx), clampComp(by), clampComp(bz))
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return almostEq(c.Dot(a)/scale/scale, 0, 1e-9) &&
			almostEq(c.Dot(b)/scale/scale, 0, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDist(t *testing.T) {
	a, b := New(1, 1, 1), New(4, 5, 1)
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestWrapInsideBox(t *testing.T) {
	l := New(10, 20, 5)
	cases := []V{
		New(0, 0, 0),
		New(9.999, 19.999, 4.999),
		New(-0.001, 20.001, 5),
		New(105, -203, 7.5),
		New(-1e9, 1e9, 0),
	}
	for _, c := range cases {
		w := c.Wrap(l)
		if w.X < 0 || w.X >= l.X || w.Y < 0 || w.Y >= l.Y || w.Z < 0 || w.Z >= l.Z {
			t.Errorf("Wrap(%v) = %v outside [0,l)", c, w)
		}
	}
}

func TestWrapProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		p := New(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		l := New(7, 11, 13)
		w := p.Wrap(l)
		if w.X < 0 || w.X >= l.X || w.Y < 0 || w.Y >= l.Y || w.Z < 0 || w.Z >= l.Z {
			return false
		}
		// Wrapping must shift each coordinate by an integer number of periods.
		dx := (p.X - w.X) / l.X
		return almostEq(dx, math.Round(dx), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinImage(t *testing.T) {
	l := New(10, 10, 10)
	d := New(9, -9, 4).MinImage(l)
	want := New(-1, 1, 4)
	if d.Dist(want) > 1e-12 {
		t.Errorf("MinImage = %v, want %v", d, want)
	}
}

func TestMinImageHalfBox(t *testing.T) {
	f := func(x, y, z float64) bool {
		p := New(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		l := New(9, 5, 21)
		m := p.MinImage(l)
		return math.Abs(m.X) <= l.X/2+1e-9 &&
			math.Abs(m.Y) <= l.Y/2+1e-9 &&
			math.Abs(m.Z) <= l.Z/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String = %q", got)
	}
}
