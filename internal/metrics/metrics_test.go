package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		if name == "" || strings.Contains(name, "(") {
			t.Fatalf("phase %d has no name", ph)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if got := Phase(NumPhases).String(); got != "phase(7)" {
		t.Errorf("out-of-range name = %q", got)
	}
}

// TestNilTimerNoOps pins the disabled path: every method on a nil Timer is
// a safe no-op, which is what lets the engines thread one pointer through
// unconditionally.
func TestNilTimerNoOps(t *testing.T) {
	var tm *Timer
	if tm.Enabled() {
		t.Fatal("nil timer enabled")
	}
	t0 := tm.Start()
	if !t0.IsZero() {
		t.Fatal("nil Start returned non-zero time")
	}
	tm.Stop(PhaseForce, t0)
	tm.Add(PhaseHalo, 1)
	tm.Count(PhaseMigrate, 3, 144)
	if s := tm.TakeSample(); s != (Sample{}) {
		t.Fatalf("nil TakeSample = %+v", s)
	}
}

func TestTimerAccumulateAndReset(t *testing.T) {
	tm := &Timer{}
	tm.Add(PhaseForce, 0.25)
	tm.Add(PhaseForce, 0.25)
	tm.Count(PhaseHalo, 2, 100)
	tm.Count(PhaseHalo, 1, 50)
	t0 := tm.Start()
	time.Sleep(time.Millisecond)
	tm.Stop(PhaseIntegrate, t0)

	s := tm.TakeSample()
	if s.Secs[PhaseForce] != 0.5 {
		t.Errorf("force secs = %v", s.Secs[PhaseForce])
	}
	if s.Msgs[PhaseHalo] != 3 || s.Bytes[PhaseHalo] != 150 {
		t.Errorf("halo counts = %d msgs %d bytes", s.Msgs[PhaseHalo], s.Bytes[PhaseHalo])
	}
	if s.Secs[PhaseIntegrate] <= 0 {
		t.Errorf("integrate secs = %v", s.Secs[PhaseIntegrate])
	}
	if got := s.TotalSecs(); got != s.Secs[PhaseForce]+s.Secs[PhaseIntegrate] {
		t.Errorf("TotalSecs = %v", got)
	}
	if again := tm.TakeSample(); again != (Sample{}) {
		t.Errorf("sample not reset: %+v", again)
	}
}

// TestTimerZeroAlloc is the steady-state allocation contract for the hot
// half of the package: a full per-step timer cycle allocates nothing, for
// both the enabled and the disabled (nil) timer.
func TestTimerZeroAlloc(t *testing.T) {
	for _, tm := range map[string]*Timer{"enabled": {}, "nil": nil} {
		tm := tm
		step := func() {
			t0 := tm.Start()
			tm.Stop(PhaseForce, t0)
			tm.Add(PhaseHalo, 0.001)
			tm.Count(PhaseMigrate, 8, 384)
			_ = tm.TakeSample()
		}
		if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
			t.Errorf("timer=%v: %v allocs per step cycle, want 0", tm.Enabled(), allocs)
		}
	}
}

func TestBreakdownReduce(t *testing.T) {
	var b Breakdown
	a := Sample{}
	a.Secs[PhaseForce], a.Msgs[PhaseHalo], a.Bytes[PhaseHalo] = 2, 4, 400
	c := Sample{}
	c.Secs[PhaseForce], c.Msgs[PhaseHalo], c.Bytes[PhaseHalo] = 4, 6, 600
	b.Fold(a)
	b.Fold(c)
	b.Finalize(2)
	if b.MaxSecs[PhaseForce] != 4 || b.AveSecs[PhaseForce] != 3 {
		t.Errorf("force max/ave = %v/%v", b.MaxSecs[PhaseForce], b.AveSecs[PhaseForce])
	}
	if b.Msgs[PhaseHalo] != 10 || b.Bytes[PhaseHalo] != 1000 {
		t.Errorf("halo totals = %d/%d", b.Msgs[PhaseHalo], b.Bytes[PhaseHalo])
	}
	if b.SumAveSecs() != 3 {
		t.Errorf("SumAveSecs = %v", b.SumAveSecs())
	}
	if b.SumMsgs() != 10 || b.SumBytes() != 1000 {
		t.Errorf("sums = %d/%d", b.SumMsgs(), b.SumBytes())
	}
}

func TestGauges(t *testing.T) {
	if r := LoadRatio(4, 2); r != 2 {
		t.Errorf("LoadRatio = %v", r)
	}
	if e := Efficiency(4, 2); e != 0.5 {
		t.Errorf("Efficiency = %v", e)
	}
	if LoadRatio(1, 0) != 0 || Efficiency(0, 1) != 0 {
		t.Error("degenerate gauges not zero")
	}
	// m=2, n=1: f = 3/(7-4) = 1. Residual against C0/C = 0.4 is 0.6.
	if r := BoundResidual(2, 1, 0.4); math.Abs(r-0.6) > 1e-12 {
		t.Errorf("BoundResidual = %v", r)
	}
	if !math.IsNaN(BoundResidual(1, 1, 0.4)) || !math.IsNaN(BoundResidual(2, 0.5, 0.4)) {
		t.Error("out-of-domain residual not NaN")
	}
}

func TestStepRecordJSONL(t *testing.T) {
	var b Breakdown
	s := Sample{}
	s.Secs[PhaseForce], s.Secs[PhaseHalo] = 0.6, 0.4
	s.Msgs[PhaseHalo], s.Bytes[PhaseHalo] = 16, 1024
	b.Fold(s)
	b.Finalize(1)

	rec := NewStepRecord(7, b, 1.1, 1.0, 300, 200, 100, "permcell", 1, 72, 0.5, 1.2, 2)
	var buf bytes.Buffer
	if err := NewJSONLWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("not one line: %q", line)
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if back["step"].(float64) != 7 {
		t.Errorf("step = %v", back["step"])
	}
	if back["load_ratio"].(float64) != 1.5 {
		t.Errorf("load_ratio = %v", back["load_ratio"])
	}
	if back["imbalance"].(float64) != 1 {
		t.Errorf("imbalance = %v", back["imbalance"])
	}
	if back["balancer"].(string) != "permcell" || back["moved_bytes"].(float64) != 72 {
		t.Errorf("balancer/moved_bytes = %v/%v", back["balancer"], back["moved_bytes"])
	}
	ps := back["phase_secs_ave"].(map[string]any)
	if ps["force"].(float64) != 0.6 || ps["halo"].(float64) != 0.4 {
		t.Errorf("phase_secs_ave = %v", ps)
	}
	if got := back["phase_secs_sum_ave"].(float64); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("phase_secs_sum_ave = %v", got)
	}
	if _, ok := back["bound_residual"]; !ok {
		t.Error("bound_residual missing for m=2")
	}

	// Out-of-domain bound (n < 1) must omit the bound fields, keeping the
	// record valid JSON (NaN would fail to encode).
	rec = NewStepRecord(1, b, 1, 1, 1, 1, 1, "", 0, 0, 0.5, 0.2, 2)
	buf.Reset()
	if err := NewJSONLWriter(&buf).Write(rec); err != nil {
		t.Fatalf("out-of-domain record: %v", err)
	}
	if strings.Contains(buf.String(), "bound") {
		t.Errorf("bound fields present out of domain: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"balancer":"none"`) {
		t.Errorf("empty balancer not normalized to none: %s", buf.String())
	}
}

func TestCumulativePrometheus(t *testing.T) {
	var b Breakdown
	s := Sample{}
	s.Secs[PhaseForce] = 0.25
	s.Msgs[PhaseMigrate], s.Bytes[PhaseMigrate] = 8, 512
	b.Fold(s)
	b.Finalize(1)

	var c Cumulative
	c.Add(0.3, b)
	c.Add(0.3, b)
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"permcell_steps_total 2\n",
		"permcell_step_wall_seconds_total 0.6\n",
		`permcell_phase_seconds_total{phase="force"} 0.5`,
		`permcell_phase_messages_total{phase="migrate"} 16`,
		`permcell_phase_bytes_total{phase="migrate"} 1024`,
		"# TYPE permcell_phase_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Recovery counters only appear when a supervisor report was attached.
	if strings.Contains(out, "permcell_recovery_") {
		t.Errorf("recovery counters present without a Recovery block:\n%s", out)
	}
	c.Recovery = &Recovery{Panics: 1, Rollbacks: 2, Retries: 2, StepsReplayed: 9}
	buf.Reset()
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{
		"permcell_recovery_panics_total 1\n",
		"permcell_recovery_guard_violations_total 0\n",
		"permcell_recovery_rollbacks_total 2\n",
		"permcell_recovery_steps_replayed_total 9\n",
		"# TYPE permcell_recovery_retries_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabels(t *testing.T) {
	for _, tc := range []struct {
		kv   []string
		want string
	}{
		{nil, ""},
		{[]string{"run", "r1"}, `run="r1"`},
		{[]string{"run", "r1", "state", "paused"}, `run="r1",state="paused"`},
		{[]string{"odd"}, ""},
		{[]string{"v", `a"b\c` + "\n"}, `v="a\"b\\c\n"`},
	} {
		if got := Labels(tc.kv...); got != tc.want {
			t.Errorf("Labels(%q) = %q, want %q", tc.kv, got, tc.want)
		}
	}
}

// TestLabelledExposition checks the multi-run split: one header block, then
// one labelled sample set per run — the shape Prometheus requires (it
// rejects a repeated HELP/TYPE for a family).
func TestLabelledExposition(t *testing.T) {
	var b Breakdown
	s := Sample{}
	s.Secs[PhaseForce] = 0.25
	b.Fold(s)
	b.Finalize(1)

	var c1, c2 Cumulative
	c1.Add(0.3, b)
	c2.Add(0.4, b)
	c2.Add(0.4, b)
	c2.Recovery = &Recovery{Rollbacks: 3}

	var buf bytes.Buffer
	if err := WritePrometheusHeaders(&buf, true); err != nil {
		t.Fatal(err)
	}
	headerEnd := buf.Len()
	if err := c1.WriteSamples(&buf, Labels("run", "r1")); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteSamples(&buf, Labels("run", "r2")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if strings.Contains(out[headerEnd:], "# HELP") {
		t.Errorf("HELP lines after the header block:\n%s", out)
	}
	if n := strings.Count(out, "# HELP permcell_steps_total"); n != 1 {
		t.Errorf("permcell_steps_total declared %d times, want 1", n)
	}
	for _, want := range []string{
		"permcell_steps_total{run=\"r1\"} 1\n",
		"permcell_steps_total{run=\"r2\"} 2\n",
		"permcell_phase_seconds_total{phase=\"force\",run=\"r1\"} 0.25\n",
		"permcell_phase_seconds_total{phase=\"force\",run=\"r2\"} 0.5\n",
		"permcell_recovery_rollbacks_total{run=\"r2\"} 3\n",
		"# TYPE permcell_recovery_rollbacks_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labelled exposition missing %q:\n%s", want, out)
		}
	}
	// c1 has no Recovery block: no recovery samples under its label.
	if strings.Contains(out, `permcell_recovery_rollbacks_total{run="r1"}`) {
		t.Errorf("recovery samples for a run without a Recovery block:\n%s", out)
	}

	// The unlabelled form is exactly headers + one unlabelled sample set.
	var split, direct bytes.Buffer
	if err := WritePrometheusHeaders(&split, true); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteSamples(&split, ""); err != nil {
		t.Fatal(err)
	}
	if err := c2.WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if split.String() != direct.String() {
		t.Errorf("WritePrometheus != headers+samples:\n--- split:\n%s--- direct:\n%s", split.String(), direct.String())
	}
}
