// Package metrics is the per-PE phase timing and imbalance observability
// layer. The paper's DLB protocol is driven entirely by measured per-step
// execution time, and its whole evaluation is a family of timing and
// imbalance curves — so the engines record where each step's wall time goes
// (force, halo exchange, migration, DLB decide/transfer, integration,
// collectives) and derive the balance gauges (max/avg load ratio, parallel
// efficiency, the f(m,n) bound residual) from the same census that already
// feeds the figures.
//
// The design splits into a hot half and a cold half:
//
//   - Timer/Sample run inside every PE goroutine each step. They are fixed
//     arrays with value semantics — no maps, no interfaces, no allocation in
//     steady state — and every Timer method is a nil-receiver no-op, so a
//     run without metrics pays one pointer test per phase boundary.
//   - Breakdown/Cumulative and the JSONL and Prometheus exporters run on
//     rank 0 (or in the driver) at statistics cadence; they may allocate.
//
// Phase msg/byte counters cover the point-to-point protocol traffic a PE
// originates (loads, decisions, transfers, migration, halo need/response).
// Collective traffic (reductions, gathers) is accounted in the whole-run
// comm totals, not per phase.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"permcell/internal/theory"
)

// Phase indexes one instrumented section of a time step.
type Phase uint8

// The phase taxonomy (DESIGN.md "Observability"). PhaseMigrate includes the
// post-migration cell re-binning; for the serial engine, which never
// communicates, it is the per-step re-binning alone.
const (
	PhaseDLBDecide Phase = iota
	PhaseDLBTransfer
	PhaseIntegrate
	PhaseMigrate
	PhaseHalo
	PhaseForce
	PhaseCollective

	// NumPhases is the number of instrumented phases; Sample and Breakdown
	// arrays are indexed by Phase.
	NumPhases = 7
)

var phaseNames = [NumPhases]string{
	"dlb_decide", "dlb_transfer", "integrate", "migrate", "halo", "force", "collective",
}

// String returns the stable snake_case phase name used by the exporters.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Sample is one PE's phase breakdown for one step: wall seconds plus the
// point-to-point messages and payload bytes the PE originated per phase.
// Fixed arrays keep it comparable and sendable by value through the comm
// substrate without allocation beyond the interface boxing the substrate
// already performs for every record.
type Sample struct {
	Secs  [NumPhases]float64
	Msgs  [NumPhases]int64
	Bytes [NumPhases]int64
}

// TotalSecs returns the sum over phases, one PE's instrumented step time.
func (s Sample) TotalSecs() float64 {
	var t float64
	for _, v := range s.Secs {
		t += v
	}
	return t
}

// Timer accumulates one PE's Sample across the phases of a step. All
// methods are nil-receiver no-ops so disabled runs carry no timing calls;
// an enabled Timer performs zero heap allocations in steady state
// (asserted by TestTimerZeroAlloc).
type Timer struct {
	cur Sample
}

// Enabled reports whether the timer collects.
func (t *Timer) Enabled() bool { return t != nil }

// Start returns the phase start time (zero when disabled, so the matching
// Stop is also a no-op without a second branch at the call site).
func (t *Timer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop adds the elapsed time since t0 to phase ph.
func (t *Timer) Stop(ph Phase, t0 time.Time) {
	if t == nil {
		return
	}
	t.cur.Secs[ph] += time.Since(t0).Seconds()
}

// Add folds externally measured seconds into phase ph (used when a section
// already times itself, e.g. the force kernel's wall-clock load metric).
func (t *Timer) Add(ph Phase, secs float64) {
	if t == nil {
		return
	}
	t.cur.Secs[ph] += secs
}

// Count adds originated messages and payload bytes to phase ph.
func (t *Timer) Count(ph Phase, msgs, bytes int64) {
	if t == nil {
		return
	}
	t.cur.Msgs[ph] += msgs
	t.cur.Bytes[ph] += bytes
}

// TakeSample returns the accumulated sample and resets the timer. Engines
// call it once per step so a sample never spans steps; the zero Sample is
// returned when disabled.
func (t *Timer) TakeSample() Sample {
	if t == nil {
		return Sample{}
	}
	s := t.cur
	t.cur = Sample{}
	return s
}

// Breakdown is the cross-PE reduction of one step's samples: slowest-PE and
// PE-average seconds per phase, and totals of the originated messages and
// bytes. Build one with Fold over every PE's Sample, then Finalize.
type Breakdown struct {
	MaxSecs [NumPhases]float64
	AveSecs [NumPhases]float64
	Msgs    [NumPhases]int64
	Bytes   [NumPhases]int64
}

// Fold accumulates one PE's sample (AveSecs holds sums until Finalize).
func (b *Breakdown) Fold(s Sample) {
	for ph := 0; ph < NumPhases; ph++ {
		b.MaxSecs[ph] = max(b.MaxSecs[ph], s.Secs[ph])
		b.AveSecs[ph] += s.Secs[ph]
		b.Msgs[ph] += s.Msgs[ph]
		b.Bytes[ph] += s.Bytes[ph]
	}
}

// Finalize converts the folded sums into PE averages.
func (b *Breakdown) Finalize(pes int) {
	if pes < 1 {
		return
	}
	for ph := 0; ph < NumPhases; ph++ {
		b.AveSecs[ph] /= float64(pes)
	}
}

// SumAveSecs returns the sum over phases of the PE-average seconds — the
// quantity that must track the PE-average whole-step wall time.
func (b Breakdown) SumAveSecs() float64 {
	var t float64
	for _, v := range b.AveSecs {
		t += v
	}
	return t
}

// SumMsgs and SumBytes return the step's total originated point-to-point
// traffic.
func (b Breakdown) SumMsgs() int64 {
	var t int64
	for _, v := range b.Msgs {
		t += v
	}
	return t
}

func (b Breakdown) SumBytes() int64 {
	var t int64
	for _, v := range b.Bytes {
		t += v
	}
	return t
}

// ---- Derived imbalance gauges -----------------------------------------

// LoadRatio returns maxLoad/aveLoad, the max/avg load ratio (1 = perfect
// balance; the paper's Fmax/Fave).
func LoadRatio(maxLoad, aveLoad float64) float64 {
	if aveLoad == 0 {
		return 0
	}
	return maxLoad / aveLoad
}

// Efficiency returns aveLoad/maxLoad, the parallel efficiency of the step
// (P*Fave / (P*Fmax); 1 = no PE waits).
func Efficiency(maxLoad, aveLoad float64) float64 {
	if maxLoad == 0 {
		return 0
	}
	return aveLoad / maxLoad
}

// BoundResidual returns f(m, n) - c0OverC: the slack remaining under the
// paper's theoretical balancing bound (eq. 8). Positive means the measured
// concentration ratio is still inside the region permanent-cell DLB can
// balance uniformly; it crossing zero is the predicted breakdown point.
// NaN when (m, n) is outside the bound's domain (m < 2 or n < 1).
func BoundResidual(m int, n, c0OverC float64) float64 {
	f, err := theory.F(m, n)
	if err != nil {
		return math.NaN()
	}
	return f - c0OverC
}

// ---- JSONL exporter ----------------------------------------------------

// StepRecord is one per-step JSONL metrics record, the schema
// `mdrun -metrics` emits. Phase maps are keyed by Phase.String() names.
// Bound and BoundResidual are omitted when outside the f(m,n) domain.
type StepRecord struct {
	Step        int     `json:"step"`
	StepWallMax float64 `json:"step_wall_max"`
	StepWallAve float64 `json:"step_wall_ave"`

	PhaseSecsAve map[string]float64 `json:"phase_secs_ave"`
	PhaseSecsMax map[string]float64 `json:"phase_secs_max"`
	PhaseMsgs    map[string]int64   `json:"phase_msgs"`
	PhaseBytes   map[string]int64   `json:"phase_bytes"`
	// PhaseSecsSumAve is the sum of phase_secs_ave, reported so the
	// phase-coverage contract (sum within 5% of step_wall_ave) is checkable
	// from the record alone.
	PhaseSecsSumAve float64 `json:"phase_secs_sum_ave"`

	WorkMax float64 `json:"work_max"`
	WorkAve float64 `json:"work_ave"`
	WorkMin float64 `json:"work_min"`

	LoadRatio  float64 `json:"load_ratio"`
	Efficiency float64 `json:"efficiency"`
	Imbalance  float64 `json:"imbalance"`

	// Balancer names the load-balancing strategy the run executes under
	// ("none" for static DDM); Moved/MovedBytes are its migration traffic
	// this step (columns handed over, and the particle+force payload bytes
	// that traveled with them).
	Balancer   string `json:"balancer"`
	Moved      int    `json:"moved"`
	MovedBytes int64  `json:"moved_bytes"`

	C0OverC       float64  `json:"c0_over_c"`
	NFactor       float64  `json:"n_factor"`
	Bound         *float64 `json:"bound,omitempty"`
	BoundResidual *float64 `json:"bound_residual,omitempty"`

	// TotalEnergy and Temperature are the global observables of the step's
	// census. They are not part of NewStepRecord's reduction (drivers fill
	// them from StepStats); deterministic for a given run identity, they
	// are what trace-equivalence checks compare.
	TotalEnergy float64 `json:"total_energy"`
	Temperature float64 `json:"temperature"`

	// SentFrames/SentBytes/ResendCount are the cumulative transport
	// traffic counters at this step (StepStats.SentFrames etc.): wire
	// frames on the TCP transport, channel messages in-process, plus
	// fault-layer resends. Driver-filled like TotalEnergy, and — being
	// transport-dependent — excluded from trace-equivalence comparisons.
	SentFrames  int64 `json:"sent_frames"`
	SentBytes   int64 `json:"sent_bytes"`
	ResendCount int64 `json:"resend_count"`
}

// NewStepRecord assembles the exportable record from the reduced step
// quantities. balancer is the strategy name from StepStats.Balancer ("" is
// normalized to "none"); m is the square-pillar cross-section (0 when
// unknown, e.g. static decompositions — the bound fields are then omitted).
func NewStepRecord(step int, b Breakdown, stepWallMax, stepWallAve,
	workMax, workAve, workMin float64, balancer string, moved int,
	movedBytes int64, c0OverC, nFactor float64, m int) StepRecord {
	if balancer == "" {
		balancer = "none"
	}
	rec := StepRecord{
		Step:        step,
		StepWallMax: stepWallMax,
		StepWallAve: stepWallAve,

		PhaseSecsAve: make(map[string]float64, NumPhases),
		PhaseSecsMax: make(map[string]float64, NumPhases),
		PhaseMsgs:    make(map[string]int64, NumPhases),
		PhaseBytes:   make(map[string]int64, NumPhases),

		PhaseSecsSumAve: b.SumAveSecs(),

		WorkMax: workMax, WorkAve: workAve, WorkMin: workMin,
		LoadRatio:  LoadRatio(workMax, workAve),
		Efficiency: Efficiency(workMax, workAve),
		Balancer:   balancer,
		Moved:      moved,
		MovedBytes: movedBytes,
		C0OverC:    c0OverC, NFactor: nFactor,
	}
	if workAve > 0 {
		rec.Imbalance = (workMax - workMin) / workAve
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		rec.PhaseSecsAve[name] = b.AveSecs[ph]
		rec.PhaseSecsMax[name] = b.MaxSecs[ph]
		rec.PhaseMsgs[name] = b.Msgs[ph]
		rec.PhaseBytes[name] = b.Bytes[ph]
	}
	if m >= 2 {
		if f, err := theory.F(m, nFactor); err == nil {
			res := f - c0OverC
			rec.Bound, rec.BoundResidual = &f, &res
		}
	}
	return rec
}

// JSONLWriter streams StepRecords as one JSON object per line.
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter returns a writer emitting to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Write emits one record (json.Encoder terminates each with a newline).
func (jw *JSONLWriter) Write(rec StepRecord) error { return jw.enc.Encode(rec) }

// ---- Prometheus exporter -----------------------------------------------

// Recovery carries the self-healing supervisor's run totals (see
// internal/supervise.Report) for export alongside the phase counters.
type Recovery struct {
	Panics          int64
	GuardViolations int64
	Deadlocks       int64
	WorkerFailures  int64
	Rollbacks       int64
	Retries         int64
	StepsReplayed   int64
}

// Cumulative accumulates per-step breakdowns into run-total counters for
// Prometheus text-format export.
type Cumulative struct {
	Steps        int64
	StepWallSecs float64 // summed PE-average step wall time
	Secs         [NumPhases]float64
	Msgs         [NumPhases]int64
	Bytes        [NumPhases]int64
	// SentFrames/SentBytes/Resends mirror the run's latest cumulative
	// transport counters (already run totals in StepStats, so Observe
	// stores rather than sums).
	SentFrames int64
	SentBytes  int64
	Resends    int64
	// Recovery, when non-nil, adds the supervisor's recovery counters to the
	// exposition (drivers fill it from the supervision report).
	Recovery *Recovery
}

// Add folds one finalized step breakdown and its PE-average wall time.
func (c *Cumulative) Add(stepWallAve float64, b Breakdown) {
	c.Steps++
	c.StepWallSecs += stepWallAve
	for ph := 0; ph < NumPhases; ph++ {
		c.Secs[ph] += b.AveSecs[ph]
		c.Msgs[ph] += b.Msgs[ph]
		c.Bytes[ph] += b.Bytes[ph]
	}
}

// ObserveTransport records the latest cumulative transport counters
// (StepStats carries run totals, so this overwrites instead of adding).
func (c *Cumulative) ObserveTransport(frames, bytes, resends int64) {
	c.SentFrames, c.SentBytes, c.Resends = frames, bytes, resends
}

// The exposition is split into a header half and a sample half so a
// multi-run exporter (internal/serve) can write each family's HELP/TYPE
// comment once and then one labelled sample set per run: Prometheus rejects
// expositions that repeat a family header, so the single-run
// WritePrometheus form cannot simply be called in a loop.

// recoveryFamilies enumerates the supervisor counter families in exposition
// order.
func recoveryFamilies(r *Recovery) []struct {
	name, help string
	v          int64
} {
	return []struct {
		name, help string
		v          int64
	}{
		{"permcell_recovery_panics_total", "PE panics caught by the supervisor.", r.Panics},
		{"permcell_recovery_guard_violations_total", "Physics-guard violations caught by the supervisor.", r.GuardViolations},
		{"permcell_recovery_deadlocks_total", "Watchdog deadlocks caught by the supervisor.", r.Deadlocks},
		{"permcell_transport_worker_failures_total", "Distributed worker failures (exits, heartbeat timeouts, frame corruption, protocol violations) caught by the supervisor.", r.WorkerFailures},
		{"permcell_recovery_rollbacks_total", "Checkpoint rollbacks performed by the supervisor.", r.Rollbacks},
		{"permcell_recovery_retries_total", "Recovery attempts consumed from the retry budget.", r.Retries},
		{"permcell_recovery_steps_replayed_total", "Steps re-executed during post-rollback replay.", r.StepsReplayed},
	}
}

// labelEscaper escapes label values per the Prometheus text exposition
// format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Labels renders key/value pairs as a label-block body (no braces), escaped
// for the text exposition format: Labels("run", "r1") == `run="r1"`. An odd
// trailing key is ignored; an empty call returns "".
func Labels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, kv[i], labelEscaper.Replace(kv[i+1]))
	}
	return b.String()
}

// joinLabels merges two label-block bodies into a rendered {...} block
// ("" when both are empty).
func joinLabels(a, b string) string {
	switch {
	case a == "" && b == "":
		return ""
	case a == "":
		return "{" + b + "}"
	case b == "":
		return "{" + a + "}"
	default:
		return "{" + a + "," + b + "}"
	}
}

// WritePrometheusHeaders writes the HELP/TYPE header of every Cumulative
// family (including the recovery families when recovery is set). Call it
// once per exposition, before any WriteSamples.
func WritePrometheusHeaders(w io.Writer, recovery bool) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP permcell_steps_total Time steps recorded by the metrics layer.\n")
	p("# TYPE permcell_steps_total counter\n")
	p("# HELP permcell_step_wall_seconds_total PE-average whole-step wall seconds, summed over steps.\n")
	p("# TYPE permcell_step_wall_seconds_total counter\n")
	p("# HELP permcell_phase_seconds_total PE-average wall seconds per phase, summed over steps.\n")
	p("# TYPE permcell_phase_seconds_total counter\n")
	p("# HELP permcell_phase_messages_total Point-to-point messages originated per phase.\n")
	p("# TYPE permcell_phase_messages_total counter\n")
	p("# HELP permcell_phase_bytes_total Point-to-point payload bytes originated per phase.\n")
	p("# TYPE permcell_phase_bytes_total counter\n")
	p("# HELP permcell_transport_sent_frames_total Messages that crossed the transport (wire frames on TCP).\n")
	p("# TYPE permcell_transport_sent_frames_total counter\n")
	p("# HELP permcell_transport_sent_bytes_total Payload bytes that crossed the transport.\n")
	p("# TYPE permcell_transport_sent_bytes_total counter\n")
	p("# HELP permcell_transport_resends_total Fault-layer delivery retries on the transport.\n")
	p("# TYPE permcell_transport_resends_total counter\n")
	if recovery {
		for _, m := range recoveryFamilies(&Recovery{}) {
			p("# HELP %s %s\n", m.name, m.help)
			p("# TYPE %s counter\n", m.name)
		}
	}
	return err
}

// WriteSamples writes c's sample lines with the given extra label-block
// body (from Labels; "" = unlabelled) attached to every series. Recovery
// samples are included only when c.Recovery is non-nil.
func (c *Cumulative) WriteSamples(w io.Writer, labels string) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("permcell_steps_total%s %d\n", joinLabels("", labels), c.Steps)
	p("permcell_step_wall_seconds_total%s %g\n", joinLabels("", labels), c.StepWallSecs)
	for ph := Phase(0); ph < NumPhases; ph++ {
		p("permcell_phase_seconds_total%s %g\n", joinLabels(Labels("phase", ph.String()), labels), c.Secs[ph])
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		p("permcell_phase_messages_total%s %d\n", joinLabels(Labels("phase", ph.String()), labels), c.Msgs[ph])
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		p("permcell_phase_bytes_total%s %d\n", joinLabels(Labels("phase", ph.String()), labels), c.Bytes[ph])
	}
	p("permcell_transport_sent_frames_total%s %d\n", joinLabels("", labels), c.SentFrames)
	p("permcell_transport_sent_bytes_total%s %d\n", joinLabels("", labels), c.SentBytes)
	p("permcell_transport_resends_total%s %d\n", joinLabels("", labels), c.Resends)
	if r := c.Recovery; r != nil {
		for _, m := range recoveryFamilies(r) {
			p("%s%s %d\n", m.name, joinLabels("", labels), m.v)
		}
	}
	return err
}

// WritePrometheus writes the counters in Prometheus text exposition format:
// the family headers followed by one unlabelled sample set.
func (c *Cumulative) WritePrometheus(w io.Writer) error {
	if err := WritePrometheusHeaders(w, c.Recovery != nil); err != nil {
		return err
	}
	return c.WriteSamples(w, "")
}
