package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindHello},
		{Kind: KindData, Src: 3, Dst: 1, Tag: 5, Payload: []byte("hello")},
		{Kind: KindData, Src: 0, Dst: 15, Tag: -7, Payload: bytes.Repeat([]byte{0xAB}, 1<<15)},
		{Kind: KindStep, Src: -1, Dst: -1, Tag: 0, Payload: []byte{0}},
		{Kind: KindResultAck, Src: 2, Dst: -1, Tag: -2147483648},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
	}
	for i, want := range frames {
		got, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst || got.Tag != want.Tag {
			t.Fatalf("frame %d header mismatch: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if _, err := DecodeFrame(&buf); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}
}

func TestFrameDecodeRejectsGarbage(t *testing.T) {
	valid := func() []byte {
		var b bytes.Buffer
		if err := EncodeFrame(&b, Frame{Kind: KindData, Src: 1, Dst: 2, Tag: 3, Payload: []byte("payload")}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()

	t.Run("unknown kind", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = 0xFF
		if _, err := DecodeFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("unknown kind must error")
		}
	})
	t.Run("zero kind", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = 0
		if _, err := DecodeFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("zero kind must error")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		for cut := 1; cut < len(valid)-7; cut++ {
			if _, err := DecodeFrame(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("truncation at %d must error", cut)
			}
		}
	})
	t.Run("undersized length", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(b[0:4], headerLen-1)
		if _, err := DecodeFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("undersized length must error")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(b[0:4], headerLen+MaxPayload+1)
		if _, err := DecodeFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("oversized length: want ErrFrameTooLarge, got %v", err)
		}
	})
	t.Run("lying length on short stream", func(t *testing.T) {
		// Claims 1 MiB of payload, delivers 7 bytes: must error with
		// ErrUnexpectedEOF, not block or allocate the claimed size.
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(b[0:4], headerLen+1<<20)
		if _, err := DecodeFrame(bytes.NewReader(b)); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
	})
}

func TestEncodeFrameRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, Frame{Kind: 0}); err == nil {
		t.Fatal("encoding kind 0 must error")
	}
	if err := EncodeFrame(&buf, Frame{Kind: maxKind + 1}); err == nil {
		t.Fatal("encoding unknown kind must error")
	}
}

func TestPayloadEnvelope(t *testing.T) {
	for _, v := range []any{nil, 42, 3.14, "text", []byte{1, 2, 3}} {
		b, err := EncodePayload(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := DecodePayload(b)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		switch want := v.(type) {
		case []byte:
			if !bytes.Equal(got.([]byte), want) {
				t.Fatalf("payload mismatch: got %v want %v", got, want)
			}
		default:
			if got != v {
				t.Fatalf("payload mismatch: got %v want %v", got, v)
			}
		}
	}
	if _, err := DecodePayload([]byte("not gob")); err == nil {
		t.Fatal("garbage payload must error")
	}
}

func TestPeerOverPipe(t *testing.T) {
	a, b := net.Pipe()
	pa, pb := NewPeer(a), NewPeer(b)
	defer pa.Close()
	defer pb.Close()

	want := Frame{Kind: KindData, Src: 2, Dst: 0, Tag: 4, Payload: []byte("across the pipe")}
	errc := make(chan error, 1)
	go func() { errc <- pa.Send(want) }()
	got, err := pb.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if serr := <-errc; serr != nil {
		t.Fatalf("send: %v", serr)
	}
	if got.Kind != want.Kind || got.Src != want.Src || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("frame mismatch: got %+v", got)
	}
	frames, bytesSent := pa.Sent()
	if frames != 1 || bytesSent != int64(4+headerLen+len(want.Payload)) {
		t.Fatalf("sent counters: frames=%d bytes=%d", frames, bytesSent)
	}
}
