// Package transport implements the wire layer for multi-process runs:
// a length-prefixed binary frame codec and a connection wrapper used by
// the TCP backend (coordinator hub + mdrank workers).
//
// Frame layout (all integers big-endian):
//
//	uint32  length   // bytes after this field: 13 + len(payload)
//	byte    kind     // one of the Kind* constants
//	int32   src      // source rank (data frames) or proc id (control)
//	int32   dst      // destination rank, -1 for control frames
//	int32   tag      // protocol tag; negative tags are collectives
//	[]byte  payload  // gob-encoded envelope, may be empty
//
// The codec is deliberately paranoid on the read side: a lying length
// prefix can never allocate more than the bytes actually present on the
// stream, unknown kinds and undersized lengths are errors, and no input
// can panic the decoder (fuzzed by FuzzFrameDecode).
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Frame kinds. The zero value is invalid on purpose: an all-zero header
// (e.g. from a half-open connection) must not decode as a valid frame.
const (
	KindHello     byte = 1 // worker -> coordinator: first frame after dial
	KindSpec      byte = 2 // coordinator -> worker: run configuration
	KindData      byte = 3 // rank-to-rank message, routed through the hub
	KindStep      byte = 4 // coordinator -> worker: advance N steps
	KindStepAck   byte = 5 // worker -> coordinator: batch done + stats
	KindSnapshot  byte = 6 // coordinator -> worker: capture local frames
	KindSnapAck   byte = 7 // worker -> coordinator: local checkpoint frames
	KindFinish    byte = 8 // coordinator -> worker: finalize the run
	KindResultAck byte = 9 // worker -> coordinator: final result share
	// KindHeartbeat keeps an otherwise-idle link inside its read deadline.
	// Payload-free, carries no protocol state, and both sides discard it on
	// receipt; its only job is to prove the peer's event loop is alive.
	KindHeartbeat byte = 10
	maxKind            = KindHeartbeat
)

// MaxPayload bounds a single frame's payload. The largest legitimate
// frames are checkpoint snapshots of a whole rank; 64 MiB is far above
// any configuration this engine accepts while still rejecting absurd
// length prefixes before any allocation happens.
const MaxPayload = 64 << 20

// headerLen is the fixed part after the length prefix: kind + src + dst + tag.
const headerLen = 1 + 4 + 4 + 4

// Frame is one unit on the wire.
type Frame struct {
	Kind    byte
	Src     int32
	Dst     int32
	Tag     int32
	Payload []byte
}

// ErrFrameTooLarge is returned when a length prefix exceeds MaxPayload.
var ErrFrameTooLarge = errors.New("transport: frame exceeds max payload")

// ErrMalformedFrame marks structurally illegal frames (length below the
// header size, unknown kind). Wrapped — use errors.Is. A reader hitting it
// must treat the stream as unsynchronized: framing cannot be recovered
// past a corrupt header.
var ErrMalformedFrame = errors.New("transport: malformed frame")

// EncodeFrame writes f to w in wire format.
func EncodeFrame(w io.Writer, f Frame) error {
	if f.Kind == 0 || f.Kind > maxKind {
		return fmt.Errorf("transport: encode: invalid frame kind %d", f.Kind)
	}
	if len(f.Payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	var hdr [4 + headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(headerLen+len(f.Payload)))
	hdr[4] = f.Kind
	binary.BigEndian.PutUint32(hdr[5:9], uint32(f.Src))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(f.Dst))
	binary.BigEndian.PutUint32(hdr[13:17], uint32(f.Tag))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFrame reads one frame from r. It returns io.EOF only when the
// stream ends cleanly at a frame boundary; a frame cut mid-way yields
// io.ErrUnexpectedEOF. A length prefix larger than MaxPayload is
// rejected before any payload allocation, and a truncated stream never
// allocates more than the bytes it actually carries.
func DecodeFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err // io.EOF at a clean boundary
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: length %d below header size", ErrMalformedFrame, n)
	}
	if n > headerLen+MaxPayload {
		return Frame{}, ErrFrameTooLarge
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, unexpectedEOF(err)
	}
	f := Frame{
		Kind: hdr[0],
		Src:  int32(binary.BigEndian.Uint32(hdr[1:5])),
		Dst:  int32(binary.BigEndian.Uint32(hdr[5:9])),
		Tag:  int32(binary.BigEndian.Uint32(hdr[9:13])),
	}
	if f.Kind == 0 || f.Kind > maxKind {
		return Frame{}, fmt.Errorf("%w: unknown kind %d", ErrMalformedFrame, f.Kind)
	}
	if pl := int64(n) - headerLen; pl > 0 {
		// CopyN into a growable buffer: the buffer only ever holds bytes
		// that were really read, so a lying length prefix on a short
		// stream cannot force a large allocation.
		var buf bytes.Buffer
		if m, err := io.CopyN(&buf, r, pl); err != nil {
			_ = m
			return Frame{}, unexpectedEOF(err)
		}
		f.Payload = buf.Bytes()
	}
	return f, nil
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// envelope wraps a dynamically-typed payload for gob. Encoding through a
// single wrapper struct gives every message the same wire shape; the
// concrete types inside V must be gob.Register'd by their packages.
type envelope struct{ V any }

// EncodePayload gob-encodes v (wrapped in an envelope) into a byte slice
// suitable for Frame.Payload. A fresh encoder per payload keeps frames
// self-contained: any frame can be decoded without stream context.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{V: v}); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(b []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return env.V, nil
}
