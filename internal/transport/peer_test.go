package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// TestHeartbeatFrameRoundTrip pins the liveness frame's shape: header
// only, legal at the codec boundary (maxKind tracks it).
func TestHeartbeatFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Kind: KindHeartbeat, Src: 3, Dst: -1}
	if err := EncodeFrame(&buf, want); err != nil {
		t.Fatalf("encode heartbeat: %v", err)
	}
	got, err := DecodeFrame(&buf)
	if err != nil {
		t.Fatalf("decode heartbeat: %v", err)
	}
	if got.Kind != KindHeartbeat || got.Src != 3 || got.Dst != -1 || len(got.Payload) != 0 {
		t.Fatalf("heartbeat mismatch: %+v", got)
	}
}

// TestMalformedFrameSentinel checks that the codec's rejection paths all
// carry ErrMalformedFrame (or ErrFrameTooLarge), so the coordinator can
// classify stream corruption as a frame-decode failure by errors.Is
// instead of string matching.
func TestMalformedFrameSentinel(t *testing.T) {
	valid := func() []byte {
		var b bytes.Buffer
		if err := EncodeFrame(&b, Frame{Kind: KindData, Src: 1, Dst: 2, Tag: 3, Payload: []byte("p")}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()

	t.Run("short length", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(b[0:4], headerLen-1)
		if _, err := DecodeFrame(bytes.NewReader(b)); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("want ErrMalformedFrame, got %v", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = maxKind + 1
		if _, err := DecodeFrame(bytes.NewReader(b)); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("want ErrMalformedFrame, got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(b[0:4], headerLen+MaxPayload+1)
		if _, err := DecodeFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
	})
}

// TestPeerCloseIdempotent checks Close can be called from multiple
// teardown paths (router exit, engine shutdown, defer) without error,
// and that Closed() reports the state.
func TestPeerCloseIdempotent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	p := NewPeer(a)
	if p.Closed() {
		t.Fatal("fresh peer reports closed")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if !p.Closed() {
		t.Fatal("Closed() false after Close")
	}
	for i := 0; i < 3; i++ {
		if err := p.Close(); err != nil {
			t.Fatalf("repeat Close %d: %v", i, err)
		}
	}
}

// TestPeerSendAfterClose checks the typed write-after-close error: a
// router racing engine teardown must be able to tell "we closed this"
// (ErrPeerClosed, silent) from a genuine peer failure (typed loudly).
func TestPeerSendAfterClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	p := NewPeer(a)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	err := p.Send(Frame{Kind: KindHeartbeat})
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("send after close: want ErrPeerClosed, got %v", err)
	}
	if _, err := p.Recv(); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("recv after close: want ErrPeerClosed, got %v", err)
	}
}

// TestPeerReadDeadline checks SetTimeouts arms a real read window: a
// silent peer trips a timeout (net.Error with Timeout() true — the
// signal the coordinator classifies as heartbeat loss) within the
// configured bound rather than blocking forever.
func TestPeerReadDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	p := NewPeer(a)
	p.SetTimeouts(50*time.Millisecond, 0)

	start := time.Now()
	_, err := p.Recv()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("recv on a silent link returned without error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net.Error timeout, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire with a 50ms window", elapsed)
	}
}
