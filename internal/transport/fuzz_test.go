package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzFrameDecode hammers the wire codec with arbitrary byte streams.
// Contract: DecodeFrame never panics, never allocates beyond the bytes
// actually present on the stream, and anything it accepts survives an
// encode/decode round trip bit for bit.
func FuzzFrameDecode(f *testing.F) {
	seed := func(fr Frame) []byte {
		var b bytes.Buffer
		if err := EncodeFrame(&b, fr); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	valid := seed(Frame{Kind: KindData, Src: 1, Dst: 2, Tag: -3, Payload: []byte("fuzz me")})
	f.Add(valid)
	f.Add(seed(Frame{Kind: KindHello}))
	f.Add(seed(Frame{Kind: KindResultAck, Src: 7, Dst: -1, Tag: 0, Payload: bytes.Repeat([]byte{0x5A}, 300)}))
	// Truncations of a valid frame.
	for cut := 0; cut < len(valid); cut += 3 {
		f.Add(valid[:cut])
	}
	// Oversized and undersized length prefixes.
	huge := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(huge[0:4], 0xFFFFFFFF)
	f.Add(huge)
	tiny := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(tiny[0:4], 1)
	f.Add(tiny)
	// Unknown kind.
	badKind := append([]byte(nil), valid...)
	badKind[4] = 0x7F
	f.Add(badKind)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := DecodeFrame(r)
			if err != nil {
				return // any error is fine; panics and hangs are not
			}
			if fr.Kind == 0 || fr.Kind > maxKind {
				t.Fatalf("decoder accepted invalid kind %d", fr.Kind)
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("decoder accepted payload of %d bytes", len(fr.Payload))
			}
			// Round trip: re-encoding what we decoded must reproduce an
			// identical frame.
			var buf bytes.Buffer
			if err := EncodeFrame(&buf, fr); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			again, err := DecodeFrame(&buf)
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if again.Kind != fr.Kind || again.Src != fr.Src || again.Dst != fr.Dst || again.Tag != fr.Tag || !bytes.Equal(again.Payload, fr.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", fr, again)
			}
			if _, err := io.ReadAll(io.LimitReader(r, 0)); err != nil {
				t.Fatal(err)
			}
		}
	})
}
