package transport

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
)

// Peer wraps one connection with buffered, mutex-serialized frame writes
// and sent-traffic counters. Sends may come from many goroutines (every
// local PE plus the control loop); the mutex serializes them without
// reordering any single goroutine's send sequence, which is all the
// per-(src,tag) FIFO delivery contract needs.
//
// Recv is NOT locked: the protocol dedicates exactly one reader
// goroutine per connection.
type Peer struct {
	c  io.ReadWriteCloser
	br *bufio.Reader

	mu sync.Mutex
	bw *bufio.Writer

	sentFrames atomic.Int64
	sentBytes  atomic.Int64
}

// NewPeer wraps c. The caller owns c's lifetime via Close.
func NewPeer(c io.ReadWriteCloser) *Peer {
	return &Peer{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Send writes one frame and flushes it to the connection.
func (p *Peer) Send(f Frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := EncodeFrame(p.bw, f); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.sentFrames.Add(1)
	p.sentBytes.Add(int64(4 + headerLen + len(f.Payload)))
	return nil
}

// Recv reads the next frame. Single-reader only.
func (p *Peer) Recv() (Frame, error) {
	return DecodeFrame(p.br)
}

// Close closes the underlying connection.
func (p *Peer) Close() error {
	return p.c.Close()
}

// Sent returns the cumulative frames and wire bytes written so far.
func (p *Peer) Sent() (frames, bytes int64) {
	return p.sentFrames.Load(), p.sentBytes.Load()
}
