package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerClosed is returned by Send (and Recv) after Close: the shutdown
// path and the recovery path can both tear a peer down, so a send racing
// the teardown must surface as this typed, expected error rather than as a
// raw "use of closed network connection" that would be mistaken for a
// worker failure.
var ErrPeerClosed = errors.New("transport: peer closed")

// deadliner is the optional per-direction deadline surface of the wrapped
// connection (net.Conn and net.Pipe implement it; plain pipes in tests may
// not, in which case timeouts silently stay disarmed).
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Peer wraps one connection with buffered, mutex-serialized frame writes
// and sent-traffic counters. Sends may come from many goroutines (every
// local PE plus the control loop); the mutex serializes them without
// reordering any single goroutine's send sequence, which is all the
// per-(src,tag) FIFO delivery contract needs.
//
// Recv is NOT locked: the protocol dedicates exactly one reader
// goroutine per connection.
type Peer struct {
	c  io.ReadWriteCloser
	br *bufio.Reader

	mu sync.Mutex
	bw *bufio.Writer

	closed atomic.Bool

	// Per-operation timeouts (0 = unbounded). Armed as absolute deadlines
	// before each Recv/Send when the connection supports deadlines.
	readTimeout  atomic.Int64 // time.Duration
	writeTimeout atomic.Int64

	sentFrames atomic.Int64
	sentBytes  atomic.Int64
}

// NewPeer wraps c. The caller owns c's lifetime via Close.
func NewPeer(c io.ReadWriteCloser) *Peer {
	return &Peer{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// SetTimeouts arms per-operation deadlines: every subsequent Recv must
// complete within read and every Send within write (0 leaves the
// direction unbounded). On a heartbeat-carrying link the read timeout is
// the liveness window — a healthy peer's heartbeats keep each Recv well
// inside it, so a tripped deadline means the peer is dead or wedged, not
// merely idle. No-op directions on connections without deadline support.
func (p *Peer) SetTimeouts(read, write time.Duration) {
	p.readTimeout.Store(int64(read))
	p.writeTimeout.Store(int64(write))
}

// Send writes one frame and flushes it to the connection.
func (p *Peer) Send(f Frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("transport: send frame kind %d: %w", f.Kind, ErrPeerClosed)
	}
	if d := time.Duration(p.writeTimeout.Load()); d > 0 {
		if dl, ok := p.c.(deadliner); ok {
			dl.SetWriteDeadline(time.Now().Add(d))
		}
	}
	if err := EncodeFrame(p.bw, f); err != nil {
		return p.sendErr(err)
	}
	if err := p.bw.Flush(); err != nil {
		return p.sendErr(err)
	}
	p.sentFrames.Add(1)
	p.sentBytes.Add(int64(4 + headerLen + len(f.Payload)))
	return nil
}

// sendErr maps a write error on a concurrently-closed peer to the typed
// ErrPeerClosed: Close may land between the entry check and the write.
func (p *Peer) sendErr(err error) error {
	if p.closed.Load() {
		return fmt.Errorf("%v: %w", err, ErrPeerClosed)
	}
	return err
}

// Recv reads the next frame. Single-reader only.
func (p *Peer) Recv() (Frame, error) {
	if d := time.Duration(p.readTimeout.Load()); d > 0 {
		if dl, ok := p.c.(deadliner); ok {
			dl.SetReadDeadline(time.Now().Add(d))
		}
	}
	f, err := DecodeFrame(p.br)
	if err != nil && p.closed.Load() {
		return f, fmt.Errorf("%v: %w", err, ErrPeerClosed)
	}
	return f, err
}

// Close closes the underlying connection. Idempotent: the shutdown path
// and the recovery path may both reach it; only the first call touches the
// connection, the rest return nil.
func (p *Peer) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	return p.c.Close()
}

// Closed reports whether Close has been called. A reader seeing an error
// from Recv can use it to distinguish a local teardown from a genuine
// connection fault.
func (p *Peer) Closed() bool { return p.closed.Load() }

// Sent returns the cumulative frames and wire bytes written so far.
func (p *Peer) Sent() (frames, bytes int64) {
	return p.sentFrames.Load(), p.sentBytes.Load()
}
