package conc

import (
	"math"
	"testing"
)

func TestComputeEmptyInput(t *testing.T) {
	s := Compute(nil)
	if s.C != 0 || s.NFactor != 0 {
		t.Errorf("empty input gave %+v", s)
	}
}

func TestComputeUniformStart(t *testing.T) {
	// No empty cells anywhere: C0/C = 0 and n = 0 (origin of Fig. 9).
	pes := []PE{{Cells: 9, Empty: 0}, {Cells: 9, Empty: 0}}
	s := Compute(pes)
	if s.C != 18 || s.C0 != 0 {
		t.Errorf("census wrong: %+v", s)
	}
	if s.C0OverC != 0 || s.NFactor != 0 {
		t.Errorf("uniform start: %+v", s)
	}
}

func TestComputePaperExample(t *testing.T) {
	// Fig. 8's worked example: N=90, C=81, C0=36, C'=21, C0'=16 in a single
	// maximum domain; n = (16/21)/(36/81) ~ 1.7.
	// Model it as: one PE holds the maximum domain (21 cells, 16 empty),
	// the rest hold 60 cells with 20 empty.
	pes := []PE{
		{Cells: 21, Empty: 16},
		{Cells: 20, Empty: 7},
		{Cells: 20, Empty: 7},
		{Cells: 20, Empty: 6},
	}
	s := Compute(pes)
	if s.C != 81 || s.C0 != 36 {
		t.Fatalf("census wrong: %+v", s)
	}
	if math.Abs(s.C0OverC-36.0/81) > 1e-12 {
		t.Errorf("C0/C = %v", s.C0OverC)
	}
	// PE 0 has both max cells and max empty, so n = (16/21)/(36/81).
	want := (16.0 / 21.0) / (36.0 / 81.0)
	if math.Abs(s.NFactor-want) > 1e-12 {
		t.Errorf("n = %v, want %v (~1.7)", s.NFactor, want)
	}
	if s.NFactor < 1.6 || s.NFactor > 1.8 {
		t.Errorf("n = %v outside the paper's ~1.7", s.NFactor)
	}
}

func TestComputeTwoEstimatorPEs(t *testing.T) {
	// Max-cells PE differs from max-empty PE; n must use their average.
	pes := []PE{
		{Cells: 21, Empty: 5}, // max cells
		{Cells: 10, Empty: 9}, // max empty
		{Cells: 20, Empty: 2},
	}
	s := Compute(pes)
	if s.MaxCellsPE != 0 || s.MaxEmptyPE != 1 {
		t.Fatalf("estimators = %d, %d", s.MaxCellsPE, s.MaxEmptyPE)
	}
	c0c := float64(16) / 51
	want := ((5.0/21 + 9.0/10) / 2) / c0c
	if math.Abs(s.NFactor-want) > 1e-12 {
		t.Errorf("n = %v, want %v", s.NFactor, want)
	}
}

func TestFromOccupancy(t *testing.T) {
	// 8 cells, 2 domains of 4; domain 1 entirely empty.
	occ := []int{1, 2, 1, 3, 0, 0, 0, 0}
	s := FromOccupancy(occ, func(c int) int { return c / 4 }, 2)
	if s.C != 8 || s.C0 != 4 {
		t.Fatalf("census: %+v", s)
	}
	if s.C0OverC != 0.5 {
		t.Errorf("C0/C = %v", s.C0OverC)
	}
	// Max cells ties at 4 (first wins: PE 0, ratio 0); max empty is PE 1
	// (ratio 1). n = ((0+1)/2)/0.5 = 1.
	if s.NFactor != 1 {
		t.Errorf("n = %v, want 1", s.NFactor)
	}
}

func TestNFactorAtLeastZero(t *testing.T) {
	pes := []PE{{Cells: 4, Empty: 1}, {Cells: 4, Empty: 2}}
	s := Compute(pes)
	if s.NFactor < 0 {
		t.Errorf("n = %v < 0", s.NFactor)
	}
}
