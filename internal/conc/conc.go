// Package conc measures the particle-concentration quantities of Section 4:
// the particle concentration ratio C_0/C (fraction of empty cells in the
// whole space) and the concentration factor n = (C'_0/C') / (C_0/C), where
// C' counts cells in the "maximum domain". Following Section 4.2, n is
// estimated from two PEs — the one hosting the most cells and the one
// hosting the most empty cells — because a parallel run does not guarantee
// any single PE holds the true maximum domain.
package conc

// PE is one processing element's cell census for a time step.
type PE struct {
	Cells int // cells currently hosted
	Empty int // hosted cells containing no particle
}

// Stats summarizes the concentration state of one time step.
type Stats struct {
	C  int // total cells
	C0 int // empty cells in the whole space

	// MaxCellsPE / MaxEmptyPE are the indices of the two estimator PEs.
	MaxCellsPE int
	MaxEmptyPE int

	// C0OverC is the particle concentration ratio C_0/C.
	C0OverC float64
	// NFactor is the concentration factor n. It is 0 when C_0 == 0 (the
	// uniform start: the paper's Fig. 9 trajectory begins at the origin).
	NFactor float64
}

// Compute derives Stats from the per-PE census.
func Compute(pes []PE) Stats {
	var s Stats
	if len(pes) == 0 {
		return s
	}
	s.MaxCellsPE, s.MaxEmptyPE = 0, 0
	for i, pe := range pes {
		s.C += pe.Cells
		s.C0 += pe.Empty
		if pe.Cells > pes[s.MaxCellsPE].Cells {
			s.MaxCellsPE = i
		}
		if pe.Empty > pes[s.MaxEmptyPE].Empty {
			s.MaxEmptyPE = i
		}
	}
	if s.C == 0 {
		return s
	}
	s.C0OverC = float64(s.C0) / float64(s.C)
	if s.C0 == 0 {
		return s
	}
	ratio := func(i int) float64 {
		if pes[i].Cells == 0 {
			return 0
		}
		return float64(pes[i].Empty) / float64(pes[i].Cells)
	}
	avg := (ratio(s.MaxCellsPE) + ratio(s.MaxEmptyPE)) / 2
	s.NFactor = avg / s.C0OverC
	return s
}

// FromOccupancy computes Stats for a serial simulation treated as one PE
// per domain: occ is the per-cell particle count and owner maps each cell
// to a domain index in [0, p).
func FromOccupancy(occ []int, owner func(cell int) int, p int) Stats {
	pes := make([]PE, p)
	for c, n := range occ {
		d := owner(c)
		pes[d].Cells++
		if n == 0 {
			pes[d].Empty++
		}
	}
	return Compute(pes)
}
