package kernel

// The retired full-stencil kernel, retained in test code as a second
// oracle next to the map kernel (kernel_map_test.go). It visits every
// ordered (cell, neighbor) pair — no Newton's-third-law halving — so each
// hosted-hosted pair is evaluated twice, once from each side, with the
// energy and virial split half per visit. Any pair the half-stencil
// traversal skips or double-counts therefore shows up as a force or
// energy mismatch against this kernel, through an entirely different
// traversal order than the production code.

import (
	"math"
	"testing"

	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// fullStencilForces computes forces one-sidedly over the full 26-neighbor
// stencil: for every hosted particle it scans its own cell and all
// distinct neighbor cells (hosted and ghost alike) and accumulates only
// its own side of each interaction, with energy and virial counted half
// per visit. Hosted-hosted pairs are visited twice so their energy sums to
// the full pair energy; ghost pairs are visited once and contribute half,
// exactly the domain-splitting convention of Compute. Returns the forces
// (indexed like s.Pos), this domain's energy share and the number of
// one-sided pair visits (2*hosted + ghost pairs).
func fullStencilForces(
	g space.Grid,
	pair potential.Pair,
	pos []vec.V,
	cellMap map[int][]int,
	hosted map[int]bool,
	ghost map[int][]vec.V,
) (frc []vec.V, potE float64, pairs int64) {
	frc = make([]vec.V, len(pos))
	rc2 := pair.Cutoff() * pair.Cutoff()
	box := g.Box
	var nbBuf []int
	for cell, locals := range cellMap {
		for _, i := range locals {
			// Own cell: all other residents.
			for _, j := range locals {
				if j == i {
					continue
				}
				pairs++
				d := box.Displacement(pos[i], pos[j])
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				en, f := pair.EnergyForce(r2)
				potE += en / 2
				frc[i] = frc[i].Add(d.Scale(f))
			}
			// All 26 distinct neighbor cells, hosted or ghost.
			nbBuf = g.Neighbors26(cell, nbBuf[:0])
			for _, nc := range nbBuf {
				var others []vec.V
				if hosted[nc] {
					for _, j := range cellMap[nc] {
						others = append(others, pos[j])
					}
				} else {
					others = ghost[nc]
				}
				for _, q := range others {
					pairs++
					d := box.Displacement(pos[i], q)
					r2 := d.Norm2()
					if r2 >= rc2 || r2 == 0 {
						continue
					}
					en, f := pair.EnergyForce(r2)
					potE += en / 2
					frc[i] = frc[i].Add(d.Scale(f))
				}
			}
		}
	}
	return frc, potE, pairs
}

// TestFullStencilOracleMatchesBruteForce anchors the oracle itself: on an
// all-hosted system its forces and energy must match the plain O(N^2)
// reference.
func TestFullStencilOracleMatchesBruteForce(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	for i := range sys.Set.Pos {
		sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(0.09, -0.13, 0.06)))
	}
	cellMap, hosted := buildMaps(g, sys.Set, func(int) bool { return true })
	frc, pot, _ := fullStencilForces(g, lj, sys.Set.Pos, cellMap, hosted, nil)
	wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)
	if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
		t.Errorf("pot = %v, want %v", pot, wantPot)
	}
	for i := range wantFrc {
		if wantFrc[i].Dist(frc[i]) > 1e-9*(1+wantFrc[i].Norm()) {
			t.Fatalf("force %d mismatch: %v vs %v", i, frc[i], wantFrc[i])
		}
	}
}

// TestPropertyRandomizedConfigs is the property test of the half-stencil
// kernel: randomized configurations spanning grid geometries from the
// degenerate 1x1x1 (every neighbor is the cell itself) through 2x2x2 and
// 3x3x3 (wrap-collision territory, the MinImage slow path) up to >= 4
// cells per side (the precomputed-shift fast path), each checked at shard
// counts 1, 2 and 8 against three independent oracles: the brute-force
// O(N^2) sum, the retired full-stencil kernel, and — bit-for-bit at
// shards=1 — the historical map kernel.
func TestPropertyRandomizedConfigs(t *testing.T) {
	lj := potential.NewPaperLJ()
	cases := []struct {
		n   int
		rho float64
		nc  int // expected cells per side, pinned so geometry can't drift
	}{
		{26, 0.4, 1},
		{100, 0.4, 2},
		{256, 0.4, 3},
		{500, 0.3, 4},
		{864, 0.256, 6},
	}
	for _, tc := range cases {
		for trial := 0; trial < 3; trial++ {
			seed := uint64(tc.n*10 + trial + 1)
			sys, err := workload.LatticeGas(tc.n, tc.rho, 0.722, seed)
			if err != nil {
				t.Fatal(err)
			}
			g, err := space.NewGrid(sys.Box, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			if g.Nx != tc.nc || g.Ny != tc.nc || g.Nz != tc.nc {
				t.Fatalf("N=%d rho=%g: grid %dx%dx%d, want %d^3", tc.n, tc.rho, g.Nx, g.Ny, g.Nz, tc.nc)
			}
			r := rng.New(seed ^ 0xBEEF)
			for i := range sys.Set.Pos {
				sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(
					0.9*(r.Float64()-0.5), 0.9*(r.Float64()-0.5), 0.9*(r.Float64()-0.5))))
			}

			wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)
			cellMap, hosted := buildMaps(g, sys.Set, func(int) bool { return true })
			fsFrc, fsPot, fsPairs := fullStencilForces(g, lj, sys.Set.Pos, cellMap, hosted, nil)
			ref := sys.Set.Clone()
			ref.ZeroForces()
			mapPot, _ := mapPairForces(g, lj, ref, cellMap, hosted, nil)

			if math.Abs(fsPot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
				t.Fatalf("N=%d trial %d: full-stencil pot %v vs brute %v", tc.n, trial, fsPot, wantPot)
			}
			for _, shards := range []int{1, 2, 8} {
				got := sys.Set.Clone()
				got.ZeroForces()
				cl := buildFlat(t, g, shards, got, nil, func(int) bool { return true })
				pot, _, pairs := cl.Compute(lj, got)
				// The full stencil visits every hosted pair from both sides.
				if fsPairs != 2*pairs {
					t.Fatalf("N=%d trial %d shards=%d: full-stencil pairs %d != 2*%d",
						tc.n, trial, shards, fsPairs, pairs)
				}
				if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
					t.Fatalf("N=%d trial %d shards=%d: pot %v vs brute %v", tc.n, trial, shards, pot, wantPot)
				}
				for i := range wantFrc {
					if got.Frc[i].Dist(wantFrc[i]) > 1e-9*(1+wantFrc[i].Norm()) {
						t.Fatalf("N=%d trial %d shards=%d: force %d vs brute", tc.n, trial, shards, i)
					}
					if got.Frc[i].Dist(fsFrc[i]) > 1e-9*(1+fsFrc[i].Norm()) {
						t.Fatalf("N=%d trial %d shards=%d: force %d vs full stencil", tc.n, trial, shards, i)
					}
				}
				if shards == 1 {
					if math.Float64bits(pot) != math.Float64bits(mapPot) {
						t.Fatalf("N=%d trial %d: pot bits differ from map kernel", tc.n, trial)
					}
					for i := range ref.Frc {
						if got.Frc[i] != ref.Frc[i] {
							t.Fatalf("N=%d trial %d: force %d bits differ from map kernel", tc.n, trial, i)
						}
					}
				}
			}
		}
	}
}
