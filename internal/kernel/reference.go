package kernel

// The historical map-based kernel, preserved as a runnable reference. It
// is the implementation the engines used before the flat CellLists kernel
// existed: map[int][]int cell lists rebuilt and sorted on every call,
// ghost positions behind two map lookups per neighbor. It is kept for two
// jobs — as the bit-exact test oracle for the flat kernel at shards=1
// (same summation order by construction), and as the "old kernel" column
// of the BENCH_kernel.json old-vs-new comparison (cmd/figures
// -bench-json), so the speedup of the flat data layout stays measured
// rather than remembered.

import (
	"sort"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// MapPairForces accumulates pair forces into s.Frc (which the caller must
// zero) using the historical map-based cell lists. cellMap maps each
// hosted cell to the local particle indices inside it, hosted marks the
// hosted cells, and ghost carries imported positions by cell. Semantics
// match CellLists.Compute: hosted-hosted pairs once via the lower cell id
// with the force scattered to both sides, ghost pairs one-sided with half
// the energy. Returns this domain's potential-energy share and the number
// of pair-distance evaluations.
func MapPairForces(
	g space.Grid,
	pair potential.Pair,
	s *particle.Set,
	cellMap map[int][]int,
	hosted map[int]bool,
	ghost map[int][]vec.V,
) (potE float64, pairs int64) {
	rc2 := pair.Cutoff() * pair.Cutoff()
	box := g.Box

	cells := make([]int, 0, len(cellMap))
	for cell := range cellMap {
		cells = append(cells, cell)
	}
	sort.Ints(cells)

	var nbBuf []int
	for _, cell := range cells {
		locals := cellMap[cell]
		// Intra-cell pairs.
		for a := 0; a < len(locals); a++ {
			i := locals[a]
			for b := a + 1; b < len(locals); b++ {
				j := locals[b]
				pairs++
				d := box.Displacement(s.Pos[i], s.Pos[j])
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				en, f := pair.EnergyForce(r2)
				potE += en
				fv := d.Scale(f)
				s.Frc[i] = s.Frc[i].Add(fv)
				s.Frc[j] = s.Frc[j].Sub(fv)
			}
		}
		nbBuf = g.Neighbors26(cell, nbBuf[:0])
		for _, nc := range nbBuf {
			if hosted[nc] {
				if nc < cell {
					continue // hosted-hosted pair handled from the lower cell
				}
				others := cellMap[nc]
				for _, i := range locals {
					for _, j := range others {
						pairs++
						d := box.Displacement(s.Pos[i], s.Pos[j])
						r2 := d.Norm2()
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						en, f := pair.EnergyForce(r2)
						potE += en
						fv := d.Scale(f)
						s.Frc[i] = s.Frc[i].Add(fv)
						s.Frc[j] = s.Frc[j].Sub(fv)
					}
				}
				continue
			}
			gpos := ghost[nc]
			for _, i := range locals {
				for _, q := range gpos {
					pairs++
					d := box.Displacement(s.Pos[i], q)
					r2 := d.Norm2()
					if r2 >= rc2 || r2 == 0 {
						continue
					}
					en, f := pair.EnergyForce(r2)
					potE += en / 2
					s.Frc[i] = s.Frc[i].Add(d.Scale(f))
				}
			}
		}
	}
	return potE, pairs
}
