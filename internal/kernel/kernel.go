// Package kernel holds the cell-list pair-force kernel shared by the
// parallel engines (internal/core's DLB-capable engine and
// internal/corestatic's static-shape engine). Pairs between two hosted
// cells use Newton's third law; pairs against ghost cells are evaluated
// one-sided, with the pair energy split half/half between the two hosts.
package kernel

import (
	"sort"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// PairForces accumulates short-range pair forces into s.Frc (which must be
// zeroed by the caller) over the hosted cells and returns this PE's share
// of the potential energy and the number of pair evaluations performed (the
// deterministic work metric). Cells are visited in ascending index order,
// so the float summation order — and therefore the result — is
// deterministic for a given cell assignment.
func PairForces(
	g space.Grid,
	pair potential.Pair,
	s *particle.Set,
	cellMap map[int][]int,
	hosted map[int]bool,
	ghost map[int][]vec.V,
) (potE float64, pairs int64) {
	rc2 := pair.Cutoff() * pair.Cutoff()
	box := g.Box

	cells := make([]int, 0, len(cellMap))
	for cell := range cellMap {
		cells = append(cells, cell)
	}
	sort.Ints(cells)

	var nbBuf []int
	for _, cell := range cells {
		locals := cellMap[cell]
		// Intra-cell pairs.
		for a := 0; a < len(locals); a++ {
			i := locals[a]
			for b := a + 1; b < len(locals); b++ {
				j := locals[b]
				pairs++
				d := box.Displacement(s.Pos[i], s.Pos[j])
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				en, f := pair.EnergyForce(r2)
				potE += en
				fv := d.Scale(f)
				s.Frc[i] = s.Frc[i].Add(fv)
				s.Frc[j] = s.Frc[j].Sub(fv)
			}
		}
		nbBuf = g.Neighbors26(cell, nbBuf[:0])
		for _, nc := range nbBuf {
			if hosted[nc] {
				if nc < cell {
					continue // hosted-hosted pair handled from the lower cell
				}
				others := cellMap[nc]
				for _, i := range locals {
					for _, j := range others {
						pairs++
						d := box.Displacement(s.Pos[i], s.Pos[j])
						r2 := d.Norm2()
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						en, f := pair.EnergyForce(r2)
						potE += en
						fv := d.Scale(f)
						s.Frc[i] = s.Frc[i].Add(fv)
						s.Frc[j] = s.Frc[j].Sub(fv)
					}
				}
				continue
			}
			gpos := ghost[nc]
			for _, i := range locals {
				for _, q := range gpos {
					pairs++
					d := box.Displacement(s.Pos[i], q)
					r2 := d.Norm2()
					if r2 >= rc2 || r2 == 0 {
						continue
					}
					en, f := pair.EnergyForce(r2)
					potE += en / 2
					s.Frc[i] = s.Frc[i].Add(d.Scale(f))
				}
			}
		}
	}
	return potE, pairs
}

// ExternalForces adds a one-body field to s.Frc and returns its energy.
func ExternalForces(ext potential.External, s *particle.Set) float64 {
	if _, isNone := ext.(potential.NoField); isNone {
		return 0
	}
	var potE float64
	for i := range s.Pos {
		en, f := ext.EnergyForce(s.Pos[i])
		potE += en
		s.Frc[i] = s.Frc[i].Add(f)
	}
	return potE
}
