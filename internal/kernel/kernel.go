// Package kernel holds the cell-list pair-force kernel shared by the MD
// engines (internal/mdserial's serial engine, internal/core's DLB-capable
// engine and internal/corestatic's static-shape engine). The kernel works
// over flat, reusable CellLists scratch (see its type comment for the data
// layout and the determinism contract); the historical map-based kernel is
// retained in kernel_map_test.go as a cross-check oracle only.
//
// Pairs between two hosted cells use Newton's third law; pairs against
// ghost cells are evaluated one-sided, with the pair energy (and virial)
// split half/half between the two hosts.
package kernel

import (
	"permcell/internal/particle"
	"permcell/internal/potential"
)

// ExternalForces adds a one-body field to s.Frc and returns its energy.
func ExternalForces(ext potential.External, s *particle.Set) float64 {
	if _, isNone := ext.(potential.NoField); isNone {
		return 0
	}
	var potE float64
	for i := range s.Pos {
		en, f := ext.EnergyForce(s.Pos[i])
		potE += en
		s.Frc[i] = s.Frc[i].Add(f)
	}
	return potE
}
