package kernel

import (
	"math"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// FuzzCellListsConstruction drives the CSR cell-list and half-stencil
// construction through degenerate geometries the simulation presets never
// produce: single-cell and two-cell grids (every neighbor offset wraps
// onto a handful of distinct cells), particles exactly on cell boundaries,
// empty cells, empty hosted sets of ragged column shapes, and minimum-image
// wrap terms in all of them. Each input is checked for construction
// invariants and then cross-checked bit-for-bit against the historical map
// kernel at shards=1 and to rounding at shards=2.
func FuzzCellListsConstruction(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(40), uint64(^uint64(0)), uint8(0)) // 1x1x1, all hosted
	f.Add(uint64(2), uint16(31), uint16(120), uint64(0x5), uint8(3))      // 2x2x2, ragged columns, snapped
	f.Add(uint64(3), uint16(62), uint16(0), uint64(1), uint8(0))          // 3x3x3, empty system
	f.Add(uint64(4), uint16(93), uint16(250), uint64(0xF0F0), uint8(255)) // 4x4x4, heavy snapping
	f.Add(uint64(5), uint16(7), uint16(200), uint64(0xAAAA), uint8(16))   // 3x2x1 anisotropic
	f.Fuzz(func(t *testing.T, seed uint64, dims uint16, n uint16, hostMask uint64, snap uint8) {
		nx := 1 + int(dims)%5
		ny := 1 + (int(dims)/5)%5
		nz := 1 + (int(dims)/25)%5
		const rc = 2.5
		box, err := space.NewBox(vec.New(float64(nx)*rc, float64(ny)*rc, float64(nz)*rc))
		if err != nil {
			t.Fatal(err)
		}
		g, err := space.NewGridWithDims(box, nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		nPart := int(n) % 257
		r := rng.New(seed | 1)
		global := make([]vec.V, nPart)
		for i := range global {
			p := r.InBox(box.L)
			// Snap some coordinates onto exact cell boundaries (multiples
			// of the cell side) so CellOf sees edge values.
			if snap > 0 && r.Intn(256) < int(snap) {
				p.X = rc * math.Floor(p.X/rc)
			}
			if snap > 0 && r.Intn(256) < int(snap) {
				p.Y = rc * math.Floor(p.Y/rc)
			}
			global[i] = box.Wrap(p)
		}

		// Hosted columns from the mask bits, at least one.
		hostedCols := make(map[int]bool)
		for col := 0; col < g.NumColumns(); col++ {
			if hostMask&(1<<(col%64)) != 0 {
				hostedCols[col] = true
			}
		}
		if len(hostedCols) == 0 {
			hostedCols[int(seed)%g.NumColumns()] = true
		}
		pred := func(cell int) bool { return hostedCols[g.ColumnOf(cell)] }

		local := &particle.Set{}
		for i, p := range global {
			if pred(g.CellOf(p)) {
				local.Add(int64(i), p, vec.Zero)
			}
		}
		lj := potential.NewPaperLJ()

		for _, shards := range []int{1, 2} {
			got := local.Clone()
			got.ZeroForces()
			cl := buildFlat(t, g, shards, got, global, pred)

			// CSR invariants: offsets monotone, part a permutation of the
			// local indices, every particle binned into a hosted cell it
			// actually occupies.
			seen := make([]bool, got.Len())
			for s := 0; s < cl.NumHosted(); s++ {
				cell := cl.SlotCell(s)
				if !pred(cell) {
					t.Fatalf("hosted slot %d maps to unhosted cell %d", s, cell)
				}
				for _, i := range cl.SlotParticles(s) {
					if seen[i] {
						t.Fatalf("particle %d binned twice", i)
					}
					seen[i] = true
					if g.CellOf(got.Pos[i]) != cell {
						t.Fatalf("particle %d binned into cell %d but positioned in %d",
							i, cell, g.CellOf(got.Pos[i]))
					}
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("particle %d missing from the CSR", i)
				}
			}

			pot, _, pairs := cl.Compute(lj, got)

			ref := local.Clone()
			ref.ZeroForces()
			cellMap, hosted := buildMaps(g, ref, pred)
			ghost := make(map[int][]vec.V)
			for _, p := range global {
				if c := g.CellOf(p); !hosted[c] {
					ghost[c] = append(ghost[c], p)
				}
			}
			wantPot, wantPairs := mapPairForces(g, lj, ref, cellMap, hosted, ghost)
			if pairs != wantPairs {
				t.Fatalf("shards=%d: pairs %d, map kernel %d", shards, pairs, wantPairs)
			}
			if shards == 1 {
				if math.Float64bits(pot) != math.Float64bits(wantPot) {
					t.Fatalf("pot bits %v differ from map kernel %v", pot, wantPot)
				}
				for i := range ref.Frc {
					if got.Frc[i] != ref.Frc[i] {
						t.Fatalf("force %d bits differ from map kernel", i)
					}
				}
			} else {
				if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
					t.Fatalf("shards=%d: pot %v, map kernel %v", shards, pot, wantPot)
				}
				for i := range ref.Frc {
					if got.Frc[i].Dist(ref.Frc[i]) > 1e-9*(1+ref.Frc[i].Norm()) {
						t.Fatalf("shards=%d: force %d mismatch vs map kernel", shards, i)
					}
				}
			}
		}
	})
}
