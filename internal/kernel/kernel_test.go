package kernel

import (
	"math"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// bruteForce computes reference forces and energy with a plain O(N^2) loop.
func bruteForce(box space.Box, pair potential.Pair, pos []vec.V) ([]vec.V, float64) {
	frc := make([]vec.V, len(pos))
	var pot float64
	rc2 := pair.Cutoff() * pair.Cutoff()
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			d := box.Displacement(pos[i], pos[j])
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			en, f := pair.EnergyForce(r2)
			pot += en
			fv := d.Scale(f)
			frc[i] = frc[i].Add(fv)
			frc[j] = frc[j].Sub(fv)
		}
	}
	return frc, pot
}

func setup(t *testing.T) (workload.System, space.Grid) {
	t.Helper()
	sys, err := workload.LatticeGas(256, 0.4, 0.722, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func buildMaps(g space.Grid, s *particle.Set, hostedPred func(cell int) bool) (cellMap map[int][]int, hosted map[int]bool) {
	cellMap = make(map[int][]int)
	hosted = make(map[int]bool)
	for c := 0; c < g.NumCells(); c++ {
		if hostedPred(c) {
			hosted[c] = true
			cellMap[c] = nil
		}
	}
	for i := range s.Pos {
		c := g.CellOf(s.Pos[i])
		if hosted[c] {
			cellMap[c] = append(cellMap[c], i)
		}
	}
	return cellMap, hosted
}

func TestPairForcesAllHostedMatchesBruteForce(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	// Jiggle off the lattice so forces are nonzero: shift alternating
	// particles slightly.
	for i := range sys.Set.Pos {
		if i%2 == 0 {
			sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(0.1, -0.07, 0.05)))
		}
	}
	cellMap, hosted := buildMaps(g, sys.Set, func(int) bool { return true })
	sys.Set.ZeroForces()
	pot, pairs := PairForces(g, lj, sys.Set, cellMap, hosted, nil)
	if pairs <= 0 {
		t.Fatal("no pairs evaluated")
	}
	wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)
	if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
		t.Errorf("pot = %v, want %v", pot, wantPot)
	}
	for i := range wantFrc {
		if wantFrc[i].Dist(sys.Set.Frc[i]) > 1e-9*(1+wantFrc[i].Norm()) {
			t.Fatalf("force %d mismatch", i)
		}
	}
}

func TestPairForcesGhostSplit(t *testing.T) {
	// Split the box into two hosts at a cell boundary; each side computes
	// with the other side's particles as ghosts. Summed energies must equal
	// the brute-force total, and each local particle's force must match.
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)

	half := g.Nx / 2
	inA := func(cell int) bool { ix, _, _ := g.Coords(cell); return ix < half }

	var totalPot float64
	for side := 0; side < 2; side++ {
		pred := inA
		if side == 1 {
			pred = func(cell int) bool { return !inA(cell) }
		}
		// Local set: only particles in hosted cells; ghosts from the rest.
		local := &particle.Set{}
		idxOf := map[int]int{} // global particle index -> local index
		for i := range sys.Set.Pos {
			if pred(g.CellOf(sys.Set.Pos[i])) {
				idxOf[i] = local.Add(sys.Set.ID[i], sys.Set.Pos[i], sys.Set.Vel[i])
			}
		}
		cellMap, hosted := buildMaps(g, local, pred)
		ghost := make(map[int][]vec.V)
		for i := range sys.Set.Pos {
			c := g.CellOf(sys.Set.Pos[i])
			if !hosted[c] {
				ghost[c] = append(ghost[c], sys.Set.Pos[i])
			}
		}
		local.ZeroForces()
		pot, _ := PairForces(g, lj, local, cellMap, hosted, ghost)
		totalPot += pot
		for gi, li := range idxOf {
			if wantFrc[gi].Dist(local.Frc[li]) > 1e-9*(1+wantFrc[gi].Norm()) {
				t.Fatalf("side %d: particle %d force mismatch", side, gi)
			}
		}
	}
	if math.Abs(totalPot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
		t.Errorf("summed pot = %v, want %v", totalPot, wantPot)
	}
}

func TestExternalForces(t *testing.T) {
	s := &particle.Set{}
	s.Add(0, vec.New(1, 0, 0), vec.Zero)
	well := potential.HarmonicWell{Center: vec.Zero, K: 2, L: vec.New(100, 100, 100)}
	e := ExternalForces(well, s)
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("energy = %v, want 1", e)
	}
	if s.Frc[0].Dist(vec.New(-2, 0, 0)) > 1e-12 {
		t.Errorf("force = %v", s.Frc[0])
	}
	if ExternalForces(potential.NoField{}, s) != 0 {
		t.Error("NoField energy nonzero")
	}
}
