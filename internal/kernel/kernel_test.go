package kernel

import (
	"math"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// bruteForce computes reference forces and energy with a plain O(N^2) loop.
func bruteForce(box space.Box, pair potential.Pair, pos []vec.V) ([]vec.V, float64) {
	frc := make([]vec.V, len(pos))
	var pot float64
	rc2 := pair.Cutoff() * pair.Cutoff()
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			d := box.Displacement(pos[i], pos[j])
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			en, f := pair.EnergyForce(r2)
			pot += en
			fv := d.Scale(f)
			frc[i] = frc[i].Add(fv)
			frc[j] = frc[j].Sub(fv)
		}
	}
	return frc, pot
}

func setup(t *testing.T) (workload.System, space.Grid) {
	t.Helper()
	sys, err := workload.LatticeGas(256, 0.4, 0.722, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

// buildMaps assembles the map-kernel inputs for the subset of cells chosen
// by hostedPred, exactly as the engines used to.
func buildMaps(g space.Grid, s *particle.Set, hostedPred func(cell int) bool) (cellMap map[int][]int, hosted map[int]bool) {
	cellMap = make(map[int][]int)
	hosted = make(map[int]bool)
	for c := 0; c < g.NumCells(); c++ {
		if hostedPred(c) {
			hosted[c] = true
			cellMap[c] = nil
		}
	}
	for i := range s.Pos {
		c := g.CellOf(s.Pos[i])
		if hosted[c] {
			cellMap[c] = append(cellMap[c], i)
		}
	}
	return cellMap, hosted
}

// buildFlat assembles a ready-to-Compute CellLists for the hosted subset,
// importing every ghost cell's positions from the global system.
func buildFlat(t *testing.T, g space.Grid, shards int, local *particle.Set, global []vec.V, hostedPred func(cell int) bool) *CellLists {
	t.Helper()
	var cells []int
	for c := 0; c < g.NumCells(); c++ {
		if hostedPred(c) {
			cells = append(cells, c)
		}
	}
	cl := NewCellLists(g, shards)
	t.Cleanup(cl.Close)
	cl.SetHosted(cells)
	if bad := cl.Bin(local.Pos); bad >= 0 {
		t.Fatalf("particle %d outside hosted set", bad)
	}
	byCell := make(map[int][]vec.V)
	for _, p := range global {
		byCell[g.CellOf(p)] = append(byCell[g.CellOf(p)], p)
	}
	cl.ClearGhosts()
	for _, gc := range cl.GhostCells() {
		cl.StageGhost(gc, byCell[gc])
	}
	cl.SealGhosts()
	return cl
}

// localSubset extracts the particles of the hosted cells, preserving global
// order, and returns the local set plus global->local index map.
func localSubset(g space.Grid, sys *particle.Set, hostedPred func(cell int) bool) (*particle.Set, map[int]int) {
	local := &particle.Set{}
	idxOf := map[int]int{}
	for i := range sys.Pos {
		if hostedPred(g.CellOf(sys.Pos[i])) {
			idxOf[i] = local.Add(sys.ID[i], sys.Pos[i], sys.Vel[i])
		}
	}
	return local, idxOf
}

func TestFlatAllHostedMatchesBruteForce(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	// Jiggle off the lattice so forces are nonzero.
	for i := range sys.Set.Pos {
		if i%2 == 0 {
			sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(0.1, -0.07, 0.05)))
		}
	}
	for _, shards := range []int{1, 2, 8} {
		cl := buildFlat(t, g, shards, sys.Set, nil, func(int) bool { return true })
		sys.Set.ZeroForces()
		pot, _, pairs := cl.Compute(lj, sys.Set)
		if pairs <= 0 {
			t.Fatal("no pairs evaluated")
		}
		wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)
		if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
			t.Errorf("shards=%d: pot = %v, want %v", shards, pot, wantPot)
		}
		for i := range wantFrc {
			if wantFrc[i].Dist(sys.Set.Frc[i]) > 1e-9*(1+wantFrc[i].Norm()) {
				t.Fatalf("shards=%d: force %d mismatch", shards, i)
			}
		}
	}
}

func TestFlatGhostSplitMatchesBruteForce(t *testing.T) {
	// Split the box into two hosts at a cell boundary; each side computes
	// with the other side's particles as ghosts. Summed energies must equal
	// the brute-force total, and each local particle's force must match.
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	wantFrc, wantPot := bruteForce(g.Box, lj, sys.Set.Pos)

	half := g.Nx / 2
	inA := func(cell int) bool { ix, _, _ := g.Coords(cell); return ix < half }

	for _, shards := range []int{1, 2, 8} {
		var totalPot float64
		for side := 0; side < 2; side++ {
			pred := inA
			if side == 1 {
				pred = func(cell int) bool { return !inA(cell) }
			}
			local, idxOf := localSubset(g, sys.Set, pred)
			cl := buildFlat(t, g, shards, local, sys.Set.Pos, pred)
			local.ZeroForces()
			pot, _, _ := cl.Compute(lj, local)
			totalPot += pot
			for gi, li := range idxOf {
				if wantFrc[gi].Dist(local.Frc[li]) > 1e-9*(1+wantFrc[gi].Norm()) {
					t.Fatalf("shards=%d side %d: particle %d force mismatch", shards, side, gi)
				}
			}
		}
		if math.Abs(totalPot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
			t.Errorf("shards=%d: summed pot = %v, want %v", shards, totalPot, wantPot)
		}
	}
}

// TestFlatMatchesMapKernel cross-checks the flat kernel against the
// historical map-based kernel on randomized configurations — random hosted
// column subsets (so hosted regions have ragged ghost boundaries and empty
// cells) with the rest of the system imported as ghosts. Shard count 1 must
// reproduce the map kernel bit for bit (identical summation order, the
// property the golden experiment traces rely on); shard counts 2 and 8 must
// agree to rounding and produce the identical pair count.
func TestFlatMatchesMapKernel(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	r := rng.New(7)
	for trial := 0; trial < 6; trial++ {
		// Jiggle positions fresh each trial.
		for i := range sys.Set.Pos {
			sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(
				0.4*(r.Float64()-0.5), 0.4*(r.Float64()-0.5), 0.4*(r.Float64()-0.5))))
		}
		// Random hosted column subset (always at least one column).
		hostedCols := make(map[int]bool)
		for col := 0; col < g.NumColumns(); col++ {
			if r.Float64() < 0.4 {
				hostedCols[col] = true
			}
		}
		hostedCols[r.Intn(g.NumColumns())] = true
		pred := func(cell int) bool { return hostedCols[g.ColumnOf(cell)] }

		local, _ := localSubset(g, sys.Set, pred)
		cellMap, hosted := buildMaps(g, local, pred)
		ghost := make(map[int][]vec.V)
		for i := range sys.Set.Pos {
			c := g.CellOf(sys.Set.Pos[i])
			if !hosted[c] {
				ghost[c] = append(ghost[c], sys.Set.Pos[i])
			}
		}
		ref := local.Clone()
		ref.ZeroForces()
		wantPot, wantPairs := mapPairForces(g, lj, ref, cellMap, hosted, ghost)

		for _, shards := range []int{1, 2, 8} {
			got := local.Clone()
			got.ZeroForces()
			cl := buildFlat(t, g, shards, got, sys.Set.Pos, pred)
			pot, _, pairs := cl.Compute(lj, got)
			if pairs != wantPairs {
				t.Fatalf("trial %d shards=%d: pairs = %d, want %d", trial, shards, pairs, wantPairs)
			}
			if shards == 1 {
				// Bit-exact: identical summation order by construction.
				if math.Float64bits(pot) != math.Float64bits(wantPot) {
					t.Fatalf("trial %d: pot bits differ: %v vs %v", trial, pot, wantPot)
				}
				for i := range ref.Frc {
					if got.Frc[i] != ref.Frc[i] {
						t.Fatalf("trial %d: force %d bits differ: %v vs %v", trial, i, got.Frc[i], ref.Frc[i])
					}
				}
			} else {
				if math.Abs(pot-wantPot) > 1e-9*(1+math.Abs(wantPot)) {
					t.Fatalf("trial %d shards=%d: pot = %v, want %v", trial, shards, pot, wantPot)
				}
				for i := range ref.Frc {
					if got.Frc[i].Dist(ref.Frc[i]) > 1e-9*(1+ref.Frc[i].Norm()) {
						t.Fatalf("trial %d shards=%d: force %d mismatch", trial, shards, i)
					}
				}
			}
		}
	}
}

// TestFlatShardDeterminism pins the determinism contract: the same shard
// count twice gives bit-identical results.
func TestFlatShardDeterminism(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	for i := range sys.Set.Pos {
		sys.Set.Pos[i] = g.Box.Wrap(sys.Set.Pos[i].Add(vec.New(0.11, -0.03, 0.07)))
	}
	for _, shards := range []int{2, 8} {
		var pots [2]float64
		var frcs [2][]vec.V
		for rep := 0; rep < 2; rep++ {
			s := sys.Set.Clone()
			s.ZeroForces()
			cl := buildFlat(t, g, shards, s, nil, func(int) bool { return true })
			pots[rep], _, _ = cl.Compute(lj, s)
			frcs[rep] = append([]vec.V(nil), s.Frc...)
		}
		if math.Float64bits(pots[0]) != math.Float64bits(pots[1]) {
			t.Fatalf("shards=%d: energy not reproducible", shards)
		}
		for i := range frcs[0] {
			if frcs[0][i] != frcs[1][i] {
				t.Fatalf("shards=%d: force %d not reproducible", shards, i)
			}
		}
	}
}

// TestFlatEmpty covers empty-cell and empty-system edge cases.
func TestFlatEmpty(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	empty := &particle.Set{}
	cl := buildFlat(t, g, 2, empty, sys.Set.Pos, func(cell int) bool {
		ix, _, _ := g.Coords(cell)
		return ix == 0
	})
	pot, vir, pairs := cl.Compute(lj, empty)
	if pot != 0 || vir != 0 || pairs != 0 {
		t.Fatalf("empty local set computed pot=%v vir=%v pairs=%d", pot, vir, pairs)
	}
	if cl.GhostLen() == 0 {
		t.Fatal("ghost arena empty despite imported neighbors")
	}
}

// TestZeroAllocSteadyState is the CI gate for the kernel's allocation
// contract: after warm-up, a full per-step cycle — Bin, ghost staging and
// sealing, Compute — performs zero heap allocations, for the serial kernel
// and for a sharded one.
func TestZeroAllocSteadyState(t *testing.T) {
	sys, g := setup(t)
	lj := potential.NewPaperLJ()
	half := g.Nx / 2
	pred := func(cell int) bool { ix, _, _ := g.Coords(cell); return ix < half }
	local, _ := localSubset(g, sys.Set, pred)
	byCell := make(map[int][]vec.V)
	for i := range sys.Set.Pos {
		c := g.CellOf(sys.Set.Pos[i])
		byCell[c] = append(byCell[c], sys.Set.Pos[i])
	}
	for _, shards := range []int{1, 4} {
		cl := buildFlat(t, g, shards, local, sys.Set.Pos, pred)
		step := func() {
			if bad := cl.Bin(local.Pos); bad >= 0 {
				t.Fatal("bin failed")
			}
			cl.ClearGhosts()
			for _, gc := range cl.GhostCells() {
				cl.StageGhost(gc, byCell[gc])
			}
			cl.SealGhosts()
			local.ZeroForces()
			cl.Compute(lj, local)
		}
		for i := 0; i < 3; i++ {
			step() // warm-up: buffer growth, worker pool start
		}
		if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
			t.Errorf("shards=%d: %v allocs per step, want 0", shards, allocs)
		}
	}
}

func TestExternalForces(t *testing.T) {
	s := &particle.Set{}
	s.Add(0, vec.New(1, 0, 0), vec.Zero)
	well := potential.HarmonicWell{Center: vec.Zero, K: 2, L: vec.New(100, 100, 100)}
	e := ExternalForces(well, s)
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("energy = %v, want 1", e)
	}
	if s.Frc[0].Dist(vec.New(-2, 0, 0)) > 1e-12 {
		t.Errorf("force = %v", s.Frc[0])
	}
	if ExternalForces(potential.NoField{}, s) != 0 {
		t.Error("NoField energy nonzero")
	}
}
