package kernel

import (
	"fmt"
	"testing"

	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

// Benchmarks comparing the historical map-based kernel against the flat
// CellLists kernel, per full step (re-bin + force pass). The map side
// rebuilds its per-cell slices the way the engines' rebuild() did every
// step: clear the map, re-register the hosted cells, append from scratch.

// benchSystem builds the Tiny-preset m=3 box: nc = m*sqrt(P) = 6 cells of
// side 2.5 per dimension, N = round(rho * L^3) = 1296 at rho = 0.384.
func benchSystem(b *testing.B) (workload.System, space.Grid) {
	b.Helper()
	sys, err := workload.LatticeGas(1296, 0.384, 0.722, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	if g.Nx != 6 || g.Ny != 6 || g.Nz != 6 {
		b.Fatalf("grid %dx%dx%d, want the Tiny 6x6x6", g.Nx, g.Ny, g.Nz)
	}
	return sys, g
}

func BenchmarkKernelMap(b *testing.B) {
	sys, g := benchSystem(b)
	lj := potential.NewPaperLJ()
	cellMap := make(map[int][]int)
	hosted := make(map[int]bool)
	for c := 0; c < g.NumCells(); c++ {
		hosted[c] = true
		cellMap[c] = nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		clear(cellMap)
		for c := 0; c < g.NumCells(); c++ {
			cellMap[c] = nil
		}
		for i := range sys.Set.Pos {
			c := g.CellOf(sys.Set.Pos[i])
			cellMap[c] = append(cellMap[c], i)
		}
		sys.Set.ZeroForces()
		mapPairForces(g, lj, sys.Set, cellMap, hosted, nil)
	}
}

func benchmarkKernelFlat(b *testing.B, shards int) {
	sys, g := benchSystem(b)
	lj := potential.NewPaperLJ()
	cells := make([]int, g.NumCells())
	for c := range cells {
		cells[c] = c
	}
	cl := NewCellLists(g, shards)
	defer cl.Close()
	cl.SetHosted(cells)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
			b.Fatal("bin failed")
		}
		sys.Set.ZeroForces()
		cl.Compute(lj, sys.Set)
	}
}

func BenchmarkKernelFlat(b *testing.B)        { benchmarkKernelFlat(b, 1) }
func BenchmarkKernelFlatShards2(b *testing.B) { benchmarkKernelFlat(b, 2) }
func BenchmarkKernelFlatShards8(b *testing.B) { benchmarkKernelFlat(b, 8) }

// BenchmarkKernelPresets runs the full bench matrix (workload.KernelPresets:
// tiny plus the 50k/100k/200k paper-density systems) against the flat
// kernel at shard counts 1, 2 and 8. The large presets are where the force
// array no longer fits in cache and shard parallelism has work to amortize
// against; cmd/figures -bench-json times the same matrix into
// BENCH_kernel.json, and the bench-regression CI gate asserts shard
// scaling there on multi-core machines.
func BenchmarkKernelPresets(b *testing.B) {
	for _, pr := range workload.KernelPresets() {
		sys, g, err := pr.Build()
		if err != nil {
			b.Fatal(err)
		}
		cells := make([]int, g.NumCells())
		for c := range cells {
			cells[c] = c
		}
		for _, shards := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", pr.Name, shards), func(b *testing.B) {
				cl := NewCellLists(g, shards)
				defer cl.Close()
				cl.SetHosted(cells)
				cl.SealGhosts()
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
						b.Fatal("bin failed")
					}
					sys.Set.ZeroForces()
					cl.Compute(ljBench, sys.Set)
				}
			})
		}
	}
}

var ljBench = potential.NewPaperLJ()
