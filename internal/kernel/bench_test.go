package kernel

import (
	"testing"

	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

// Benchmarks comparing the historical map-based kernel against the flat
// CellLists kernel, per full step (re-bin + force pass). The map side
// rebuilds its per-cell slices the way the engines' rebuild() did every
// step: clear the map, re-register the hosted cells, append from scratch.

// benchSystem builds the Tiny-preset m=3 box: nc = m*sqrt(P) = 6 cells of
// side 2.5 per dimension, N = round(rho * L^3) = 1296 at rho = 0.384.
func benchSystem(b *testing.B) (workload.System, space.Grid) {
	b.Helper()
	sys, err := workload.LatticeGas(1296, 0.384, 0.722, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := space.NewGrid(sys.Box, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	if g.Nx != 6 || g.Ny != 6 || g.Nz != 6 {
		b.Fatalf("grid %dx%dx%d, want the Tiny 6x6x6", g.Nx, g.Ny, g.Nz)
	}
	return sys, g
}

func BenchmarkKernelMap(b *testing.B) {
	sys, g := benchSystem(b)
	lj := potential.NewPaperLJ()
	cellMap := make(map[int][]int)
	hosted := make(map[int]bool)
	for c := 0; c < g.NumCells(); c++ {
		hosted[c] = true
		cellMap[c] = nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		clear(cellMap)
		for c := 0; c < g.NumCells(); c++ {
			cellMap[c] = nil
		}
		for i := range sys.Set.Pos {
			c := g.CellOf(sys.Set.Pos[i])
			cellMap[c] = append(cellMap[c], i)
		}
		sys.Set.ZeroForces()
		mapPairForces(g, lj, sys.Set, cellMap, hosted, nil)
	}
}

func benchmarkKernelFlat(b *testing.B, shards int) {
	sys, g := benchSystem(b)
	lj := potential.NewPaperLJ()
	cells := make([]int, g.NumCells())
	for c := range cells {
		cells[c] = c
	}
	cl := NewCellLists(g, shards)
	defer cl.Close()
	cl.SetHosted(cells)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if bad := cl.Bin(sys.Set.Pos); bad >= 0 {
			b.Fatal("bin failed")
		}
		sys.Set.ZeroForces()
		cl.Compute(lj, sys.Set)
	}
}

func BenchmarkKernelFlat(b *testing.B)        { benchmarkKernelFlat(b, 1) }
func BenchmarkKernelFlatShards2(b *testing.B) { benchmarkKernelFlat(b, 2) }
func BenchmarkKernelFlatShards8(b *testing.B) { benchmarkKernelFlat(b, 8) }
