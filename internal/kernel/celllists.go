package kernel

import (
	"fmt"
	"slices"

	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// CellLists is the flat, reusable scratch state behind the pair-force
// kernel. It replaces the per-step map[int][]int cell map with dense
// structures that are rebuilt into reused buffers, so the force path
// performs zero heap allocations per step in steady state:
//
//   - a CSR cell list (Bin): hosted cells in ascending index order, each
//     with the contiguous slice of its local particle indices, plus the
//     positions copied into part order (SoA for the inner loops);
//   - a precomputed half stencil per hosted cell (SetHosted): the
//     Neighbors26 walk with each neighbor resolved once to either a
//     hosted-cell slot — kept only for the ~13 higher-id cells, so every
//     hosted-hosted pair is computed exactly once and scattered to both
//     particles (Newton's third law) — or a ghost-cell slot (one-sided),
//     rebuilt only when the hosted set changes (a DLB column move), not
//     every step;
//   - a flat ghost arena (StageGhost/SealGhosts): all imported positions in
//     one slice, CSR-indexed by ghost slot;
//   - per-shard slot lists (CSR over the shard partition): each worker
//     walks exactly its own cells instead of filtering the full hosted
//     list every step, and the shard-local force buffers are zeroed and
//     reduced inside the parallel section (fixed order, so bits do not
//     depend on worker timing).
//
// Determinism contract: hosted cells are visited in ascending cell index
// order and each cell's stencil preserves the Neighbors26 order, so for a
// given hosted set, particle assignment and shard count the floating-point
// summation order — and therefore every bit of the result — is fixed. With
// Shards == 1 the summation order is exactly that of the historical
// map-based kernel, so single-shard results are bit-identical to it. With
// S > 1 shards, hosted columns are dealt round-robin (in ascending column
// order) to S workers; each shard accumulates forces and energy into its
// own buffers, and the shard results are reduced in fixed shard order, so
// runs are bit-reproducible for a given shard count (but differ between
// shard counts, which is why the shard count is part of the run config and
// the trace header).
type CellLists struct {
	g      space.Grid
	shards int

	// Hosted topology, rebuilt by SetHosted only.
	cells      []int   // hosted cell ids, ascending
	slotOf     []int32 // per grid cell: hosted slot s >= 0, ghost -2-gs, else -1
	stencil    []int32 // >= 0: hosted slot (higher cell id); < 0: -1-ghostSlot
	stShift    []vec.V // per stencil entry: the min-image round term (0 or +-L)
	stStart    []int32 // CSR offsets into stencil, len(cells)+1
	ghostCells []int   // unhosted neighbor cell ids, ascending
	shardOf    []int32 // per hosted slot: worker shard
	shardSlot  []int32 // hosted slots grouped by shard (CSR), ascending per shard
	shardStart []int32 // CSR offsets into shardSlot, len shards+1
	nbBuf      []int   // Neighbors26 scratch
	useShift   bool    // all grid dims >= 4: stShift is exact, skip per-pair rounding

	// Per-step particle CSR, rebuilt by Bin.
	count []int32 // per-slot particle count; doubles as fill cursor
	start []int32 // CSR offsets into part, len(cells)+1
	part  []int32 // particle indices grouped by hosted cell
	ppos  []vec.V // positions in part order (cache-friendly inner loops)

	// Ghost arena, rebuilt by StageGhost/SealGhosts each step.
	stage      []ghostStage
	ghostStart []int32 // CSR offsets into ghostPos, len(ghostCells)+1
	ghostPos   []vec.V

	// Per-shard accumulators, reduced in fixed shard order.
	pot  []float64
	vir  []float64
	prs  []int64
	ffrc [][]vec.V // shard-local force buffers, used only when shards > 1

	// Bounded worker pool (started lazily, only when shards > 1).
	pair   potential.Pair // current Compute target
	phase  int            // worker dispatch mode: phaseForce or phaseReduce
	frcDst []vec.V        // reduce-phase target (s.Frc), set around dispatch

	running bool
	startCh []chan struct{}
	doneCh  chan struct{}
}

// Worker dispatch phases. Both are set by Compute before the channel sends
// that release the workers, so no atomics are needed (channel
// happens-before).
const (
	phaseForce = iota
	phaseReduce
)

type ghostStage struct {
	slot int32
	pos  []vec.V
}

// wrapTerm returns the min-image round term Round(d/l)*l for displacements
// from a particle in cell coordinate u (possibly out of [0, n)) to one in a
// wrapped-adjacent cell: -l when the neighbor wrapped below zero, +l above,
// else exactly +0.0. Valid when n >= 4 (see useShift).
func wrapTerm(u, n int, l float64) float64 {
	switch {
	case u < 0:
		return -l
	case u >= n:
		return l
	}
	return 0
}

// NewCellLists returns scratch state for grids of g's size using the given
// worker shard count (values < 1 mean 1: the serial kernel). Call Close
// when done if shards > 1, to stop the worker pool.
func NewCellLists(g space.Grid, shards int) *CellLists {
	if shards < 1 {
		shards = 1
	}
	cl := &CellLists{g: g, shards: shards}
	// With at least 4 cells per dimension, whether a neighbor-cell pair wraps
	// around the box — and so the min-image round term Round(d/L)*L, exactly
	// 0 or +-L — is fixed by the cell pair alone (particles live in half-open
	// cells, so every |d| comparison against L/2 is strict). The stencil then
	// carries the term and the kernel skips the per-pair divide-and-round,
	// with bit-identical results.
	cl.useShift = g.Nx >= 4 && g.Ny >= 4 && g.Nz >= 4
	cl.slotOf = make([]int32, g.NumCells())
	for i := range cl.slotOf {
		cl.slotOf[i] = -1
	}
	cl.pot = make([]float64, shards)
	cl.vir = make([]float64, shards)
	cl.prs = make([]int64, shards)
	cl.ffrc = make([][]vec.V, shards)
	return cl
}

// Shards returns the configured worker shard count.
func (cl *CellLists) Shards() int { return cl.shards }

// Grid returns the grid the lists were built for.
func (cl *CellLists) Grid() space.Grid { return cl.g }

// SetHosted rebuilds the hosted topology: the ascending hosted cell list,
// the per-cell neighbor stencils, the ghost slot assignment and the shard
// partition. Call it only when the hosted set changes (initialization or a
// DLB column move); Bin and Compute reuse the result every step.
func (cl *CellLists) SetHosted(cells []int) {
	// Reset the previous topology in slotOf.
	for _, c := range cl.cells {
		cl.slotOf[c] = -1
	}
	for _, c := range cl.ghostCells {
		cl.slotOf[c] = -1
	}
	cl.cells = append(cl.cells[:0], cells...)
	slices.Sort(cl.cells)
	for s, c := range cl.cells {
		if s > 0 && c == cl.cells[s-1] {
			panic(fmt.Sprintf("kernel: duplicate hosted cell %d", c))
		}
		cl.slotOf[c] = int32(s)
	}

	// Ghost cells: every unhosted neighbor of a hosted cell, ascending.
	cl.ghostCells = cl.ghostCells[:0]
	for _, c := range cl.cells {
		cl.nbBuf = cl.g.Neighbors26(c, cl.nbBuf[:0])
		for _, nc := range cl.nbBuf {
			if cl.slotOf[nc] == -1 {
				cl.slotOf[nc] = -2 // mark seen; slot assigned below
				cl.ghostCells = append(cl.ghostCells, nc)
			}
		}
	}
	slices.Sort(cl.ghostCells)
	for gs, c := range cl.ghostCells {
		cl.slotOf[c] = -2 - int32(gs)
	}

	// Stencils: the Neighbors26 walk per hosted cell, each neighbor encoded
	// as a hosted slot (kept only for higher cell ids — the pair is owned by
	// the lower cell) or a ghost slot. Order within a cell is the
	// Neighbors26 order (dz, dy, dx ascending, first occurrence kept), which
	// fixes the summation order. The walk is replicated inline rather than
	// taken from Neighbors26 so the wrap direction of each neighbor — and so
	// its min-image round term — is known.
	cl.stencil = cl.stencil[:0]
	cl.stShift = cl.stShift[:0]
	cl.stStart = append(cl.stStart[:0], 0)
	g := cl.g
	seen := make(map[int]bool, 27)
	for _, c := range cl.cells {
		ix, iy, iz := g.Coords(c)
		clear(seen)
		seen[c] = true
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					nc := g.CellOfCoords(ix+dx, iy+dy, iz+dz)
					if seen[nc] {
						continue
					}
					seen[nc] = true
					v := cl.slotOf[nc]
					if v >= 0 && nc <= c {
						continue // hosted-hosted pair owned by the lower cell
					}
					if v < 0 {
						v = -1 - (-2 - v) // ghost slot gs encoded as -1-gs
					}
					cl.stencil = append(cl.stencil, v)
					cl.stShift = append(cl.stShift, vec.V{
						X: wrapTerm(ix+dx, g.Nx, g.Box.L.X),
						Y: wrapTerm(iy+dy, g.Ny, g.Box.L.Y),
						Z: wrapTerm(iz+dz, g.Nz, g.Box.L.Z),
					})
				}
			}
		}
		cl.stStart = append(cl.stStart, int32(len(cl.stencil)))
	}

	// Shard partition: hosted columns ascending, dealt round-robin. All
	// cells of a column land on the same shard so a shard's work tracks the
	// DLB's unit of transfer.
	cl.shardOf = append(cl.shardOf[:0], make([]int32, len(cl.cells))...)
	if cl.shards > 1 {
		cols := cl.nbBuf[:0] // reuse as column scratch
		for _, c := range cl.cells {
			cols = append(cols, cl.g.ColumnOf(c))
		}
		uniq := append([]int(nil), cols...)
		slices.Sort(uniq)
		uniq = slices.Compact(uniq)
		for i, c := range cl.cells {
			rank, _ := slices.BinarySearch(uniq, cl.g.ColumnOf(c))
			cl.shardOf[i] = int32(rank % cl.shards)
		}
		cl.nbBuf = cols[:0]
	}
	// Flatten the partition into per-shard slot lists (CSR, slots ascending
	// within a shard — the same visit order the shard test used to produce),
	// so each worker walks only its own cells instead of filtering all of
	// them every step.
	cl.shardStart = append(cl.shardStart[:0], make([]int32, cl.shards+1)...)
	for _, sh := range cl.shardOf {
		cl.shardStart[sh+1]++
	}
	for sh := 0; sh < cl.shards; sh++ {
		cl.shardStart[sh+1] += cl.shardStart[sh]
	}
	cl.shardSlot = append(cl.shardSlot[:0], make([]int32, len(cl.cells))...)
	fill := make([]int32, cl.shards)
	copy(fill, cl.shardStart[:cl.shards])
	for slot, sh := range cl.shardOf {
		cl.shardSlot[fill[sh]] = int32(slot)
		fill[sh]++
	}

	// Size the per-step CSR heads for the new topology.
	cl.count = append(cl.count[:0], make([]int32, len(cl.cells))...)
	cl.start = append(cl.start[:0], make([]int32, len(cl.cells)+1)...)
	cl.ghostStart = append(cl.ghostStart[:0], make([]int32, len(cl.ghostCells)+1)...)
	cl.stage = cl.stage[:0]
	cl.ghostPos = cl.ghostPos[:0]
}

// NumHosted returns the number of hosted cells.
func (cl *CellLists) NumHosted() int { return len(cl.cells) }

// HostedCells returns the hosted cell ids, ascending. The slice is owned by
// the CellLists; do not modify.
func (cl *CellLists) HostedCells() []int { return cl.cells }

// GhostCells returns the unhosted neighbor cells the kernel needs imported
// positions for, ascending. The slice is owned by the CellLists.
func (cl *CellLists) GhostCells() []int { return cl.ghostCells }

// SlotCell returns the cell id of hosted slot s.
func (cl *CellLists) SlotCell(s int) int { return cl.cells[s] }

// SlotLen returns the particle count of hosted slot s after Bin.
func (cl *CellLists) SlotLen(s int) int {
	return int(cl.start[s+1] - cl.start[s])
}

// SlotParticles returns the local particle indices of hosted slot s after
// Bin. The slice aliases internal storage valid until the next Bin.
func (cl *CellLists) SlotParticles(s int) []int32 {
	return cl.part[cl.start[s]:cl.start[s+1]]
}

// CellParticles returns the local particle indices of the given hosted cell
// after Bin, or nil (and false) if the cell is not hosted.
func (cl *CellLists) CellParticles(cell int) ([]int32, bool) {
	v := cl.slotOf[cell]
	if v < 0 {
		return nil, false
	}
	return cl.SlotParticles(int(v)), true
}

// Bin rebuilds the CSR cell list from the given positions. Particle indices
// within a cell are ascending (insertion order of the set). It returns -1
// on success, or the index of the first particle that falls outside the
// hosted set.
func (cl *CellLists) Bin(pos []vec.V) int {
	for i := range cl.count {
		cl.count[i] = 0
	}
	for i := range pos {
		v := cl.slotOf[cl.g.CellOf(pos[i])]
		if v < 0 {
			return i
		}
		cl.count[v]++
	}
	cl.start[0] = 0
	for s, n := range cl.count {
		cl.start[s+1] = cl.start[s] + n
	}
	if cap(cl.part) < len(pos) {
		cl.part = make([]int32, len(pos))
		cl.ppos = make([]vec.V, len(pos))
	}
	cl.part = cl.part[:len(pos)]
	cl.ppos = cl.ppos[:len(pos)]
	copy(cl.count, cl.start[:len(cl.count)]) // count becomes the fill cursor
	for i := range pos {
		v := cl.slotOf[cl.g.CellOf(pos[i])]
		cl.part[cl.count[v]] = int32(i)
		cl.ppos[cl.count[v]] = pos[i]
		cl.count[v]++
	}
	return -1
}

// ClearGhosts discards the ghost arena ahead of a new halo exchange.
func (cl *CellLists) ClearGhosts() {
	cl.stage = cl.stage[:0]
}

// StageGhost records the imported positions of one ghost cell. Each ghost
// cell has exactly one host and so must be staged at most once per step;
// cells that are not in the ghost set are a protocol violation.
func (cl *CellLists) StageGhost(cell int, pos []vec.V) {
	v := cl.slotOf[cell]
	if v >= -1 {
		panic(fmt.Sprintf("kernel: cell %d staged as ghost but not in the ghost set", cell))
	}
	cl.stage = append(cl.stage, ghostStage{slot: -2 - v, pos: pos})
}

// SealGhosts builds the flat ghost arena from the staged cells: positions
// land in ghost-slot (ascending cell id) order regardless of the order the
// halo responses arrived in, which fixes the summation order. Unstaged
// ghost cells are treated as empty.
func (cl *CellLists) SealGhosts() {
	slices.SortFunc(cl.stage, func(a, b ghostStage) int {
		return int(a.slot) - int(b.slot)
	})
	cl.ghostPos = cl.ghostPos[:0]
	si := 0
	for gs := range cl.ghostCells {
		cl.ghostStart[gs] = int32(len(cl.ghostPos))
		for si < len(cl.stage) && cl.stage[si].slot == int32(gs) {
			if si > 0 && cl.stage[si-1].slot == int32(gs) {
				panic(fmt.Sprintf("kernel: ghost cell %d staged twice", cl.ghostCells[gs]))
			}
			cl.ghostPos = append(cl.ghostPos, cl.stage[si].pos...)
			si++
		}
	}
	cl.ghostStart[len(cl.ghostCells)] = int32(len(cl.ghostPos))
	if si != len(cl.stage) {
		panic("kernel: staged ghost cell with out-of-range slot")
	}
}

// GhostLen returns the number of imported positions after SealGhosts.
func (cl *CellLists) GhostLen() int { return len(cl.ghostPos) }

// Compute accumulates short-range pair forces into s.Frc (which must be
// zeroed by the caller) over the hosted cells and returns this domain's
// share of the potential energy, the pair virial sum(f*r2) (ghost pairs
// contribute half, like the energy), and the number of pair-distance
// evaluations (the deterministic work metric). Pairs between two hosted
// cells use Newton's third law over the half stencil (each pair computed
// exactly once, the force scattered to both particles); pairs against
// ghost positions are evaluated one-sided with the energy and virial split
// half/half between the two hosts.
//
// With S > 1 shards each worker accumulates into a shard-local buffer;
// the buffers are zeroed and reduced into s.Frc inside the parallel
// section (fixed order: particles ascending, shards ascending per
// particle), so the bits never depend on worker timing.
func (cl *CellLists) Compute(pair potential.Pair, s *particle.Set) (potE, virial float64, pairs int64) {
	cl.pair = pair
	if cl.shards == 1 {
		cl.pot[0], cl.vir[0], cl.prs[0] = 0, 0, 0
		cl.computeShard(0, s.Frc)
		cl.pair = nil
		return cl.pot[0], cl.vir[0], cl.prs[0]
	}
	n := len(s.Pos)
	for sh := 0; sh < cl.shards; sh++ {
		cl.pot[sh], cl.vir[sh], cl.prs[sh] = 0, 0, 0
		if cap(cl.ffrc[sh]) < n {
			cl.ffrc[sh] = make([]vec.V, n)
		}
		cl.ffrc[sh] = cl.ffrc[sh][:n]
	}
	// Two dispatch rounds: every worker clears its own buffer and runs the
	// force pass over its cells, then — after the barrier — reduces a
	// disjoint particle range across all shard buffers into s.Frc. Both
	// the buffer zeroing and the O(shards*N) reduction run inside the
	// parallel section, so the serial fraction of a sharded step is only
	// the dispatch itself.
	cl.ensurePool()
	cl.phase = phaseForce
	cl.dispatch()
	cl.frcDst = s.Frc
	cl.phase = phaseReduce
	cl.dispatch()
	cl.frcDst = nil
	for sh := 0; sh < cl.shards; sh++ {
		potE += cl.pot[sh]
		virial += cl.vir[sh]
		pairs += cl.prs[sh]
	}
	cl.pair = nil
	return potE, virial, pairs
}

// dispatch releases every worker and waits for all of them to finish one
// phase.
func (cl *CellLists) dispatch() {
	for sh := 0; sh < cl.shards; sh++ {
		cl.startCh[sh] <- struct{}{}
	}
	for sh := 0; sh < cl.shards; sh++ {
		<-cl.doneCh
	}
}

// reduceRange folds the worker's share of particle indices across all
// shard buffers into frcDst. Shard order is fixed (0, 1, 2, ...) for every
// particle and the per-particle sums are independent, so the result is
// bit-identical to a serial fixed-order reduction regardless of how the
// index range is divided among workers.
func (cl *CellLists) reduceRange(sh int) {
	dst := cl.frcDst
	n := len(dst)
	lo := sh * n / cl.shards
	hi := (sh + 1) * n / cl.shards
	for i := lo; i < hi; i++ {
		f := dst[i]
		for s2 := 0; s2 < cl.shards; s2++ {
			f = f.Add(cl.ffrc[s2][i])
		}
		dst[i] = f
	}
}

// computeShard runs the kernel over the cells of one shard, accumulating
// forces into frc (indexed by particle id: s.Frc directly for shards == 1,
// the shard-local buffer otherwise) and scalars into the shard's
// accumulator slots. The Lennard-Jones evaluation is devirtualized via the
// concrete-type assertion so the compiler inlines it (manually hoisting its
// parameters into locals measured slower here: the extra live values spill
// in the inner loops); any other Pair goes through the interface call.
func (cl *CellLists) computeShard(sh int, frc []vec.V) {
	pair := cl.pair
	lj, ljOK := pair.(*potential.LJ) // devirtualized (inlinable) hot call
	rc2 := pair.Cutoff() * pair.Cutoff()
	box := cl.g.Box
	fast := cl.useShift
	var potE, virial float64
	var pairs int64
	for _, slot := range cl.shardSlot[cl.shardStart[sh]:cl.shardStart[sh+1]] {
		lo, hi := cl.start[slot], cl.start[slot+1]
		if lo == hi {
			continue // empty cell owns no pairs
		}
		lpos := cl.ppos[lo:hi]
		locals := cl.part[lo:hi]
		// Intra-cell pairs. With >= 4 cells per dimension the direct
		// difference is the minimum image (round term exactly zero).
		for a := 0; a < len(lpos); a++ {
			pi := lpos[a]
			i := locals[a]
			fi := frc[i]
			for b := a + 1; b < len(lpos); b++ {
				pairs++
				d := pi.Sub(lpos[b])
				if !fast {
					d = box.MinImage(d)
				}
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				var en, f float64
				if ljOK {
					en, f = lj.EnergyForce(r2)
				} else {
					en, f = pair.EnergyForce(r2)
				}
				potE += en
				virial += f * r2
				fv := d.Scale(f)
				fi = fi.Add(fv)
				j := locals[b]
				frc[j] = frc[j].Sub(fv)
			}
			frc[i] = fi
		}
		// Half-stencil neighbors, in Neighbors26 order: hosted entries are
		// the ~13 higher-id cells (pair owned here, force scattered to both
		// sides), ghost entries are one-sided.
		st := cl.stencil[cl.stStart[slot]:cl.stStart[slot+1]]
		shf := cl.stShift[cl.stStart[slot]:cl.stStart[slot+1]]
		for k, e := range st {
			term := shf[k]
			if e >= 0 {
				olo, ohi := cl.start[e], cl.start[e+1]
				if olo == ohi {
					continue // empty neighbor
				}
				opos := cl.ppos[olo:ohi]
				others := cl.part[olo:ohi]
				for a := range lpos {
					pi := lpos[a]
					i := locals[a]
					fi := frc[i]
					for b := range opos {
						pairs++
						var d vec.V
						if fast {
							q := opos[b]
							d = vec.V{X: pi.X - q.X - term.X, Y: pi.Y - q.Y - term.Y, Z: pi.Z - q.Z - term.Z}
						} else {
							d = box.MinImage(pi.Sub(opos[b]))
						}
						r2 := d.Norm2()
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						var en, f float64
						if ljOK {
							en, f = lj.EnergyForce(r2)
						} else {
							en, f = pair.EnergyForce(r2)
						}
						potE += en
						virial += f * r2
						fv := d.Scale(f)
						fi = fi.Add(fv)
						j := others[b]
						frc[j] = frc[j].Sub(fv)
					}
					frc[i] = fi
				}
				continue
			}
			gs := int(-1 - e)
			gpos := cl.ghostPos[cl.ghostStart[gs]:cl.ghostStart[gs+1]]
			if len(gpos) == 0 {
				continue // empty ghost cell
			}
			for a := range lpos {
				pi := lpos[a]
				i := locals[a]
				fi := frc[i]
				for b := range gpos {
					pairs++
					var d vec.V
					if fast {
						q := gpos[b]
						d = vec.V{X: pi.X - q.X - term.X, Y: pi.Y - q.Y - term.Y, Z: pi.Z - q.Z - term.Z}
					} else {
						d = box.MinImage(pi.Sub(gpos[b]))
					}
					r2 := d.Norm2()
					if r2 >= rc2 || r2 == 0 {
						continue
					}
					var en, f float64
					if ljOK {
						en, f = lj.EnergyForce(r2)
					} else {
						en, f = pair.EnergyForce(r2)
					}
					potE += en / 2
					virial += f * r2 / 2
					fi = fi.Add(d.Scale(f))
				}
				frc[i] = fi
			}
		}
	}
	cl.pot[sh] += potE
	cl.vir[sh] += virial
	cl.prs[sh] += pairs
}

// ensurePool starts the bounded worker pool (one goroutine per shard). The
// pool is bounded by the shard count, lives for the CellLists' lifetime and
// is fed over per-shard channels, so a Compute call performs no allocation.
func (cl *CellLists) ensurePool() {
	if cl.running {
		return
	}
	cl.startCh = make([]chan struct{}, cl.shards)
	cl.doneCh = make(chan struct{}, cl.shards)
	for sh := range cl.startCh {
		ch := make(chan struct{})
		cl.startCh[sh] = ch
		go func(sh int, ch chan struct{}) {
			for range ch {
				if cl.phase == phaseForce {
					ff := cl.ffrc[sh]
					clear(ff)
					cl.computeShard(sh, ff)
				} else {
					cl.reduceRange(sh)
				}
				cl.doneCh <- struct{}{}
			}
		}(sh, ch)
	}
	cl.running = true
}

// Close stops the worker pool. It is a no-op for shards == 1 or if the pool
// was never started; the CellLists must not be used after Close.
func (cl *CellLists) Close() {
	if !cl.running {
		return
	}
	for _, ch := range cl.startCh {
		close(ch)
	}
	cl.running = false
}
