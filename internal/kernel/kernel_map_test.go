package kernel

// mapPairForces is the historical map-based kernel the flat CellLists
// kernel is cross-checked against; the implementation lives in
// reference.go (exported as MapPairForces so cmd/figures can time it as
// the "old kernel" bench column). For shard count 1 the flat kernel must
// reproduce it bit for bit (same summation order), which is what keeps
// the golden experiment traces stable across the data-layout change.

import (
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
)

func mapPairForces(
	g space.Grid,
	pair potential.Pair,
	s *particle.Set,
	cellMap map[int][]int,
	hosted map[int]bool,
	ghost map[int][]vec.V,
) (potE float64, pairs int64) {
	return MapPairForces(g, pair, s, cellMap, hosted, ghost)
}
