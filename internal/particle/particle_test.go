package particle

import (
	"math"
	"testing"

	"permcell/internal/rng"
	"permcell/internal/vec"
)

func sample(n int, seed uint64) *Set {
	s := &Set{}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		s.Add(int64(i), r.InBox(vec.New(10, 10, 10)), r.MaxwellVelocity(1, 1))
	}
	return s
}

func TestAddLen(t *testing.T) {
	s := &Set{}
	if s.Len() != 0 {
		t.Fatal("empty set nonzero length")
	}
	i := s.Add(7, vec.New(1, 2, 3), vec.New(4, 5, 6))
	if i != 0 || s.Len() != 1 {
		t.Fatalf("Add returned %d, len %d", i, s.Len())
	}
	if s.ID[0] != 7 || s.Pos[0] != vec.New(1, 2, 3) || s.Vel[0] != vec.New(4, 5, 6) {
		t.Error("stored values wrong")
	}
	if s.Frc[0] != vec.Zero {
		t.Error("new particle has nonzero force")
	}
}

func TestRemoveSwap(t *testing.T) {
	s := sample(5, 1)
	lastID := s.ID[4]
	s.RemoveSwap(1)
	if s.Len() != 4 {
		t.Fatalf("len after remove = %d", s.Len())
	}
	if s.ID[1] != lastID {
		t.Errorf("swap did not move last particle: got %d want %d", s.ID[1], lastID)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRemoveSwapLast(t *testing.T) {
	s := sample(3, 2)
	s.RemoveSwap(2)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := sample(4, 3)
	c := s.Clone()
	c.Pos[0] = vec.New(99, 99, 99)
	if s.Pos[0] == c.Pos[0] {
		t.Error("clone shares storage")
	}
}

func TestClearKeepsNothing(t *testing.T) {
	s := sample(4, 4)
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("len after clear = %d", s.Len())
	}
}

func TestZeroForces(t *testing.T) {
	s := sample(4, 5)
	s.Frc[2] = vec.New(1, 1, 1)
	s.ZeroForces()
	for i, f := range s.Frc {
		if f != vec.Zero {
			t.Errorf("force %d = %v after ZeroForces", i, f)
		}
	}
}

func TestEnergyAndTemperature(t *testing.T) {
	s := &Set{}
	s.Add(0, vec.Zero, vec.New(1, 0, 0))
	s.Add(1, vec.Zero, vec.New(0, 2, 0))
	ke := s.KineticEnergy()
	if math.Abs(ke-2.5) > 1e-12 {
		t.Errorf("KE = %v, want 2.5", ke)
	}
	temp := s.Temperature()
	if math.Abs(temp-2*2.5/6) > 1e-12 {
		t.Errorf("T = %v", temp)
	}
}

func TestTemperatureEmpty(t *testing.T) {
	s := &Set{}
	if s.Temperature() != 0 {
		t.Error("empty set temperature nonzero")
	}
}

func TestMomentum(t *testing.T) {
	s := &Set{}
	s.Add(0, vec.Zero, vec.New(1, 2, 3))
	s.Add(1, vec.Zero, vec.New(-1, -2, -3))
	if p := s.Momentum(); p.Norm() > 1e-12 {
		t.Errorf("momentum = %v, want 0", p)
	}
}

func TestSortByID(t *testing.T) {
	s := &Set{}
	s.Add(3, vec.New(3, 0, 0), vec.Zero)
	s.Add(1, vec.New(1, 0, 0), vec.Zero)
	s.Add(2, vec.New(2, 0, 0), vec.Zero)
	s.SortByID()
	for i := 0; i < 3; i++ {
		if s.ID[i] != int64(i+1) {
			t.Fatalf("sorted IDs = %v", s.ID)
		}
		if s.Pos[i].X != float64(i+1) {
			t.Fatalf("positions did not follow IDs: %v", s.Pos)
		}
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	s := &Set{}
	s.Add(1, vec.Zero, vec.Zero)
	s.Add(1, vec.Zero, vec.Zero)
	if err := s.Validate(); err == nil {
		t.Error("duplicate IDs not caught")
	}
}

func TestValidateCatchesRagged(t *testing.T) {
	s := sample(3, 6)
	s.Pos = s.Pos[:2]
	if err := s.Validate(); err == nil {
		t.Error("ragged arrays not caught")
	}
}

func TestExtractAddOneRoundTrip(t *testing.T) {
	s := sample(3, 7)
	p := s.Extract(1)
	d := &Set{}
	d.AddOne(p)
	if d.ID[0] != s.ID[1] || d.Pos[0] != s.Pos[1] || d.Vel[0] != s.Vel[1] {
		t.Error("Extract/AddOne round trip mismatch")
	}
}
