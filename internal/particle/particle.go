// Package particle stores particle state in structure-of-arrays form. All
// particles have unit mass (reduced units). IDs are stable global
// identities: they survive migration between cells and PEs, which lets
// integration tests compare a parallel run against the serial reference
// particle by particle.
package particle

import (
	"fmt"
	"sort"

	"permcell/internal/vec"
)

// Set is a collection of particles in SoA layout. The zero value is an
// empty, usable set.
type Set struct {
	ID  []int64
	Pos []vec.V
	Vel []vec.V
	Frc []vec.V
}

// Len returns the number of particles.
func (s *Set) Len() int { return len(s.ID) }

// Add appends one particle and returns its local index.
func (s *Set) Add(id int64, pos, vel vec.V) int {
	s.ID = append(s.ID, id)
	s.Pos = append(s.Pos, pos)
	s.Vel = append(s.Vel, vel)
	s.Frc = append(s.Frc, vec.Zero)
	return len(s.ID) - 1
}

// RemoveSwap removes the particle at local index i by swapping in the last
// particle. Local indices are invalidated; IDs are not.
func (s *Set) RemoveSwap(i int) {
	last := len(s.ID) - 1
	s.ID[i] = s.ID[last]
	s.Pos[i] = s.Pos[last]
	s.Vel[i] = s.Vel[last]
	s.Frc[i] = s.Frc[last]
	s.ID = s.ID[:last]
	s.Pos = s.Pos[:last]
	s.Vel = s.Vel[:last]
	s.Frc = s.Frc[:last]
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{
		ID:  append([]int64(nil), s.ID...),
		Pos: append([]vec.V(nil), s.Pos...),
		Vel: append([]vec.V(nil), s.Vel...),
		Frc: append([]vec.V(nil), s.Frc...),
	}
	return c
}

// Clear empties the set but keeps capacity.
func (s *Set) Clear() {
	s.ID = s.ID[:0]
	s.Pos = s.Pos[:0]
	s.Vel = s.Vel[:0]
	s.Frc = s.Frc[:0]
}

// ZeroForces resets all force accumulators.
func (s *Set) ZeroForces() {
	for i := range s.Frc {
		s.Frc[i] = vec.Zero
	}
}

// KineticEnergy returns the total kinetic energy (unit mass).
func (s *Set) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += 0.5 * v.Norm2()
	}
	return ke
}

// Momentum returns the total momentum (unit mass).
func (s *Set) Momentum() vec.V {
	var p vec.V
	for _, v := range s.Vel {
		p = p.Add(v)
	}
	return p
}

// Temperature returns the instantaneous reduced temperature 2*KE/(3N).
// It returns 0 for an empty set.
func (s *Set) Temperature() float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(n))
}

// SortByID sorts the set in place by particle ID. Used to canonicalize
// state before comparing two simulations.
func (s *Set) SortByID() {
	sort.Sort(byID{s})
}

type byID struct{ s *Set }

func (b byID) Len() int           { return b.s.Len() }
func (b byID) Less(i, j int) bool { return b.s.ID[i] < b.s.ID[j] }
func (b byID) Swap(i, j int) {
	s := b.s
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
	s.Frc[i], s.Frc[j] = s.Frc[j], s.Frc[i]
}

// Validate checks internal consistency (parallel array lengths, unique IDs)
// and returns a descriptive error on failure. Used by tests and the
// engines' debug paths.
func (s *Set) Validate() error {
	n := len(s.ID)
	if len(s.Pos) != n || len(s.Vel) != n || len(s.Frc) != n {
		return fmt.Errorf("particle: ragged arrays id=%d pos=%d vel=%d frc=%d",
			len(s.ID), len(s.Pos), len(s.Vel), len(s.Frc))
	}
	seen := make(map[int64]bool, n)
	for _, id := range s.ID {
		if seen[id] {
			return fmt.Errorf("particle: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}

// One is a single particle in array-of-structs form, the unit of
// inter-PE transfer.
type One struct {
	ID       int64
	Pos, Vel vec.V
}

// Extract returns particle i as a One.
func (s *Set) Extract(i int) One {
	return One{ID: s.ID[i], Pos: s.Pos[i], Vel: s.Vel[i]}
}

// AddOne appends a transferred particle.
func (s *Set) AddOne(p One) int { return s.Add(p.ID, p.Pos, p.Vel) }
