// Package space models the periodic simulation box and the cubic cell grid
// that the domain decomposition method is built on. Cells have side length
// >= the potential cut-off, so all interactions of a particle are confined
// to its own cell and the 26 neighboring cells (Section 2.2 of the paper).
package space

import (
	"fmt"
	"math"

	"permcell/internal/vec"
)

// Box is a rectangular simulation box with periodic boundary conditions.
// Positions live in [0, L) per component.
type Box struct {
	L vec.V
}

// NewBox returns a box with the given edge lengths. All edges must be
// positive.
func NewBox(l vec.V) (Box, error) {
	if l.X <= 0 || l.Y <= 0 || l.Z <= 0 {
		return Box{}, fmt.Errorf("space: box edges must be positive, got %v", l)
	}
	return Box{L: l}, nil
}

// NewCubicBox returns a cubic box with edge length l.
func NewCubicBox(l float64) (Box, error) {
	return NewBox(vec.New(l, l, l))
}

// CubicBoxForDensity returns the cubic box whose volume holds n particles at
// reduced density rho.
func CubicBoxForDensity(n int, rho float64) (Box, error) {
	if n <= 0 || rho <= 0 {
		return Box{}, fmt.Errorf("space: need positive n and rho, got n=%d rho=%g", n, rho)
	}
	l := math.Cbrt(float64(n) / rho)
	return NewCubicBox(l)
}

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.L.X * b.L.Y * b.L.Z }

// Wrap maps p into the box under periodic boundary conditions.
func (b Box) Wrap(p vec.V) vec.V { return p.Wrap(b.L) }

// MinImage returns the minimum-image displacement vector for d.
func (b Box) MinImage(d vec.V) vec.V { return d.MinImage(b.L) }

// Displacement returns the minimum-image displacement from q to p (p - q).
func (b Box) Displacement(p, q vec.V) vec.V { return b.MinImage(p.Sub(q)) }

// Dist2 returns the squared minimum-image distance between p and q.
func (b Box) Dist2(p, q vec.V) float64 { return b.Displacement(p, q).Norm2() }
