package space

import (
	"fmt"
	"math"

	"permcell/internal/vec"
)

// Grid partitions a periodic box into Nx x Ny x Nz cells. Cell sides are at
// least the interaction cut-off, so force computation only needs a cell and
// its 26 periodic neighbors. Cells are addressed either by (ix, iy, iz)
// coordinates or by a flat index ix + Nx*(iy + Ny*iz).
//
// A column (ix, iy) is the stack of all Nz cells sharing that cross-section
// coordinate; square-pillar domains and the DLB protocol redistribute whole
// columns.
type Grid struct {
	Box        Box
	Nx, Ny, Nz int
}

// NewGrid returns the finest grid whose cell sides are all >= rc. There must
// be at least one cell per dimension; for correctness of the 26-neighbor
// force search under periodicity the grid is valid with any dimension >= 1
// (neighbors are deduplicated by the force engines when dimensions are < 3).
func NewGrid(b Box, rc float64) (Grid, error) {
	if rc <= 0 {
		return Grid{}, fmt.Errorf("space: cut-off must be positive, got %g", rc)
	}
	nx := int(math.Floor(b.L.X / rc))
	ny := int(math.Floor(b.L.Y / rc))
	nz := int(math.Floor(b.L.Z / rc))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if nz < 1 {
		nz = 1
	}
	return Grid{Box: b, Nx: nx, Ny: ny, Nz: nz}, nil
}

// NewGridWithDims returns a grid with exactly the given cell counts.
func NewGridWithDims(b Box, nx, ny, nz int) (Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return Grid{}, fmt.Errorf("space: grid dims must be >= 1, got %dx%dx%d", nx, ny, nz)
	}
	return Grid{Box: b, Nx: nx, Ny: ny, Nz: nz}, nil
}

// NumCells returns the total number of cells C.
func (g Grid) NumCells() int { return g.Nx * g.Ny * g.Nz }

// CellSize returns the edge lengths of one cell.
func (g Grid) CellSize() (sx, sy, sz float64) {
	return g.Box.L.X / float64(g.Nx), g.Box.L.Y / float64(g.Ny), g.Box.L.Z / float64(g.Nz)
}

// Index flattens cell coordinates. Coordinates must already be in range.
func (g Grid) Index(ix, iy, iz int) int {
	return ix + g.Nx*(iy+g.Ny*iz)
}

// Coords inverts Index.
func (g Grid) Coords(idx int) (ix, iy, iz int) {
	ix = idx % g.Nx
	idx /= g.Nx
	iy = idx % g.Ny
	iz = idx / g.Ny
	return
}

// WrapCoords maps possibly out-of-range cell coordinates into the grid under
// periodicity.
func (g Grid) WrapCoords(ix, iy, iz int) (int, int, int) {
	return mod(ix, g.Nx), mod(iy, g.Ny), mod(iz, g.Nz)
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// CellOfCoords returns the flat index of the (wrapped) cell coordinates.
func (g Grid) CellOfCoords(ix, iy, iz int) int {
	ix, iy, iz = g.WrapCoords(ix, iy, iz)
	return g.Index(ix, iy, iz)
}

// CellOf returns the flat index of the cell containing position p. The
// position is wrapped into the box first, so any finite p is valid.
func (g Grid) CellOf(p vec.V) int {
	q := g.Box.Wrap(p)
	sx, sy, sz := g.CellSize()
	ix := clampCell(int(q.X/sx), g.Nx)
	iy := clampCell(int(q.Y/sy), g.Ny)
	iz := clampCell(int(q.Z/sz), g.Nz)
	return g.Index(ix, iy, iz)
}

// clampCell guards against q == L after floating point rounding.
func clampCell(i, n int) int {
	if i >= n {
		return n - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

// Neighbors26 appends to dst the flat indices of the (up to) 26 distinct
// cells surrounding idx under periodic wrapping, excluding idx itself, and
// returns the extended slice. When a grid dimension is small (< 3), wrapped
// neighbor coordinates collide; duplicates and self are removed so force
// engines never double count.
func (g Grid) Neighbors26(idx int, dst []int) []int {
	ix, iy, iz := g.Coords(idx)
	seen := map[int]bool{idx: true}
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := g.CellOfCoords(ix+dx, iy+dy, iz+dz)
				if !seen[n] {
					seen[n] = true
					dst = append(dst, n)
				}
			}
		}
	}
	return dst
}

// NumColumns returns the number of square-pillar columns Nx*Ny.
func (g Grid) NumColumns() int { return g.Nx * g.Ny }

// ColumnIndex flattens column coordinates (ix, iy).
func (g Grid) ColumnIndex(ix, iy int) int { return ix + g.Nx*iy }

// ColumnCoords inverts ColumnIndex.
func (g Grid) ColumnCoords(col int) (ix, iy int) { return col % g.Nx, col / g.Nx }

// ColumnOf returns the column index of cell idx.
func (g Grid) ColumnOf(idx int) int {
	ix, iy, _ := g.Coords(idx)
	return g.ColumnIndex(ix, iy)
}

// CellsInColumn appends the flat indices of the Nz cells in column col to
// dst and returns the extended slice.
func (g Grid) CellsInColumn(col int, dst []int) []int {
	ix, iy := g.ColumnCoords(col)
	for iz := 0; iz < g.Nz; iz++ {
		dst = append(dst, g.Index(ix, iy, iz))
	}
	return dst
}

// ColumnNeighbors8 appends the (up to) 8 distinct neighboring columns of col
// under periodic wrapping in the cross-section plane, excluding col itself.
func (g Grid) ColumnNeighbors8(col int, dst []int) []int {
	ix, iy := g.ColumnCoords(col)
	seen := map[int]bool{col: true}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := g.ColumnIndex(mod(ix+dx, g.Nx), mod(iy+dy, g.Ny))
			if !seen[n] {
				seen[n] = true
				dst = append(dst, n)
			}
		}
	}
	return dst
}
