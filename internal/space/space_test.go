package space

import (
	"math"
	"testing"
	"testing/quick"

	"permcell/internal/rng"
	"permcell/internal/vec"
)

func mustBox(t *testing.T, l float64) Box {
	t.Helper()
	b, err := NewCubicBox(l)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBoxRejectsBadEdges(t *testing.T) {
	for _, l := range []vec.V{{}, {X: -1, Y: 1, Z: 1}, {X: 1, Y: 0, Z: 1}} {
		if _, err := NewBox(l); err == nil {
			t.Errorf("NewBox(%v) succeeded, want error", l)
		}
	}
}

func TestCubicBoxForDensity(t *testing.T) {
	b, err := CubicBoxForDensity(1000, 0.256)
	if err != nil {
		t.Fatal(err)
	}
	rho := 1000 / b.Volume()
	if math.Abs(rho-0.256) > 1e-12 {
		t.Errorf("density = %v, want 0.256", rho)
	}
	if _, err := CubicBoxForDensity(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := CubicBoxForDensity(10, -1); err == nil {
		t.Error("rho<0 accepted")
	}
}

func TestBoxDisplacementMinImage(t *testing.T) {
	b := mustBox(t, 10)
	p, q := vec.New(9.5, 0, 5), vec.New(0.5, 9.5, 5)
	d := b.Displacement(p, q)
	want := vec.New(-1, 0.5, 0)
	if d.Dist(want) > 1e-12 {
		t.Errorf("Displacement = %v, want %v", d, want)
	}
	if got := b.Dist2(p, q); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 1.25", got)
	}
}

func TestNewGridCellSizeAtLeastCutoff(t *testing.T) {
	b := mustBox(t, 30)
	g, err := NewGrid(b, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 12 || g.Ny != 12 || g.Nz != 12 {
		t.Fatalf("grid dims = %dx%dx%d, want 12^3", g.Nx, g.Ny, g.Nz)
	}
	sx, sy, sz := g.CellSize()
	if sx < 2.5 || sy < 2.5 || sz < 2.5 {
		t.Errorf("cell size %v %v %v below cut-off", sx, sy, sz)
	}
}

func TestNewGridRejectsBadCutoff(t *testing.T) {
	b := mustBox(t, 10)
	if _, err := NewGrid(b, 0); err == nil {
		t.Error("rc=0 accepted")
	}
}

func TestNewGridTinyBox(t *testing.T) {
	b := mustBox(t, 1)
	g, err := NewGrid(b, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 1 {
		t.Errorf("tiny box cells = %d, want 1", g.NumCells())
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 3, 4, 5)
	for idx := 0; idx < g.NumCells(); idx++ {
		ix, iy, iz := g.Coords(idx)
		if g.Index(ix, iy, iz) != idx {
			t.Fatalf("round trip failed for %d -> (%d,%d,%d)", idx, ix, iy, iz)
		}
		if ix < 0 || ix >= 3 || iy < 0 || iy >= 4 || iz < 0 || iz >= 5 {
			t.Fatalf("coords out of range: (%d,%d,%d)", ix, iy, iz)
		}
	}
}

func TestWrapCoords(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 4, 4, 4)
	cases := []struct{ in, want [3]int }{
		{[3]int{-1, 0, 0}, [3]int{3, 0, 0}},
		{[3]int{4, 5, -5}, [3]int{0, 1, 3}},
		{[3]int{8, -8, 7}, [3]int{0, 0, 3}},
	}
	for _, c := range cases {
		x, y, z := g.WrapCoords(c.in[0], c.in[1], c.in[2])
		if [3]int{x, y, z} != c.want {
			t.Errorf("WrapCoords(%v) = (%d,%d,%d), want %v", c.in, x, y, z, c.want)
		}
	}
}

func TestCellOfInRange(t *testing.T) {
	b := mustBox(t, 10)
	g, _ := NewGridWithDims(b, 4, 4, 4)
	s := rng.New(1)
	for i := 0; i < 10000; i++ {
		p := vec.New(s.Uniform(-30, 30), s.Uniform(-30, 30), s.Uniform(-30, 30))
		c := g.CellOf(p)
		if c < 0 || c >= g.NumCells() {
			t.Fatalf("CellOf(%v) = %d out of range", p, c)
		}
	}
}

func TestCellOfBoundary(t *testing.T) {
	b := mustBox(t, 10)
	g, _ := NewGridWithDims(b, 4, 4, 4)
	// A coordinate exactly at the box edge must wrap to cell 0, not fall off.
	c := g.CellOf(vec.New(10, 10, 10))
	if c != 0 {
		t.Errorf("CellOf(L) = %d, want 0", c)
	}
	// Just below the edge lands in the last cell.
	c = g.CellOf(vec.New(10-1e-9, 10-1e-9, 10-1e-9))
	if c != g.NumCells()-1 {
		t.Errorf("CellOf(L-eps) = %d, want %d", c, g.NumCells()-1)
	}
}

func TestNeighbors26Count(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 4, 4, 4)
	for idx := 0; idx < g.NumCells(); idx++ {
		nb := g.Neighbors26(idx, nil)
		if len(nb) != 26 {
			t.Fatalf("cell %d has %d neighbors, want 26", idx, len(nb))
		}
		seen := map[int]bool{}
		for _, n := range nb {
			if n == idx {
				t.Fatalf("cell %d is its own neighbor", idx)
			}
			if seen[n] {
				t.Fatalf("cell %d has duplicate neighbor %d", idx, n)
			}
			seen[n] = true
		}
	}
}

func TestNeighbors26SmallGridDedup(t *testing.T) {
	b := mustBox(t, 6)
	g, _ := NewGridWithDims(b, 2, 2, 2)
	// In a 2x2x2 grid every other cell is a neighbor exactly once.
	nb := g.Neighbors26(0, nil)
	if len(nb) != 7 {
		t.Fatalf("2x2x2 grid: %d neighbors, want 7", len(nb))
	}
}

func TestNeighbors26Symmetric(t *testing.T) {
	b := mustBox(t, 15)
	g, _ := NewGridWithDims(b, 5, 3, 4)
	adj := make(map[[2]int]bool)
	for idx := 0; idx < g.NumCells(); idx++ {
		for _, n := range g.Neighbors26(idx, nil) {
			adj[[2]int{idx, n}] = true
		}
	}
	for k := range adj {
		if !adj[[2]int{k[1], k[0]}] {
			t.Fatalf("neighbor relation not symmetric for %v", k)
		}
	}
}

func TestColumns(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 4, 3, 5)
	if g.NumColumns() != 12 {
		t.Fatalf("NumColumns = %d, want 12", g.NumColumns())
	}
	for col := 0; col < g.NumColumns(); col++ {
		ix, iy := g.ColumnCoords(col)
		if g.ColumnIndex(ix, iy) != col {
			t.Fatalf("column round trip failed for %d", col)
		}
		cells := g.CellsInColumn(col, nil)
		if len(cells) != g.Nz {
			t.Fatalf("column %d has %d cells, want %d", col, len(cells), g.Nz)
		}
		for _, c := range cells {
			if g.ColumnOf(c) != col {
				t.Fatalf("cell %d reports column %d, want %d", c, g.ColumnOf(c), col)
			}
		}
	}
}

func TestColumnsPartitionCells(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 3, 4, 2)
	seen := make([]bool, g.NumCells())
	for col := 0; col < g.NumColumns(); col++ {
		for _, c := range g.CellsInColumn(col, nil) {
			if seen[c] {
				t.Fatalf("cell %d in two columns", c)
			}
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cell %d in no column", c)
		}
	}
}

func TestColumnNeighbors8(t *testing.T) {
	b := mustBox(t, 12)
	g, _ := NewGridWithDims(b, 4, 4, 4)
	for col := 0; col < g.NumColumns(); col++ {
		nb := g.ColumnNeighbors8(col, nil)
		if len(nb) != 8 {
			t.Fatalf("column %d has %d neighbors, want 8", col, len(nb))
		}
	}
}

func TestMinImageWithinCutoffOfNeighborCells(t *testing.T) {
	// Property: two particles within the cut-off are always in the same or
	// neighboring cells — the fundamental premise of DDM force computation.
	b := mustBox(t, 20)
	const rc = 2.5
	g, err := NewGrid(b, rc)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(99)
	f := func(seedShift uint64) bool {
		p := s.InBox(b.L)
		// Random displacement of length < rc.
		d := s.MaxwellVelocity(1, 1)
		if d.Norm() == 0 {
			return true
		}
		d = d.Scale(s.Uniform(0, rc*0.999) / d.Norm())
		q := b.Wrap(p.Add(d))
		cp, cq := g.CellOf(p), g.CellOf(q)
		if cp == cq {
			return true
		}
		for _, n := range g.Neighbors26(cp, nil) {
			if n == cq {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
