package experiments

import (
	"fmt"
	"io"

	"permcell/internal/core"
	"permcell/internal/metrics"
	"permcell/internal/trace"
)

// PhasesResult is the observability companion to Figs. 5 and 7: the
// per-step imbalance gauges (max/ave load ratio and parallel efficiency)
// for plain DDM vs DLB-DDM on the same condensing system, plus each run's
// per-phase wall-time breakdown averaged over the trace. It is built from
// the metrics layer (core.Config.Metrics) rather than the deterministic
// work census alone, so the phase shares reflect measured time.
type PhasesResult struct {
	M, P int
	Info SysInfo

	Steps              []int
	RatioDDM, RatioDLB []float64 // Fmax/Fave per step (1 = perfect balance)
	EffDDM, EffDLB     []float64 // Fave/Fmax per step
	MovedDLB           []float64 // columns moved by DLB per step

	// PhaseSecsDDM/DLB are run averages of the PE-average per-phase wall
	// seconds; StepWallDDM/DLB the matching whole-step averages.
	PhaseSecsDDM, PhaseSecsDLB [metrics.NumPhases]float64
	StepWallDDM, StepWallDLB   float64
}

// Phases runs the condensing system once without and once with DLB, both
// under the phase-timing layer, and reduces the per-step records into the
// imbalance curves and phase breakdowns.
func Phases(pr Preset, m int, seed uint64) (*PhasesResult, error) {
	const rho = 0.256
	run := func(dlbOn bool) (*core.Result, SysInfo, error) {
		spec := pr.spec(m, pr.P, rho, pr.FigSteps, dlbOn, seed)
		spec.Metrics = true
		return spec.Run()
	}
	ddm, info, err := run(false)
	if err != nil {
		return nil, err
	}
	dlbRes, _, err := run(true)
	if err != nil {
		return nil, err
	}

	r := &PhasesResult{M: m, P: pr.P, Info: info}
	for i, st := range ddm.Stats {
		if i >= len(dlbRes.Stats) {
			break
		}
		dl := dlbRes.Stats[i]
		r.Steps = append(r.Steps, st.Step)
		r.RatioDDM = append(r.RatioDDM, st.LoadRatio())
		r.EffDDM = append(r.EffDDM, st.Efficiency())
		r.RatioDLB = append(r.RatioDLB, dl.LoadRatio())
		r.EffDLB = append(r.EffDLB, dl.Efficiency())
		r.MovedDLB = append(r.MovedDLB, float64(dl.Moved))
		for ph := 0; ph < metrics.NumPhases; ph++ {
			r.PhaseSecsDDM[ph] += st.Phases.AveSecs[ph]
			r.PhaseSecsDLB[ph] += dl.Phases.AveSecs[ph]
		}
		r.StepWallDDM += st.StepWallAve
		r.StepWallDLB += dl.StepWallAve
	}
	if n := float64(len(r.Steps)); n > 0 {
		for ph := 0; ph < metrics.NumPhases; ph++ {
			r.PhaseSecsDDM[ph] /= n
			r.PhaseSecsDLB[ph] /= n
		}
		r.StepWallDDM /= n
		r.StepWallDLB /= n
	}
	return r, nil
}

// mean of a series (0 for empty).
func seriesMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// MeanRatioDDM is the run-average DDM load ratio.
func (r *PhasesResult) MeanRatioDDM() float64 { return seriesMean(r.RatioDDM) }

// MeanRatioDLB is the run-average DLB-DDM load ratio.
func (r *PhasesResult) MeanRatioDLB() float64 { return seriesMean(r.RatioDLB) }

// Render prints the phase breakdown table and the imbalance series.
func (r *PhasesResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Phases (m=%d): per-phase time share and load imbalance, DDM vs DLB-DDM\n", r.M)
	fmt.Fprintf(w, "  P=%d  N=%d  C=%d\n\n", r.P, r.Info.N, r.Info.C)
	fmt.Fprintf(w, "  %-14s %14s %7s %14s %7s\n", "phase", "DDM [s/step]", "share", "DLB [s/step]", "share")
	for ph := metrics.Phase(0); ph < metrics.NumPhases; ph++ {
		shareDDM, shareDLB := 0.0, 0.0
		if r.StepWallDDM > 0 {
			shareDDM = 100 * r.PhaseSecsDDM[ph] / r.StepWallDDM
		}
		if r.StepWallDLB > 0 {
			shareDLB = 100 * r.PhaseSecsDLB[ph] / r.StepWallDLB
		}
		fmt.Fprintf(w, "  %-14s %14.3e %6.1f%% %14.3e %6.1f%%\n",
			ph.String(), r.PhaseSecsDDM[ph], shareDDM, r.PhaseSecsDLB[ph], shareDLB)
	}
	fmt.Fprintf(w, "  %-14s %14.3e %7s %14.3e\n\n", "step wall", r.StepWallDDM, "", r.StepWallDLB)
	fmt.Fprintf(w, "  mean load ratio Fmax/Fave: DDM %.3f, DLB-DDM %.3f\n", r.MeanRatioDDM(), r.MeanRatioDLB())
	fmt.Fprintf(w, "  mean efficiency Fave/Fmax: DDM %.3f, DLB-DDM %.3f\n\n",
		seriesMean(r.EffDDM), seriesMean(r.EffDLB))
	return trace.Plot(w, []string{"ratio DDM", "ratio DLB-DDM"},
		[][]float64{r.RatioDDM, r.RatioDLB}, 72, 18)
}

// WriteCSV emits the per-step imbalance series in machine-readable form.
func (r *PhasesResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,ratio_ddm,eff_ddm,ratio_dlb,eff_dlb,moved_dlb"); err != nil {
		return err
	}
	for i, s := range r.Steps {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g\n",
			s, r.RatioDDM[i], r.EffDDM[i], r.RatioDLB[i], r.EffDLB[i], r.MovedDLB[i]); err != nil {
			return err
		}
	}
	return nil
}
