package experiments

import (
	"fmt"
	"io"

	"permcell/internal/lsq"
	"permcell/internal/theory"
)

// BoundaryPoint is one experimental boundary point of Fig. 10: the
// concentration state at which DLB stops balancing a run at the given
// density, averaged over Reps independent runs.
type BoundaryPoint struct {
	Rho      float64
	N, C0C   float64 // means over detected runs
	NStd     float64
	C0CStd   float64
	Runs     int     // runs attempted
	Detected int     // runs whose boundary was found
	TheoryF  float64 // f(m, n) at the measured n
	MeanStep float64
}

// Fig10Result reproduces one panel of Fig. 10: theoretical upper bound
// f(m, n) vs experimental boundary points for several densities, plus the
// least-squares experimental boundary (the E/T scale of Table 1).
type Fig10Result struct {
	M, P   int
	Points []BoundaryPoint
	// EOverT is the least-squares ratio of the experimental boundary to
	// the theoretical bound (Table 1's E/T).
	EOverT float64
	// Fitted reports whether enough points were detected to fit E/T.
	Fitted bool
}

// boundaryOnce runs one DLB condensing run and returns the boundary
// concentration state, or ok=false if the run never crossed the limit.
func boundaryOnce(pr Preset, m, p int, rho float64, seed uint64) (n, c0c float64, step int, ok bool) {
	res, _, err := pr.spec(m, p, rho, pr.BoundarySteps, true, seed).Run()
	if err != nil {
		return 0, 0, 0, false
	}
	idx := detectBoundary(res.Stats)
	if idx < 0 || idx >= len(res.Stats) {
		return 0, 0, 0, false
	}
	st := res.Stats[idx]
	// A DLB-limit boundary only exists in a meaningful concentration state:
	// with no empty cells (C_0 = 0) or n < 1 the detected rise is
	// cell-granularity noise, not the Section 4 limit.
	if st.Conc.C0 == 0 || st.Conc.NFactor < 1 {
		return 0, 0, 0, false
	}
	return st.Conc.NFactor, st.Conc.C0OverC, st.Step, true
}

// Fig10 regenerates one panel (one m) of Fig. 10 at PE count p.
func Fig10(pr Preset, m, p int, seed uint64) (*Fig10Result, error) {
	if m < 2 {
		return nil, fmt.Errorf("experiments: Fig10 needs m >= 2")
	}
	r := &Fig10Result{M: m, P: p}
	var xs, ys []float64
	for di, rho := range pr.Densities {
		var ns, cs, steps []float64
		runs := 0
		for rep := 0; rep < pr.Reps; rep++ {
			runs++
			n, c0c, step, ok := boundaryOnce(pr, m, p, rho, seed+uint64(1000*di+rep))
			if !ok {
				continue
			}
			ns = append(ns, n)
			cs = append(cs, c0c)
			steps = append(steps, float64(step))
		}
		pt := BoundaryPoint{Rho: rho, Runs: runs, Detected: len(ns)}
		if len(ns) > 0 {
			pt.N, pt.NStd = lsq.MeanStd(ns)
			pt.C0C, pt.C0CStd = lsq.MeanStd(cs)
			pt.MeanStep, _ = lsq.MeanStd(steps)
			nClamped := pt.N
			if nClamped < 1 {
				nClamped = 1
			}
			pt.TheoryF = theory.MustF(m, nClamped)
			xs = append(xs, pt.TheoryF)
			ys = append(ys, pt.C0C)
		}
		r.Points = append(r.Points, pt)
	}
	if len(xs) > 0 {
		if a, err := lsq.FitScale(xs, ys); err == nil {
			r.EOverT = a
			r.Fitted = true
		}
	}
	return r, nil
}

// TheoryCurve samples f(m, n) over the plotted n range.
func (r *Fig10Result) TheoryCurve() (ns, fs []float64) {
	for n := 1.0; n <= 3.0; n += 0.05 {
		ns = append(ns, n)
		fs = append(fs, theory.MustF(r.M, n))
	}
	return ns, fs
}

// Render prints the panel.
func (r *Fig10Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 10 (m=%d, P=%d): theoretical upper bound vs experimental boundary points\n\n", r.M, r.P)
	fmt.Fprintf(w, "  theoretical upper bound: f(%d, n) = 3(m-1)^2 / (m^2(n-1) + 3n(m-1)^2)\n", r.M)
	fmt.Fprintf(w, "  %8s %10s %12s %12s %12s %10s %10s\n",
		"rho", "detected", "n", "C0/C (E)", "f(m,n) (T)", "E/T", "step")
	for _, pt := range r.Points {
		if pt.Detected == 0 {
			fmt.Fprintf(w, "  %8.3f %7d/%-2d %12s %12s %12s %10s %10s\n",
				pt.Rho, 0, pt.Runs, "-", "-", "-", "-", "-")
			continue
		}
		ratio := 0.0
		if pt.TheoryF > 0 {
			ratio = pt.C0C / pt.TheoryF
		}
		fmt.Fprintf(w, "  %8.3f %7d/%-2d %6.3f±%-5.3f %6.3f±%-5.3f %12.3f %10.3f %10.0f\n",
			pt.Rho, pt.Detected, pt.Runs, pt.N, pt.NStd, pt.C0C, pt.C0CStd, pt.TheoryF, ratio, pt.MeanStep)
	}
	if r.Fitted {
		fmt.Fprintf(w, "\n  least-squares experimental boundary: E = %.3f * f(%d, n)   (E/T = %.3f)\n",
			r.EOverT, r.M, r.EOverT)
	} else {
		fmt.Fprintln(w, "\n  no boundary points detected; runs stayed inside the DLB effective range")
	}
	return nil
}

// AllBelowTheory reports whether every detected boundary point lies at or
// below the theoretical bound — the paper's headline Fig. 10 observation.
func (r *Fig10Result) AllBelowTheory(slack float64) bool {
	for _, pt := range r.Points {
		if pt.Detected == 0 {
			continue
		}
		if pt.C0C > pt.TheoryF*(1+slack) {
			return false
		}
	}
	return true
}
