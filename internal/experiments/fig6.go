package experiments

import (
	"fmt"
	"io"

	"permcell/internal/core"
	"permcell/internal/trace"
)

// ForceSeries is one method's per-step force-time decomposition: the
// paper's Tt, Fmax, Fave, Fmin lines of Fig. 6, in the work metric.
type ForceSeries struct {
	Steps                []int
	Tt, Fmax, Fave, Fmin []float64
}

func forceSeries(res *core.Result) ForceSeries {
	var s ForceSeries
	for _, st := range res.Stats {
		s.Steps = append(s.Steps, st.Step)
		// On the work metric the step time is dominated by — and here equal
		// to — the slowest force computation (the paper: "Tt depends on
		// Fmax ... because of the synchronization among PEs").
		s.Tt = append(s.Tt, st.WorkMax)
		s.Fmax = append(s.Fmax, st.WorkMax)
		s.Fave = append(s.Fave, st.WorkAve)
		s.Fmin = append(s.Fmin, st.WorkMin)
	}
	return s
}

// Spread returns Fmax-Fmin at sample i.
func (s ForceSeries) Spread(i int) float64 { return s.Fmax[i] - s.Fmin[i] }

// Fig6Result reproduces Fig. 6: the force-time decomposition for DDM (a)
// and DLB-DDM (b) on the m=4 run of Fig. 5(a).
type Fig6Result struct {
	M, P int
	Info SysInfo
	DDM  ForceSeries
	DLB  ForceSeries
}

// Fig6 regenerates Fig. 6 (paper: m=4, N=59319, C=13824, 36 PEs).
func Fig6(pr Preset, seed uint64) (*Fig6Result, error) {
	m := 4
	if len(pr.Ms) > 0 {
		m = pr.Ms[len(pr.Ms)-1] // the largest m the preset affords
	}
	const rho = 0.256
	ddm, dlbRes, info, err := condensePair(pr, m, pr.P, rho, pr.FigSteps, seed)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{
		M: m, P: pr.P, Info: info,
		DDM: forceSeries(ddm),
		DLB: forceSeries(dlbRes),
	}, nil
}

// Render prints both panels.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 6 (m=%d, P=%d, N=%d, C=%d): Tt / Fmax / Fave / Fmin per step\n\n",
		r.M, r.P, r.Info.N, r.Info.C)
	for _, panel := range []struct {
		name string
		s    ForceSeries
	}{{"(a) DDM", r.DDM}, {"(b) DLB-DDM", r.DLB}} {
		fmt.Fprintf(w, "%s\n  %8s %12s %12s %12s %12s %12s\n",
			panel.name, "step", "Tt", "Fmax", "Fave", "Fmin", "Fmax-Fmin")
		stride := len(panel.s.Steps) / 15
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(panel.s.Steps); i += stride {
			fmt.Fprintf(w, "  %8d %12.0f %12.0f %12.0f %12.0f %12.0f\n",
				panel.s.Steps[i], panel.s.Tt[i], panel.s.Fmax[i], panel.s.Fave[i],
				panel.s.Fmin[i], panel.s.Spread(i))
		}
		if err := trace.Plot(w, []string{"Fmax", "Fave", "Fmin"},
			[][]float64{panel.s.Fmax, panel.s.Fave, panel.s.Fmin}, 72, 14); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
