package experiments

import (
	"hash/fnv"
	"math"
	"time"

	"permcell/internal/comm"
	"permcell/internal/core"
)

// ChaosSpec runs one condensing DLB-DDM simulation under a comm
// fault-injection plan, with per-step protocol verification on and the
// deadlock watchdog armed. The replay property the chaos harness checks is
// that two runs of the same spec (same Plan.Seed) produce the identical
// deterministic trace (TraceHash).
type ChaosSpec struct {
	RunSpec
	// Plan is the fault-injection plan (see comm.FaultPlan). Its Seed
	// drives every injected fault; the RunSpec Seed drives the physics.
	Plan comm.FaultPlan
	// Watchdog is the deadlock-detection timeout (0 = no watchdog).
	Watchdog time.Duration
}

// ChaosResult is the outcome of a chaos run.
type ChaosResult struct {
	Res  *core.Result
	Info SysInfo
	// Faults counts the faults actually injected.
	Faults comm.FaultStats
	// TraceHash fingerprints the deterministic per-step trace.
	TraceHash uint64
}

// Run executes the chaos spec: the full parallel engine with the fault
// plan threaded through the comm substrate and Verify asserting the
// DESIGN.md Section 6 invariants after every step.
func (s ChaosSpec) Run() (*ChaosResult, error) {
	cfg, sys, info, err := s.Build()
	if err != nil {
		return nil, err
	}
	cfg.Faults = &s.Plan
	cfg.Watchdog = s.Watchdog
	cfg.Verify = true
	res, err := core.Run(cfg, sys, s.Steps)
	if err != nil {
		return nil, err
	}
	return &ChaosResult{
		Res:       res,
		Info:      info,
		Faults:    res.Faults,
		TraceHash: TraceHash(res.Stats),
	}, nil
}

// TraceHash fingerprints the deterministic fields of a per-step trace with
// FNV-1a: step, the work-metric load series, columns moved, the global
// observables and the concentration census. Wall-clock fields are excluded
// — they vary run to run (and chaos runs perturb them on purpose), while
// everything hashed here must replay exactly from the seeds.
func TraceHash(stats []core.StepStats) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wi := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	wf := func(v float64) { wi(math.Float64bits(v)) }
	for _, st := range stats {
		wi(uint64(st.Step))
		wf(st.WorkMax)
		wf(st.WorkAve)
		wf(st.WorkMin)
		wi(uint64(st.Moved))
		wf(st.TotalEnergy)
		wf(st.Temperature)
		wi(uint64(st.Conc.C))
		wi(uint64(st.Conc.C0))
		wf(st.Conc.C0OverC)
		wf(st.Conc.NFactor)
	}
	return h.Sum64()
}
