package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/core"
)

// ChaosSpec runs one condensing DLB-DDM simulation under a comm
// fault-injection plan, with per-step protocol verification on and the
// deadlock watchdog armed. The replay property the chaos harness checks is
// that two runs of the same spec (same Plan.Seed) produce the identical
// deterministic trace (TraceHash).
type ChaosSpec struct {
	RunSpec
	// Plan is the fault-injection plan (see comm.FaultPlan). Its Seed
	// drives every injected fault; the RunSpec Seed drives the physics.
	Plan comm.FaultPlan
	// Watchdog is the deadlock-detection timeout (0 = no watchdog).
	Watchdog time.Duration
}

// ChaosResult is the outcome of a chaos run.
type ChaosResult struct {
	Res  *core.Result
	Info SysInfo
	// Faults counts the faults actually injected.
	Faults comm.FaultStats
	// TraceHash fingerprints the deterministic per-step trace.
	TraceHash uint64
}

// Run executes the chaos spec: the full parallel engine with the fault
// plan threaded through the comm substrate and Verify asserting the
// DESIGN.md Section 6 invariants after every step.
func (s ChaosSpec) Run() (*ChaosResult, error) {
	cfg, sys, info, err := s.Build()
	if err != nil {
		return nil, err
	}
	cfg.Faults = &s.Plan
	cfg.Watchdog = s.Watchdog
	cfg.Verify = true
	res, err := core.Run(cfg, sys, s.Steps)
	if err != nil {
		return nil, err
	}
	return &ChaosResult{
		Res:       res,
		Info:      info,
		Faults:    res.Faults,
		TraceHash: TraceHash(res.Stats),
	}, nil
}

// TraceHash fingerprints the deterministic fields of a per-step trace with
// FNV-1a: step, the work-metric load series, columns moved, the global
// observables and the concentration census. Wall-clock fields are excluded
// — they vary run to run (and chaos runs perturb them on purpose), while
// everything hashed here must replay exactly from the seeds.
func TraceHash(stats []core.StepStats) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wi := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	wf := func(v float64) { wi(math.Float64bits(v)) }
	for _, st := range stats {
		wi(uint64(st.Step))
		wf(st.WorkMax)
		wf(st.WorkAve)
		wf(st.WorkMin)
		wi(uint64(st.Moved))
		wf(st.TotalEnergy)
		wf(st.Temperature)
		wi(uint64(st.Conc.C))
		wi(uint64(st.Conc.C0))
		wf(st.Conc.C0OverC)
		wf(st.Conc.NFactor)
	}
	return h.Sum64()
}

// KillResumeResult is the outcome of the kill-and-recover scenario.
type KillResumeResult struct {
	Info SysInfo
	// KillAt is the step the run was hard-stopped at.
	KillAt int
	// CkptPath is the checkpoint file the recovery loaded.
	CkptPath string
	// GoldenHash fingerprints the uninterrupted run's full trace;
	// ResumedHash fingerprints the interrupted prefix concatenated with the
	// recovered run's tail. Bit-identical recovery means they are equal.
	GoldenHash, ResumedHash uint64
	// GoldenFaults/ResumedFaults count the faults injected into the golden
	// run and into the two interrupted sessions combined.
	GoldenFaults, ResumedFaults comm.FaultStats
}

// Match reports whether the recovered trace equals the uninterrupted one.
func (r *KillResumeResult) Match() bool { return r.GoldenHash == r.ResumedHash }

// KillResume is the chaos subsystem's kill-and-recover scenario: run the
// spec uninterrupted (golden); run it again but hard-stop after killAt
// steps, keeping nothing except the checkpoint file written into dir; then
// recover strictly from that file and finish the remaining steps. Both
// interrupted sessions run under the spec's fault plan — the fault streams
// restart at the resume point, which must not matter, because the
// deterministic trace is invariant to the plan. The result's hashes compare
// the golden trace against interrupted-prefix + recovered-tail.
func (s ChaosSpec) KillResume(killAt int, dir string) (*KillResumeResult, error) {
	if killAt <= 0 || killAt >= s.Steps {
		return nil, fmt.Errorf("experiments: kill step %d outside (0, %d)", killAt, s.Steps)
	}
	golden, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: golden run: %w", err)
	}

	// Interrupted session: killAt steps, one checkpoint, hard stop.
	cfg, sys, info, err := s.Build()
	if err != nil {
		return nil, err
	}
	plan := s.Plan
	cfg.Faults = &plan
	cfg.Watchdog = s.Watchdog
	cfg.Verify = true
	eng, err := core.NewEngine(cfg, sys)
	if err != nil {
		return nil, err
	}
	if err := eng.Step(killAt); err != nil {
		eng.Finish()
		return nil, fmt.Errorf("experiments: interrupted run: %w", err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		eng.Finish()
		return nil, fmt.Errorf("experiments: snapshot: %w", err)
	}
	prefix := append([]core.StepStats(nil), eng.Stats()...)
	meta := checkpoint.Meta{
		Version: checkpoint.FormatVersion, Kind: checkpoint.KindDLB, Step: st.Step,
		M: s.M, P: s.P, Rho: s.Rho,
		DLB: s.DLB, Wells: s.Wells, WellK: s.WellK, Hysteresis: s.Hysteresis,
		Seed: s.Seed, Dt: s.Dt, Shards: s.Shards, StatsEvery: s.StatsEvery,
		CommMsgs: st.CommMsgs, CommBytes: st.CommBytes,
	}
	path, err := checkpoint.Save(dir, &meta, st.Frames)
	if err != nil {
		eng.Finish()
		return nil, err
	}
	res1, err := eng.Finish() // release the goroutines; state is discarded
	if err != nil {
		return nil, fmt.Errorf("experiments: interrupted teardown: %w", err)
	}

	// Recovery: everything the resumed session knows comes from the file.
	meta2, frames, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	cfg2, sys2, _, err := s.Build()
	if err != nil {
		return nil, err
	}
	plan2 := s.Plan
	cfg2.Faults = &plan2
	cfg2.Watchdog = s.Watchdog
	cfg2.Verify = true
	cfg2.Restore = &checkpoint.EngineState{
		Step: meta2.Step, Frames: frames,
		CommMsgs: meta2.CommMsgs, CommBytes: meta2.CommBytes,
	}
	res2, err := core.Run(cfg2, sys2, s.Steps-killAt)
	if err != nil {
		return nil, fmt.Errorf("experiments: recovered run: %w", err)
	}

	combined := append(prefix, res2.Stats...)
	faults := res1.Faults
	faults.Delays += res2.Faults.Delays
	faults.Reorders += res2.Faults.Reorders
	faults.Failures += res2.Faults.Failures
	faults.Retries += res2.Faults.Retries
	faults.Stalls += res2.Faults.Stalls
	return &KillResumeResult{
		Info: info, KillAt: killAt, CkptPath: path,
		GoldenHash: golden.TraceHash, ResumedHash: TraceHash(combined),
		GoldenFaults: golden.Faults, ResumedFaults: faults,
	}, nil
}
