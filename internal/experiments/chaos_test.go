package experiments

import (
	"testing"
	"time"

	"permcell/internal/comm"
	"permcell/internal/core"
)

func tinyChaosSpec() ChaosSpec {
	return ChaosSpec{
		RunSpec: RunSpec{
			M: 2, P: 4, Rho: 0.256, Steps: 30, DLB: true, Seed: 1,
			WellK: 1.5, BlobFrac: 0.5,
		},
		Plan: comm.FaultPlan{
			Seed:         42,
			DelayProb:    0.05,
			MaxDelay:     50 * time.Microsecond,
			ReorderProb:  0.2,
			ReorderDepth: 2,
			FailProb:     0.02,
			Stalls:       []comm.Stall{{Rank: 2, AfterOps: 100, Duration: 2 * time.Millisecond}},
		},
		Watchdog: 30 * time.Second,
	}
}

// TestChaosReplaySameTrace is the replay property at the full-engine level:
// two chaos runs from the same seeds produce the identical deterministic
// per-step trace.
func TestChaosReplaySameTrace(t *testing.T) {
	spec := tinyChaosSpec()
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ across replays: %x vs %x", a.TraceHash, b.TraceHash)
	}
	if a.Faults == (comm.FaultStats{}) {
		t.Error("chaos plan injected no faults")
	}
}

// TestChaosReplaySameTraceSharded is the replay property with the sharded
// force kernel: for a fixed shard count the chaos trace is bit-identical
// across replays (shard count is part of the run identity, so different
// shard counts may differ — but a given one must reproduce).
func TestChaosReplaySameTraceSharded(t *testing.T) {
	for _, shards := range []int{2, 8} {
		spec := tinyChaosSpec()
		spec.Shards = shards
		a, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash {
			t.Fatalf("shards=%d: trace hashes differ across replays: %x vs %x", shards, a.TraceHash, b.TraceHash)
		}
	}
}

// TestChaosFaultFreeMatchesPlainRun asserts a zero plan leaves the engine
// byte-identical on the deterministic trace fields: chaos plumbing off the
// hot path changes nothing.
func TestChaosFaultFreeMatchesPlainRun(t *testing.T) {
	spec := tinyChaosSpec()
	spec.Plan = comm.FaultPlan{Seed: 9} // all probabilities zero, no stalls

	chaos, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	plain, info, err := spec.RunSpec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if info != chaos.Info {
		t.Errorf("system info differs: %+v vs %+v", info, chaos.Info)
	}
	if chaos.Faults != (comm.FaultStats{}) {
		t.Errorf("fault-free plan injected faults: %+v", chaos.Faults)
	}
	if got, want := chaos.TraceHash, TraceHash(plain.Stats); got != want {
		t.Fatalf("fault-free chaos trace differs from plain run: %x vs %x", got, want)
	}
}

// TestTraceHashIgnoresWallTime pins the contract that lets chaos replays
// compare equal: wall-clock fields do not contribute to the hash.
func TestTraceHashIgnoresWallTime(t *testing.T) {
	stats := []core.StepStats{{Step: 1, WorkMax: 10, WallMax: 1.5, StepWallMax: 2}}
	perturbed := []core.StepStats{{Step: 1, WorkMax: 10, WallMax: 9.9, StepWallMax: 7}}
	if TraceHash(stats) != TraceHash(perturbed) {
		t.Error("wall-time fields leak into the trace hash")
	}
	changed := []core.StepStats{{Step: 1, WorkMax: 11, WallMax: 1.5, StepWallMax: 2}}
	if TraceHash(stats) == TraceHash(changed) {
		t.Error("work fields do not affect the trace hash")
	}
}
