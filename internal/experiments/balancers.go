package experiments

import (
	"fmt"
	"io"
	"math"

	"permcell/internal/balance"
	"permcell/internal/theory"
	"permcell/internal/trace"
)

// BalancerTrace is one balancer's trajectory through the shared condensing
// workload: the paper's balance gauges per recorded step plus the
// migration-traffic counters the strategy generated.
type BalancerTrace struct {
	// Name is the balancer identity ("none", "permcell", "sfc",
	// "diffusive"); Spec the canonical parameterized form.
	Name, Spec string

	Steps      []int
	LoadRatio  []float64 // Fmax/Fave per step (1 = perfect balance)
	Efficiency []float64 // Fave/Fmax per step
	N          []float64 // concentration factor per step
	C0C        []float64 // concentration ratio per step
	Moved      []int     // columns migrated per step
	MovedBytes []int64   // particle+force payload bytes migrated per step

	// Run aggregates.
	MeanLoadRatio   float64
	MeanEfficiency  float64
	TotalMoved      int
	TotalMovedBytes int64

	// BoundaryIdx indexes the experimental boundary point (sustained
	// imbalance rise, Section 4.2 criterion; -1 = none detected).
	BoundaryIdx int
	// BoundCrossIdx indexes the first step whose (n, C0/C) leaves the
	// theoretical f(m, n) balancing region (-1 = stays inside).
	BoundCrossIdx int
}

// BalancersResult is the cross-balancer comparison: every strategy of the
// zoo driven over the identical condensation workload (same m, P, rho,
// seed, wells), so the gauges and traffic counters differ only by the
// balancing decisions.
type BalancersResult struct {
	M, P int
	Info SysInfo
	// Epochs is the number of DLB epochs the run spans (the balancers run
	// at the paper's every-step cadence, so this equals the step count).
	Epochs int
	Traces []BalancerTrace
}

// balancerZoo returns the compared strategies, all at the preset's
// hysteresis. nil = static DDM baseline.
func balancerZoo(pr Preset) []struct {
	Name string
	B    balance.Balancer
} {
	return []struct {
		Name string
		B    balance.Balancer
	}{
		{"none", nil},
		{"permcell", balance.PermanentCell{Hysteresis: pr.Hysteresis}},
		{"sfc", balance.SFC{Hysteresis: pr.Hysteresis}},
		{"diffusive", balance.Diffusive{Hysteresis: pr.Hysteresis}},
	}
}

// Balancers runs the cross-balancer comparison on the preset's condensing
// workload: static DDM, permanent-cell, SFC and diffusive over the same
// initial condition, recording LoadRatio/Efficiency traces, the f(m, n)
// boundary curve and the migration traffic of each scheme. m <= 0 selects
// the preset's middle pillar size.
func Balancers(pr Preset, m int, seed uint64) (*BalancersResult, error) {
	if m <= 0 {
		m = 3
		if len(pr.Ms) > 0 {
			m = pr.Ms[len(pr.Ms)/2]
		}
	}
	const rho = 0.256
	r := &BalancersResult{M: m, P: pr.P, Epochs: pr.FigSteps}
	for _, cand := range balancerZoo(pr) {
		spec := pr.spec(m, pr.P, rho, pr.FigSteps, false, seed)
		spec.Balancer = cand.B
		res, info, err := spec.Run()
		if err != nil {
			return nil, fmt.Errorf("balancers: %s: %w", cand.Name, err)
		}
		r.Info = info
		tr := BalancerTrace{
			Name:          cand.Name,
			Spec:          balance.Encode(cand.B),
			BoundaryIdx:   detectBoundary(res.Stats),
			BoundCrossIdx: -1,
		}
		var sumLR, sumEff float64
		for i, st := range res.Stats {
			lr, eff := 0.0, 0.0
			if st.WorkAve > 0 {
				lr = st.WorkMax / st.WorkAve
			}
			if st.WorkMax > 0 {
				eff = st.WorkAve / st.WorkMax
			}
			tr.Steps = append(tr.Steps, st.Step)
			tr.LoadRatio = append(tr.LoadRatio, lr)
			tr.Efficiency = append(tr.Efficiency, eff)
			tr.N = append(tr.N, st.Conc.NFactor)
			tr.C0C = append(tr.C0C, st.Conc.C0OverC)
			tr.Moved = append(tr.Moved, st.Moved)
			tr.MovedBytes = append(tr.MovedBytes, st.MovedBytes)
			sumLR += lr
			sumEff += eff
			tr.TotalMoved += st.Moved
			tr.TotalMovedBytes += st.MovedBytes
			if tr.BoundCrossIdx < 0 {
				if f, err := theory.F(m, st.Conc.NFactor); err == nil && st.Conc.C0OverC > f {
					tr.BoundCrossIdx = i
				}
			}
		}
		if n := len(res.Stats); n > 0 {
			tr.MeanLoadRatio = sumLR / float64(n)
			tr.MeanEfficiency = sumEff / float64(n)
		}
		r.Traces = append(r.Traces, tr)
	}
	return r, nil
}

// bound returns f(m, n) along trace tr (NaN outside the domain).
func (r *BalancersResult) bound(tr BalancerTrace, i int) float64 {
	f, err := theory.F(r.M, tr.N[i])
	if err != nil {
		return math.NaN()
	}
	return f
}

// Render prints the comparison: per-balancer summary with migration
// traffic, boundary positions against the f(m, n) curve, and the overlaid
// LoadRatio traces.
func (r *BalancersResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Balancer comparison (m=%d, P=%d, N=%d, %d epochs): same condensation workload per scheme\n\n",
		r.M, r.P, r.Info.N, r.Epochs)
	fmt.Fprintf(w, "  %-10s %10s %10s %8s %12s %10s %12s\n",
		"balancer", "loadratio", "efficiency", "moved", "moved_bytes", "cols/epoch", "bytes/epoch")
	for _, tr := range r.Traces {
		perEpoch := func(v float64) float64 {
			if r.Epochs == 0 {
				return 0
			}
			return v / float64(r.Epochs)
		}
		fmt.Fprintf(w, "  %-10s %10.4f %10.4f %8d %12d %10.3f %12.1f\n",
			tr.Name, tr.MeanLoadRatio, tr.MeanEfficiency,
			tr.TotalMoved, tr.TotalMovedBytes,
			perEpoch(float64(tr.TotalMoved)), perEpoch(float64(tr.TotalMovedBytes)))
	}

	fmt.Fprintf(w, "\n  boundary vs. the theoretical f(m=%d, n) curve:\n", r.M)
	for _, tr := range r.Traces {
		switch {
		case tr.BoundCrossIdx >= 0:
			i := tr.BoundCrossIdx
			fmt.Fprintf(w, "  %-10s leaves the f(m,n) region at step %d: (n, C0/C) = (%.3f, %.3f), f = %.3f\n",
				tr.Name, tr.Steps[i], tr.N[i], tr.C0C[i], r.bound(tr, i))
		default:
			fmt.Fprintf(w, "  %-10s stays inside the f(m,n) region\n", tr.Name)
		}
		if tr.BoundaryIdx >= 0 {
			i := tr.BoundaryIdx
			fmt.Fprintf(w, "  %-10s experimental boundary (imbalance rise) at step %d: (n, C0/C) = (%.3f, %.3f)\n",
				"", tr.Steps[i], tr.N[i], tr.C0C[i])
		}
	}

	fmt.Fprintln(w, "\n  LoadRatio (Fmax/Fave) traces:")
	labels := make([]string, len(r.Traces))
	series := make([][]float64, len(r.Traces))
	for i, tr := range r.Traces {
		labels[i] = tr.Name
		series[i] = tr.LoadRatio
	}
	return trace.Plot(w, labels, series, 72, 14)
}

// WriteCSV emits the comparison in long format: one row per (balancer,
// step) with the balance gauges, the f(m, n) bound along the trajectory
// (empty outside its domain) and the per-step migration traffic.
func (r *BalancersResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "balancer,step,load_ratio,efficiency,n,c0_over_c,bound,moved,moved_bytes"); err != nil {
		return err
	}
	for _, tr := range r.Traces {
		for i := range tr.Steps {
			bound := ""
			if f := r.bound(tr, i); !math.IsNaN(f) {
				bound = fmt.Sprintf("%g", f)
			}
			if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%s,%d,%d\n",
				tr.Name, tr.Steps[i], tr.LoadRatio[i], tr.Efficiency[i],
				tr.N[i], tr.C0C[i], bound, tr.Moved[i], tr.MovedBytes[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
