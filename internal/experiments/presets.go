package experiments

// Preset bundles the run sizes for one reproduction scale. The paper's
// exact sizes (Full) need hours on a laptop-class machine; Small keeps the
// same structure at P=16 in minutes; Tiny drives the identical code paths
// in seconds for tests and benchmarks.
type Preset struct {
	Name string
	// P is the PE count for the single-P figures (5, 6, 9, 10).
	P int
	// Ms are the square-pillar sizes swept by Fig. 10 and Table 1.
	Ms []int
	// Ps are the PE counts swept by Table 1.
	Ps []int
	// Densities are the reduced densities of the Fig. 10 boundary points.
	Densities []float64
	// Table1Ms/Table1Densities optionally restrict the Table 1 sweep (the
	// grid of (m, P, rho) boundary runs is the most expensive part of the
	// reproduction; large m at large P means very large N). Empty means
	// use Ms/Densities.
	Table1Ms        []int
	Table1Densities []float64
	// FigSteps is the length of the Fig. 5/6/9 trace runs; BoundarySteps
	// the length of each boundary-detection run.
	FigSteps, BoundarySteps int
	// Reps is the number of independent runs averaged per boundary point
	// (the paper uses ten).
	Reps int
	// WellK and WellsPerPE configure the condensation driver.
	WellK      float64
	WellsPerPE float64
	// Hysteresis is the DLB trigger threshold.
	Hysteresis float64
}

// Tiny is the test/benchmark scale: P=4, sub-second runs.
func Tiny() Preset {
	return Preset{
		Name:          "tiny",
		P:             4,
		Ms:            []int{2, 3},
		Ps:            []int{4},
		Densities:     []float64{0.256, 0.384},
		FigSteps:      300,
		BoundarySteps: 400,
		Reps:          1,
		WellK:         1.5,
		WellsPerPE:    0.75,
		Hysteresis:    0.1,
	}
}

// Small is the default CLI scale: P=16, minutes per figure on a laptop.
func Small() Preset {
	return Preset{
		Name:            "small",
		P:               16,
		Ms:              []int{2, 3, 4},
		Ps:              []int{16, 36},
		Densities:       []float64{0.128, 0.256, 0.384, 0.512},
		Table1Ms:        []int{2, 3},
		Table1Densities: []float64{0.128, 0.256},
		FigSteps:        600,
		BoundarySteps:   700,
		Reps:            1,
		WellK:           1.5,
		WellsPerPE:      0.75,
		Hysteresis:      0.1,
	}
}

// Full is the paper scale: P=36 figures (m=4: N=59319, C=13824, matching
// Fig. 5(a)), Table 1 over P in {16, 36, 64}, ten runs per boundary point.
// Expect hours of wall time.
func Full() Preset {
	return Preset{
		Name:          "full",
		P:             36,
		Ms:            []int{2, 3, 4},
		Ps:            []int{16, 36, 64},
		Densities:     []float64{0.128, 0.256, 0.384, 0.512},
		FigSteps:      2000,
		BoundarySteps: 1500,
		Reps:          10,
		WellK:         1.5,
		WellsPerPE:    0.75,
		Hysteresis:    0.1,
	}
}

// PresetByName resolves tiny/small/full.
func PresetByName(name string) (Preset, bool) {
	switch name {
	case "tiny":
		return Tiny(), true
	case "small", "":
		return Small(), true
	case "full":
		return Full(), true
	default:
		return Preset{}, false
	}
}

// wells returns the attractor-site count for a PE count.
func (pr Preset) wells(p int) int {
	w := int(pr.WellsPerPE * float64(p))
	if w < 3 {
		w = 3
	}
	return w
}

// spec builds the common condensing RunSpec.
func (pr Preset) spec(m, p int, rho float64, steps int, dlbOn bool, seed uint64) RunSpec {
	return RunSpec{
		M: m, P: p, Rho: rho, Steps: steps, DLB: dlbOn, Seed: seed,
		WellK: pr.WellK, Wells: pr.wells(p), Hysteresis: pr.Hysteresis,
		StatsEvery: 1,
	}
}
