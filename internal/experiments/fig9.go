package experiments

import (
	"fmt"
	"io"

	"permcell/internal/core"
	"permcell/internal/trace"
)

// Fig9Result reproduces Fig. 9: the trajectory a DLB-DDM simulation draws
// in (n, C_0/C) space, plus the experimental boundary point — the step at
// which Fmax-Fmin begins a sustained rise.
type Fig9Result struct {
	M, P int
	Info SysInfo

	Steps []int
	N     []float64 // concentration factor per step
	C0C   []float64 // concentration ratio per step

	// BoundaryIdx indexes the detected boundary point in the trajectory
	// (-1 if the run never left the DLB effective range).
	BoundaryIdx int
}

// detectBoundary applies the Section 4.2 criterion to a DLB run: the step
// at which the (Fmax-Fmin)/Fave imbalance begins a sustained rise.
func detectBoundary(stats []core.StepStats) int {
	imb := make([]float64, len(stats))
	for i, st := range stats {
		imb[i] = st.Imbalance()
	}
	baseLen := len(imb) / 4
	if baseLen > 100 {
		baseLen = 100
	}
	return trace.DetectRise(imb, 15, baseLen, 1.5, 0.1)
}

// Fig9 regenerates Fig. 9 from one DLB-DDM condensing run.
func Fig9(pr Preset, seed uint64) (*Fig9Result, error) {
	m := 3
	if len(pr.Ms) > 0 {
		m = pr.Ms[len(pr.Ms)/2]
	}
	const rho = 0.256
	res, info, err := pr.spec(m, pr.P, rho, pr.FigSteps, true, seed).Run()
	if err != nil {
		return nil, err
	}
	r := &Fig9Result{M: m, P: pr.P, Info: info, BoundaryIdx: detectBoundary(res.Stats)}
	for _, st := range res.Stats {
		r.Steps = append(r.Steps, st.Step)
		r.N = append(r.N, st.Conc.NFactor)
		r.C0C = append(r.C0C, st.Conc.C0OverC)
	}
	return r, nil
}

// Render prints the trajectory.
func (r *Fig9Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 9 (m=%d, P=%d, N=%d): trajectory in (n, C0/C) space\n\n", r.M, r.P, r.Info.N)
	fmt.Fprintf(w, "  %8s %10s %10s\n", "step", "n", "C0/C")
	stride := len(r.Steps) / 20
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Steps); i += stride {
		marker := ""
		if r.BoundaryIdx >= i && r.BoundaryIdx < i+stride {
			marker = "   <- experimental boundary point of DLB effective range"
		}
		fmt.Fprintf(w, "  %8d %10.3f %10.3f%s\n", r.Steps[i], r.N[i], r.C0C[i], marker)
	}
	if r.BoundaryIdx >= 0 {
		fmt.Fprintf(w, "\n  boundary at step %d: (n, C0/C) = (%.3f, %.3f)\n",
			r.Steps[r.BoundaryIdx], r.N[r.BoundaryIdx], r.C0C[r.BoundaryIdx])
	} else {
		fmt.Fprintln(w, "\n  run stayed inside the DLB effective range (no boundary)")
	}
	fmt.Fprintln(w, "\n  C0/C over time (trajectory's vertical coordinate):")
	return trace.Plot(w, []string{"C0/C", "n/4"}, [][]float64{r.C0C, scale(r.N, 0.25)}, 72, 14)
}

func scale(vals []float64, f float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * f
	}
	return out
}

// WriteCSV emits the trajectory as CSV (the cmd/figures -csv output): one
// row per recorded step with a boundary flag marking the detected
// experimental boundary point.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,n,c0_over_c,boundary"); err != nil {
		return err
	}
	for i := range r.Steps {
		b := 0
		if i == r.BoundaryIdx {
			b = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%d\n", r.Steps[i], r.N[i], r.C0C[i], b); err != nil {
			return err
		}
	}
	return nil
}
