package experiments

import "testing"

// TestKillResumeIdenticalTrace is the chaos subsystem's kill-and-recover
// acceptance property: hard-stopping a faulty DLB run mid-flight and
// recovering strictly from the checkpoint file reproduces the uninterrupted
// run's deterministic trace exactly.
func TestKillResumeIdenticalTrace(t *testing.T) {
	spec := tinyChaosSpec()
	r, err := spec.KillResume(11, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match() {
		t.Fatalf("kill-resume trace diverged: golden %016x vs resumed %016x",
			r.GoldenHash, r.ResumedHash)
	}
	if r.ResumedFaults.Delays+r.ResumedFaults.Reorders+r.ResumedFaults.Failures == 0 {
		t.Error("kill-resume sessions saw no injected faults")
	}
}

// TestKillResumeRejectsBadKillStep covers the argument guard.
func TestKillResumeRejectsBadKillStep(t *testing.T) {
	spec := tinyChaosSpec()
	for _, k := range []int{0, -1, spec.Steps} {
		if _, err := spec.KillResume(k, t.TempDir()); err == nil {
			t.Errorf("kill step %d accepted", k)
		}
	}
}
