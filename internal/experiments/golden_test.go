package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenCompare checks got against testdata/<name> byte for byte, or
// rewrites the file under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./internal/experiments -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\nIf the change is intended, refresh with:\n  go test ./internal/experiments -run Golden -update\ngot:\n%s\nwant:\n%s",
			name, clip(got), clip(string(want)))
	}
}

func clip(s string) string {
	lines := strings.Split(s, "\n")
	if len(lines) > 25 {
		lines = append(lines[:25], "... (truncated)")
	}
	return strings.Join(lines, "\n")
}

// TestGoldenFig9CSV pins the exact CSV of `figures -id fig9 -scale tiny
// -seed 1 -csv`. The whole pipeline behind it is deterministic — seeded
// initial conditions, the pair-evaluation work metric driving DLB, sorted
// cell iteration fixing FP summation order — so any byte drift means an
// unintended behavior change somewhere between the RNG and the renderer.
func TestGoldenFig9CSV(t *testing.T) {
	r, err := Fig9(Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig9_tiny.csv", b.String())
}

// TestGoldenTable1CSV pins the exact CSV of `figures -id table1 -scale
// tiny -seed 1 -csv` (the E/T boundary-ratio table).
func TestGoldenTable1CSV(t *testing.T) {
	r, err := Table1(Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table1_tiny.csv", b.String())
}
