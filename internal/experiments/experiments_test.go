package experiments

import (
	"strings"
	"testing"
)

// All experiment tests run at the Tiny preset (P=4, seconds per run); they
// assert the *shape* of each result, which is what the reproduction
// contract requires, not absolute numbers.

func TestRunSpecValidation(t *testing.T) {
	if _, _, err := (RunSpec{M: 2, P: 5, Rho: 0.2, Steps: 1}).Run(); err == nil {
		t.Error("non-square P accepted")
	}
	if _, _, err := (RunSpec{M: 1, P: 4, Rho: 0.2, Steps: 1}).Run(); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestRunSpecSizes(t *testing.T) {
	_, _, info, err := (RunSpec{M: 2, P: 16, Rho: 0.256, Steps: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// nc = m*sqrt(P) = 8; this is the paper's C=512-scale geometry.
	if info.NC != 8 || info.C != 512 {
		t.Errorf("nc=%d C=%d, want 8/512", info.NC, info.C)
	}
	// Full-scale check of the paper's Fig. 5(b) numbers: m=2, P=36 ->
	// C=1728 and N=8000 at rho=0.256... rho*L^3 = 0.256*(12*2.5)^3 = 6912.
	// (The paper's N=8000 corresponds to its own lattice setup; our density
	// fixes N = rho*V.) Verify the geometric part only.
	_, _, info36, err := (RunSpec{M: 2, P: 36, Rho: 0.256, Steps: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if info36.C != 1728 {
		t.Errorf("m=2 P=36: C = %d, want 1728 (paper Fig. 5b)", info36.C)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"tiny", "small", "full"} {
		pr, ok := PresetByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if pr.P < 4 || len(pr.Ms) == 0 || len(pr.Densities) == 0 || pr.Reps < 1 {
			t.Errorf("preset %q incomplete: %+v", name, pr)
		}
	}
	if _, ok := PresetByName("nonsense"); ok {
		t.Error("unknown preset resolved")
	}
	if pr, ok := PresetByName(""); !ok || pr.Name != "small" {
		t.Error("empty preset should default to small")
	}
}

func TestFig5Shape(t *testing.T) {
	pr := Tiny()
	r, err := Fig5(pr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != pr.FigSteps {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	// The paper's headline: DDM execution time grows with the step count;
	// DLB-DDM grows strictly less.
	if r.DDMGrowth() < 1.2 {
		t.Errorf("DDM growth %.2f, expected > 1.2 on a condensing system", r.DDMGrowth())
	}
	if r.DLBGrowth() >= r.DDMGrowth() {
		t.Errorf("DLB growth %.2f not below DDM growth %.2f", r.DLBGrowth(), r.DDMGrowth())
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 5", "DDM", "DLB-DDM", "growth"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	pr := Tiny()
	r, err := Fig6(pr, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.DDM.Steps)
	if n == 0 || len(r.DLB.Steps) == 0 {
		t.Fatal("empty series")
	}
	// Ordering Fmax >= Fave >= Fmin at every step, both panels.
	for i := 0; i < n; i++ {
		if r.DDM.Fmax[i] < r.DDM.Fave[i] || r.DDM.Fave[i] < r.DDM.Fmin[i] {
			t.Fatalf("DDM ordering broken at %d", i)
		}
	}
	// The paper: the DDM spread grows; by the end it exceeds the early
	// spread, and the DLB spread stays smaller than the DDM spread.
	tailIdx, headIdx := n-1, n/10
	if r.DDM.Spread(tailIdx) <= r.DDM.Spread(headIdx) {
		t.Errorf("DDM spread did not grow: %v -> %v", r.DDM.Spread(headIdx), r.DDM.Spread(tailIdx))
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fmax") {
		t.Error("render missing Fmax")
	}
}

func TestFig9Shape(t *testing.T) {
	pr := Tiny()
	r, err := Fig9(pr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The trajectory must start near the origin (uniform gas: C0/C small)
	// and end substantially higher (condensed).
	if r.C0C[0] > 0.3 {
		t.Errorf("trajectory starts at C0/C = %v, want near 0", r.C0C[0])
	}
	last := r.C0C[len(r.C0C)-1]
	if last < r.C0C[0]+0.1 {
		t.Errorf("trajectory did not rise: %v -> %v", r.C0C[0], last)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trajectory") {
		t.Error("render missing header")
	}
}

func TestFig10Shape(t *testing.T) {
	pr := Tiny()
	r, err := Fig10(pr, 2, pr.P, 1)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, pt := range r.Points {
		detected += pt.Detected
	}
	if detected == 0 {
		t.Fatal("no boundary points detected at tiny scale")
	}
	// Paper's headline Fig. 10 observation: experimental boundary points
	// lie below the theoretical upper bound.
	if !r.AllBelowTheory(0.1) {
		t.Error("a boundary point exceeds the theoretical bound")
	}
	if r.Fitted && (r.EOverT <= 0 || r.EOverT > 1.1) {
		t.Errorf("E/T = %v outside (0, 1.1]", r.EOverT)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E/T") {
		t.Error("render missing E/T")
	}
}

func TestTable1Shape(t *testing.T) {
	pr := Tiny()
	pr.Ms = []int{2} // keep the test fast: one cell
	pr.Densities = pr.Densities[:1]
	r, err := Table1(pr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EOverT) != 1 {
		t.Fatalf("cells = %d", len(r.EOverT))
	}
	for m, row := range r.EOverT {
		for p, v := range row {
			if v <= 0 || v > 1.1 {
				t.Errorf("E/T[m=%d][P=%d] = %v outside (0, 1.1]", m, p, v)
			}
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("render missing header")
	}
}

func TestTheoryCurveMonotone(t *testing.T) {
	r := &Fig10Result{M: 3}
	ns, fs := r.TheoryCurve()
	if len(ns) != len(fs) || len(ns) == 0 {
		t.Fatal("bad curve")
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] > fs[i-1] {
			t.Fatal("theory curve not decreasing in n")
		}
	}
}
