// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs. 5, 6, 9, 10 and Table 1). Each experiment is a
// function returning a typed result plus a Render method that prints the
// same rows/series the paper reports.
//
// Substitution note (see DESIGN.md): the paper lets a supercooled Argon gas
// condense over ~10^4 T3E time steps. Reproducing that wall-clock budget is
// pointless on a simulated machine, so the condensation is accelerated with
// a central harmonic well, which produces the same monotone growth of the
// concentration state (n, C_0/C) that drives every evaluated quantity while
// exercising the identical DDM/DLB code paths. The pure-physics path (no
// well) remains available by setting WellK = 0.
package experiments

import (
	"fmt"
	"math"

	"permcell/internal/balance"
	"permcell/internal/core"
	"permcell/internal/dlb"
	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// RunSpec describes one condensing parallel MD run in paper coordinates:
// the square-pillar cross-section size m, the PE count P (perfect square),
// and the reduced density rho. The grid side is nc = m*sqrt(P) cells of
// side r_c = 2.5, so C = nc^3 and N = round(rho * (2.5 nc)^3).
type RunSpec struct {
	M, P  int
	Rho   float64
	Steps int
	// DLB selects the permanent-cell balancer (the paper's method);
	// Balancer, when non-nil, selects an explicit strategy instead and
	// wins over DLB.
	DLB      bool
	Balancer balance.Balancer
	Seed     uint64
	// WellK is the harmonic well strength driving concentration
	// (0 disables the wells: pure supercooled-gas physics).
	WellK float64
	// Wells is the number of attractor sites scattered through the box
	// (the droplet nuclei). 0 or 1 places a single central well.
	Wells int
	// Hysteresis is the DLB trigger threshold (relative load gap).
	Hysteresis float64
	// StatsEvery thins the per-step statistics (default 1).
	StatsEvery int
	// Shards is the per-PE force-kernel worker count (<= 1 = serial
	// kernel). Traces are bit-deterministic per shard count.
	Shards int
	// Metrics enables the per-phase timing layer (core.Config.Metrics).
	Metrics bool
	// Dt overrides the integration time step. Zero selects the experiment
	// default of 0.005 reduced time units — a standard (stable) LJ step
	// that reaches the paper's physical time span in ~50x fewer steps than
	// the paper's very conservative 1e-4. Set to units.PaperTimeStep for
	// the literal setup.
	Dt float64
	// Start optionally pre-concentrates a fraction of the particles in a
	// central blob (0 = uniform lattice start).
	BlobFrac  float64
	BlobSigma float64
}

// SysInfo reports the concrete sizes a spec resolved to.
type SysInfo struct {
	N, C, NC int
	Box      float64
	RhoUsed  float64
}

// Build constructs the system and engine configuration for the spec.
func (s RunSpec) Build() (core.Config, workload.System, SysInfo, error) {
	sq := int(math.Round(math.Sqrt(float64(s.P))))
	if sq*sq != s.P || sq < 2 {
		return core.Config{}, workload.System{}, SysInfo{}, fmt.Errorf("experiments: P=%d is not a perfect square >= 4", s.P)
	}
	if s.M < 2 {
		return core.Config{}, workload.System{}, SysInfo{}, fmt.Errorf("experiments: m=%d leaves no movable cells", s.M)
	}
	nc := s.M * sq
	l := float64(nc) * units.PaperCutoff
	n := int(math.Round(s.Rho * l * l * l))
	rho := float64(n) / (l * l * l)

	var sys workload.System
	var err error
	if s.BlobFrac > 0 {
		sigma := s.BlobSigma
		if sigma == 0 {
			sigma = l / 6
		}
		sys, err = workload.BlobGas(n, rho, units.PaperTref, s.BlobFrac, sigma, s.Seed)
	} else {
		sys, err = workload.LatticeGas(n, rho, units.PaperTref, s.Seed)
	}
	if err != nil {
		return core.Config{}, workload.System{}, SysInfo{}, err
	}
	grid, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		return core.Config{}, workload.System{}, SysInfo{}, err
	}

	dt := s.Dt
	if dt == 0 {
		dt = 0.005
	}
	cfg := core.Config{
		P:             s.P,
		Grid:          grid,
		Pair:          potential.NewPaperLJ(),
		Dt:            dt,
		Tref:          units.PaperTref,
		RescaleEvery:  units.PaperRescaleInterval,
		Balancer:      s.Balancer,
		DLB:           s.DLB,
		DLBHysteresis: s.Hysteresis,
		DLBPick:       dlb.PickMostLoaded,
		Metric:        core.WorkCount,
		Shards:        s.Shards,
		StatsEvery:    s.StatsEvery,
		Metrics:       s.Metrics,
	}
	if s.WellK > 0 {
		if s.Wells <= 1 {
			cfg.Ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: s.WellK, L: sys.Box.L}
		} else {
			r := rng.New(s.Seed ^ 0xA5A5A5A5)
			centers := make([]vec.V, s.Wells)
			for i := range centers {
				centers[i] = r.InBox(sys.Box.L)
			}
			cfg.Ext = potential.MultiWell{Centers: centers, K: s.WellK, L: sys.Box.L}
		}
	}
	info := SysInfo{N: n, C: nc * nc * nc, NC: nc, Box: l, RhoUsed: rho}
	return cfg, sys, info, nil
}

// Run builds and executes the spec.
func (s RunSpec) Run() (*core.Result, SysInfo, error) {
	cfg, sys, info, err := s.Build()
	if err != nil {
		return nil, info, err
	}
	res, err := core.Run(cfg, sys, s.Steps)
	return res, info, err
}
