package experiments

import (
	"fmt"
	"io"
)

// Table1Result reproduces Table 1: the ratio E/T of the experimental
// boundary to the theoretical upper bound for each m and PE count.
type Table1Result struct {
	Ms, Ps []int
	// EOverT[m][p]; entries without detected boundaries are absent.
	EOverT map[int]map[int]float64
}

// Table1 regenerates Table 1 by running the Fig. 10 sweep at every
// (m, P) combination of the preset.
func Table1(pr Preset, seed uint64) (*Table1Result, error) {
	if len(pr.Table1Ms) > 0 {
		pr.Ms = pr.Table1Ms
	}
	if len(pr.Table1Densities) > 0 {
		pr.Densities = pr.Table1Densities
	}
	r := &Table1Result{Ms: pr.Ms, Ps: pr.Ps, EOverT: make(map[int]map[int]float64)}
	for mi, m := range pr.Ms {
		r.EOverT[m] = make(map[int]float64)
		for pi, p := range pr.Ps {
			fig, err := Fig10(pr, m, p, seed+uint64(10000*mi+100*pi))
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 m=%d P=%d: %w", m, p, err)
			}
			if fig.Fitted {
				r.EOverT[m][p] = fig.EOverT
			}
		}
	}
	return r, nil
}

// Render prints the table in the paper's layout (rows m, columns P).
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: ratio E/T of experimental boundaries to theoretical upper bounds")
	fmt.Fprintf(w, "  %4s", "m")
	for _, p := range r.Ps {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%d PEs", p))
	}
	fmt.Fprintln(w)
	for _, m := range r.Ms {
		fmt.Fprintf(w, "  %4d", m)
		for _, p := range r.Ps {
			if v, ok := r.EOverT[m][p]; ok {
				fmt.Fprintf(w, " %10.3f", v)
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n  (paper's observations: E/T < 1, increases with m, roughly independent of P)")
	return nil
}

// WriteCSV emits the table as CSV (the cmd/figures -csv output): one row
// per (m, P) cell, with an empty value where no boundary was detected.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "m,p,e_over_t"); err != nil {
		return err
	}
	for _, m := range r.Ms {
		for _, p := range r.Ps {
			v := ""
			if e, ok := r.EOverT[m][p]; ok {
				v = fmt.Sprintf("%g", e)
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%s\n", m, p, v); err != nil {
				return err
			}
		}
	}
	return nil
}
