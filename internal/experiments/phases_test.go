package experiments

import (
	"strings"
	"testing"

	"permcell/internal/metrics"
)

func TestPhasesShape(t *testing.T) {
	pr := Tiny()
	r, err := Phases(pr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != pr.FigSteps {
		t.Fatalf("steps = %d, want %d", len(r.Steps), pr.FigSteps)
	}
	if r.StepWallDDM <= 0 || r.StepWallDLB <= 0 {
		t.Fatalf("step walls %g / %g not positive", r.StepWallDDM, r.StepWallDLB)
	}
	if r.PhaseSecsDDM[metrics.PhaseForce] <= 0 || r.PhaseSecsDLB[metrics.PhaseForce] <= 0 {
		t.Errorf("force phase time missing: DDM %g DLB %g",
			r.PhaseSecsDDM[metrics.PhaseForce], r.PhaseSecsDDM[metrics.PhaseForce])
	}
	// The taxonomy covers the step: phase sums may not exceed the wall (small
	// slack for clock granularity) and should account for most of it.
	for _, run := range []struct {
		name   string
		phases [metrics.NumPhases]float64
		wall   float64
	}{
		{"DDM", r.PhaseSecsDDM, r.StepWallDDM},
		{"DLB", r.PhaseSecsDLB, r.StepWallDLB},
	} {
		var sum float64
		for _, s := range run.phases {
			sum += s
		}
		if ratio := sum / run.wall; ratio <= 0.5 || ratio > 1.02 {
			t.Errorf("%s: phase sum %g vs step wall %g (ratio %.3f)", run.name, sum, run.wall, ratio)
		}
	}
	// Load ratios are >= 1 by construction (Fmax >= Fave).
	if r.MeanRatioDDM() < 1 || r.MeanRatioDLB() < 1 {
		t.Errorf("mean load ratios below 1: DDM %g DLB %g", r.MeanRatioDDM(), r.MeanRatioDLB())
	}

	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase", "force", "halo", "mean load ratio"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	sb.Reset()
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "step,ratio_ddm,eff_ddm,ratio_dlb,eff_dlb,moved_dlb\n") {
		t.Errorf("csv header wrong: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(r.Steps)+1 {
		t.Errorf("csv has %d lines, want %d", lines, len(r.Steps)+1)
	}
}
