package experiments

import (
	"fmt"
	"io"

	"permcell/internal/core"
	"permcell/internal/trace"
)

// Fig5Result reproduces Fig. 5: execution time per time step as a function
// of the time step, for plain DDM and DLB-DDM on the same condensing
// system. Tt is reported in the deterministic work metric (pair-distance
// evaluations of the slowest PE, the quantity the T3E timer measured) with
// wall-clock seconds alongside.
type Fig5Result struct {
	M, P int
	Info SysInfo

	Steps            []int
	TtDDM, TtDLB     []float64 // slowest-PE work per step
	WallDDM, WallDLB []float64 // slowest-PE force wall time per step
}

// condensePair runs the same condensing system once without and once with
// DLB.
func condensePair(pr Preset, m, p int, rho float64, steps int, seed uint64) (ddm, dlbRes *core.Result, info SysInfo, err error) {
	ddm, info, err = pr.spec(m, p, rho, steps, false, seed).Run()
	if err != nil {
		return nil, nil, info, err
	}
	dlbRes, _, err = pr.spec(m, p, rho, steps, true, seed).Run()
	if err != nil {
		return nil, nil, info, err
	}
	return ddm, dlbRes, info, nil
}

// Fig5 regenerates one panel of Fig. 5 for the given m (the paper:
// (a) m=4, N=59319, C=13824; (b) m=2, N=8000, C=1728; both on 36 PEs at
// rho=0.256).
func Fig5(pr Preset, m int, seed uint64) (*Fig5Result, error) {
	const rho = 0.256
	ddm, dlbRes, info, err := condensePair(pr, m, pr.P, rho, pr.FigSteps, seed)
	if err != nil {
		return nil, err
	}
	r := &Fig5Result{M: m, P: pr.P, Info: info}
	for i, st := range ddm.Stats {
		r.Steps = append(r.Steps, st.Step)
		r.TtDDM = append(r.TtDDM, st.WorkMax)
		r.WallDDM = append(r.WallDDM, st.WallMax)
		if i < len(dlbRes.Stats) {
			r.TtDLB = append(r.TtDLB, dlbRes.Stats[i].WorkMax)
			r.WallDLB = append(r.WallDLB, dlbRes.Stats[i].WallMax)
		}
	}
	return r, nil
}

// GrowthFactor returns last/first of a smoothed series — the figure's
// headline quantity (DDM grows, DLB-DDM stays near flat for longer).
func growthFactor(vals []float64) float64 {
	if len(vals) < 2 {
		return 1
	}
	s := trace.Smooth(vals, 21)
	first, last := s[0], s[len(s)-1]
	if first == 0 {
		return 1
	}
	return last / first
}

// DDMGrowth returns the DDM execution-time growth over the run.
func (r *Fig5Result) DDMGrowth() float64 { return growthFactor(r.TtDDM) }

// DLBGrowth returns the DLB-DDM execution-time growth over the run.
func (r *Fig5Result) DLBGrowth() float64 { return growthFactor(r.TtDLB) }

// Render prints the series the figure plots plus an ASCII chart.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 5 (m=%d): execution time per step, DDM vs DLB-DDM\n", r.M)
	fmt.Fprintf(w, "  P=%d  N=%d  C=%d  (paper: m=4 -> N=59319,C=13824; m=2 -> N=8000,C=1728 at P=36)\n",
		r.P, r.Info.N, r.Info.C)
	fmt.Fprintf(w, "  Tt = slowest PE's force work per step [pair evaluations]\n\n")
	fmt.Fprintf(w, "  %8s %14s %14s\n", "step", "DDM", "DLB-DDM")
	stride := len(r.Steps) / 20
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Steps); i += stride {
		fmt.Fprintf(w, "  %8d %14.0f %14.0f\n", r.Steps[i], r.TtDDM[i], r.TtDLB[i])
	}
	fmt.Fprintf(w, "\n  growth over run: DDM %.2fx, DLB-DDM %.2fx\n\n", r.DDMGrowth(), r.DLBGrowth())
	return trace.Plot(w, []string{"DDM", "DLB-DDM"}, [][]float64{r.TtDDM, r.TtDLB}, 72, 18)
}
