package topology

import (
	"testing"
	"testing/quick"
)

func TestRing(t *testing.T) {
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Next(4) != 0 || r.Prev(0) != 4 {
		t.Error("ring wrap broken")
	}
	if r.Next(2) != 3 || r.Prev(2) != 1 {
		t.Error("ring step broken")
	}
	if _, err := NewRing(0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestSquareTorus(t *testing.T) {
	for _, p := range []int{16, 36, 64} {
		tor, err := NewSquareTorus(p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if tor.Size() != p {
			t.Errorf("P=%d: size=%d", p, tor.Size())
		}
	}
	if _, err := NewSquareTorus(12); err == nil {
		t.Error("non-square P accepted")
	}
}

func TestTorus2DRankCoordsRoundTrip(t *testing.T) {
	tor, _ := NewTorus2D(4, 6)
	for r := 0; r < tor.Size(); r++ {
		i, j := tor.Coords(r)
		if tor.Rank(i, j) != r {
			t.Fatalf("round trip failed for rank %d", r)
		}
	}
}

func TestTorus2DWrap(t *testing.T) {
	tor, _ := NewTorus2D(3, 3)
	if tor.Rank(-1, -1) != tor.Rank(2, 2) {
		t.Error("negative wrap broken")
	}
	if tor.Rank(3, 4) != tor.Rank(0, 1) {
		t.Error("positive wrap broken")
	}
}

func TestNeighbors8OffsetOrder(t *testing.T) {
	tor, _ := NewTorus2D(6, 6)
	r := tor.Rank(2, 3)
	nb := tor.Neighbors8(r)
	if len(nb) != 8 {
		t.Fatalf("len = %d", len(nb))
	}
	for k, o := range Offsets8 {
		if nb[k] != tor.Rank(2+o.DI, 3+o.DJ) {
			t.Errorf("neighbor %d (%v) = %d, want %d", k, o, nb[k], tor.Rank(2+o.DI, 3+o.DJ))
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// If b appears among a's 8 neighbors, a must appear among b's.
	tor, _ := NewTorus2D(5, 4)
	for a := 0; a < tor.Size(); a++ {
		for _, b := range tor.UniqueNeighbors(a) {
			found := false
			for _, c := range tor.UniqueNeighbors(b) {
				if c == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbors: %d -> %d", a, b)
			}
		}
	}
}

func TestUniqueNeighborsLargeTorus(t *testing.T) {
	tor, _ := NewTorus2D(6, 6)
	for r := 0; r < tor.Size(); r++ {
		if got := len(tor.UniqueNeighbors(r)); got != 8 {
			t.Fatalf("rank %d: %d unique neighbors, want 8", r, got)
		}
	}
}

func TestUniqueNeighborsTinyTorus(t *testing.T) {
	tor, _ := NewTorus2D(2, 2)
	// On 2x2, each rank has only 3 distinct neighbors.
	if got := len(tor.UniqueNeighbors(0)); got != 3 {
		t.Errorf("2x2 torus: %d unique neighbors, want 3", got)
	}
}

func TestOffsetSetsPartition(t *testing.T) {
	all := map[Offset]int{}
	for _, o := range Offsets8 {
		all[o]++
	}
	for _, set := range [][]Offset{UpLeft, AntiDiagonal, DownRight} {
		for _, o := range set {
			all[o]--
		}
	}
	// UpLeft+AntiDiagonal+DownRight must cover exactly all 8 offsets once.
	for o, c := range all {
		if c != 0 {
			t.Errorf("offset %v covered %d extra times", o, c)
		}
	}
}

func TestUpLeftDownRightAreOpposites(t *testing.T) {
	for k, o := range UpLeft {
		opp := DownRight[len(DownRight)-1-k]
		if o.DI != -opp.DI || o.DJ != -opp.DJ {
			// Order differs; just check set-wise opposition.
			found := false
			for _, d := range DownRight {
				if d.DI == -o.DI && d.DJ == -o.DJ {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("UpLeft offset %v has no opposite in DownRight", o)
			}
		}
	}
}

func TestTorus3D(t *testing.T) {
	tor, err := NewCubicTorus(27)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tor.Size(); r++ {
		i, j, k := tor.Coords(r)
		if tor.Rank(i, j, k) != r {
			t.Fatalf("3D round trip failed for %d", r)
		}
	}
	if got := len(tor.Neighbors26(13)); got != 26 {
		t.Errorf("3x3x3 center has %d neighbors, want 26", got)
	}
	if _, err := NewCubicTorus(10); err == nil {
		t.Error("non-cube P accepted")
	}
}

func TestTorus2DShiftProperty(t *testing.T) {
	tor, _ := NewTorus2D(7, 5)
	f := func(r, di, dj int) bool {
		r = mod(r, tor.Size())
		s := tor.Shift(r, di, dj)
		back := tor.Shift(s, -di, -dj)
		return back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
