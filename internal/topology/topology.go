// Package topology maps processing-element ranks onto the virtual
// interconnects of the paper: a ring (plane domains), a 2-D torus with
// 8-neighbor relationships (square-pillar domains, the DLB substrate), and a
// 3-D torus (cube domains).
package topology

import (
	"fmt"
	"math"
)

// Offset is a relative coordinate step on a torus.
type Offset struct{ DI, DJ int }

// The 8 neighbor offsets of a 2-D torus in row-major scan order. The DLB
// protocol's three cases partition these (Section 2.3):
//
//	Case 1 (may receive my movable cells):  (-1,-1), (-1,0), (0,-1)
//	Case 2 (nothing can be exchanged):      (-1,+1), (+1,-1)
//	Case 3 (may get their own cells back):  (0,+1), (+1,0), (+1,+1)
var (
	Offsets8 = []Offset{
		{-1, -1}, {-1, 0}, {-1, 1},
		{0, -1}, {0, 1},
		{1, -1}, {1, 0}, {1, 1},
	}
	// UpLeft is the Case-1 offset set.
	UpLeft = []Offset{{-1, -1}, {-1, 0}, {0, -1}}
	// AntiDiagonal is the Case-2 offset set.
	AntiDiagonal = []Offset{{-1, 1}, {1, -1}}
	// DownRight is the Case-3 offset set.
	DownRight = []Offset{{0, 1}, {1, 0}, {1, 1}}
)

// Ring is a 1-D periodic chain of P ranks (the virtual interconnect of
// plane-domain DDM, Fig. 1).
type Ring struct{ P int }

// NewRing returns a ring of p ranks.
func NewRing(p int) (Ring, error) {
	if p < 1 {
		return Ring{}, fmt.Errorf("topology: ring needs p >= 1, got %d", p)
	}
	return Ring{P: p}, nil
}

// Next returns the rank after r.
func (t Ring) Next(r int) int { return mod(r+1, t.P) }

// Prev returns the rank before r.
func (t Ring) Prev(r int) int { return mod(r-1, t.P) }

// Torus2D is a Px x Py periodic grid of ranks; rank = i*Py + j for
// coordinates (i, j) with 0 <= i < Px, 0 <= j < Py. Square-pillar DDM uses
// a square torus (Px == Py == sqrt(P)).
type Torus2D struct{ Px, Py int }

// NewTorus2D returns a Px x Py torus.
func NewTorus2D(px, py int) (Torus2D, error) {
	if px < 1 || py < 1 {
		return Torus2D{}, fmt.Errorf("topology: torus dims must be >= 1, got %dx%d", px, py)
	}
	return Torus2D{Px: px, Py: py}, nil
}

// NewSquareTorus returns the sqrt(P) x sqrt(P) torus for a perfect-square
// rank count P, the layout square-pillar DDM requires.
func NewSquareTorus(p int) (Torus2D, error) {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s < 1 || s*s != p {
		return Torus2D{}, fmt.Errorf("topology: P=%d is not a perfect square", p)
	}
	return NewTorus2D(s, s)
}

// Size returns the number of ranks.
func (t Torus2D) Size() int { return t.Px * t.Py }

// Rank returns the rank at (wrapped) coordinates (i, j).
func (t Torus2D) Rank(i, j int) int { return mod(i, t.Px)*t.Py + mod(j, t.Py) }

// Coords returns the coordinates of rank r.
func (t Torus2D) Coords(r int) (i, j int) { return r / t.Py, r % t.Py }

// Shift returns the rank at offset (di, dj) from r.
func (t Torus2D) Shift(r, di, dj int) int {
	i, j := t.Coords(r)
	return t.Rank(i+di, j+dj)
}

// Neighbors8 returns the 8 neighbor ranks of r in Offsets8 order. On tori
// with a dimension < 3 the same rank can appear under several offsets; the
// slice always has length 8 and preserves offset identity, which the DLB
// protocol relies on. Use UniqueNeighbors for a deduplicated set.
func (t Torus2D) Neighbors8(r int) []int {
	i, j := t.Coords(r)
	out := make([]int, len(Offsets8))
	for k, o := range Offsets8 {
		out[k] = t.Rank(i+o.DI, j+o.DJ)
	}
	return out
}

// UniqueNeighbors returns the distinct neighbor ranks of r, excluding r
// itself.
func (t Torus2D) UniqueNeighbors(r int) []int {
	seen := map[int]bool{r: true}
	var out []int
	for _, n := range t.Neighbors8(r) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Torus3D is a periodic Px x Py x Pz grid of ranks (cube-domain DDM).
type Torus3D struct{ Px, Py, Pz int }

// NewTorus3D returns a 3-D torus.
func NewTorus3D(px, py, pz int) (Torus3D, error) {
	if px < 1 || py < 1 || pz < 1 {
		return Torus3D{}, fmt.Errorf("topology: torus dims must be >= 1, got %dx%dx%d", px, py, pz)
	}
	return Torus3D{Px: px, Py: py, Pz: pz}, nil
}

// NewCubicTorus returns the cbrt(P)^3 torus for a perfect-cube P.
func NewCubicTorus(p int) (Torus3D, error) {
	s := int(math.Round(math.Cbrt(float64(p))))
	if s < 1 || s*s*s != p {
		return Torus3D{}, fmt.Errorf("topology: P=%d is not a perfect cube", p)
	}
	return NewTorus3D(s, s, s)
}

// Size returns the number of ranks.
func (t Torus3D) Size() int { return t.Px * t.Py * t.Pz }

// Rank returns the rank at (wrapped) coordinates.
func (t Torus3D) Rank(i, j, k int) int {
	return (mod(i, t.Px)*t.Py+mod(j, t.Py))*t.Pz + mod(k, t.Pz)
}

// Coords returns the coordinates of rank r.
func (t Torus3D) Coords(r int) (i, j, k int) {
	k = r % t.Pz
	r /= t.Pz
	j = r % t.Py
	i = r / t.Py
	return
}

// Neighbors26 returns the distinct ranks adjacent to r (26 on a large
// torus), excluding r.
func (t Torus3D) Neighbors26(r int) []int {
	i, j, k := t.Coords(r)
	seen := map[int]bool{r: true}
	var out []int
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				n := t.Rank(i+di, j+dj, k+dk)
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// Offset3 is a relative coordinate step on a 3-D torus.
type Offset3 struct{ DI, DJ, DK int }

// Offsets26 are the 26 neighbor offsets of a 3-D torus in scan order. The
// cube-domain DLB protocol (internal/dlb3) partitions them:
//
//	Case 1 (may receive my movable cells):  all components <= 0  (7 offsets)
//	Case 3 (may get their own cells back):  all components >= 0  (7 offsets)
//	Case 2 (nothing can be exchanged):      mixed signs         (12 offsets)
var (
	Offsets26  []Offset3
	UpLeft3    []Offset3
	DownRight3 []Offset3
)

func init() {
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				o := Offset3{di, dj, dk}
				Offsets26 = append(Offsets26, o)
				if di <= 0 && dj <= 0 && dk <= 0 {
					UpLeft3 = append(UpLeft3, o)
				}
				if di >= 0 && dj >= 0 && dk >= 0 {
					DownRight3 = append(DownRight3, o)
				}
			}
		}
	}
}

// Shift returns the rank at offset (di, dj, dk) from r.
func (t Torus3D) Shift(r, di, dj, dk int) int {
	i, j, k := t.Coords(r)
	return t.Rank(i+di, j+dj, k+dk)
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
