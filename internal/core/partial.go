package core

import (
	"fmt"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/potential"
	"permcell/internal/supervise"
	"permcell/internal/workload"
)

// Partial is one worker process's share of a multi-process Engine: the
// same stepwise PE protocol as Engine, but spawning only the locally
// hosted ranks of a partial comm world. Messages to remote ranks flow
// through the world's Remote; messages from them are fed in with
// World().Inject. The distrib coordinator drives one Partial per worker
// process in lockstep, which reproduces the full Engine bit for bit —
// the PEs execute identical code over an identical delivery contract.
//
// Not safe for concurrent use. Finish must be called exactly once.
type Partial struct {
	cfg     Config
	world   *comm.World
	res     *Result
	local   []int
	cmd     map[int]chan int
	ack     chan struct{}
	runDone chan struct{}
	trap    *supervise.Trap
	snap    []checkpoint.Frame // full P slots; only local ranks written
	taken   int                // stats records already handed out
	stepped int
	err     error
	done    bool
}

// NewPartial validates cfg and starts the PE goroutines for the given
// local ranks. Exactly like NewEngine, the PEs compute step-0 forces
// (which communicates across processes) and then idle awaiting commands.
func NewPartial(cfg Config, sys workload.System, local []int, remote comm.Remote) (*Partial, error) {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 1
	}
	layout, err := cfg.Layout()
	if err != nil {
		return nil, err
	}
	var opts []comm.Option
	if cfg.InboxCap > 0 {
		opts = append(opts, comm.WithInboxCapacity(cfg.InboxCap))
	}
	if cfg.Faults != nil {
		opts = append(opts, comm.WithFaults(*cfg.Faults))
	}
	if cfg.Watchdog > 0 {
		opts = append(opts, comm.WithTracking())
	}
	world, err := comm.NewPartialWorld(cfg.P, local, remote, opts...)
	if err != nil {
		return nil, err
	}

	hosts, err := restoreHosts(layout, cfg.Restore)
	if err != nil {
		return nil, err
	}

	p := &Partial{
		cfg:     cfg,
		world:   world,
		res:     &Result{M: layout.M},
		local:   world.Local(),
		cmd:     make(map[int]chan int, len(local)),
		ack:     make(chan struct{}, len(local)),
		runDone: make(chan struct{}),
		trap:    supervise.NewTrap(),
		snap:    make([]checkpoint.Frame, cfg.P),
	}
	if cfg.Restore != nil {
		p.stepped = 0 // AbsStep bookkeeping lives in the coordinator
	}
	for _, r := range p.local {
		p.cmd[r] = make(chan int, 1)
	}
	go func() {
		defer close(p.runDone)
		world.Run(func(c *comm.Comm) {
			defer p.trap.Catch(c.Rank())
			newPE(c, &p.cfg, layout, sys, hosts).runStepwise(p.cmd[c.Rank()], p.ack, p.res, p.snap)
		})
	}()
	return p, nil
}

// World exposes the partial world for message injection and traffic
// accounting by the transport layer.
func (p *Partial) World() *comm.World { return p.world }

// command pushes v to every local rank and awaits their acks under the
// watchdog and the panic trap.
func (p *Partial) command(v int) error {
	if p.err != nil {
		return p.err
	}
	if terr := p.trap.Err(); terr != nil {
		p.err = terr
		return terr
	}
	if p.done {
		return fmt.Errorf("core: command after Finish")
	}
	for _, r := range p.local {
		p.cmd[r] <- v
	}
	done := make(chan struct{})
	go func() {
		for range p.local {
			<-p.ack
		}
		close(done)
	}()
	if err := awaitBatch(p.world, p.cfg.Watchdog, done, p.trap); err != nil {
		p.err = err
		return err
	}
	return nil
}

// Step advances the local ranks by n time steps. The coordinator issues
// the same Step to every worker; the cross-process exchanges inside the
// batch synchronize the ranks exactly as goroutine scheduling does
// in-process.
func (p *Partial) Step(n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	if err := p.command(n); err != nil {
		return err
	}
	p.stepped += n
	return nil
}

// TakeStats returns the step records appended since the last call. Only
// the process hosting rank 0 ever returns records (rank 0 folds the
// census); the coordinator stitches them into the global trace.
func (p *Partial) TakeStats() []StepStats {
	out := append([]StepStats(nil), p.res.Stats[p.taken:]...)
	p.taken = len(p.res.Stats)
	return out
}

// SnapshotLocal captures the local ranks' checkpoint frames at the
// current batch boundary and verifies local quiescence. The coordinator
// assembles the per-process frame sets into one EngineState; the global
// msgs/bytes continuation is its job too (Stats gives it this process's
// share).
func (p *Partial) SnapshotLocal() ([]checkpoint.Frame, error) {
	if err := p.command(cmdSnapshot); err != nil {
		return nil, err
	}
	if err := p.world.Quiesced(); err != nil {
		return nil, err
	}
	out := make([]checkpoint.Frame, 0, len(p.local))
	for _, r := range p.local {
		out = append(out, p.snap[r])
	}
	return out, nil
}

// Stats returns this process's cumulative sent message and byte counts.
func (p *Partial) Stats() (msgs, bytes int64) { return p.world.Stats() }

// TransportStats returns this process's wire traffic counters.
func (p *Partial) TransportStats() comm.TransportStats { return p.world.TransportStats() }

// Finish releases the local PE goroutines and returns this process's
// share of the Result: the final gather is a collective, so Final is
// populated only on the process hosting rank 0. Idempotent is not needed
// here — the worker loop calls it exactly once at KindFinish.
func (p *Partial) Finish() (*Result, error) {
	if p.done {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	p.done = true
	if terr := p.trap.Err(); terr != nil {
		if p.err == nil {
			p.err = terr
		}
		return nil, p.err
	}
	if p.err != nil {
		return nil, p.err
	}
	for _, r := range p.local {
		p.cmd[r] <- cmdFinish
	}
	if werr := p.world.WatchSection(p.cfg.Watchdog, p.runDone); werr != nil {
		p.err = werr
		return nil, werr
	}
	p.res.CommMsgs, p.res.CommBytes = p.world.Stats()
	p.res.Faults = p.world.FaultStats()
	p.res.FaultEvents = p.world.FaultEvents()
	return p.res, nil
}
