package core

// Engine-level conformance of the balancer zoo: every strategy drives its
// migrations through the same ledger/colTransfer machinery, so a
// blob-concentrated run with no external forces must (a) actually migrate
// columns under the imbalance, (b) conserve every particle, and (c) keep
// the total momentum at the zero the drift-free initial condition starts
// from — migrated columns carry their accumulated forces, so the
// post-transfer half-kick cannot inject momentum (the PR-6 defect class).

import (
	"math"
	"testing"

	"permcell/internal/balance"
	"permcell/internal/space"
	"permcell/internal/workload"
)

func coreZoo() map[string]balance.Balancer {
	return map[string]balance.Balancer{
		"permcell":  balance.PermanentCell{},
		"sfc":       balance.SFC{},
		"diffusive": balance.Diffusive{},
	}
}

func TestBalancerZeroNetMomentum(t *testing.T) {
	// m=3 at P=9: enough movable columns that every strategy in the zoo
	// actually fires on the blob imbalance.
	nc := 9
	l := float64(nc) * 2.5
	n := int(math.Round(0.3 * l * l * l))
	rho := float64(n) / (l * l * l)
	sys, err := workload.BlobGas(n, rho, 0.722, 0.7, 4.0, 31)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range coreZoo() {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(g, 9)
			cfg.Balancer = b
			res, err := Run(cfg, sys, 40)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			var movedBytes int64
			for _, st := range res.Stats {
				moved += st.Moved
				movedBytes += st.MovedBytes
			}
			if moved == 0 {
				t.Fatalf("%s never moved a column under the blob imbalance (vacuous momentum check)", name)
			}
			if movedBytes <= 0 {
				t.Fatalf("%s moved %d columns but counted %d payload bytes", name, moved, movedBytes)
			}
			if res.Final.Len() != sys.Set.Len() {
				t.Fatalf("%s: particle count %d -> %d", name, sys.Set.Len(), res.Final.Len())
			}
			p := res.Final.Momentum()
			if m := math.Max(math.Abs(p.X), math.Max(math.Abs(p.Y), math.Abs(p.Z))); m > 1e-9 {
				t.Fatalf("%s: net momentum %v after 40 steps with %d migrations", name, p, moved)
			}
		})
	}
}

// TestBalancerLedgerLegality runs the zoo under Verify: every decision a
// balancer emits is re-validated by the ledger's Apply (decider must host,
// permanent cells never move, Case-1 targets stay in the owner's up-left
// set, Case-3 returns go to the owner) and the per-step invariant checks —
// an out-of-contract move panics instead of silently corrupting hosting.
func TestBalancerLedgerLegality(t *testing.T) {
	nc := 6
	l := float64(nc) * 2.5
	n := int(math.Round(0.3 * l * l * l))
	rho := float64(n) / (l * l * l)
	sys, err := workload.BlobGas(n, rho, 0.722, 0.7, 4.0, 33)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range coreZoo() {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(g, 9)
			cfg.Balancer = b
			cfg.Verify = true
			if _, err := Run(cfg, sys, 30); err != nil {
				t.Fatal(err)
			}
		})
	}
}
