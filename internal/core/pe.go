package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"permcell/internal/balance"
	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/conc"
	"permcell/internal/dlb"
	"permcell/internal/integrator"
	"permcell/internal/kernel"
	"permcell/internal/metrics"
	"permcell/internal/particle"
	"permcell/internal/supervise"
	"permcell/internal/topology"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// Message tags. Per-(source, tag) FIFO ordering in comm makes fixed tags
// safe: neighbor exchanges are naturally step-synchronized because every
// phase receives exactly one message per neighbor.
const (
	tagLoad = iota + 1
	tagDecision
	tagTransfer
	tagMigrate
	tagNeed
	tagHalo
)

// Stepwise command sentinels (positive values are batch sizes).
const (
	cmdFinish   = -1
	cmdSnapshot = -2
)

// cellBlock is one cell's particle positions in a halo response.
type cellBlock struct {
	Cell int
	Pos  []vec.V
}

// peRecord is the per-step census a PE contributes to the global stats.
type peRecord struct {
	Work       float64
	Wall       float64
	Step       float64 // whole-step wall seconds
	Cells      int
	Empty      int
	Moved      int
	MovedBytes int64
	PotE       float64
	KinE       float64
	N          int
	Phases     metrics.Sample // zero unless cfg.Metrics
}

// pe is the state of one processing element.
type pe struct {
	c      *comm.Comm
	cfg    *Config
	layout dlb.Layout
	lg     *dlb.Ledger
	dec    balance.Decider // nil when no balancer is configured
	nbs    []int           // unique neighbor ranks, ascending

	set    particle.Set
	cl     *kernel.CellLists // flat cell lists + force kernel scratch
	dirty  bool              // hosted column set changed; refresh cl topology
	cells  []int             // scratch for the hosted cell list
	colPop map[int]int       // hosted column -> particle count

	lastWork   float64 // pair evaluations of last force computation
	lastWall   float64 // wall seconds of last force computation
	potE       float64 // local share of potential energy
	moved      int     // columns moved by my decisions this step
	movedBytes int64   // particle payload bytes those moves carried
	initN      int64   // global particle count at step 0 (Verify or Guard)
	step0      int     // absolute step the run starts at (checkpoint restore)

	// Energy-drift guard reference: the total energy of the first census
	// after (re)start. Per-incarnation on purpose — a restored engine
	// re-anchors, so the ceiling bounds drift since the checkpoint, not
	// since step 0 of a run that may long predate it.
	guardE0    float64
	guardE0Set bool

	tm *metrics.Timer // per-phase timing; nil unless cfg.Metrics
}

// send delivers a protocol message over the possibly-faulty substrate,
// attributing it to phase ph of the metrics layer. Retries are handled
// inside SendReliable; exhausting them is a fatal transport failure, the
// goroutine analogue of an MPI error handler abort.
func (p *pe) send(ph metrics.Phase, dst, tag int, data any, size int64) {
	if err := p.c.SendReliableSized(dst, tag, data, size); err != nil {
		panic(fmt.Sprintf("core: rank %d: %v", p.c.Rank(), err))
	}
	p.tm.Count(ph, 1, size)
}

// newPE builds one PE. With a nil hosts map the particles come from the
// initial distribution of sys (each PE takes its own columns); with a
// restore in cfg, hosts is the pre-validated global column→host map and the
// PE instead takes its checkpoint frame's particles in their recorded order
// — array order drives force summation order, so preserving it is what
// makes the resumed trajectory bit-identical.
func newPE(c *comm.Comm, cfg *Config, layout dlb.Layout, sys workload.System, hosts map[int]int) *pe {
	p := &pe{
		c:      c,
		cfg:    cfg,
		layout: layout,
		cl:     kernel.NewCellLists(cfg.Grid, cfg.Shards),
		dirty:  true,
		colPop: make(map[int]int),
	}
	p.nbs = append(p.nbs, layout.T.UniqueNeighbors(c.Rank())...)
	sort.Ints(p.nbs)
	if cfg.Metrics {
		p.tm = &metrics.Timer{}
	}
	if cfg.Balancer != nil {
		p.dec = cfg.Balancer.NewDecider(layout, c.Rank())
	}

	if cfg.Restore != nil {
		p.step0 = cfg.Restore.Step
		lg, err := dlb.RestoreLedger(layout, c.Rank(), hosts)
		if err != nil {
			// Pre-validated by restoreHosts; reaching this is an engine bug.
			panic(fmt.Sprintf("core: rank %d: %v", c.Rank(), err))
		}
		p.lg = lg
		fr := &cfg.Restore.Frames[c.Rank()]
		for i := range fr.ID {
			p.set.Add(fr.ID[i], fr.Pos[i], fr.Vel[i])
		}
		return p
	}

	p.lg = dlb.NewLedger(layout, c.Rank())
	// Initial distribution: each PE takes the particles in its own columns.
	// The shared input system is only read, never written.
	g := cfg.Grid
	for i := range sys.Set.Pos {
		col := g.ColumnOf(g.CellOf(sys.Set.Pos[i]))
		if layout.OwnerOf(col) == c.Rank() {
			p.set.Add(sys.Set.ID[i], sys.Set.Pos[i], sys.Set.Vel[i])
		}
	}
	return p
}

// init computes the step-0 state: bin, pull the halo, evaluate forces so
// the first half kick has them, and (under Verify) record the global
// particle count for conservation checks.
func (p *pe) init() {
	p.rebuild()
	p.haloExchange()
	p.computeForces()
	if p.cfg.Verify || p.cfg.guardOn() {
		p.initN = p.c.AllreduceInt64(int64(p.set.Len()), comm.SumI)
	}
	// Drain the step-0 accumulation so the first step's phase sample covers
	// only work inside its own wall-clock window.
	p.tm.TakeSample()
}

// oneStep advances this PE by time step number step (1-based, monotonic
// across stepwise batches). Every section between t0 and the stats census
// is attributed to one metrics phase, so the phase breakdown sums to the
// whole-step wall time; the census allgather itself and the Verify
// collectives run after the wall snapshot and stay outside the taxonomy.
func (p *pe) oneStep(step int, res *Result) {
	if s := p.cfg.Sabotage; s != nil && s.Kind == supervise.SabotagePanic && s.TryFire(step, p.c.Rank()) {
		panic(fmt.Sprintf("core: rank %d: injected sabotage panic at step %d", p.c.Rank(), step))
	}
	dlbEvery := p.cfg.DLBEvery
	if dlbEvery < 1 {
		dlbEvery = 1
	}
	t0 := time.Now()
	p.moved, p.movedBytes = 0, 0
	if p.dec != nil && (step-1)%dlbEvery == 0 {
		p.balanceStep()
	}
	ti := p.tm.Start()
	integrator.HalfKick(&p.set, p.cfg.Dt)
	integrator.Drift(&p.set, p.cfg.Dt, p.cfg.Grid.Box)
	p.tm.Stop(metrics.PhaseIntegrate, ti)
	tm := p.tm.Start()
	p.migrate()
	p.rebuild()
	p.tm.Stop(metrics.PhaseMigrate, tm)
	th := p.tm.Start()
	p.haloExchange()
	p.tm.Stop(metrics.PhaseHalo, th)
	p.computeForces()
	ti = p.tm.Start()
	integrator.HalfKick(&p.set, p.cfg.Dt)
	p.tm.Stop(metrics.PhaseIntegrate, ti)
	if p.cfg.RescaleEvery > 0 && step%p.cfg.RescaleEvery == 0 {
		tc := p.tm.Start()
		p.rescale()
		p.tm.Stop(metrics.PhaseCollective, tc)
	}
	// NaN sabotage corrupts a velocity right before the census so the
	// finite guard (not a downstream binning panic) is what catches it.
	if s := p.cfg.Sabotage; s != nil && s.Kind == supervise.SabotageNaN &&
		s.TryFire(step, p.c.Rank()) && p.set.Len() > 0 {
		p.set.Vel[0].X = math.NaN()
	}
	p.collectStats(step, time.Since(t0).Seconds(), res)
	if p.cfg.Verify {
		p.verifyStep(step)
	}
}

// run executes the whole simulation on this PE. Step numbering continues
// from the restore point (step0 = 0 on a fresh start).
func (p *pe) run(steps int, res *Result) {
	defer p.cl.Close()
	p.init()
	for i := 1; i <= steps; i++ {
		p.oneStep(p.step0+i, res)
	}
	p.gatherFinal(res)
}

// runStepwise executes the simulation in driver-commanded batches: each
// value received on cmd is a batch size to advance by (cmdFinish ends the
// run, cmdSnapshot serializes this PE's shard into snap); after each
// command the PE reports on ack and goes idle. All ranks receive the same
// command sequence, so the collectives inside a batch stay aligned exactly
// as in run.
func (p *pe) runStepwise(cmd <-chan int, ack chan<- struct{}, res *Result, snap []checkpoint.Frame) {
	defer p.cl.Close()
	p.init()
	step := p.step0
	for n := range cmd {
		if n == cmdSnapshot {
			p.snapshot(snap)
			ack <- struct{}{}
			continue
		}
		if n < 0 {
			break
		}
		for i := 0; i < n; i++ {
			step++
			p.oneStep(step, res)
		}
		// Deliver anything the fault layer held back before going idle: a
		// message held across the ack would strand a peer still receiving
		// inside the batch, deadlocking the world (peers ack only once
		// their own protocol drains).
		p.c.FlushFaults()
		ack <- struct{}{}
	}
	p.gatherFinal(res)
}

// snapshot serializes this PE's shard — particle arrays in live order plus
// the hosted-column set — into its slot of the shared frame slice. The ack
// that follows is the happens-before edge to the driver's read. A PE with
// communication still pending at a batch boundary is an engine bug: the
// per-step protocols all drain what they send.
func (p *pe) snapshot(snap []checkpoint.Frame) {
	if err := p.c.Quiesced(); err != nil {
		panic(fmt.Sprintf("core: rank %d snapshot: %v", p.c.Rank(), err))
	}
	checkpoint.CaptureFrame(&snap[p.c.Rank()], p.c.Rank(), &p.set, p.lg.HostedColumns())
}

// verifyStep asserts the DESIGN.md section 6 protocol invariants at the end
// of a step: no more columns moved by this PE than the balancer's declared
// per-epoch bound, the per-ledger permanent-cell invariants, the global
// single-host partition over all columns, and particle-count conservation.
// Violations panic, which chaos runs surface as failures instead of
// silently corrupt physics.
func (p *pe) verifyStep(step int) {
	maxMoves := 0
	if p.cfg.Balancer != nil {
		maxMoves = p.cfg.Balancer.MaxMoves()
	}
	if p.moved > maxMoves {
		panic(fmt.Sprintf("core: rank %d step %d moved %d columns (max %d)", p.c.Rank(), step, p.moved, maxMoves))
	}
	if err := p.lg.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("core: rank %d step %d: %v", p.c.Rank(), step, err))
	}
	hosts := p.c.Allgather(p.lg.HostedColumns())
	n := p.c.AllreduceInt64(int64(p.set.Len()), comm.SumI)
	if n != p.initN {
		panic(fmt.Sprintf("core: step %d: particle count %d, want %d (conservation broken)", step, n, p.initN))
	}
	if p.c.Rank() != 0 {
		return
	}
	count := make(map[int]int, p.layout.NumColumns())
	for rank, a := range hosts {
		for _, col := range a.([]int) {
			if count[col]++; count[col] > 1 {
				panic(fmt.Sprintf("core: step %d: column %d hosted by multiple PEs (second: rank %d)", step, col, rank))
			}
		}
	}
	if len(count) != p.layout.NumColumns() {
		panic(fmt.Sprintf("core: step %d: only %d of %d columns hosted", step, len(count), p.layout.NumColumns()))
	}
}

// load returns the last force-computation load under the configured metric.
func (p *pe) load() float64 {
	if p.cfg.Metric == WallTime {
		return p.lastWall
	}
	return p.lastWork
}

// loadCensus is the per-rank payload of a global-scope balancer epoch: the
// PE's load plus its hosted-column occupancy census.
type loadCensus struct {
	Load float64
	Cols []int
	Pop  []int
}

// observe assembles this epoch's balance.Observation. Neighbor-scope
// balancers use the paper's protocol step 1 (one small message per
// neighbor) byte-for-byte as the pre-interface DLB path did; global-scope
// balancers replace it with one allgather carrying every PE's load and
// column census.
func (p *pe) observe() balance.Observation {
	obs := balance.Observation{Self: p.load()}
	pi, pj := p.layout.T.Coords(p.c.Rank())

	if p.cfg.Balancer.Scope() == balance.ScopeGlobal {
		mine := loadCensus{Load: p.load(), Cols: p.lg.HostedColumns()}
		mine.Pop = make([]int, len(mine.Cols))
		for i, col := range mine.Cols {
			mine.Pop[i] = p.colPop[col]
		}
		all := p.c.Allgather(mine)
		peLoad := make([]float64, len(all))
		colLoad := make([]float64, p.layout.NumColumns())
		for r, a := range all {
			cen := a.(loadCensus)
			peLoad[r] = cen.Load
			for i, col := range cen.Cols {
				colLoad[col] = float64(cen.Pop[i])
			}
		}
		obs.PELoad = peLoad
		for k, off := range topology.Offsets8 {
			obs.Neighbor[k] = peLoad[p.layout.T.Rank(pi+off.DI, pj+off.DJ)]
		}
		obs.ColLoad = func(col int) float64 { return colLoad[col] }
		return obs
	}

	// Step 1: exchange last-step loads with the 8 neighbors.
	for _, nb := range p.nbs {
		p.send(metrics.PhaseDLBDecide, nb, tagLoad, p.load(), 0)
	}
	nbLoad := make(map[int]float64, len(p.nbs))
	for _, nb := range p.nbs {
		nbLoad[nb] = p.c.Recv(nb, tagLoad).(float64)
	}
	for k, off := range topology.Offsets8 {
		obs.Neighbor[k] = nbLoad[p.layout.T.Rank(pi+off.DI, pj+off.DJ)]
	}
	obs.ColLoad = func(col int) float64 { return float64(p.colPop[col]) }
	return obs
}

// balanceStep runs one balancer epoch: observe loads, let the strategy
// decide, broadcast and apply the decisions, then execute the particle
// payload transfers. The wire protocol is the permanent-cell one
// generalized to a decision *list* per PE (still exactly one decision
// message per neighbor per epoch), so every strategy inherits the
// 8-neighbor exchange and its invariants.
func (p *pe) balanceStep() {
	td := p.tm.Start()
	obs := p.observe()

	// Decide. The strategy may emit several moves, bounded by MaxMoves;
	// the ledger validates each against the permanent-cell contract when
	// applied, so an out-of-contract balancer is a protocol panic, not
	// silent corruption.
	ds := p.dec.Decide(p.lg, obs)
	if maxMoves := p.cfg.Balancer.MaxMoves(); len(ds) > maxMoves {
		panic(fmt.Sprintf("core: rank %d: balancer %q emitted %d decisions (max %d)",
			p.c.Rank(), p.cfg.Balancer.Name(), len(ds), maxMoves))
	}

	// Broadcast my decisions; apply everyone's.
	for _, nb := range p.nbs {
		p.send(metrics.PhaseDLBDecide, nb, tagDecision, ds, 0)
	}
	for _, d := range ds {
		if err := p.lg.Apply(p.c.Rank(), d); err != nil {
			panic(fmt.Sprintf("core: rank %d self-apply: %v", p.c.Rank(), err))
		}
	}
	nbDecisions := make(map[int][]dlb.Decision, len(p.nbs))
	for _, nb := range p.nbs {
		nds := p.c.Recv(nb, tagDecision).([]dlb.Decision)
		nbDecisions[nb] = nds
		for _, nd := range nds {
			if err := p.lg.Apply(nb, nd); err != nil {
				panic(fmt.Sprintf("core: rank %d applying decision of %d: %v", p.c.Rank(), nb, err))
			}
		}
	}

	p.tm.Stop(metrics.PhaseDLBDecide, td)

	// Payload transfers: my moved columns' particles leave; columns moved
	// to me arrive. Unlike migration (which runs before the forces it
	// affects are computed), the balancer move happens before the first
	// half kick — the kick that consumes the forces evaluated at the end of
	// the previous step — so the payload must carry each particle's current
	// force. Dropping it would kick transferred particles with zero force,
	// which injects net momentum into the system on every move step (the
	// momentum-conservation invariant test catches exactly this).
	tt := p.tm.Start()
	for _, d := range ds {
		p.moved++
		p.dirty = true
		out := p.extractColumn(d.Col)
		size := int64(len(out.Ps)) * 72
		p.movedBytes += size
		p.send(metrics.PhaseDLBTransfer, d.Dest, tagTransfer, out, size)
	}
	// Per-(source, tag) FIFO ordering matches the sender's loop order, so
	// multiple inbound transfers from one neighbor arrive in its decision
	// order.
	for _, nb := range p.nbs {
		for _, nd := range nbDecisions[nb] {
			if nd.Dest != p.c.Rank() {
				continue
			}
			p.dirty = true
			in := p.c.Recv(nb, tagTransfer).(colTransfer)
			for k, one := range in.Ps {
				idx := p.set.AddOne(one)
				p.set.Frc[idx] = in.Frc[k]
			}
		}
	}
	p.tm.Stop(metrics.PhaseDLBTransfer, tt)
}

// colTransfer is the DLB column-move payload: the particles plus the
// forces from the last evaluation, which the first half kick of the move
// step still needs (particle.One deliberately omits forces — every other
// transfer happens at points where they are about to be recomputed).
// Fields are exported because the payload crosses process boundaries on
// the TCP transport (gob only encodes exported fields).
type colTransfer struct {
	Ps  []particle.One
	Frc []vec.V
}

// extractColumn removes and returns (sorted by ID) the particles currently
// in column col, together with their last-step forces.
func (p *pe) extractColumn(col int) colTransfer {
	g := p.cfg.Grid
	var out colTransfer
	for i := 0; i < p.set.Len(); {
		if g.ColumnOf(g.CellOf(p.set.Pos[i])) == col {
			out.Ps = append(out.Ps, p.set.Extract(i))
			out.Frc = append(out.Frc, p.set.Frc[i])
			p.set.RemoveSwap(i)
			continue
		}
		i++
	}
	sort.Sort(byID(out))
	return out
}

// byID sorts a colTransfer's parallel slices by particle ID.
type byID colTransfer

func (s byID) Len() int           { return len(s.Ps) }
func (s byID) Less(a, b int) bool { return s.Ps[a].ID < s.Ps[b].ID }
func (s byID) Swap(a, b int) {
	s.Ps[a], s.Ps[b] = s.Ps[b], s.Ps[a]
	s.Frc[a], s.Frc[b] = s.Frc[b], s.Frc[a]
}

// migrate sends particles whose cell is hosted by another PE to that host.
// One drift moves a particle at most into a neighboring cell, whose host is
// always within the 8-neighborhood (the permanent-cell closure invariant);
// anything farther means the time step is too large for the cell size.
func (p *pe) migrate() {
	g := p.cfg.Grid
	out := make(map[int][]particle.One)
	for i := 0; i < p.set.Len(); {
		col := g.ColumnOf(g.CellOf(p.set.Pos[i]))
		host, err := p.lg.HostOf(col)
		if err != nil {
			panic(fmt.Sprintf("core: rank %d migrate: %v (time step too large for cell size?)", p.c.Rank(), err))
		}
		if host != p.c.Rank() {
			if !containsInt(p.nbs, host) {
				panic(fmt.Sprintf("core: rank %d: particle migrating to non-neighbor %d", p.c.Rank(), host))
			}
			out[host] = append(out[host], p.set.Extract(i))
			p.set.RemoveSwap(i)
			continue
		}
		i++
	}
	for _, nb := range p.nbs {
		msg := out[nb]
		sort.Slice(msg, func(a, b int) bool { return msg[a].ID < msg[b].ID })
		p.send(metrics.PhaseMigrate, nb, tagMigrate, msg, int64(len(msg))*48)
	}
	for _, nb := range p.nbs {
		in := p.c.Recv(nb, tagMigrate).([]particle.One)
		for _, one := range in {
			p.set.AddOne(one)
		}
	}
}

// rebuild re-bins the particles into the flat cell lists and recomputes the
// per-column census; the cell-list topology (hosted set, stencils, ghost
// slots) is only rebuilt when a DLB transfer changed the hosted columns.
func (p *pe) rebuild() {
	g := p.cfg.Grid
	if p.dirty {
		p.cells = p.cells[:0]
		for _, col := range p.lg.HostedColumns() {
			p.cells = g.CellsInColumn(col, p.cells)
		}
		p.cl.SetHosted(p.cells)
		p.dirty = false
	}
	if bad := p.cl.Bin(p.set.Pos); bad >= 0 {
		panic(fmt.Sprintf("core: rank %d holds particle %d in unhosted cell %d",
			p.c.Rank(), p.set.ID[bad], g.CellOf(p.set.Pos[bad])))
	}
	clear(p.colPop)
	for s := 0; s < p.cl.NumHosted(); s++ {
		p.colPop[g.ColumnOf(p.cl.SlotCell(s))] += p.cl.SlotLen(s)
	}
}

// haloExchange pulls the particle positions of every unhosted cell adjacent
// to a hosted cell from its current host (need-list protocol: one request
// and one response message per neighbor) and stages them into the kernel's
// ghost arena.
func (p *pe) haloExchange() {
	g := p.cfg.Grid
	need := make(map[int][]int) // host -> cells (ascending: ghost list order)
	for _, nc := range p.cl.GhostCells() {
		host, err := p.lg.HostOf(g.ColumnOf(nc))
		if err != nil {
			panic(fmt.Sprintf("core: rank %d halo: %v", p.c.Rank(), err))
		}
		if !containsInt(p.nbs, host) {
			panic(fmt.Sprintf("core: rank %d: halo cell %d hosted by non-neighbor %d", p.c.Rank(), nc, host))
		}
		need[host] = append(need[host], nc)
	}
	for _, nb := range p.nbs {
		p.send(metrics.PhaseHalo, nb, tagNeed, need[nb], 0)
	}
	// Answer the neighbors' requests.
	for _, nb := range p.nbs {
		req := p.c.Recv(nb, tagNeed).([]int)
		resp := make([]cellBlock, 0, len(req))
		var bytes int64
		for _, cell := range req {
			idx, ok := p.cl.CellParticles(cell)
			if !ok {
				panic(fmt.Sprintf("core: rank %d asked for cell %d it does not host (by %d)", p.c.Rank(), cell, nb))
			}
			blk := cellBlock{Cell: cell, Pos: make([]vec.V, len(idx))}
			for k, i := range idx {
				blk.Pos[k] = p.set.Pos[i]
			}
			bytes += int64(len(idx)) * 24
			resp = append(resp, blk)
		}
		p.send(metrics.PhaseHalo, nb, tagHalo, resp, bytes)
	}
	p.cl.ClearGhosts()
	for _, nb := range p.nbs {
		for _, blk := range p.c.Recv(nb, tagHalo).([]cellBlock) {
			p.cl.StageGhost(blk.Cell, blk.Pos)
		}
	}
	p.cl.SealGhosts()
}

// computeForces evaluates the short-range forces over hosted cells via the
// shared kernel and records this step's load under both metrics.
func (p *pe) computeForces() {
	p.set.ZeroForces()
	t0 := time.Now()
	potE, _, pairs := p.cl.Compute(p.cfg.Pair, &p.set)
	potE += kernel.ExternalForces(p.cfg.Ext, &p.set)
	p.potE = potE
	p.lastWall = time.Since(t0).Seconds()
	p.lastWork = float64(pairs)
	p.tm.Add(metrics.PhaseForce, p.lastWall)
}

// rescale applies global velocity rescaling to Tref.
func (p *pe) rescale() {
	ke := p.c.AllreduceFloat64(p.set.KineticEnergy(), comm.Sum)
	n := p.c.AllreduceInt64(int64(p.set.Len()), comm.SumI)
	integrator.Rescale(&p.set, integrator.RescaleFactor(ke, int(n), p.cfg.Tref))
}

// collectStats gathers the per-PE census and, on rank 0, folds it into the
// run result. The phase sample is taken (and the timer reset) every step so
// a sample never spans steps; on skipped steps it is simply dropped, like
// the rest of the per-step snapshot quantities.
func (p *pe) collectStats(step int, stepWall float64, res *Result) {
	sample := p.tm.TakeSample()
	if step%p.cfg.StatsEvery != 0 {
		return
	}
	if p.cfg.guardOn() {
		p.guardFinite(step)
	}
	empty := 0
	for s := 0; s < p.cl.NumHosted(); s++ {
		if p.cl.SlotLen(s) == 0 {
			empty++
		}
	}
	rec := peRecord{
		Work:       p.lastWork,
		Wall:       p.lastWall,
		Step:       stepWall,
		Cells:      p.cl.NumHosted(),
		Empty:      empty,
		Moved:      p.moved,
		MovedBytes: p.movedBytes,
		PotE:       p.potE,
		KinE:       p.set.KineticEnergy(),
		N:          p.set.Len(),
		Phases:     sample,
	}
	all := p.c.Allgather(rec)
	if p.c.Rank() != 0 {
		return
	}
	st := StepStats{Step: step, WorkMin: -1, WallMin: -1, Balancer: p.cfg.BalancerName()}
	pes := make([]conc.PE, len(all))
	var totalN int
	for i, a := range all {
		r := a.(peRecord)
		st.WorkMax = max(st.WorkMax, r.Work)
		st.WallMax = max(st.WallMax, r.Wall)
		st.StepWallMax = max(st.StepWallMax, r.Step)
		if st.WorkMin < 0 || r.Work < st.WorkMin {
			st.WorkMin = r.Work
		}
		if st.WallMin < 0 || r.Wall < st.WallMin {
			st.WallMin = r.Wall
		}
		st.WorkAve += r.Work
		st.WallAve += r.Wall
		st.StepWallAve += r.Step
		st.Moved += r.Moved
		st.MovedBytes += r.MovedBytes
		st.TotalEnergy += r.PotE + r.KinE
		totalN += r.N
		pes[i] = conc.PE{Cells: r.Cells, Empty: r.Empty}
		st.Phases.Fold(r.Phases)
	}
	st.WorkAve /= float64(len(all))
	st.WallAve /= float64(len(all))
	st.StepWallAve /= float64(len(all))
	st.Phases.Finalize(len(all))
	if totalN > 0 {
		var ke float64
		for _, a := range all {
			ke += a.(peRecord).KinE
		}
		st.Temperature = 2 * ke / (3 * float64(totalN))
	}
	st.Conc = conc.Compute(pes)
	// Transport traffic as seen by this process; on a multi-process run
	// the coordinator replaces these with the global per-process sums.
	ts := p.c.TransportStats()
	st.SentFrames, st.SentBytes, st.ResendCount = ts.Frames, ts.Bytes, ts.Resends
	if p.cfg.guardOn() {
		p.guardGlobal(step, st.TotalEnergy, totalN)
	}
	if !p.cfg.DiscardStats {
		res.Stats = append(res.Stats, st)
	}
	if p.cfg.OnStep != nil {
		p.cfg.OnStep(st)
	}
}

// guardFinite is the per-rank physics guard: every particle this PE holds
// must have finite position and velocity. It runs at the stats cadence,
// before the census is gathered, so a violation prevents the corrupt step
// from ever reaching the trace or a checkpoint. The panic value is the
// typed violation itself; the engine trap passes it through unchanged.
func (p *pe) guardFinite(step int) {
	for i := range p.set.Pos {
		if !p.set.Pos[i].IsFinite() || !p.set.Vel[i].IsFinite() {
			panic(&supervise.GuardViolation{
				Rank: p.c.Rank(), Step: step, Check: "finite",
				Detail: fmt.Sprintf("particle %d pos=%v vel=%v", p.set.ID[i], p.set.Pos[i], p.set.Vel[i]),
			})
		}
	}
}

// guardGlobal runs the rank-0 physics guards over the folded census:
// particle-count conservation and the relative energy-drift ceiling
// (anchored at this incarnation's first census).
func (p *pe) guardGlobal(step int, energy float64, totalN int) {
	// A NaN would slip past the drift comparison below (NaN > x is false).
	if math.IsNaN(energy) || math.IsInf(energy, 0) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "finite",
			Detail: fmt.Sprintf("total energy %g", energy),
		})
	}
	if totalN != int(p.initN) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "conservation",
			Detail: fmt.Sprintf("global particle count %d, want %d", totalN, p.initN),
		})
	}
	drift := p.cfg.Guard.Drift()
	if drift <= 0 {
		return
	}
	if !p.guardE0Set {
		p.guardE0, p.guardE0Set = energy, true
		return
	}
	if math.Abs(energy-p.guardE0) > drift*math.Max(1, math.Abs(p.guardE0)) {
		panic(&supervise.GuardViolation{
			Rank: 0, Step: step, Check: "energy-drift",
			Detail: fmt.Sprintf("total energy %g drifted from %g (ceiling %g relative)", energy, p.guardE0, drift),
		})
	}
}

// gatherFinal assembles the global final state on rank 0.
func (p *pe) gatherFinal(res *Result) {
	mine := make([]particle.One, p.set.Len())
	for i := range mine {
		mine[i] = particle.One{ID: p.set.ID[i], Pos: p.set.Pos[i], Vel: p.set.Vel[i]}
	}
	sort.Slice(mine, func(a, b int) bool { return mine[a].ID < mine[b].ID })
	all := p.c.Allgather(mine)
	if p.c.Rank() != 0 {
		return
	}
	final := &particle.Set{}
	for _, a := range all {
		for _, one := range a.([]particle.One) {
			final.AddOne(one)
		}
	}
	final.SortByID()
	res.Final = final
}

func containsInt(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
