package core

import (
	"math"
	"testing"

	"permcell/internal/checkpoint"
	"permcell/internal/space"
	"permcell/internal/workload"
)

// stepsEqualDeterministic compares the deterministic fields of two step
// records (wall-clock fields differ between any two runs).
func stepsEqualDeterministic(a, b StepStats) bool {
	return a.Step == b.Step &&
		a.WorkMax == b.WorkMax && a.WorkAve == b.WorkAve && a.WorkMin == b.WorkMin &&
		a.Moved == b.Moved &&
		a.TotalEnergy == b.TotalEnergy && a.Temperature == b.Temperature &&
		a.Conc == b.Conc
}

func blobSystem(t *testing.T, nc int) (workload.System, space.Grid) {
	t.Helper()
	// Clustered density: creates the load imbalance that makes DLB move
	// columns, so the snapshot captures a mid-flight ownership state.
	l := float64(nc) * 2.5
	n := int(math.Round(0.3 * l * l * l))
	rho := float64(n) / (l * l * l) // box side exactly nc cells
	sys, err := workload.BlobGas(n, rho, 0.722, 0.5, 4.0, 31)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func TestSnapshotResumeBitIdenticalDLB(t *testing.T) {
	sys, g := blobSystem(t, 6)
	cfg := baseConfig(g, 4)
	cfg.DLB = true
	cfg.Verify = true
	const b = 10 // snapshot point; total run is 2b

	golden, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Step(2 * b); err != nil {
		t.Fatal(err)
	}
	gRes, err := golden.Finish()
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Step(b); err != nil {
		t.Fatal(err)
	}
	st, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != b {
		t.Fatalf("snapshot at step %d, want %d", st.Step, b)
	}
	lent := 0
	layout, _ := cfg.Layout()
	for r := range st.Frames {
		for _, col := range st.Frames[r].Cols {
			if layout.OwnerOf(col) != r {
				lent++
			}
		}
	}
	if lent == 0 {
		t.Fatal("test not exercising DLB: no column lent at the snapshot point")
	}

	// The engine stays usable after a snapshot: finishing the run from the
	// same engine must still match the golden run exactly.
	if err := first.Step(b); err != nil {
		t.Fatal(err)
	}
	fRes, err := first.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(fRes.Stats) != len(gRes.Stats) {
		t.Fatalf("stats length %d vs %d", len(fRes.Stats), len(gRes.Stats))
	}
	for i := range gRes.Stats {
		if !stepsEqualDeterministic(fRes.Stats[i], gRes.Stats[i]) {
			t.Fatalf("snapshot perturbed the run at record %d", i)
		}
	}

	// Restore into a fresh engine and finish: trace and final state must be
	// bit-identical to the golden run's tail.
	rcfg := cfg
	rcfg.Restore = st
	resumed, err := NewEngine(rcfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.AbsStep() != b {
		t.Fatalf("restored AbsStep %d, want %d", resumed.AbsStep(), b)
	}
	if err := resumed.Step(b); err != nil {
		t.Fatal(err)
	}
	rRes, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tail := gRes.Stats[len(gRes.Stats)-len(rRes.Stats):]
	for i := range tail {
		if !stepsEqualDeterministic(rRes.Stats[i], tail[i]) {
			t.Fatalf("resumed trace diverged at record %d (step %d):\n got %+v\nwant %+v",
				i, rRes.Stats[i].Step, rRes.Stats[i], tail[i])
		}
	}
	if rRes.Final.Len() != gRes.Final.Len() {
		t.Fatalf("final count %d vs %d", rRes.Final.Len(), gRes.Final.Len())
	}
	for i := range gRes.Final.ID {
		if rRes.Final.ID[i] != gRes.Final.ID[i] ||
			rRes.Final.Pos[i] != gRes.Final.Pos[i] ||
			rRes.Final.Vel[i] != gRes.Final.Vel[i] {
			t.Fatalf("final state not bit-identical at particle %d", i)
		}
	}
	if rRes.CommMsgs <= st.CommMsgs {
		t.Fatalf("comm counters did not continue: %d after restore from %d", rRes.CommMsgs, st.CommMsgs)
	}
}

func TestSnapshotResumeOneShotRun(t *testing.T) {
	// Config.Restore also works through the one-shot Run path.
	sys, g := blobSystem(t, 6)
	cfg := baseConfig(g, 4)
	cfg.DLB = true
	const b = 8

	gRes, err := Run(cfg, sys, 2*b)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(b); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Restore = st
	rRes, err := Run(rcfg, sys, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rRes.Stats {
		want := gRes.Stats[b+i]
		if !stepsEqualDeterministic(rRes.Stats[i], want) {
			t.Fatalf("one-shot resume diverged at step %d", rRes.Stats[i].Step)
		}
	}
	for i := range gRes.Final.ID {
		if rRes.Final.Pos[i] != gRes.Final.Pos[i] || rRes.Final.Vel[i] != gRes.Final.Vel[i] {
			t.Fatalf("one-shot resume final state differs at particle %d", i)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	sys, g := blobSystem(t, 6)
	cfg := baseConfig(g, 4)
	cfg.DLB = true

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}

	// Wrong rank count.
	bad := *st
	bad.Frames = st.Frames[:3]
	cfg.Restore = &bad
	if _, err := NewEngine(cfg, sys); err == nil {
		t.Error("frame/rank mismatch accepted")
	}

	// Duplicate column hosting breaks the global partition.
	dup := *st
	dup.Frames = append([]checkpoint.Frame(nil), st.Frames...)
	dup.Frames[1].Cols = append(append([]int(nil), st.Frames[1].Cols...), st.Frames[0].Cols[0])
	cfg.Restore = &dup
	if _, err := NewEngine(cfg, sys); err == nil {
		t.Error("doubly-hosted column accepted")
	}

	// A missing column leaves the partition incomplete.
	missing := *st
	missing.Frames = append([]checkpoint.Frame(nil), st.Frames...)
	missing.Frames[2] = st.Frames[2]
	missing.Frames[2].Cols = st.Frames[2].Cols[:len(st.Frames[2].Cols)-1]
	cfg.Restore = &missing
	if _, err := NewEngine(cfg, sys); err == nil {
		t.Error("unhosted column accepted")
	}
}
