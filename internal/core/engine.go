package core

import (
	"fmt"

	"permcell/internal/comm"
	"permcell/internal/potential"
	"permcell/internal/workload"
)

// Engine is the stepwise form of Run: the PE goroutines are spawned once
// and then advanced in caller-controlled batches, so a driver can stream
// statistics, checkpoint, or stop early. The physics is identical to Run —
// the same per-PE loop body executes, commanded over per-rank channels
// instead of a fixed step count — so a given Config, system and total step
// count produce bit-identical results either way.
//
// An Engine is not safe for concurrent use. Finish must be called exactly
// once to release the PE goroutines, even when abandoning the run early.
type Engine struct {
	cfg     Config
	world   *comm.World
	res     *Result
	cmd     []chan int
	ack     chan struct{}
	runDone chan struct{}
	batch   chan struct{} // in-flight batch completion (kept for salvage)
	stepped int
	err     error
	done    bool
	finRes  *Result
	finErr  error
}

// NewEngine validates cfg, distributes sys and starts the PE goroutines.
// They compute the step-0 forces and then idle awaiting the first Step.
// The input system is not modified.
func NewEngine(cfg Config, sys workload.System) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 1
	}
	layout, err := cfg.Layout()
	if err != nil {
		return nil, err
	}
	var opts []comm.Option
	if cfg.InboxCap > 0 {
		opts = append(opts, comm.WithInboxCapacity(cfg.InboxCap))
	}
	if cfg.Faults != nil {
		opts = append(opts, comm.WithFaults(*cfg.Faults))
	}
	if cfg.Watchdog > 0 {
		// Batch-scoped watching: the whole-run watchdog of Run would see
		// the idle gaps between Step calls as stalls.
		opts = append(opts, comm.WithTracking())
	}
	world, err := comm.NewWorld(cfg.P, opts...)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		world:   world,
		res:     &Result{M: layout.M},
		cmd:     make([]chan int, cfg.P),
		ack:     make(chan struct{}, cfg.P),
		runDone: make(chan struct{}),
	}
	for i := range e.cmd {
		e.cmd[i] = make(chan int, 1)
	}
	go func() {
		defer close(e.runDone)
		world.Run(func(c *comm.Comm) {
			newPE(c, &e.cfg, layout, sys).runStepwise(e.cmd[c.Rank()], e.ack, e.res)
		})
	}()

	// The step-0 force computation (init) involves communication; watch it
	// like a batch so a hang there is reported, not waited out. The PEs
	// signal readiness implicitly: they only touch cmd after init, so the
	// first Step would queue behind it anyway. Nothing to wait for here.
	return e, nil
}

// Step advances the simulation by n time steps and blocks until every PE
// has completed the batch. Under a positive cfg.Watchdog a communication
// stall inside the batch returns a *DeadlockError instead of hanging; the
// engine is then unusable (its ranks are left blocked, as after a real
// deadlock).
func (e *Engine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if e.done {
		return fmt.Errorf("core: Step after Finish")
	}
	if n < 0 {
		return fmt.Errorf("core: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	for _, ch := range e.cmd {
		ch <- n
	}
	done := make(chan struct{})
	go func() {
		for range e.cmd {
			<-e.ack
		}
		close(done)
	}()
	e.batch = done
	if err := e.world.WatchSection(e.cfg.Watchdog, done); err != nil {
		e.err = err
		return err
	}
	e.stepped += n
	return nil
}

// Stepped returns the number of time steps advanced so far.
func (e *Engine) Stepped() int { return e.stepped }

// Stats returns the per-step records collected so far (empty when
// cfg.DiscardStats is set). The slice is live: it must only be read
// between Step calls, while the PEs are idle, and grows with each batch.
func (e *Engine) Stats() []StepStats { return e.res.Stats }

// Finish releases the PE goroutines, gathers the final global state and
// returns the completed Result. Finish is idempotent: repeated calls return
// the same (Result, error) pair.
//
// After a Step error, Finish attempts a best-effort teardown: the error
// came from the batch watchdog, typically because an injected stall
// outlasted one watchdog period, and the ranks usually drain the batch once
// the stall clears. Finish waits for the in-flight batch and the shutdown
// under an extended grace (10x the watchdog); on recovery it returns the
// partial Result together with the original Step error, so callers can keep
// the statistics collected before the failure. Only a true deadlock (the
// grace also expires) returns a nil Result, leaving the rank goroutines
// blocked — they cannot be preempted, exactly as after MPI_Abort.
func (e *Engine) Finish() (*Result, error) {
	if e.done {
		return e.finRes, e.finErr
	}
	e.done = true
	e.finRes, e.finErr = e.finish()
	return e.finRes, e.finErr
}

func (e *Engine) finish() (*Result, error) {
	watch := e.cfg.Watchdog
	if e.err != nil {
		// Salvage: give the stalled batch an extended grace to drain.
		watch = 10 * e.cfg.Watchdog
		if e.batch != nil {
			if werr := e.world.WatchSection(watch, e.batch); werr != nil {
				return nil, e.err
			}
		}
	}
	for _, ch := range e.cmd {
		ch <- -1
	}
	if werr := e.world.WatchSection(watch, e.runDone); werr != nil {
		if e.err != nil {
			return nil, e.err
		}
		e.err = werr
		return nil, werr
	}
	e.res.CommMsgs, e.res.CommBytes = e.world.Stats()
	e.res.Faults = e.world.FaultStats()
	e.res.FaultEvents = e.world.FaultEvents()
	return e.res, e.err
}
