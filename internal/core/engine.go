package core

import (
	"fmt"
	"time"

	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/potential"
	"permcell/internal/supervise"
	"permcell/internal/workload"
)

// Engine is the stepwise form of Run: the PE goroutines are spawned once
// and then advanced in caller-controlled batches, so a driver can stream
// statistics, checkpoint, or stop early. The physics is identical to Run —
// the same per-PE loop body executes, commanded over per-rank channels
// instead of a fixed step count — so a given Config, system and total step
// count produce bit-identical results either way.
//
// An Engine is not safe for concurrent use. Finish must be called exactly
// once to release the PE goroutines, even when abandoning the run early.
type Engine struct {
	cfg     Config
	world   *comm.World
	res     *Result
	cmd     []chan int
	ack     chan struct{}
	runDone chan struct{}
	batch   chan struct{} // in-flight batch completion (kept for salvage)
	stepped int
	err     error
	done    bool
	finRes  *Result
	finErr  error

	// trap converts PE-goroutine panics into typed failures: a crashed or
	// guard-tripped rank surfaces as a prompt *supervise.RankFailure /
	// *supervise.GuardViolation from Step instead of taking down the process
	// (or waiting out the watchdog).
	trap *supervise.Trap

	snap []checkpoint.Frame // per-rank snapshot slots (written on cmdSnapshot)
	// base carries the restore point: the absolute step the engine started
	// at and the interrupted run's cumulative comm counters, so snapshots
	// and the final Result continue the original run's totals.
	base                int
	baseMsgs, baseBytes int64
}

// NewEngine validates cfg, distributes sys and starts the PE goroutines.
// They compute the step-0 forces and then idle awaiting the first Step.
// The input system is not modified.
func NewEngine(cfg Config, sys workload.System) (*Engine, error) {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 1
	}
	layout, err := cfg.Layout()
	if err != nil {
		return nil, err
	}
	var opts []comm.Option
	if cfg.InboxCap > 0 {
		opts = append(opts, comm.WithInboxCapacity(cfg.InboxCap))
	}
	if cfg.Faults != nil {
		opts = append(opts, comm.WithFaults(*cfg.Faults))
	}
	if cfg.Watchdog > 0 {
		// Batch-scoped watching: the whole-run watchdog of Run would see
		// the idle gaps between Step calls as stalls.
		opts = append(opts, comm.WithTracking())
	}
	world, err := comm.NewWorld(cfg.P, opts...)
	if err != nil {
		return nil, err
	}

	hosts, err := restoreHosts(layout, cfg.Restore)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		world:   world,
		res:     &Result{M: layout.M},
		cmd:     make([]chan int, cfg.P),
		ack:     make(chan struct{}, cfg.P),
		runDone: make(chan struct{}),
		trap:    supervise.NewTrap(),
		snap:    make([]checkpoint.Frame, cfg.P),
	}
	if cfg.Restore != nil {
		e.base = cfg.Restore.Step
		e.baseMsgs = cfg.Restore.CommMsgs
		e.baseBytes = cfg.Restore.CommBytes
	}
	for i := range e.cmd {
		e.cmd[i] = make(chan int, 1)
	}
	go func() {
		defer close(e.runDone)
		world.Run(func(c *comm.Comm) {
			defer e.trap.Catch(c.Rank())
			newPE(c, &e.cfg, layout, sys, hosts).runStepwise(e.cmd[c.Rank()], e.ack, e.res, e.snap)
		})
	}()

	// The step-0 force computation (init) involves communication; watch it
	// like a batch so a hang there is reported, not waited out. The PEs
	// signal readiness implicitly: they only touch cmd after init, so the
	// first Step would queue behind it anyway. Nothing to wait for here.
	return e, nil
}

// awaitBatch waits for one batch of PE work under both failure detectors:
// the comm watchdog (timeout without progress) and the panic trap (a rank
// died). The trap wins ties — a dead rank wedges its peers, so a recorded
// failure explains an apparent deadlock and is the error the caller should
// see.
func awaitBatch(w *comm.World, timeout time.Duration, done <-chan struct{}, trap *supervise.Trap) error {
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		select {
		case <-done:
		case <-trap.Failed():
		}
	}()
	err := w.WatchSection(timeout, merged)
	if terr := trap.Err(); terr != nil {
		return terr
	}
	return err
}

// Step advances the simulation by n time steps and blocks until every PE
// has completed the batch. Under a positive cfg.Watchdog a communication
// stall inside the batch returns a *DeadlockError instead of hanging; a PE
// panic or guard violation returns the typed *supervise.RankFailure /
// *supervise.GuardViolation promptly. Either way the engine is then
// unusable (its surviving ranks are left blocked, as after a real
// deadlock); under a supervisor the run is rolled back to a checkpoint.
func (e *Engine) Step(n int) error {
	if e.err != nil {
		return e.err
	}
	if terr := e.trap.Err(); terr != nil {
		// A rank died during init or a prior batch's tail: fail fast
		// instead of queueing commands to a dead world.
		e.err = terr
		return terr
	}
	if e.done {
		return fmt.Errorf("core: Step after Finish")
	}
	if n < 0 {
		return fmt.Errorf("core: negative step count %d", n)
	}
	if n == 0 {
		return nil
	}
	for _, ch := range e.cmd {
		ch <- n
	}
	done := make(chan struct{})
	go func() {
		for range e.cmd {
			<-e.ack
		}
		close(done)
	}()
	e.batch = done
	if err := awaitBatch(e.world, e.cfg.Watchdog, done, e.trap); err != nil {
		e.err = err
		return err
	}
	e.stepped += n
	return nil
}

// Stepped returns the number of time steps advanced so far (this session
// only; a restored engine's absolute step is AbsStep).
func (e *Engine) Stepped() int { return e.stepped }

// AbsStep returns the absolute simulation step: the restore point plus the
// steps advanced this session.
func (e *Engine) AbsStep() int { return e.base + e.stepped }

// Snapshot takes a coordinated distributed snapshot at the current batch
// boundary: every PE receives the snapshot command, asserts its own
// communication state is quiesced, serializes its shard — particle arrays
// in live in-memory order plus its hosted-column set — and acknowledges;
// the driver then asserts no message is in flight anywhere and assembles
// the frames. The engine remains usable: Snapshot does not advance time
// and a following Step continues exactly as if no snapshot was taken.
func (e *Engine) Snapshot() (*checkpoint.EngineState, error) {
	if e.err != nil {
		return nil, e.err
	}
	if terr := e.trap.Err(); terr != nil {
		e.err = terr
		return nil, terr
	}
	if e.done {
		return nil, fmt.Errorf("core: Snapshot after Finish")
	}
	for _, ch := range e.cmd {
		ch <- cmdSnapshot
	}
	done := make(chan struct{})
	go func() {
		for range e.cmd {
			<-e.ack
		}
		close(done)
	}()
	if err := awaitBatch(e.world, e.cfg.Watchdog, done, e.trap); err != nil {
		e.err = err
		return nil, err
	}
	// All acks received: every PE passed its own quiesce check and wrote
	// its frame (the ack is the happens-before edge). The world-level check
	// covers the inboxes.
	if err := e.world.Quiesced(); err != nil {
		return nil, err
	}
	msgs, bytes := e.world.Stats()
	st := &checkpoint.EngineState{
		Step:      e.base + e.stepped,
		Frames:    make([]checkpoint.Frame, len(e.snap)),
		CommMsgs:  e.baseMsgs + msgs,
		CommBytes: e.baseBytes + bytes,
	}
	copy(st.Frames, e.snap)
	if err := st.Validate(e.cfg.P); err != nil {
		return nil, err
	}
	return st, nil
}

// Stats returns the per-step records collected so far (empty when
// cfg.DiscardStats is set). The slice is live: it must only be read
// between Step calls, while the PEs are idle, and grows with each batch.
func (e *Engine) Stats() []StepStats { return e.res.Stats }

// Finish releases the PE goroutines, gathers the final global state and
// returns the completed Result. Finish is idempotent: repeated calls return
// the same (Result, error) pair.
//
// After a Step error, Finish attempts a best-effort teardown: the error
// came from the batch watchdog, typically because an injected stall
// outlasted one watchdog period, and the ranks usually drain the batch once
// the stall clears. Finish waits for the in-flight batch and the shutdown
// under an extended grace (10x the watchdog); on recovery it returns the
// partial Result together with the original Step error, so callers can keep
// the statistics collected before the failure. Only a true deadlock (the
// grace also expires) returns a nil Result, leaving the rank goroutines
// blocked — they cannot be preempted, exactly as after MPI_Abort.
func (e *Engine) Finish() (*Result, error) {
	if e.done {
		return e.finRes, e.finErr
	}
	e.done = true
	e.finRes, e.finErr = e.finish()
	return e.finRes, e.finErr
}

func (e *Engine) finish() (*Result, error) {
	if terr := e.trap.Err(); terr != nil {
		// A rank died: the world can never complete a collective shutdown,
		// so abandon it outright (the MPI_Abort analogue). No partial
		// Result either — surviving ranks may still be mid-batch appending
		// to it concurrently.
		if e.err == nil {
			e.err = terr
		}
		return nil, e.err
	}
	watch := e.cfg.Watchdog
	if e.err != nil {
		// Salvage: give the stalled batch an extended grace to drain.
		watch = 10 * e.cfg.Watchdog
		if e.batch != nil {
			if werr := e.world.WatchSection(watch, e.batch); werr != nil {
				return nil, e.err
			}
		}
	}
	for _, ch := range e.cmd {
		ch <- cmdFinish
	}
	if werr := e.world.WatchSection(watch, e.runDone); werr != nil {
		if e.err != nil {
			return nil, e.err
		}
		e.err = werr
		return nil, werr
	}
	e.res.CommMsgs, e.res.CommBytes = e.world.Stats()
	e.res.CommMsgs += e.baseMsgs
	e.res.CommBytes += e.baseBytes
	e.res.Faults = e.world.FaultStats()
	e.res.FaultEvents = e.world.FaultEvents()
	return e.res, e.err
}
