package core

import (
	"testing"
	"time"
)

// TestEngineMatchesRun drives the stepwise engine over uneven batches and
// demands the exact Result that the one-shot Run produces for the same
// total step count: bit-identical final state and per-step stats.
func TestEngineMatchesRun(t *testing.T) {
	sys, g := testSystem(t, 6, 0.4, 41)
	cfg := baseConfig(g, 9)
	cfg.DLB = true
	const steps = 12

	ref, err := Run(cfg, sys, steps)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 0, 4, 7} { // 12 total, with a no-op batch
		if err := eng.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stepped() != steps {
		t.Fatalf("Stepped() = %d, want %d", eng.Stepped(), steps)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Stats) != len(ref.Stats) {
		t.Fatalf("stats length %d vs %d", len(res.Stats), len(ref.Stats))
	}
	for i := range ref.Stats {
		a, b := res.Stats[i], ref.Stats[i]
		// Wall-clock fields are nondeterministic; everything else must be
		// bit-identical.
		if a.Step != b.Step || a.WorkMax != b.WorkMax || a.WorkAve != b.WorkAve ||
			a.WorkMin != b.WorkMin || a.Moved != b.Moved ||
			a.TotalEnergy != b.TotalEnergy || a.Temperature != b.Temperature ||
			a.Conc != b.Conc {
			t.Fatalf("step %d stats diverged: stepwise %+v vs run %+v", b.Step, a, b)
		}
	}
	if res.Final.Len() != ref.Final.Len() {
		t.Fatalf("N %d vs %d", res.Final.Len(), ref.Final.Len())
	}
	for i := range ref.Final.Pos {
		if res.Final.Pos[i] != ref.Final.Pos[i] || res.Final.Vel[i] != ref.Final.Vel[i] {
			t.Fatalf("particle %d state differs between stepwise and Run", ref.Final.ID[i])
		}
	}
	if res.CommMsgs == 0 {
		t.Error("no comm stats collected")
	}
}

// TestEngineStatsBetweenBatches checks that stats accumulate incrementally
// and are safely readable while the PEs idle between batches.
func TestEngineStatsBetweenBatches(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 42)
	cfg := baseConfig(g, 4)
	cfg.Watchdog = time.Minute // exercise the batch-scoped watchdog path
	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(3); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Stats()); n != 3 {
		t.Fatalf("after 3 steps: %d stats", n)
	}
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Stats()); n != 5 {
		t.Fatalf("after 5 steps: %d stats", n)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil {
		t.Fatal("no final state")
	}
	// Finish is idempotent; Step afterwards is an error.
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(1); err == nil {
		t.Error("Step after Finish accepted")
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 43)
	cfg := baseConfig(g, 5) // not a perfect square
	if _, err := NewEngine(cfg, sys); err == nil {
		t.Error("non-square P accepted")
	}
	cfg = baseConfig(g, 4)
	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(-1); err == nil {
		t.Error("negative batch accepted")
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
}
