package core

import (
	"encoding/gob"

	"permcell/internal/dlb"
	"permcell/internal/particle"
)

// The PE protocol payloads travel as `any` through the comm substrate; on
// the TCP transport they are gob-encoded inside an envelope, which needs
// every concrete payload type registered. Registration is unconditional
// (init) and costs nothing on in-process runs.
//
// The full payload inventory of the per-step protocol:
//
//	tagLoad      float64           (basic type, pre-registered by gob)
//	tagDecision  []dlb.Decision
//	tagTransfer  colTransfer
//	tagMigrate   []particle.One
//	tagNeed      []int
//	tagHalo      []cellBlock
//	collectives  loadCensus, peRecord, []particle.One (gatherFinal),
//	             and []any (the broadcast leg of Allgather)
func init() {
	gob.Register([]int(nil))
	gob.Register([]any(nil))
	gob.Register([]float64(nil))
	gob.Register([]dlb.Decision(nil))
	gob.Register([]particle.One(nil))
	gob.Register(colTransfer{})
	gob.Register([]cellBlock(nil))
	gob.Register(loadCensus{})
	gob.Register(peRecord{})
}
