package core

import (
	"errors"
	"testing"

	"permcell/internal/supervise"
)

// TestSabotagePanicBecomesRankFailure: an injected PE panic must surface
// from Step as a typed *supervise.RankFailure instead of killing the
// process, and Finish must return the same error without hanging.
func TestSabotagePanicBecomesRankFailure(t *testing.T) {
	sys, g := testSystem(t, 6, 0.4, 7)
	cfg := baseConfig(g, 4)
	cfg.Sabotage = &supervise.Sabotage{Kind: supervise.SabotagePanic, Step: 3, Rank: 2}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Step(5)
	var rf *supervise.RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("Step error = %v, want *supervise.RankFailure", err)
	}
	if rf.Rank != 2 {
		t.Errorf("failed rank = %d, want 2", rf.Rank)
	}
	if rf.Stack == "" {
		t.Error("rank failure carries no stack trace")
	}
	if _, ferr := eng.Finish(); !errors.As(ferr, &rf) {
		t.Fatalf("Finish error = %v, want the rank failure", ferr)
	}
}

// TestSabotageNaNTripsFiniteGuard: an injected NaN velocity must be caught
// by the physics guard at the same step's census, as a typed
// *supervise.GuardViolation, before any poisoned record is emitted.
func TestSabotageNaNTripsFiniteGuard(t *testing.T) {
	sys, g := testSystem(t, 6, 0.4, 7)
	cfg := baseConfig(g, 4)
	cfg.Guard = &supervise.GuardConfig{}
	cfg.Sabotage = &supervise.Sabotage{Kind: supervise.SabotageNaN, Step: 3, Rank: 1}

	eng, err := NewEngine(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Step(5)
	var gv *supervise.GuardViolation
	if !errors.As(err, &gv) {
		t.Fatalf("Step error = %v, want *supervise.GuardViolation", err)
	}
	if gv.Check != "finite" {
		t.Errorf("guard check = %q, want \"finite\"", gv.Check)
	}
	if gv.Step != 3 {
		t.Errorf("violation step = %d, want 3", gv.Step)
	}
	for _, st := range eng.Stats() {
		if st.Step >= 3 {
			t.Fatalf("poisoned step %d leaked into stats", st.Step)
		}
	}
	if _, ferr := eng.Finish(); !errors.As(ferr, &gv) {
		t.Fatalf("Finish error = %v, want the guard violation", ferr)
	}
}

// TestGuardsAreTraceNeutral: enabling the guards must not change a healthy
// run's per-step records (guards only observe; they never alter physics).
func TestGuardsAreTraceNeutral(t *testing.T) {
	sys, g := testSystem(t, 6, 0.4, 7)
	cfg := baseConfig(g, 4)
	plain, err := Run(cfg, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Guard = &supervise.GuardConfig{}
	guarded, err := Run(cfg, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stats) != len(guarded.Stats) {
		t.Fatalf("stats length %d vs %d", len(plain.Stats), len(guarded.Stats))
	}
	for i := range plain.Stats {
		a, b := plain.Stats[i], guarded.Stats[i]
		if a.Step != b.Step || a.TotalEnergy != b.TotalEnergy ||
			a.Temperature != b.Temperature || a.Moved != b.Moved ||
			a.WorkMax != b.WorkMax || a.Conc != b.Conc {
			t.Fatalf("step %d diverged under guards: %+v vs %+v", a.Step, a, b)
		}
	}
}
