package core

import (
	"math"
	"testing"

	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// testSystem builds a lattice gas whose box is exactly nc cells of side 2.5
// across, so grids conform to any sqrt(P) dividing nc.
func testSystem(t *testing.T, nc int, rho float64, seed uint64) (workload.System, space.Grid) {
	t.Helper()
	l := float64(nc) * 2.5
	n := int(math.Round(rho * l * l * l))
	sys, err := workload.LatticeGas(n, rho, 0.722, seed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.Box.L.X-l) > 1e-9 {
		t.Fatalf("box side %v, want %v", sys.Box.L.X, l)
	}
	g, err := space.NewGridWithDims(sys.Box, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func baseConfig(g space.Grid, p int) Config {
	return Config{
		P:            p,
		Grid:         g,
		Pair:         potential.NewPaperLJ(),
		Dt:           1e-4,
		Tref:         0.722,
		RescaleEvery: 50,
	}
}

func TestConfigValidation(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 1)
	_ = sys
	cfg := baseConfig(g, 5)
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("non-square P accepted")
	}
	cfg = baseConfig(g, 9) // 4 % 3 != 0
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("indivisible grid accepted")
	}
	cfg = baseConfig(g, 4)
	cfg.Dt = 0
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("dt=0 accepted")
	}
	cfg = baseConfig(g, 4)
	cfg.Pair = nil
	if _, err := Run(cfg, sys, 1); err == nil {
		t.Error("nil potential accepted")
	}
}

func serialRun(t *testing.T, sys workload.System, g space.Grid, steps int) *mdserial.Engine {
	t.Helper()
	e, err := mdserial.New(mdserial.Config{
		Box:          sys.Box,
		Pair:         potential.NewPaperLJ(),
		Dt:           1e-4,
		Tref:         0.722,
		RescaleEvery: 50,
		Grid:         g,
	}, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	e.Run(steps)
	return e
}

func TestParallelMatchesSerialDDM(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 21)
	const steps = 10

	ser := serialRun(t, sys, g, steps)

	cfg := baseConfig(g, 4)
	res, err := Run(cfg, sys, steps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Fatalf("parallel lost particles: %d vs %d", res.Final.Len(), sys.Set.Len())
	}
	serSet := ser.Set()
	serSet.SortByID()
	for i := range res.Final.ID {
		if res.Final.ID[i] != serSet.ID[i] {
			t.Fatalf("ID mismatch at %d", i)
		}
		if d := res.Final.Pos[i].Dist(serSet.Pos[i]); d > 1e-8 {
			t.Fatalf("particle %d position diverged by %v", res.Final.ID[i], d)
		}
		if d := res.Final.Vel[i].Dist(serSet.Vel[i]); d > 1e-6 {
			t.Fatalf("particle %d velocity diverged by %v", res.Final.ID[i], d)
		}
	}
	// Global energy must agree with the serial engine.
	last := res.Stats[len(res.Stats)-1]
	if rel := math.Abs(last.TotalEnergy-ser.TotalEnergy()) / (1 + math.Abs(ser.TotalEnergy())); rel > 1e-8 {
		t.Errorf("energy: parallel %v vs serial %v", last.TotalEnergy, ser.TotalEnergy())
	}
}

func TestParallelMatchesSerialWithDLB(t *testing.T) {
	// DLB moves cells between PEs but must not change the physics.
	sys, g := testSystem(t, 6, 0.4, 22)
	const steps = 10

	ser := serialRun(t, sys, g, steps)

	cfg := baseConfig(g, 9)
	cfg.DLB = true
	cfg.DLBHysteresis = 0 // maximum movement
	res, err := Run(cfg, sys, steps)
	if err != nil {
		t.Fatal(err)
	}
	serSet := ser.Set()
	serSet.SortByID()
	if res.Final.Len() != serSet.Len() {
		t.Fatalf("N: %d vs %d", res.Final.Len(), serSet.Len())
	}
	// DLB changes per-PE force summation order, so floating-point roundoff
	// diverges chaotically; after 10 steps agreement to ~1e-5 sigma shows
	// the trajectories are physically identical.
	for i := range res.Final.ID {
		if d := res.Final.Pos[i].Dist(serSet.Pos[i]); d > 1e-5 {
			t.Fatalf("particle %d diverged by %v with DLB", res.Final.ID[i], d)
		}
	}
}

func TestDLBMovesColumnsUnderImbalance(t *testing.T) {
	// A concentrated blob plus an attracting well forces load imbalance;
	// DLB must respond by moving columns.
	nc := 6
	l := float64(nc) * 2.5
	n := int(math.Round(0.3 * l * l * l))
	rho := float64(n) / (l * l * l) // box side exactly nc cells
	sys, err := workload.BlobGas(n, rho, 0.722, 0.7, 4.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := space.NewGridWithDims(sys.Box, nc, nc, nc)
	cfg := baseConfig(g, 9)
	cfg.DLB = true
	cfg.Ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: 1, L: sys.Box.L}
	res, err := Run(cfg, sys, 30)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, st := range res.Stats {
		moved += st.Moved
	}
	if moved == 0 {
		t.Error("DLB never moved a column despite heavy imbalance")
	}
}

func TestParticleConservationLongRun(t *testing.T) {
	sys, g := testSystem(t, 6, 0.256, 24)
	cfg := baseConfig(g, 9)
	cfg.DLB = true
	cfg.Ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: 0.5, L: sys.Box.L}
	res, err := Run(cfg, sys, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Fatalf("particle count %d -> %d", sys.Set.Len(), res.Final.Len())
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Final.Pos {
		if !res.Final.Pos[i].IsFinite() || !res.Final.Vel[i].IsFinite() {
			t.Fatalf("particle %d non-finite", res.Final.ID[i])
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 25)
	cfg := baseConfig(g, 4)
	cfg.DLB = true
	r1, err := Run(cfg, sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Stats {
		if r1.Stats[i].WorkMax != r2.Stats[i].WorkMax ||
			r1.Stats[i].Moved != r2.Stats[i].Moved {
			t.Fatalf("step %d stats diverged between identical runs", i)
		}
	}
	for i := range r1.Final.Pos {
		if r1.Final.Pos[i] != r2.Final.Pos[i] {
			t.Fatalf("particle %d position differs between identical runs", r1.Final.ID[i])
		}
	}
}

func TestStatsCensus(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 26)
	cfg := baseConfig(g, 4)
	res, err := Run(cfg, sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 5 {
		t.Fatalf("stats = %d records", len(res.Stats))
	}
	for _, st := range res.Stats {
		if st.Conc.C != g.NumCells() {
			t.Errorf("step %d: census C = %d, want %d", st.Step, st.Conc.C, g.NumCells())
		}
		if st.WorkMax < st.WorkAve || st.WorkAve < st.WorkMin || st.WorkMin < 0 {
			t.Errorf("step %d: work ordering broken: %v %v %v", st.Step, st.WorkMax, st.WorkAve, st.WorkMin)
		}
		if st.Temperature <= 0 {
			t.Errorf("step %d: temperature %v", st.Step, st.Temperature)
		}
	}
}

func TestStatsEvery(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 27)
	cfg := baseConfig(g, 4)
	cfg.StatsEvery = 5
	res, err := Run(cfg, sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("StatsEvery=5 over 20 steps: %d records, want 4", len(res.Stats))
	}
}

func TestOnStepCallback(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 28)
	cfg := baseConfig(g, 4)
	var steps []int
	cfg.OnStep = func(st StepStats) { steps = append(steps, st.Step) }
	if _, err := Run(cfg, sys, 3); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 1 || steps[2] != 3 {
		t.Errorf("callback steps = %v", steps)
	}
}

func TestThermostatParallel(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 29)
	cfg := baseConfig(g, 4)
	cfg.RescaleEvery = 10
	res, err := Run(cfg, sys, 10)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Stats[len(res.Stats)-1]
	if math.Abs(last.Temperature-0.722) > 1e-9 {
		t.Errorf("T after rescale = %v", last.Temperature)
	}
}

func TestImbalanceMetric(t *testing.T) {
	st := StepStats{WorkMax: 10, WorkAve: 5, WorkMin: 2}
	if got := st.Imbalance(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("Imbalance = %v", got)
	}
	if (StepStats{}).Imbalance() != 0 {
		t.Error("zero stats imbalance not 0")
	}
}

func TestCommStatsRecorded(t *testing.T) {
	sys, g := testSystem(t, 4, 0.256, 30)
	cfg := baseConfig(g, 4)
	res, err := Run(cfg, sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommMsgs == 0 {
		t.Error("no messages recorded")
	}
}

func TestDLBEveryInterval(t *testing.T) {
	sys, g := testSystem(t, 6, 0.4, 32)
	cfg := baseConfig(g, 9)
	cfg.DLB = true
	cfg.DLBEvery = 5
	res, err := Run(cfg, sys, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Moves may only happen on steps 1, 6, 11 (1-based, (step-1)%5 == 0).
	for _, st := range res.Stats {
		if st.Moved > 0 && (st.Step-1)%5 != 0 {
			t.Errorf("column moved at step %d with DLBEvery=5", st.Step)
		}
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Error("particles lost with DLBEvery")
	}
}

func TestWallTimeMetricRuns(t *testing.T) {
	// Wall-clock decisions are nondeterministic but must be protocol-legal
	// and conserve particles.
	sys, g := testSystem(t, 6, 0.4, 33)
	cfg := baseConfig(g, 9)
	cfg.DLB = true
	cfg.Metric = WallTime
	res, err := Run(cfg, sys, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Fatalf("particle count %d -> %d", sys.Set.Len(), res.Final.Len())
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargerTorus(t *testing.T) {
	// P=16 (s=4): exercises ledgers whose neighbor sets do not cover the
	// whole torus, unlike the P=4/P=9 cases.
	sys, g := testSystem(t, 8, 0.3, 34)
	cfg := baseConfig(g, 16)
	cfg.DLB = true
	cfg.Ext = potential.HarmonicWell{Center: sys.Box.L.Scale(0.5), K: 1, L: sys.Box.L}
	res, err := Run(cfg, sys, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != sys.Set.Len() {
		t.Fatalf("particle count %d -> %d", sys.Set.Len(), res.Final.Len())
	}
}

func TestHeadlineDLBBeatsDDM(t *testing.T) {
	// The paper's Fig. 5 claim in miniature: on a condensing system, the
	// final work imbalance under DLB-DDM is lower than under plain DDM.
	nc := 6
	l := float64(nc) * 2.5
	n := int(math.Round(0.3 * l * l * l))
	rho := float64(n) / (l * l * l) // box side exactly nc cells
	mk := func() workload.System {
		sys, err := workload.BlobGas(n, rho, 0.722, 0.5, 4.0, 31)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	g, _ := space.NewGridWithDims(mk().Box, nc, nc, nc)
	well := potential.HarmonicWell{Center: vec.New(l/2, l/2, l/2), K: 1, L: vec.New(l, l, l)}

	cfgDDM := baseConfig(g, 9)
	cfgDDM.Ext = well
	resDDM, err := Run(cfgDDM, mk(), 100)
	if err != nil {
		t.Fatal(err)
	}
	cfgDLB := cfgDDM
	cfgDLB.DLB = true
	resDLB, err := Run(cfgDLB, mk(), 100)
	if err != nil {
		t.Fatal(err)
	}
	tail := func(stats []StepStats) float64 {
		var s float64
		k := 0
		for _, st := range stats[len(stats)-20:] {
			s += st.Imbalance()
			k++
		}
		return s / float64(k)
	}
	iDDM, iDLB := tail(resDDM.Stats), tail(resDLB.Stats)
	if iDLB >= iDDM {
		t.Errorf("DLB imbalance %v >= DDM imbalance %v", iDLB, iDDM)
	}
}
