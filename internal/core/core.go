// Package core is the parallel molecular dynamics engine of the paper:
// square-pillar domain decomposition (DDM) over a sqrt(P) x sqrt(P) torus of
// PEs, optionally with the permanent-cell dynamic load balancing method
// (DLB-DDM). Each PE runs as a goroutine over the message-passing substrate
// in internal/comm; every per-step exchange (loads, DLB decisions, cell
// transfers, particle migration, halo pull) involves only the PE's 8 torus
// neighbors, exactly as on the T3E.
//
// Per time step each PE executes:
//
//  1. DLB (optional): exchange last-step force loads with the 8 neighbors,
//     run the three-case protocol (internal/dlb), broadcast the decision,
//     and transfer the moved column's particles.
//  2. Velocity-Verlet half kick and drift.
//  3. Migration: particles that drifted into cells hosted elsewhere are
//     sent to their new host.
//  4. Halo pull: request the 26-neighborhood cell contents this PE does not
//     host, answer the neighbors' requests, compute forces.
//  5. Second half kick; velocity rescaling to Tref every RescaleEvery steps.
//
// The force-computation load that drives both the DLB decisions and the
// reported Fmax/Fave/Fmin series is, by default, the deterministic count of
// pair-distance evaluations (the quantity MPI_Wtime measured on the T3E);
// wall-clock timing is recorded alongside and can be selected as the
// decision metric instead.
package core

import (
	"fmt"
	"math"
	"time"

	"permcell/internal/balance"
	"permcell/internal/checkpoint"
	"permcell/internal/comm"
	"permcell/internal/conc"
	"permcell/internal/dlb"
	"permcell/internal/metrics"
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/supervise"
	"permcell/internal/trace"
	"permcell/internal/workload"
)

// LoadMetric selects the quantity that drives DLB decisions.
type LoadMetric int

// Load metrics.
const (
	// WorkCount uses the number of pair-distance evaluations of the last
	// force computation. Deterministic: identical runs produce identical
	// DLB decisions, so experiments regenerate exactly.
	WorkCount LoadMetric = iota
	// WallTime uses measured wall-clock seconds of the last force
	// computation, as the paper's MPI_Wtime-based implementation did.
	WallTime
)

// Config describes one parallel run.
type Config struct {
	// P is the PE count; must be a perfect square >= 4.
	P int
	// Grid is the cell grid; Nx and Ny must equal m*sqrt(P) for integer m.
	Grid space.Grid
	// Pair is the interaction potential; cells must be at least as large as
	// its cut-off.
	Pair potential.Pair
	// Ext is an optional external field (nil for none).
	Ext potential.External
	// Dt is the time step.
	Dt float64
	// Tref and RescaleEvery configure the thermostat (RescaleEvery == 0
	// disables it).
	Tref         float64
	RescaleEvery int
	// Balancer is the pluggable load-balancing strategy driven at the DLB
	// cadence (nil = static DDM, unless the legacy DLB flag below selects
	// the permanent-cell reference balancer). All strategies execute their
	// moves through the same ledger/colTransfer machinery, so the
	// 8-neighbor exchange pattern and the transfer invariants (forces
	// carried, conservation, C' bound) hold for every implementation.
	Balancer balance.Balancer
	// DLB enables the permanent-cell dynamic load balancing.
	//
	// Deprecated: legacy switch, equivalent to setting Balancer to
	// balance.PermanentCell{Hysteresis: DLBHysteresis, Pick: DLBPick}.
	// Ignored when Balancer is set explicitly.
	DLB bool
	// DLBEvery runs the balancer exchange every k-th step (default 1 — the
	// paper's "every time step"; larger values are the frequency ablation).
	DLBEvery int
	// DLBHysteresis is the relative load gap required to move a column
	// (0 = paper-literal).
	//
	// Deprecated: folded into the permanent-cell balancer's config; only
	// consulted by the legacy DLB switch above.
	DLBHysteresis float64
	// DLBPick selects which candidate column moves.
	//
	// Deprecated: folded into the permanent-cell balancer's config; only
	// consulted by the legacy DLB switch above.
	DLBPick dlb.Strategy
	// Metric selects the DLB decision load metric.
	Metric LoadMetric
	// Shards is the per-PE force-kernel worker count (<= 1 = serial
	// kernel). Results are bit-deterministic for a given shard count but
	// differ between shard counts, so the value is part of the run identity
	// (trace headers record it).
	Shards int
	// OnStep, when non-nil, is invoked on rank 0 with each step's stats.
	OnStep func(StepStats)
	// StatsEvery controls how often concentration stats are computed
	// (they cost one small allgather; default 1 = every step). Negative
	// values are rejected at validation; 0 selects the default.
	StatsEvery int
	// Metrics enables the per-PE phase timing layer (internal/metrics):
	// every step's wall time is attributed to the phase taxonomy and
	// reduced into StepStats.Phases. Off, the PEs carry a nil timer and
	// pay one pointer test per phase boundary.
	Metrics bool
	// DiscardStats drops the per-step records from the Result after the
	// OnStep hook has seen them, so long streaming runs stay O(1) in
	// memory.
	DiscardStats bool

	// Faults, when non-nil, runs the whole exchange under the comm
	// fault-injection plan (chaos testing); payload transfers then go
	// through SendReliable with retry/backoff.
	Faults *comm.FaultPlan
	// Watchdog, when positive, runs under the comm deadlock watchdog: a
	// hang returns an error with a per-rank state dump after this much
	// progress-less time instead of blocking forever.
	Watchdog time.Duration
	// InboxCap overrides the comm inbox capacity (0 = comm default).
	InboxCap int
	// Verify enables per-step protocol invariant checks: per-PE ledger
	// invariants (permanent columns at home, hosts within the up-left
	// set, C' bound) plus the global checks — every column hosted exactly
	// once and the particle count conserved. Chaos runs set this.
	Verify bool
	// Guard, when non-nil and not Disabled, runs the cheap runtime physics
	// guards at the stats cadence: finite positions/velocities, particle
	// conservation and an energy-drift ceiling. A violation surfaces as a
	// typed *supervise.GuardViolation — raised before the offending step's
	// stats are emitted, so neither the trace nor a checkpoint sees the
	// corrupt state.
	Guard *supervise.GuardConfig
	// Sabotage, when non-nil, injects one scripted fault (a PE panic or a
	// NaN) for chaos-testing the recovery path. The pointer is shared
	// across engine incarnations so a post-rollback replay does not
	// re-fire it.
	Sabotage *supervise.Sabotage

	// Restore, when non-nil, starts the run from a distributed snapshot
	// instead of distributing sys: each PE takes its frame's particles in
	// their recorded order (array order determines force summation order,
	// so this is what makes the resumed trajectory bit-identical), the
	// ledgers are rebuilt from the frames' hosted-column sets, and step
	// numbering continues from Restore.Step — keeping the thermostat, DLB
	// and stats cadences aligned with the uninterrupted run. The physics
	// Config fields must match the checkpointed run's exactly.
	Restore *checkpoint.EngineState
}

// StepStats is the per-step record the paper's figures are built from.
type StepStats struct {
	Step int

	// Force-computation load across PEs in pair evaluations (the
	// deterministic work metric): the paper's Fmax, Fave, Fmin.
	WorkMax, WorkAve, WorkMin float64
	// The same in measured wall seconds.
	WallMax, WallAve, WallMin float64
	// StepWallMax is the slowest PE's whole-step wall time (the paper's
	// Tt); StepWallAve is the PE average, the reference the phase
	// breakdown must sum to.
	StepWallMax, StepWallAve float64

	// Phases is the per-phase timing/traffic breakdown across PEs,
	// populated only under Config.Metrics (all-zero otherwise).
	Phases metrics.Breakdown

	// Moved is the number of columns transferred by the balancer this
	// step; MovedBytes is the particle payload those transfers carried
	// (the migration-traffic counters of the cross-balancer comparison).
	Moved      int
	MovedBytes int64

	// Balancer names the active balancing strategy ("none" for static
	// DDM), so traces and run headers carry the scheme identity.
	Balancer string

	// TotalEnergy and Temperature are global observables.
	TotalEnergy float64
	Temperature float64

	// Conc is the concentration census (C_0/C and n, Section 4).
	Conc conc.Stats

	// SentFrames, SentBytes and ResendCount are the cumulative transport
	// traffic counters at this step: messages/bytes that crossed the
	// transport boundary plus fault-layer resends. On the in-process
	// transport every message is a frame; on TCP they count real wire
	// frames summed over all worker processes. Transport-dependent by
	// nature, so they are excluded from cross-transport trace identity.
	SentFrames  int64
	SentBytes   int64
	ResendCount int64
}

// Imbalance returns (Fmax-Fmin)/Fave on the work metric, the quantity whose
// growth marks the experimental DLB boundary.
func (s StepStats) Imbalance() float64 {
	if s.WorkAve == 0 {
		return 0
	}
	return (s.WorkMax - s.WorkMin) / s.WorkAve
}

// LoadRatio returns Fmax/Fave on the work metric (1 = perfect balance).
func (s StepStats) LoadRatio() float64 { return metrics.LoadRatio(s.WorkMax, s.WorkAve) }

// Efficiency returns Fave/Fmax on the work metric, the parallel efficiency
// the paper's f(m,n) bound protects.
func (s StepStats) Efficiency() float64 { return metrics.Efficiency(s.WorkMax, s.WorkAve) }

// BoundResidual returns f(m, n) - C_0/C for the given square-pillar size m,
// using this step's concentration census: the remaining slack under the
// paper's balancing bound (NaN outside the bound's domain).
func (s StepStats) BoundResidual(m int) float64 {
	return metrics.BoundResidual(m, s.Conc.NFactor, s.Conc.C0OverC)
}

// Result is the outcome of a run.
type Result struct {
	Stats []StepStats
	// Final is the end state gathered from all PEs, sorted by particle ID.
	Final *particle.Set
	// CommMsgs and CommBytes are whole-run message statistics.
	CommMsgs, CommBytes int64
	// Faults counts the injected communication faults (zero without a
	// fault plan).
	Faults comm.FaultStats
	// FaultEvents is the recorded fault log (only when the plan sets
	// Record).
	FaultEvents []trace.FaultEvent
	// M is the derived square-pillar cross-section size.
	M int
}

// guardOn reports whether the runtime physics guards are armed.
func (cfg *Config) guardOn() bool { return cfg.Guard != nil && !cfg.Guard.Disabled }

// normalize resolves the deprecated DLB/DLBHysteresis/DLBPick switches into
// the pluggable Balancer, so both configuration styles drive the identical
// engine path (which is what keeps legacy WithDLB traces bit-identical to
// WithBalancer(PermanentCell) ones). An explicit Balancer wins; the legacy
// mirror flag is kept in sync for code that still reads it.
func (cfg *Config) normalize() {
	if cfg.Balancer == nil && cfg.DLB {
		cfg.Balancer = balance.PermanentCell{Hysteresis: cfg.DLBHysteresis, Pick: cfg.DLBPick}
	}
	cfg.DLB = cfg.Balancer != nil
}

// BalancerName returns the active strategy's name, "none" for static DDM.
func (cfg *Config) BalancerName() string {
	if cfg.Balancer == nil {
		return "none"
	}
	return cfg.Balancer.Name()
}

// Layout derives the DLB layout (torus side s and block size m) from cfg.
func (cfg *Config) Layout() (dlb.Layout, error) {
	s := int(math.Round(math.Sqrt(float64(cfg.P))))
	if s < 2 || s*s != cfg.P {
		return dlb.Layout{}, fmt.Errorf("core: P=%d is not a perfect square >= 4", cfg.P)
	}
	if cfg.Grid.Nx != cfg.Grid.Ny {
		return dlb.Layout{}, fmt.Errorf("core: grid cross-section must be square, got %dx%d", cfg.Grid.Nx, cfg.Grid.Ny)
	}
	if cfg.Grid.Nx%s != 0 {
		return dlb.Layout{}, fmt.Errorf("core: grid side %d not divisible by sqrt(P)=%d", cfg.Grid.Nx, s)
	}
	return dlb.NewLayout(s, cfg.Grid.Nx/s)
}

func (cfg *Config) validate() error {
	if cfg.Pair == nil {
		return fmt.Errorf("core: nil pair potential")
	}
	if cfg.Dt <= 0 {
		return fmt.Errorf("core: time step must be positive")
	}
	if cfg.Grid.NumCells() == 0 {
		return fmt.Errorf("core: empty grid")
	}
	sx, sy, sz := cfg.Grid.CellSize()
	// A relative epsilon absorbs floating-point rounding in box construction;
	// a cell shorter than the cut-off by parts in 1e9 cannot miss a pair.
	rc := cfg.Pair.Cutoff() * (1 - 1e-9)
	if sx < rc || sy < rc || sz < rc {
		return fmt.Errorf("core: cell size (%g,%g,%g) below cut-off %g", sx, sy, sz, cfg.Pair.Cutoff())
	}
	// Cadence and worker counts: zero means "default" (normalized by the
	// constructors), but negative values from callers that bypass the
	// facade defaults would reach modulo operations and worker-pool sizing,
	// so they are rejected here rather than panicking mid-run.
	if cfg.StatsEvery < 0 {
		return fmt.Errorf("core: StatsEvery must be >= 0, got %d", cfg.StatsEvery)
	}
	if cfg.DLBEvery < 0 {
		return fmt.Errorf("core: DLBEvery must be >= 0, got %d", cfg.DLBEvery)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("core: Shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.DLBHysteresis < 0 {
		return fmt.Errorf("core: DLBHysteresis must be >= 0, got %g", cfg.DLBHysteresis)
	}
	layout, err := cfg.Layout()
	if err != nil {
		return err
	}
	if cfg.Balancer != nil {
		if err := cfg.Balancer.Validate(layout); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Restore != nil {
		if err := cfg.Restore.Validate(cfg.P); err != nil {
			return err
		}
	}
	return nil
}

// restoreHosts merges the frames' hosted-column sets into one global
// column→host map and checks it is a partition: every column of the layout
// hosted by exactly one PE. Returns nil when cfg carries no restore state.
func restoreHosts(layout dlb.Layout, st *checkpoint.EngineState) (map[int]int, error) {
	if st == nil {
		return nil, nil
	}
	hosts := make(map[int]int, layout.NumColumns())
	for r := range st.Frames {
		for _, col := range st.Frames[r].Cols {
			if prev, dup := hosts[col]; dup {
				return nil, fmt.Errorf("core: restore: column %d hosted by both rank %d and rank %d", col, prev, r)
			}
			hosts[col] = r
		}
	}
	if len(hosts) != layout.NumColumns() {
		return nil, fmt.Errorf("core: restore: %d of %d columns hosted", len(hosts), layout.NumColumns())
	}
	// Every rank's ledger must accept the placement (permanent columns at
	// home, movable columns within the owner's up-left set); rejecting a
	// corrupt or foreign snapshot here beats a mid-run protocol panic.
	for r := range st.Frames {
		if _, err := dlb.RestoreLedger(layout, r, hosts); err != nil {
			return nil, err
		}
	}
	return hosts, nil
}

// Run executes steps time steps of the configured parallel simulation on
// the given system and returns the per-step statistics and final state.
// The input system is not modified.
func Run(cfg Config, sys workload.System, steps int) (*Result, error) {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ext == nil {
		cfg.Ext = potential.NoField{}
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 1
	}
	layout, err := cfg.Layout()
	if err != nil {
		return nil, err
	}
	var opts []comm.Option
	if cfg.InboxCap > 0 {
		opts = append(opts, comm.WithInboxCapacity(cfg.InboxCap))
	}
	if cfg.Faults != nil {
		opts = append(opts, comm.WithFaults(*cfg.Faults))
	}
	if cfg.Watchdog > 0 {
		opts = append(opts, comm.WithTracking())
	}
	world, err := comm.NewWorld(cfg.P, opts...)
	if err != nil {
		return nil, err
	}

	hosts, err := restoreHosts(layout, cfg.Restore)
	if err != nil {
		return nil, err
	}

	// Internal protocol violations and guard violations panic inside the
	// PE goroutines; the trap converts them into typed errors instead of
	// taking down the process. On a failure the surviving ranks are
	// abandoned wherever they block, the MPI_Abort analogue.
	res := &Result{M: layout.M}
	trap := supervise.NewTrap()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		world.Run(func(c *comm.Comm) {
			defer trap.Catch(c.Rank())
			newPE(c, &cfg, layout, sys, hosts).run(steps, res)
		})
	}()
	if err := awaitBatch(world, cfg.Watchdog, runDone, trap); err != nil {
		return nil, err
	}
	res.CommMsgs, res.CommBytes = world.Stats()
	res.Faults = world.FaultStats()
	res.FaultEvents = world.FaultEvents()
	if cfg.Restore != nil {
		res.CommMsgs += cfg.Restore.CommMsgs
		res.CommBytes += cfg.Restore.CommBytes
	}
	return res, nil
}
