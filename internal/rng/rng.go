// Package rng provides a small deterministic random number generator used by
// the simulators. Determinism across runs and platforms matters here: every
// experiment in this repository is seeded, so figures and tables regenerate
// identically.
//
// The core generator is xoshiro256**, seeded through SplitMix64, following
// Blackman & Vigna. Convenience samplers (uniform ranges, Gaussian via
// Box-Muller, Maxwell-Boltzmann speeds) are layered on top.
package rng

import (
	"fmt"
	"math"

	"permcell/internal/vec"
)

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s [4]uint64
	// cached second Gaussian from Box-Muller
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the state and returns the next SplitMix64 output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Any seed, including 0,
// yields a well-mixed state.
func New(seed uint64) *Source {
	var s Source
	st := seed
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
	return &s
}

// Split derives an independent child generator from s. Calling Split with
// distinct indices yields statistically independent streams, which is how
// per-PE generators are created from one experiment seed.
func (s *Source) Split(index uint64) *Source {
	st := s.Uint64() ^ (0x9e3779b97f4a7c15 * (index + 1))
	var c Source
	for i := range c.s {
		c.s[i] = splitmix64(&st)
	}
	return &c
}

// stateWords is the length of the slice State returns: the four xoshiro256**
// words, the Box-Muller cache flag, and the cached Gaussian's bits.
const stateWords = 6

// State returns the generator's complete state — the xoshiro words plus the
// Box-Muller cache — as a flat word slice suitable for a checkpoint frame.
// SetState on a fresh Source restores a stream that continues bit-identically.
func (s *Source) State() []uint64 {
	st := make([]uint64, stateWords)
	copy(st, s.s[:])
	if s.hasGauss {
		st[4] = 1
	}
	st[5] = math.Float64bits(s.gauss)
	return st
}

// SetState restores state captured by State. It rejects slices of the wrong
// length rather than guessing at a partial restore.
func (s *Source) SetState(st []uint64) error {
	if len(st) != stateWords {
		return fmt.Errorf("rng: state has %d words, want %d", len(st), stateWords)
	}
	copy(s.s[:], st[:4])
	s.hasGauss = st[4] != 0
	s.gauss = math.Float64frombits(st[5])
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine for simulation use.
	return int(s.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Norm returns a standard Gaussian sample (mean 0, variance 1) via the
// Box-Muller transform.
func (s *Source) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u1 float64
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gauss = r * math.Sin(2*math.Pi*u2)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*u2)
}

// NormScaled returns a Gaussian sample with the given mean and standard
// deviation.
func (s *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// MaxwellVelocity draws one velocity vector from the Maxwell-Boltzmann
// distribution at reduced temperature t for a particle of mass m (each
// Cartesian component is Gaussian with variance t/m, k_B = 1 in reduced
// units).
func (s *Source) MaxwellVelocity(t, m float64) vec.V {
	sd := math.Sqrt(t / m)
	return vec.New(s.NormScaled(0, sd), s.NormScaled(0, sd), s.NormScaled(0, sd))
}

// InBox returns a uniform position inside the box [0, l) per component.
func (s *Source) InBox(l vec.V) vec.V {
	return vec.New(s.Uniform(0, l.X), s.Uniform(0, l.Y), s.Uniform(0, l.Z))
}
