package rng

import (
	"math"
	"testing"

	"permcell/internal/vec"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(0)
	c2 := root.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 10000; i++ {
		f := s.Uniform(-3, 5)
		if f < -3 || f >= 5 {
			t.Fatalf("Uniform = %v out of [-3,5)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn = %d out of [0,7)", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(6)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestMaxwellVelocityMoments(t *testing.T) {
	s := New(9)
	const n = 100000
	const temp, mass = 0.722, 1.0
	var ke float64
	for i := 0; i < n; i++ {
		v := s.MaxwellVelocity(temp, mass)
		ke += 0.5 * mass * v.Norm2()
	}
	// Equipartition: <KE> = (3/2) T per particle in reduced units.
	got := ke / n
	want := 1.5 * temp
	if math.Abs(got-want) > 0.02 {
		t.Errorf("mean kinetic energy = %v, want %v", got, want)
	}
}

func TestInBox(t *testing.T) {
	s := New(10)
	l := vec.New(4, 9, 2)
	for i := 0; i < 10000; i++ {
		p := s.InBox(l)
		if p.X < 0 || p.X >= l.X || p.Y < 0 || p.Y >= l.Y || p.Z < 0 || p.Z >= l.Z {
			t.Fatalf("InBox = %v outside box %v", p, l)
		}
	}
}

func TestUint64Distribution(t *testing.T) {
	// Cheap sanity check: bits should be roughly balanced.
	s := New(11)
	counts := make([]int, 64)
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bit %d set fraction %v, want ~0.5", b, frac)
		}
	}
}
