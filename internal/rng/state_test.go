package rng

import "testing"

func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	// Advance into an interesting state: odd Norm count leaves the
	// Box-Muller cache populated, the part a naive 4-word capture loses.
	for i := 0; i < 7; i++ {
		src.Uint64()
	}
	src.Norm()
	if !src.hasGauss {
		t.Fatal("test setup: expected a cached Gaussian")
	}

	st := src.State()
	clone := New(0)
	if err := clone.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i := 0; i < 100; i++ {
		if a, b := src.Norm(), clone.Norm(); a != b {
			t.Fatalf("streams diverged at draw %d: %v vs %v", i, a, b)
		}
		if a, b := src.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("streams diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestStateIsASnapshot(t *testing.T) {
	src := New(7)
	st := src.State()
	src.Uint64()
	if st2 := src.State(); st[0] == st2[0] && st[1] == st2[1] && st[2] == st2[2] && st[3] == st2[3] {
		t.Fatal("State did not snapshot: advancing the source changed nothing")
	}
	restored := New(0)
	if err := restored.SetState(st); err != nil {
		t.Fatal(err)
	}
	fresh := New(7)
	if restored.Uint64() != fresh.Uint64() {
		t.Fatal("restored stream does not match the original from the snapshot point")
	}
}

func TestSetStateRejectsWrongLength(t *testing.T) {
	if err := New(1).SetState([]uint64{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
	if err := New(1).SetState(make([]uint64, 9)); err == nil {
		t.Fatal("long state accepted")
	}
}
