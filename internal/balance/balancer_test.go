package balance

// Unit tests for the Balancer zoo's pure machinery: the Morton curve and
// its ORB-style cuts, the codec that carries balancer identity through CLI
// flags and checkpoint metadata, and input validation on every
// implementation. The engine-level conformance (legality, momentum,
// bit-reproducibility) lives in internal/core and the facade tests.

import (
	"sort"
	"testing"

	"permcell/internal/dlb"
)

func TestMorton2(t *testing.T) {
	// The first quad of the Z-curve, in order.
	want := []struct{ x, y, k int }{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {3, 0, 5}, {2, 1, 6}, {3, 1, 7},
		{0, 2, 8},
	}
	for _, w := range want {
		if got := morton2(w.x, w.y); got != uint64(w.k) {
			t.Errorf("morton2(%d,%d) = %d, want %d", w.x, w.y, got, w.k)
		}
	}
	// Keys are unique over a 16x16 tile (the interleave is a bijection).
	seen := make(map[uint64]bool)
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			k := morton2(x, y)
			if seen[k] {
				t.Fatalf("duplicate Morton key %d at (%d,%d)", k, x, y)
			}
			seen[k] = true
		}
	}
}

func testLayout(t *testing.T, s, m int) dlb.Layout {
	t.Helper()
	l, err := dlb.NewLayout(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSFCCurveOrder(t *testing.T) {
	l := testLayout(t, 2, 3)
	d := SFC{}.NewDecider(l, 0).(*sfcDecider)
	if len(d.order) != l.NumColumns() {
		t.Fatalf("order covers %d columns, want %d", len(d.order), l.NumColumns())
	}
	// The order is a permutation sorted by Morton key.
	for i := 1; i < len(d.order); i++ {
		if mortonKeyOf(l, d.order[i-1]) >= mortonKeyOf(l, d.order[i]) {
			t.Fatalf("order not strictly increasing in Morton key at %d", i)
		}
	}
	for col, i := range d.pos {
		if d.order[i] != col {
			t.Fatalf("pos[%d]=%d does not invert order", col, i)
		}
	}
	// segRank is a permutation of the ranks.
	ranks := append([]int(nil), d.segRank...)
	sort.Ints(ranks)
	for r := 0; r < l.P(); r++ {
		if ranks[r] != r {
			t.Fatalf("segRank is not a permutation: %v", d.segRank)
		}
	}
}

func TestSFCCuts(t *testing.T) {
	l := testLayout(t, 2, 3)
	d := SFC{}.NewDecider(l, 0).(*sfcDecider)
	n := l.NumColumns()
	p := l.P()

	// Uniform load: cuts split the curve into near-equal segments.
	d.cutCurve(func(int) float64 { return 1 })
	if d.cuts[0] != 0 || d.cuts[p] != n {
		t.Fatalf("cuts do not span the curve: %v", d.cuts)
	}
	for k := 1; k <= p; k++ {
		if d.cuts[k] < d.cuts[k-1] {
			t.Fatalf("cuts not monotone: %v", d.cuts)
		}
		if size := d.cuts[k] - d.cuts[k-1]; size < n/p-1 || size > n/p+1 {
			t.Fatalf("uniform segment %d has %d columns, want ~%d: %v", k-1, size, n/p, d.cuts)
		}
	}

	// All load on the curve's first column: the first segment should shrink
	// around it — every cut lands at or before position 1.
	first := d.order[0]
	d.cutCurve(func(col int) float64 {
		if col == first {
			return 100
		}
		return 0
	})
	if d.cuts[1] > 1 {
		t.Fatalf("concentrated load: first cut at %d, want <= 1 (%v)", d.cuts[1], d.cuts)
	}

	// Zero load everywhere: equal-count fallback.
	d.cutCurve(func(int) float64 { return 0 })
	for k := 0; k <= p; k++ {
		if d.cuts[k] != k*n/p {
			t.Fatalf("degenerate fallback cuts = %v", d.cuts)
		}
	}

	// Every column's ideal rank is a real rank, and columns in the same
	// segment agree on it.
	d.cutCurve(func(int) float64 { return 1 })
	for col := 0; col < n; col++ {
		r := d.idealRank(col)
		if r < 0 || r >= p {
			t.Fatalf("idealRank(%d) = %d out of range", col, r)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []Balancer{
		nil,
		PermanentCell{},
		PermanentCell{Hysteresis: 0.1, Pick: dlb.PickLeastLoaded},
		SFC{},
		SFC{Hysteresis: 0.05, Moves: 3},
		Diffusive{Hysteresis: 0.2, Moves: 2},
	}
	for _, b := range cases {
		spec := Encode(b)
		back, err := Decode(spec)
		if err != nil {
			t.Fatalf("Decode(%q): %v", spec, err)
		}
		if Encode(back) != spec {
			t.Fatalf("round trip %q -> %q", spec, Encode(back))
		}
		if (b == nil) != (back == nil) {
			t.Fatalf("nil-ness lost through %q", spec)
		}
		if b != nil && back.Name() != b.Name() {
			t.Fatalf("name lost through %q", spec)
		}
	}

	// Bare names and friendly pick spellings parse.
	for _, spec := range []string{"", "none", "permcell", "sfc", "diffusive",
		"permcell(h=0.1,pick=least)", "permcell(pick=mostloaded)", "sfc(moves=2)"} {
		if _, err := Decode(spec); err != nil {
			t.Errorf("Decode(%q): %v", spec, err)
		}
	}

	// Malformed specs are rejected, not guessed at.
	for _, spec := range []string{"orb", "sfc(", "sfc(h=)", "sfc(bogus=1)",
		"permcell(pick=fastest)", "diffusive(moves=x)"} {
		if _, err := Decode(spec); err == nil {
			t.Errorf("Decode(%q) accepted", spec)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	l := testLayout(t, 2, 3)
	bad := []Balancer{
		PermanentCell{Hysteresis: -0.1},
		PermanentCell{Pick: dlb.Strategy(99)},
		SFC{Hysteresis: -1},
		SFC{Moves: -2},
		Diffusive{Hysteresis: -0.5},
		Diffusive{Moves: -1},
	}
	for _, b := range bad {
		if err := b.Validate(l); err == nil {
			t.Errorf("%s %+v validated", b.Name(), b)
		}
	}
	good := []Balancer{PermanentCell{}, SFC{Moves: 4}, Diffusive{Hysteresis: 0.3}}
	for _, b := range good {
		if err := b.Validate(l); err != nil {
			t.Errorf("%s: %v", b.Name(), err)
		}
		if b.MaxMoves() < 1 {
			t.Errorf("%s: MaxMoves %d < 1", b.Name(), b.MaxMoves())
		}
	}
}
