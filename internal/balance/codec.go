package balance

import (
	"fmt"
	"strconv"
	"strings"

	"permcell/internal/dlb"
)

// Encode serializes a balancer's identity and parameters into a compact
// string ("permcell(h=0.1,pick=0)", "sfc(h=0,moves=2)", ...), the form
// recorded in checkpoint Meta and run headers. A nil balancer encodes as
// "none". Decode inverts it.
func Encode(b Balancer) string {
	switch v := b.(type) {
	case nil:
		return "none"
	case PermanentCell:
		return fmt.Sprintf("permcell(h=%s,pick=%d)", formatF(v.Hysteresis), v.Pick)
	case SFC:
		return fmt.Sprintf("sfc(h=%s,moves=%d)", formatF(v.Hysteresis), v.MaxMoves())
	case Diffusive:
		return fmt.Sprintf("diffusive(h=%s,moves=%d)", formatF(v.Hysteresis), v.MaxMoves())
	default:
		return b.Name()
	}
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Decode parses an Encode string or a bare balancer name with default
// parameters. "none" and "" return a nil balancer. Unknown names and
// malformed parameter lists are errors, so a foreign checkpoint or a
// mistyped CLI flag fails loudly.
func Decode(s string) (Balancer, error) {
	name, params := strings.TrimSpace(s), ""
	if i := strings.IndexByte(name, '('); i >= 0 {
		if !strings.HasSuffix(name, ")") {
			return nil, fmt.Errorf("balance: malformed balancer spec %q", s)
		}
		name, params = name[:i], name[i+1:len(name)-1]
	}
	kv, err := parseParams(s, params)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", "none":
		return nil, nil
	case "permcell":
		if err := checkKeys(s, kv, "h", "pick"); err != nil {
			return nil, err
		}
		b := PermanentCell{}
		if v, ok := kv["h"]; ok {
			if b.Hysteresis, err = strconv.ParseFloat(v, 64); err != nil {
				return nil, fmt.Errorf("balance: %q: bad hysteresis: %w", s, err)
			}
		}
		if v, ok := kv["pick"]; ok {
			p, err := parsePick(v)
			if err != nil {
				return nil, fmt.Errorf("balance: %q: %w", s, err)
			}
			b.Pick = p
		}
		return b, nil
	case "sfc":
		if err := checkKeys(s, kv, "h", "moves"); err != nil {
			return nil, err
		}
		b := SFC{}
		if err := fillHMoves(s, kv, &b.Hysteresis, &b.Moves); err != nil {
			return nil, err
		}
		return b, nil
	case "diffusive":
		if err := checkKeys(s, kv, "h", "moves"); err != nil {
			return nil, err
		}
		b := Diffusive{}
		if err := fillHMoves(s, kv, &b.Hysteresis, &b.Moves); err != nil {
			return nil, err
		}
		return b, nil
	default:
		return nil, fmt.Errorf("balance: unknown balancer %q (want permcell, sfc, diffusive or none)", name)
	}
}

func parseParams(spec, params string) (map[string]string, error) {
	kv := make(map[string]string)
	if params == "" {
		return kv, nil
	}
	for _, part := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("balance: malformed parameter %q in %q", part, spec)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

// checkKeys rejects parameter names the balancer does not define, so a
// typo ("sfc(move=2)") fails loudly instead of silently running defaults.
func checkKeys(spec string, kv map[string]string, allowed ...string) error {
	for k := range kv {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("balance: %q: unknown parameter %q (allowed: %s)",
				spec, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

func fillHMoves(spec string, kv map[string]string, h *float64, moves *int) error {
	var err error
	if v, ok := kv["h"]; ok {
		if *h, err = strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("balance: %q: bad hysteresis: %w", spec, err)
		}
	}
	if v, ok := kv["moves"]; ok {
		if *moves, err = strconv.Atoi(v); err != nil {
			return fmt.Errorf("balance: %q: bad moves: %w", spec, err)
		}
	}
	return nil
}

func parsePick(v string) (dlb.Strategy, error) {
	switch strings.ToLower(v) {
	case "most", "mostloaded":
		return dlb.PickMostLoaded, nil
	case "least", "leastloaded":
		return dlb.PickLeastLoaded, nil
	case "lowest", "lowestindex":
		return dlb.PickLowestIndex, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad pick strategy %q", v)
	}
	return dlb.Strategy(n), nil
}
