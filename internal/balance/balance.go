// Package balance compares load-balancing schemes on identical per-cell
// load streams: static plane decomposition, Kohring's 1-D discrete
// boundary-shifting method (Parallel Computing 21, 1995 — the related work
// the paper contrasts against), static square-pillar DDM, and the paper's
// permanent-cell DLB (driving the real internal/dlb ledgers).
//
// The balancers consume a per-cell load array each step (typically derived
// from cell occupancy of a real MD run) and report the resulting per-PE
// load distribution, so balancing *capability* can be compared directly,
// independent of engine implementation details.
package balance

import (
	"fmt"

	"permcell/internal/dlb"
	"permcell/internal/space"
	"permcell/internal/topology"
)

// Imbalance summarizes a per-PE load distribution.
type Imbalance struct {
	Max, Ave, Min float64
}

// Spread returns (max-min)/ave, the paper's imbalance measure.
func (im Imbalance) Spread() float64 {
	if im.Ave == 0 {
		return 0
	}
	return (im.Max - im.Min) / im.Ave
}

func summarize(loads []float64) Imbalance {
	if len(loads) == 0 {
		return Imbalance{}
	}
	im := Imbalance{Max: loads[0], Min: loads[0]}
	for _, l := range loads {
		if l > im.Max {
			im.Max = l
		}
		if l < im.Min {
			im.Min = l
		}
		im.Ave += l
	}
	im.Ave /= float64(len(loads))
	return im
}

// PairLoad converts a cell-occupancy array into a per-cell work estimate:
// the pair evaluations a cell costs its host, n_i(n_i-1)/2 within the cell
// plus half the cross pairs with each neighboring cell (the other half is
// billed to the neighbor's host; cross-PE pairs cost both sides in DDM, but
// for balancing comparisons the symmetric half-split is the right
// granularity).
func PairLoad(g space.Grid, occ []int) []float64 {
	load := make([]float64, len(occ))
	var nb []int
	for c, n := range occ {
		l := float64(n*(n-1)) / 2
		nb = g.Neighbors26(c, nb[:0])
		for _, j := range nb {
			l += float64(n*occ[j]) / 2
		}
		load[c] = l
	}
	return load
}

// --- Static plane ----------------------------------------------------------

// PlaneStatic evaluates the static slab decomposition: p equal slabs along
// x.
type PlaneStatic struct {
	g space.Grid
	p int
}

// NewPlaneStatic returns the static plane balancer; Nx must be divisible
// by p.
func NewPlaneStatic(g space.Grid, p int) (*PlaneStatic, error) {
	if p < 1 || g.Nx%p != 0 {
		return nil, fmt.Errorf("balance: plane needs Nx (%d) divisible by p (%d)", g.Nx, p)
	}
	return &PlaneStatic{g: g, p: p}, nil
}

// Step evaluates the distribution for this step's loads.
func (b *PlaneStatic) Step(cellLoad []float64) Imbalance {
	return summarize(slabLoads(b.g, cellLoad, staticBounds(b.g.Nx, b.p)))
}

func staticBounds(nx, p int) []int {
	bounds := make([]int, p+1)
	for i := range bounds {
		bounds[i] = i * nx / p
	}
	return bounds
}

// layerLoads sums cell loads per x-layer.
func layerLoads(g space.Grid, cellLoad []float64) []float64 {
	ll := make([]float64, g.Nx)
	for c, l := range cellLoad {
		ix, _, _ := g.Coords(c)
		ll[ix] += l
	}
	return ll
}

func slabLoads(g space.Grid, cellLoad []float64, bounds []int) []float64 {
	ll := layerLoads(g, cellLoad)
	out := make([]float64, len(bounds)-1)
	for i := 0; i < len(bounds)-1; i++ {
		for x := bounds[i]; x < bounds[i+1]; x++ {
			out[i] += ll[x]
		}
	}
	return out
}

// --- Kohring 1-D discrete boundary shifting ---------------------------------

// Kohring balances slab domains by moving each internal boundary at most
// one cell layer per step toward the lighter side, Kohring's discrete
// variant of 1-D dynamic domain decomposition. Domains never shrink below
// one layer. (Unlike the permanent-cell scheme this changes which PEs are
// adjacent to which cells only along one axis, so the communication
// pattern stays a ring — but it cannot react to concentration in the y/z
// cross-section at all, which is exactly the weakness the paper's method
// addresses.)
type Kohring struct {
	g      space.Grid
	p      int
	bounds []int
}

// NewKohring returns the 1-D balancer starting from equal slabs.
func NewKohring(g space.Grid, p int) (*Kohring, error) {
	if p < 1 || g.Nx < p {
		return nil, fmt.Errorf("balance: kohring needs at least one layer per PE (Nx=%d, p=%d)", g.Nx, p)
	}
	return &Kohring{g: g, p: p, bounds: staticBounds(g.Nx, p)}, nil
}

// Bounds returns a copy of the current boundary layer indices.
func (b *Kohring) Bounds() []int { return append([]int(nil), b.bounds...) }

// Step adjusts each internal boundary by at most one layer toward balance
// and returns the resulting distribution.
func (b *Kohring) Step(cellLoad []float64) Imbalance {
	ll := layerLoads(b.g, cellLoad)
	slab := func(i int) float64 {
		var s float64
		for x := b.bounds[i]; x < b.bounds[i+1]; x++ {
			s += ll[x]
		}
		return s
	}
	// Sweep internal boundaries; move a layer when it reduces the pairwise
	// max of the two adjacent slabs.
	for i := 1; i < b.p; i++ {
		left, right := slab(i-1), slab(i)
		if left > right && b.bounds[i]-b.bounds[i-1] > 1 {
			moved := ll[b.bounds[i]-1]
			if max(left-moved, right+moved) < max(left, right) {
				b.bounds[i]--
			}
		} else if right > left && b.bounds[i+1]-b.bounds[i] > 1 {
			moved := ll[b.bounds[i]]
			if max(left+moved, right-moved) < max(left, right) {
				b.bounds[i]++
			}
		}
	}
	return summarize(slabLoads(b.g, cellLoad, b.bounds))
}

// --- Static square pillar (plain DDM) ---------------------------------------

// PillarStatic evaluates the static square-pillar decomposition.
type PillarStatic struct {
	g      space.Grid
	layout dlb.Layout
}

// NewPillarStatic returns the static pillar balancer.
func NewPillarStatic(g space.Grid, p int) (*PillarStatic, error) {
	layout, err := pillarLayout(g, p)
	if err != nil {
		return nil, err
	}
	return &PillarStatic{g: g, layout: layout}, nil
}

func pillarLayout(g space.Grid, p int) (dlb.Layout, error) {
	s := intSqrt(p)
	if s*s != p || s < 2 {
		return dlb.Layout{}, fmt.Errorf("balance: pillar needs perfect-square p >= 4, got %d", p)
	}
	if g.Nx != g.Ny || g.Nx%s != 0 {
		return dlb.Layout{}, fmt.Errorf("balance: pillar needs square cross-section divisible by sqrt(p)")
	}
	return dlb.NewLayout(s, g.Nx/s)
}

func intSqrt(p int) int {
	s := 0
	for s*s < p {
		s++
	}
	return s
}

// columnLoads sums cell loads per column.
func columnLoads(g space.Grid, cellLoad []float64) []float64 {
	cl := make([]float64, g.NumColumns())
	for c, l := range cellLoad {
		cl[g.ColumnOf(c)] += l
	}
	return cl
}

// Step evaluates the distribution for this step's loads.
func (b *PillarStatic) Step(cellLoad []float64) Imbalance {
	cl := columnLoads(b.g, cellLoad)
	pe := make([]float64, b.layout.P())
	for col, l := range cl {
		pe[b.layout.OwnerOf(col)] += l
	}
	return summarize(pe)
}

// --- Permanent-cell DLB ------------------------------------------------------

// PermanentCellDLB drives the real internal/dlb ledgers (one per PE) with
// the per-column load stream, exactly as the parallel engine does, and
// reports the achieved distribution.
type PermanentCellDLB struct {
	g       space.Grid
	layout  dlb.Layout
	ledgers []*dlb.Ledger
	cfg     dlb.Config
}

// NewPermanentCellDLB returns the DLB balancer with the given decision
// config.
func NewPermanentCellDLB(g space.Grid, p int, cfg dlb.Config) (*PermanentCellDLB, error) {
	layout, err := pillarLayout(g, p)
	if err != nil {
		return nil, err
	}
	b := &PermanentCellDLB{g: g, layout: layout, cfg: cfg}
	for r := 0; r < layout.P(); r++ {
		b.ledgers = append(b.ledgers, dlb.NewLedger(layout, r))
	}
	return b, nil
}

// peLoads sums the column loads per hosting PE.
func (b *PermanentCellDLB) peLoads(colLoad []float64) []float64 {
	pe := make([]float64, b.layout.P())
	for r, lg := range b.ledgers {
		for _, col := range lg.HostedColumns() {
			pe[r] += colLoad[col]
		}
	}
	return pe
}

// Step runs one round of the redistribution protocol on this step's loads
// and returns the distribution after the moves.
func (b *PermanentCellDLB) Step(cellLoad []float64) (Imbalance, error) {
	colLoad := columnLoads(b.g, cellLoad)
	pe := b.peLoads(colLoad)

	cfg := b.cfg
	cfg.ColLoad = func(col int) float64 { return colLoad[col] }

	decisions := make([]dlb.Decision, b.layout.P())
	for r, lg := range b.ledgers {
		var loads dlb.Loads
		loads.Self = pe[r]
		pi, pj := b.layout.T.Coords(r)
		for k, off := range topology.Offsets8 {
			loads.Neighbor[k] = pe[b.layout.T.Rank(pi+off.DI, pj+off.DJ)]
		}
		decisions[r] = lg.Decide(loads, cfg)
	}
	for r, d := range decisions {
		if err := b.ledgers[r].Apply(r, d); err != nil {
			return Imbalance{}, err
		}
		for _, nb := range b.layout.T.UniqueNeighbors(r) {
			if err := b.ledgers[nb].Apply(r, d); err != nil {
				return Imbalance{}, err
			}
		}
	}
	return summarize(b.peLoads(colLoad)), nil
}
