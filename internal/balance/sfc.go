package balance

import (
	"fmt"
	"sort"

	"permcell/internal/dlb"
)

// SFC is a space-filling-curve repartitioner in the style of Stijnman &
// Bisseling: the permanent-cell columns are linearized in Morton (Z-curve)
// order over their (cx, cy) cross-section coordinates, the PEs are laid
// along the same curve, and each epoch the curve is cut into P segments of
// near-equal load (the cut between two columns is adjusted to the boundary
// closest to the ideal k/P load split — the ORB-style bisection
// refinement). A PE then tries to move every hosted column whose ideal
// segment lies elsewhere toward its ideal host.
//
// The moves are constrained to the permanent-cell legal move space (lend
// own movable at-home columns up-left, return borrowed columns to their
// owner), so the 8-neighbor exchange pattern survives; an ideal host
// outside that space simply cannot be served this epoch. Each move must
// strictly improve the pairwise load maximum between source and
// destination, which keeps the repartitioner from oscillating when the
// cuts dither between epochs.
type SFC struct {
	// Hysteresis is the relative load surplus this PE must have over a
	// move's destination before the move fires (0 = any improvement).
	Hysteresis float64
	// Moves bounds the columns shed per PE per epoch (0 = default 1).
	Moves int
}

// Name implements Balancer.
func (SFC) Name() string { return "sfc" }

// Scope implements Balancer: cutting the curve needs the global column
// census and every PE's load.
func (SFC) Scope() Scope { return ScopeGlobal }

// MaxMoves implements Balancer.
func (b SFC) MaxMoves() int {
	if b.Moves > 0 {
		return b.Moves
	}
	return 1
}

// Validate implements Balancer.
func (b SFC) Validate(l dlb.Layout) error {
	if err := validateCommon("sfc", b.Hysteresis, b.Moves); err != nil {
		return err
	}
	if n := l.NxColumns(); n > 1<<15 {
		return fmt.Errorf("balance: sfc: grid side %d overflows the Morton key", n)
	}
	return nil
}

// NewDecider implements Balancer: precompute the static curve (column
// order, position index, PE order along the curve).
func (b SFC) NewDecider(l dlb.Layout, rank int) Decider {
	n := l.NumColumns()
	d := &sfcDecider{cfg: b, l: l, rank: rank,
		order:  make([]int, n),
		pos:    make([]int, n),
		prefix: make([]float64, n+1),
	}
	for col := 0; col < n; col++ {
		d.order[col] = col
	}
	sort.Slice(d.order, func(a, b int) bool {
		ka, kb := mortonKeyOf(l, d.order[a]), mortonKeyOf(l, d.order[b])
		if ka != kb {
			return ka < kb
		}
		return d.order[a] < d.order[b]
	})
	for i, col := range d.order {
		d.pos[col] = i
	}
	// PEs along the same curve: rank order by Morton key of torus coords.
	d.segRank = make([]int, l.P())
	for r := range d.segRank {
		d.segRank[r] = r
	}
	sort.Slice(d.segRank, func(a, b int) bool {
		ia, ja := l.T.Coords(d.segRank[a])
		ib, jb := l.T.Coords(d.segRank[b])
		ka, kb := morton2(ia, ja), morton2(ib, jb)
		if ka != kb {
			return ka < kb
		}
		return d.segRank[a] < d.segRank[b]
	})
	return d
}

// mortonKeyOf returns the Z-curve key of a column's cross-section
// coordinates.
func mortonKeyOf(l dlb.Layout, col int) uint64 {
	cx, cy := l.ColumnCoords(col)
	return morton2(cx, cy)
}

// morton2 interleaves the low 16 bits of x and y (x in even positions).
func morton2(x, y int) uint64 {
	return spread1(uint64(uint16(x))) | spread1(uint64(uint16(y)))<<1
}

// spread1 spaces out the low 16 bits of v into the even bit positions.
func spread1(v uint64) uint64 {
	v = (v | v<<16) & 0x0000_FFFF_0000_FFFF
	v = (v | v<<8) & 0x00FF_00FF_00FF_00FF
	v = (v | v<<4) & 0x0F0F_0F0F_0F0F_0F0F
	v = (v | v<<2) & 0x3333_3333_3333_3333
	v = (v | v<<1) & 0x5555_5555_5555_5555
	return v
}

type sfcDecider struct {
	cfg  SFC
	l    dlb.Layout
	rank int

	order   []int // columns in Morton order
	pos     []int // column -> index in order
	segRank []int // segment k -> rank hosting it (ranks in Morton order)

	prefix []float64 // scratch: prefix[i] = load of order[:i]
	cuts   []int     // scratch: cuts[k] = first order index of segment k
}

// cutCurve computes this epoch's P load-balanced cuts of the curve.
func (d *sfcDecider) cutCurve(colLoad func(int) float64) {
	n := len(d.order)
	p := d.l.P()
	if d.cuts == nil {
		d.cuts = make([]int, p+1)
	}
	for i, col := range d.order {
		d.prefix[i+1] = d.prefix[i] + colLoad(col)
	}
	total := d.prefix[n]
	d.cuts[0], d.cuts[p] = 0, n
	for k := 1; k < p; k++ {
		if total <= 0 {
			// Degenerate (empty) epoch: fall back to equal column counts.
			d.cuts[k] = k * n / p
			continue
		}
		target := total * float64(k) / float64(p)
		// The naive cut is the first boundary at or past the target; the
		// ORB-style adjustment picks whichever adjacent boundary splits
		// the load closer to the ideal.
		i := sort.Search(n+1, func(i int) bool { return d.prefix[i] >= target })
		if i > 0 && target-d.prefix[i-1] <= d.prefix[i]-target {
			i--
		}
		d.cuts[k] = i
	}
	for k := 1; k <= p; k++ {
		if d.cuts[k] < d.cuts[k-1] {
			d.cuts[k] = d.cuts[k-1]
		}
	}
}

// idealRank returns the rank the current cuts assign col to.
func (d *sfcDecider) idealRank(col int) int {
	i := d.pos[col]
	// Segment k spans order[cuts[k]:cuts[k+1]).
	k := sort.Search(d.l.P(), func(k int) bool { return d.cuts[k+1] > i })
	return d.segRank[k]
}

// Decide implements Decider.
func (d *sfcDecider) Decide(lg *dlb.Ledger, obs Observation) []dlb.Decision {
	d.cutCurve(obs.ColLoad)

	// Candidate moves: hosted columns whose ideal segment is another PE and
	// for which a legal move toward it exists.
	type cand struct {
		col, dest int
		w         float64 // column load (particle count)
	}
	var cands []cand
	var myColSum float64
	hosted := lg.HostedColumns()
	for _, col := range hosted {
		myColSum += obs.ColLoad(col)
	}
	for _, col := range hosted {
		if d.l.IsPermanent(col) {
			continue
		}
		owner := d.l.OwnerOf(col)
		ideal := d.idealRank(col)
		if ideal == d.rank {
			continue
		}
		if owner == d.rank {
			// Lending is legal only into my up-left set.
			if !upLeftContains(d.l, d.rank, ideal) {
				continue
			}
			cands = append(cands, cand{col, ideal, obs.ColLoad(col)})
		} else {
			// Borrowed column the curve no longer assigns to me: the only
			// legal move is back to its owner.
			cands = append(cands, cand{col, owner, obs.ColLoad(col)})
		}
	}
	// Heaviest columns first; column index breaks ties deterministically.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].col < cands[b].col
	})

	// Fire moves while they strictly improve the pairwise max between this
	// PE and the destination. Column loads are particle counts while PE
	// loads are pair evaluations, so a column's PE-load share is estimated
	// proportionally.
	self := obs.Self
	dest := append([]float64(nil), obs.PELoad...)
	var out []dlb.Decision
	for _, c := range cands {
		if len(out) >= d.cfg.MaxMoves() {
			break
		}
		dl := dest[c.dest]
		if self <= dl*(1+d.cfg.Hysteresis) {
			continue
		}
		var w float64
		if myColSum > 0 {
			w = self * c.w / myColSum
		}
		if w <= 0 || dl+w >= self {
			continue // the move would not lower the pairwise max
		}
		out = append(out, dlb.Decision{Col: c.col, Dest: c.dest})
		self -= w
		dest[c.dest] = dl + w
	}
	return out
}
