package balance

import (
	"fmt"

	"permcell/internal/dlb"
)

// This file defines the online Balancer strategy interface the parallel
// engine drives at the DLB cadence. It generalizes the decision half of the
// permanent-cell protocol: a balancer observes per-PE costs, proposes
// column ownership moves, and the engine executes them through the shared
// ledger/colTransfer machinery (forces included). Every proposed move must
// lie in the ledger's legal move space — an owner lends a movable
// at-home column to one of its up-left neighbors, a borrower returns a
// column to its owner — which is what keeps the 8-neighbor communication
// pattern and the C' = m^2+3(m-1)^2 hosting bound intact for every
// strategy. dlb.Ledger.Apply re-validates each decision at run time, so an
// out-of-contract balancer fails loudly instead of corrupting the halo
// protocol.

// Scope declares what a balancer needs to observe each epoch, which
// determines the communication the engine performs on its behalf.
type Scope int

const (
	// ScopeNeighbors: the balancer sees its own load and the 8 torus
	// neighbors' loads (one small message per neighbor — the paper's
	// protocol step 1).
	ScopeNeighbors Scope = iota
	// ScopeGlobal: the balancer additionally sees every PE's load and the
	// global per-column load census (one allgather per epoch).
	ScopeGlobal
)

// Observation is one epoch's load picture, assembled by the engine.
type Observation struct {
	// Self is this PE's last force-computation load under the configured
	// metric (pair evaluations by default — deterministic).
	Self float64
	// Neighbor holds the 8 torus neighbors' loads in topology.Offsets8
	// order.
	Neighbor [8]float64
	// PELoad is every PE's load indexed by rank. Nil under ScopeNeighbors.
	PELoad []float64
	// ColLoad reports the current load of a column (its particle count).
	// Under ScopeNeighbors it covers only locally hosted columns (others
	// report 0); under ScopeGlobal it covers every column.
	ColLoad func(col int) float64
}

// Decider is one PE's per-rank strategy state. Decide inspects the ledger
// (without mutating it) and returns the ownership moves this PE makes this
// epoch — at most Balancer.MaxMoves of them, each legal under the
// permanent-cell contract. Decisions must be a pure function of (ledger
// state, observation) so that identical runs replay bit-identically.
type Decider interface {
	Decide(lg *dlb.Ledger, obs Observation) []dlb.Decision
}

// Balancer is a pluggable column-ownership balancing strategy.
type Balancer interface {
	// Name identifies the strategy ("permcell", "sfc", "diffusive"). It is
	// recorded in StepStats, trace headers and checkpoint Meta; a
	// checkpoint refuses to resume under a different name.
	Name() string
	// Scope declares the observation the strategy needs.
	Scope() Scope
	// MaxMoves bounds the decisions one PE may emit per epoch; the engine
	// verifies it.
	MaxMoves() int
	// Validate rejects bad parameters and layouts the strategy cannot
	// serve, before any PE starts.
	Validate(l dlb.Layout) error
	// NewDecider builds rank's per-PE strategy state for layout l.
	NewDecider(l dlb.Layout, rank int) Decider
}

// upLeftContains reports whether dest is in the up-left set of rank.
func upLeftContains(l dlb.Layout, rank, dest int) bool {
	for _, r := range l.UpLeftRanks(rank) {
		if r == dest {
			return true
		}
	}
	return false
}

// validateCommon checks the parameters shared by every balancer config.
func validateCommon(name string, hysteresis float64, maxMoves int) error {
	if hysteresis < 0 {
		return fmt.Errorf("balance: %s: hysteresis must be >= 0, got %g", name, hysteresis)
	}
	if maxMoves < 0 {
		return fmt.Errorf("balance: %s: max moves must be >= 0, got %d", name, maxMoves)
	}
	return nil
}
