package balance

import (
	"fmt"

	"permcell/internal/dlb"
)

func errUnknownPick(p dlb.Strategy) error {
	return fmt.Errorf("balance: permcell: unknown pick strategy %d", p)
}

// PermanentCell is the reference Balancer: the paper's permanent-cell
// protocol (Section 2.3). Each epoch the PE compares its load against the 8
// neighbors and, when it is the slowest of the neighborhood by more than
// Hysteresis, hands one column toward the fastest neighbor following the
// three-case rule — exactly dlb.Ledger.Decide. The engine's pre-interface
// WithDLB path is this balancer with the default Pick, so traces are
// bit-identical across the refactor.
type PermanentCell struct {
	// Hysteresis is the relative load gap required before a column moves
	// (0 = paper-literal).
	Hysteresis float64
	// Pick selects among candidate columns (default PickMostLoaded).
	Pick dlb.Strategy
}

// Name implements Balancer.
func (PermanentCell) Name() string { return "permcell" }

// Scope implements Balancer: the protocol is strictly 8-neighbor.
func (PermanentCell) Scope() Scope { return ScopeNeighbors }

// MaxMoves implements Balancer: the paper's protocol moves at most one
// column per PE per epoch.
func (PermanentCell) MaxMoves() int { return 1 }

// Validate implements Balancer.
func (b PermanentCell) Validate(dlb.Layout) error {
	if err := validateCommon("permcell", b.Hysteresis, 0); err != nil {
		return err
	}
	switch b.Pick {
	case dlb.PickMostLoaded, dlb.PickLeastLoaded, dlb.PickLowestIndex:
		return nil
	default:
		return errUnknownPick(b.Pick)
	}
}

// NewDecider implements Balancer.
func (b PermanentCell) NewDecider(l dlb.Layout, rank int) Decider {
	return permcellDecider{cfg: b}
}

type permcellDecider struct {
	cfg PermanentCell
}

// Decide runs protocol steps 2-3 via the ledger and wraps the single
// decision (or none) in the interface's slice shape.
func (d permcellDecider) Decide(lg *dlb.Ledger, obs Observation) []dlb.Decision {
	dec := lg.Decide(dlb.Loads{Self: obs.Self, Neighbor: obs.Neighbor}, dlb.Config{
		Hysteresis: d.cfg.Hysteresis,
		Pick:       d.cfg.Pick,
		ColLoad:    obs.ColLoad,
	})
	if dec.Col < 0 {
		return nil
	}
	return []dlb.Decision{dec}
}
