package balance

import (
	"sort"

	"permcell/internal/dlb"
	"permcell/internal/topology"
)

// Diffusive is a nearest-neighbor diffusion balancer in the DIFF idiom of
// Eibl & Rüde: each epoch a PE compares its load against its 8 torus
// neighbors only and sheds load down the steepest cost gradients — the
// demanded flow toward a slower neighbor is half the pairwise load gap,
// the first-order diffusion step that would equalize the pair. The flow is
// realized with legal permanent-cell moves (lend an own movable at-home
// column up-left, return a borrowed column down-right to its owner;
// anti-diagonal neighbors have no legal move and absorb nothing), choosing
// the hosted column whose load best matches the demanded flow. Each move
// must strictly lower the pairwise load maximum, so diffusion cannot
// overshoot into ping-ponging.
type Diffusive struct {
	// Hysteresis is the relative load gap a neighbor must trail this PE by
	// before any flow is demanded toward it (0 = any gradient).
	Hysteresis float64
	// Moves bounds the columns shed per PE per epoch (0 = default 1).
	Moves int
}

// Name implements Balancer.
func (Diffusive) Name() string { return "diffusive" }

// Scope implements Balancer: diffusion is strictly nearest-neighbor.
func (Diffusive) Scope() Scope { return ScopeNeighbors }

// MaxMoves implements Balancer.
func (b Diffusive) MaxMoves() int {
	if b.Moves > 0 {
		return b.Moves
	}
	return 1
}

// Validate implements Balancer.
func (b Diffusive) Validate(dlb.Layout) error {
	return validateCommon("diffusive", b.Hysteresis, b.Moves)
}

// NewDecider implements Balancer.
func (b Diffusive) NewDecider(l dlb.Layout, rank int) Decider {
	return &diffusiveDecider{cfg: b, l: l, rank: rank}
}

type diffusiveDecider struct {
	cfg  Diffusive
	l    dlb.Layout
	rank int
}

// Decide implements Decider.
func (d *diffusiveDecider) Decide(lg *dlb.Ledger, obs Observation) []dlb.Decision {
	// Demanded outflows, steepest gradient first (offset index breaks ties
	// deterministically).
	type flow struct {
		k      int // Offsets8 index
		dest   int
		demand float64 // load units this neighbor should absorb
	}
	pi, pj := d.l.T.Coords(d.rank)
	var flows []flow
	for k, off := range topology.Offsets8 {
		nb := obs.Neighbor[k]
		if obs.Self <= nb*(1+d.cfg.Hysteresis) {
			continue
		}
		flows = append(flows, flow{
			k:      k,
			dest:   d.l.T.Rank(pi+off.DI, pj+off.DJ),
			demand: (obs.Self - nb) / 2,
		})
	}
	sort.Slice(flows, func(a, b int) bool {
		if flows[a].demand != flows[b].demand {
			return flows[a].demand > flows[b].demand
		}
		return flows[a].k < flows[b].k
	})

	// Column loads are particle counts; a column's PE-load share is
	// estimated proportionally so flows and column weights share units.
	var myColSum float64
	for _, col := range lg.HostedColumns() {
		myColSum += obs.ColLoad(col)
	}
	colWeight := func(col int) float64 {
		if myColSum <= 0 {
			return 0
		}
		return obs.Self * obs.ColLoad(col) / myColSum
	}

	self := obs.Self
	sent := make(map[int]float64) // Offsets8 index -> load already shed
	used := make(map[int]bool)    // columns already committed this epoch
	var out []dlb.Decision
	for _, f := range flows {
		if len(out) >= d.cfg.MaxMoves() {
			break
		}
		// Legal candidates toward this neighbor.
		var cands []int
		off := topology.Offsets8[f.k]
		switch {
		case offsetIn(topology.UpLeft, off):
			cands = lg.OwnMovableAtHome()
		case offsetIn(topology.DownRight, off):
			cands = lg.BorrowedFrom(f.dest)
		default: // anti-diagonal: no legal move
			continue
		}
		// Best fill: the heaviest column not exceeding the remaining
		// demand; else the lightest available, if it still improves the
		// pairwise max.
		nbLoad := obs.Neighbor[f.k] + sent[f.k]
		demand := (self - nbLoad) / 2
		best, bestW := -1, 0.0
		light, lightW := -1, 0.0
		for _, col := range cands {
			if used[col] {
				continue
			}
			w := colWeight(col)
			if w <= demand && (best < 0 || w > bestW || (w == bestW && col < best)) {
				best, bestW = col, w
			}
			if light < 0 || w < lightW || (w == lightW && col < light) {
				light, lightW = col, w
			}
		}
		if best < 0 {
			best, bestW = light, lightW
		}
		if best < 0 {
			continue
		}
		if bestW <= 0 || nbLoad+bestW >= self {
			continue // would not lower the pairwise max
		}
		out = append(out, dlb.Decision{Col: best, Dest: f.dest})
		used[best] = true
		sent[f.k] += bestW
		self -= bestW
	}
	return out
}

func offsetIn(set []topology.Offset, o topology.Offset) bool {
	for _, s := range set {
		if s == o {
			return true
		}
	}
	return false
}
