package balance

import (
	"math"
	"testing"

	"permcell/internal/dlb"
	"permcell/internal/rng"
	"permcell/internal/space"
)

func grid(t *testing.T, nc int) space.Grid {
	t.Helper()
	b, err := space.NewCubicBox(float64(nc) * 2.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := space.NewGridWithDims(b, nc, nc, nc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// uniformLoad gives every cell load 1.
func uniformLoad(g space.Grid) []float64 {
	l := make([]float64, g.NumCells())
	for i := range l {
		l[i] = 1
	}
	return l
}

// hotLayerLoad concentrates load in one x-layer.
func hotLayerLoad(g space.Grid, layer int, hot float64) []float64 {
	l := uniformLoad(g)
	for c := range l {
		if ix, _, _ := g.Coords(c); ix == layer {
			l[c] = hot
		}
	}
	return l
}

func TestImbalanceSpread(t *testing.T) {
	im := Imbalance{Max: 10, Ave: 5, Min: 2}
	if math.Abs(im.Spread()-1.6) > 1e-12 {
		t.Errorf("spread = %v", im.Spread())
	}
	if (Imbalance{}).Spread() != 0 {
		t.Error("zero imbalance spread not 0")
	}
}

func TestPairLoadMatchesOccupancy(t *testing.T) {
	g := grid(t, 4)
	occ := make([]int, g.NumCells())
	occ[0] = 3 // 3 particles in one cell, empty elsewhere
	load := PairLoad(g, occ)
	if load[0] != 3 {
		t.Errorf("intra-cell pair load = %v, want 3", load[0])
	}
	for c := 1; c < len(load); c++ {
		if load[c] != 0 {
			t.Errorf("empty cell %d has load %v", c, load[c])
		}
	}
	// Two neighboring cells: cross pairs billed half to each.
	occ[1] = 2
	load = PairLoad(g, occ)
	if load[0] != 3+3 || load[1] != 1+3 {
		t.Errorf("cross-pair split: %v, %v (want 6, 4)", load[0], load[1])
	}
}

func TestPlaneStaticUniform(t *testing.T) {
	g := grid(t, 8)
	b, err := NewPlaneStatic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	im := b.Step(uniformLoad(g))
	if im.Spread() != 0 {
		t.Errorf("uniform load spread = %v", im.Spread())
	}
}

func TestPlaneStaticRejects(t *testing.T) {
	g := grid(t, 7)
	if _, err := NewPlaneStatic(g, 4); err == nil {
		t.Error("indivisible accepted")
	}
}

func TestKohringConvergesOnHotLayer(t *testing.T) {
	g := grid(t, 12)
	k, err := NewKohring(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	load := hotLayerLoad(g, 5, 4)
	stat, err := NewPlaneStatic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	staticIm := stat.Step(load)
	var last Imbalance
	for i := 0; i < 30; i++ {
		last = k.Step(load)
	}
	if last.Spread() >= staticIm.Spread() {
		t.Errorf("Kohring did not improve on static: %v -> %v", staticIm.Spread(), last.Spread())
	}
	// Boundaries stay sane.
	bounds := k.Bounds()
	if bounds[0] != 0 || bounds[len(bounds)-1] != g.Nx {
		t.Errorf("bounds ends wrong: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i]-bounds[i-1] < 1 {
			t.Errorf("empty slab in %v", bounds)
		}
	}
}

func TestKohringCannotFixCrossSectionImbalance(t *testing.T) {
	// Load concentrated in one (y) half of every layer: a 1-D x-axis
	// balancer is structurally blind to it — the paper's motivation for a
	// 2-D-capable scheme.
	g := grid(t, 8)
	load := uniformLoad(g)
	for c := range load {
		_, iy, _ := g.Coords(c)
		if iy < 4 {
			load[c] = 10
		}
	}
	k, err := NewKohring(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var im Imbalance
	for i := 0; i < 20; i++ {
		im = k.Step(load)
	}
	if im.Spread() > 1e-9 {
		// Slabs span full y-z planes, so every slab has the same mix:
		// spread should be exactly zero and stay zero (nothing to balance
		// along x, everything wrong within the plane — invisible to it).
		t.Errorf("unexpected spread %v", im.Spread())
	}
	// The per-PE numbers hide the fact that within each slab the work sits
	// on half the cells; the pillar decomposition sees it:
	ps, err := NewPillarStatic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Step(load).Spread() == 0 {
		t.Error("pillar static should expose cross-section imbalance")
	}
}

func TestPermanentCellDLBBalancesHotColumns(t *testing.T) {
	g := grid(t, 12) // p=16 -> s=4, m=3: 4 movable columns per PE
	cfg := dlb.Config{Hysteresis: 0.05, Pick: dlb.PickMostLoaded}
	b, err := NewPermanentCellDLB(g, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := NewPillarStatic(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A hot 2x2 patch covering the movable columns of PE (2,2): DLB can
	// spread them over the up-left neighbors. (A single hot column heavier
	// than a whole PE's average is beyond ANY cell-granular balancer — the
	// DLB limit — so the capability test needs several hot columns.)
	load := uniformLoad(g)
	for c := range load {
		ix, iy, _ := g.Coords(c)
		if (ix == 6 || ix == 7) && (iy == 6 || iy == 7) {
			load[c] = 20
		}
	}
	staticIm := stat.Step(load)
	var im Imbalance
	for i := 0; i < 20; i++ {
		im, err = b.Step(load)
		if err != nil {
			t.Fatal(err)
		}
	}
	if im.Spread() >= staticIm.Spread() {
		t.Errorf("DLB spread %v not below static %v", im.Spread(), staticIm.Spread())
	}
}

func TestPermanentCellDLBRespectsLedgerInvariants(t *testing.T) {
	g := grid(t, 12) // p=16 -> s=4, m=3
	cfg := dlb.Config{Pick: dlb.PickMostLoaded}
	b, err := NewPermanentCellDLB(g, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	load := make([]float64, g.NumCells())
	for step := 0; step < 100; step++ {
		for i := range load {
			load[i] = r.Uniform(0, 2)
		}
		load[r.Intn(len(load))] = 100
		if _, err := b.Step(load); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for _, lg := range b.ledgers {
		if err := lg.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestPillarRejectsBadP(t *testing.T) {
	g := grid(t, 8)
	if _, err := NewPillarStatic(g, 5); err == nil {
		t.Error("p=5 accepted")
	}
	if _, err := NewPermanentCellDLB(g, 6, dlb.Config{}); err == nil {
		t.Error("p=6 accepted")
	}
}

func TestKohringRejectsTooManyPEs(t *testing.T) {
	g := grid(t, 4)
	if _, err := NewKohring(g, 5); err == nil {
		t.Error("p > Nx accepted")
	}
}
