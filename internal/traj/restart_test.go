package traj

import (
	"bytes"
	"encoding/gob"
	"testing"

	"permcell/internal/mdserial"
	"permcell/internal/particle"
	"permcell/internal/potential"
	"permcell/internal/rng"
	"permcell/internal/units"
	"permcell/internal/vec"
	"permcell/internal/workload"
)

// TestCheckpointThermostattedRestart is the regression test for the resume
// divergence this PR fixes: with velocity rescaling every RescaleEvery
// steps, a restart that reset the step counter to zero would rescale at
// different absolute steps than the uninterrupted run. Restoring with
// StartStep keeps the cadence aligned, so the trajectory must match bit
// for bit — including across a rescale boundary after the restart point.
func TestCheckpointThermostattedRestart(t *testing.T) {
	sys, err := workload.LatticeGas(125, 0.256, units.PaperTref, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mdserial.Config{
		Box: sys.Box, Pair: potential.NewPaperLJ(), Dt: 1e-3,
		Tref: units.PaperTref, RescaleEvery: 50,
	}
	ref, err := mdserial.New(cfg, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(120) // rescales at 50 and 100

	half, err := mdserial.New(cfg, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	half.Run(70) // past the first rescale, before the second
	var buf bytes.Buffer
	if err := NewCheckpoint(sys.Box, half.StepCount(), half.Set()).Save(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	box, set, err := cp.Restore()
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Box = box
	rcfg.StartStep = cp.Step
	resumed, err := mdserial.New(rcfg, set)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(50) // crosses the rescale at absolute step 100

	a, b := ref.Set(), resumed.Set()
	a.SortByID()
	b.SortByID()
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("thermostatted restart diverged at particle %d", i)
		}
	}
}

func TestCheckpointRNGCapture(t *testing.T) {
	src := rng.New(99)
	src.Norm() // leave the Box-Muller cache populated
	cp := &Checkpoint{}
	cp.CaptureRNG(src)
	if !cp.HasRNG() {
		t.Fatal("CaptureRNG left no state")
	}

	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := rng.New(0)
	if err := got.RestoreRNG(restored); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if src.Norm() != restored.Norm() {
			t.Fatalf("restored RNG stream diverged at draw %d", i)
		}
	}

	// Nil source: capture is a no-op, restore of corrupt state errors.
	none := &Checkpoint{}
	none.CaptureRNG(nil)
	if none.HasRNG() {
		t.Fatal("nil capture produced state")
	}
	bad := &Checkpoint{RNG: []uint64{1, 2}}
	if err := bad.RestoreRNG(rng.New(0)); err == nil {
		t.Fatal("truncated RNG state accepted")
	}
}

// legacyCheckpoint is the frame layout before the RNG field existed. Gob
// matches struct fields by name, so a stream encoded from it is exactly
// what an old writer produced.
type legacyCheckpoint struct {
	BoxL  vec.V
	Step  int
	ID    []int64
	Pos   []vec.V
	Vel   []vec.V
	Extra map[string]float64
}

func TestLegacyCheckpointDecodes(t *testing.T) {
	s := &particle.Set{}
	s.Add(1, vec.New(1, 2, 3), vec.New(0.1, 0.2, 0.3))
	s.Add(2, vec.New(4, 5, 6), vec.New(0.4, 0.5, 0.6))
	old := legacyCheckpoint{
		BoxL: vec.New(10, 10, 10), Step: 33,
		ID: s.ID, Pos: s.Pos, Vel: s.Vel,
		Extra: map[string]float64{"seed": 7},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if cp.Step != 33 || cp.Extra["seed"] != 7 {
		t.Fatalf("legacy fields mangled: %+v", cp)
	}
	if cp.HasRNG() {
		t.Fatal("legacy frame claims RNG state")
	}
	if err := cp.RestoreRNG(rng.New(0)); err != nil {
		t.Fatalf("RestoreRNG on legacy frame: %v", err)
	}
	box, set, err := cp.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if box.L != old.BoxL || set.Len() != 2 || set.Pos[1] != old.Pos[1] {
		t.Fatal("legacy restore mismatch")
	}
}
