// Package traj reads and writes particle configurations: the (extended)
// XYZ text format for visualization tools, and gob checkpoints that capture
// a full serial-engine state for exact restarts.
package traj

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
	"strings"

	"permcell/internal/particle"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
)

// WriteXYZ writes one frame in extended XYZ: the particle count, a comment
// line, then "Ar x y z vx vy vz" per particle (IDs are preserved by line
// order after a SortByID, which the writer applies to a copy).
func WriteXYZ(w io.Writer, comment string, s *particle.Set) error {
	c := s.Clone()
	c.SortByID()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n%s\n", c.Len(), sanitizeComment(comment)); err != nil {
		return err
	}
	for i := 0; i < c.Len(); i++ {
		p, v := c.Pos[i], c.Vel[i]
		if _, err := fmt.Fprintf(bw, "Ar %.17g %.17g %.17g %.17g %.17g %.17g\n",
			p.X, p.Y, p.Z, v.X, v.Y, v.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sanitizeComment(c string) string {
	return strings.ReplaceAll(strings.ReplaceAll(c, "\n", " "), "\r", " ")
}

// ReadXYZ reads one frame written by WriteXYZ (velocities optional: plain
// 3-column XYZ is accepted with zero velocities). Particle IDs are assigned
// by line order.
func ReadXYZ(r io.Reader) (*particle.Set, string, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("traj: reading count: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || n < 0 {
		return nil, "", fmt.Errorf("traj: bad particle count %q", strings.TrimSpace(header))
	}
	comment, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("traj: reading comment: %w", err)
	}
	comment = strings.TrimRight(comment, "\r\n")
	set := &particle.Set{}
	for i := 0; i < n; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && line != "") {
			return nil, "", fmt.Errorf("traj: reading particle %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 4 && len(fields) != 7 {
			return nil, "", fmt.Errorf("traj: particle %d has %d fields, want 4 or 7", i, len(fields))
		}
		vals := make([]float64, len(fields)-1)
		for k, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, "", fmt.Errorf("traj: particle %d field %d: %w", i, k, err)
			}
			vals[k] = v
		}
		pos := vec.New(vals[0], vals[1], vals[2])
		vel := vec.Zero
		if len(vals) == 6 {
			vel = vec.New(vals[3], vals[4], vals[5])
		}
		set.Add(int64(i), pos, vel)
	}
	return set, comment, nil
}

// Checkpoint is a full restartable snapshot.
type Checkpoint struct {
	BoxL  vec.V
	Step  int
	ID    []int64
	Pos   []vec.V
	Vel   []vec.V
	Extra map[string]float64 // engine-specific scalars (seeds, accumulators)
	// RNG is the auxiliary generator stream's state (rng.Source.State),
	// so a restart continues the stream bit-identically. Legacy frames
	// decode with RNG nil (gob leaves unknown fields zero); HasRNG
	// distinguishes "no generator in use" from "legacy frame".
	RNG []uint64
}

// CaptureRNG records src's state into the checkpoint. A nil src is a no-op,
// for engines that carry no live generator.
func (c *Checkpoint) CaptureRNG(src *rng.Source) {
	if src != nil {
		c.RNG = src.State()
	}
}

// HasRNG reports whether the checkpoint carries generator state (false for
// frames written before the RNG field existed).
func (c *Checkpoint) HasRNG() bool { return len(c.RNG) > 0 }

// RestoreRNG restores src from the captured state. It is a no-op on a
// legacy frame without one, preserving the old restart behavior for old
// files.
func (c *Checkpoint) RestoreRNG(src *rng.Source) error {
	if !c.HasRNG() {
		return nil
	}
	if err := src.SetState(c.RNG); err != nil {
		return fmt.Errorf("traj: %w", err)
	}
	return nil
}

// NewCheckpoint captures a snapshot.
func NewCheckpoint(box space.Box, step int, s *particle.Set) *Checkpoint {
	return &Checkpoint{
		BoxL: box.L,
		Step: step,
		ID:   append([]int64(nil), s.ID...),
		Pos:  append([]vec.V(nil), s.Pos...),
		Vel:  append([]vec.V(nil), s.Vel...),
	}
}

// Save gob-encodes the checkpoint.
func (c *Checkpoint) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// LoadCheckpoint decodes a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("traj: decoding checkpoint: %w", err)
	}
	if len(c.ID) != len(c.Pos) || len(c.Pos) != len(c.Vel) {
		return nil, fmt.Errorf("traj: ragged checkpoint arrays")
	}
	return &c, nil
}

// Restore rebuilds the box and particle set.
func (c *Checkpoint) Restore() (space.Box, *particle.Set, error) {
	box, err := space.NewBox(c.BoxL)
	if err != nil {
		return space.Box{}, nil, fmt.Errorf("traj: %w", err)
	}
	s := &particle.Set{}
	for i := range c.ID {
		s.Add(c.ID[i], c.Pos[i], c.Vel[i])
	}
	if err := s.Validate(); err != nil {
		return space.Box{}, nil, fmt.Errorf("traj: %w", err)
	}
	return box, s, nil
}
