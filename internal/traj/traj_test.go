package traj

import (
	"bytes"
	"strings"
	"testing"

	"permcell/internal/mdserial"
	"permcell/internal/potential"
	"permcell/internal/space"
	"permcell/internal/workload"
)

func TestXYZRoundTrip(t *testing.T) {
	sys, err := workload.LatticeGas(64, 0.3, 0.722, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, "frame 1", sys.Set); err != nil {
		t.Fatal(err)
	}
	got, comment, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if comment != "frame 1" {
		t.Errorf("comment = %q", comment)
	}
	if got.Len() != 64 {
		t.Fatalf("N = %d", got.Len())
	}
	want := sys.Set.Clone()
	want.SortByID()
	for i := range got.Pos {
		if got.Pos[i] != want.Pos[i] || got.Vel[i] != want.Vel[i] {
			t.Fatalf("particle %d round trip mismatch", i)
		}
	}
}

func TestXYZPlainThreeColumn(t *testing.T) {
	in := "2\nplain\nAr 1 2 3\nAr 4 5 6\n"
	s, _, err := ReadXYZ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Pos[1].X != 4 || s.Vel[0].Norm() != 0 {
		t.Errorf("parsed %v", s.Pos)
	}
}

func TestXYZCommentSanitized(t *testing.T) {
	sys, _ := workload.LatticeGas(8, 0.3, 0.722, 2)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, "line1\nline2", sys.Set); err != nil {
		t.Fatal(err)
	}
	_, comment, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(comment, "\n") {
		t.Error("newline survived in comment")
	}
}

func TestXYZErrors(t *testing.T) {
	cases := []string{
		"",
		"abc\ncomment\n",
		"1\ncomment\nAr 1 2\n",
		"2\ncomment\nAr 1 2 3\n",
		"1\ncomment\nAr x y z\n",
	}
	for _, in := range cases {
		if _, _, err := ReadXYZ(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	sys, err := workload.LatticeGas(125, 0.256, 0.722, 3)
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCheckpoint(sys.Box, 42, sys.Set)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 {
		t.Errorf("step = %d", got.Step)
	}
	box, set, err := got.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if box.L != sys.Box.L || set.Len() != 125 {
		t.Error("restore mismatch")
	}
	for i := range set.Pos {
		if set.Pos[i] != sys.Set.Pos[i] || set.Vel[i] != sys.Set.Vel[i] {
			t.Fatalf("particle %d mismatch", i)
		}
	}
}

func TestCheckpointExactRestart(t *testing.T) {
	// Saving mid-run and restarting must reproduce the original trajectory
	// bit for bit (forces are recomputed from positions).
	sys, err := workload.LatticeGas(125, 0.256, 0.722, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mdserial.Config{Box: sys.Box, Pair: potential.NewPaperLJ(), Dt: 1e-3}
	ref, err := mdserial.New(cfg, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(60)

	half, err := mdserial.New(cfg, sys.Set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	half.Run(30)
	var buf bytes.Buffer
	if err := NewCheckpoint(sys.Box, half.StepCount(), half.Set()).Save(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	box, set, err := cp.Restore()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Box = box
	resumed, err := mdserial.New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(30)

	a, b := ref.Set(), resumed.Set()
	a.SortByID()
	b.SortByID()
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("restart diverged at particle %d", i)
		}
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRestoreRaggedRejected(t *testing.T) {
	cp := &Checkpoint{BoxL: space.Box{}.L}
	if _, _, err := cp.Restore(); err == nil {
		t.Error("zero box accepted")
	}
}
