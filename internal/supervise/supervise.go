// Package supervise is the failure taxonomy and recovery policy shared by
// the self-healing run layer: the parallel engines (internal/core,
// internal/corestatic) convert PE crashes and physics-guard violations into
// the typed errors defined here, and the facade supervisor
// (permcell.WithSupervisor) consumes them to decide when to roll back to a
// checkpoint and retry. The package is a leaf — it imports only the
// standard library — so both engines and the comm substrate can use its
// types without import cycles.
package supervise

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// RankFailure reports that one PE goroutine panicked: the panic value,
// the rank it happened on and the goroutine's stack at the point of
// recovery. The process survives; the failed world is torn down and (under
// a supervisor) rolled back to the latest valid checkpoint.
type RankFailure struct {
	// Rank is the PE whose goroutine panicked (-1 when the failure happened
	// on the driver goroutine, e.g. in the serial engine).
	Rank int
	// Value is the rendered panic value.
	Value string
	// Stack is the failing goroutine's stack trace.
	Stack string
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("supervise: rank %d panicked: %s", e.Rank, e.Value)
}

// GuardViolation reports that the runtime physics-guard pass failed: the
// state is numerically or physically invalid (non-finite coordinates,
// particle-count loss, runaway energy drift). Violations are raised before
// the offending step's statistics are emitted or checkpointed, so neither
// the trace nor the checkpoint pair is poisoned by the bad state.
type GuardViolation struct {
	// Rank is the PE that detected the violation.
	Rank int
	// Step is the absolute time step the violation was detected at.
	Step int
	// Check names the failed guard: "finite", "conservation" or
	// "energy-drift".
	Check string
	// Detail describes the violation.
	Detail string
}

func (e *GuardViolation) Error() string {
	return fmt.Sprintf("supervise: guard %q violated at step %d (rank %d): %s",
		e.Check, e.Step, e.Rank, e.Detail)
}

// GuardConfig tunes the runtime physics guards evaluated at the stats
// cadence. The zero value selects the defaults; Disabled turns the pass off
// entirely.
type GuardConfig struct {
	// Disabled turns the guard pass off.
	Disabled bool
	// MaxEnergyDrift is the relative total-energy drift ceiling: the run
	// fails when |E - E0| exceeds MaxEnergyDrift * max(1, |E0|), with E0 the
	// first census after (re)start. 0 selects DefaultMaxEnergyDrift;
	// negative disables the drift check only (finiteness and conservation
	// stay on).
	MaxEnergyDrift float64
}

// DefaultMaxEnergyDrift is the default relative energy-drift ceiling. It is
// deliberately generous: the thermostatted condensation runs trade potential
// for kinetic energy on purpose, while an integrator blow-up overshoots any
// O(1) ceiling within a few steps.
const DefaultMaxEnergyDrift = 5.0

// Drift returns the configured drift ceiling (0 = drift check disabled).
func (g GuardConfig) Drift() float64 {
	if g.MaxEnergyDrift == 0 {
		return DefaultMaxEnergyDrift
	}
	if g.MaxEnergyDrift < 0 {
		return 0
	}
	return g.MaxEnergyDrift
}

// Policy configures the supervisor: how many recovery attempts a run gets,
// how the backoff between them grows, which guards run, and an optional
// event sink.
type Policy struct {
	// MaxRetries is the recovery budget: the number of rollback+resume
	// attempts before the run degrades to a partial Result plus a
	// *RetryBudgetError (0 = fail on the first failure).
	MaxRetries int
	// Backoff is the delay before the first retry (default 50ms). Each
	// subsequent retry doubles it (BackoffFactor) up to MaxBackoff.
	Backoff time.Duration
	// BackoffFactor is the growth factor between retries (default 2).
	BackoffFactor float64
	// MaxBackoff caps the delay (default 5s).
	MaxBackoff time.Duration
	// Guard tunes the runtime physics guards.
	Guard GuardConfig
	// WorkerRecovery selects how a distributed worker failure heals:
	// RecoverRespawn (the default, also chosen by "") restarts at the same
	// worker-process count; RecoverRescale restarts on one fewer process,
	// shedding the failed worker's slot onto the survivors. Ignored by
	// in-process engines, which have no worker processes to lose.
	WorkerRecovery string
	// OnEvent, when non-nil, observes every supervision event as it
	// happens (failure, rollback, resume, give-up).
	OnEvent func(Event)
}

// WorkerRecovery policies.
const (
	RecoverRespawn = "respawn"
	RecoverRescale = "rescale"
)

// BackoffFor returns the delay before retry attempt (1-based), growing
// exponentially from Backoff and capped at MaxBackoff.
func (p Policy) BackoffFor(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	factor := p.BackoffFactor
	if factor < 1 {
		factor = 2
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = 5 * time.Second
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= factor
		if time.Duration(d) >= limit {
			return limit
		}
	}
	return min(time.Duration(d), limit)
}

// Event kinds recorded in Report.Events.
const (
	EventRankFailure    = "rank-failure"    // a PE goroutine panicked
	EventGuardViolation = "guard-violation" // a physics guard fired
	EventDeadlock       = "deadlock"        // the comm watchdog fired
	EventWorkerFailure  = "worker-failure"  // a distributed worker process/link died
	EventRollback       = "rollback"        // state restored from a checkpoint
	EventGiveUp         = "give-up"         // retry budget exhausted
)

// Event is one entry of the supervision log.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Step is the absolute step the run was at when the event happened.
	Step int
	// Attempt is the retry attempt the event belongs to (0 = before any
	// retry).
	Attempt int
	// Err is the rendered failure (failure and give-up events).
	Err string
	// Checkpoint is the file restored from (rollback events).
	Checkpoint string
	// RestoredStep is the absolute step of the restored checkpoint
	// (rollback events).
	RestoredStep int
}

// Report is the structured supervision outcome: the full event log plus
// recovery counters. A healthy run that never failed has all-zero counters.
type Report struct {
	Events []Event
	// Failure-class counters.
	RankFailures, GuardViolations, Deadlocks int
	// WorkerFailures counts distributed worker failures (process exits,
	// heartbeat timeouts, frame corruption, protocol violations).
	WorkerFailures int
	// Recovery counters.
	Rollbacks, Retries int
	// StepsReplayed counts re-executed step records suppressed during
	// replay (the work redone to get back to the failure point).
	StepsReplayed int
	// Exhausted is set when the retry budget ran out and the run degraded
	// to a partial result.
	Exhausted bool
}

// RetryBudgetError is returned when the retry budget is exhausted: the run
// ends with whatever statistics were collected (a partial Result) and this
// error carrying the last failure and the full report.
type RetryBudgetError struct {
	// Attempts is the number of recovery attempts consumed.
	Attempts int
	// Last is the failure that exhausted the budget.
	Last error
	// Report is the structured failure report.
	Report *Report
}

func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("supervise: retry budget exhausted after %d attempts (%d rollbacks, %d steps replayed): %v",
		e.Attempts, e.Report.Rollbacks, e.Report.StepsReplayed, e.Last)
}

// Unwrap exposes the last failure to errors.As/Is.
func (e *RetryBudgetError) Unwrap() error { return e.Last }

// Trap collects panics recovered from PE goroutines. Every rank defers
// Catch; the first failure closes Failed so drivers waiting on a batch can
// react promptly instead of waiting out the watchdog.
type Trap struct {
	mu       sync.Mutex
	failures []error
	fired    chan struct{}
	once     sync.Once
}

// NewTrap returns an armed trap.
func NewTrap() *Trap {
	return &Trap{fired: make(chan struct{})}
}

// Catch recovers a panic on the calling goroutine and records it as a typed
// failure: a *GuardViolation panic value passes through as-is, anything
// else becomes a *RankFailure with the goroutine's stack. Must be invoked
// via defer. A nil recover is a no-op, so Catch is safe on the normal
// return path.
func (t *Trap) Catch(rank int) {
	r := recover()
	if r == nil {
		return
	}
	var err error
	switch v := r.(type) {
	case *GuardViolation:
		err = v
	case *RankFailure:
		err = v
	default:
		err = &RankFailure{Rank: rank, Value: fmt.Sprint(r), Stack: string(debug.Stack())}
	}
	t.mu.Lock()
	t.failures = append(t.failures, err)
	t.mu.Unlock()
	t.once.Do(func() { close(t.fired) })
}

// Failed returns a channel closed on the first recorded failure.
func (t *Trap) Failed() <-chan struct{} { return t.fired }

// Err returns the first recorded failure (nil when none).
func (t *Trap) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.failures) == 0 {
		return nil
	}
	return t.failures[0]
}

// All returns a copy of every recorded failure.
func (t *Trap) All() []error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]error(nil), t.failures...)
}

// Sabotage kinds.
const (
	// SabotagePanic crashes the target rank's goroutine at the target step.
	SabotagePanic = "panic"
	// SabotageNaN corrupts one velocity component on the target rank to NaN
	// at the target step, exercising the finite guard.
	SabotageNaN = "nan"
)

// Sabotage is a scripted one-shot fault for chaos-testing the recovery
// path: it fires exactly once per process, on the first incarnation of the
// engine that reaches (Step, Rank) — replays after a rollback see it
// already spent, so a recovered run converges to the golden trace. The
// same Sabotage pointer must be shared across engine incarnations (the
// facade supervisor threads it through rollbacks automatically).
type Sabotage struct {
	// Kind is SabotagePanic or SabotageNaN.
	Kind string
	// Step is the absolute time step to fire at.
	Step int
	// Rank is the PE to fire on.
	Rank int

	spent atomic.Bool
}

// TryFire reports whether the sabotage fires now: true exactly once, when
// step and rank match the script. Nil-safe.
func (s *Sabotage) TryFire(step, rank int) bool {
	if s == nil || step != s.Step || rank != s.Rank {
		return false
	}
	return s.spent.CompareAndSwap(false, true)
}

// Fired reports whether the sabotage already went off.
func (s *Sabotage) Fired() bool { return s != nil && s.spent.Load() }
