package supervise

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.BackoffFor(i + 1); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var p Policy
	if got := p.BackoffFor(1); got != 50*time.Millisecond {
		t.Errorf("default first backoff = %v, want 50ms", got)
	}
	if got := p.BackoffFor(100); got != 5*time.Second {
		t.Errorf("default capped backoff = %v, want 5s", got)
	}
}

func TestGuardDrift(t *testing.T) {
	if got := (GuardConfig{}).Drift(); got != DefaultMaxEnergyDrift {
		t.Errorf("zero config drift = %g, want default %g", got, DefaultMaxEnergyDrift)
	}
	if got := (GuardConfig{MaxEnergyDrift: 1.5}).Drift(); got != 1.5 {
		t.Errorf("explicit drift = %g, want 1.5", got)
	}
	if got := (GuardConfig{MaxEnergyDrift: -1}).Drift(); got != 0 {
		t.Errorf("negative drift = %g, want 0 (disabled)", got)
	}
}

func TestTrapCatchesPanicAsRankFailure(t *testing.T) {
	tr := NewTrap()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer tr.Catch(3)
		panic("boom")
	}()
	<-done
	select {
	case <-tr.Failed():
	default:
		t.Fatal("Failed channel not closed after panic")
	}
	var rf *RankFailure
	if err := tr.Err(); !errors.As(err, &rf) {
		t.Fatalf("Err() = %v, want *RankFailure", err)
	}
	if rf.Rank != 3 || rf.Value != "boom" {
		t.Errorf("failure = rank %d value %q, want rank 3 value \"boom\"", rf.Rank, rf.Value)
	}
	if !strings.Contains(rf.Stack, "goroutine") {
		t.Error("failure carries no stack trace")
	}
}

func TestTrapPassesGuardViolationThrough(t *testing.T) {
	tr := NewTrap()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer tr.Catch(1)
		panic(&GuardViolation{Rank: 1, Step: 17, Check: "finite", Detail: "particle 5"})
	}()
	<-done
	var gv *GuardViolation
	if err := tr.Err(); !errors.As(err, &gv) {
		t.Fatalf("Err() = %v, want *GuardViolation", err)
	}
	if gv.Step != 17 || gv.Check != "finite" {
		t.Errorf("violation = %+v, want step 17 check finite", gv)
	}
}

func TestTrapNormalReturnIsClean(t *testing.T) {
	tr := NewTrap()
	func() { defer tr.Catch(0) }()
	if err := tr.Err(); err != nil {
		t.Fatalf("Err() = %v on clean return", err)
	}
	select {
	case <-tr.Failed():
		t.Fatal("Failed closed with no failure")
	default:
	}
}

func TestTrapCollectsConcurrentFailures(t *testing.T) {
	tr := NewTrap()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer tr.Catch(rank)
			panic(rank)
		}(r)
	}
	wg.Wait()
	if got := len(tr.All()); got != 8 {
		t.Errorf("recorded %d failures, want 8", got)
	}
}

func TestSabotageFiresExactlyOnce(t *testing.T) {
	s := &Sabotage{Kind: SabotagePanic, Step: 10, Rank: 2}
	if s.TryFire(9, 2) || s.TryFire(10, 1) {
		t.Fatal("fired off-script")
	}
	if !s.TryFire(10, 2) {
		t.Fatal("did not fire on script")
	}
	if s.TryFire(10, 2) {
		t.Fatal("fired twice")
	}
	if !s.Fired() {
		t.Fatal("Fired() false after firing")
	}
	var nilSab *Sabotage
	if nilSab.TryFire(10, 2) || nilSab.Fired() {
		t.Fatal("nil sabotage fired")
	}
}

func TestRetryBudgetErrorUnwraps(t *testing.T) {
	last := &GuardViolation{Rank: 0, Step: 5, Check: "conservation", Detail: "n=9 want 10"}
	err := &RetryBudgetError{Attempts: 3, Last: last, Report: &Report{Rollbacks: 3}}
	var gv *GuardViolation
	if !errors.As(err, &gv) {
		t.Fatal("RetryBudgetError does not unwrap to the last failure")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error text %q lacks attempt count", err.Error())
	}
}
