package dlb

import (
	"testing"

	"permcell/internal/rng"
	"permcell/internal/topology"
)

// TestLedgerSoakUnderStalls is the randomized quick-check companion of
// TestProtocolSimulation: across many seeds it runs the three-case protocol
// with random loads while a random subset of PEs is "stalled" each step —
// modelling the chaos layer's stall injection, where a PE that misses its
// DLB window contributes the always-legal None decision while its neighbors
// keep moving columns around it. After every step the full invariant suite
// must hold: 8-neighbor ledger closure (CheckInvariants: permanent columns
// at home, hosts within the up-left set, the C' column bound) and global
// host conservation (every column hosted exactly once).
func TestLedgerSoakUnderStalls(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 20
	}
	const steps = 40

	for seed := 1; seed <= seeds; seed++ {
		r := rng.New(uint64(seed))
		// Random geometry per seed; small tori alias offsets the hardest.
		s := 2 + r.Intn(3)
		m := 2 + r.Intn(3)
		pick := []Strategy{PickMostLoaded, PickLeastLoaded, PickLowestIndex}[r.Intn(3)]
		l, lgs := newLedgers(t, s, m)

		loadOf := make([]float64, l.P())
		for step := 0; step < steps; step++ {
			for i := range loadOf {
				loadOf[i] = r.Uniform(1, 2)
			}
			if step%3 == 0 {
				loadOf[r.Intn(l.P())] = r.Uniform(10, 20)
			}

			decisions := make([]Decision, l.P())
			stalled := 0
			for rank, lg := range lgs {
				if r.Float64() < 0.25 {
					// A stalled PE sits the step out: None is a valid
					// protocol decision its neighbors apply trivially.
					decisions[rank] = None
					stalled++
					continue
				}
				var loads Loads
				loads.Self = loadOf[rank]
				pi, pj := l.T.Coords(rank)
				for k, off := range topology.Offsets8 {
					loads.Neighbor[k] = loadOf[l.T.Rank(pi+off.DI, pj+off.DJ)]
				}
				decisions[rank] = lg.Decide(loads, Config{Pick: pick})
			}
			for rank, d := range decisions {
				applyEverywhere(t, l, lgs, rank, d)
			}

			checkGlobalPartition(t, l, lgs)
			for rank, lg := range lgs {
				if err := lg.CheckInvariants(); err != nil {
					t.Fatalf("seed %d s=%d m=%d step %d (%d stalled): rank %d: %v",
						seed, s, m, step, stalled, rank, err)
				}
			}
		}
	}
}
