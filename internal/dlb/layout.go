// Package dlb implements the paper's contribution: dynamic load balancing
// based on permanent cells (Section 2.3). Square-pillar domains place an
// m x m block of cell columns on each PE of a sqrt(P) x sqrt(P) torus. The
// last local row and column of each block are permanent cells that never
// leave their owner; the (m-1)^2 remaining columns are movable. Every step,
// each PE may hand one column to the fastest PE in its 8-neighborhood,
// following the three cases of the redistribution protocol:
//
//	Case 1  fastest is up-left  ((-1,-1), (-1,0), (0,-1)): send one of my
//	        own movable columns that is still at home.
//	Case 2  fastest is anti-diagonal ((-1,+1), (+1,-1)): nothing to send.
//	Case 3  fastest is down-right ((0,+1), (+1,0), (+1,+1)): return one of
//	        the columns I previously received from it, if any.
//
// The permanent walls guarantee that any column adjacent to a hosted column
// is hosted within the host's 8-neighborhood, so the communication pattern
// stays a regular 8-neighbor torus exchange forever — the whole point of
// the method.
package dlb

import (
	"fmt"
	"sort"

	"permcell/internal/topology"
)

// Layout is the static geometry of a square-pillar DLB run: an S x S torus
// of PEs, each owning an M x M block of columns. Column indices are
// flattened as cx + (S*M)*cy, matching space.Grid.ColumnIndex.
type Layout struct {
	S int // torus side, sqrt(P)
	M int // columns per side per PE
	T topology.Torus2D
}

// NewLayout returns the layout for an S x S torus with M x M columns per PE.
func NewLayout(s, m int) (Layout, error) {
	if s < 2 {
		return Layout{}, fmt.Errorf("dlb: torus side must be >= 2, got %d", s)
	}
	if m < 1 {
		return Layout{}, fmt.Errorf("dlb: m must be >= 1, got %d", m)
	}
	t, err := topology.NewTorus2D(s, s)
	if err != nil {
		return Layout{}, err
	}
	return Layout{S: s, M: m, T: t}, nil
}

// P returns the PE count S*S.
func (l Layout) P() int { return l.S * l.S }

// NxColumns returns the number of columns per axis, S*M.
func (l Layout) NxColumns() int { return l.S * l.M }

// NumColumns returns the total number of columns (S*M)^2.
func (l Layout) NumColumns() int { n := l.NxColumns(); return n * n }

// ColumnAt returns the column index at cross-section coordinates (cx, cy).
func (l Layout) ColumnAt(cx, cy int) int { return cx + l.NxColumns()*cy }

// ColumnCoords inverts ColumnAt.
func (l Layout) ColumnCoords(col int) (cx, cy int) {
	n := l.NxColumns()
	return col % n, col / n
}

// OwnerOf returns the rank that statically owns column col.
func (l Layout) OwnerOf(col int) int {
	cx, cy := l.ColumnCoords(col)
	return l.T.Rank(cx/l.M, cy/l.M)
}

// LocalCoords returns col's coordinates within its owner's M x M block.
func (l Layout) LocalCoords(col int) (a, b int) {
	cx, cy := l.ColumnCoords(col)
	return cx % l.M, cy % l.M
}

// IsPermanent reports whether col is a permanent column (last local row or
// column of its owner's block). With M == 1 every column is permanent and
// DLB degenerates to plain DDM.
func (l Layout) IsPermanent(col int) bool {
	a, b := l.LocalCoords(col)
	return a == l.M-1 || b == l.M-1
}

// ColumnsOf returns all columns owned by rank, ascending.
func (l Layout) ColumnsOf(rank int) []int {
	pi, pj := l.T.Coords(rank)
	out := make([]int, 0, l.M*l.M)
	for b := 0; b < l.M; b++ {
		for a := 0; a < l.M; a++ {
			out = append(out, l.ColumnAt(pi*l.M+a, pj*l.M+b))
		}
	}
	sort.Ints(out)
	return out
}

// MovableColumnsOf returns rank's movable columns, ascending.
func (l Layout) MovableColumnsOf(rank int) []int {
	var out []int
	for _, c := range l.ColumnsOf(rank) {
		if !l.IsPermanent(c) {
			out = append(out, c)
		}
	}
	return out
}

// UpLeftRanks returns the ranks at rank's Case-1 offsets, in UpLeft order.
func (l Layout) UpLeftRanks(rank int) []int {
	pi, pj := l.T.Coords(rank)
	out := make([]int, len(topology.UpLeft))
	for k, o := range topology.UpLeft {
		out[k] = l.T.Rank(pi+o.DI, pj+o.DJ)
	}
	return out
}

// DownRightRanks returns the ranks at rank's Case-3 offsets, in DownRight
// order.
func (l Layout) DownRightRanks(rank int) []int {
	pi, pj := l.T.Coords(rank)
	out := make([]int, len(topology.DownRight))
	for k, o := range topology.DownRight {
		out[k] = l.T.Rank(pi+o.DI, pj+o.DJ)
	}
	return out
}

// MaxHostedColumns returns C' in columns: a PE can host at most its own
// M^2 columns plus the movable columns of its three down-right neighbors,
// M^2 + 3(M-1)^2 (Section 4.1).
func (l Layout) MaxHostedColumns() int {
	return l.M*l.M + 3*(l.M-1)*(l.M-1)
}
