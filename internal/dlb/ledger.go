package dlb

import (
	"fmt"
	"sort"

	"permcell/internal/topology"
)

// Strategy selects which candidate column a PE hands over when several are
// eligible. The paper leaves the choice open; MostLoaded transfers the most
// work per move and is the default. The alternatives exist for the ablation
// benchmarks.
type Strategy int

// Column-pick strategies.
const (
	PickMostLoaded Strategy = iota
	PickLeastLoaded
	PickLowestIndex
)

// Config tunes the per-step decision.
type Config struct {
	// Hysteresis is the relative load gap required before a column moves:
	// a PE sends only if its load exceeds the fastest neighbor's load by
	// this fraction. Zero reproduces the paper's protocol literally (any
	// strictly faster neighbor triggers a move); a small positive value
	// suppresses ping-ponging when loads are statistically equal.
	Hysteresis float64
	// ColLoad reports the current load of a column (e.g. its particle
	// count). May be nil, in which case all columns weigh the same.
	ColLoad func(col int) float64
	// Pick selects among candidate columns.
	Pick Strategy
}

// Loads carries the execution times exchanged in protocol step 1: the PE's
// own last-step load and its 8 neighbors' loads in topology.Offsets8 order.
type Loads struct {
	Self     float64
	Neighbor [8]float64
}

// Decision is the outcome of one PE's protocol step: move column Col to
// rank Dest, or nothing (Col < 0). Decisions are broadcast to the 8
// neighbors (protocol step 4) and applied by every ledger that tracks the
// column.
type Decision struct {
	Col  int
	Dest int
}

// None is the empty decision.
var None = Decision{Col: -1}

// Ledger is one PE's view of column placement. It tracks the host of every
// column owned by the PE itself and its three down-right neighbors — the
// exact set for which the PE hears all host-changing decisions (every such
// move is decided by the PE itself or one of its 8 neighbors; see the
// package comment and DESIGN.md invariants).
type Ledger struct {
	L    Layout
	Rank int

	host          map[int]int
	trackedOwners map[int]bool
}

// NewLedger returns rank's ledger in the initial state (every column at its
// owner).
func NewLedger(l Layout, rank int) *Ledger {
	lg := &Ledger{
		L:             l,
		Rank:          rank,
		host:          make(map[int]int),
		trackedOwners: map[int]bool{rank: true},
	}
	for _, r := range l.DownRightRanks(rank) {
		lg.trackedOwners[r] = true
	}
	for o := range lg.trackedOwners {
		for _, col := range l.ColumnsOf(o) {
			lg.host[col] = o
		}
	}
	return lg
}

// RestoreLedger rebuilds rank's ledger from a global column→host map (e.g.
// merged from checkpoint frames): tracked columns take their host from the
// map, and the result must satisfy the permanent-cell invariants. Columns
// absent from hosts are assumed at home, so a map holding only displaced
// columns also restores correctly.
func RestoreLedger(l Layout, rank int, hosts map[int]int) (*Ledger, error) {
	lg := NewLedger(l, rank)
	for col := range lg.host {
		if h, ok := hosts[col]; ok {
			lg.host[col] = h
		}
	}
	if err := lg.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("dlb: restoring rank %d ledger: %w", rank, err)
	}
	return lg, nil
}

// Tracks reports whether the ledger maintains dynamic host state for col.
func (lg *Ledger) Tracks(col int) bool {
	return lg.trackedOwners[lg.L.OwnerOf(col)]
}

// HostOf returns the current host of col. For untracked movable columns —
// which the halo protocol never needs — it returns an error; untracked
// permanent columns are resolved statically (they never move).
func (lg *Ledger) HostOf(col int) (int, error) {
	if h, ok := lg.host[col]; ok {
		return h, nil
	}
	if lg.L.IsPermanent(col) {
		return lg.L.OwnerOf(col), nil
	}
	return 0, fmt.Errorf("dlb: rank %d cannot resolve host of untracked movable column %d", lg.Rank, col)
}

// HostedColumns returns the columns currently hosted by this PE, ascending.
func (lg *Ledger) HostedColumns() []int {
	var out []int
	for col, h := range lg.host {
		if h == lg.Rank {
			out = append(out, col)
		}
	}
	sort.Ints(out)
	return out
}

// BorrowedFrom returns the columns owned by owner that this PE currently
// hosts, ascending. Owner must be a tracked owner.
func (lg *Ledger) BorrowedFrom(owner int) []int {
	var out []int
	for _, col := range lg.L.ColumnsOf(owner) {
		if lg.host[col] == lg.Rank && owner != lg.Rank {
			out = append(out, col)
		}
	}
	return out
}

// OwnMovableAtHome returns this PE's own movable columns still hosted by
// itself, ascending — the Case-1 candidates.
func (lg *Ledger) OwnMovableAtHome() []int {
	var out []int
	for _, col := range lg.L.MovableColumnsOf(lg.Rank) {
		if lg.host[col] == lg.Rank {
			out = append(out, col)
		}
	}
	return out
}

// LentOut returns this PE's own columns currently hosted elsewhere,
// ascending.
func (lg *Ledger) LentOut() []int {
	var out []int
	for _, col := range lg.L.ColumnsOf(lg.Rank) {
		if lg.host[col] != lg.Rank {
			out = append(out, col)
		}
	}
	return out
}

// pick chooses one column from non-empty candidates under cfg.
func pick(cands []int, cfg Config) int {
	switch cfg.Pick {
	case PickLowestIndex:
		return cands[0] // candidates are ascending
	case PickLeastLoaded:
		best, bestLoad := cands[0], loadOf(cands[0], cfg)
		for _, c := range cands[1:] {
			if l := loadOf(c, cfg); l < bestLoad {
				best, bestLoad = c, l
			}
		}
		return best
	default: // PickMostLoaded
		best, bestLoad := cands[0], loadOf(cands[0], cfg)
		for _, c := range cands[1:] {
			if l := loadOf(c, cfg); l > bestLoad {
				best, bestLoad = c, l
			}
		}
		return best
	}
}

func loadOf(col int, cfg Config) float64 {
	if cfg.ColLoad == nil {
		return 1
	}
	return cfg.ColLoad(col)
}

// Decide runs protocol steps 2-3: find the fastest PE among self and the 8
// neighbors and choose the column to send, if any. It does not mutate the
// ledger; the caller broadcasts the decision and applies it everywhere
// (including locally) via Apply.
func (lg *Ledger) Decide(loads Loads, cfg Config) Decision {
	// Step 2: fastest slot. Self wins ties; among neighbors the lowest
	// offset index wins, making the protocol deterministic.
	fastestK, fastest := -1, loads.Self
	for k, v := range loads.Neighbor {
		if v < fastest {
			fastest, fastestK = v, k
		}
	}
	if fastestK < 0 {
		return None
	}
	if loads.Self <= fastest*(1+cfg.Hysteresis) {
		return None
	}

	off := topology.Offsets8[fastestK]
	pi, pj := lg.L.T.Coords(lg.Rank)
	dest := lg.L.T.Rank(pi+off.DI, pj+off.DJ)

	switch {
	case contains(topology.UpLeft, off): // Case 1
		cands := lg.OwnMovableAtHome()
		if len(cands) == 0 {
			return None
		}
		return Decision{Col: pick(cands, cfg), Dest: dest}
	case contains(topology.DownRight, off): // Case 3
		cands := lg.BorrowedFrom(dest)
		if len(cands) == 0 {
			return None
		}
		return Decision{Col: pick(cands, cfg), Dest: dest}
	default: // Case 2
		return None
	}
}

func contains(set []topology.Offset, o topology.Offset) bool {
	for _, s := range set {
		if s == o {
			return true
		}
	}
	return false
}

// Apply incorporates a decision made by rank decider (protocol step 4).
// Decisions about columns this ledger does not track are ignored. Tracked
// decisions are validated against the protocol: only the current host moves
// a column, permanent columns never move, Case-1 sends go to an up-left
// neighbor of the owner, and Case-3 returns go back to the owner.
func (lg *Ledger) Apply(decider int, d Decision) error {
	if d.Col < 0 {
		return nil
	}
	owner := lg.L.OwnerOf(d.Col)
	if !lg.trackedOwners[owner] {
		return nil
	}
	cur, ok := lg.host[d.Col]
	if !ok {
		return fmt.Errorf("dlb: rank %d: tracked column %d missing from host map", lg.Rank, d.Col)
	}
	if cur != decider {
		return fmt.Errorf("dlb: rank %d: decider %d is not the host (%d) of column %d", lg.Rank, decider, cur, d.Col)
	}
	if lg.L.IsPermanent(d.Col) {
		return fmt.Errorf("dlb: rank %d: permanent column %d may not move", lg.Rank, d.Col)
	}
	if decider == owner {
		// Case 1: owner lends its movable column to an up-left neighbor.
		if !containsInt(lg.L.UpLeftRanks(owner), d.Dest) {
			return fmt.Errorf("dlb: rank %d: column %d sent to %d, not an up-left neighbor of owner %d",
				lg.Rank, d.Col, d.Dest, owner)
		}
	} else {
		// Case 3: a borrower returns the column to its owner.
		if d.Dest != owner {
			return fmt.Errorf("dlb: rank %d: borrower %d must return column %d to owner %d, not %d",
				lg.Rank, decider, d.Col, owner, d.Dest)
		}
		if !containsInt(lg.L.UpLeftRanks(owner), decider) {
			return fmt.Errorf("dlb: rank %d: returner %d is not an up-left neighbor of owner %d",
				lg.Rank, decider, owner)
		}
	}
	lg.host[d.Col] = d.Dest
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// CheckInvariants verifies the ledger's state against the permanent-cell
// invariants: every tracked column's host is its owner or one of the
// owner's up-left neighbors; permanent columns are at home; the hosted set
// never exceeds C' columns.
func (lg *Ledger) CheckInvariants() error {
	for col, h := range lg.host {
		owner := lg.L.OwnerOf(col)
		if lg.L.IsPermanent(col) {
			if h != owner {
				return fmt.Errorf("dlb: permanent column %d hosted by %d, not owner %d", col, h, owner)
			}
			continue
		}
		if h != owner && !containsInt(lg.L.UpLeftRanks(owner), h) {
			return fmt.Errorf("dlb: column %d hosted by %d, outside owner %d's up-left set", col, h, owner)
		}
	}
	if n := len(lg.HostedColumns()); n > lg.L.MaxHostedColumns() {
		return fmt.Errorf("dlb: rank %d hosts %d columns, exceeding C' = %d",
			lg.Rank, n, lg.L.MaxHostedColumns())
	}
	return nil
}
