package dlb

import (
	"testing"
)

func mustLayout(t *testing.T, s, m int) Layout {
	t.Helper()
	l, err := NewLayout(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(1, 2); err == nil {
		t.Error("s=1 accepted")
	}
	if _, err := NewLayout(3, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestLayoutCounts(t *testing.T) {
	l := mustLayout(t, 3, 4)
	if l.P() != 9 {
		t.Errorf("P = %d", l.P())
	}
	if l.NxColumns() != 12 {
		t.Errorf("NxColumns = %d", l.NxColumns())
	}
	if l.NumColumns() != 144 {
		t.Errorf("NumColumns = %d", l.NumColumns())
	}
}

func TestOwnerPartition(t *testing.T) {
	l := mustLayout(t, 3, 3)
	counts := make([]int, l.P())
	for col := 0; col < l.NumColumns(); col++ {
		counts[l.OwnerOf(col)]++
	}
	for r, n := range counts {
		if n != 9 {
			t.Errorf("rank %d owns %d columns, want 9", r, n)
		}
	}
}

func TestColumnsOfConsistent(t *testing.T) {
	l := mustLayout(t, 4, 2)
	seen := map[int]bool{}
	for r := 0; r < l.P(); r++ {
		for _, col := range l.ColumnsOf(r) {
			if l.OwnerOf(col) != r {
				t.Fatalf("ColumnsOf(%d) includes foreign column %d", r, col)
			}
			if seen[col] {
				t.Fatalf("column %d owned twice", col)
			}
			seen[col] = true
		}
	}
	if len(seen) != l.NumColumns() {
		t.Errorf("columns covered: %d, want %d", len(seen), l.NumColumns())
	}
}

func TestPermanentCounts(t *testing.T) {
	// The paper: m=2 leaves 1/4 movable; m=4 leaves 9/16 movable (Fig. 3
	// shows 4 movable + 5 permanent for m=3).
	cases := []struct{ m, wantMovable int }{
		{1, 0}, {2, 1}, {3, 4}, {4, 9},
	}
	for _, c := range cases {
		l := mustLayout(t, 3, c.m)
		mv := l.MovableColumnsOf(0)
		if len(mv) != c.wantMovable {
			t.Errorf("m=%d: %d movable columns, want %d", c.m, len(mv), c.wantMovable)
		}
		perm := 0
		for _, col := range l.ColumnsOf(0) {
			if l.IsPermanent(col) {
				perm++
			}
		}
		if perm != c.m*c.m-c.wantMovable {
			t.Errorf("m=%d: %d permanent, want %d", c.m, perm, c.m*c.m-c.wantMovable)
		}
	}
}

func TestPermanentIsLastRowAndColumn(t *testing.T) {
	l := mustLayout(t, 3, 3)
	for _, col := range l.ColumnsOf(4) { // center PE
		a, b := l.LocalCoords(col)
		want := a == 2 || b == 2
		if l.IsPermanent(col) != want {
			t.Errorf("col local (%d,%d): IsPermanent = %v", a, b, l.IsPermanent(col))
		}
	}
}

func TestMaxHostedColumns(t *testing.T) {
	// C' = m^2 + 3(m-1)^2 (Section 4.1); for m=3 the paper's Fig. 4 notes a
	// PE may hold up to 2.33x its initial 9 columns: 21 columns.
	cases := []struct{ m, want int }{
		{1, 1}, {2, 7}, {3, 21}, {4, 43},
	}
	for _, c := range cases {
		l := mustLayout(t, 3, c.m)
		if got := l.MaxHostedColumns(); got != c.want {
			t.Errorf("m=%d: C' = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestUpLeftDownRightRanks(t *testing.T) {
	l := mustLayout(t, 4, 2)
	r := l.T.Rank(2, 2)
	ul := l.UpLeftRanks(r)
	if ul[0] != l.T.Rank(1, 1) || ul[1] != l.T.Rank(1, 2) || ul[2] != l.T.Rank(2, 1) {
		t.Errorf("UpLeftRanks = %v", ul)
	}
	dr := l.DownRightRanks(r)
	if dr[0] != l.T.Rank(2, 3) || dr[1] != l.T.Rank(3, 2) || dr[2] != l.T.Rank(3, 3) {
		t.Errorf("DownRightRanks = %v", dr)
	}
}

// TestAdjacency8NeighborClosure verifies the paper's central structural
// claim: any column adjacent (in the 8-connected cross-section sense) to a
// column that rank r can ever host is itself hosted within r's
// 8-neighborhood, for every reachable placement. Hosts of a movable column
// are its owner or the owner's up-left neighbors, so it suffices to check
// all (host, adjacent-column, adjacent-host) combinations.
func TestAdjacency8NeighborClosure(t *testing.T) {
	l := mustLayout(t, 4, 3)
	n := l.NxColumns()
	inNbhd := func(a, b int) bool {
		if a == b {
			return true
		}
		for _, x := range l.T.UniqueNeighbors(a) {
			if x == b {
				return true
			}
		}
		return false
	}
	possibleHosts := func(col int) []int {
		o := l.OwnerOf(col)
		if l.IsPermanent(col) {
			return []int{o}
		}
		return append([]int{o}, l.UpLeftRanks(o)...)
	}
	for col := 0; col < l.NumColumns(); col++ {
		cx, cy := l.ColumnCoords(col)
		for _, h := range possibleHosts(col) {
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					if dx == 0 && dy == 0 {
						continue
					}
					adj := l.ColumnAt(((cx+dx)%n+n)%n, ((cy+dy)%n+n)%n)
					for _, ah := range possibleHosts(adj) {
						if !inNbhd(h, ah) {
							t.Fatalf("column %d (host %d) adjacent to %d (host %d): outside 8-neighborhood",
								col, h, adj, ah)
						}
					}
				}
			}
		}
	}
}
