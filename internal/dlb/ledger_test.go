package dlb

import (
	"sort"
	"testing"

	"permcell/internal/rng"
	"permcell/internal/topology"
)

func newLedgers(t *testing.T, s, m int) (Layout, []*Ledger) {
	t.Helper()
	l := mustLayout(t, s, m)
	lgs := make([]*Ledger, l.P())
	for r := range lgs {
		lgs[r] = NewLedger(l, r)
	}
	return l, lgs
}

// applyEverywhere mimics protocol step 4: the decider's decision reaches
// its 8 neighbors and itself.
func applyEverywhere(t *testing.T, l Layout, lgs []*Ledger, decider int, d Decision) {
	t.Helper()
	if err := lgs[decider].Apply(decider, d); err != nil {
		t.Fatalf("decider %d self-apply: %v", decider, err)
	}
	for _, nb := range l.T.UniqueNeighbors(decider) {
		if err := lgs[nb].Apply(decider, d); err != nil {
			t.Fatalf("neighbor %d applying decision of %d: %v", nb, decider, err)
		}
	}
}

// checkGlobalPartition asserts every column is hosted by exactly one PE.
func checkGlobalPartition(t *testing.T, l Layout, lgs []*Ledger) {
	t.Helper()
	count := make(map[int]int)
	for _, lg := range lgs {
		for _, col := range lg.HostedColumns() {
			count[col]++
		}
	}
	if len(count) != l.NumColumns() {
		t.Fatalf("only %d of %d columns hosted", len(count), l.NumColumns())
	}
	for col, c := range count {
		if c != 1 {
			t.Fatalf("column %d hosted by %d PEs", col, c)
		}
	}
}

func TestInitialState(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	checkGlobalPartition(t, l, lgs)
	for r, lg := range lgs {
		hosted := lg.HostedColumns()
		if len(hosted) != 9 {
			t.Errorf("rank %d initially hosts %d columns", r, len(hosted))
		}
		if err := lg.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if len(lg.OwnMovableAtHome()) != 4 {
			t.Errorf("rank %d has %d movable at home, want 4", r, len(lg.OwnMovableAtHome()))
		}
		if len(lg.LentOut()) != 0 {
			t.Errorf("rank %d has lent columns initially", r)
		}
	}
}

func TestHostOfStatic(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	lg := lgs[0]
	// Tracked column.
	col := l.ColumnsOf(0)[0]
	if h, err := lg.HostOf(col); err != nil || h != 0 {
		t.Errorf("HostOf own column = (%d, %v)", h, err)
	}
	// Untracked permanent column resolves statically.
	farRank := l.T.Rank(2, 0) // up neighbor of 0 on a 3x3 torus; owner of untracked... pick a permanent col of an untracked owner
	perm := -1
	for _, c := range l.ColumnsOf(farRank) {
		if l.IsPermanent(c) && !lg.Tracks(c) {
			perm = c
			break
		}
	}
	if perm >= 0 {
		if h, err := lg.HostOf(perm); err != nil || h != farRank {
			t.Errorf("HostOf untracked permanent = (%d, %v)", h, err)
		}
	}
	// Untracked movable column errors.
	for _, c := range l.MovableColumnsOf(farRank) {
		if !lg.Tracks(c) {
			if _, err := lg.HostOf(c); err == nil {
				t.Error("untracked movable column resolved without error")
			}
			break
		}
	}
}

func TestDecideNoImbalanceNoMove(t *testing.T) {
	_, lgs := newLedgers(t, 3, 3)
	var loads Loads
	loads.Self = 1
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 1
	}
	if d := lgs[4].Decide(loads, Config{}); d.Col >= 0 {
		t.Errorf("balanced loads produced decision %+v", d)
	}
}

func TestDecideCase1SendsOwnMovable(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	loads.Neighbor[0] = 1 // offset (-1,-1): Case 1
	d := lgs[me].Decide(loads, Config{})
	if d.Col < 0 {
		t.Fatal("no decision despite idle up-left neighbor")
	}
	if l.OwnerOf(d.Col) != me || l.IsPermanent(d.Col) {
		t.Errorf("sent column %d is not an own movable column", d.Col)
	}
	if want := l.T.Rank(0, 0); d.Dest != want {
		t.Errorf("dest = %d, want %d", d.Dest, want)
	}
}

func TestDecideCase2NothingToSend(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	loads.Neighbor[2] = 1 // offset (-1,+1): Case 2
	if d := lgs[me].Decide(loads, Config{}); d.Col >= 0 {
		t.Errorf("Case 2 produced decision %+v", d)
	}
	loads.Neighbor[2] = 10
	loads.Neighbor[5] = 1 // offset (+1,-1): Case 2
	if d := lgs[me].Decide(loads, Config{}); d.Col >= 0 {
		t.Errorf("Case 2 produced decision %+v", d)
	}
}

func TestDecideCase3ReturnsBorrowed(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	dr := l.T.Rank(2, 1) // offset (+1,0) from me; me is its up-left neighbor

	// First, dr lends me a movable column (its Case 1).
	col := l.MovableColumnsOf(dr)[0]
	lend := Decision{Col: col, Dest: me}
	applyEverywhere(t, l, lgs, dr, lend)
	if got := lgs[me].BorrowedFrom(dr); len(got) != 1 || got[0] != col {
		t.Fatalf("BorrowedFrom = %v", got)
	}

	// Now dr is fastest; I must return its column.
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	loads.Neighbor[6] = 1 // offset (+1,0): Case 3
	d := lgs[me].Decide(loads, Config{})
	if d.Col != col || d.Dest != dr {
		t.Errorf("decision = %+v, want return of %d to %d", d, col, dr)
	}

	// Without borrowed columns, Case 3 yields nothing.
	applyEverywhere(t, l, lgs, me, d)
	if d2 := lgs[me].Decide(loads, Config{}); d2.Col >= 0 {
		t.Errorf("second return produced %+v", d2)
	}
}

func TestDecideCase1ExhaustsMovables(t *testing.T) {
	l, lgs := newLedgers(t, 3, 2) // m=2: single movable column per PE
	me := l.T.Rank(1, 1)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 1
	}
	d := lgs[me].Decide(loads, Config{})
	if d.Col < 0 {
		t.Fatal("no decision")
	}
	applyEverywhere(t, l, lgs, me, d)
	// All movable columns gone; next decision must be None (the DLB limit).
	if d2 := lgs[me].Decide(loads, Config{}); d2.Col >= 0 {
		t.Errorf("sent %+v with no movable columns left", d2)
	}
}

func TestDecideHysteresis(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 9.5
	}
	if d := lgs[me].Decide(loads, Config{Hysteresis: 0.10}); d.Col >= 0 {
		t.Errorf("hysteresis ignored: %+v", d)
	}
	if d := lgs[me].Decide(loads, Config{Hysteresis: 0}); d.Col < 0 {
		t.Error("zero hysteresis should move on any gap")
	}
}

func TestDecideM1NeverMoves(t *testing.T) {
	_, lgs := newLedgers(t, 3, 1)
	loads := Loads{Self: 100}
	if d := lgs[0].Decide(loads, Config{}); d.Col >= 0 {
		t.Errorf("m=1 produced decision %+v", d)
	}
}

func TestPickStrategies(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	movable := l.MovableColumnsOf(me)
	colLoad := func(col int) float64 {
		// Make the middle candidate heaviest, first lightest.
		for i, c := range movable {
			if c == col {
				return float64((i*3)%5 + 1)
			}
		}
		return 0
	}
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	loads.Neighbor[0] = 1

	dMost := lgs[me].Decide(loads, Config{ColLoad: colLoad, Pick: PickMostLoaded})
	dLeast := lgs[me].Decide(loads, Config{ColLoad: colLoad, Pick: PickLeastLoaded})
	dLow := lgs[me].Decide(loads, Config{ColLoad: colLoad, Pick: PickLowestIndex})
	if dLow.Col != movable[0] {
		t.Errorf("PickLowestIndex chose %d, want %d", dLow.Col, movable[0])
	}
	if colLoad(dMost.Col) < colLoad(dLeast.Col) {
		t.Errorf("PickMostLoaded chose lighter column than PickLeastLoaded")
	}
	for _, d := range []Decision{dMost, dLeast, dLow} {
		if l.IsPermanent(d.Col) {
			t.Errorf("strategy picked permanent column %d", d.Col)
		}
	}
}

func TestApplyRejectsProtocolViolations(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(1, 1)
	lg := lgs[me]

	perm := -1
	for _, c := range l.ColumnsOf(me) {
		if l.IsPermanent(c) {
			perm = c
			break
		}
	}
	if err := lg.Apply(me, Decision{Col: perm, Dest: l.T.Rank(0, 0)}); err == nil {
		t.Error("permanent column move accepted")
	}

	mv := l.MovableColumnsOf(me)[0]
	// Send to a down-right neighbor (not an up-left neighbor): illegal Case 1.
	if err := lg.Apply(me, Decision{Col: mv, Dest: l.T.Rank(2, 2)}); err == nil {
		t.Error("send to down-right neighbor accepted")
	}
	// Decision by a rank that is not the host.
	other := l.T.Rank(2, 1)
	if err := lg.Apply(other, Decision{Col: mv, Dest: me}); err == nil {
		t.Error("non-host move accepted")
	}
	// Legal move, then an illegal second move by the old host.
	if err := lg.Apply(me, Decision{Col: mv, Dest: l.T.Rank(0, 0)}); err != nil {
		t.Fatalf("legal move rejected: %v", err)
	}
	if err := lg.Apply(me, Decision{Col: mv, Dest: l.T.Rank(0, 1)}); err == nil {
		t.Error("move by stale host accepted")
	}
}

func TestApplyIgnoresUntracked(t *testing.T) {
	l, lgs := newLedgers(t, 4, 3)
	// Rank (0,0)'s ledger must ignore decisions about columns owned by a
	// distant PE.
	far := l.T.Rank(2, 2)
	col := l.MovableColumnsOf(far)[0]
	if lgs[0].Tracks(col) {
		t.Fatal("test setup: column unexpectedly tracked")
	}
	if err := lgs[0].Apply(far, Decision{Col: col, Dest: l.T.Rank(1, 1)}); err != nil {
		t.Errorf("untracked decision not ignored: %v", err)
	}
}

// TestProtocolSimulation drives all P ledgers through many steps of the full
// protocol with randomized loads and verifies every invariant the paper's
// construction promises: single-host partition, host-in-up-left-set,
// permanent columns at home, C' bound, and cross-ledger agreement.
func TestProtocolSimulation(t *testing.T) {
	for _, cfgCase := range []struct {
		s, m int
		pick Strategy
	}{
		{3, 2, PickMostLoaded},
		{3, 3, PickLeastLoaded},
		{4, 3, PickMostLoaded},
		{4, 4, PickLowestIndex},
		{2, 3, PickMostLoaded}, // smallest legal torus: offset aliasing stress
	} {
		l, lgs := newLedgers(t, cfgCase.s, cfgCase.m)
		r := rng.New(uint64(1000*cfgCase.s + cfgCase.m))
		loadOf := make([]float64, l.P())

		for step := 0; step < 300; step++ {
			// Random loads; occasionally spike one PE to force cascades.
			for i := range loadOf {
				loadOf[i] = r.Uniform(1, 2)
			}
			if step%3 == 0 {
				loadOf[r.Intn(l.P())] = r.Uniform(10, 20)
			}

			decisions := make([]Decision, l.P())
			for rank, lg := range lgs {
				var loads Loads
				loads.Self = loadOf[rank]
				pi, pj := l.T.Coords(rank)
				for k, off := range topology.Offsets8 {
					loads.Neighbor[k] = loadOf[l.T.Rank(pi+off.DI, pj+off.DJ)]
				}
				decisions[rank] = lg.Decide(loads, Config{Pick: cfgCase.pick})
			}
			for rank, d := range decisions {
				applyEverywhere(t, l, lgs, rank, d)
			}

			checkGlobalPartition(t, l, lgs)
			for _, lg := range lgs {
				if err := lg.CheckInvariants(); err != nil {
					t.Fatalf("s=%d m=%d step %d: %v", cfgCase.s, cfgCase.m, step, err)
				}
			}
			// Cross-ledger agreement on shared tracked columns.
			for a := range lgs {
				for col, ha := range lgs[a].host {
					for b := range lgs {
						if a == b {
							continue
						}
						if hb, ok := lgs[b].host[col]; ok && hb != ha {
							t.Fatalf("step %d: ledgers %d and %d disagree on column %d (%d vs %d)",
								step, a, b, col, ha, hb)
						}
					}
				}
			}
		}
	}
}

// TestMaxDomainReachable drives one PE to its C' bound: its three down-right
// neighbors lend it everything they have.
func TestMaxDomainReachable(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	me := l.T.Rank(0, 0)
	loads := Loads{Self: 10}
	for k := range loads.Neighbor {
		loads.Neighbor[k] = 10
	}
	// Every down-right neighbor of me sees me as its fastest up-left
	// neighbor and lends all movable columns over successive steps.
	for step := 0; step < 10; step++ {
		for _, donor := range l.DownRightRanks(me) {
			var dl Loads
			dl.Self = 10
			pi, pj := l.T.Coords(donor)
			for k, off := range topology.Offsets8 {
				nb := l.T.Rank(pi+off.DI, pj+off.DJ)
				if nb == me {
					dl.Neighbor[k] = 1
				} else {
					dl.Neighbor[k] = 10
				}
			}
			d := lgs[donor].Decide(dl, Config{})
			applyEverywhere(t, l, lgs, donor, d)
		}
	}
	got := len(lgs[me].HostedColumns())
	want := l.MaxHostedColumns() // 9 + 12 = 21 for m=3, the paper's 2.33x
	if got != want {
		t.Errorf("max domain = %d columns, want %d", got, want)
	}
	for _, lg := range lgs {
		if err := lg.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
	checkGlobalPartition(t, l, lgs)
}

func TestHostedColumnsSorted(t *testing.T) {
	_, lgs := newLedgers(t, 3, 4)
	h := lgs[5].HostedColumns()
	if !sort.IntsAreSorted(h) {
		t.Error("HostedColumns not sorted")
	}
}
