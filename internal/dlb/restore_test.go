package dlb

import (
	"reflect"
	"testing"
)

// globalHosts merges every ledger's hosted set into one column→host map,
// the way a checkpoint restore assembles it from per-rank frames.
func globalHosts(lgs []*Ledger) map[int]int {
	hosts := make(map[int]int)
	for _, lg := range lgs {
		for _, col := range lg.HostedColumns() {
			hosts[col] = lg.Rank
		}
	}
	return hosts
}

func TestRestoreLedgerInitialState(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	hosts := globalHosts(lgs)
	for r := range lgs {
		got, err := RestoreLedger(l, r, hosts)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !reflect.DeepEqual(got.HostedColumns(), lgs[r].HostedColumns()) {
			t.Fatalf("rank %d hosted set changed across restore", r)
		}
	}
}

func TestRestoreLedgerWithLentColumns(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	// Lend one movable column from each rank that has an up-left neighbor,
	// building a mid-flight ownership state.
	moved := 0
	for r := range lgs {
		ul := l.UpLeftRanks(r)
		cands := lgs[r].OwnMovableAtHome()
		if len(ul) == 0 || len(cands) == 0 {
			continue
		}
		d := Decision{Col: cands[0], Dest: ul[0]}
		applyEverywhere(t, l, lgs, r, d)
		moved++
	}
	if moved == 0 {
		t.Fatal("test setup: no columns moved")
	}
	checkGlobalPartition(t, l, lgs)

	hosts := globalHosts(lgs)
	for r := range lgs {
		got, err := RestoreLedger(l, r, hosts)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !reflect.DeepEqual(got.HostedColumns(), lgs[r].HostedColumns()) {
			t.Fatalf("rank %d: restored hosted %v, live %v", r, got.HostedColumns(), lgs[r].HostedColumns())
		}
		if !reflect.DeepEqual(got.LentOut(), lgs[r].LentOut()) {
			t.Fatalf("rank %d: restored lent %v, live %v", r, got.LentOut(), lgs[r].LentOut())
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestRestoreLedgerRejectsInvalidPlacement(t *testing.T) {
	l, lgs := newLedgers(t, 3, 3)
	hosts := globalHosts(lgs)
	// A permanent column hosted away from home violates the invariants.
	perm := -1
	for _, col := range l.ColumnsOf(4) {
		if l.IsPermanent(col) {
			perm = col
			break
		}
	}
	if perm < 0 {
		t.Fatal("test setup: no permanent column found")
	}
	hosts[perm] = 0
	if _, err := RestoreLedger(l, 4, hosts); err == nil {
		t.Fatal("displaced permanent column accepted")
	}
}
