// Package serve is the multi-tenant run service: it multiplexes many
// concurrent simulations over the permcell Engine facade behind an HTTP
// API. A client POSTs a RunSpec and gets a run ID; the run is admitted
// through a bounded FIFO queue into a fixed worker pool, executes under its
// own supervisor and checkpoint directory, streams its per-step records
// live, and can be paused (checkpoint + park), resumed (restore +
// re-queue) and canceled without disturbing its neighbors. See DESIGN.md
// section 12 "Service architecture".
package serve

import (
	"fmt"
	"math"
	"time"

	"permcell"
	"permcell/internal/units"
)

// Engine kinds a RunSpec can request.
const (
	KindParallel = "parallel" // permcell.New: the DLB/DDM engine (default)
	KindStatic   = "static"   // permcell.NewStatic
	KindSerial   = "serial"   // permcell.NewSerial
)

// SabotageSpec scripts a one-shot injected fault (a PE panic or a NaN
// velocity) for chaos-testing a run's isolation and recovery. Serial
// engines ignore it.
type SabotageSpec struct {
	// Kind is "panic" or "nan".
	Kind string `json:"kind"`
	// Step is the absolute time step to fire at.
	Step int `json:"step"`
	// Rank is the PE to fire on.
	Rank int `json:"rank"`
}

// RunSpec is the JSON body of POST /runs: one simulation in the paper's
// coordinates plus its runtime policy. Zero-valued fields select the
// documented defaults, matching the permcell Option defaults, so a spec
// and the equivalent solo permcell.New call produce bit-identical traces.
type RunSpec struct {
	// Kind selects the engine: "parallel" (default), "static" or "serial".
	Kind string `json:"kind,omitempty"`

	// Parallel coordinates: square-pillar cross-section M and PE count P
	// (perfect square) over a grid of (M*sqrt(P))^3 cells.
	M int `json:"m,omitempty"`
	P int `json:"p,omitempty"`
	// Static/serial coordinate: the box is NC cells per dimension. Static
	// also uses P and Shape ("plane", "pillar" or "cube").
	NC    int    `json:"nc,omitempty"`
	Shape string `json:"shape,omitempty"`

	// Rho is the reduced density; Steps the total time steps to run.
	Rho   float64 `json:"rho"`
	Steps int     `json:"steps"`

	// Balancer is a spec string for permcell.BalancerByName: "permcell",
	// "sfc(h=0,moves=2)", "diffusive", ... Empty or "none" = static DDM.
	Balancer string `json:"balancer,omitempty"`

	Seed       uint64  `json:"seed,omitempty"`
	Dt         float64 `json:"dt,omitempty"`
	Wells      int     `json:"wells,omitempty"`
	WellK      float64 `json:"well_k,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	StatsEvery int     `json:"stats_every,omitempty"`

	// CheckpointEvery adds an automatic checkpoint cadence in simulation
	// steps (0 = checkpoints only at pause and under the supervisor's
	// anchor). Every run has its own checkpoint directory regardless, so
	// pause/resume always works.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// MaxRetries, when present, runs the simulation under the self-healing
	// supervisor with that rollback budget (0 = fail on the first failure).
	// Absent = unsupervised.
	MaxRetries *int `json:"max_retries,omitempty"`
	// BackoffMS is the supervisor's initial retry backoff in milliseconds
	// (0 = the supervisor default of 50ms).
	BackoffMS int `json:"backoff_ms,omitempty"`

	// Sabotage injects one scripted fault (chaos testing).
	Sabotage *SabotageSpec `json:"sabotage,omitempty"`
}

// kind returns the normalized engine kind.
func (s *RunSpec) kind() string {
	if s.Kind == "" {
		return KindParallel
	}
	return s.Kind
}

// Particles estimates the run's particle count N = round(rho * volume),
// the admission-control memory proxy: per-run state is O(N), so the
// service caps N rather than guessing at bytes.
func (s *RunSpec) Particles() int {
	var side int
	switch s.kind() {
	case KindParallel:
		root := int(math.Round(math.Sqrt(float64(s.P))))
		side = s.M * root
	default:
		side = s.NC
	}
	l := float64(side) * units.PaperCutoff
	return int(math.Round(s.Rho * l * l * l))
}

// Validate rejects specs that cannot construct an engine, before any queue
// slot or worker is committed to them. Deep engine validation still runs
// at construction; this pass catches the shapes a 400 should explain.
func (s *RunSpec) Validate() error {
	switch s.kind() {
	case KindParallel:
		if s.M < 2 {
			return fmt.Errorf("serve: m must be >= 2, got %d", s.M)
		}
		root := int(math.Round(math.Sqrt(float64(s.P))))
		if s.P < 4 || root*root != s.P {
			return fmt.Errorf("serve: p must be a perfect square >= 4, got %d", s.P)
		}
	case KindStatic:
		if s.NC < 1 {
			return fmt.Errorf("serve: nc must be >= 1, got %d", s.NC)
		}
		if s.P < 1 {
			return fmt.Errorf("serve: p must be >= 1, got %d", s.P)
		}
		if _, err := s.shape(); err != nil {
			return err
		}
	case KindSerial:
		if s.NC < 1 {
			return fmt.Errorf("serve: nc must be >= 1, got %d", s.NC)
		}
	default:
		return fmt.Errorf("serve: unknown engine kind %q", s.Kind)
	}
	if s.Rho <= 0 {
		return fmt.Errorf("serve: rho must be positive, got %g", s.Rho)
	}
	if s.Steps < 1 {
		return fmt.Errorf("serve: steps must be >= 1, got %d", s.Steps)
	}
	if s.Balancer != "" {
		if _, err := permcell.BalancerByName(s.Balancer); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if s.kind() != KindParallel {
			return fmt.Errorf("serve: balancer %q requires the parallel engine", s.Balancer)
		}
	}
	if s.MaxRetries != nil && *s.MaxRetries < 0 {
		return fmt.Errorf("serve: max_retries must be >= 0, got %d", *s.MaxRetries)
	}
	if sb := s.Sabotage; sb != nil {
		if sb.Kind != permcell.SabotagePanic && sb.Kind != permcell.SabotageNaN {
			return fmt.Errorf("serve: unknown sabotage kind %q", sb.Kind)
		}
	}
	return nil
}

func (s *RunSpec) shape() (permcell.Shape, error) {
	switch s.Shape {
	case "", "pillar":
		return permcell.ShapeSquarePillar, nil
	case "plane":
		return permcell.ShapePlane, nil
	case "cube":
		return permcell.ShapeCube, nil
	default:
		return 0, fmt.Errorf("serve: unknown shape %q (want plane, pillar or cube)", s.Shape)
	}
}

// options derives the permcell Option set for this spec. ckptDir is the
// run's private checkpoint directory; sab is the run-owned sabotage script
// (shared across pause/resume restores so it stays one-shot); onStep
// streams the records. The derivation is deterministic: the same spec
// yields the same options every time, which is what makes a served run's
// trace bit-identical to a solo run of the same spec.
func (s *RunSpec) options(ckptDir string, sab *permcell.Sabotage, onStep func(permcell.StepStats), onEvent func(permcell.SupervisorEvent)) ([]permcell.Option, error) {
	opts := []permcell.Option{
		permcell.WithSeed(s.seedOrDefault()),
		permcell.WithDt(s.Dt),
		permcell.WithWells(s.Wells, s.WellK),
		permcell.WithShards(s.Shards),
		permcell.WithStatsEvery(s.StatsEvery),
		permcell.WithMetrics(),
		permcell.WithOnStep(onStep),
		permcell.WithDiscardStats(),
		permcell.WithCheckpoint(s.CheckpointEvery, ckptDir),
	}
	if s.Balancer != "" {
		b, err := permcell.BalancerByName(s.Balancer)
		if err != nil {
			return nil, err
		}
		if b != nil {
			opts = append(opts, permcell.WithBalancer(b))
		}
	}
	if sab != nil {
		opts = append(opts, permcell.WithSabotage(sab))
	}
	if s.MaxRetries != nil {
		opts = append(opts, permcell.WithSupervisor(permcell.SupervisorPolicy{
			MaxRetries: *s.MaxRetries,
			Backoff:    time.Duration(s.BackoffMS) * time.Millisecond,
			OnEvent:    onEvent,
		}))
	}
	return opts, nil
}

func (s *RunSpec) seedOrDefault() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// build constructs a fresh engine for the spec.
func (s *RunSpec) build(opts []permcell.Option) (permcell.Engine, error) {
	switch s.kind() {
	case KindParallel:
		return permcell.New(s.M, s.P, s.Rho, opts...)
	case KindStatic:
		shape, err := s.shape()
		if err != nil {
			return nil, err
		}
		return permcell.NewStatic(shape, s.NC, s.P, s.Rho, opts...)
	case KindSerial:
		return permcell.NewSerial(s.NC, s.Rho, opts...)
	default:
		return nil, fmt.Errorf("serve: unknown engine kind %q", s.Kind)
	}
}
