package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"permcell"
	"permcell/internal/checkpoint"
	"permcell/internal/metrics"
)

// Config sizes the service.
type Config struct {
	// Dir is the service data directory; each run checkpoints into its own
	// subdirectory Dir/<runID> (never shared: the latest/previous rotation
	// is per-run state). Required.
	Dir string
	// Workers is the worker-pool size — the goroutine/CPU budget: at most
	// Workers runs execute concurrently; each parallel run additionally
	// spawns its spec's P PE goroutines. 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission FIFO; a POST /runs beyond it is
	// rejected with 429 rather than queued unboundedly. 0 = 64.
	QueueDepth int
	// MaxParticles caps one run's estimated particle count N (the memory
	// proxy: per-run state is O(N)); larger specs are rejected with 413.
	// 0 = 200_000.
	MaxParticles int
	// StepBatch is the number of simulation steps a worker advances
	// between control checks (pause/cancel latency, in steps). 0 = 8.
	StepBatch int
	// Retention is how long a terminal run (completed, failed or canceled)
	// stays addressable after finishing. Once it expires, the janitor
	// removes the run — its record log, status, and private checkpoint
	// directory — and GET /runs/{id} answers 404. 0 = keep forever.
	Retention time.Duration
	// SweepEvery is the janitor's sweep cadence. 0 = Retention/4, clamped
	// to [1s, 1min]. Ignored when Retention is 0.
	SweepEvery time.Duration
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxParticles <= 0 {
		c.MaxParticles = 200_000
	}
	if c.StepBatch <= 0 {
		c.StepBatch = 8
	}
	if c.Retention > 0 && c.SweepEvery <= 0 {
		c.SweepEvery = c.Retention / 4
		if c.SweepEvery < time.Second {
			c.SweepEvery = time.Second
		}
		if c.SweepEvery > time.Minute {
			c.SweepEvery = time.Minute
		}
	}
}

// Admission errors (the HTTP layer maps them to status codes).
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrTooLarge  = errors.New("serve: run exceeds the per-run particle cap")
	ErrClosed    = errors.New("serve: server is shutting down")
)

// NotFoundError reports an unknown run ID.
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("serve: no run %q", e.ID) }

// ConflictError reports a lifecycle action invalid in the run's current
// state (e.g. pausing a queued run).
type ConflictError struct {
	ID    string
	State State
	Want  string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("serve: run %s is %s (want %s)", e.ID, e.State, e.Want)
}

// Server multiplexes concurrent simulations over one process. Create with
// New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg Config

	ctx    context.Context // parent of every run context
	cancel context.CancelFunc

	queue chan *Run
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	runs   map[string]*Run

	// Service-level counters (GET /metrics).
	admitted int64
	rejected map[string]int64 // reason -> count
	reaped   int64            // terminal runs removed by the janitor
}

// New creates the service and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg.normalize()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Run, cfg.QueueDepth),
		runs:   make(map[string]*Run),
		rejected: map[string]int64{
			"invalid": 0, "too_large": 0, "queue_full": 0,
		},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Retention > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// janitor periodically reaps terminal runs past their retention.
func (s *Server) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-t.C:
			s.sweep(now)
		}
	}
}

// sweep removes every terminal run whose retention expired as of now,
// including its private checkpoint directory, and returns how many it
// reaped. Only terminal runs are eligible, so no worker is executing a
// reaped run; a canceled run still parked in the admission queue may be
// reaped first, in which case the worker later drains a dangling handle
// whose canceled-context fast path touches no disk state.
func (s *Server) sweep(now time.Time) int {
	s.mu.Lock()
	var victims []*Run
	for id, r := range s.runs {
		r.mu.Lock()
		expired := r.state.Terminal() && !r.doneAt.IsZero() && now.Sub(r.doneAt) >= s.cfg.Retention
		r.mu.Unlock()
		if expired {
			victims = append(victims, r)
			delete(s.runs, id)
		}
	}
	s.reaped += int64(len(victims))
	s.mu.Unlock()

	for _, r := range victims {
		os.RemoveAll(r.dir)
	}
	return len(victims)
}

// Shutdown stops admission, cancels every live run and waits (bounded by
// ctx) for the workers to finish tearing them down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.cancel()     // every run context is a child: running engines stop at the next batch
	close(s.queue) // workers drain the queue (canceled runs fall through) and exit

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit validates and admits a run, returning its ID. The error is one of
// the admission errors or a validation error.
func (s *Server) Submit(spec RunSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		s.countReject("invalid")
		return "", err
	}
	if n := spec.Particles(); n > s.cfg.MaxParticles {
		s.countReject("too_large")
		return "", fmt.Errorf("%w: %d particles > cap %d", ErrTooLarge, n, s.cfg.MaxParticles)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	// The nonblocking send happens under s.mu: Shutdown flips closed under
	// the same mutex before closing the queue, so a send can never race the
	// close.
	s.seq++
	id := fmt.Sprintf("r%06d", s.seq)
	r := newRun(id, spec, filepath.Join(s.cfg.Dir, id), s.ctx)
	select {
	case s.queue <- r:
		s.runs[id] = r
		s.admitted++
		s.mu.Unlock()
		return id, nil
	default:
		s.rejected["queue_full"]++
		s.mu.Unlock()
		r.cancel()
		return "", ErrQueueFull
	}
}

func (s *Server) countReject(reason string) {
	s.mu.Lock()
	s.rejected[reason]++
	s.mu.Unlock()
}

// Get returns the run with the given ID.
func (s *Server) Get(id string) (*Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, &NotFoundError{ID: id}
	}
	return r, nil
}

// List returns every run's status, ordered by ID.
func (s *Server) List() []RunStatus {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.snapshot()
	}
	return out
}

// Pause asks a running run to checkpoint and park at the next batch
// boundary. The transition is asynchronous: the run reports StatePaused
// once the checkpoint is written and the engine released.
func (s *Server) Pause(id string) error {
	r, err := s.Get(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateRunning {
		return &ConflictError{ID: id, State: r.state, Want: "running"}
	}
	r.pauseRq = true
	return nil
}

// Resume re-admits a paused run through the queue; it restores from its
// own checkpoint directory when a worker picks it up.
func (s *Server) Resume(id string) error {
	r, err := s.Get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Lock order is always s.mu then r.mu; the send stays under s.mu for
	// the same reason as in Submit.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StatePaused {
		return &ConflictError{ID: id, State: r.state, Want: "paused"}
	}
	select {
	case s.queue <- r:
		r.state = StateQueued
		r.pauseRq = false
		r.notify()
		return nil
	default:
		return ErrQueueFull
	}
}

// Cancel terminates a run in any non-terminal state. Queued runs are
// skipped by the workers; running runs stop at the next batch boundary;
// paused runs just flip to canceled.
func (s *Server) Cancel(id string) error {
	r, err := s.Get(id)
	if err != nil {
		return err
	}
	r.cancel()
	// A queued or paused run has no worker to move it to the terminal
	// state; do it here. A running run's worker observes the canceled
	// context and finalizes the engine itself.
	r.mu.Lock()
	if r.state == StateQueued || r.state == StatePaused {
		r.state = StateCanceled
		r.doneAt = time.Now()
		r.notify()
	}
	r.mu.Unlock()
	return nil
}

// worker executes queued runs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for r := range s.queue {
		s.execute(r)
	}
}

// execute drives one run from admission (or resume) to parked or terminal
// state. Any panic escaping the engine (e.g. an unsupervised serial run's
// driver-side panic) is confined to this run: it becomes StateFailed, the
// worker survives, and no neighbor is touched.
func (s *Server) execute(r *Run) {
	if r.ctx.Err() != nil {
		r.setState(StateCanceled, nil)
		return
	}

	defer func() {
		if v := recover(); v != nil {
			r.setState(StateFailed, fmt.Errorf("serve: run panicked: %v", v))
		}
	}()

	resuming := r.snapshotDone() > 0 || r.hasCheckpoint()
	var eng permcell.Engine
	var err error
	opts, err := r.Spec.options(r.dir, r.sab, r.onStep, nil)
	if err != nil {
		r.setState(StateFailed, err)
		return
	}
	if resuming {
		eng, err = permcell.Restore(r.dir, opts...)
	} else {
		eng, err = r.Spec.build(opts)
	}
	if err != nil {
		r.setState(StateFailed, err)
		return
	}
	r.setState(StateRunning, nil)

	finish := func(final State, ferr error) {
		if _, rerr := eng.Result(); rerr != nil && ferr == nil && final != StateCanceled {
			final, ferr = StateFailed, rerr
		}
		if rep := permcell.SupervisionReport(eng); rep != nil {
			r.recordSupervision(rep)
		}
		r.setState(final, ferr)
	}

	for {
		r.mu.Lock()
		done := r.done
		pause := r.pauseRq
		r.pauseRq = false
		r.mu.Unlock()

		if r.ctx.Err() != nil {
			finish(StateCanceled, nil)
			return
		}
		if pause {
			if err := permcell.CheckpointNow(eng); err != nil {
				finish(StateFailed, fmt.Errorf("serve: pause checkpoint: %w", err))
				return
			}
			// Park: release the engine (and its PE goroutines); the
			// supervision totals so far stay with the run.
			if rep := permcell.SupervisionReport(eng); rep != nil {
				r.recordSupervision(rep)
			}
			if _, rerr := eng.Result(); rerr != nil {
				r.setState(StateFailed, rerr)
				return
			}
			r.setState(StatePaused, nil)
			return
		}
		if done >= r.Spec.Steps {
			finish(StateCompleted, nil)
			return
		}

		batch := s.cfg.StepBatch
		if rest := r.Spec.Steps - done; rest < batch {
			batch = rest
		}
		if err := eng.Step(batch); err != nil {
			finish(StateFailed, err)
			return
		}
		r.mu.Lock()
		r.done += batch
		r.notify()
		r.mu.Unlock()
	}
}

func (r *Run) snapshotDone() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// hasCheckpoint reports whether the run's directory already holds a
// checkpoint (a paused run that never stepped still wrote its pause
// checkpoint; a fresh run's directory is empty).
func (r *Run) hasCheckpoint() bool {
	_, err := os.Stat(filepath.Join(r.dir, checkpoint.LatestName))
	return err == nil
}

// recordSupervision folds one engine incarnation's supervision totals into
// the run's cumulative recovery counters (each incarnation — one per
// pause/resume cycle — reports from zero, so summation is exact).
func (r *Run) recordSupervision(rep *permcell.SupervisorReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.supervisor = rep
	if r.cum.Recovery == nil {
		r.cum.Recovery = &metrics.Recovery{}
	}
	rec := r.cum.Recovery
	rec.Panics += int64(rep.RankFailures)
	rec.GuardViolations += int64(rep.GuardViolations)
	rec.Deadlocks += int64(rep.Deadlocks)
	rec.WorkerFailures += int64(rep.WorkerFailures)
	rec.Rollbacks += int64(rep.Rollbacks)
	rec.Retries += int64(rep.Retries)
	rec.StepsReplayed += int64(rep.StepsReplayed)
}
