package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRetentionSweep drives a run to completion and a second one to
// cancellation, then sweeps with a synthetic clock: before the retention
// horizon nothing is reaped; after it both runs vanish — status 404, gone
// from the listing, checkpoint directory removed — and the reaped counter
// lands in /metrics.
func TestRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestService(t, Config{
		Dir:       dir,
		Retention: time.Hour,
		// A huge cadence: the ticker janitor stays out of the way and the
		// test owns the clock through direct sweep calls.
		SweepEvery: 24 * time.Hour,
	})

	spec := serialSpec(4)
	spec.CheckpointEvery = 2
	done := postRun(t, hs, spec)
	waitTerminal(t, s, done)

	// A queued-then-canceled run exercises the Cancel fast path's doneAt.
	victim := newRun("rvictim", serialSpec(4), filepath.Join(dir, "rvictim"), s.ctx)
	if err := os.MkdirAll(victim.dir, 0o777); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.runs[victim.ID] = victim
	s.mu.Unlock()
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}

	ckptDir := filepath.Join(dir, done)
	if _, err := os.Stat(ckptDir); err != nil {
		t.Fatalf("completed run left no checkpoint dir: %v", err)
	}

	if n := s.sweep(time.Now()); n != 0 {
		t.Fatalf("sweep before retention reaped %d runs", n)
	}
	if _, err := s.Get(done); err != nil {
		t.Fatalf("run reaped early: %v", err)
	}

	if n := s.sweep(time.Now().Add(2 * time.Hour)); n != 2 {
		t.Fatalf("sweep after retention reaped %d runs, want 2", n)
	}
	if _, err := s.Get(done); err == nil {
		t.Fatal("completed run still addressable after reap")
	}
	if resp, err := http.Get(hs.URL + "/runs/" + done); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET reaped run: status %d, want 404", resp.StatusCode)
		}
	}
	for _, d := range []string{ckptDir, victim.dir} {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Fatalf("reaped run's directory %s survived (err=%v)", d, err)
		}
	}

	body := getMetrics(t, hs)
	if !strings.Contains(body, "permcell_serve_runs_reaped_total 2") {
		t.Fatalf("metrics missing reaped counter:\n%s", body)
	}
}

// TestRetentionKeepsLiveRuns verifies the sweep never touches non-terminal
// runs, no matter how old the clock claims they are.
func TestRetentionKeepsLiveRuns(t *testing.T) {
	s, _ := newTestService(t, Config{
		Dir:        t.TempDir(),
		Retention:  time.Millisecond,
		SweepEvery: 24 * time.Hour,
	})
	r := newRun("rlive", serialSpec(4), filepath.Join(s.cfg.Dir, "rlive"), s.ctx)
	s.mu.Lock()
	s.runs[r.ID] = r
	s.mu.Unlock()

	for _, st := range []State{StateQueued, StateRunning, StatePaused} {
		r.mu.Lock()
		r.state = st
		r.mu.Unlock()
		if n := s.sweep(time.Now().Add(1000 * time.Hour)); n != 0 {
			t.Fatalf("sweep reaped a %s run", st)
		}
	}
}

func getMetrics(t *testing.T, hs *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(b)
}
